(* Quickstart: run one CCP flow over a simulated bottleneck.

   This is the smallest end-to-end use of the library: build an
   experiment (a dumbbell link), attach a flow whose congestion control
   runs OFF the datapath in the CCP agent, run, and read the results.

     dune exec examples/quickstart.exe *)

open Ccp_util
open Ccp_core

let () =
  (* A 100 Mbit/s bottleneck with a 20 ms round trip and one
     bandwidth-delay product of buffering (the default). *)
  let config =
    Experiment.default_config ~rate_bps:100e6 ~base_rtt:(Time_ns.ms 20)
      ~duration:(Time_ns.sec 10)
  in
  (* One flow running CCP NewReno: the datapath batches measurements once
     per RTT and the agent — user-space code — makes the decisions. *)
  let config =
    { config with Experiment.flows = [ Experiment.flow (Experiment.Ccp_cc (Ccp_algorithms.Ccp_reno.create ())) ] }
  in
  let result = Experiment.run config in

  Printf.printf "CCP NewReno on a 100 Mbit/s / 20 ms dumbbell for 10 s:\n";
  Printf.printf "  link utilization   %.1f%%\n" (100.0 *. result.Experiment.utilization);
  Printf.printf "  median RTT         %s\n" (Time_ns.to_string result.Experiment.median_rtt);
  Printf.printf "  packet drops       %d\n" result.Experiment.drops;
  (match result.Experiment.agent_stats with
  | Some s ->
    Printf.printf "  agent activity     %d reports, %d urgent events, %d installs\n"
      s.Experiment.reports s.Experiment.urgents s.Experiment.installs;
    Printf.printf "  IPC traffic        %d bytes to agent, %d bytes to datapath\n"
      s.Experiment.ipc_bytes_to_agent s.Experiment.ipc_bytes_to_datapath
  | None -> ());

  (* Every experiment records traces; dump the last few cwnd points. *)
  let cwnd = Ccp_net.Trace.series result.Experiment.trace "cwnd.0" in
  Printf.printf "  cwnd trace         %d points; final %d bytes\n" (List.length cwnd)
    (match List.rev cwnd with (_, v) :: _ -> int_of_float v | [] -> 0)
