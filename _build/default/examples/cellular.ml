(* Time-varying (cellular-style) bottleneck.

   Sprout's problem domain (Table 1): link capacity that swings with radio
   conditions. The simulator supports piecewise-constant capacity
   schedules, so algorithms can be compared on how fast they track the
   changes. Here capacity alternates between 16 and 4 Mbit/s every two
   seconds and three controllers race it: CCP Cubic (loss-based: fills the
   buffer at every downswing), CCP BBR (rate-based: re-estimates the
   bottleneck each probe cycle), and CCP Vegas (delay-based: backs off as
   soon as queueing delay appears).

     dune exec examples/cellular.exe *)

open Ccp_util
open Ccp_core

let schedule =
  (* 16 <-> 4 Mbit/s square wave, 4 s period, 20 s total. *)
  List.concat_map
    (fun i -> [ (Time_ns.sec (4 * i), 16e6); (Time_ns.sec ((4 * i) + 2), 4e6) ])
    [ 0; 1; 2; 3; 4 ]

let run ~label mk =
  let base =
    Experiment.default_config ~rate_bps:16e6 ~base_rtt:(Time_ns.ms 40)
      ~duration:(Time_ns.sec 20)
  in
  let config =
    {
      base with
      Experiment.warmup = Time_ns.sec 4;
      rate_schedule = schedule;
      buffer_bytes = 2 * 80_000 (* 2 BDP at the high rate: bufferbloat on the downswing *);
      flows = [ Experiment.flow (mk ()) ];
    }
  in
  let r = Experiment.run config in
  Printf.printf "%-11s goodput=%5.1f Mbit/s  median RTT=%-9s p95 RTT=%-9s drops=%d\n" label
    ((List.hd r.Experiment.flows).Experiment.goodput_bps /. 1e6)
    (Time_ns.to_string r.Experiment.median_rtt)
    (Time_ns.to_string r.Experiment.p95_rtt)
    r.Experiment.drops

let () =
  Printf.printf
    "Cellular-style link: capacity alternates 16 <-> 4 Mbit/s every 2 s (mean 10 Mbit/s),\n\
     40 ms base RTT, 2-BDP buffer:\n\n";
  run ~label:"ccp cubic" (fun () -> Experiment.Ccp_cc (Ccp_algorithms.Ccp_cubic.create ()));
  run ~label:"ccp bbr" (fun () -> Experiment.Ccp_cc (Ccp_algorithms.Ccp_bbr.create ()));
  run ~label:"ccp vegas" (fun () -> Experiment.Ccp_cc (Ccp_algorithms.Ccp_vegas.create `Fold));
  Printf.printf
    "\nLoss-based control pays for the downswings in delay; delay- and rate-based\n\
     controllers keep the p95 RTT closer to the base at some throughput cost.\n"
