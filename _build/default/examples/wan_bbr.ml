(* WAN scenario: BBR's pulsed rate control as a CCP control program.

   The paper uses BBR (§2.1) as the motivating example for control
   programs with temporal structure: pulse the pacing rate to 1.25x for an
   RTT, drain at 0.75x for an RTT, cruise for six — with measurement
   windows synchronized to the pattern, something a once-per-RTT command
   stream could not express. This example runs CCP-BBR over a WAN-like
   path and shows (a) throughput/delay against Cubic on the same path and
   (b) the installed program text itself.

     dune exec examples/wan_bbr.exe *)

open Ccp_util
open Ccp_core

let run ~label mk =
  let base =
    Experiment.default_config ~rate_bps:50e6 ~base_rtt:(Time_ns.ms 40)
      ~duration:(Time_ns.sec 20)
  in
  let config =
    {
      base with
      Experiment.warmup = Time_ns.sec 4;
      (* A bloated buffer (4 BDP): loss-based control fills it; BBR should not. *)
      buffer_bytes = 4 * 1_000_000;
      flows = [ Experiment.flow (mk ()) ];
    }
  in
  let r = Experiment.run config in
  Printf.printf "%-12s goodput=%5.1f Mbit/s  median RTT=%-10s p95 RTT=%-10s drops=%d\n" label
    ((List.hd r.Experiment.flows).Experiment.goodput_bps /. 1e6)
    (Time_ns.to_string r.Experiment.median_rtt)
    (Time_ns.to_string r.Experiment.p95_rtt)
    r.Experiment.drops

let () =
  Printf.printf "BBR vs Cubic on a 50 Mbit/s, 40 ms WAN path with a 4-BDP (bufferbloated) queue:\n\n";
  run ~label:"ccp bbr" (fun () -> Experiment.Ccp_cc (Ccp_algorithms.Ccp_bbr.create ()));
  run ~label:"ccp cubic" (fun () -> Experiment.Ccp_cc (Ccp_algorithms.Ccp_cubic.create ()));
  Printf.printf
    "\nBBR holds the RTT near the 40 ms base while Cubic fills the bloated buffer.\n\n";
  (* Show the actual probe-cycle program BBR installs, in surface syntax. *)
  let example_program =
    Ccp_lang.Parser.parse_program
      "Measure(fold { init { maxrate = 0; minrtt = 1e12 }\n\
       \               update { maxrate = max(maxrate, pkt.recv_rate);\n\
       \                        minrtt = min(minrtt, pkt.rtt_us) } })\n\
       .Cwnd(2000000).Rate(1.25 * 6250000.0).WaitRtts(1.0).Report()\n\
       .Rate(0.75 * 6250000.0).WaitRtts(1.0).Report()\n\
       .Rate(6250000.0).WaitRtts(6.0).Report()"
  in
  Printf.printf "the probe-cycle control program (paper §2.1), round-tripped through the parser:\n%s\n"
    (Ccp_lang.Pretty.program_to_string example_program)
