(* Writing a NEW congestion control algorithm against the CCP API.

   The paper's central promise (§2.2): an algorithm is three user-space
   event handlers plus Install — no kernel code, no datapath knowledge.
   This example writes a delay-capped AIMD scheme from scratch, in ~40
   lines, including its control program in the surface syntax:

   - each RTT, grow the window by one segment;
   - if the smoothed RTT exceeds 1.5x the minimum RTT, shrink by 10%
     (delay-based backoff, so queues stay short);
   - on an urgent loss event, halve.

     dune exec examples/custom_algorithm.exe *)

open Ccp_util
open Ccp_agent
open Ccp_core

(* --- the algorithm: everything the developer writes --- *)

let delay_capped_aimd () : Algorithm.t =
  let make (handle : Algorithm.handle) =
    let mss = handle.info.mss in
    let cwnd = ref handle.info.init_cwnd in
    (* The control program, written in the textual language. The datapath
       folds per-ACK measurements and reports once per RTT. *)
    let push () =
      handle.install_text
        (Printf.sprintf
           "Measure(fold { init { acked = 0; minrtt = 1e12 }\n\
           \                update { acked = acked + pkt.bytes_acked;\n\
           \                         minrtt = min(minrtt, pkt.rtt_us) } })\n\
            .Cwnd(%d).WaitRtts(1.0).Report()"
           !cwnd)
    in
    let on_report report =
      let srtt = Algorithm.field_exn report "_srtt_us" in
      let minrtt = Algorithm.field_exn report "_minrtt_us" in
      if minrtt > 0.0 && srtt > 1.5 *. minrtt then
        cwnd := max (2 * mss) (!cwnd * 9 / 10) (* back off before queues build *)
      else if Algorithm.field_exn report "acked" > 0.0 then cwnd := !cwnd + mss;
      push ()
    in
    let on_urgent (_ : Ccp_ipc.Message.urgent) =
      cwnd := max (2 * mss) (!cwnd / 2);
      push ()
    in
    { Algorithm.no_op_handlers with on_ready = push; on_report; on_urgent }
  in
  { Algorithm.name = "delay-capped-aimd"; make }

(* --- running it: identical to any built-in algorithm --- *)

let () =
  let config =
    Experiment.default_config ~rate_bps:100e6 ~base_rtt:(Time_ns.ms 20)
      ~duration:(Time_ns.sec 12)
  in
  let config =
    { config with
      Experiment.warmup = Time_ns.sec 2;
      flows = [ Experiment.flow (Experiment.Ccp_cc (delay_capped_aimd ())) ] }
  in
  let result = Experiment.run config in
  Printf.printf "delay-capped AIMD (written in this file, ~40 lines):\n";
  Printf.printf "  utilization  %.1f%%\n" (100.0 *. result.Experiment.utilization);
  Printf.printf "  median RTT   %s (base RTT 20 ms — short queues by design)\n"
    (Time_ns.to_string result.Experiment.median_rtt);
  Printf.printf "  drops        %d\n" result.Experiment.drops;
  Printf.printf
    "\nCompare: the Linux kernel's cubic implementation needs a fixed-point cube root\n\
     (42 lines of C) because the kernel forbids floating point (§2.2).\n"
