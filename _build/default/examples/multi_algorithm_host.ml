(* Multiple algorithms on one host, with agent policy.

   §2 of the paper: "it is possible to run multiple algorithms on the same
   host, e.g., file downloads and video calls could use different
   transmission algorithms", and the agent "imposes policies on the
   decisions of the congestion control algorithms, e.g., per-connection
   maximum transmission rates."

   Here one agent serves three flows over one shared 100 Mbit/s link:
   - flow 0, a bulk download, runs CCP Cubic;
   - flow 1, a "video call", runs CCP BBR capped by policy at 8 Mbit/s;
   - flow 2, a background sync, runs CCP Vegas (it yields under load).

     dune exec examples/multi_algorithm_host.exe *)

open Ccp_util
open Ccp_agent
open Ccp_core

let () =
  let base =
    Experiment.default_config ~rate_bps:100e6 ~base_rtt:(Time_ns.ms 20)
      ~duration:(Time_ns.sec 20)
  in
  (* The policy function: the agent clamps flow 1's rate and window; the
     caps are compiled into every program it installs (Rate/Cwnd get
     wrapped in min()), so they hold between agent decisions too. *)
  let policy (info : Algorithm.flow_info) =
    if info.Algorithm.flow = 1 then
      {
        Policy.max_rate_bps = Some 1_000_000.0 (* 8 Mbit/s in bytes/s *);
        max_cwnd_bytes = Some 80_000;
        min_cwnd_bytes = Some (2 * info.Algorithm.mss);
      }
    else Policy.unrestricted
  in
  let config =
    {
      base with
      Experiment.warmup = Time_ns.sec 4;
      policy = Some policy;
      flows =
        [
          Experiment.flow (Experiment.Ccp_cc (Ccp_algorithms.Ccp_cubic.create ()));
          Experiment.flow (Experiment.Ccp_cc (Ccp_algorithms.Ccp_bbr.create ()));
          Experiment.flow (Experiment.Ccp_cc (Ccp_algorithms.Ccp_vegas.create `Fold));
        ];
    }
  in
  let r = Experiment.run config in
  Printf.printf
    "three algorithms, one host, one agent (100 Mbit/s shared; flow 1 policy-capped at 8 Mbit/s):\n\n";
  List.iter
    (fun (f : Experiment.flow_result) ->
      Printf.printf "  flow %d %-16s goodput %6.2f Mbit/s   mean RTT %s\n" f.flow_id
        (f.cc_name ^ (if f.flow_id = 1 then " (capped)" else ""))
        (f.goodput_bps /. 1e6) (Time_ns.to_string f.mean_rtt))
    r.Experiment.flows;
  Printf.printf "\n  total utilization %.1f%%   drops %d\n"
    (100.0 *. r.Experiment.utilization) r.Experiment.drops;
  match r.Experiment.agent_stats with
  | Some s ->
    Printf.printf "  one agent handled %d reports and %d urgent events across all flows\n"
      s.Experiment.reports s.Experiment.urgents
  | None -> ()
