(* Datacenter scenario: DCTCP over an ECN-marking bottleneck.

   Eight flows share a 1 Gbit/s link with a 200 µs base RTT — datacenter
   numbers — and the switch marks ECN once its queue passes a shallow
   threshold, as DCTCP requires. The same workload runs twice: once with
   the in-datapath DCTCP baseline and once with DCTCP implemented in the
   CCP agent (the ECN *fraction* is folded per RTT; §2.1's point that the
   signal survives batching).

     dune exec examples/datacenter_dctcp.exe *)

open Ccp_util
open Ccp_core

let run ~label mk =
  let rate_bps = 1e9 and base_rtt = Time_ns.us 200 in
  let base =
    Experiment.default_config ~rate_bps ~base_rtt ~duration:(Time_ns.of_float_sec 2.0)
  in
  let config =
    {
      base with
      Experiment.warmup = Time_ns.of_float_sec 0.5;
      (* Deep buffer, shallow marking threshold: DCTCP's operating point. *)
      buffer_bytes = 500_000;
      ecn_threshold_bytes = Some 65_000;
      flows = List.init 8 (fun _ -> Experiment.flow (mk ()));
      sample_interval = Time_ns.ms 20;
    }
  in
  let r = Experiment.run config in
  Printf.printf "%-14s util=%5.1f%%  median RTT=%-10s drops=%-4d ECN marks=%-6d jain=%.3f\n"
    label
    (100.0 *. r.Experiment.utilization)
    (Time_ns.to_string r.Experiment.median_rtt)
    r.Experiment.drops r.Experiment.ecn_marks r.Experiment.jain_index

let () =
  Printf.printf
    "DCTCP, 8 flows, 1 Gbit/s, 200 us RTT, ECN threshold 65 KB (drops should be ~0;\n\
     RTT should stay near the base because the marking keeps queues shallow):\n\n";
  run ~label:"native dctcp" (fun () -> Experiment.Native_cc Ccp_algorithms.Native_dctcp.create);
  run ~label:"ccp dctcp" (fun () -> Experiment.Ccp_cc (Ccp_algorithms.Ccp_dctcp.create ()));
  Printf.printf
    "\nfor contrast, loss-based Reno on the same link (fills the buffer, drops packets):\n\n";
  run ~label:"native reno" (fun () ->
      Experiment.Native_cc (fun () -> Ccp_algorithms.Native_reno.create_with ~react_to_ecn:false ()))
