examples/multi_algorithm_host.mli:
