examples/wan_bbr.ml: Ccp_algorithms Ccp_core Ccp_lang Ccp_util Experiment List Printf Time_ns
