examples/quickstart.ml: Ccp_algorithms Ccp_core Ccp_net Ccp_util Experiment List Printf Time_ns
