examples/datacenter_dctcp.ml: Ccp_algorithms Ccp_core Ccp_util Experiment List Printf Time_ns
