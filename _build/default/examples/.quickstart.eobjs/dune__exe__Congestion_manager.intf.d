examples/congestion_manager.mli:
