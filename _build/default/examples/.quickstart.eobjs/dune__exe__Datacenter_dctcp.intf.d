examples/datacenter_dctcp.mli:
