examples/custom_algorithm.ml: Algorithm Ccp_agent Ccp_core Ccp_ipc Ccp_util Experiment Printf Time_ns
