examples/quickstart.mli:
