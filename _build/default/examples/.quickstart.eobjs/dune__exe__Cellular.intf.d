examples/cellular.mli:
