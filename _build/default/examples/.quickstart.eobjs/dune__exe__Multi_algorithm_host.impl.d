examples/multi_algorithm_host.ml: Algorithm Ccp_agent Ccp_algorithms Ccp_core Ccp_util Experiment List Policy Printf Time_ns
