examples/wan_bbr.mli:
