(* Congestion-manager-style aggregation (§5 / §4's CM discussion).

   Five flows to the same destination share ONE congestion controller:
   the aggregate probes the bottleneck once (not five times), every
   member's loss is one shared signal, and a flow that joins late gets
   its fair share instantly instead of slow-starting from scratch.

   The same workload then runs with five independent CCP Reno controllers
   for contrast: they compete against each other at the shared bottleneck.

     dune exec examples/congestion_manager.exe *)

open Ccp_util
open Ccp_core

let run ~label mk_flows =
  let base =
    Experiment.default_config ~rate_bps:50e6 ~base_rtt:(Time_ns.ms 20)
      ~duration:(Time_ns.sec 20)
  in
  let config =
    { base with Experiment.warmup = Time_ns.sec 5; flows = mk_flows () }
  in
  let r = Experiment.run config in
  Printf.printf "%-22s util=%5.1f%%  jain=%.4f  drops=%-5d median RTT=%s\n" label
    (100.0 *. r.Experiment.utilization)
    r.Experiment.jain_index r.Experiment.drops
    (Time_ns.to_string r.Experiment.median_rtt);
  r

let staggered_starts mk =
  (* Flows join at 0, 1, 2, 3, 4 seconds. *)
  List.init 5 (fun i -> Experiment.flow ~start_at:(Time_ns.sec i) (mk i))

let () =
  Printf.printf "five flows, one 50 Mbit/s bottleneck, staggered joins (0..4 s):\n\n";
  let aggregate = Ccp_algorithms.Ccp_aggregate.create () in
  let shared = Ccp_algorithms.Ccp_aggregate.algorithm aggregate in
  ignore
    (run ~label:"one aggregate (CM)" (fun () ->
         staggered_starts (fun _ -> Experiment.Ccp_cc shared)));
  Printf.printf "  (aggregate window at end: %d bytes across %d members)\n\n"
    (Ccp_algorithms.Ccp_aggregate.aggregate_cwnd aggregate)
    (Ccp_algorithms.Ccp_aggregate.member_count aggregate);
  ignore
    (run ~label:"five independent renos" (fun () ->
         staggered_starts (fun _ -> Experiment.Ccp_cc (Ccp_algorithms.Ccp_reno.create ()))));
  Printf.printf
    "\nThe aggregate reaches near-perfect fairness immediately (every member is\n\
     programmed with an equal share) and probes the bottleneck as one flow;\n\
     independent controllers need to collide with each other to converge.\n"
