(* Tests for the control-program language: lexer, parser, validation,
   evaluation, folds, and pretty-printer round-trips. *)

open Ccp_lang

let parse = Parser.parse_program
let parse_e = Parser.parse_expr

(* --- Lexer --- *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "Rate(1.25 * r) # comment\n.Report()" in
  Alcotest.(check int) "token count" 11 (List.length toks);
  match toks with
  | Lexer.IDENT "Rate" :: Lexer.LPAREN :: Lexer.NUMBER f :: Lexer.STAR :: Lexer.IDENT "r" :: _
    ->
    Alcotest.(check (float 1e-9)) "number" 1.25 f
  | _ -> Alcotest.fail "unexpected token stream"

let test_lexer_number_vs_dot () =
  (* "1.0.Report" must lex as NUMBER 1.0, DOT, IDENT. *)
  match Lexer.tokenize "WaitRtts(1.0).Report()" with
  | [ Lexer.IDENT "WaitRtts"; Lexer.LPAREN; Lexer.NUMBER f; Lexer.RPAREN; Lexer.DOT;
      Lexer.IDENT "Report"; Lexer.LPAREN; Lexer.RPAREN; Lexer.EOF ] ->
    Alcotest.(check (float 1e-9)) "1.0" 1.0 f
  | _ -> Alcotest.fail "dot disambiguation failed"

let test_lexer_scientific () =
  match Lexer.tokenize "1e12 2.5e-3" with
  | [ Lexer.NUMBER a; Lexer.NUMBER b; Lexer.EOF ] ->
    Alcotest.(check (float 1e-9)) "1e12" 1e12 a;
    Alcotest.(check (float 1e-12)) "2.5e-3" 2.5e-3 b
  | _ -> Alcotest.fail "scientific notation"

let test_lexer_error () =
  match Lexer.tokenize "Rate($)" with
  | exception Lexer.Lex_error { position = 5; _ } -> ()
  | exception Lexer.Lex_error _ -> Alcotest.fail "wrong position"
  | _ -> Alcotest.fail "expected lex error"

(* --- Parser --- *)

let test_parse_precedence () =
  let e = parse_e "1 + 2 * 3" in
  Alcotest.(check bool) "mul binds tighter" true
    (Ast.equal_expr e (Ast.Bin (Ast.Add, Ast.Const 1.0, Ast.Bin (Ast.Mul, Ast.Const 2.0, Ast.Const 3.0))));
  let e2 = parse_e "(1 + 2) * 3" in
  Alcotest.(check bool) "parens override" true
    (Ast.equal_expr e2
       (Ast.Bin (Ast.Mul, Ast.Bin (Ast.Add, Ast.Const 1.0, Ast.Const 2.0), Ast.Const 3.0)));
  let e3 = parse_e "10 - 3 - 2" in
  Alcotest.(check bool) "left assoc" true
    (Ast.equal_expr e3
       (Ast.Bin (Ast.Sub, Ast.Bin (Ast.Sub, Ast.Const 10.0, Ast.Const 3.0), Ast.Const 2.0)))

let test_parse_pkt_and_calls () =
  let e = parse_e "min(pkt.rtt_us, minrtt_us) + mss" in
  match e with
  | Ast.Bin (Ast.Add, Ast.Call ("min", [ Ast.Pkt "rtt_us"; Ast.Var "minrtt_us" ]), Ast.Var "mss")
    ->
    ()
  | _ -> Alcotest.fail "pkt/call parse"

let test_parse_bbr_program () =
  let p =
    parse
      "Measure(rtt_us).Rate(1.25 * rate).WaitRtts(1.0).Report().Rate(0.75 * \
       rate).WaitRtts(1.0).Report().Rate(rate).WaitRtts(6.0).Report()"
  in
  Alcotest.(check int) "ten primitives" 10 (List.length p.Ast.prims);
  Alcotest.(check bool) "repeats by default" true p.Ast.repeat

let test_parse_once () =
  let p = parse "Cwnd(10000).Report().Once()" in
  Alcotest.(check bool) "once" false p.Ast.repeat;
  Alcotest.(check int) "once not a prim" 2 (List.length p.Ast.prims)

let test_parse_fold () =
  let p =
    parse
      "Measure(fold { init { acked = 0; minrtt = 1e12 } update { acked = acked + \
       pkt.bytes_acked; minrtt = min(minrtt, pkt.rtt_us) } }).WaitRtts(1.0).Report()"
  in
  match p.Ast.prims with
  | Ast.Measure (Ast.Fold { init; update }) :: _ ->
    Alcotest.(check (list string)) "init fields" [ "acked"; "minrtt" ] (List.map fst init);
    Alcotest.(check (list string)) "update fields" [ "acked"; "minrtt" ] (List.map fst update)
  | _ -> Alcotest.fail "expected fold"

let test_parse_vector () =
  match (parse "Measure(rtt_us, bytes_acked).WaitRtts(1.0).Report()").Ast.prims with
  | Ast.Measure (Ast.Vector fields) :: _ ->
    Alcotest.(check (list string)) "fields" [ "rtt_us"; "bytes_acked" ] fields
  | _ -> Alcotest.fail "expected vector"

let expect_parse_error src =
  match parse src with
  | _ -> Alcotest.fail ("expected parse error for: " ^ src)
  | exception Parser.Parse_error _ -> ()

let test_parse_errors () =
  expect_parse_error "";
  expect_parse_error "Bogus(1)";
  expect_parse_error "Rate(1";
  expect_parse_error "Rate(1))";
  expect_parse_error "Rate(1).";
  expect_parse_error "Measure(fold { update { x = 1 } init { x = 0 } })" (* wrong order *)

(* --- Typecheck --- *)

let ok src =
  match Typecheck.check (parse src) with
  | Ok _ -> ()
  | Error (e :: _) -> Alcotest.failf "unexpected error: %a" Typecheck.pp_error e
  | Error [] -> assert false

let bad src =
  match Typecheck.check (parse src) with
  | Ok _ -> Alcotest.failf "expected rejection of %s" src
  | Error _ -> ()

let test_typecheck_accepts () =
  ok "Cwnd(cwnd + 2 * mss).WaitRtts(1.0).Report()";
  ok "Rate(min(rate, 1e9)).Wait(5000).Report()";
  ok
    "Measure(fold { init { a = 0 } update { a = a + pkt.bytes_acked } \
     }).Cwnd(cwnd).WaitRtts(1.0).Report()";
  ok "Cwnd(10000).Once()"

let test_typecheck_rejects () =
  bad "Cwnd(nonexistent).WaitRtts(1.0).Report()";
  bad "Cwnd(pkt.rtt_us).WaitRtts(1.0).Report()" (* pkt outside fold *);
  bad "Cwnd(min(1)).WaitRtts(1.0).Report()" (* arity *);
  bad "Cwnd(frobnicate(1, 2)).WaitRtts(1.0).Report()" (* unknown function *);
  bad "Measure(nonfield).WaitRtts(1.0).Report()" (* unknown vector field *);
  bad
    "Measure(fold { init { a = 0; a = 1 } update { } }).WaitRtts(1.0).Report()"
    (* duplicate field *);
  bad
    "Measure(fold { init { a = 0 } update { b = 1 } }).WaitRtts(1.0).Report()"
    (* assign to undeclared *);
  bad "Cwnd(10000).Report()" (* repeating program with no wait *)

let test_typecheck_warnings () =
  (match Typecheck.check (parse "Cwnd(10000).WaitRtts(1.0)") with
  | Ok warnings -> Alcotest.(check bool) "warns on no report" true (warnings <> [])
  | Error _ -> Alcotest.fail "should pass with warning");
  match Typecheck.check (parse "Report().Cwnd(1000).Once()") with
  | Ok warnings -> Alcotest.(check bool) "warns on trailing prims" true (warnings <> [])
  | Error _ -> Alcotest.fail "should pass with warning"

(* --- Eval --- *)

let env ?(vars = []) ?(pkts = []) () =
  { Eval.lookup_var = (fun n -> List.assoc_opt n vars);
    lookup_pkt = (fun n -> List.assoc_opt n pkts) }

let test_eval_arithmetic () =
  let e = env ~vars:[ ("x", 10.0) ] () in
  Alcotest.(check (float 1e-9)) "expr" 31.0 (Eval.eval e (parse_e "3 * x + 1"));
  Alcotest.(check (float 1e-9)) "sub/div" 4.5 (Eval.eval e (parse_e "(x - 1) / 2"));
  Alcotest.(check (float 1e-9)) "neg" (-10.0) (Eval.eval e (parse_e "-x"))

let test_eval_builtins () =
  let e = env () in
  Alcotest.(check (float 1e-9)) "min" 2.0 (Eval.eval e (parse_e "min(2, 3)"));
  Alcotest.(check (float 1e-9)) "max" 3.0 (Eval.eval e (parse_e "max(2, 3)"));
  Alcotest.(check (float 1e-9)) "abs" 4.0 (Eval.eval e (parse_e "abs(0 - 4)"));
  Alcotest.(check (float 1e-9)) "sqrt" 3.0 (Eval.eval e (parse_e "sqrt(9)"));
  Alcotest.(check (float 1e-6)) "pow cube root" 2.0 (Eval.eval e (parse_e "pow(8, 1 / 3)"));
  Alcotest.(check (float 1e-9)) "if_lt true" 1.0 (Eval.eval e (parse_e "if_lt(1, 2, 1, 0)"));
  Alcotest.(check (float 1e-9)) "if_lt false" 0.0 (Eval.eval e (parse_e "if_lt(3, 2, 1, 0)"));
  Alcotest.(check (float 1e-9)) "if_ge" 7.0 (Eval.eval e (parse_e "if_ge(2, 2, 7, 0)"))

let test_eval_total () =
  let incidents = Eval.fresh_counter () in
  let e = env () in
  Alcotest.(check (float 1e-9)) "div by zero -> 0" 0.0
    (Eval.eval ~incidents e (parse_e "1 / 0"));
  Alcotest.(check int) "incident counted" 1 incidents.Eval.div_by_zero;
  Alcotest.(check (float 1e-9)) "unknown var -> 0" 0.0
    (Eval.eval ~incidents e (parse_e "mystery"));
  Alcotest.(check int) "unknown counted" 1 incidents.Eval.unknown_name;
  Alcotest.(check (float 1e-9)) "sqrt of negative -> 0" 0.0
    (Eval.eval e (parse_e "sqrt(0 - 1)"))

(* --- Fold --- *)

let vegas_like_fold =
  match
    parse
      "Measure(fold { init { basertt = 1e12; count = 0 } update { basertt = min(basertt, \
       pkt.rtt_us); count = count + 1 } }).WaitRtts(1.0).Report()"
  with
  | { Ast.prims = Ast.Measure (Ast.Fold def) :: _; _ } -> def
  | _ -> assert false

let test_fold_lifecycle () =
  let flow_env = function "minrtt_us" -> Some 5000.0 | _ -> None in
  let fold = Fold.create vegas_like_fold ~flow_env in
  Alcotest.(check (option (float 1e-9))) "init" (Some 1e12) (Fold.get fold "basertt");
  let pkt rtt = function "rtt_us" -> Some rtt | _ -> None in
  Fold.step fold ~flow_env ~pkt_env:(pkt 10_000.0);
  Fold.step fold ~flow_env ~pkt_env:(pkt 8_000.0);
  Fold.step fold ~flow_env ~pkt_env:(pkt 9_000.0);
  Alcotest.(check (option (float 1e-9))) "min tracked" (Some 8_000.0) (Fold.get fold "basertt");
  Alcotest.(check (option (float 1e-9))) "count" (Some 3.0) (Fold.get fold "count");
  Alcotest.(check int) "packet_count" 3 (Fold.packet_count fold);
  Fold.reset fold ~flow_env;
  Alcotest.(check (option (float 1e-9))) "reset" (Some 1e12) (Fold.get fold "basertt");
  Alcotest.(check int) "count reset" 0 (Fold.packet_count fold)

let test_fold_simultaneous_update () =
  (* swap-like updates must read the OLD state on both right-hand sides. *)
  let def =
    { Ast.init = [ ("a", Ast.Const 1.0); ("b", Ast.Const 2.0) ];
      update = [ ("a", Ast.Var "b"); ("b", Ast.Var "a") ] }
  in
  let flow_env _ = None in
  let fold = Fold.create def ~flow_env in
  Fold.step fold ~flow_env ~pkt_env:(fun _ -> None);
  Alcotest.(check (option (float 1e-9))) "a = old b" (Some 2.0) (Fold.get fold "a");
  Alcotest.(check (option (float 1e-9))) "b = old a" (Some 1.0) (Fold.get fold "b")

let test_fold_state_shadows_flow_vars () =
  (* A state field named like a flow variable shadows it in updates. *)
  let def =
    { Ast.init = [ ("cwnd", Ast.Const 111.0) ]; update = [ ("cwnd", Ast.Bin (Ast.Add, Ast.Var "cwnd", Ast.Const 1.0)) ] }
  in
  let flow_env = function "cwnd" -> Some 999.0 | _ -> None in
  let fold = Fold.create def ~flow_env in
  Fold.step fold ~flow_env ~pkt_env:(fun _ -> None);
  Alcotest.(check (option (float 1e-9))) "shadowed" (Some 112.0) (Fold.get fold "cwnd")

(* --- Pretty / round-trip --- *)

let test_pretty_round_trip_examples () =
  let sources =
    [
      "Measure(rtt_us, bytes_acked).Cwnd(cwnd + 2.0 * mss).WaitRtts(1.0).Report()";
      "Rate(1.25 * rate).WaitRtts(1.0).Report().Rate(0.75 * rate).WaitRtts(1.0).Report()";
      "Measure(fold { init { a = 0.0 } update { a = a + pkt.bytes_acked } \
       }).WaitRtts(1.0).Report()";
      "Cwnd(10000.0).Report().Once()";
    ]
  in
  List.iter
    (fun src ->
      let p = parse src in
      let printed = Pretty.program_to_string p in
      let reparsed = parse printed in
      Alcotest.(check bool) (Printf.sprintf "round-trip %s" src) true
        (Ast.equal_program p reparsed))
    sources

(* Random program generator for the parse/print round-trip property. *)
let gen_expr =
  let open QCheck.Gen in
  sized (fun size ->
      fix
        (fun self (size, pkt_ok) ->
          let leaf =
            oneof
              ([ map (fun f -> Ast.Const (Float.abs f)) (float_bound_inclusive 1e6);
                 oneofl (List.map (fun (v, _) -> Ast.Var v) Ast.Vars.flow_vars) ]
              @
              if pkt_ok then
                [ oneofl (List.map (fun (f, _) -> Ast.Pkt f) Ast.Vars.pkt_fields) ]
              else [])
          in
          if size <= 1 then leaf
          else
            oneof
              [
                leaf;
                map2
                  (fun op (l, r) -> Ast.Bin (op, l, r))
                  (oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div ])
                  (pair (self (size / 2, pkt_ok)) (self (size / 2, pkt_ok)));
                map (fun e -> Ast.Neg e) (self (size - 1, pkt_ok));
                map2
                  (fun (l, r) name -> Ast.Call (name, [ l; r ]))
                  (pair (self (size / 2, pkt_ok)) (self (size / 2, pkt_ok)))
                  (oneofl [ "min"; "max"; "pow" ]);
              ])
        (min size 8, false))

let gen_program =
  let open QCheck.Gen in
  let prim =
    oneof
      [
        map (fun e -> Ast.Rate e) gen_expr;
        map (fun e -> Ast.Cwnd e) gen_expr;
        map (fun e -> Ast.Wait e) gen_expr;
        map (fun e -> Ast.Wait_rtts e) gen_expr;
        return Ast.Report;
      ]
  in
  map2
    (fun prims repeat -> { Ast.prims; repeat })
    (list_size (int_range 1 6) prim)
    bool

let prop_pretty_parse_round_trip =
  QCheck.Test.make ~name:"pretty/parse round-trip" ~count:300
    (QCheck.make gen_program ~print:Pretty.program_to_string)
    (fun p -> Ast.equal_program p (parse (Pretty.program_to_string p)))

let suite =
  [
    ( "lang.lexer",
      [
        Alcotest.test_case "tokens and comments" `Quick test_lexer_tokens;
        Alcotest.test_case "number/dot disambiguation" `Quick test_lexer_number_vs_dot;
        Alcotest.test_case "scientific notation" `Quick test_lexer_scientific;
        Alcotest.test_case "error position" `Quick test_lexer_error;
      ] );
    ( "lang.parser",
      [
        Alcotest.test_case "precedence" `Quick test_parse_precedence;
        Alcotest.test_case "pkt fields and calls" `Quick test_parse_pkt_and_calls;
        Alcotest.test_case "bbr program" `Quick test_parse_bbr_program;
        Alcotest.test_case "once" `Quick test_parse_once;
        Alcotest.test_case "fold" `Quick test_parse_fold;
        Alcotest.test_case "vector" `Quick test_parse_vector;
        Alcotest.test_case "errors" `Quick test_parse_errors;
      ] );
    ( "lang.typecheck",
      [
        Alcotest.test_case "accepts valid" `Quick test_typecheck_accepts;
        Alcotest.test_case "rejects invalid" `Quick test_typecheck_rejects;
        Alcotest.test_case "warnings" `Quick test_typecheck_warnings;
      ] );
    ( "lang.eval",
      [
        Alcotest.test_case "arithmetic" `Quick test_eval_arithmetic;
        Alcotest.test_case "builtins" `Quick test_eval_builtins;
        Alcotest.test_case "totality" `Quick test_eval_total;
      ] );
    ( "lang.fold",
      [
        Alcotest.test_case "lifecycle" `Quick test_fold_lifecycle;
        Alcotest.test_case "simultaneous update" `Quick test_fold_simultaneous_update;
        Alcotest.test_case "state shadows flow vars" `Quick test_fold_state_shadows_flow_vars;
      ] );
    ( "lang.pretty",
      [
        Alcotest.test_case "round-trip examples" `Quick test_pretty_round_trip_examples;
        QCheck_alcotest.to_alcotest prop_pretty_parse_round_trip;
      ] );
  ]
