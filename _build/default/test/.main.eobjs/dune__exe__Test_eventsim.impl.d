test/test_eventsim.ml: Alcotest Ccp_eventsim Ccp_util Fun List Rng Sim Time_ns
