test/test_agent.ml: Agent Alcotest Algorithm Ccp_agent Ccp_eventsim Ccp_ipc Ccp_lang Ccp_util Channel Latency_model List Message Policy Sim Time_ns
