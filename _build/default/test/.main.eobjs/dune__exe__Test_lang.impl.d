test/test_lang.ml: Alcotest Ast Ccp_lang Eval Float Fold Lexer List Parser Pretty Printf QCheck QCheck_alcotest Typecheck
