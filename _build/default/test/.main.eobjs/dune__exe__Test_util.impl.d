test/test_util.ml: Alcotest Array Ccp_util Float Fun Gen Heap Int List Option QCheck QCheck_alcotest Rng Stats Time_ns
