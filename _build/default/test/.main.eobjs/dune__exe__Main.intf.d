test/main.mli:
