test/test_net.ml: Alcotest Ccp_eventsim Ccp_net Ccp_util Link List Offload Packet Queue_disc Rng Sim String Time_ns Topology Trace
