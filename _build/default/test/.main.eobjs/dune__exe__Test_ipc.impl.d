test/test_ipc.ml: Alcotest Array Ccp_eventsim Ccp_ipc Ccp_lang Ccp_util Channel Codec Float Fun Latency_model List Message Printf QCheck QCheck_alcotest Rng Sim Stats Time_ns Wire
