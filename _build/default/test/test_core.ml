(* Tests for the experiment driver and reporting layer, plus heavyweight
   randomized robustness properties over the full datapath. *)

open Ccp_util
open Ccp_eventsim
open Ccp_net
open Ccp_datapath
open Ccp_core

let test_default_config_invariants () =
  let c = Experiment.default_config ~rate_bps:1e9 ~base_rtt:(Time_ns.ms 10)
      ~duration:(Time_ns.sec 1) in
  Alcotest.(check int) "buffer = 1 BDP" 1_250_000 c.Experiment.buffer_bytes;
  Alcotest.(check int) "no warmup" 0 c.Experiment.warmup;
  Alcotest.(check bool) "no flows yet" true (c.Experiment.flows = [])

let test_run_rejects_empty () =
  let c = Experiment.default_config ~rate_bps:1e6 ~base_rtt:(Time_ns.ms 10)
      ~duration:(Time_ns.sec 1) in
  Alcotest.check_raises "no flows" (Invalid_argument "Experiment.run: no flows") (fun () ->
      ignore (Experiment.run c))

let test_result_metadata () =
  let c = Experiment.default_config ~rate_bps:10e6 ~base_rtt:(Time_ns.ms 10)
      ~duration:(Time_ns.sec 2) in
  let c =
    { c with
      Experiment.flows =
        [
          Experiment.flow (Experiment.Native_cc Ccp_algorithms.Native_reno.create);
          Experiment.flow (Experiment.Ccp_cc (Ccp_algorithms.Ccp_aimd.create ()));
        ] }
  in
  let r = Experiment.run c in
  let names = List.map (fun (f : Experiment.flow_result) -> f.cc_name) r.Experiment.flows in
  Alcotest.(check (list string)) "cc names" [ "reno"; "ccp-aimd" ] names;
  Alcotest.(check bool) "agent stats present" true (r.Experiment.agent_stats <> None);
  Alcotest.(check bool) "no cpu stats without offloads" true
    (r.Experiment.sender_cpu = None && r.Experiment.receiver_cpu = None);
  (* Traces exist for both flows. *)
  Alcotest.(check bool) "cwnd traces" true
    (Trace.series r.Experiment.trace "cwnd.0" <> []
    && Trace.series r.Experiment.trace "cwnd.1" <> []);
  Alcotest.(check bool) "queue trace" true (Trace.series r.Experiment.trace "queue_bytes" <> [])

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Report.sparkline []);
  let s = Report.sparkline [ 0.0; 1.0; 2.0; 3.0 ] in
  (* Four glyphs; each sparkline level is a 1- or 3-byte UTF-8 char. *)
  Alcotest.(check bool) "nonempty" true (String.length s > 0);
  let flat = Report.sparkline [ 5.0; 5.0; 5.0 ] in
  Alcotest.(check bool) "flat series works" true (String.length flat > 0)

let test_series_csv () =
  let c = Experiment.default_config ~rate_bps:10e6 ~base_rtt:(Time_ns.ms 10)
      ~duration:(Time_ns.of_float_sec 0.5) in
  let c = { c with Experiment.flows = [ Experiment.flow (Experiment.Native_cc Ccp_algorithms.Native_reno.create) ] } in
  let r = Experiment.run c in
  let csv = Report.series_csv r ~series:"cwnd.0" in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check string) "header" "time_s,value" (List.hd lines);
  Alcotest.(check bool) "has rows" true (List.length lines > 2)

let test_fig4_convergence_detector () =
  (* Feed the detector a run where flow 1 starts late; it must report a
     time after the configured start, or never. *)
  let comparison = Scenarios.Fig4.run ~duration:(Time_ns.sec 34) () in
  (match Scenarios.Fig4.convergence_time comparison.Scenarios.ccp with
  | Some at ->
    Alcotest.(check bool) "after join" true
      (Time_ns.compare at Scenarios.Fig4.second_flow_start >= 0)
  | None -> Alcotest.fail "ccp reno never converged in 14s after join");
  match Scenarios.Fig4.convergence_time comparison.Scenarios.native with
  | Some _ -> ()
  | None -> Alcotest.fail "native reno never converged in 14s after join"

let test_sweep_single_point () =
  let points =
    Sweep.grid ~rates_bps:[ 20e6 ] ~rtts:[ Time_ns.ms 20 ] ~buffer_bdps:[ 1.0 ]
  in
  Alcotest.(check int) "one point" 1 (List.length points);
  let outcomes =
    Sweep.run ~duration:(Time_ns.sec 6) ~native:Ccp_algorithms.Native_reno.create
      ~ccp:(Ccp_algorithms.Ccp_reno.create ()) points
  in
  let o = List.hd outcomes in
  Alcotest.(check bool)
    (Printf.sprintf "small divergence (%.3f)" (Sweep.divergence o))
    true
    (Sweep.divergence o < 0.08);
  Alcotest.(check bool) "both utilize" true
    (o.Sweep.native_utilization > 0.8 && o.Sweep.ccp_utilization > 0.8);
  Alcotest.(check bool) "render mentions worst" true
    (String.length (Sweep.render outcomes) > 0)

let test_sweep_grid_shape () =
  Alcotest.(check int) "default grid size" 18 (List.length Sweep.default_grid);
  Alcotest.check_raises "worst of empty" (Invalid_argument "Sweep.worst: empty") (fun () ->
      ignore (Sweep.worst []))

(* --- randomized robustness properties (the expensive ones) --- *)

(* Any transfer completes exactly, whatever random subset of packets the
   network drops (up to 20%), because the scoreboard + RTO machinery
   recovers everything. *)
let prop_transfer_completes_under_random_loss =
  QCheck.Test.make ~name:"transfer completes under random loss" ~count:8
    QCheck.(pair (int_bound 1_000_000) (int_range 1 20))
    (fun (seed, loss_pct) ->
      let total = 120_000 in
      let sim = Sim.create ~seed:(seed + 1) () in
      let rng = Rng.create ~seed:(seed + 7) in
      let fwd =
        Link.create ~sim ~rate_bps:10e6 ~delay:(Time_ns.ms 5)
          ~qdisc:(Queue_disc.Droptail { capacity_bytes = 50_000; ecn_threshold_bytes = None })
          ()
      in
      let rev =
        Link.create ~sim ~rate_bps:100e6 ~delay:(Time_ns.ms 5)
          ~qdisc:(Queue_disc.Droptail { capacity_bytes = 10_000_000; ecn_threshold_bytes = None })
          ()
      in
      let receiver = Tcp_receiver.create ~flow:1 ~send_ack:(fun a -> Link.send rev a) () in
      Link.connect fwd (fun p -> Tcp_receiver.on_data receiver p);
      let cc = Ccp_algorithms.Native_reno.create () in
      let config = { Tcp_flow.default_config with app_limit_bytes = Some total } in
      let flow =
        Tcp_flow.create ~sim ~flow:1 ~config ~cc
          ~transmit:(fun pkt -> if Rng.int rng 100 >= loss_pct then Link.send fwd pkt)
          ()
      in
      Link.connect rev (fun a -> Tcp_flow.on_ack flow a);
      Tcp_flow.start flow;
      Sim.run ~until:(Time_ns.sec 120) sim;
      Tcp_receiver.delivered_bytes receiver = total && Tcp_flow.snd_una flow = total)

(* The receiver reassembles any arrival permutation of a segment stream. *)
let prop_receiver_reassembles_any_order =
  QCheck.Test.make ~name:"receiver reassembles any arrival order" ~count:100
    QCheck.(pair (int_range 1 40) (int_bound 1_000_000))
    (fun (segments, seed) ->
      let rng = Rng.create ~seed in
      let order = Array.init segments Fun.id in
      Rng.shuffle rng order;
      let receiver = Tcp_receiver.create ~flow:1 ~send_ack:(fun _ -> ()) () in
      Array.iter
        (fun i ->
          Tcp_receiver.on_data receiver
            (Packet.data ~flow:1 ~seq:(i * 1000) ~len:1000 ~sent_at:Time_ns.zero ()))
        order;
      Tcp_receiver.expected_seq receiver = segments * 1000
      && Tcp_receiver.out_of_order_bytes receiver = 0)

(* Codec fuzz: random bytes either decode to some message or raise the
   documented exceptions — never anything else, never a crash. *)
let prop_codec_never_crashes =
  QCheck.Test.make ~name:"codec total on garbage" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 0 64))
    (fun junk ->
      match Ccp_ipc.Codec.decode junk with
      | _ -> true
      | exception Ccp_ipc.Codec.Decode_error _ -> true
      | exception Ccp_ipc.Wire.Reader.Truncated -> true
      | exception Ccp_ipc.Wire.Reader.Malformed _ -> true)

let suite =
  [
    ( "core.experiment",
      [
        Alcotest.test_case "default config" `Quick test_default_config_invariants;
        Alcotest.test_case "rejects empty" `Quick test_run_rejects_empty;
        Alcotest.test_case "result metadata" `Quick test_result_metadata;
      ] );
    ( "core.report",
      [
        Alcotest.test_case "sparkline" `Quick test_sparkline;
        Alcotest.test_case "series csv" `Quick test_series_csv;
      ] );
    ( "core.scenarios",
      [ Alcotest.test_case "fig4 convergence detector" `Slow test_fig4_convergence_detector ] );
    ( "core.sweep",
      [
        Alcotest.test_case "single point" `Slow test_sweep_single_point;
        Alcotest.test_case "grid shape" `Quick test_sweep_grid_shape;
      ] );
    ( "core.properties",
      [
        QCheck_alcotest.to_alcotest prop_transfer_completes_under_random_loss;
        QCheck_alcotest.to_alcotest prop_receiver_reassembles_any_order;
        QCheck_alcotest.to_alcotest prop_codec_never_crashes;
      ] );
  ]
