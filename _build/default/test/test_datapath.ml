(* Tests for the transport datapath: estimators, pacing, the receiver,
   the sender state machine (loss recovery, RTO), and the CCP datapath
   extension that executes control programs. *)

open Ccp_util
open Ccp_eventsim
open Ccp_net
open Ccp_datapath

(* --- Rtt_estimator --- *)

let test_rtt_first_sample () =
  let est = Rtt_estimator.create () in
  Alcotest.(check (option int)) "no srtt" None (Rtt_estimator.srtt est);
  Alcotest.(check int) "default rto 1s" (Time_ns.sec 1) (Rtt_estimator.rto est);
  Rtt_estimator.on_sample est (Time_ns.ms 100);
  Alcotest.(check (option int)) "srtt = first" (Some (Time_ns.ms 100)) (Rtt_estimator.srtt est);
  Alcotest.(check (option int)) "rttvar = half" (Some (Time_ns.ms 50)) (Rtt_estimator.rttvar est)

let test_rtt_smoothing () =
  let est = Rtt_estimator.create () in
  Rtt_estimator.on_sample est (Time_ns.ms 100);
  Rtt_estimator.on_sample est (Time_ns.ms 200);
  (* srtt = 7/8*100 + 1/8*200 = 112.5ms *)
  Alcotest.(check (option int)) "srtt" (Some 112_500_000) (Rtt_estimator.srtt est);
  Alcotest.(check (option int)) "latest" (Some (Time_ns.ms 200)) (Rtt_estimator.latest est);
  Alcotest.(check (option int)) "min" (Some (Time_ns.ms 100)) (Rtt_estimator.min_rtt est);
  Alcotest.(check int) "samples" 2 (Rtt_estimator.samples est)

let test_rtt_rto_bounds () =
  let est = Rtt_estimator.create ~min_rto:(Time_ns.ms 200) () in
  Rtt_estimator.on_sample est (Time_ns.us 100);
  (* Tiny RTT: rto clamps to min_rto. *)
  Alcotest.(check int) "min rto" (Time_ns.ms 200) (Rtt_estimator.rto est);
  Rtt_estimator.on_sample est (Time_ns.ms 0);
  (* non-positive samples ignored *)
  Alcotest.(check int) "ignored" 1 (Rtt_estimator.samples est)

(* --- Rate_estimator --- *)

let test_delivery_rate_sample () =
  let est = Rate_estimator.create () in
  (* Send 10 x 1000B over 10ms, ack them 20ms later: delivery rate over
     the acked segment's interval. *)
  let snap = Rate_estimator.on_send est ~now:Time_ns.zero ~bytes:1000 in
  let _ = Rate_estimator.on_send est ~now:(Time_ns.ms 1) ~bytes:1000 in
  let rates = Rate_estimator.on_ack est ~now:(Time_ns.ms 20) ~bytes_newly_acked:1000 snap in
  (* delivered went 0 -> 1000 over 20ms measured from delivered_time 0. *)
  (match rates.Rate_estimator.delivery_rate with
  | Some rate -> Alcotest.(check (float 1.0)) "delivery rate" 50_000.0 rate
  | None -> Alcotest.fail "expected delivery sample");
  (match rates.Rate_estimator.send_rate with
  | Some rate -> Alcotest.(check (float 1.0)) "send rate 2000B/20ms" 100_000.0 rate
  | None -> Alcotest.fail "expected send sample");
  Alcotest.(check int) "total sent" 2000 (Rate_estimator.total_sent est);
  Alcotest.(check int) "total delivered" 1000 (Rate_estimator.total_delivered est);
  Alcotest.(check bool) "ewma tracked" true (Rate_estimator.delivery_rate_ewma est <> None)

(* --- Pacer --- *)

let test_pacer_disabled () =
  let p = Pacer.create () in
  Alcotest.(check int) "unpaced sends now" (Time_ns.ms 5)
    (Pacer.earliest_send p ~now:(Time_ns.ms 5) ~bytes:1_000_000)

let test_pacer_timing () =
  let p = Pacer.create ~burst_bytes:1500 () in
  Pacer.set_rate p ~now:Time_ns.zero 1_000_000.0 (* 1 MB/s *);
  (* Burst allowance covers the first 1500B packet. *)
  Alcotest.(check int) "burst send" Time_ns.zero (Pacer.earliest_send p ~now:Time_ns.zero ~bytes:1500);
  Pacer.note_sent p ~now:Time_ns.zero ~bytes:1500;
  (* Next 1500B needs 1.5ms of token accrual at 1 MB/s. *)
  Alcotest.(check int) "paced" (Time_ns.of_float_sec 0.0015)
    (Pacer.earliest_send p ~now:Time_ns.zero ~bytes:1500);
  (* After that time passes, it may send. *)
  Alcotest.(check int) "ready" (Time_ns.ms 2)
    (Pacer.earliest_send p ~now:(Time_ns.ms 2) ~bytes:1500)

let test_pacer_rate_change () =
  let p = Pacer.create ~burst_bytes:1000 () in
  Pacer.set_rate p ~now:Time_ns.zero 1000.0;
  Pacer.note_sent p ~now:Time_ns.zero ~bytes:1000;
  Pacer.set_rate p ~now:Time_ns.zero 0.0;
  Alcotest.(check (float 1e-9)) "disabled" 0.0 (Pacer.rate p);
  Alcotest.(check int) "unpaced again" Time_ns.zero
    (Pacer.earliest_send p ~now:Time_ns.zero ~bytes:5000)

(* --- Tcp_receiver --- *)

let collect_acks () =
  let acks = ref [] in
  let send_ack pkt =
    match pkt.Packet.payload with
    | Packet.Ack a -> acks := a :: !acks
    | Packet.Data _ -> Alcotest.fail "receiver sent data"
  in
  (acks, send_ack)

let data ~seq ?(len = 1000) ?(marked = false) () =
  let p = Packet.data ~flow:1 ~seq ~len ~sent_at:(Time_ns.us seq) () in
  p.Packet.ecn_marked <- marked;
  p

let test_receiver_in_order () =
  let acks, send_ack = collect_acks () in
  let rx = Tcp_receiver.create ~flow:1 ~send_ack () in
  Tcp_receiver.on_data rx (data ~seq:0 ());
  Tcp_receiver.on_data rx (data ~seq:1000 ());
  Alcotest.(check int) "expected" 2000 (Tcp_receiver.expected_seq rx);
  Alcotest.(check int) "two acks" 2 (List.length !acks);
  let last = List.hd !acks in
  Alcotest.(check int) "cum" 2000 last.Packet.cum_ack;
  Alcotest.(check int) "ts echo" (Time_ns.us 1000) last.Packet.echo_sent_at;
  Alcotest.(check (list (pair int int))) "no sacks" [] last.Packet.newly_sacked

let test_receiver_out_of_order_and_fill () =
  let acks, send_ack = collect_acks () in
  let rx = Tcp_receiver.create ~flow:1 ~send_ack () in
  Tcp_receiver.on_data rx (data ~seq:0 ());
  Tcp_receiver.on_data rx (data ~seq:2000 ()) (* hole at 1000 *);
  Tcp_receiver.on_data rx (data ~seq:3000 ());
  let dup = List.hd !acks in
  Alcotest.(check int) "dup cum" 1000 dup.Packet.cum_ack;
  Alcotest.(check (list (pair int int))) "sack" [ (3000, 4000) ] dup.Packet.newly_sacked;
  Alcotest.(check int) "ooo buffered" 2000 (Tcp_receiver.out_of_order_bytes rx);
  (* Filling the hole advances past everything buffered. *)
  Tcp_receiver.on_data rx (data ~seq:1000 ());
  Alcotest.(check int) "jumped" 4000 (Tcp_receiver.expected_seq rx);
  Alcotest.(check int) "ooo drained" 0 (Tcp_receiver.out_of_order_bytes rx)

let test_receiver_duplicate_data () =
  let acks, send_ack = collect_acks () in
  let rx = Tcp_receiver.create ~flow:1 ~send_ack () in
  Tcp_receiver.on_data rx (data ~seq:0 ());
  Tcp_receiver.on_data rx (data ~seq:0 ());
  Alcotest.(check int) "expected unchanged" 1000 (Tcp_receiver.expected_seq rx);
  Alcotest.(check int) "re-acked" 2 (List.length !acks)

let test_receiver_ecn_echo () =
  let acks, send_ack = collect_acks () in
  let rx = Tcp_receiver.create ~flow:1 ~send_ack () in
  Tcp_receiver.on_data rx (data ~seq:0 ~marked:true ());
  Alcotest.(check bool) "echoed" true (List.hd !acks).Packet.ecn_echo

let test_receiver_delayed_ack () =
  let acks, send_ack = collect_acks () in
  let rx = Tcp_receiver.create ~flow:1 ~send_ack ~delayed_ack_every:2 () in
  Tcp_receiver.on_data rx (data ~seq:0 ());
  Alcotest.(check int) "held" 0 (List.length !acks);
  Tcp_receiver.on_data rx (data ~seq:1000 ());
  Alcotest.(check int) "flushed" 1 (List.length !acks);
  Alcotest.(check int) "covers both" 2 (List.hd !acks).Packet.acked_segments

let test_receiver_batch () =
  let acks, send_ack = collect_acks () in
  let rx = Tcp_receiver.create ~flow:1 ~send_ack () in
  Tcp_receiver.on_batch rx [ data ~seq:0 (); data ~seq:1000 (); data ~seq:2000 () ];
  Alcotest.(check int) "one ack per batch" 1 (List.length !acks);
  Alcotest.(check int) "gro count" 3 (List.hd !acks).Packet.acked_segments;
  Alcotest.(check int) "cum" 3000 (List.hd !acks).Packet.cum_ack

(* --- Tcp_flow end-to-end harness --- *)

(* A single flow over one bottleneck, with an optional transmit filter
   that can drop selected packets (deterministic loss injection). *)
type harness = {
  sim : Sim.t;
  flow : Tcp_flow.t;
  receiver : Tcp_receiver.t;
}

let make_harness ?(rate_bps = 10e6) ?(delay = Time_ns.ms 5) ?(buffer = 100_000)
    ?(config = Tcp_flow.default_config) ?(filter = fun _ -> true) cc =
  let sim = Sim.create () in
  let fwd =
    Link.create ~sim ~rate_bps ~delay
      ~qdisc:(Queue_disc.Droptail { capacity_bytes = buffer; ecn_threshold_bytes = None })
      ~name:"fwd" ()
  in
  let rev =
    Link.create ~sim ~rate_bps:(10.0 *. rate_bps) ~delay
      ~qdisc:(Queue_disc.Droptail { capacity_bytes = 10_000_000; ecn_threshold_bytes = None })
      ~name:"rev" ()
  in
  let receiver = Tcp_receiver.create ~flow:1 ~send_ack:(fun ack -> Link.send rev ack) () in
  Link.connect fwd (fun pkt -> Tcp_receiver.on_data receiver pkt);
  let flow =
    Tcp_flow.create ~sim ~flow:1 ~config ~cc
      ~transmit:(fun pkt -> if filter pkt then Link.send fwd pkt)
      ()
  in
  Link.connect rev (fun ack -> Tcp_flow.on_ack flow ack);
  { sim; flow; receiver }

let fixed_window_cc bytes : Congestion_iface.t =
  {
    (Congestion_iface.noop "fixed") with
    on_init = (fun ctl -> ctl.Congestion_iface.set_cwnd bytes);
  }

let test_flow_transfers_app_limit () =
  let config = { Tcp_flow.default_config with app_limit_bytes = Some 200_000 } in
  let h = make_harness ~config (Congestion_iface.noop "none") in
  Tcp_flow.start h.flow;
  Sim.run ~until:(Time_ns.sec 5) h.sim;
  Alcotest.(check int) "all delivered" 200_000 (Tcp_receiver.delivered_bytes h.receiver);
  Alcotest.(check int) "una caught up" 200_000 (Tcp_flow.snd_una h.flow);
  Alcotest.(check int) "no retransmits" 0 (Tcp_flow.retransmits h.flow);
  Alcotest.(check int) "no timeouts" 0 (Tcp_flow.timeouts h.flow);
  Alcotest.(check bool) "srtt measured" true (Tcp_flow.srtt h.flow <> None)

let test_flow_respects_cwnd () =
  (* With a 2-segment window and 10ms RTT, throughput is ~2 segments per
     RTT regardless of link speed. *)
  let h = make_harness (fixed_window_cc (2 * 1448)) in
  Tcp_flow.start h.flow;
  Sim.run ~until:(Time_ns.sec 1) h.sim;
  let delivered = Tcp_receiver.delivered_bytes h.receiver in
  let expected = 2 * 1448 * 100 (* 2 segments per 10ms RTT, 100 RTTs *) in
  Alcotest.(check bool)
    (Printf.sprintf "window-limited (%d vs %d)" delivered expected)
    true
    (abs (delivered - expected) < expected / 5)

let test_flow_fast_retransmit_on_single_loss () =
  let dropped = ref false in
  let filter pkt =
    match pkt.Packet.payload with
    | Packet.Data d when d.Packet.seq = 20 * 1448 && not !dropped ->
      dropped := true;
      false
    | _ -> true
  in
  let config = { Tcp_flow.default_config with app_limit_bytes = Some 300_000 } in
  let h = make_harness ~config ~filter (fixed_window_cc 30_000) in
  Tcp_flow.start h.flow;
  Sim.run ~until:(Time_ns.sec 5) h.sim;
  Alcotest.(check int) "completed despite loss" 300_000
    (Tcp_receiver.delivered_bytes h.receiver);
  Alcotest.(check int) "exactly one retransmit" 1 (Tcp_flow.retransmits h.flow);
  Alcotest.(check int) "one recovery" 1 (Tcp_flow.recoveries h.flow);
  Alcotest.(check int) "no rto" 0 (Tcp_flow.timeouts h.flow)

let test_flow_loss_notifies_cc_once_per_window () =
  let losses = ref 0 in
  let cc =
    {
      (fixed_window_cc 60_000) with
      on_loss = (fun _ (ev : Congestion_iface.loss_event) ->
        if ev.Congestion_iface.kind = Congestion_iface.Dup_acks then incr losses);
    }
  in
  (* Drop three packets of the same window once each. *)
  let to_drop = ref [ 10 * 1448; 12 * 1448; 14 * 1448 ] in
  let filter pkt =
    match pkt.Packet.payload with
    | Packet.Data d when List.mem d.Packet.seq !to_drop && not d.Packet.is_retransmit ->
      to_drop := List.filter (fun s -> s <> d.Packet.seq) !to_drop;
      false
    | _ -> true
  in
  let config = { Tcp_flow.default_config with app_limit_bytes = Some 300_000 } in
  let h = make_harness ~config ~filter cc in
  Tcp_flow.start h.flow;
  Sim.run ~until:(Time_ns.sec 5) h.sim;
  Alcotest.(check int) "delivered" 300_000 (Tcp_receiver.delivered_bytes h.receiver);
  Alcotest.(check int) "one decrease for the burst" 1 !losses;
  Alcotest.(check int) "three retransmits" 3 (Tcp_flow.retransmits h.flow)

let test_flow_rto_on_blackhole () =
  (* Tail loss: the last two segments of the transfer vanish, and with no
     data behind them there are no duplicate ACKs — only the RTO can
     recover. *)
  let sent = ref 0 in
  let filter pkt =
    match pkt.Packet.payload with
    | Packet.Data d when not d.Packet.is_retransmit ->
      incr sent;
      !sent < 29
    | _ -> true
  in
  let rto_seen = ref false in
  let cc =
    {
      (fixed_window_cc 60_000) with
      on_loss = (fun ctl (ev : Congestion_iface.loss_event) ->
        if ev.Congestion_iface.kind = Congestion_iface.Rto then begin
          rto_seen := true;
          ctl.Congestion_iface.set_cwnd ctl.Congestion_iface.mss
        end);
    }
  in
  let config = { Tcp_flow.default_config with app_limit_bytes = Some (30 * 1448) } in
  let h = make_harness ~config ~filter cc in
  Tcp_flow.start h.flow;
  Sim.run ~until:(Time_ns.sec 20) h.sim;
  Alcotest.(check bool) "rto fired" true !rto_seen;
  Alcotest.(check bool) "timeouts counted" true (Tcp_flow.timeouts h.flow >= 1);
  Alcotest.(check int) "transfer finished after blackhole" (30 * 1448)
    (Tcp_receiver.delivered_bytes h.receiver)

let test_flow_pacing_limits_rate () =
  let cc =
    {
      (Congestion_iface.noop "paced") with
      on_init =
        (fun ctl ->
          (* 100 kB/s pacing on a 10 Mbit/s link. The rate must be set
             before the window opens or the first try_send bursts
             unpaced — same ordering a real rate-based CC must follow. *)
          ctl.Congestion_iface.set_rate 100_000.0;
          ctl.Congestion_iface.set_cwnd 1_000_000);
    }
  in
  let h = make_harness cc in
  Tcp_flow.start h.flow;
  Sim.run ~until:(Time_ns.sec 2) h.sim;
  let delivered = Tcp_receiver.delivered_bytes h.receiver in
  Alcotest.(check bool)
    (Printf.sprintf "paced to ~200kB (%d)" delivered)
    true
    (delivered > 150_000 && delivered < 260_000)

let test_flow_ack_event_contents () =
  let events = ref [] in
  let cc =
    {
      (fixed_window_cc 20_000) with
      on_ack = (fun _ ev -> events := ev :: !events);
    }
  in
  let config = { Tcp_flow.default_config with app_limit_bytes = Some 20_000 } in
  let h = make_harness ~config cc in
  Tcp_flow.start h.flow;
  Sim.run ~until:(Time_ns.sec 2) h.sim;
  Alcotest.(check bool) "events seen" true (!events <> []);
  let with_rtt =
    List.filter (fun (e : Congestion_iface.ack_event) -> e.Congestion_iface.rtt_sample <> None)
      !events
  in
  Alcotest.(check bool) "rtt samples present" true (with_rtt <> []);
  List.iter
    (fun (e : Congestion_iface.ack_event) ->
      match e.Congestion_iface.rtt_sample with
      | Some rtt ->
        (* Base RTT is 10ms (2 x 5ms propagation) plus serialization. *)
        Alcotest.(check bool) "rtt >= base" true (Time_ns.compare rtt (Time_ns.ms 10) >= 0)
      | None -> ())
    !events

(* --- Ccp_ext: the CCP datapath extension --- *)

(* A fabricated ctl whose knobs are plain refs, so program execution can
   be observed without a full TCP flow. *)
let fake_ctl sim ~flow =
  let cwnd = ref 14_480 and rate = ref 0.0 in
  let ctl : Congestion_iface.ctl =
    {
      flow;
      mss = 1448;
      now = (fun () -> Sim.now sim);
      get_cwnd = (fun () -> !cwnd);
      set_cwnd = (fun b -> cwnd := max 1448 b);
      get_rate = (fun () -> !rate);
      set_rate = (fun r -> rate := r);
      srtt = (fun () -> Some (Time_ns.ms 10));
      latest_rtt = (fun () -> Some (Time_ns.ms 11));
      min_rtt = (fun () -> Some (Time_ns.ms 10));
      inflight = (fun () -> 5000);
      send_rate_ewma = (fun () -> Some 1e6);
      delivery_rate_ewma = (fun () -> Some 9e5);
    }
  in
  (ctl, cwnd, rate)

let make_ccp_env () =
  let sim = Sim.create () in
  let channel = Ccp_ipc.Channel.create ~sim ~latency:(Ccp_ipc.Latency_model.Constant (Time_ns.us 20)) () in
  let ext = Ccp_ext.create ~sim ~channel () in
  let to_agent = ref [] in
  Ccp_ipc.Channel.on_receive channel Ccp_ipc.Channel.Agent_end (fun msg ->
      to_agent := msg :: !to_agent);
  let send_to_datapath msg = Ccp_ipc.Channel.send channel ~from:Ccp_ipc.Channel.Agent_end msg in
  (sim, ext, to_agent, send_to_datapath)

let ack_event ?(bytes = 1448) ?(rtt = Time_ns.ms 11) ?(ecn = false) ~now () :
    Congestion_iface.ack_event =
  {
    now;
    bytes_acked = bytes;
    rtt_sample = Some rtt;
    ecn_echo = ecn;
    send_rate = Some 1e6;
    delivery_rate = Some 9e5;
    inflight_after = 5000;
  }

let test_ccp_ext_ready_and_install () =
  let sim, ext, to_agent, send = make_ccp_env () in
  let ctl, cwnd, rate = fake_ctl sim ~flow:3 in
  let cc = Ccp_ext.congestion_control ext in
  cc.Congestion_iface.on_init ctl;
  Sim.run sim;
  (match !to_agent with
  | [ Ccp_ipc.Message.Ready { flow = 3; mss = 1448; init_cwnd = 14480 } ] -> ()
  | _ -> Alcotest.fail "expected Ready");
  let program =
    Ccp_lang.Parser.parse_program "Cwnd(20000).Rate(500000).WaitRtts(1.0).Report()"
  in
  send (Ccp_ipc.Message.Install { flow = 3; program });
  (* The program repeats forever by design; run a bounded slice. *)
  Sim.run ~until:(Time_ns.add (Sim.now sim) (Time_ns.ms 100)) sim;
  Alcotest.(check int) "cwnd applied" 20_000 !cwnd;
  Alcotest.(check (float 1e-9)) "rate applied" 500_000.0 !rate;
  Alcotest.(check int) "install accepted" 1 (Ccp_ext.installs_accepted ext);
  Alcotest.(check bool) "program stored" true (Ccp_ext.installed_program ext ~flow:3 <> None)

let test_ccp_ext_report_cycle () =
  let sim, ext, to_agent, send = make_ccp_env () in
  let ctl, _, _ = fake_ctl sim ~flow:1 in
  let cc = Ccp_ext.congestion_control ext in
  cc.Congestion_iface.on_init ctl;
  let program =
    Ccp_lang.Parser.parse_program
      "Measure(fold { init { acked = 0 } update { acked = acked + pkt.bytes_acked } \
       }).WaitRtts(1.0).Report()"
  in
  send (Ccp_ipc.Message.Install { flow = 1; program });
  Sim.run ~until:(Time_ns.add (Sim.now sim) (Time_ns.ms 5)) sim;
  to_agent := [];
  (* Feed three ACKs, then let the WaitRtts(1.0) = 10ms timer trigger the
     report. *)
  cc.Congestion_iface.on_ack ctl (ack_event ~now:(Sim.now sim) ());
  cc.Congestion_iface.on_ack ctl (ack_event ~now:(Sim.now sim) ());
  cc.Congestion_iface.on_ack ctl (ack_event ~now:(Sim.now sim) ());
  Sim.run ~until:(Time_ns.add (Sim.now sim) (Time_ns.ms 50)) sim;
  let reports =
    List.filter_map
      (function Ccp_ipc.Message.Report r -> Some r | _ -> None)
      !to_agent
  in
  Alcotest.(check bool) "got reports" true (reports <> []);
  let r = List.hd (List.rev reports) in
  let field name =
    let found = ref None in
    Array.iter (fun (n, v) -> if n = name then found := Some v) r.Ccp_ipc.Message.fields;
    !found
  in
  Alcotest.(check (option (float 1e-9))) "fold acked" (Some (3.0 *. 1448.0)) (field "acked");
  Alcotest.(check (option (float 1e-9))) "reserved _mss" (Some 1448.0) (field "_mss");
  Alcotest.(check (option (float 1e-9))) "reserved _packets" (Some 3.0) (field "_packets");
  Alcotest.(check bool) "repeats" true (Ccp_ext.reports_sent ext >= 1)

let test_ccp_ext_vector_mode () =
  let sim, ext, to_agent, send = make_ccp_env () in
  let ctl, _, _ = fake_ctl sim ~flow:1 in
  let cc = Ccp_ext.congestion_control ext in
  cc.Congestion_iface.on_init ctl;
  send
    (Ccp_ipc.Message.Install
       {
         flow = 1;
         program =
           Ccp_lang.Parser.parse_program "Measure(rtt_us, bytes_acked).WaitRtts(1.0).Report()";
       });
  Sim.run ~until:(Time_ns.add (Sim.now sim) (Time_ns.ms 5)) sim;
  to_agent := [];
  cc.Congestion_iface.on_ack ctl (ack_event ~rtt:(Time_ns.ms 12) ~now:(Sim.now sim) ());
  cc.Congestion_iface.on_ack ctl (ack_event ~rtt:(Time_ns.ms 13) ~now:(Sim.now sim) ());
  Sim.run ~until:(Time_ns.add (Sim.now sim) (Time_ns.ms 50)) sim;
  let vectors =
    List.filter_map
      (function Ccp_ipc.Message.Report_vector v -> Some v | _ -> None)
      !to_agent
  in
  Alcotest.(check bool) "vector report" true (vectors <> []);
  let v = List.hd (List.rev vectors) in
  Alcotest.(check int) "rows" 2 (Array.length v.Ccp_ipc.Message.rows);
  Alcotest.(check (array string)) "columns" [| "rtt_us"; "bytes_acked" |]
    v.Ccp_ipc.Message.columns;
  Alcotest.(check (float 1e-6)) "first rtt" 12_000.0 v.Ccp_ipc.Message.rows.(0).(0)

let test_ccp_ext_urgent_on_loss () =
  let sim, ext, to_agent, _ = make_ccp_env () in
  let ctl, cwnd, _ = fake_ctl sim ~flow:1 in
  let cc = Ccp_ext.congestion_control ext in
  cc.Congestion_iface.on_init ctl;
  Sim.run sim;
  to_agent := [];
  cc.Congestion_iface.on_loss ctl
    { kind = Congestion_iface.Dup_acks; at = Sim.now sim; bytes_lost_estimate = 1448 };
  cc.Congestion_iface.on_loss ctl
    { kind = Congestion_iface.Rto; at = Sim.now sim; bytes_lost_estimate = 1448 };
  Sim.run sim;
  let kinds =
    List.filter_map
      (function Ccp_ipc.Message.Urgent u -> Some u.Ccp_ipc.Message.kind | _ -> None)
      !to_agent
  in
  Alcotest.(check bool) "dup-ack urgent" true (List.mem Ccp_ipc.Message.Dup_ack_loss kinds);
  Alcotest.(check bool) "timeout urgent" true (List.mem Ccp_ipc.Message.Timeout kinds);
  (* The datapath collapses the window locally on RTO. *)
  Alcotest.(check int) "rto safety" 1448 !cwnd;
  Alcotest.(check int) "urgents counted" 2 (Ccp_ext.urgents_sent ext)

let test_ccp_ext_rejects_invalid_program () =
  let sim, ext, _, send = make_ccp_env () in
  let ctl, cwnd, _ = fake_ctl sim ~flow:1 in
  (Ccp_ext.congestion_control ext).Congestion_iface.on_init ctl;
  Sim.run sim;
  (* A repeating program with no wait would spin; validation rejects it. *)
  let bad = Ccp_lang.Ast.program [ Ccp_lang.Ast.Cwnd (Ccp_lang.Ast.Const 50_000.0) ] in
  send (Ccp_ipc.Message.Install { flow = 1; program = bad });
  Sim.run sim;
  Alcotest.(check int) "rejected" 1 (Ccp_ext.installs_rejected ext);
  Alcotest.(check int) "not applied" 14_480 !cwnd

let test_ccp_ext_set_commands () =
  let sim, ext, _, send = make_ccp_env () in
  let ctl, cwnd, rate = fake_ctl sim ~flow:9 in
  (Ccp_ext.congestion_control ext).Congestion_iface.on_init ctl;
  Sim.run sim;
  send (Ccp_ipc.Message.Set_cwnd { flow = 9; bytes = 99_000 });
  send (Ccp_ipc.Message.Set_rate { flow = 9; bytes_per_sec = 7e6 });
  Sim.run sim;
  Alcotest.(check int) "set_cwnd" 99_000 !cwnd;
  Alcotest.(check (float 1e-9)) "set_rate" 7e6 !rate

let suite =
  [
    ( "datapath.rtt",
      [
        Alcotest.test_case "first sample" `Quick test_rtt_first_sample;
        Alcotest.test_case "smoothing" `Quick test_rtt_smoothing;
        Alcotest.test_case "rto bounds" `Quick test_rtt_rto_bounds;
      ] );
    ( "datapath.rate",
      [ Alcotest.test_case "delivery rate sampling" `Quick test_delivery_rate_sample ] );
    ( "datapath.pacer",
      [
        Alcotest.test_case "disabled" `Quick test_pacer_disabled;
        Alcotest.test_case "timing" `Quick test_pacer_timing;
        Alcotest.test_case "rate change" `Quick test_pacer_rate_change;
      ] );
    ( "datapath.receiver",
      [
        Alcotest.test_case "in order" `Quick test_receiver_in_order;
        Alcotest.test_case "out of order + fill" `Quick test_receiver_out_of_order_and_fill;
        Alcotest.test_case "duplicates" `Quick test_receiver_duplicate_data;
        Alcotest.test_case "ecn echo" `Quick test_receiver_ecn_echo;
        Alcotest.test_case "delayed acks" `Quick test_receiver_delayed_ack;
        Alcotest.test_case "gro batch" `Quick test_receiver_batch;
      ] );
    ( "datapath.flow",
      [
        Alcotest.test_case "bulk transfer completes" `Quick test_flow_transfers_app_limit;
        Alcotest.test_case "window limiting" `Quick test_flow_respects_cwnd;
        Alcotest.test_case "fast retransmit" `Quick test_flow_fast_retransmit_on_single_loss;
        Alcotest.test_case "one decrease per window" `Quick
          test_flow_loss_notifies_cc_once_per_window;
        Alcotest.test_case "rto on blackhole" `Quick test_flow_rto_on_blackhole;
        Alcotest.test_case "pacing" `Quick test_flow_pacing_limits_rate;
        Alcotest.test_case "ack event contents" `Quick test_flow_ack_event_contents;
      ] );
    ( "datapath.ccp_ext",
      [
        Alcotest.test_case "ready + install" `Quick test_ccp_ext_ready_and_install;
        Alcotest.test_case "fold report cycle" `Quick test_ccp_ext_report_cycle;
        Alcotest.test_case "vector mode" `Quick test_ccp_ext_vector_mode;
        Alcotest.test_case "urgent on loss" `Quick test_ccp_ext_urgent_on_loss;
        Alcotest.test_case "invalid program rejected" `Quick test_ccp_ext_rejects_invalid_program;
        Alcotest.test_case "direct set commands" `Quick test_ccp_ext_set_commands;
      ] );
  ]
