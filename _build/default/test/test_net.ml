(* Tests for the network substrate: packets, queue disciplines, links,
   the NIC-offload CPU model, traces, and the dumbbell topology. *)

open Ccp_util
open Ccp_eventsim
open Ccp_net

let mk_data ?(flow = 1) ?(seq = 0) ?(len = 1448) ?(ecn = false) () =
  Packet.data ~flow ~seq ~len ~sent_at:Time_ns.zero ~ecn_capable:ecn ()

(* --- Packet --- *)

let test_packet_basics () =
  let d = mk_data ~seq:100 ~len:1448 () in
  Alcotest.(check int) "wire size includes headers" (1448 + Packet.header_bytes) d.Packet.wire_size;
  Alcotest.(check bool) "is_data" true (Packet.is_data d);
  (match d.Packet.payload with
  | Packet.Data data -> Alcotest.(check int) "seq_end" 1548 (Packet.seq_end data)
  | Packet.Ack _ -> Alcotest.fail "expected data");
  let a =
    Packet.ack ~flow:1 ~cum_ack:500 ~echo_sent_at:(Time_ns.us 3) ~ecn_echo:true ~recv_bytes:500 ()
  in
  Alcotest.(check bool) "is_ack" true (Packet.is_ack a);
  Alcotest.(check int) "ack wire size" Packet.ack_wire_size a.Packet.wire_size

(* --- Queue_disc --- *)

let droptail ?(capacity = 10_000) ?ecn () =
  Queue_disc.create
    (Queue_disc.Droptail { capacity_bytes = capacity; ecn_threshold_bytes = ecn })
    ~rng:(Rng.create ~seed:1)

let test_droptail_fifo () =
  let q = droptail () in
  let p1 = mk_data ~seq:0 () and p2 = mk_data ~seq:1448 () in
  Alcotest.(check bool) "enq 1" true (Queue_disc.enqueue q p1 = Queue_disc.Enqueued);
  Alcotest.(check bool) "enq 2" true (Queue_disc.enqueue q p2 = Queue_disc.Enqueued);
  Alcotest.(check int) "backlog packets" 2 (Queue_disc.backlog_packets q);
  Alcotest.(check int) "backlog bytes" (2 * (1448 + Packet.header_bytes))
    (Queue_disc.backlog_bytes q);
  (match Queue_disc.dequeue q with
  | Some p -> Alcotest.(check bool) "fifo order" true (p == p1)
  | None -> Alcotest.fail "expected packet");
  Alcotest.(check int) "backlog after dequeue" 1 (Queue_disc.backlog_packets q)

let test_droptail_capacity () =
  let q = droptail ~capacity:3_000 () in
  Alcotest.(check bool) "first fits" true (Queue_disc.enqueue q (mk_data ()) = Queue_disc.Enqueued);
  Alcotest.(check bool) "second fits" true (Queue_disc.enqueue q (mk_data ()) = Queue_disc.Enqueued);
  Alcotest.(check bool) "third dropped" true (Queue_disc.enqueue q (mk_data ()) = Queue_disc.Dropped);
  Alcotest.(check int) "drop counted" 1 (Queue_disc.dropped_packets q);
  Alcotest.(check int) "enqueued counted" 2 (Queue_disc.enqueued_packets q)

let test_droptail_ecn_marking () =
  (* Wire size is 1488 B; with a 2500 B threshold the third arrival sees a
     2976 B backlog and gets marked, the first two do not. *)
  let q = droptail ~capacity:100_000 ~ecn:2_500 () in
  let p1 = mk_data ~ecn:true () in
  ignore (Queue_disc.enqueue q p1);
  Alcotest.(check bool) "below threshold unmarked" false p1.Packet.ecn_marked;
  let p2 = mk_data ~ecn:true () in
  ignore (Queue_disc.enqueue q p2);
  Alcotest.(check bool) "still below" false p2.Packet.ecn_marked;
  let p3 = mk_data ~ecn:true () in
  ignore (Queue_disc.enqueue q p3);
  Alcotest.(check bool) "above threshold marked" true p3.Packet.ecn_marked;
  Alcotest.(check int) "marks counted" 1 (Queue_disc.marked_packets q);
  (* Non-ECN-capable packets are never marked. *)
  let p4 = mk_data ~ecn:false () in
  ignore (Queue_disc.enqueue q p4);
  Alcotest.(check bool) "non-capable unmarked" false p4.Packet.ecn_marked

let test_red_marks_and_drops () =
  let q =
    Queue_disc.create
      (Queue_disc.Red
         {
           capacity_bytes = 1_000_000;
           min_threshold_bytes = 10_000;
           max_threshold_bytes = 50_000;
           max_mark_probability = 1.0;
           ecn = true;
         })
      ~rng:(Rng.create ~seed:1)
  in
  (* Fill enough that the EWMA average crosses min_threshold; with mark
     probability 1.0, ECN-capable packets then get marked. *)
  let marked = ref 0 in
  for _ = 1 to 3_000 do
    let p = mk_data ~ecn:true () in
    (match Queue_disc.enqueue q p with
    | Queue_disc.Enqueued -> if p.Packet.ecn_marked then incr marked
    | Queue_disc.Dropped -> ())
  done;
  Alcotest.(check bool) "some packets marked" true (!marked > 0);
  Alcotest.(check bool) "avg tracked" true (Queue_disc.marked_packets q = !marked)

let test_red_validation () =
  Alcotest.check_raises "bad thresholds"
    (Invalid_argument "Queue_disc: RED thresholds must satisfy min < max") (fun () ->
      ignore
        (Queue_disc.create
           (Queue_disc.Red
              {
                capacity_bytes = 1000;
                min_threshold_bytes = 500;
                max_threshold_bytes = 500;
                max_mark_probability = 0.5;
                ecn = false;
              })
           ~rng:(Rng.create ~seed:1)))

(* --- Link --- *)

let test_link_delivery_timing () =
  let sim = Sim.create () in
  let link =
    Link.create ~sim ~rate_bps:1e9 ~delay:(Time_ns.ms 5)
      ~qdisc:(Queue_disc.Droptail { capacity_bytes = 1_000_000; ecn_threshold_bytes = None })
      ()
  in
  let arrivals = ref [] in
  Link.connect link (fun pkt -> arrivals := (Sim.now sim, pkt) :: !arrivals);
  let p = mk_data ~len:1460 () in
  (* wire = 1500 bytes -> 12 us serialization at 1 Gbit/s, + 5 ms prop. *)
  Link.send link p;
  Sim.run sim;
  match !arrivals with
  | [ (at, _) ] ->
    Alcotest.(check int) "arrival time" (Time_ns.add (Time_ns.us 12) (Time_ns.ms 5)) at
  | _ -> Alcotest.fail "expected exactly one arrival"

let test_link_serializes_back_to_back () =
  let sim = Sim.create () in
  let link =
    Link.create ~sim ~rate_bps:1e9 ~delay:Time_ns.zero
      ~qdisc:(Queue_disc.Droptail { capacity_bytes = 1_000_000; ecn_threshold_bytes = None })
      ()
  in
  let arrivals = ref [] in
  Link.connect link (fun _ -> arrivals := Sim.now sim :: !arrivals);
  Link.send link (mk_data ~len:1460 ());
  Link.send link (mk_data ~len:1460 ());
  Sim.run sim;
  (match List.rev !arrivals with
  | [ a; b ] ->
    Alcotest.(check int) "first at 12us" (Time_ns.us 12) a;
    Alcotest.(check int) "second at 24us" (Time_ns.us 24) b
  | _ -> Alcotest.fail "expected two arrivals");
  Alcotest.(check int) "delivered bytes" 3000 (Link.delivered_bytes link);
  Alcotest.(check int) "delivered packets" 2 (Link.delivered_packets link)

let test_link_utilization () =
  let sim = Sim.create () in
  let link =
    Link.create ~sim ~rate_bps:1e6 ~delay:Time_ns.zero
      ~qdisc:(Queue_disc.Droptail { capacity_bytes = 1_000_000; ecn_threshold_bytes = None })
      ()
  in
  Link.connect link (fun _ -> ());
  (* 125 bytes at 1 Mbit/s = 1 ms of the link's time. *)
  Link.send link (Packet.data ~flow:0 ~seq:0 ~len:(125 - Packet.header_bytes)
                    ~sent_at:Time_ns.zero ());
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "10% over 10ms" 0.1 (Link.utilization link ~over:(Time_ns.ms 10))

let test_link_requires_connect () =
  let sim = Sim.create () in
  let link =
    Link.create ~sim ~rate_bps:1e9 ~delay:Time_ns.zero
      ~qdisc:(Queue_disc.Droptail { capacity_bytes = 1000; ecn_threshold_bytes = None })
      ~name:"l1" ()
  in
  Alcotest.check_raises "send before connect" (Invalid_argument "l1: send before connect")
    (fun () -> Link.send link (mk_data ()))

(* --- Offload --- *)

let test_sender_tso_batches () =
  let sim = Sim.create () in
  let sent = ref 0 in
  let config = { Offload.Sender_path.default_config with tso = true } in
  let path = Offload.Sender_path.create ~sim ~config ~out:(fun _ -> incr sent) () in
  (* Ten segments submitted at once: first goes alone (CPU idle), the rest
     coalesce into one TSO operation. *)
  for i = 0 to 9 do
    Offload.Sender_path.send path (mk_data ~seq:(i * 1448) ())
  done;
  Sim.run sim;
  Alcotest.(check int) "all delivered" 10 !sent;
  Alcotest.(check int) "segments counted" 10 (Offload.Sender_path.segments path);
  Alcotest.(check int) "coalesced into 2 ops" 2 (Offload.Sender_path.operations path)

let test_sender_no_tso_per_segment () =
  let sim = Sim.create () in
  let config = { Offload.Sender_path.default_config with tso = false } in
  let path = Offload.Sender_path.create ~sim ~config ~out:(fun _ -> ()) () in
  for i = 0 to 9 do
    Offload.Sender_path.send path (mk_data ~seq:(i * 1448) ())
  done;
  Sim.run sim;
  Alcotest.(check int) "one op per segment" 10 (Offload.Sender_path.operations path)

let test_sender_ack_processing () =
  let sim = Sim.create () in
  let acks = ref 0 in
  let path =
    Offload.Sender_path.create ~sim ~config:Offload.Sender_path.default_config
      ~out:(fun _ -> ())
      ~ack_out:(fun _ -> incr acks)
      ()
  in
  let ack =
    Packet.ack ~flow:1 ~cum_ack:0 ~echo_sent_at:Time_ns.zero ~ecn_echo:false ~recv_bytes:0 ()
  in
  Offload.Sender_path.receive_ack path ack;
  Offload.Sender_path.receive_ack path ack;
  Sim.run sim;
  Alcotest.(check int) "acks delivered" 2 !acks;
  Alcotest.(check int) "acks counted" 2 (Offload.Sender_path.acks_processed path);
  Alcotest.(check bool) "cpu time accrued" true
    (Time_ns.is_positive (Offload.Sender_path.busy_time path))

let test_receiver_gro_batches () =
  let sim = Sim.create () in
  let batches = ref [] in
  let config = { Offload.Receiver_path.default_config with gro = true } in
  let path =
    Offload.Receiver_path.create ~sim ~config ~deliver:(fun batch ->
        batches := List.length batch :: !batches)
  in
  for i = 0 to 9 do
    Offload.Receiver_path.receive path (mk_data ~seq:(i * 1448) ())
  done;
  Sim.run sim;
  (* First packet processed alone; the nine queued behind it coalesce. *)
  Alcotest.(check (list int)) "batch sizes" [ 1; 9 ] (List.rev !batches);
  Alcotest.(check bool) "mean batch > 1" true (Offload.Receiver_path.mean_batch path > 1.0)

let test_receiver_gro_respects_flow_boundary () =
  let sim = Sim.create () in
  let batches = ref [] in
  let config = { Offload.Receiver_path.default_config with gro = true } in
  let path =
    Offload.Receiver_path.create ~sim ~config ~deliver:(fun batch ->
        batches := List.map (fun p -> p.Packet.flow) batch :: !batches)
  in
  Offload.Receiver_path.receive path (mk_data ~flow:1 ());
  Offload.Receiver_path.receive path (mk_data ~flow:1 ());
  Offload.Receiver_path.receive path (mk_data ~flow:2 ());
  Offload.Receiver_path.receive path (mk_data ~flow:2 ());
  Sim.run sim;
  List.iter
    (fun flows ->
      match List.sort_uniq compare flows with
      | [ _ ] -> ()
      | _ -> Alcotest.fail "batch mixed flows")
    !batches

(* --- Trace --- *)

let test_trace_add_and_series () =
  let sim = Sim.create () in
  let trace = Trace.create sim in
  ignore (Sim.schedule sim ~at:(Time_ns.ms 1) (fun () -> Trace.add trace ~series:"x" 1.0));
  ignore (Sim.schedule sim ~at:(Time_ns.ms 2) (fun () -> Trace.add trace ~series:"x" 2.0));
  Sim.run sim;
  Alcotest.(check (list (pair int (float 1e-9))))
    "points in order"
    [ (Time_ns.ms 1, 1.0); (Time_ns.ms 2, 2.0) ]
    (Trace.series trace "x");
  Alcotest.(check (list string)) "names" [ "x" ] (Trace.series_names trace);
  Alcotest.(check (list (pair int (float 1e-9)))) "unknown empty" [] (Trace.series trace "y")

let test_trace_sampling () =
  let sim = Sim.create () in
  let trace = Trace.create sim in
  let counter = ref 0.0 in
  Trace.sample_every trace ~series:"c" ~every:(Time_ns.ms 10) ~until:(Time_ns.ms 50) (fun () ->
      counter := !counter +. 1.0;
      !counter);
  Sim.run sim;
  Alcotest.(check int) "five samples" 5 (List.length (Trace.series trace "c"))

let test_trace_downsample () =
  let pts = List.init 100 (fun i -> (Time_ns.ms i, float_of_int i)) in
  let thin = Trace.downsample pts ~max_points:10 in
  Alcotest.(check int) "ten points" 10 (List.length thin);
  Alcotest.(check (pair int (float 1e-9))) "keeps first" (Time_ns.ms 0, 0.0) (List.hd thin);
  Alcotest.(check (pair int (float 1e-9))) "keeps last" (Time_ns.ms 99, 99.0)
    (List.nth thin 9);
  Alcotest.(check int) "short series untouched" 3
    (List.length (Trace.downsample [ (0, 0.0); (1, 1.0); (2, 2.0) ] ~max_points:10))

let test_trace_csv () =
  let sim = Sim.create () in
  let trace = Trace.create sim in
  Trace.add trace ~series:"s" 1.5;
  let csv = Trace.to_csv trace ~name:"s" in
  Alcotest.(check bool) "header" true (String.length csv > 0 && String.sub csv 0 12 = "time_s,value")

(* --- Topology --- *)

let test_dumbbell_routing () =
  let sim = Sim.create () in
  let db =
    Topology.Dumbbell.create ~sim ~rate_bps:1e9 ~base_rtt:(Time_ns.ms 10)
      ~buffer_bytes:1_000_000 ()
  in
  let data1 = ref 0 and data2 = ref 0 and acks1 = ref 0 in
  Topology.Dumbbell.register db ~flow:1
    ~data_sink:(fun _ -> incr data1)
    ~ack_sink:(fun _ -> incr acks1);
  Topology.Dumbbell.register db ~flow:2 ~data_sink:(fun _ -> incr data2) ~ack_sink:(fun _ -> ());
  Topology.Dumbbell.send_data db (mk_data ~flow:1 ());
  Topology.Dumbbell.send_data db (mk_data ~flow:2 ());
  Topology.Dumbbell.send_ack db
    (Packet.ack ~flow:1 ~cum_ack:0 ~echo_sent_at:Time_ns.zero ~ecn_echo:false ~recv_bytes:0 ());
  Sim.run sim;
  Alcotest.(check int) "flow1 data" 1 !data1;
  Alcotest.(check int) "flow2 data" 1 !data2;
  Alcotest.(check int) "flow1 acks" 1 !acks1

let test_dumbbell_bdp () =
  let sim = Sim.create () in
  let db =
    Topology.Dumbbell.create ~sim ~rate_bps:1e9 ~base_rtt:(Time_ns.ms 10)
      ~buffer_bytes:1_000_000 ()
  in
  Alcotest.(check int) "bdp" 1_250_000 (Topology.Dumbbell.bdp_bytes db)

let test_dumbbell_duplicate_flow () =
  let sim = Sim.create () in
  let db =
    Topology.Dumbbell.create ~sim ~rate_bps:1e9 ~base_rtt:(Time_ns.ms 10) ~buffer_bytes:1000 ()
  in
  Topology.Dumbbell.register db ~flow:1 ~data_sink:(fun _ -> ()) ~ack_sink:(fun _ -> ());
  Alcotest.check_raises "duplicate" (Invalid_argument "Dumbbell.register: duplicate flow id")
    (fun () ->
      Topology.Dumbbell.register db ~flow:1 ~data_sink:(fun _ -> ()) ~ack_sink:(fun _ -> ()))

let suite =
  [
    ( "net.packet",
      [ Alcotest.test_case "constructors" `Quick test_packet_basics ] );
    ( "net.queue_disc",
      [
        Alcotest.test_case "droptail fifo" `Quick test_droptail_fifo;
        Alcotest.test_case "droptail capacity" `Quick test_droptail_capacity;
        Alcotest.test_case "ecn threshold marking" `Quick test_droptail_ecn_marking;
        Alcotest.test_case "red marks" `Quick test_red_marks_and_drops;
        Alcotest.test_case "red validation" `Quick test_red_validation;
      ] );
    ( "net.link",
      [
        Alcotest.test_case "delivery timing" `Quick test_link_delivery_timing;
        Alcotest.test_case "serialization back-to-back" `Quick test_link_serializes_back_to_back;
        Alcotest.test_case "utilization" `Quick test_link_utilization;
        Alcotest.test_case "connect required" `Quick test_link_requires_connect;
      ] );
    ( "net.offload",
      [
        Alcotest.test_case "tso batches" `Quick test_sender_tso_batches;
        Alcotest.test_case "no tso per segment" `Quick test_sender_no_tso_per_segment;
        Alcotest.test_case "ack processing" `Quick test_sender_ack_processing;
        Alcotest.test_case "gro batches" `Quick test_receiver_gro_batches;
        Alcotest.test_case "gro flow boundary" `Quick test_receiver_gro_respects_flow_boundary;
      ] );
    ( "net.trace",
      [
        Alcotest.test_case "add and read" `Quick test_trace_add_and_series;
        Alcotest.test_case "periodic sampling" `Quick test_trace_sampling;
        Alcotest.test_case "downsample" `Quick test_trace_downsample;
        Alcotest.test_case "csv" `Quick test_trace_csv;
      ] );
    ( "net.topology",
      [
        Alcotest.test_case "routing" `Quick test_dumbbell_routing;
        Alcotest.test_case "bdp" `Quick test_dumbbell_bdp;
        Alcotest.test_case "duplicate flow rejected" `Quick test_dumbbell_duplicate_flow;
      ] );
  ]
