(* Unit and property tests for Ccp_util: time arithmetic, the PRNG, the
   statistics containers, and the binary heap. *)

open Ccp_util

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Time_ns --- *)

let test_time_units () =
  check_int "us" 1_000 (Time_ns.us 1);
  check_int "ms" 1_000_000 (Time_ns.ms 1);
  check_int "sec" 1_000_000_000 (Time_ns.sec 1);
  check_int "of_float_sec" 1_500_000_000 (Time_ns.of_float_sec 1.5);
  check_float "to_float_sec" 0.25 (Time_ns.to_float_sec 250_000_000);
  check_float "to_float_us" 12.5 (Time_ns.to_float_us 12_500);
  check_float "to_float_ms" 1.25 (Time_ns.to_float_ms 1_250_000)

let test_time_arith () =
  check_int "add" 300 (Time_ns.add 100 200);
  check_int "sub negative" (-100) (Time_ns.sub 100 200);
  check_int "diff" 100 (Time_ns.diff 100 200);
  check_int "scale" 150 (Time_ns.scale 100 1.5);
  check_int "scale rounds" 333 (Time_ns.scale 1000 0.3333);
  check_bool "is_positive" true (Time_ns.is_positive 1);
  check_bool "zero not positive" false (Time_ns.is_positive 0)

let test_time_pp () =
  Alcotest.(check string) "ns" "500ns" (Time_ns.to_string (Time_ns.ns 500));
  Alcotest.(check string) "us" "48.00us" (Time_ns.to_string (Time_ns.us 48));
  Alcotest.(check string) "ms" "16.10ms" (Time_ns.to_string (Time_ns.of_float_sec 0.0161));
  Alcotest.(check string) "s" "30.000s" (Time_ns.to_string (Time_ns.sec 30))

let test_bytes_time () =
  (* 1500 bytes at 1 Gbit/s = 12 us. *)
  check_int "serialization" 12_000 (Time_ns.bytes_time ~bytes:1500 ~rate_bps:1e9)

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done;
  let c = Rng.create ~seed:8 in
  check_bool "different seed differs" true (Rng.bits64 (Rng.create ~seed:7) <> Rng.bits64 c)

let test_rng_ranges () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    check_bool "int in range" true (v >= 0 && v < 17);
    let f = Rng.float rng 3.0 in
    check_bool "float in range" true (f >= 0.0 && f < 3.0);
    let u = Rng.uniform rng ~lo:5.0 ~hi:6.0 in
    check_bool "uniform in range" true (u >= 5.0 && u < 6.0)
  done

let test_rng_int_rejects_bad_bound () =
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int (Rng.create ~seed:1) 0))

let test_rng_distributions () =
  let rng = Rng.create ~seed:42 in
  let n = 200_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:3.0
  done;
  let mean = !sum /. float_of_int n in
  check_bool "exponential mean ~3" true (Float.abs (mean -. 3.0) < 0.05);
  (* Log-normal median = exp mu. *)
  let samples = Stats.Samples.create () in
  for _ = 1 to n do
    Stats.Samples.add samples (Rng.lognormal rng ~mu:(log 10.0) ~sigma:0.5)
  done;
  let median = Stats.Samples.median samples in
  check_bool "lognormal median ~10" true (Float.abs (median -. 10.0) < 0.2);
  (* Pareto samples never fall below the scale. *)
  for _ = 1 to 1_000 do
    check_bool "pareto >= scale" true (Rng.pareto rng ~shape:1.5 ~scale:2.0 >= 2.0)
  done

let test_rng_split_independent () =
  let parent = Rng.create ~seed:9 in
  let child = Rng.split parent in
  (* The child must not replay the parent's stream. *)
  let p = Array.init 20 (fun _ -> Rng.bits64 parent) in
  let c = Array.init 20 (fun _ -> Rng.bits64 child) in
  check_bool "split independent" true (p <> c)

let test_rng_shuffle () =
  let rng = Rng.create ~seed:5 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted;
  check_bool "actually shuffled" true (arr <> Array.init 50 Fun.id)

(* --- Stats --- *)

let test_summary () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_int "count" 8 (Stats.Summary.count s);
  check_float "mean" 5.0 (Stats.Summary.mean s);
  check_float "min" 2.0 (Stats.Summary.min s);
  check_float "max" 9.0 (Stats.Summary.max s);
  check_float "sum" 40.0 (Stats.Summary.sum s);
  Alcotest.(check (float 1e-6)) "variance (sample)" (32.0 /. 7.0) (Stats.Summary.variance s)

let test_samples_percentiles () =
  let s = Stats.Samples.create () in
  List.iter (Stats.Samples.add s) [ 15.0; 20.0; 35.0; 40.0; 50.0 ];
  check_float "p0 = min" 15.0 (Stats.Samples.percentile s 0.0);
  check_float "p100 = max" 50.0 (Stats.Samples.percentile s 100.0);
  check_float "median" 35.0 (Stats.Samples.median s);
  (* p25 of 5 values lands exactly on the 2nd order statistic... *)
  check_float "p25" 20.0 (Stats.Samples.percentile s 25.0);
  (* ... and p37.5 interpolates halfway between the 2nd and 3rd. *)
  check_float "p37.5 interpolated" 27.5 (Stats.Samples.percentile s 37.5);
  check_float "mean" 32.0 (Stats.Samples.mean s);
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Stats.Samples.percentile: empty") (fun () ->
      ignore (Stats.Samples.percentile (Stats.Samples.create ()) 50.0))

let test_samples_cdf () =
  let s = Stats.Samples.create () in
  for i = 1 to 100 do
    Stats.Samples.add s (float_of_int i)
  done;
  let cdf = Stats.Samples.cdf s ~points:10 in
  check_int "points" 10 (List.length cdf);
  let fractions = List.map snd cdf in
  check_float "last fraction" 1.0 (List.nth fractions 9);
  let values = List.map fst cdf in
  check_bool "values nondecreasing" true
    (List.for_all2 ( <= ) (List.filteri (fun i _ -> i < 9) values) (List.tl values))

let test_ewma () =
  let e = Stats.Ewma.create ~alpha:0.5 in
  Alcotest.(check (option (float 1e-9))) "empty" None (Stats.Ewma.value_opt e);
  Stats.Ewma.add e 10.0;
  check_float "first = value" 10.0 (Stats.Ewma.value e);
  Stats.Ewma.add e 20.0;
  check_float "second" 15.0 (Stats.Ewma.value e);
  Alcotest.check_raises "bad alpha" (Invalid_argument "Stats.Ewma.create: alpha in (0,1]")
    (fun () -> ignore (Stats.Ewma.create ~alpha:0.0))

let test_windowed_min_max () =
  let m = Stats.Windowed_min.create ~window:(Time_ns.ms 10) in
  Stats.Windowed_min.add m ~now:(Time_ns.ms 0) 5.0;
  Stats.Windowed_min.add m ~now:(Time_ns.ms 2) 3.0;
  Stats.Windowed_min.add m ~now:(Time_ns.ms 4) 7.0;
  Alcotest.(check (option (float 1e-9))) "min" (Some 3.0)
    (Stats.Windowed_min.get m ~now:(Time_ns.ms 5));
  (* After the 3.0 sample expires, the 7.0 one remains. *)
  Alcotest.(check (option (float 1e-9))) "expired min" (Some 7.0)
    (Stats.Windowed_min.get m ~now:(Time_ns.ms 13));
  Alcotest.(check (option (float 1e-9))) "all expired" None
    (Stats.Windowed_min.get m ~now:(Time_ns.ms 30));
  let x = Stats.Windowed_max.create ~window:(Time_ns.ms 10) in
  Stats.Windowed_max.add x ~now:(Time_ns.ms 0) 5.0;
  Stats.Windowed_max.add x ~now:(Time_ns.ms 2) 9.0;
  Stats.Windowed_max.add x ~now:(Time_ns.ms 4) 4.0;
  Alcotest.(check (option (float 1e-9))) "max" (Some 9.0)
    (Stats.Windowed_max.get x ~now:(Time_ns.ms 5));
  Alcotest.(check (option (float 1e-9))) "expired max" (Some 4.0)
    (Stats.Windowed_max.get x ~now:(Time_ns.ms 13))

let test_jain () =
  check_float "equal shares" 1.0 (Stats.jain_fairness [| 5.0; 5.0; 5.0 |]);
  check_float "single flow" 1.0 (Stats.jain_fairness [| 42.0 |]);
  check_float "empty" 1.0 (Stats.jain_fairness [||]);
  (* One flow hogging: 1/n in the limit. *)
  Alcotest.(check (float 1e-6)) "starved" 0.5 (Stats.jain_fairness [| 10.0; 0.0 |])

(* --- Heap --- *)

let test_heap_ordering () =
  let h = Heap.create ~compare:Int.compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 5; 9; 2; 6 ];
  check_int "length" 8 (Heap.length h);
  let popped = List.init 8 (fun _ -> Option.get (Heap.pop h)) in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 4; 5; 5; 6; 9 ] popped;
  check_bool "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h)

let test_heap_fifo_stability () =
  (* Entries with equal keys come out in insertion order. *)
  let h = Heap.create ~compare:(fun (a, _) (b, _) -> Int.compare a b) in
  List.iter (Heap.push h) [ (1, "a"); (0, "x"); (1, "b"); (1, "c") ];
  Alcotest.(check (option (pair int string))) "first" (Some (0, "x")) (Heap.pop h);
  Alcotest.(check (option (pair int string))) "fifo a" (Some (1, "a")) (Heap.pop h);
  Alcotest.(check (option (pair int string))) "fifo b" (Some (1, "b")) (Heap.pop h);
  Alcotest.(check (option (pair int string))) "fifo c" (Some (1, "c")) (Heap.pop h)

let test_heap_peek_clear () =
  let h = Heap.create ~compare:Int.compare in
  Heap.push h 3;
  Heap.push h 1;
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  check_int "peek keeps" 2 (Heap.length h);
  Heap.clear h;
  check_bool "cleared" true (Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~compare:Int.compare in
      List.iter (Heap.push h) xs;
      let out = List.init (List.length xs) (fun _ -> Option.get (Heap.pop h)) in
      out = List.sort compare xs)

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile within min..max" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 50) (float_bound_exclusive 1000.0))
              (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let s = Stats.Samples.create () in
      List.iter (Stats.Samples.add s) xs;
      let v = Stats.Samples.percentile s p in
      let lo = List.fold_left Float.min infinity xs in
      let hi = List.fold_left Float.max neg_infinity xs in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let suite =
  [
    ( "util.time",
      [
        Alcotest.test_case "units" `Quick test_time_units;
        Alcotest.test_case "arithmetic" `Quick test_time_arith;
        Alcotest.test_case "pretty printing" `Quick test_time_pp;
        Alcotest.test_case "serialization time" `Quick test_bytes_time;
      ] );
    ( "util.rng",
      [
        Alcotest.test_case "deterministic per seed" `Quick test_rng_deterministic;
        Alcotest.test_case "ranges" `Quick test_rng_ranges;
        Alcotest.test_case "bad bound" `Quick test_rng_int_rejects_bad_bound;
        Alcotest.test_case "distribution sanity" `Slow test_rng_distributions;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "shuffle" `Quick test_rng_shuffle;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "running summary" `Quick test_summary;
        Alcotest.test_case "percentiles" `Quick test_samples_percentiles;
        Alcotest.test_case "cdf" `Quick test_samples_cdf;
        Alcotest.test_case "ewma" `Quick test_ewma;
        Alcotest.test_case "windowed extrema" `Quick test_windowed_min_max;
        Alcotest.test_case "jain fairness" `Quick test_jain;
      ] );
    ( "util.heap",
      [
        Alcotest.test_case "ordering" `Quick test_heap_ordering;
        Alcotest.test_case "fifo stability" `Quick test_heap_fifo_stability;
        Alcotest.test_case "peek and clear" `Quick test_heap_peek_clear;
        QCheck_alcotest.to_alcotest prop_heap_sorts;
        QCheck_alcotest.to_alcotest prop_percentile_bounds;
      ] );
  ]
