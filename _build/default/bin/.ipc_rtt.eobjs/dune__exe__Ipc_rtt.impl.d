bin/ipc_rtt.ml: Arg Array Bytes Cmd Cmdliner Float Int64 List Printf Term Unix
