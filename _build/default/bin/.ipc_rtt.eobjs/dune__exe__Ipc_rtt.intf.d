bin/ipc_rtt.mli:
