bin/ccp_sim.ml: Arg Ccp_algorithms Ccp_core Ccp_util Cmd Cmdliner Experiment List Printf Report Scenarios String Sweep Term Time_ns
