bin/ccp_sim.mli:
