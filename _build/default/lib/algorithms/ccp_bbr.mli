(** CCP BBR (simplified): the paper's flagship example of a control
    program with a temporal sending pattern (§2.1).

    Startup doubles the pacing rate each RTT until the measured delivery
    rate stops keeping up (BBR's "full pipe" test), then enters the probe
    cycle using the paper's program verbatim:

    {v
    Rate(1.25*r).WaitRtts(1.0).Report().
    Rate(0.75*r).WaitRtts(1.0).Report().
    Rate(r).WaitRtts(6.0).Report()
    v}

    The agent maintains windowed max-bandwidth and min-RTT filters from
    the three reports per cycle and re-arms the cycle with the new
    bottleneck estimate; the congestion window is capped at 2x the
    estimated BDP, as BBR does. *)

val create : unit -> Ccp_agent.Algorithm.t

val create_with :
  ?probe_gain:float -> ?drain_gain:float -> ?bw_window_cycles:int -> ?initial_rate:float ->
  unit -> Ccp_agent.Algorithm.t
