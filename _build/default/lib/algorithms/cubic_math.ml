(* Faithful port of cubic_root() from Linux net/ipv4/tcp_cubic.c: a 64-way
   lookup table gives a starting point accurate to ~0.195%, and a single
   Newton-Raphson iteration refines it. All arithmetic is integral, as the
   kernel requires. *)

let table =
  [|
    0; 54; 54; 54; 118; 118; 118; 118;
    123; 129; 134; 138; 143; 147; 151; 156;
    157; 161; 164; 168; 170; 173; 176; 179;
    181; 185; 187; 190; 192; 194; 197; 199;
    200; 202; 204; 206; 209; 211; 213; 215;
    217; 219; 221; 222; 224; 225; 227; 229;
    231; 232; 234; 236; 237; 239; 240; 242;
    244; 245; 246; 248; 250; 251; 252; 254;
  |]

(* fls: position of the most significant set bit, 1-indexed; 0 for 0. *)
let fls n =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let int_cbrt a =
  if a < 0 then invalid_arg "Cubic_math.int_cbrt: negative";
  let b = fls a in
  if b < 7 then (table.(a) + 35) lsr 6
  else begin
    let b = ((b * 84) lsr 8) - 1 in
    let shift = a lsr (b * 3) in
    let x = ((table.(shift) + 10) lsl b) lsr 6 in
    (* Newton-Raphson: x' = (2x + a/x^2) / 3, with the kernel's
       x*(x-1) denominator quirk and 341/1024 ~ 1/3. *)
    let x = (2 * x) + (a / (x * (x - 1))) in
    (x * 341) lsr 10
  end

let float_cbrt x = if x <= 0.0 then 0.0 else x ** (1.0 /. 3.0)

let max_error_vs_float ~upto ~samples =
  if upto < 1 || samples < 1 then invalid_arg "Cubic_math.max_error_vs_float";
  let worst = ref 0.0 in
  for i = 0 to samples - 1 do
    let a = 1 + (i * (upto - 1) / max 1 (samples - 1)) in
    let exact = float_cbrt (float_of_int a) in
    let approx = float_of_int (int_cbrt a) in
    let err = Float.abs (approx -. exact) /. exact in
    if err > !worst then worst := err
  done;
  !worst
