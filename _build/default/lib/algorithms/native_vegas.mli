(** In-datapath TCP Vegas (Brakmo & Peterson 1994).

    Delay-based: estimates the number of packets queued at the bottleneck
    as [inQ = (rtt - baseRtt) * cwnd / rtt] and, once per RTT, grows the
    window when [inQ < alpha] and shrinks it when [inQ > beta]. This is
    the algorithm §2.4 uses to illustrate both batching modes; this native
    version is the synchronous in-datapath reference the CCP variants are
    compared against. *)

val create : unit -> Ccp_datapath.Congestion_iface.t
val create_with : ?alpha:float -> ?beta:float -> unit -> Ccp_datapath.Congestion_iface.t
(** Defaults: alpha 2, beta 4 (packets). *)
