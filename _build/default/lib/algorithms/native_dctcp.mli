(** In-datapath DCTCP (Alizadeh et al. 2010).

    Tracks the fraction F of bytes whose segments were ECN-marked over
    each observation window (one RTT), smooths it as
    alpha <- (1-g)*alpha + g*F with g = 1/16, and on a marked window cuts
    the window by alpha/2 — the gentle, proportional backoff that keeps
    datacenter queues short. Loss handling falls back to Reno. Requires
    an ECN-marking bottleneck ({!Ccp_net.Queue_disc} with a threshold). *)

val create : unit -> Ccp_datapath.Congestion_iface.t
val create_with : ?g:float -> ?initial_alpha:float -> unit -> Ccp_datapath.Congestion_iface.t
