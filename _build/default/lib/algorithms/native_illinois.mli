(** In-datapath TCP-Illinois (Liu, Basar, Srikant 2008) — another of the
    Linux pluggable-TCP modules the paper's introduction counts ([34]).

    A loss-delay hybrid: packet loss still decides *when* the window
    changes direction, but the average queueing delay decides *by how
    much*. With an empty queue the additive increase runs at
    [alpha_max] segments per RTT; as delay grows it falls off as
    kappa1/(kappa2 + da); the multiplicative backoff scales from
    [beta_min] to [beta_max] with delay. *)

val create : unit -> Ccp_datapath.Congestion_iface.t

val create_with :
  ?alpha_max:float ->
  ?alpha_min:float ->
  ?beta_min:float ->
  ?beta_max:float ->
  unit ->
  Ccp_datapath.Congestion_iface.t
