open Ccp_agent
open Ccp_lang.Ast

type phase = Startup | Probe

type state = {
  bw_window : int;  (* samples kept in the max-bandwidth filter *)
  mutable phase : phase;
  mutable rate : float;  (* current bottleneck estimate, bytes/s *)
  mutable prev_bw : float;
  mutable stalls : int;  (* consecutive RTTs without 25% delivery growth *)
  mutable bw_samples : float list;  (* newest first, truncated to bw_window *)
  mutable min_rtt_us : float;
  mutable cycle_report : int;  (* 0,1,2 within the probe cycle *)
}

let max_bw st = List.fold_left Float.max 0.0 st.bw_samples

let observe_bw st bw =
  if bw > 0.0 then begin
    let truncated =
      if List.length st.bw_samples >= st.bw_window then
        List.filteri (fun i _ -> i < st.bw_window - 1) st.bw_samples
      else st.bw_samples
    in
    st.bw_samples <- bw :: truncated
  end

let create_with ?(probe_gain = 1.25) ?(drain_gain = 0.75) ?(bw_window_cycles = 10)
    ?(initial_rate = 0.0) () =
  let make (handle : Algorithm.handle) =
    let st =
      {
        bw_window = bw_window_cycles * 3;
        phase = Startup;
        rate =
          (if initial_rate > 0.0 then initial_rate
           else (* initial window paced over an assumed 10 ms RTT *)
             float_of_int handle.info.init_cwnd /. 0.010);
        prev_bw = 0.0;
        stalls = 0;
        bw_samples = [];
        min_rtt_us = infinity;
        cycle_report = 0;
      }
    in
    let cwnd_cap () =
      if st.min_rtt_us = infinity then None
      else begin
        let bw = Float.max st.rate (max_bw st) in
        Some (max (4 * handle.info.mss) (int_of_float (2.0 *. bw *. st.min_rtt_us *. 1e-6)))
      end
    in
    let push_startup () =
      handle.install (Prog.rate_program ?cwnd_cap:(cwnd_cap ()) ~rate:(2.0 *. st.rate) ())
    in
    (* The paper's probe program: pulse up one RTT, drain one RTT, cruise
       six RTTs; measurements are synchronized with the pattern. *)
    let push_probe () =
      st.cycle_report <- 0;
      let cap = match cwnd_cap () with Some c -> [ Cwnd (Prog.ci c) ] | None -> [] in
      handle.install
        (program
           ((Measure (Fold Prog.std_fold) :: cap)
           @ [
               Rate (Prog.c (probe_gain *. st.rate)); Wait_rtts (Prog.c 1.0); Report;
               Rate (Prog.c (drain_gain *. st.rate)); Wait_rtts (Prog.c 1.0); Report;
               Rate (Prog.c st.rate); Wait_rtts (Prog.c 6.0); Report;
             ]))
    in
    let on_report report =
      let bw = Algorithm.field_exn report "maxrate" in
      let minrtt = Algorithm.field_exn report "minrtt" in
      if minrtt > 0.0 && minrtt < 1e12 then st.min_rtt_us <- Float.min st.min_rtt_us minrtt;
      observe_bw st bw;
      match st.phase with
      | Startup ->
        (* Full-pipe test: three RTTs without 25% growth ends startup. *)
        if bw >= 1.25 *. st.prev_bw then begin
          st.prev_bw <- Float.max st.prev_bw bw;
          st.rate <- Float.max st.rate bw;
          st.stalls <- 0;
          push_startup ()
        end
        else begin
          st.stalls <- st.stalls + 1;
          if st.stalls >= 3 then begin
            st.phase <- Probe;
            st.rate <- Float.max 1.0 (max_bw st);
            push_probe ()
          end
          else push_startup ()
        end
      | Probe ->
        st.cycle_report <- st.cycle_report + 1;
        if st.cycle_report >= 3 then begin
          st.rate <- Float.max 1.0 (max_bw st);
          push_probe ()
        end
    in
    let on_urgent (urgent : Ccp_ipc.Message.urgent) =
      match urgent.kind with
      | Ccp_ipc.Message.Timeout ->
        (* Persistent loss: restart the search from half the estimate. *)
        st.rate <- Float.max 1.0 (st.rate /. 2.0);
        st.bw_samples <- [];
        st.prev_bw <- 0.0;
        st.stalls <- 0;
        st.phase <- Startup;
        push_startup ()
      | Ccp_ipc.Message.Dup_ack_loss | Ccp_ipc.Message.Ecn ->
        (* BBR does not back off on isolated loss or marks. *)
        ()
    in
    { Algorithm.no_op_handlers with on_ready = push_startup; on_report; on_urgent }
  in
  { Algorithm.name = "ccp-bbr"; make }

let create () = create_with ()
