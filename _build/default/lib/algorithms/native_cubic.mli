(** In-datapath CUBIC (Ha, Rhee, Xu 2008) — the Linux-default baseline for
    Figure 3.

    Window growth follows W(t) = C*(t-K)^3 + W_max with C = 0.4 and
    multiplicative decrease beta = 0.7 (Linux's 717/1024), including fast
    convergence and the TCP-friendly (Reno-tracking) region. Computation
    is floating point; the kernel's fixed-point contortions are what §2.2
    argues CCP lets you avoid (see {!Cubic_math} for the comparison). *)

val create : unit -> Ccp_datapath.Congestion_iface.t

val create_with :
  ?c:float -> ?beta:float -> ?fast_convergence:bool -> unit -> Ccp_datapath.Congestion_iface.t
(** [c] is the cubic coefficient (default 0.4); [beta] the multiplicative
    decrease factor (default 0.7). *)
