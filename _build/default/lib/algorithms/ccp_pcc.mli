(** CCP PCC (Dong et al., NSDI 2015), Allegro-style online learning.

    PCC is the paper's example of an algorithm that "remains without a
    high-speed implementation" because it is awkward to write in the
    kernel: it runs A/B micro-experiments — send at r*(1+eps) for one
    interval, r*(1-eps) for the next — scores each by a utility function
    of measured throughput and loss, and moves the rate toward the winner.
    The control program runs both trials back-to-back with synchronized
    measurement windows, exactly what [Rate().WaitRtts().Report()]
    sequences are for; the utility arithmetic (powers, sigmoids) runs in
    user space. *)

val create : unit -> Ccp_agent.Algorithm.t

val create_with :
  ?epsilon:float -> ?loss_penalty:float -> ?step_fraction:float -> unit ->
  Ccp_agent.Algorithm.t
