(** CCP CUBIC: the off-datapath reimplementation compared against
    {!Native_cubic} in Figure 3.

    The per-report window computation is the paper's §2.2 snippet,
    verbatim in spirit:

    {[
      K = pow(max(0.0, (WlastMax - cwnd) / C), 1.0 / 3.0)
      cwnd = WlastMax + C * pow(t - K, 3.0)
    ]}

    — plain user-space floating point where the kernel needs a 42-line
    fixed-point cube root. Urgent loss notifications reset the cubic epoch
    exactly as the kernel implementation's loss handler does. *)

val create : unit -> Ccp_agent.Algorithm.t

val create_with :
  ?c:float -> ?beta:float -> ?fast_convergence:bool -> ?interval_rtts:float -> unit ->
  Ccp_agent.Algorithm.t
