(** CCP TIMELY (Mittal et al. 2015): RTT-gradient rate control.

    A rate-based datacenter algorithm: the sender reacts to the *slope* of
    the RTT series, increasing additively while delay falls or sits below
    [t_low], and backing off multiplicatively in proportion to the
    normalized gradient when delay rises. Table 1 lists it as
    rate-controlled with RTT measurements — exercising the [Rate] control
    primitive and mean-RTT folds. Thresholds default relative to the
    observed minimum RTT so the algorithm works at both datacenter and WAN
    scales. *)

val create : unit -> Ccp_agent.Algorithm.t

val create_with :
  ?ewma_alpha:float ->
  ?addstep_bytes_per_sec:float ->
  ?beta:float ->
  ?t_low_factor:float ->
  ?t_high_factor:float ->
  ?hai_threshold:int ->
  unit ->
  Ccp_agent.Algorithm.t
