(** CCP NewReno: the off-datapath reimplementation compared against
    {!Native_reno} in Figure 4.

    Once per RTT the datapath reports the fold summary; the agent applies
    one RTT's worth of Reno growth (slow start: the acknowledged bytes;
    congestion avoidance: one MSS per window) and installs the new window.
    Loss arrives as an urgent event and halves the window immediately —
    one IPC round-trip (tens of µs) after the datapath detected it. *)

val create : unit -> Ccp_agent.Algorithm.t
val create_with : ?interval_rtts:float -> ?react_to_ecn:bool -> unit -> Ccp_agent.Algorithm.t
(** [interval_rtts] sets the report cadence (ablation knob); default 1. *)
