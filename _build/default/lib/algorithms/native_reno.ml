open Ccp_util
open Ccp_datapath
open Congestion_iface

type state = {
  mutable ssthresh : int;
  mutable in_recovery : bool;
  mutable last_ecn_reaction : Time_ns.t;
  mutable acked_accum : int;  (* congestion-avoidance byte accumulator *)
}

let multiplicative_decrease ctl st =
  let cwnd = ctl.get_cwnd () in
  st.ssthresh <- max (cwnd / 2) (2 * ctl.mss);
  ctl.set_cwnd st.ssthresh

let react_once_per_rtt ctl st ~now =
  let interval = Option.value (ctl.srtt ()) ~default:(Time_ns.ms 10) in
  if Time_ns.compare (Time_ns.sub now st.last_ecn_reaction) interval >= 0 then begin
    st.last_ecn_reaction <- now;
    multiplicative_decrease ctl st
  end

let create_with ?(ssthresh_init = max_int / 2) ?(react_to_ecn = true) () =
  let st =
    { ssthresh = ssthresh_init; in_recovery = false; last_ecn_reaction = Time_ns.zero;
      acked_accum = 0 }
  in
  let on_ack ctl (ev : ack_event) =
    if ev.ecn_echo && react_to_ecn then react_once_per_rtt ctl st ~now:ev.now;
    if ev.bytes_acked > 0 && not st.in_recovery then begin
      let cwnd = ctl.get_cwnd () in
      if cwnd < st.ssthresh then
        (* Slow start: one MSS per acknowledged MSS. *)
        (* RFC 3465 byte counting with L = 2*MSS. *)
        ctl.set_cwnd (cwnd + min ev.bytes_acked (2 * ctl.mss))
      else begin
        (* Congestion avoidance: one MSS per window's worth of ACKs. *)
        st.acked_accum <- st.acked_accum + ev.bytes_acked;
        if st.acked_accum >= cwnd then begin
          st.acked_accum <- st.acked_accum - cwnd;
          ctl.set_cwnd (cwnd + ctl.mss)
        end
      end
    end
  in
  let on_loss ctl (loss : loss_event) =
    match loss.kind with
    | Dup_acks ->
      st.in_recovery <- true;
      multiplicative_decrease ctl st
    | Rto ->
      st.in_recovery <- false;
      st.ssthresh <- max (ctl.get_cwnd () / 2) (2 * ctl.mss);
      ctl.set_cwnd ctl.mss
  in
  {
    name = "reno";
    on_init = (fun _ -> ());
    on_ack;
    on_loss;
    on_exit_recovery = (fun _ -> st.in_recovery <- false);
  }

let create () = create_with ()
