lib/algorithms/native_htcp.mli: Ccp_datapath Ccp_util
