lib/algorithms/cubic_math.ml: Array Float
