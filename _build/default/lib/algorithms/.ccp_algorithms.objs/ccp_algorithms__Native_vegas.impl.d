lib/algorithms/native_vegas.ml: Ccp_datapath Ccp_util Congestion_iface Option Time_ns
