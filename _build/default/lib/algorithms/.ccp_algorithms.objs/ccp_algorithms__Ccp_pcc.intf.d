lib/algorithms/ccp_pcc.mli: Ccp_agent
