lib/algorithms/native_dctcp.ml: Ccp_datapath Ccp_util Congestion_iface Option Time_ns
