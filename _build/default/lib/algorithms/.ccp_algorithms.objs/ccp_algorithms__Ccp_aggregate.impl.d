lib/algorithms/ccp_aggregate.ml: Algorithm Ccp_agent Ccp_ipc List Prog
