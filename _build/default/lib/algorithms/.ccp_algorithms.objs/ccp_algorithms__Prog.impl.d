lib/algorithms/prog.ml: Ccp_lang
