lib/algorithms/native_htcp.ml: Ccp_datapath Ccp_util Congestion_iface Float Option Time_ns
