lib/algorithms/native_reno.ml: Ccp_datapath Ccp_util Congestion_iface Option Time_ns
