lib/algorithms/ccp_pcc.ml: Algorithm Ccp_agent Ccp_ipc Ccp_lang Float Prog
