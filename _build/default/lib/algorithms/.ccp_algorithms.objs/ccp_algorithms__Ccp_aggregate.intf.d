lib/algorithms/ccp_aggregate.mli: Ccp_agent
