lib/algorithms/cubic_math.mli:
