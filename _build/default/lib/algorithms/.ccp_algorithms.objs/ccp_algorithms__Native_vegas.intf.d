lib/algorithms/native_vegas.mli: Ccp_datapath
