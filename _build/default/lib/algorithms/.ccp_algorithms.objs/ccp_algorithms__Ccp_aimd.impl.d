lib/algorithms/ccp_aimd.ml: Algorithm Ccp_agent Ccp_ipc Prog
