lib/algorithms/ccp_aimd.mli: Ccp_agent
