lib/algorithms/native_cubic.mli: Ccp_datapath
