lib/algorithms/ccp_vegas.ml: Algorithm Array Ccp_agent Ccp_ipc Ccp_lang Float Option Prog
