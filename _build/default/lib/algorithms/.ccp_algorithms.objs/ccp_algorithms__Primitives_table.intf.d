lib/algorithms/primitives_table.mli:
