lib/algorithms/ccp_bbr.mli: Ccp_agent
