lib/algorithms/ccp_cubic.ml: Algorithm Ccp_agent Ccp_ipc Cubic_math Float Option Prog
