lib/algorithms/primitives_table.ml: Buffer List Printf String
