lib/algorithms/ccp_dctcp.mli: Ccp_agent
