lib/algorithms/ccp_timely.ml: Algorithm Ccp_agent Ccp_ipc Float Prog
