lib/algorithms/ccp_timely.mli: Ccp_agent
