lib/algorithms/ccp_reno.mli: Ccp_agent
