lib/algorithms/ccp_dctcp.ml: Algorithm Ccp_agent Ccp_ipc Prog
