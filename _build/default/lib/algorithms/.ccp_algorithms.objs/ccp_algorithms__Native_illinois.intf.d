lib/algorithms/native_illinois.mli: Ccp_datapath
