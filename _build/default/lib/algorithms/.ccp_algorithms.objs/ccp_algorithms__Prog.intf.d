lib/algorithms/prog.mli: Ccp_lang
