lib/algorithms/ccp_cubic.mli: Ccp_agent
