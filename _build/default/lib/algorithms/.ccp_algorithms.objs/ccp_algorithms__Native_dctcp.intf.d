lib/algorithms/native_dctcp.mli: Ccp_datapath
