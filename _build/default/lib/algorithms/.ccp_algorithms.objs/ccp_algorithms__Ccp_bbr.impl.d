lib/algorithms/ccp_bbr.ml: Algorithm Ccp_agent Ccp_ipc Ccp_lang Float List Prog
