lib/algorithms/native_cubic.ml: Ccp_datapath Ccp_util Congestion_iface Cubic_math Float Option Time_ns
