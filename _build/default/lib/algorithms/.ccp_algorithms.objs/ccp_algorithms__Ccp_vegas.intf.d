lib/algorithms/ccp_vegas.mli: Ccp_agent
