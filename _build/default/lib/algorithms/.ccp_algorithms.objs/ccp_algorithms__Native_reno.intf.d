lib/algorithms/native_reno.mli: Ccp_datapath
