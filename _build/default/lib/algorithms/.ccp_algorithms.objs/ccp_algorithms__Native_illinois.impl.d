lib/algorithms/native_illinois.ml: Ccp_datapath Ccp_util Congestion_iface Float Option Time_ns
