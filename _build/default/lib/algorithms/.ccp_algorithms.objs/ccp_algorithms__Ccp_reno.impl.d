lib/algorithms/ccp_reno.ml: Algorithm Ccp_agent Ccp_ipc Prog
