open Ccp_util
open Ccp_datapath
open Congestion_iface

type state = {
  alpha : float;
  beta : float;
  mutable base_rtt : Time_ns.t option;
  mutable epoch_start : Time_ns.t option;
  mutable rtt_sum : float;  (* microseconds, over the current epoch *)
  mutable rtt_count : int;
  mutable in_recovery : bool;
  mutable ssthresh : int;
}

let observe st rtt =
  (match st.base_rtt with
  | None -> st.base_rtt <- Some rtt
  | Some base -> if Time_ns.compare rtt base < 0 then st.base_rtt <- Some rtt);
  st.rtt_sum <- st.rtt_sum +. Time_ns.to_float_us rtt;
  st.rtt_count <- st.rtt_count + 1

(* Once per RTT: compare expected and actual throughput. *)
let epoch_decision st ctl =
  match st.base_rtt with
  | None -> ()
  | Some base when st.rtt_count = 0 -> ignore base
  | Some base ->
    let rtt_us = st.rtt_sum /. float_of_int st.rtt_count in
    let base_us = Time_ns.to_float_us base in
    if rtt_us > 0.0 && base_us > 0.0 then begin
      let cwnd = ctl.get_cwnd () in
      let cwnd_pkts = float_of_int cwnd /. float_of_int ctl.mss in
      let in_queue = cwnd_pkts *. (rtt_us -. base_us) /. rtt_us in
      if cwnd < st.ssthresh && in_queue < st.alpha then
        (* Vegas slow start: grow every other RTT; approximate with +50%. *)
        ctl.set_cwnd (cwnd + (cwnd / 2))
      else if in_queue < st.alpha then ctl.set_cwnd (cwnd + ctl.mss)
      else if in_queue > st.beta then ctl.set_cwnd (cwnd - ctl.mss)
    end;
    st.rtt_sum <- 0.0;
    st.rtt_count <- 0

let create_with ?(alpha = 2.0) ?(beta = 4.0) () =
  let st =
    {
      alpha;
      beta;
      base_rtt = None;
      epoch_start = None;
      rtt_sum = 0.0;
      rtt_count = 0;
      in_recovery = false;
      ssthresh = max_int / 2;
    }
  in
  let on_ack ctl (ev : ack_event) =
    Option.iter (observe st) ev.rtt_sample;
    if not st.in_recovery then begin
      let srtt = Option.value (ctl.srtt ()) ~default:(Time_ns.ms 10) in
      match st.epoch_start with
      | None -> st.epoch_start <- Some ev.now
      | Some start when Time_ns.compare (Time_ns.sub ev.now start) srtt >= 0 ->
        epoch_decision st ctl;
        st.epoch_start <- Some ev.now
      | Some _ -> ()
    end
  in
  let on_loss ctl (loss : loss_event) =
    match loss.kind with
    | Dup_acks ->
      st.in_recovery <- true;
      st.ssthresh <- max (3 * ctl.get_cwnd () / 4) (2 * ctl.mss);
      ctl.set_cwnd st.ssthresh
    | Rto ->
      st.in_recovery <- false;
      st.ssthresh <- max (ctl.get_cwnd () / 2) (2 * ctl.mss);
      ctl.set_cwnd ctl.mss
  in
  {
    name = "vegas";
    on_init = (fun _ -> ());
    on_ack;
    on_loss;
    on_exit_recovery = (fun _ -> st.in_recovery <- false);
  }

let create () = create_with ()
