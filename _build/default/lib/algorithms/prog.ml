open Ccp_lang.Ast

let c f = Const f
let ci i = Const (float_of_int i)

let std_fold =
  {
    init =
      [
        ("acked", c 0.0);
        ("marked", c 0.0);
        ("pkts", c 0.0);
        ("maxrate", c 0.0);
        ("minrtt", c 1e12);
        ("lastrtt", c 0.0);
        ("sumrtt", c 0.0);
      ];
    update =
      [
        ("acked", Bin (Add, Var "acked", Pkt "bytes_acked"));
        ("marked", Bin (Add, Var "marked", Bin (Mul, Pkt "ecn", Pkt "bytes_acked")));
        ("pkts", Bin (Add, Var "pkts", c 1.0));
        ("maxrate", Call ("max", [ Var "maxrate"; Pkt "recv_rate" ]));
        ("minrtt", Call ("min", [ Var "minrtt"; Pkt "rtt_us" ]));
        ("lastrtt", Pkt "rtt_us");
        ("sumrtt", Bin (Add, Var "sumrtt", Pkt "rtt_us"));
      ];
  }

let window_program ?(interval_rtts = 1.0) ~cwnd () =
  program
    [ Measure (Fold std_fold); Cwnd (ci cwnd); Wait_rtts (c interval_rtts); Report ]

(* A rate-controlled flow still needs a window big enough not to stall the
   pacer: cap the window at 2x the BDP implied by the (just-set) rate and
   the smoothed RTT, floored at 10 segments. *)
let dynamic_cwnd_cap =
  Cwnd
    (Call
       ( "max",
         [
           Bin (Mul, c 2e-6, Bin (Mul, Var "rate", Var "srtt_us"));
           Bin (Mul, c 10.0, Var "mss");
         ] ))

let rate_program ?(interval_rtts = 1.0) ?cwnd_cap ~rate () =
  let cap = match cwnd_cap with Some bytes -> Cwnd (ci bytes) | None -> dynamic_cwnd_cap in
  program
    [ Measure (Fold std_fold); Rate (c rate); cap; Wait_rtts (c interval_rtts); Report ]

let vector_program ?(interval_rtts = 1.0) ~fields ~cwnd () =
  program [ Measure (Vector fields); Cwnd (ci cwnd); Wait_rtts (c interval_rtts); Report ]
