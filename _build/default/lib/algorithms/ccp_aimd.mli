(** Generic AIMD — the "write a new scheme in a dozen lines" demo.

    The paper's ease-of-programming claim (§2.2) is best shown by how
    little code a working CCP algorithm needs: this one adds
    [increase_segments] per RTT and multiplies by [decrease_factor] on
    loss. The quickstart example instantiates it; its whole control logic
    fits on one screen. *)

val create : unit -> Ccp_agent.Algorithm.t
val create_with :
  ?increase_segments:float -> ?decrease_factor:float -> unit -> Ccp_agent.Algorithm.t
