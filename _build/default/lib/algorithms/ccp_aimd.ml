open Ccp_agent

let create_with ?(increase_segments = 1.0) ?(decrease_factor = 0.5) () =
  let make (handle : Algorithm.handle) =
    let mss = handle.info.mss in
    let cwnd = ref handle.info.init_cwnd in
    let push () = handle.install (Prog.window_program ~cwnd:!cwnd ()) in
    let on_report report =
      if Algorithm.field_exn report "acked" > 0.0 then
        cwnd := !cwnd + int_of_float (increase_segments *. float_of_int mss);
      push ()
    in
    let on_urgent (_ : Ccp_ipc.Message.urgent) =
      cwnd := max (2 * mss) (int_of_float (decrease_factor *. float_of_int !cwnd));
      push ()
    in
    { Algorithm.no_op_handlers with on_ready = push; on_report; on_urgent }
  in
  { Algorithm.name = "ccp-aimd"; make }

let create () = create_with ()
