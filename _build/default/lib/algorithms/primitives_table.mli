(** Table 1 of the paper, as data: the measurement and control primitives
    used by classic and modern congestion control algorithms. The bench
    harness renders this table; tests cross-check that every algorithm
    implemented in this repository only uses primitives its row declares. *)

type measurement =
  | Acks
  | Rtt
  | Packet_headers
  | Loss
  | Ecn
  | Sending_rate
  | Receiving_rate

type control =
  | Cwnd_knob
  | Rate_knob
  | Rate_pulses
  | Cwnd_cap
  | Header_writes

type row = {
  protocol : string;
  citation : string;
  measurements : measurement list;
  controls : control list;
  implemented : [ `Native | `Ccp | `Both | `Not_implemented ];
      (** what this repository provides for the protocol *)
}

val rows : row list
(** The eleven rows of Table 1, in the paper's order. *)

val measurement_to_string : measurement -> string
val control_to_string : control -> string

val render : unit -> string
(** The table as aligned text, one protocol per line. *)

val implemented_count : unit -> int
