(** In-datapath TCP NewReno — the Linux-style baseline for Figure 4.

    Slow start doubles per RTT (cwnd += bytes_acked); congestion avoidance
    adds one MSS per RTT (cwnd += mss*bytes_acked/cwnd); a triple-dup-ACK
    loss halves ssthresh and the window; a timeout collapses the window to
    one MSS. ECN echoes are treated as loss per RFC 3168, at most one
    reaction per RTT. *)

val create : unit -> Ccp_datapath.Congestion_iface.t

val create_with :
  ?ssthresh_init:int ->
  ?react_to_ecn:bool ->
  unit ->
  Ccp_datapath.Congestion_iface.t
