open Ccp_util
open Ccp_datapath
open Congestion_iface

type state = {
  c : float;
  beta : float;
  fast_convergence : bool;
  mutable w_last_max : float;  (* segments *)
  mutable epoch_start : Time_ns.t option;
  mutable k : float;  (* seconds *)
  mutable origin : float;  (* segments *)
  mutable ssthresh : int;  (* bytes *)
  mutable in_recovery : bool;
}

let segments ctl bytes = float_of_int bytes /. float_of_int ctl.mss

(* Start a new cubic epoch from the current window. *)
let begin_epoch st ctl ~now =
  st.epoch_start <- Some now;
  let cwnd_seg = segments ctl (ctl.get_cwnd ()) in
  if st.w_last_max > cwnd_seg then begin
    st.k <- Cubic_math.float_cbrt ((st.w_last_max -. cwnd_seg) /. st.c);
    st.origin <- st.w_last_max
  end
  else begin
    st.k <- 0.0;
    st.origin <- cwnd_seg
  end

let cubic_update st ctl (ev : ack_event) =
  let now = ev.now in
  if st.epoch_start = None then begin_epoch st ctl ~now;
  let epoch = Option.get st.epoch_start in
  (* Predict one RTT ahead, as Linux does: t = now + min_rtt - epoch. *)
  let min_rtt = Option.value (ctl.min_rtt ()) ~default:Time_ns.zero in
  let t = Time_ns.to_float_sec (Time_ns.add (Time_ns.sub now epoch) min_rtt) in
  let offs = t -. st.k in
  let target = st.origin +. (st.c *. (offs *. offs *. offs)) in
  (* TCP-friendly region: never slower than an ideal Reno flow. *)
  let srtt = Option.value (ctl.srtt ()) ~default:(Time_ns.ms 10) in
  let w_tcp =
    (st.origin *. st.beta)
    +. (3.0 *. (1.0 -. st.beta) /. (1.0 +. st.beta) *. (t /. Time_ns.to_float_sec srtt))
  in
  let target = Float.max target w_tcp in
  let cwnd = ctl.get_cwnd () in
  let cwnd_seg = segments ctl cwnd in
  if target > cwnd_seg then begin
    (* Spread the climb to the target over roughly one RTT of ACKs. *)
    let acked_segments = float_of_int ev.bytes_acked /. float_of_int ctl.mss in
    let increment =
      (target -. cwnd_seg) /. cwnd_seg *. acked_segments *. float_of_int ctl.mss
    in
    ctl.set_cwnd (cwnd + max 0 (int_of_float increment))
  end

let on_packet_loss st ctl =
  st.epoch_start <- None;
  let cwnd_seg = segments ctl (ctl.get_cwnd ()) in
  if st.fast_convergence && cwnd_seg < st.w_last_max then
    st.w_last_max <- cwnd_seg *. (2.0 -. st.beta) /. 2.0
  else st.w_last_max <- cwnd_seg;
  st.ssthresh <- max (int_of_float (st.beta *. float_of_int (ctl.get_cwnd ()))) (2 * ctl.mss)

let create_with ?(c = 0.4) ?(beta = 0.7) ?(fast_convergence = true) () =
  let st =
    {
      c;
      beta;
      fast_convergence;
      w_last_max = 0.0;
      epoch_start = None;
      k = 0.0;
      origin = 0.0;
      ssthresh = max_int / 2;
      in_recovery = false;
    }
  in
  let on_ack ctl (ev : ack_event) =
    if ev.bytes_acked > 0 && not st.in_recovery then begin
      let cwnd = ctl.get_cwnd () in
      if cwnd < st.ssthresh then
        (* RFC 3465 byte counting, L = 2*MSS: huge cumulative jumps during
           recovery must not explode the window. *)
        ctl.set_cwnd (cwnd + min ev.bytes_acked (2 * ctl.mss))
      else cubic_update st ctl ev
    end
  in
  let on_loss ctl (loss : loss_event) =
    match loss.kind with
    | Dup_acks ->
      st.in_recovery <- true;
      on_packet_loss st ctl;
      ctl.set_cwnd st.ssthresh
    | Rto ->
      st.in_recovery <- false;
      on_packet_loss st ctl;
      ctl.set_cwnd ctl.mss
  in
  {
    name = "cubic";
    on_init = (fun _ -> ());
    on_ack;
    on_loss;
    on_exit_recovery = (fun _ -> st.in_recovery <- false);
  }

let create () = create_with ()
