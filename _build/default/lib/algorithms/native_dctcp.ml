open Ccp_util
open Ccp_datapath
open Congestion_iface

type state = {
  g : float;
  mutable alpha : float;
  mutable window_start : Time_ns.t option;
  mutable acked_bytes : int;
  mutable marked_bytes : int;
  mutable in_recovery : bool;
  mutable ssthresh : int;
  mutable acked_accum : int;
}

let window_decision st ctl =
  if st.acked_bytes > 0 then begin
    let f = float_of_int st.marked_bytes /. float_of_int st.acked_bytes in
    st.alpha <- ((1.0 -. st.g) *. st.alpha) +. (st.g *. f);
    if st.marked_bytes > 0 then begin
      let cwnd = ctl.get_cwnd () in
      let reduced = int_of_float (float_of_int cwnd *. (1.0 -. (st.alpha /. 2.0))) in
      ctl.set_cwnd (max (2 * ctl.mss) reduced)
    end
  end;
  st.acked_bytes <- 0;
  st.marked_bytes <- 0

let create_with ?(g = 1.0 /. 16.0) ?(initial_alpha = 1.0) () =
  let st =
    {
      g;
      alpha = initial_alpha;
      window_start = None;
      acked_bytes = 0;
      marked_bytes = 0;
      in_recovery = false;
      ssthresh = max_int / 2;
      acked_accum = 0;
    }
  in
  let on_ack ctl (ev : ack_event) =
    st.acked_bytes <- st.acked_bytes + ev.bytes_acked;
    if ev.ecn_echo then st.marked_bytes <- st.marked_bytes + ev.bytes_acked;
    (* Close the observation window once per RTT. *)
    let srtt = Option.value (ctl.srtt ()) ~default:(Time_ns.ms 10) in
    (match st.window_start with
    | None -> st.window_start <- Some ev.now
    | Some start when Time_ns.compare (Time_ns.sub ev.now start) srtt >= 0 ->
      window_decision st ctl;
      st.window_start <- Some ev.now
    | Some _ -> ());
    (* Reno-style growth continues between marks. *)
    if ev.bytes_acked > 0 && not st.in_recovery then begin
      let cwnd = ctl.get_cwnd () in
      if cwnd < st.ssthresh then ctl.set_cwnd (cwnd + min ev.bytes_acked (2 * ctl.mss))
      else begin
        st.acked_accum <- st.acked_accum + ev.bytes_acked;
        if st.acked_accum >= cwnd then begin
          st.acked_accum <- st.acked_accum - cwnd;
          ctl.set_cwnd (cwnd + ctl.mss)
        end
      end
    end
  in
  let on_loss ctl (loss : loss_event) =
    match loss.kind with
    | Dup_acks ->
      st.in_recovery <- true;
      st.ssthresh <- max (ctl.get_cwnd () / 2) (2 * ctl.mss);
      ctl.set_cwnd st.ssthresh
    | Rto ->
      st.in_recovery <- false;
      st.ssthresh <- max (ctl.get_cwnd () / 2) (2 * ctl.mss);
      ctl.set_cwnd ctl.mss
  in
  {
    name = "dctcp";
    on_init = (fun _ -> ());
    on_ack;
    on_loss;
    on_exit_recovery = (fun _ -> st.in_recovery <- false);
  }

let create () = create_with ()
