open Ccp_util
open Ccp_datapath
open Congestion_iface

type state = {
  alpha_max : float;
  alpha_min : float;
  beta_min : float;
  beta_max : float;
  mutable max_rtt : Time_ns.t;
  mutable sum_rtt_us : float;
  mutable rtt_count : int;
  mutable in_recovery : bool;
  mutable ssthresh : int;
  mutable acked_accum : int;
}

(* Average queueing delay over the last window, and the maximum observed
   queueing delay, both in seconds. *)
let delays st ctl =
  match ctl.min_rtt () with
  | Some base when st.rtt_count > 0 ->
    let avg_us = st.sum_rtt_us /. float_of_int st.rtt_count in
    let da = Float.max 0.0 ((avg_us -. Time_ns.to_float_us base) *. 1e-6) in
    let dm =
      Float.max 1e-6
        (Time_ns.to_float_sec st.max_rtt -. Time_ns.to_float_sec base)
    in
    Some (da, dm)
  | _ -> None

(* alpha falls from alpha_max toward alpha_min as delay approaches the
   maximum observed; the kappas are derived exactly as in the paper so
   alpha(d1) = alpha_max and alpha(dm) = alpha_min, with d1 = 0.01*dm. *)
let alpha st ~da ~dm =
  let d1 = 0.01 *. dm in
  if da <= d1 then st.alpha_max
  else begin
    let kappa1 = (dm -. d1) *. st.alpha_min *. st.alpha_max /. (st.alpha_max -. st.alpha_min) in
    let kappa2 = (kappa1 /. st.alpha_max) -. d1 in
    Float.max st.alpha_min (kappa1 /. (kappa2 +. da))
  end

(* beta grows linearly from beta_min at d2 = 0.1*dm to beta_max at d3 = 0.8*dm. *)
let beta st ~da ~dm =
  let d2 = 0.1 *. dm and d3 = 0.8 *. dm in
  if da <= d2 then st.beta_min
  else if da >= d3 then st.beta_max
  else st.beta_min +. ((st.beta_max -. st.beta_min) *. (da -. d2) /. (d3 -. d2))

let create_with ?(alpha_max = 10.0) ?(alpha_min = 0.3) ?(beta_min = 0.125) ?(beta_max = 0.5) ()
    =
  let st =
    {
      alpha_max;
      alpha_min;
      beta_min;
      beta_max;
      max_rtt = Time_ns.zero;
      sum_rtt_us = 0.0;
      rtt_count = 0;
      in_recovery = false;
      ssthresh = max_int / 2;
      acked_accum = 0;
    }
  in
  let on_ack ctl (ev : ack_event) =
    Option.iter
      (fun rtt ->
        if Time_ns.compare rtt st.max_rtt > 0 then st.max_rtt <- rtt;
        st.sum_rtt_us <- st.sum_rtt_us +. Time_ns.to_float_us rtt;
        st.rtt_count <- st.rtt_count + 1)
      ev.rtt_sample;
    if ev.bytes_acked > 0 && not st.in_recovery then begin
      let cwnd = ctl.get_cwnd () in
      if cwnd < st.ssthresh then ctl.set_cwnd (cwnd + min ev.bytes_acked (2 * ctl.mss))
      else begin
        st.acked_accum <- st.acked_accum + ev.bytes_acked;
        if st.acked_accum >= cwnd then begin
          st.acked_accum <- st.acked_accum - cwnd;
          let a =
            match delays st ctl with
            | Some (da, dm) -> alpha st ~da ~dm
            | None -> 1.0
          in
          (* The delay window restarts each RTT. *)
          st.sum_rtt_us <- 0.0;
          st.rtt_count <- 0;
          ctl.set_cwnd (cwnd + int_of_float (a *. float_of_int ctl.mss))
        end
      end
    end
  in
  let on_loss ctl (loss : loss_event) =
    match loss.kind with
    | Dup_acks ->
      st.in_recovery <- true;
      let b = match delays st ctl with Some (da, dm) -> beta st ~da ~dm | None -> st.beta_max in
      let cwnd = ctl.get_cwnd () in
      st.ssthresh <- max (int_of_float ((1.0 -. b) *. float_of_int cwnd)) (2 * ctl.mss);
      ctl.set_cwnd st.ssthresh
    | Rto ->
      st.in_recovery <- false;
      st.ssthresh <- max (ctl.get_cwnd () / 2) (2 * ctl.mss);
      ctl.set_cwnd ctl.mss
  in
  {
    name = "illinois";
    on_init = (fun _ -> ());
    on_ack;
    on_loss;
    on_exit_recovery = (fun _ -> st.in_recovery <- false);
  }

let create () = create_with ()
