(** Congestion-manager-style aggregation (§5, and the CM comparison in
    §4): one congestion controller for a {e group} of flows sharing a
    bottleneck.

    The paper notes that CCP "makes it possible to implement congestion
    control ... for groups of flows that share common bottlenecks" — the
    Congestion Manager idea, but with the controller off the datapath and
    the per-flow enforcement expressed through ordinary control programs.

    This implementation keeps a single AIMD window for the whole
    aggregate: any member's per-RTT report grows it by one segment, any
    member's loss halves it (once per RTT across the group), and after
    every change each member is (re)programmed with an equal share. Flows
    joining or leaving the group trigger immediate re-division — a new
    flow gets capacity instantly instead of probing for it, the CM's
    headline benefit. *)

type t

val create :
  ?initial_segments:int ->
  ?increase_segments:float ->
  ?decrease_factor:float ->
  unit ->
  t
(** One aggregate; hand its {!algorithm} to every flow in the group. *)

val algorithm : t -> Ccp_agent.Algorithm.t

val aggregate_cwnd : t -> int
(** Current total window, bytes. *)

val member_count : t -> int
