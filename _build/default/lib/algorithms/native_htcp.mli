(** In-datapath H-TCP (Leith & Shorten, PFLDnet 2004) — one of the "over a
    dozen" Linux pluggable-TCP modules the paper's introduction counts
    ([33]).

    Designed for high bandwidth-delay products: the additive-increase
    factor grows with the time elapsed since the last congestion event
    (alpha(d) = 1 + 10(d - dl) + ((d - dl)/2)^2 per RTT after a dl = 1 s
    low-speed phase), and the backoff factor adapts to the observed
    RTT range (beta = minRTT/maxRTT, clamped to \[0.5, 0.8\]). *)

val create : unit -> Ccp_datapath.Congestion_iface.t

val create_with :
  ?low_speed_period:Ccp_util.Time_ns.t -> ?beta_min:float -> ?beta_max:float -> unit ->
  Ccp_datapath.Congestion_iface.t
