(** Cube roots, two ways (§2.2).

    The paper contrasts the Linux kernel's 42-line integer cube root —
    a 64-entry lookup table seed refined by one Newton–Raphson iteration,
    needed because the kernel cannot use floating point — with the one-line
    [pow(x, 1/3)] a user-space CCP algorithm can write. Both are
    implemented here: the kernel version is a faithful port of
    [cubic_root()] from net/ipv4/tcp_cubic.c, and the bench harness
    compares their cost and accuracy. *)

val int_cbrt : int -> int
(** Kernel-style cube root of a non-negative integer (BIC-units). Matches
    Linux's [cubic_root] output. Raises [Invalid_argument] on negatives. *)

val float_cbrt : float -> float
(** [x ** (1/3)] for [x >= 0]; 0 for negative input (the clamp the paper's
    CCP Cubic snippet applies with [max(0.0, ...)]). *)

val max_error_vs_float : upto:int -> samples:int -> float
(** Largest relative error of {!int_cbrt} against {!float_cbrt} over
    [samples] evenly spaced points in \[1, upto\] (used by tests to bound
    the kernel approximation's accuracy). *)
