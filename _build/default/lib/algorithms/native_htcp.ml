open Ccp_util
open Ccp_datapath
open Congestion_iface

type state = {
  low_speed_period : Time_ns.t;
  beta_min : float;
  beta_max : float;
  mutable last_congestion : Time_ns.t option;
  mutable max_rtt : Time_ns.t;
  mutable in_recovery : bool;
  mutable ssthresh : int;
  mutable acked_accum : int;
}

(* alpha(delta): segments added per RTT as a function of time since the
   last congestion event. *)
let alpha st ~now =
  match st.last_congestion with
  | None -> 1.0
  | Some at ->
    let delta = Time_ns.to_float_sec (Time_ns.sub now at) in
    let dl = Time_ns.to_float_sec st.low_speed_period in
    if delta <= dl then 1.0
    else begin
      let d = delta -. dl in
      1.0 +. (10.0 *. d) +. ((d /. 2.0) ** 2.0)
    end

let beta st ctl =
  match ctl.min_rtt () with
  | Some min_rtt when Time_ns.is_positive st.max_rtt ->
    let b = Time_ns.to_float_sec min_rtt /. Time_ns.to_float_sec st.max_rtt in
    Float.min st.beta_max (Float.max st.beta_min b)
  | _ -> st.beta_min

let create_with ?(low_speed_period = Time_ns.sec 1) ?(beta_min = 0.5) ?(beta_max = 0.8) () =
  let st =
    {
      low_speed_period;
      beta_min;
      beta_max;
      last_congestion = None;
      max_rtt = Time_ns.zero;
      in_recovery = false;
      ssthresh = max_int / 2;
      acked_accum = 0;
    }
  in
  let on_ack ctl (ev : ack_event) =
    Option.iter
      (fun rtt -> if Time_ns.compare rtt st.max_rtt > 0 then st.max_rtt <- rtt)
      ev.rtt_sample;
    if ev.bytes_acked > 0 && not st.in_recovery then begin
      let cwnd = ctl.get_cwnd () in
      if cwnd < st.ssthresh then ctl.set_cwnd (cwnd + min ev.bytes_acked (2 * ctl.mss))
      else begin
        (* alpha segments per RTT, spread over a window's worth of ACKs. *)
        st.acked_accum <- st.acked_accum + ev.bytes_acked;
        if st.acked_accum >= cwnd then begin
          st.acked_accum <- st.acked_accum - cwnd;
          let add = alpha st ~now:ev.now *. float_of_int ctl.mss in
          ctl.set_cwnd (cwnd + int_of_float add)
        end
      end
    end
  in
  let on_loss ctl (loss : loss_event) =
    st.last_congestion <- Some loss.at;
    (* The adaptive-backoff RTT range restarts after each event. *)
    (match ctl.latest_rtt () with Some rtt -> st.max_rtt <- rtt | None -> st.max_rtt <- Time_ns.zero);
    match loss.kind with
    | Dup_acks ->
      st.in_recovery <- true;
      let cut = int_of_float (beta st ctl *. float_of_int (ctl.get_cwnd ())) in
      st.ssthresh <- max cut (2 * ctl.mss);
      ctl.set_cwnd st.ssthresh
    | Rto ->
      st.in_recovery <- false;
      st.ssthresh <- max (ctl.get_cwnd () / 2) (2 * ctl.mss);
      ctl.set_cwnd ctl.mss
  in
  {
    name = "htcp";
    on_init = (fun _ -> ());
    on_ack;
    on_loss;
    on_exit_recovery = (fun _ -> st.in_recovery <- false);
  }

let create () = create_with ()
