type measurement =
  | Acks
  | Rtt
  | Packet_headers
  | Loss
  | Ecn
  | Sending_rate
  | Receiving_rate

type control = Cwnd_knob | Rate_knob | Rate_pulses | Cwnd_cap | Header_writes

type row = {
  protocol : string;
  citation : string;
  measurements : measurement list;
  controls : control list;
  implemented : [ `Native | `Ccp | `Both | `Not_implemented ];
}

let rows =
  [
    { protocol = "Reno"; citation = "Hoe 1996"; measurements = [ Acks ];
      controls = [ Cwnd_knob ]; implemented = `Both };
    { protocol = "Vegas"; citation = "Brakmo et al. 1994"; measurements = [ Rtt ];
      controls = [ Cwnd_knob ]; implemented = `Both };
    { protocol = "XCP"; citation = "Katabi et al. 2002"; measurements = [ Packet_headers ];
      controls = [ Cwnd_knob ]; implemented = `Not_implemented };
    { protocol = "Cubic"; citation = "Ha et al. 2008"; measurements = [ Loss; Acks ];
      controls = [ Cwnd_knob ]; implemented = `Both };
    { protocol = "DCTCP"; citation = "Alizadeh et al. 2010"; measurements = [ Ecn; Acks; Loss ];
      controls = [ Cwnd_knob ]; implemented = `Both };
    { protocol = "Timely"; citation = "Mittal et al. 2015"; measurements = [ Rtt ];
      controls = [ Rate_knob ]; implemented = `Ccp };
    { protocol = "PCC"; citation = "Dong et al. 2015";
      measurements = [ Loss; Sending_rate; Receiving_rate ]; controls = [ Rate_knob ];
      implemented = `Ccp };
    { protocol = "NUMFabric"; citation = "Nagaraj et al. 2016";
      measurements = [ Packet_headers ]; controls = [ Rate_knob; Header_writes ];
      implemented = `Not_implemented };
    { protocol = "Sprout"; citation = "Winstein et al. 2013";
      measurements = [ Sending_rate; Receiving_rate; Rtt ]; controls = [ Rate_knob ];
      implemented = `Not_implemented };
    { protocol = "Remy"; citation = "Winstein & Balakrishnan 2013";
      measurements = [ Sending_rate; Receiving_rate; Rtt ]; controls = [ Rate_knob ];
      implemented = `Not_implemented };
    { protocol = "BBR"; citation = "Cardwell et al. 2016";
      measurements = [ Sending_rate; Receiving_rate; Rtt ];
      controls = [ Rate_pulses; Cwnd_cap ]; implemented = `Ccp };
  ]

let measurement_to_string = function
  | Acks -> "ACKs"
  | Rtt -> "RTT"
  | Packet_headers -> "Packet headers"
  | Loss -> "Loss"
  | Ecn -> "ECN"
  | Sending_rate -> "Sending Rate"
  | Receiving_rate -> "Receiving Rate"

let control_to_string = function
  | Cwnd_knob -> "CWND"
  | Rate_knob -> "Rate"
  | Rate_pulses -> "Rate (pulses)"
  | Cwnd_cap -> "CWND cap"
  | Header_writes -> "Packet headers"

let implemented_to_string = function
  | `Native -> "native"
  | `Ccp -> "ccp"
  | `Both -> "native+ccp"
  | `Not_implemented -> "-"

let render () =
  let buf = Buffer.create 1024 in
  let line protocol meas ctrl impl =
    Buffer.add_string buf (Printf.sprintf "%-10s | %-38s | %-28s | %s\n" protocol meas ctrl impl)
  in
  line "Protocol" "Measurement" "Control Knobs" "In repo";
  Buffer.add_string buf (String.make 98 '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      line row.protocol
        (String.concat ", " (List.map measurement_to_string row.measurements))
        (String.concat ", " (List.map control_to_string row.controls))
        (implemented_to_string row.implemented))
    rows;
  Buffer.contents buf

let implemented_count () =
  List.length (List.filter (fun r -> r.implemented <> `Not_implemented) rows)
