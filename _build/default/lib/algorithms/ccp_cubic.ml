open Ccp_agent

type state = {
  cfg_c : float;
  beta : float;
  fast_convergence : bool;
  mutable cwnd : int;  (* bytes *)
  mutable ssthresh : int;
  mutable w_last_max : float;  (* segments *)
  mutable epoch_start_us : float option;
  mutable k : float;  (* seconds *)
  mutable origin : float;  (* segments *)
}

let create_with ?(c = 0.4) ?(beta = 0.7) ?(fast_convergence = true) ?(interval_rtts = 1.0) () =
  let make (handle : Algorithm.handle) =
    let mss = float_of_int handle.info.mss in
    let st =
      {
        cfg_c = c;
        beta;
        fast_convergence;
        cwnd = handle.info.init_cwnd;
        ssthresh = max_int / 2;
        w_last_max = 0.0;
        epoch_start_us = None;
        k = 0.0;
        origin = 0.0;
      }
    in
    let push () = handle.install (Prog.window_program ~interval_rtts ~cwnd:st.cwnd ()) in
    let segments bytes = float_of_int bytes /. mss in
    let begin_epoch ~now_us =
      st.epoch_start_us <- Some now_us;
      let cwnd_seg = segments st.cwnd in
      if st.w_last_max > cwnd_seg then begin
        (* The paper's snippet: K = pow(max(0.0, (WlastMax - cwnd)/C), 1/3). *)
        st.k <- Cubic_math.float_cbrt (Float.max 0.0 ((st.w_last_max -. cwnd_seg) /. st.cfg_c));
        st.origin <- st.w_last_max
      end
      else begin
        st.k <- 0.0;
        st.origin <- cwnd_seg
      end
    in
    let cubic_window ~now_us ~srtt_us =
      if st.epoch_start_us = None then begin_epoch ~now_us;
      let epoch = Option.get st.epoch_start_us in
      let t = ((now_us -. epoch) +. srtt_us) *. 1e-6 in
      let offs = t -. st.k in
      (* cwnd = WlastMax + C * pow(t - K, 3.0) *)
      let target = st.origin +. (st.cfg_c *. (offs *. offs *. offs)) in
      let w_tcp =
        (st.origin *. st.beta)
        +. (3.0 *. (1.0 -. st.beta) /. (1.0 +. st.beta) *. (t *. 1e6 /. Float.max 1.0 srtt_us))
      in
      Float.max target w_tcp
    in
    let on_loss_event () =
      st.epoch_start_us <- None;
      let cwnd_seg = segments st.cwnd in
      if st.fast_convergence && cwnd_seg < st.w_last_max then
        st.w_last_max <- cwnd_seg *. (2.0 -. st.beta) /. 2.0
      else st.w_last_max <- cwnd_seg;
      st.ssthresh <- max (int_of_float (st.beta *. float_of_int st.cwnd)) (2 * handle.info.mss)
    in
    let on_report report =
      let acked = int_of_float (Algorithm.field_exn report "acked") in
      let srtt_us = Algorithm.field_exn report "_srtt_us" in
      if acked > 0 then begin
        if st.cwnd < st.ssthresh then st.cwnd <- st.cwnd + min acked st.cwnd
        else begin
          let target_bytes = int_of_float (cubic_window ~now_us:(handle.now_us ()) ~srtt_us *. mss) in
          (* Never shrink outside loss, and cap per-report growth at 50%. *)
          let capped = min target_bytes (st.cwnd + (st.cwnd / 2)) in
          st.cwnd <- max st.cwnd capped
        end
      end;
      push ()
    in
    let on_urgent (urgent : Ccp_ipc.Message.urgent) =
      (match urgent.kind with
      | Ccp_ipc.Message.Dup_ack_loss | Ccp_ipc.Message.Ecn ->
        on_loss_event ();
        st.cwnd <- st.ssthresh
      | Ccp_ipc.Message.Timeout ->
        on_loss_event ();
        st.cwnd <- handle.info.mss);
      push ()
    in
    { Algorithm.no_op_handlers with on_ready = push; on_report; on_urgent }
  in
  { Algorithm.name = "ccp-cubic"; make }

let create () = create_with ()
