open Ccp_agent

type state = {
  g : float;
  mutable alpha : float;
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable acked_accum : int;
}

let create_with ?(g = 1.0 /. 16.0) ?(initial_alpha = 1.0) ?(interval_rtts = 1.0) () =
  let make (handle : Algorithm.handle) =
    let mss = handle.info.mss in
    let st =
      {
        g;
        alpha = initial_alpha;
        cwnd = handle.info.init_cwnd;
        ssthresh = max_int / 2;
        acked_accum = 0;
      }
    in
    let push () = handle.install (Prog.window_program ~interval_rtts ~cwnd:st.cwnd ()) in
    let on_report report =
      let acked = Algorithm.field_exn report "acked" in
      let marked = Algorithm.field_exn report "marked" in
      if acked > 0.0 then begin
        let f = marked /. acked in
        st.alpha <- ((1.0 -. st.g) *. st.alpha) +. (st.g *. f);
        if marked > 0.0 then begin
          st.ssthresh <- min st.ssthresh st.cwnd;
          st.cwnd <-
            max (2 * mss) (int_of_float (float_of_int st.cwnd *. (1.0 -. (st.alpha /. 2.0))))
        end
        else if st.cwnd < st.ssthresh then
          st.cwnd <- st.cwnd + min (int_of_float acked) st.cwnd
        else begin
          st.acked_accum <- st.acked_accum + int_of_float acked;
          if st.acked_accum >= st.cwnd then begin
            st.acked_accum <- st.acked_accum - st.cwnd;
            st.cwnd <- st.cwnd + mss
          end
        end
      end;
      push ()
    in
    let on_urgent (urgent : Ccp_ipc.Message.urgent) =
      (match urgent.kind with
      | Ccp_ipc.Message.Dup_ack_loss | Ccp_ipc.Message.Ecn ->
        st.ssthresh <- max (st.cwnd / 2) (2 * mss);
        st.cwnd <- st.ssthresh
      | Ccp_ipc.Message.Timeout ->
        st.ssthresh <- max (st.cwnd / 2) (2 * mss);
        st.cwnd <- mss);
      push ()
    in
    { Algorithm.no_op_handlers with on_ready = push; on_report; on_urgent }
  in
  { Algorithm.name = "ccp-dctcp"; make }

let create () = create_with ()
