(** Helpers for constructing the control programs the CCP algorithms
    install. Centralizes the common shapes so each algorithm reads close
    to its paper pseudocode. *)

open Ccp_lang.Ast

val c : float -> expr
(** Float constant. *)

val ci : int -> expr
(** Integer constant. *)

val std_fold : fold_def
(** The workhorse fold: per-report sums/extrema most window algorithms
    need —
    [acked] (bytes), [marked] (ECN-marked bytes), [pkts],
    [maxrate] (max delivery-rate sample, bytes/s),
    [minrtt] (min RTT sample, µs), [lastrtt] (latest RTT sample, µs),
    [sumrtt] (sum of RTT samples, µs — divide by [pkts] for the mean). *)

val window_program : ?interval_rtts:float -> cwnd:int -> unit -> program
(** [Measure(std_fold).Cwnd(cwnd).WaitRtts(i).Report()], repeating.
    [interval_rtts] defaults to 1.0 — the paper's once-per-RTT cadence. *)

val dynamic_cwnd_cap : prim
(** [Cwnd(max(2e-6 * rate * srtt_us, 10 * mss))]: window cap at twice the
    BDP implied by the current pacing rate, evaluated in the datapath.
    Rate-based programs need it so the window never throttles the pacer. *)

val rate_program : ?interval_rtts:float -> ?cwnd_cap:int -> rate:float -> unit -> program
(** [Measure(std_fold).Rate(r).Cwnd(cap).WaitRtts(i).Report()],
    repeating; the cap defaults to {!dynamic_cwnd_cap}. *)

val vector_program : ?interval_rtts:float -> fields:string list -> cwnd:int -> unit -> program
(** Vector-mode variant: [Measure(f1, f2, ...).Cwnd(c).WaitRtts(i).Report()]. *)
