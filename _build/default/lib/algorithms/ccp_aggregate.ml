open Ccp_agent

type member = { handle : Algorithm.handle; mutable last_interval_rtts : float }

type t = {
  increase_segments : float;
  decrease_factor : float;
  mutable cwnd : int;  (* aggregate window, bytes *)
  mutable members : member list;
  mutable last_decrease_us : float;
}

let create ?(initial_segments = 10) ?(increase_segments = 1.0) ?(decrease_factor = 0.5) () =
  {
    increase_segments;
    decrease_factor;
    cwnd = initial_segments * 1448;
    members = [];
    last_decrease_us = 0.0;
  }

let member_count t = List.length t.members
let aggregate_cwnd t = t.cwnd

(* Reprogram every member with an equal share of the aggregate. *)
let redistribute t =
  match t.members with
  | [] -> ()
  | members ->
    let share = max 1448 (t.cwnd / List.length members) in
    List.iter
      (fun m -> m.handle.Algorithm.install (Prog.window_program ~cwnd:share ()))
      members

let algorithm t : Algorithm.t =
  let make (handle : Algorithm.handle) =
    let mss = handle.Algorithm.info.Algorithm.mss in
    let member = { handle; last_interval_rtts = 1.0 } in
    let on_ready () =
      if t.members = [] then t.cwnd <- max t.cwnd handle.Algorithm.info.Algorithm.init_cwnd;
      t.members <- member :: t.members;
      (* A joining flow gets its share immediately — no probing. *)
      redistribute t
    in
    let on_report report =
      if Algorithm.field_exn report "acked" > 0.0 then begin
        (* Additive increase is per aggregate RTT, not per member, so a
           bigger group does not probe faster: scale by 1/n. *)
        let n = float_of_int (max 1 (member_count t)) in
        t.cwnd <-
          t.cwnd + int_of_float (t.increase_segments *. float_of_int mss /. n);
        redistribute t
      end
    in
    let on_urgent (urgent : Ccp_ipc.Message.urgent) =
      let now = handle.Algorithm.now_us () in
      (* One multiplicative decrease per RTT across the whole group: the
         members share a bottleneck, so their losses are one event. *)
      let srtt_guess = 10_000.0 in
      (match urgent.Ccp_ipc.Message.kind with
      | Ccp_ipc.Message.Dup_ack_loss | Ccp_ipc.Message.Ecn ->
        if now -. t.last_decrease_us > srtt_guess then begin
          t.last_decrease_us <- now;
          t.cwnd <-
            max (2 * mss * max 1 (member_count t))
              (int_of_float (t.decrease_factor *. float_of_int t.cwnd))
        end
      | Ccp_ipc.Message.Timeout ->
        t.last_decrease_us <- now;
        t.cwnd <- max (mss * max 1 (member_count t)) (t.cwnd / 4));
      redistribute t
    in
    { Algorithm.no_op_handlers with on_ready; on_report; on_urgent }
  in
  { Algorithm.name = "ccp-aggregate"; make }
