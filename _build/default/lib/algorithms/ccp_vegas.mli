(** CCP TCP Vegas in both batching modes of §2.4.

    [`Vector] is the paper's first [OnMeasurement] snippet: the datapath
    appends per-packet (rtt, bytes) rows and the agent iterates the batch,
    updating [baseRtt] and nudging the window per packet.

    [`Fold] is the second snippet: the datapath folds each packet into
    {baseRtt, delta} with the Vegas queue test compiled into the fold
    update expression, and the agent applies [cwnd += delta] — constant
    datapath memory, identical behaviour (an ablation bench checks this). *)

type mode = [ `Vector | `Fold ]

val create : mode -> Ccp_agent.Algorithm.t

val create_with :
  ?alpha:float -> ?beta:float -> ?interval_rtts:float -> mode -> Ccp_agent.Algorithm.t
