(** CCP DCTCP: ECN-proportional backoff from user space.

    The fold counts acknowledged and ECN-marked bytes per RTT; the agent
    maintains the smoothed mark fraction alpha and applies the
    cwnd <- cwnd*(1 - alpha/2) cut on marked windows. Demonstrates that a
    datacenter algorithm whose signal is per-packet (ECN) works under
    per-RTT batching because the *fraction*, not each mark, drives the
    control law. *)

val create : unit -> Ccp_agent.Algorithm.t
val create_with : ?g:float -> ?initial_alpha:float -> ?interval_rtts:float -> unit ->
  Ccp_agent.Algorithm.t
