(** IPC latency models (Figure 2 substrate).

    The paper measures round-trip times of two IPC mechanisms — Netlink
    sockets (kernel module <-> user space) and Unix domain sockets (user
    space <-> user space) — with the CPU idle and under load (where Intel
    Turbo Boost raises the clock and *lowers* latency). We model each
    configuration as a log-normal distribution calibrated to the paper's
    reported tails:

    - Netlink, idle CPU: 99th percentile 48 µs
    - Unix sockets, idle CPU: 99th percentile 80 µs
    - Netlink, loaded CPU + Turbo Boost: 99th percentile 18 µs
    - Unix sockets, loaded CPU + Turbo Boost: 99th percentile 35 µs

    The paper does not report medians; ours (chosen at roughly a quarter of
    each p99, consistent with the published CDF shapes) are documented
    constants. `bin/ipc_rtt.exe` measures a real Unix-domain socketpair on
    the host to ground the model. *)

open Ccp_util

type t =
  | Constant of Time_ns.t
  | Lognormal of { mu : float; sigma : float }
      (** parameters of ln(latency in microseconds) *)
  | Shifted of { base : Time_ns.t; rest : t }  (** constant floor plus a tail *)

val calibrated : median_us:float -> p99_us:float -> t
(** Log-normal with the given median and 99th percentile. *)

val netlink_idle : t
val netlink_busy : t
val unix_idle : t
val unix_busy : t

val sample : t -> Rng.t -> Time_ns.t
(** One round-trip latency draw. *)

val one_way : t -> Rng.t -> Time_ns.t
(** One direction: half the round-trip draw, floored at 1 ns. *)

val median_us : t -> float
(** Analytic median (Monte-Carlo-free; for tests and reporting). *)

val p99_us : t -> float

val describe : t -> string
