open Ccp_util

type t =
  | Constant of Time_ns.t
  | Lognormal of { mu : float; sigma : float }
  | Shifted of { base : Time_ns.t; rest : t }

(* Standard normal quantile at 0.99. *)
let z99 = 2.3263478740408408

let calibrated ~median_us ~p99_us =
  if median_us <= 0.0 || p99_us <= median_us then
    invalid_arg "Latency_model.calibrated: need 0 < median < p99";
  let mu = log median_us in
  let sigma = log (p99_us /. median_us) /. z99 in
  Lognormal { mu; sigma }

(* p99 values from the paper (§2.3); medians are our documented choices. *)
let netlink_idle = calibrated ~median_us:12.0 ~p99_us:48.0
let netlink_busy = calibrated ~median_us:7.0 ~p99_us:18.0
let unix_idle = calibrated ~median_us:22.0 ~p99_us:80.0
let unix_busy = calibrated ~median_us:15.0 ~p99_us:35.0

let rec sample t rng =
  match t with
  | Constant d -> d
  | Lognormal { mu; sigma } ->
    let us = Rng.lognormal rng ~mu ~sigma in
    Time_ns.max (Time_ns.ns 1) (Time_ns.of_float_sec (us *. 1e-6))
  | Shifted { base; rest } -> Time_ns.add base (sample rest rng)

let one_way t rng = Time_ns.max (Time_ns.ns 1) (Time_ns.scale (sample t rng) 0.5)

let rec median_us = function
  | Constant d -> Time_ns.to_float_us d
  | Lognormal { mu; _ } -> exp mu
  | Shifted { base; rest } -> Time_ns.to_float_us base +. median_us rest

let rec p99_us = function
  | Constant d -> Time_ns.to_float_us d
  | Lognormal { mu; sigma } -> exp (mu +. (z99 *. sigma))
  | Shifted { base; rest } -> Time_ns.to_float_us base +. p99_us rest

let rec describe = function
  | Constant d -> Printf.sprintf "constant %s" (Time_ns.to_string d)
  | Lognormal { mu; sigma } ->
    Printf.sprintf "lognormal(median=%.1fus p99=%.1fus sigma=%.3f)" (exp mu)
      (exp (mu +. (z99 *. sigma)))
      sigma
  | Shifted { base; rest } -> Printf.sprintf "%s + %s" (Time_ns.to_string base) (describe rest)
