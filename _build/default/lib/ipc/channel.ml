open Ccp_util
open Ccp_eventsim

type endpoint = Datapath_end | Agent_end

type direction = {
  mutable handler : (Message.t -> unit) option;
  mutable messages : int;
  mutable bytes : int;
  mutable last_delivery : Time_ns.t;  (* FIFO floor for this direction *)
}

type t = {
  sim : Sim.t;
  latency : Latency_model.t;
  rng : Rng.t;
  to_agent : direction;
  to_datapath : direction;
  mutable decode_failures : int;
}

let fresh_direction () =
  { handler = None; messages = 0; bytes = 0; last_delivery = Time_ns.zero }

let create ~sim ~latency () =
  {
    sim;
    latency;
    rng = Rng.split (Sim.rng sim);
    to_agent = fresh_direction ();
    to_datapath = fresh_direction ();
    decode_failures = 0;
  }

let direction_toward t = function
  | Agent_end -> t.to_agent
  | Datapath_end -> t.to_datapath

let on_receive t endpoint handler = (direction_toward t endpoint).handler <- Some handler

let send t ~from msg =
  let dir =
    match from with Datapath_end -> t.to_agent | Agent_end -> t.to_datapath
  in
  let handler =
    match dir.handler with
    | Some h -> h
    | None -> invalid_arg "Channel.send: destination handler not registered"
  in
  let bytes = Codec.encode msg in
  dir.messages <- dir.messages + 1;
  dir.bytes <- dir.bytes + String.length bytes;
  let delay = Latency_model.one_way t.latency t.rng in
  let arrival = Time_ns.add (Sim.now t.sim) delay in
  (* Preserve per-direction FIFO ordering under random latency draws. *)
  let arrival = Time_ns.max arrival dir.last_delivery in
  dir.last_delivery <- arrival;
  ignore
    (Sim.schedule t.sim ~at:arrival (fun () ->
         match Codec.decode bytes with
         | decoded -> handler decoded
         | exception (Codec.Decode_error _ | Wire.Reader.Truncated | Wire.Reader.Malformed _) ->
           t.decode_failures <- t.decode_failures + 1))

let messages_sent t = function
  | Datapath_end -> t.to_agent.messages
  | Agent_end -> t.to_datapath.messages

let bytes_sent t = function
  | Datapath_end -> t.to_agent.bytes
  | Agent_end -> t.to_datapath.bytes

let decode_failures t = t.decode_failures
