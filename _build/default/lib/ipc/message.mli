(** Messages exchanged between the datapath and the CCP agent.

    Datapath → agent: flow lifecycle, batched measurement reports (fold
    state or per-packet vectors, §2.4) and urgent events (§2.1).
    Agent → datapath: program installation and direct window/rate commands
    (the fallback the paper describes for datapaths that cannot run control
    programs). *)

type urgent_kind =
  | Dup_ack_loss  (** triple duplicate ACK (fast-retransmit trigger) *)
  | Timeout  (** retransmission timeout *)
  | Ecn  (** ECN congestion-experienced echo *)

type report = {
  flow : int;
  fields : (string * float) array;  (** fold-mode summary, name/value pairs *)
}

type vector_report = {
  flow : int;
  columns : string array;
  rows : float array array;  (** one row per acknowledged packet *)
}

type urgent = {
  flow : int;
  kind : urgent_kind;
  cwnd_at_event : int;
  inflight_at_event : int;
}

type t =
  (* datapath -> agent *)
  | Ready of { flow : int; mss : int; init_cwnd : int }
  | Report of report
  | Report_vector of vector_report
  | Urgent of urgent
  | Closed of { flow : int }
  (* agent -> datapath *)
  | Install of { flow : int; program : Ccp_lang.Ast.program }
  | Set_cwnd of { flow : int; bytes : int }
  | Set_rate of { flow : int; bytes_per_sec : float }

val flow : t -> int
val describe : t -> string
val urgent_kind_to_string : urgent_kind -> string
val equal : t -> t -> bool
