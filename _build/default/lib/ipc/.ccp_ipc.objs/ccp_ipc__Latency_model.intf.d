lib/ipc/latency_model.mli: Ccp_util Rng Time_ns
