lib/ipc/channel.ml: Ccp_eventsim Ccp_util Codec Latency_model Message Rng Sim String Time_ns Wire
