lib/ipc/message.ml: Array Ccp_lang Float Printf
