lib/ipc/message.mli: Ccp_lang
