lib/ipc/wire.mli:
