lib/ipc/latency_model.ml: Ccp_util Printf Rng Time_ns
