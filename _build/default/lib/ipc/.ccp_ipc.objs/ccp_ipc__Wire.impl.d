lib/ipc/wire.ml: Buffer Char Int64 String
