lib/ipc/codec.mli: Ccp_lang Message
