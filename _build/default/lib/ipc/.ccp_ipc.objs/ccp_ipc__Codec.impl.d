lib/ipc/codec.ml: Array Ccp_lang Format List Message String Wire
