lib/ipc/channel.mli: Ccp_eventsim Latency_model Message Sim
