(** Pretty-printing of control programs back to surface syntax.

    [parse (print p)] yields a program equal to [p] (round-trip property,
    tested with qcheck). *)

val expr_to_string : Ast.expr -> string
val program_to_string : Ast.program -> string

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_program : Format.formatter -> Ast.program -> unit
