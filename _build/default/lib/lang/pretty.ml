open Ast

(* Number formatting must survive a parse round-trip: %.17g would be exact
   but ugly; %g loses precision. Use the shortest representation that
   parses back to the same float. *)
let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else begin
    let short = Printf.sprintf "%.12g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f
  end

let binop_to_string = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
let precedence = function Add | Sub -> 1 | Mul | Div -> 2

let rec expr_buf buf ~prec = function
  | Const f ->
    if f < 0.0 then Buffer.add_string buf (Printf.sprintf "(%s)" (float_to_string f))
    else Buffer.add_string buf (float_to_string f)
  | Var name -> Buffer.add_string buf name
  | Pkt field ->
    Buffer.add_string buf "pkt.";
    Buffer.add_string buf field
  | Neg e ->
    Buffer.add_string buf "(-";
    expr_buf buf ~prec:3 e;
    Buffer.add_char buf ')'
  | Bin (op, l, r) ->
    let p = precedence op in
    let need_parens = p < prec in
    if need_parens then Buffer.add_char buf '(';
    expr_buf buf ~prec:p l;
    Buffer.add_char buf ' ';
    Buffer.add_string buf (binop_to_string op);
    Buffer.add_char buf ' ';
    (* Right operand needs parens at equal precedence: a - (b - c). *)
    expr_buf buf ~prec:(p + 1) r;
    if need_parens then Buffer.add_char buf ')'
  | Call (name, args) ->
    Buffer.add_string buf name;
    Buffer.add_char buf '(';
    List.iteri
      (fun i arg ->
        if i > 0 then Buffer.add_string buf ", ";
        expr_buf buf ~prec:0 arg)
      args;
    Buffer.add_char buf ')'

let expr_to_string e =
  let buf = Buffer.create 64 in
  expr_buf buf ~prec:0 e;
  Buffer.contents buf

let bindings_buf buf bindings =
  List.iteri
    (fun i (name, e) ->
      if i > 0 then Buffer.add_string buf "; ";
      Buffer.add_string buf name;
      Buffer.add_string buf " = ";
      expr_buf buf ~prec:0 e)
    bindings

let spec_buf buf = function
  | Vector fields -> Buffer.add_string buf (String.concat ", " fields)
  | Fold def ->
    Buffer.add_string buf "fold { init { ";
    bindings_buf buf def.init;
    Buffer.add_string buf " } update { ";
    bindings_buf buf def.update;
    Buffer.add_string buf " } }"

let prim_buf buf = function
  | Measure spec ->
    Buffer.add_string buf "Measure(";
    spec_buf buf spec;
    Buffer.add_char buf ')'
  | Rate e ->
    Buffer.add_string buf "Rate(";
    expr_buf buf ~prec:0 e;
    Buffer.add_char buf ')'
  | Cwnd e ->
    Buffer.add_string buf "Cwnd(";
    expr_buf buf ~prec:0 e;
    Buffer.add_char buf ')'
  | Wait e ->
    Buffer.add_string buf "Wait(";
    expr_buf buf ~prec:0 e;
    Buffer.add_char buf ')'
  | Wait_rtts e ->
    Buffer.add_string buf "WaitRtts(";
    expr_buf buf ~prec:0 e;
    Buffer.add_char buf ')'
  | Report -> Buffer.add_string buf "Report()"

let program_to_string program =
  let buf = Buffer.create 256 in
  List.iteri
    (fun i prim ->
      if i > 0 then Buffer.add_char buf '.';
      prim_buf buf prim)
    program.prims;
  if not program.repeat then Buffer.add_string buf ".Once()";
  Buffer.contents buf

let pp_expr fmt e = Format.pp_print_string fmt (expr_to_string e)
let pp_program fmt p = Format.pp_print_string fmt (program_to_string p)
