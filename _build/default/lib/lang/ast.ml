type binop = Add | Sub | Mul | Div

type expr =
  | Const of float
  | Var of string
  | Pkt of string
  | Bin of binop * expr * expr
  | Neg of expr
  | Call of string * expr list

type fold_def = {
  init : (string * expr) list;
  update : (string * expr) list;
}

type measure_spec = Vector of string list | Fold of fold_def

type prim =
  | Measure of measure_spec
  | Rate of expr
  | Cwnd of expr
  | Wait of expr
  | Wait_rtts of expr
  | Report

type program = { prims : prim list; repeat : bool }

let program ?(repeat = true) prims = { prims; repeat }

let rec equal_expr a b =
  match (a, b) with
  | Const x, Const y -> Float.equal x y
  | Var x, Var y | Pkt x, Pkt y -> String.equal x y
  | Bin (op1, l1, r1), Bin (op2, l2, r2) -> op1 = op2 && equal_expr l1 l2 && equal_expr r1 r2
  | Neg x, Neg y -> equal_expr x y
  | Call (f, args1), Call (g, args2) ->
    String.equal f g && List.length args1 = List.length args2
    && List.for_all2 equal_expr args1 args2
  | (Const _ | Var _ | Pkt _ | Bin _ | Neg _ | Call _), _ -> false

let equal_bindings b1 b2 =
  List.length b1 = List.length b2
  && List.for_all2 (fun (n1, e1) (n2, e2) -> String.equal n1 n2 && equal_expr e1 e2) b1 b2

let equal_spec s1 s2 =
  match (s1, s2) with
  | Vector f1, Vector f2 -> f1 = f2
  | Fold d1, Fold d2 -> equal_bindings d1.init d2.init && equal_bindings d1.update d2.update
  | (Vector _ | Fold _), _ -> false

let equal_prim p1 p2 =
  match (p1, p2) with
  | Measure s1, Measure s2 -> equal_spec s1 s2
  | Rate e1, Rate e2 | Cwnd e1, Cwnd e2 | Wait e1, Wait e2 | Wait_rtts e1, Wait_rtts e2 ->
    equal_expr e1 e2
  | Report, Report -> true
  | (Measure _ | Rate _ | Cwnd _ | Wait _ | Wait_rtts _ | Report), _ -> false

let equal_program p1 p2 =
  p1.repeat = p2.repeat
  && List.length p1.prims = List.length p2.prims
  && List.for_all2 equal_prim p1.prims p2.prims

module Vars = struct
  let flow_vars =
    [
      ("cwnd", "congestion window, bytes");
      ("rate", "pacing rate, bytes/second (0 when unset)");
      ("mss", "maximum segment size, bytes");
      ("srtt_us", "smoothed RTT, microseconds");
      ("rtt_us", "latest RTT sample, microseconds");
      ("minrtt_us", "minimum RTT observed, microseconds");
      ("inflight_bytes", "bytes currently unacknowledged");
      ("now_us", "datapath clock, microseconds");
    ]

  let pkt_fields =
    [
      ("rtt_us", "RTT sample of the acknowledged segment, microseconds");
      ("bytes_acked", "bytes newly acknowledged by this ACK");
      ("bytes_lost", "bytes newly declared lost");
      ("ecn", "1.0 if this ACK echoed an ECN mark, else 0.0");
      ("send_rate", "sender throughput sample, bytes/second");
      ("recv_rate", "delivery rate sample, bytes/second");
      ("inflight_bytes", "bytes in flight after this ACK");
      ("now_us", "arrival time of this ACK, microseconds");
    ]

  let builtins =
    [
      ("min", 2); ("max", 2); ("abs", 1); ("sqrt", 1); ("pow", 2);
      ("if_lt", 4); ("if_le", 4); ("if_gt", 4); ("if_ge", 4);
    ]

  let is_flow_var name = List.mem_assoc name flow_vars
  let is_pkt_field name = List.mem_assoc name pkt_fields
  let builtin_arity name = List.assoc_opt name builtins
end
