open Ast

exception Parse_error of string

type state = { mutable tokens : Lexer.token list }

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let peek st = match st.tokens with [] -> Lexer.EOF | tok :: _ -> tok

let advance st =
  match st.tokens with
  | [] -> ()
  | _ :: rest -> st.tokens <- rest

let expect st tok what =
  if peek st = tok then advance st
  else fail "expected %s, found %a" what Lexer.pp_token (peek st)

let expect_ident st what =
  match peek st with
  | Lexer.IDENT name ->
    advance st;
    name
  | other -> fail "expected %s, found %a" what Lexer.pp_token other

(* expr := term ((PLUS | MINUS) term)*
   term := factor ((STAR | SLASH) factor)*
   factor := NUMBER | MINUS factor | LPAREN expr RPAREN
           | IDENT | IDENT DOT IDENT | IDENT LPAREN exprs RPAREN *)
let rec parse_expression st =
  let left = parse_term st in
  let rec loop acc =
    match peek st with
    | Lexer.PLUS ->
      advance st;
      loop (Bin (Add, acc, parse_term st))
    | Lexer.MINUS ->
      advance st;
      loop (Bin (Sub, acc, parse_term st))
    | _ -> acc
  in
  loop left

and parse_term st =
  let left = parse_factor st in
  let rec loop acc =
    match peek st with
    | Lexer.STAR ->
      advance st;
      loop (Bin (Mul, acc, parse_factor st))
    | Lexer.SLASH ->
      advance st;
      loop (Bin (Div, acc, parse_factor st))
    | _ -> acc
  in
  loop left

and parse_factor st =
  match peek st with
  | Lexer.NUMBER f ->
    advance st;
    Const f
  | Lexer.MINUS ->
    advance st;
    Neg (parse_factor st)
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expression st in
    expect st Lexer.RPAREN "')'";
    e
  | Lexer.IDENT name -> (
    advance st;
    match peek st with
    | Lexer.DOT when name = "pkt" ->
      advance st;
      let field = expect_ident st "packet field after 'pkt.'" in
      Pkt field
    | Lexer.LPAREN ->
      advance st;
      let args = parse_expr_list st in
      expect st Lexer.RPAREN "')'";
      Call (name, args)
    | _ -> Var name)
  | other -> fail "expected expression, found %a" Lexer.pp_token other

and parse_expr_list st =
  if peek st = Lexer.RPAREN then []
  else begin
    let first = parse_expression st in
    let rec loop acc =
      match peek st with
      | Lexer.COMMA ->
        advance st;
        loop (parse_expression st :: acc)
      | _ -> List.rev acc
    in
    loop [ first ]
  end

(* bindings := (IDENT EQUALS expr SEMI?)* *)
let parse_bindings st =
  let rec loop acc =
    match peek st with
    | Lexer.IDENT name ->
      advance st;
      expect st Lexer.EQUALS "'=' in binding";
      let e = parse_expression st in
      if peek st = Lexer.SEMI then advance st;
      loop ((name, e) :: acc)
    | _ -> List.rev acc
  in
  loop []

let parse_fold st =
  expect st Lexer.LBRACE "'{' after fold";
  let section st keyword =
    let name = expect_ident st (Printf.sprintf "'%s' section" keyword) in
    if name <> keyword then fail "expected '%s' section, found '%s'" keyword name;
    expect st Lexer.LBRACE "'{'";
    let bindings = parse_bindings st in
    expect st Lexer.RBRACE "'}'";
    bindings
  in
  let init = section st "init" in
  let update = section st "update" in
  expect st Lexer.RBRACE "'}' closing fold";
  { init; update }

let parse_measure_spec st =
  match peek st with
  | Lexer.IDENT "fold" ->
    advance st;
    Fold (parse_fold st)
  | Lexer.RPAREN -> Vector []
  | _ ->
    let rec fields acc =
      let name = expect_ident st "measurement field" in
      match peek st with
      | Lexer.COMMA ->
        advance st;
        fields (name :: acc)
      | _ -> List.rev (name :: acc)
    in
    Vector (fields [])

(* prim := Name LPAREN ... RPAREN; returns None for the Once() marker. *)
let parse_prim st =
  let name = expect_ident st "primitive name" in
  expect st Lexer.LPAREN "'('";
  let prim =
    match name with
    | "Measure" -> Some (Measure (parse_measure_spec st))
    | "Rate" -> Some (Rate (parse_expression st))
    | "Cwnd" -> Some (Cwnd (parse_expression st))
    | "Wait" -> Some (Wait (parse_expression st))
    | "WaitRtts" -> Some (Wait_rtts (parse_expression st))
    | "Report" -> Some Report
    | "Once" -> None
    | other -> fail "unknown primitive '%s'" other
  in
  expect st Lexer.RPAREN "')'";
  prim

let parse_program src =
  let st = { tokens = Lexer.tokenize src } in
  let repeat = ref true in
  let rec loop acc =
    let prim = parse_prim st in
    (match prim with None -> repeat := false | Some _ -> ());
    let acc = match prim with Some p -> p :: acc | None -> acc in
    match peek st with
    | Lexer.DOT ->
      advance st;
      loop acc
    | Lexer.EOF -> List.rev acc
    | other -> fail "expected '.' or end of program, found %a" Lexer.pp_token other
  in
  let prims = loop [] in
  if prims = [] then fail "empty program";
  { prims; repeat = !repeat }

let parse_expr src =
  let st = { tokens = Lexer.tokenize src } in
  let e = parse_expression st in
  match peek st with
  | Lexer.EOF -> e
  | other -> fail "trailing input after expression: %a" Lexer.pp_token other
