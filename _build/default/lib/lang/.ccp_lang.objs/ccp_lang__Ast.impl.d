lib/lang/ast.ml: Float List String
