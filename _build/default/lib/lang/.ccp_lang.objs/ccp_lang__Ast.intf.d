lib/lang/ast.mli:
