lib/lang/fold.mli: Ast Eval
