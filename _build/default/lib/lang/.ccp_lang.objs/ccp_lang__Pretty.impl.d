lib/lang/pretty.ml: Ast Buffer Float Format List Printf String
