lib/lang/eval.ml: Ast Float List
