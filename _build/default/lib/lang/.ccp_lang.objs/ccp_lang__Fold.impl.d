lib/lang/fold.ml: Array Ast Eval List Option
