(** Abstract syntax of the CCP control-program language (Table 2).

    A control program is a sequence of primitives the datapath executes on
    behalf of the user-space algorithm:

    {v
    Measure(rtt_us, bytes_acked).Cwnd(cwnd + 2 * mss).WaitRtts(1.0).Report()
    v}

    Programs loop back to their first primitive when they finish (BBR's
    pulse pattern in the paper relies on this) unless terminated with
    [Once()]. Expressions are evaluated in the datapath against flow-level
    variables ({!Vars.flow_vars}) and, inside fold updates, per-packet
    fields ({!Vars.pkt_fields}) and the fold's own state. *)

type binop = Add | Sub | Mul | Div

type expr =
  | Const of float
  | Var of string
      (** A flow variable, or (inside a fold update) a fold state field;
          state shadows flow variables. *)
  | Pkt of string  (** [pkt.field]: per-packet measurement, folds only. *)
  | Bin of binop * expr * expr
  | Neg of expr
  | Call of string * expr list  (** builtin functions, see {!Vars.builtins} *)

type fold_def = {
  init : (string * expr) list;  (** state fields and initial values *)
  update : (string * expr) list;
      (** per-packet simultaneous update: every right-hand side sees the
          pre-update state, matching the paper's [fold (old, pkt) -> new] *)
}

type measure_spec =
  | Vector of string list  (** append these per-packet fields to a vector *)
  | Fold of fold_def  (** summarize packets into constant-size state *)

type prim =
  | Measure of measure_spec
  | Rate of expr  (** set the pacing rate, bytes/second *)
  | Cwnd of expr  (** set the congestion window, bytes *)
  | Wait of expr  (** wait this many microseconds *)
  | Wait_rtts of expr  (** wait this many (current, smoothed) RTTs *)
  | Report  (** flush collected measurements to the agent *)

type program = { prims : prim list; repeat : bool }

val program : ?repeat:bool -> prim list -> program

val equal_expr : expr -> expr -> bool
val equal_program : program -> program -> bool

(** Canonical variable and function names shared between the language, the
    datapath, and the agent. *)
module Vars : sig
  val flow_vars : (string * string) list
  (** (name, description) of the datapath flow variables readable from any
      expression: cwnd, rate, mss, srtt_us, rtt_us, minrtt_us,
      inflight_bytes, now_us. *)

  val pkt_fields : (string * string) list
  (** Per-packet measurement fields available as [pkt.x] in folds and as
      column names in [Measure(vector ...)]: rtt_us, bytes_acked,
      bytes_lost, ecn, send_rate, recv_rate, inflight_bytes, now_us. *)

  val builtins : (string * int) list
  (** (function name, arity): min, max, abs, sqrt, pow plus the branchless
      conditionals if_lt/if_le/if_gt/if_ge with arity 4 —
      [if_lt(a,b,x,y) = if a < b then x else y]. *)

  val is_flow_var : string -> bool
  val is_pkt_field : string -> bool
  val builtin_arity : string -> int option
end
