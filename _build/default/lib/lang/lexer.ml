type token =
  | IDENT of string
  | NUMBER of float
  | DOT
  | COMMA
  | SEMI
  | EQUALS
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

exception Lex_error of { position : int; message : string }

let error position message = raise (Lex_error { position; message })

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* A number is digits with an optional fraction and exponent. The tricky
   case is "1.0.Report()": a '.' is part of the number only when a digit
   follows, otherwise it is the sequencing dot. *)
let lex_number src pos =
  let n = String.length src in
  let start = !pos in
  while !pos < n && is_digit src.[!pos] do
    incr pos
  done;
  if !pos + 1 < n && src.[!pos] = '.' && is_digit src.[!pos + 1] then begin
    incr pos;
    while !pos < n && is_digit src.[!pos] do
      incr pos
    done
  end;
  if !pos < n && (src.[!pos] = 'e' || src.[!pos] = 'E') then begin
    let mark = !pos in
    incr pos;
    if !pos < n && (src.[!pos] = '+' || src.[!pos] = '-') then incr pos;
    if !pos < n && is_digit src.[!pos] then
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done
    else pos := mark (* not an exponent after all *)
  end;
  let text = String.sub src start (!pos - start) in
  match float_of_string_opt text with
  | Some f -> NUMBER f
  | None -> error start (Printf.sprintf "malformed number %S" text)

let lex_ident src pos =
  let n = String.length src in
  let start = !pos in
  while !pos < n && is_ident_char src.[!pos] do
    incr pos
  done;
  IDENT (String.sub src start (!pos - start))

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let tokens = ref [] in
  let emit tok = tokens := tok :: !tokens in
  while !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '#' then begin
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if is_digit c then emit (lex_number src pos)
    else if is_ident_start c then emit (lex_ident src pos)
    else begin
      (match c with
      | '.' -> emit DOT
      | ',' -> emit COMMA
      | ';' -> emit SEMI
      | '=' -> emit EQUALS
      | '(' -> emit LPAREN
      | ')' -> emit RPAREN
      | '{' -> emit LBRACE
      | '}' -> emit RBRACE
      | '+' -> emit PLUS
      | '-' -> emit MINUS
      | '*' -> emit STAR
      | '/' -> emit SLASH
      | other -> error !pos (Printf.sprintf "unexpected character %C" other));
      incr pos
    end
  done;
  List.rev (EOF :: !tokens)

let pp_token fmt = function
  | IDENT s -> Format.fprintf fmt "IDENT(%s)" s
  | NUMBER f -> Format.fprintf fmt "NUMBER(%g)" f
  | DOT -> Format.pp_print_string fmt "DOT"
  | COMMA -> Format.pp_print_string fmt "COMMA"
  | SEMI -> Format.pp_print_string fmt "SEMI"
  | EQUALS -> Format.pp_print_string fmt "EQUALS"
  | LPAREN -> Format.pp_print_string fmt "LPAREN"
  | RPAREN -> Format.pp_print_string fmt "RPAREN"
  | LBRACE -> Format.pp_print_string fmt "LBRACE"
  | RBRACE -> Format.pp_print_string fmt "RBRACE"
  | PLUS -> Format.pp_print_string fmt "PLUS"
  | MINUS -> Format.pp_print_string fmt "MINUS"
  | STAR -> Format.pp_print_string fmt "STAR"
  | SLASH -> Format.pp_print_string fmt "SLASH"
  | EOF -> Format.pp_print_string fmt "EOF"
