(** Static validation of control programs.

    The agent validates every program before installing it; the datapath
    validates again on receipt (it cannot trust the channel). Checks:

    - every variable resolves (flow variable, or declared fold state field
      within fold updates);
    - [pkt.x] appears only inside fold updates and names a known field;
    - builtins exist and are applied at the right arity;
    - [Measure(vector ...)] columns name known packet fields;
    - fold updates only assign declared state fields; no duplicate fields;
    - a repeating program contains a [Wait]/[WaitRtts] (otherwise the
      datapath would spin through the loop without advancing time).

    Warnings (don't block installation): no [Report] in a repeating
    program; dead primitives after a final [Report] in a [Once] program. *)

type error = { message : string }
type warning = { message : string }

val check : Ast.program -> (warning list, error list) result

val check_exn : Ast.program -> warning list
(** Raises [Invalid_argument] with the first error's message. *)

val pp_error : Format.formatter -> error -> unit
val pp_warning : Format.formatter -> warning -> unit
