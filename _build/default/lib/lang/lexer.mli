(** Hand-written lexer for the control-program surface syntax. *)

type token =
  | IDENT of string
  | NUMBER of float
  | DOT
  | COMMA
  | SEMI
  | EQUALS
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

exception Lex_error of { position : int; message : string }

val tokenize : string -> token list
(** Whole-input tokenization. Comments run from ['#'] to end of line.
    Raises {!Lex_error} on an unexpected character or malformed number. *)

val pp_token : Format.formatter -> token -> unit
