(** Recursive-descent parser for control programs.

    Surface syntax, mirroring the paper's examples:

    {v
    Measure(rtt_us, bytes_acked).
    Rate(1.25 * rate).WaitRtts(1.0).Report().
    Rate(0.75 * rate).WaitRtts(1.0).Report().
    Rate(rate).WaitRtts(6.0).Report()
    v}

    Fold-mode measurement (§2.4):

    {v
    Measure(fold {
      init   { minrtt = 1e9; delta = 0 }
      update { minrtt = min(minrtt, pkt.rtt_us);
               delta  = delta + if_lt(pkt.rtt_us, 2 * minrtt, 1, -1) }
    }).Cwnd(cwnd).WaitRtts(1.0).Report()
    v}

    A trailing [.Once()] makes the program run a single pass instead of
    looping. *)

exception Parse_error of string

val parse_program : string -> Ast.program
(** Raises {!Parse_error} or {!Lexer.Lex_error} on malformed input. The
    result is syntactically well-formed but not yet validated; run
    {!Typecheck.check} before installing. *)

val parse_expr : string -> Ast.expr
(** Parse a standalone expression (used by tests and the agent's direct
    commands). *)
