open Ccp_util

type config =
  | Droptail of { capacity_bytes : int; ecn_threshold_bytes : int option }
  | Red of {
      capacity_bytes : int;
      min_threshold_bytes : int;
      max_threshold_bytes : int;
      max_mark_probability : float;
      ecn : bool;
    }

type verdict = Enqueued | Dropped

type t = {
  config : config;
  rng : Rng.t;
  queue : Packet.t Queue.t;
  mutable backlog : int;
  mutable avg_backlog : float;  (* RED's EWMA of the queue size *)
  mutable enqueued : int;
  mutable dropped : int;
  mutable marked : int;
  mutable dequeued_bytes : int;
}

let create config ~rng =
  (match config with
  | Droptail { capacity_bytes; _ } ->
    if capacity_bytes <= 0 then invalid_arg "Queue_disc: capacity must be positive"
  | Red { capacity_bytes; min_threshold_bytes; max_threshold_bytes; max_mark_probability; _ } ->
    if capacity_bytes <= 0 then invalid_arg "Queue_disc: capacity must be positive";
    if min_threshold_bytes >= max_threshold_bytes then
      invalid_arg "Queue_disc: RED thresholds must satisfy min < max";
    if max_mark_probability <= 0.0 || max_mark_probability > 1.0 then
      invalid_arg "Queue_disc: RED mark probability in (0,1]");
  {
    config;
    rng;
    queue = Queue.create ();
    backlog = 0;
    avg_backlog = 0.0;
    enqueued = 0;
    dropped = 0;
    marked = 0;
    dequeued_bytes = 0;
  }

let admit t (pkt : Packet.t) =
  Queue.add pkt t.queue;
  t.backlog <- t.backlog + pkt.wire_size;
  t.enqueued <- t.enqueued + 1;
  Enqueued

let drop t = t.dropped <- t.dropped + 1

let mark t (pkt : Packet.t) =
  pkt.ecn_marked <- true;
  t.marked <- t.marked + 1

let enqueue_droptail t ~capacity_bytes ~ecn_threshold_bytes (pkt : Packet.t) =
  if t.backlog + pkt.wire_size > capacity_bytes then begin
    drop t;
    Dropped
  end
  else begin
    (match ecn_threshold_bytes with
    | Some threshold when pkt.ecn_capable && t.backlog >= threshold -> mark t pkt
    | Some _ | None -> ());
    admit t pkt
  end

(* RED with the "instantaneous + EWMA" simplification: the average queue is
   tracked with weight 0.002 (Floyd's recommended value) and packets are
   probabilistically marked or dropped between the two thresholds. *)
let red_weight = 0.002

let enqueue_red t ~capacity_bytes ~min_threshold_bytes ~max_threshold_bytes
    ~max_mark_probability ~ecn (pkt : Packet.t) =
  t.avg_backlog <-
    t.avg_backlog +. (red_weight *. (float_of_int t.backlog -. t.avg_backlog));
  if t.backlog + pkt.wire_size > capacity_bytes then begin
    drop t;
    Dropped
  end
  else begin
    let avg = t.avg_backlog in
    let lo = float_of_int min_threshold_bytes and hi = float_of_int max_threshold_bytes in
    if avg <= lo then admit t pkt
    else begin
      let p =
        if avg >= hi then 1.0 else max_mark_probability *. ((avg -. lo) /. (hi -. lo))
      in
      if Rng.float t.rng 1.0 < p then
        if ecn && pkt.ecn_capable then begin
          mark t pkt;
          admit t pkt
        end
        else begin
          drop t;
          Dropped
        end
      else admit t pkt
    end
  end

let enqueue t pkt =
  match t.config with
  | Droptail { capacity_bytes; ecn_threshold_bytes } ->
    enqueue_droptail t ~capacity_bytes ~ecn_threshold_bytes pkt
  | Red { capacity_bytes; min_threshold_bytes; max_threshold_bytes; max_mark_probability; ecn }
    ->
    enqueue_red t ~capacity_bytes ~min_threshold_bytes ~max_threshold_bytes
      ~max_mark_probability ~ecn pkt

let dequeue t =
  match Queue.take_opt t.queue with
  | None -> None
  | Some pkt ->
    t.backlog <- t.backlog - pkt.wire_size;
    t.dequeued_bytes <- t.dequeued_bytes + pkt.wire_size;
    Some pkt

let peek t = Queue.peek_opt t.queue
let backlog_bytes t = t.backlog
let backlog_packets t = Queue.length t.queue
let enqueued_packets t = t.enqueued
let dropped_packets t = t.dropped
let marked_packets t = t.marked
let dequeued_bytes t = t.dequeued_bytes
