(** Packets exchanged by simulated hosts.

    A packet is either a data segment or a (cumulative) acknowledgment.
    Sequence numbers count bytes, as in TCP. The ACK carries an echo of the
    triggering segment's send timestamp — the TCP timestamp-option trick —
    so the sender can take exact per-packet RTT samples even under
    cumulative acknowledgment, and an ECN echo for DCTCP-style marking
    feedback. *)

open Ccp_util

type flow_id = int

type data = {
  seq : int;  (** first byte carried *)
  len : int;  (** payload bytes *)
  sent_at : Time_ns.t;
  is_retransmit : bool;
}

type ack = {
  cum_ack : int;  (** next byte expected by the receiver *)
  echo_sent_at : Time_ns.t;  (** timestamp echo of the segment that triggered this ACK *)
  ecn_echo : bool;  (** the triggering segment carried an ECN mark *)
  acked_segments : int;  (** segments coalesced into this ACK (GRO aggregation) *)
  recv_bytes : int;  (** receiver's cumulative in-order byte count *)
  newly_sacked : (int * int) list;
      (** SACK information as incremental \[start, stop) byte ranges newly
          buffered out-of-order by this ACK's trigger segment(s). Carrying
          only the delta (rather than RFC 2018's rotating three blocks)
          keeps sender-side scoreboard updates O(1) per ACK; it is safe
          here because the simulated reverse path never drops ACKs. *)
}

type payload = Data of data | Ack of ack

type t = {
  flow : flow_id;
  wire_size : int;  (** bytes on the wire, headers included *)
  ecn_capable : bool;
  mutable ecn_marked : bool;  (** set by queues when marking instead of dropping *)
  payload : payload;
}

val header_bytes : int
(** Fixed per-packet header overhead we charge (IP + TCP, 40 bytes). *)

val ack_wire_size : int

val data : flow:flow_id -> seq:int -> len:int -> sent_at:Time_ns.t -> ?is_retransmit:bool ->
  ?ecn_capable:bool -> unit -> t

val ack : flow:flow_id -> cum_ack:int -> echo_sent_at:Time_ns.t -> ecn_echo:bool ->
  ?acked_segments:int -> ?newly_sacked:(int * int) list -> recv_bytes:int -> unit -> t

val is_data : t -> bool
val is_ack : t -> bool

val seq_end : data -> int
(** [seq_end d] is [d.seq + d.len], the byte after the segment. *)

val pp : Format.formatter -> t -> unit
