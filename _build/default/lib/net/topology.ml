open Ccp_util

module Dumbbell = struct
  type endpoints = { data_sink : Packet.t -> unit; ack_sink : Packet.t -> unit }

  type t = {
    forward : Link.t;
    reverse : Link.t;
    rate_bps : float;
    base_rtt : Time_ns.t;
    flows : (Packet.flow_id, endpoints) Hashtbl.t;
  }

  let create ~sim ~rate_bps ~base_rtt ~buffer_bytes ?ecn_threshold_bytes ?qdisc
      ?(reverse_rate_bps = 0.0) ?jitter ?rate_schedule () =
    let one_way = Time_ns.scale base_rtt 0.5 in
    let fwd_qdisc =
      match qdisc with
      | Some q -> q
      | None ->
        Queue_disc.Droptail { capacity_bytes = buffer_bytes; ecn_threshold_bytes }
    in
    let reverse_rate = if reverse_rate_bps > 0.0 then reverse_rate_bps else 10.0 *. rate_bps in
    let forward =
      Link.create ~sim ~rate_bps ~delay:one_way ~qdisc:fwd_qdisc ~name:"bottleneck" ?jitter
        ?rate_schedule ()
    in
    let reverse =
      Link.create ~sim ~rate_bps:reverse_rate ~delay:(Time_ns.sub base_rtt one_way)
        ~qdisc:(Queue_disc.Droptail { capacity_bytes = 100_000_000; ecn_threshold_bytes = None })
        ~name:"reverse" ()
    in
    let t = { forward; reverse; rate_bps; base_rtt; flows = Hashtbl.create 8 } in
    Link.connect forward (fun pkt ->
        match Hashtbl.find_opt t.flows pkt.Packet.flow with
        | Some ep -> ep.data_sink pkt
        | None -> ());
    Link.connect reverse (fun pkt ->
        match Hashtbl.find_opt t.flows pkt.Packet.flow with
        | Some ep -> ep.ack_sink pkt
        | None -> ());
    t

  let forward t = t.forward
  let reverse t = t.reverse

  let bdp_bytes t =
    int_of_float (t.rate_bps *. Time_ns.to_float_sec t.base_rtt /. 8.0)

  let register t ~flow ~data_sink ~ack_sink =
    if Hashtbl.mem t.flows flow then invalid_arg "Dumbbell.register: duplicate flow id";
    Hashtbl.add t.flows flow { data_sink; ack_sink }

  let send_data t pkt = Link.send t.forward pkt
  let send_ack t pkt = Link.send t.reverse pkt
end
