open Ccp_util
open Ccp_eventsim

type t = { sim : Sim.t; tbl : (string, (Time_ns.t * float) list ref) Hashtbl.t }

let create sim = { sim; tbl = Hashtbl.create 16 }

let points t series =
  match Hashtbl.find_opt t.tbl series with
  | Some cell -> cell
  | None ->
    let cell = ref [] in
    Hashtbl.add t.tbl series cell;
    cell

let add t ~series value =
  let cell = points t series in
  cell := (Sim.now t.sim, value) :: !cell

let sample_every t ~series ~every ?until probe =
  if not (Time_ns.is_positive every) then invalid_arg "Trace.sample_every: period must be positive";
  let rec tick () =
    let due = Time_ns.add (Sim.now t.sim) every in
    match until with
    | Some limit when Time_ns.compare due limit > 0 -> ()
    | Some _ | None ->
      ignore
        (Sim.schedule t.sim ~at:due (fun () ->
             add t ~series (probe ());
             tick ()))
  in
  tick ()

let series t name =
  match Hashtbl.find_opt t.tbl name with None -> [] | Some cell -> List.rev !cell

let series_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tbl [] |> List.sort String.compare

let to_csv t ~name =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "time_s,value\n";
  List.iter
    (fun (at, v) -> Buffer.add_string buf (Printf.sprintf "%.6f,%.6f\n" (Time_ns.to_float_sec at) v))
    (series t name);
  Buffer.contents buf

let downsample pts ~max_points =
  let n = List.length pts in
  if max_points <= 0 then invalid_arg "Trace.downsample: max_points must be positive";
  if n <= max_points then pts
  else begin
    let arr = Array.of_list pts in
    let stride = float_of_int (n - 1) /. float_of_int (max_points - 1) in
    List.init max_points (fun i ->
        let idx = int_of_float (Float.round (float_of_int i *. stride)) in
        arr.(Stdlib.min idx (n - 1)))
  end
