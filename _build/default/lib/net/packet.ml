open Ccp_util

type flow_id = int

type data = {
  seq : int;
  len : int;
  sent_at : Time_ns.t;
  is_retransmit : bool;
}

type ack = {
  cum_ack : int;
  echo_sent_at : Time_ns.t;
  ecn_echo : bool;
  acked_segments : int;
  recv_bytes : int;
  newly_sacked : (int * int) list;
}

type payload = Data of data | Ack of ack

type t = {
  flow : flow_id;
  wire_size : int;
  ecn_capable : bool;
  mutable ecn_marked : bool;
  payload : payload;
}

let header_bytes = 40
let ack_wire_size = header_bytes

let data ~flow ~seq ~len ~sent_at ?(is_retransmit = false) ?(ecn_capable = false) () =
  {
    flow;
    wire_size = len + header_bytes;
    ecn_capable;
    ecn_marked = false;
    payload = Data { seq; len; sent_at; is_retransmit };
  }

let ack ~flow ~cum_ack ~echo_sent_at ~ecn_echo ?(acked_segments = 1) ?(newly_sacked = [])
    ~recv_bytes () =
  {
    flow;
    wire_size = ack_wire_size;
    ecn_capable = false;
    ecn_marked = false;
    payload = Ack { cum_ack; echo_sent_at; ecn_echo; acked_segments; recv_bytes; newly_sacked };
  }

let is_data t = match t.payload with Data _ -> true | Ack _ -> false
let is_ack t = match t.payload with Ack _ -> true | Data _ -> false

let seq_end (d : data) = d.seq + d.len

let pp fmt t =
  match t.payload with
  | Data d ->
    Format.fprintf fmt "data[flow=%d seq=%d len=%d%s%s]" t.flow d.seq d.len
      (if d.is_retransmit then " retx" else "")
      (if t.ecn_marked then " ce" else "")
  | Ack a ->
    Format.fprintf fmt "ack[flow=%d cum=%d%s]" t.flow a.cum_ack
      (if a.ecn_echo then " ece" else "")
