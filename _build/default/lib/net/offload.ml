open Ccp_util
open Ccp_eventsim

module Sender_path = struct
  type config = {
    tso : bool;
    tso_max_bytes : int;
    per_op : Time_ns.t;
    per_segment : Time_ns.t;
    ack_cost : Time_ns.t;
  }

  (* per_op dominates: ~2.1 us of stack traversal per send operation, plus
     0.15 us of copy/DMA setup per MTU segment. Without TSO each MTU
     segment pays the full per_op, capping an MTU-sized stream at roughly
     1e9/2250 = ~440k segments/s = ~5.3 Gbit/s. With TSO the per_op cost is
     amortized over up to 43 segments. Incoming ACKs cost ack_cost each on
     the same CPU. *)
  let default_config =
    {
      tso = true;
      tso_max_bytes = 65536;
      per_op = Time_ns.ns 2100;
      per_segment = Time_ns.ns 150;
      ack_cost = Time_ns.ns 450;
    }

  type item = Segment of Packet.t | Incoming_ack of Packet.t

  type t = {
    sim : Sim.t;
    config : config;
    out : Packet.t -> unit;
    ack_out : Packet.t -> unit;
    pending : item Queue.t;
    mutable busy : bool;
    mutable busy_time : Time_ns.t;
    mutable operations : int;
    mutable segments : int;
    mutable acks : int;
  }

  let create ~sim ~config ~out ?(ack_out = fun _ -> ()) () =
    {
      sim;
      config;
      out;
      ack_out;
      pending = Queue.create ();
      busy = false;
      busy_time = Time_ns.zero;
      operations = 0;
      segments = 0;
      acks = 0;
    }

  (* Pull one operation's worth of consecutive segments off the queue: a
     single segment without TSO, up to [tso_max_bytes] with it. ACKs are
     processed one per operation. *)
  let take_segment_batch t =
    let max_bytes = if t.config.tso then t.config.tso_max_bytes else 0 in
    let rec take acc bytes =
      match Queue.peek_opt t.pending with
      | Some (Segment pkt) when acc = [] || bytes + pkt.Packet.wire_size <= max_bytes ->
        ignore (Queue.take t.pending);
        take (pkt :: acc) (bytes + pkt.Packet.wire_size)
      | Some (Segment _ | Incoming_ack _) | None -> List.rev acc
    in
    take [] 0

  let rec process_next t =
    match Queue.peek_opt t.pending with
    | None -> t.busy <- false
    | Some (Incoming_ack _) ->
      let ack =
        match Queue.take t.pending with Incoming_ack a -> a | Segment _ -> assert false
      in
      t.busy <- true;
      let cost = t.config.ack_cost in
      t.busy_time <- Time_ns.add t.busy_time cost;
      t.acks <- t.acks + 1;
      ignore
        (Sim.schedule_after t.sim ~delay:cost (fun () ->
             t.ack_out ack;
             process_next t))
    | Some (Segment _) ->
      let batch = take_segment_batch t in
      t.busy <- true;
      let n = List.length batch in
      let cost =
        Time_ns.add t.config.per_op (Time_ns.scale t.config.per_segment (float_of_int n))
      in
      t.busy_time <- Time_ns.add t.busy_time cost;
      t.operations <- t.operations + 1;
      t.segments <- t.segments + n;
      ignore
        (Sim.schedule_after t.sim ~delay:cost (fun () ->
             List.iter t.out batch;
             process_next t))

  let send t pkt =
    Queue.add (Segment pkt) t.pending;
    if not t.busy then process_next t

  let receive_ack t pkt =
    Queue.add (Incoming_ack pkt) t.pending;
    if not t.busy then process_next t

  let busy_time t = t.busy_time
  let operations t = t.operations
  let segments t = t.segments
  let acks_processed t = t.acks
end

module Receiver_path = struct
  type config = {
    gro : bool;
    gro_max_segments : int;
    per_op : Time_ns.t;
    per_segment : Time_ns.t;
  }

  (* Receive processing is costlier than transmit per operation (IRQ +
     protocol processing + ACK generation). *)
  let default_config =
    { gro = true; gro_max_segments = 44; per_op = Time_ns.ns 2600; per_segment = Time_ns.ns 200 }

  type t = {
    sim : Sim.t;
    config : config;
    deliver : Packet.t list -> unit;
    pending : Packet.t Queue.t;
    mutable busy : bool;
    mutable busy_time : Time_ns.t;
    mutable operations : int;
    mutable segments : int;
  }

  let create ~sim ~config ~deliver =
    {
      sim;
      config;
      deliver;
      pending = Queue.create ();
      busy = false;
      busy_time = Time_ns.zero;
      operations = 0;
      segments = 0;
    }

  (* GRO merges consecutive queued segments of the same flow into one
     operation, up to the segment limit. *)
  let take_batch t =
    match Queue.peek_opt t.pending with
    | None -> []
    | Some first ->
      let limit = if t.config.gro then t.config.gro_max_segments else 1 in
      let rec take acc n =
        if n >= limit then List.rev acc
        else
          match Queue.peek_opt t.pending with
          | Some pkt when pkt.Packet.flow = first.Packet.flow && Packet.is_data pkt ->
            ignore (Queue.take t.pending);
            take (pkt :: acc) (n + 1)
          | Some _ | None -> List.rev acc
      in
      if Packet.is_data first then take [] 0
      else begin
        (* Non-data packets (ACKs on a reverse path) are processed singly. *)
        ignore (Queue.take t.pending);
        [ first ]
      end

  let rec process_next t =
    match take_batch t with
    | [] -> t.busy <- false
    | batch ->
      t.busy <- true;
      let n = List.length batch in
      let cost =
        Time_ns.add t.config.per_op (Time_ns.scale t.config.per_segment (float_of_int n))
      in
      t.busy_time <- Time_ns.add t.busy_time cost;
      t.operations <- t.operations + 1;
      t.segments <- t.segments + n;
      ignore
        (Sim.schedule_after t.sim ~delay:cost (fun () ->
             t.deliver batch;
             process_next t))

  let receive t pkt =
    Queue.add pkt t.pending;
    if not t.busy then process_next t

  let busy_time t = t.busy_time
  let operations t = t.operations
  let segments t = t.segments

  let mean_batch t =
    if t.operations = 0 then 0.0 else float_of_int t.segments /. float_of_int t.operations
end
