lib/net/offload.mli: Ccp_eventsim Ccp_util Packet Sim Time_ns
