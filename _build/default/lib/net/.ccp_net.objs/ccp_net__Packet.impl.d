lib/net/packet.ml: Ccp_util Format Time_ns
