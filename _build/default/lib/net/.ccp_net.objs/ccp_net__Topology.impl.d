lib/net/topology.ml: Ccp_util Hashtbl Link Packet Queue_disc Time_ns
