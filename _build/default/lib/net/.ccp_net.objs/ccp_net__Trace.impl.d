lib/net/trace.ml: Array Buffer Ccp_eventsim Ccp_util Float Hashtbl List Printf Sim Stdlib String Time_ns
