lib/net/packet.mli: Ccp_util Format Time_ns
