lib/net/topology.mli: Ccp_eventsim Ccp_util Link Packet Queue_disc Sim Time_ns
