lib/net/queue_disc.ml: Ccp_util Packet Queue Rng
