lib/net/trace.mli: Ccp_eventsim Ccp_util Sim Time_ns
