lib/net/link.mli: Ccp_eventsim Ccp_util Packet Queue_disc Sim Time_ns
