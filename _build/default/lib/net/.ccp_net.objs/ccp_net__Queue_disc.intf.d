lib/net/queue_disc.mli: Ccp_util Packet
