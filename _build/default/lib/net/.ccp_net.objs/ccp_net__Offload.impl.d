lib/net/offload.ml: Ccp_eventsim Ccp_util List Packet Queue Sim Time_ns
