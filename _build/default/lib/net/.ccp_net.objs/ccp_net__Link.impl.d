lib/net/link.ml: Array Ccp_eventsim Ccp_util List Packet Queue_disc Rng Sim Time_ns
