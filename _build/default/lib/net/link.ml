open Ccp_util
open Ccp_eventsim

type t = {
  sim : Sim.t;
  rate_bps : float;
  delay : Time_ns.t;
  qdisc : Queue_disc.t;
  name : string;
  jitter : Time_ns.t;
  rng : Rng.t;
  schedule : (Time_ns.t * float) array;  (* ascending step times *)
  mutable receive : (Packet.t -> unit) option;
  mutable busy : bool;
  mutable delivered_bytes : int;
  mutable delivered_packets : int;
}

let create ~sim ~rate_bps ~delay ~qdisc ?(name = "link") ?(jitter = Time_ns.zero)
    ?(rate_schedule = []) () =
  if rate_bps <= 0.0 then invalid_arg "Link.create: rate must be positive";
  List.iter
    (fun (at, rate) ->
      if Time_ns.compare at Time_ns.zero < 0 || rate <= 0.0 then
        invalid_arg "Link.create: schedule entries need time >= 0 and rate > 0")
    rate_schedule;
  let schedule =
    Array.of_list (List.sort (fun (a, _) (b, _) -> Time_ns.compare a b) rate_schedule)
  in
  let qdisc = Queue_disc.create qdisc ~rng:(Rng.split (Sim.rng sim)) in
  {
    sim;
    rate_bps;
    delay;
    qdisc;
    name;
    jitter;
    rng = Rng.split (Sim.rng sim);
    schedule;
    receive = None;
    busy = false;
    delivered_bytes = 0;
    delivered_packets = 0;
  }

let connect t receive = t.receive <- Some receive

(* Rate in force at [at]: the last schedule step not after it. *)
let rate_at t ~at =
  let rec find i best =
    if i >= Array.length t.schedule then best
    else begin
      let step_at, rate = t.schedule.(i) in
      if Time_ns.compare step_at at <= 0 then find (i + 1) rate else best
    end
  in
  find 0 t.rate_bps

let current_rate_bps t = rate_at t ~at:(Sim.now t.sim)

let deliver t pkt =
  match t.receive with
  | None -> invalid_arg (t.name ^ ": send before connect")
  | Some receive -> receive pkt

(* The transmitter loop: take the head packet, hold the line for its
   serialization time at the current rate, then schedule its arrival one
   (possibly jittered) propagation delay later and start the next. *)
let rec transmit_next t =
  match Queue_disc.dequeue t.qdisc with
  | None -> t.busy <- false
  | Some pkt ->
    t.busy <- true;
    let rate = rate_at t ~at:(Sim.now t.sim) in
    let serialization = Time_ns.bytes_time ~bytes:pkt.Packet.wire_size ~rate_bps:rate in
    ignore
      (Sim.schedule_after t.sim ~delay:serialization (fun () ->
           t.delivered_bytes <- t.delivered_bytes + pkt.Packet.wire_size;
           t.delivered_packets <- t.delivered_packets + 1;
           let extra =
             if Time_ns.is_positive t.jitter then Rng.int t.rng (t.jitter + 1) else 0
           in
           ignore
             (Sim.schedule_after t.sim ~delay:(Time_ns.add t.delay extra) (fun () ->
                  deliver t pkt));
           transmit_next t))

let send t pkt =
  if t.receive = None then invalid_arg (t.name ^ ": send before connect");
  match Queue_disc.enqueue t.qdisc pkt with
  | Dropped -> ()
  | Enqueued -> if not t.busy then transmit_next t

let rate_bps t = t.rate_bps
let delay t = t.delay
let name t = t.name
let qdisc t = t.qdisc
let delivered_bytes t = t.delivered_bytes
let delivered_packets t = t.delivered_packets

let utilization t ~over =
  let seconds = Time_ns.to_float_sec over in
  if seconds <= 0.0 then 0.0
  else float_of_int (t.delivered_bytes * 8) /. (t.rate_bps *. seconds)
