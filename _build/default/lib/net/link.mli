(** A unidirectional store-and-forward link.

    A link serializes packets at its current rate, buffers them in a
    {!Queue_disc.t} while the transmitter is busy, and delivers each packet
    to the receiver callback one propagation delay after its last bit is
    transmitted. This is the standard fluid link model used by ns-style
    simulators and is what Figures 3–5 exercise.

    Two optional behaviours extend the basic model:

    - [jitter]: each packet's propagation delay is stretched by an
      independent uniform draw in \[0, jitter\]. Jitter larger than a
      packet's serialization time reorders packets, which exercises the
      receiver's out-of-order buffering and the sender's SACK scoreboard.
    - [rate_schedule]: a piecewise-constant capacity profile — (time,
      bits/s) steps, as on a cellular link. The rate in force when a
      packet starts transmitting determines its serialization time. *)

open Ccp_util
open Ccp_eventsim

type t

val create :
  sim:Sim.t ->
  rate_bps:float ->
  delay:Time_ns.t ->
  qdisc:Queue_disc.config ->
  ?name:string ->
  ?jitter:Time_ns.t ->
  ?rate_schedule:(Time_ns.t * float) list ->
  unit ->
  t
(** [rate_schedule] entries must have non-negative times and positive
    rates; the initial rate is [rate_bps] until the first step. *)

val connect : t -> (Packet.t -> unit) -> unit
(** Set the receive callback. Must be called before the first [send]. *)

val send : t -> Packet.t -> unit
(** Offer a packet to the link; it is dropped or queued per the qdisc and
    transmitted in FIFO order. *)

val rate_bps : t -> float
(** The configured base rate (not the schedule-adjusted current rate). *)

val current_rate_bps : t -> float
(** The rate in force at the simulator's current time. *)

val delay : t -> Time_ns.t
val name : t -> string
val qdisc : t -> Queue_disc.t

val delivered_bytes : t -> int
(** Total wire bytes whose transmission completed. *)

val delivered_packets : t -> int

val utilization : t -> over:Time_ns.t -> float
(** [utilization t ~over] is delivered bits divided by base-rate capacity
    over a duration, in \[0, 1\] (can slightly exceed 1 transiently due to
    a packet in flight at the horizon). *)
