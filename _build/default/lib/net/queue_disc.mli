(** Queue disciplines for link egress buffers.

    Two disciplines cover the paper's experiments and the datacenter
    extension: byte-bounded drop-tail (with an optional ECN marking
    threshold, as DCTCP assumes), and RED for the ablation studies. *)

type t

type config =
  | Droptail of { capacity_bytes : int; ecn_threshold_bytes : int option }
      (** Drop arrivals once [capacity_bytes] are queued; if a threshold is
          given, mark ECN-capable packets when the instantaneous queue
          exceeds it. *)
  | Red of {
      capacity_bytes : int;
      min_threshold_bytes : int;
      max_threshold_bytes : int;
      max_mark_probability : float;
      ecn : bool;  (** mark instead of dropping when the packet allows it *)
    }

type verdict = Enqueued | Dropped

val create : config -> rng:Ccp_util.Rng.t -> t

val enqueue : t -> Packet.t -> verdict
(** May set the packet's [ecn_marked] flag as a side effect. *)

val dequeue : t -> Packet.t option
val peek : t -> Packet.t option

val backlog_bytes : t -> int
val backlog_packets : t -> int

(** {1 Counters} *)

val enqueued_packets : t -> int
val dropped_packets : t -> int
val marked_packets : t -> int
val dequeued_bytes : t -> int
