(** Topology builders.

    The paper's evaluation runs on a dumbbell: senders share one bottleneck
    link toward the receivers, and acknowledgments return on an uncongested
    reverse path. Propagation delay is split evenly between the two
    directions so the base (unloaded) RTT is [base_rtt]. *)

open Ccp_util
open Ccp_eventsim

module Dumbbell : sig
  type t

  val create :
    sim:Sim.t ->
    rate_bps:float ->
    base_rtt:Time_ns.t ->
    buffer_bytes:int ->
    ?ecn_threshold_bytes:int ->
    ?qdisc:Queue_disc.config ->
    ?reverse_rate_bps:float ->
    ?jitter:Ccp_util.Time_ns.t ->
    ?rate_schedule:(Ccp_util.Time_ns.t * float) list ->
    unit ->
    t
  (** Bottleneck with a drop-tail buffer of [buffer_bytes] (override the
      discipline with [qdisc]). The reverse path defaults to 10x the
      forward rate with a deep buffer so ACKs never queue. [jitter] and
      [rate_schedule] apply to the forward (bottleneck) link, see
      {!Link.create}. *)

  val forward : t -> Link.t
  val reverse : t -> Link.t

  val bdp_bytes : t -> int
  (** Bandwidth-delay product of the forward path, in bytes. *)

  val register :
    t -> flow:Packet.flow_id -> data_sink:(Packet.t -> unit) -> ack_sink:(Packet.t -> unit) -> unit
  (** Attach a flow: data packets arriving at the right-hand side go to
      [data_sink] (the flow's receiver); ACKs arriving back on the left go
      to [ack_sink] (the flow's sender). *)

  val send_data : t -> Packet.t -> unit
  (** Sender-side entry onto the forward link. *)

  val send_ack : t -> Packet.t -> unit
  (** Receiver-side entry onto the reverse link. *)
end
