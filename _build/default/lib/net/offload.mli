(** Host CPU and NIC-offload model (Figure 5 substrate).

    The paper's Figure 5 measures throughput on a 10 Gbit/s link with NIC
    offloads (TSO/GSO on the sender, GRO on the receiver) enabled and
    disabled; with offloads off the CPU, not the NIC, bounds throughput.
    We reproduce the mechanism rather than the hardware: each direction of
    a host's stack is a serial CPU server with a fixed per-operation cost
    plus a small per-segment cost, and offloads change how many segments
    one operation covers.

    - Sender with TSO: segments submitted while the CPU is busy coalesce
      into super-segments of up to [tso_max_bytes]; one CPU operation per
      super-segment. Without TSO: one operation per MTU segment.
    - Receiver with GRO: segments of the same flow that queue up while the
      CPU is busy are processed (and acknowledged) as one batch of up to
      [gro_max_segments]; larger arrival bursts therefore cost fewer
      operations per packet, which is exactly the effect the paper credits
      for CCP's higher throughput when sender TSO is off. Without GRO: one
      operation per segment.

    Both paths report accumulated busy time so experiments can report CPU
    utilization. *)

open Ccp_util
open Ccp_eventsim

(** {1 Sender path} *)

module Sender_path : sig
  type config = {
    tso : bool;
    tso_max_bytes : int;  (** super-segment limit, typically 65536 *)
    per_op : Time_ns.t;  (** fixed stack-traversal cost per operation *)
    per_segment : Time_ns.t;  (** marginal cost per MTU segment in an operation *)
    ack_cost : Time_ns.t;
        (** CPU cost of processing one incoming ACK — reception plus the
            per-ACK congestion-control work. The paper's §2.3 point that
            batching "returns saved CPU cycles" shows up here: a native
            controller runs its full update on every ACK while the CCP
            datapath only executes a fold step. *)
  }

  val default_config : config
  (** TSO on; costs calibrated so a 10 Gbit/s stream is comfortably
      CPU-feasible with TSO and CPU-bound without it. *)

  type t

  val create :
    sim:Sim.t -> config:config -> out:(Packet.t -> unit) ->
    ?ack_out:(Packet.t -> unit) -> unit -> t

  val send : t -> Packet.t -> unit
  (** Submit a segment to the stack; it reaches [out] once the CPU has
      processed its (super-)segment. Order is preserved. *)

  val receive_ack : t -> Packet.t -> unit
  (** Charge the host CPU for an incoming ACK, then deliver it to
      [ack_out]. Segments and ACKs share the same serial CPU. *)

  val busy_time : t -> Time_ns.t
  val operations : t -> int
  val segments : t -> int
  val acks_processed : t -> int
end

(** {1 Receiver path} *)

module Receiver_path : sig
  type config = {
    gro : bool;
    gro_max_segments : int;
    per_op : Time_ns.t;
    per_segment : Time_ns.t;
  }

  val default_config : config

  type t

  val create : sim:Sim.t -> config:config -> deliver:(Packet.t list -> unit) -> t
  (** [deliver] receives each processed batch; with GRO a batch may hold
      several same-flow segments, without GRO it holds exactly one. *)

  val receive : t -> Packet.t -> unit

  val busy_time : t -> Time_ns.t
  val operations : t -> int
  val segments : t -> int

  val mean_batch : t -> float
  (** Average coalesced batch size (the GRO efficiency measure). *)
end
