(** Time-series collection for experiments.

    A trace holds named series of (simulation time, value) points. Series
    are either pushed explicitly (e.g., cwnd on every update) or sampled
    periodically by a registered probe (e.g., queue depth every 10 ms). *)

open Ccp_util
open Ccp_eventsim

type t

val create : Sim.t -> t

val add : t -> series:string -> float -> unit
(** Record a point on [series] at the current simulation time. *)

val sample_every :
  t -> series:string -> every:Time_ns.t -> ?until:Time_ns.t -> (unit -> float) -> unit
(** Register a periodic probe. Sampling starts one period in and stops at
    [until] if given (otherwise it runs as long as the simulation does). *)

val series : t -> string -> (Time_ns.t * float) list
(** Points of a series in chronological order; empty if unknown. *)

val series_names : t -> string list

val to_csv : t -> name:string -> string
(** One series as "time_s,value" CSV lines with a header. *)

val downsample : (Time_ns.t * float) list -> max_points:int -> (Time_ns.t * float) list
(** Thin a series for display, keeping first and last points. *)
