lib/core/experiment.mli: Ccp_agent Ccp_datapath Ccp_ext Ccp_ipc Ccp_net Ccp_util Congestion_iface Offload Tcp_flow Time_ns Trace
