lib/core/sweep.mli: Ccp_agent Ccp_datapath Ccp_util Time_ns
