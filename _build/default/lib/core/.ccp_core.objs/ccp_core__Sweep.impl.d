lib/core/sweep.ml: Buffer Ccp_util Experiment Float List Printf String Time_ns
