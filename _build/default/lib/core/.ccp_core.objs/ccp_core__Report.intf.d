lib/core/report.mli: Experiment Scenarios
