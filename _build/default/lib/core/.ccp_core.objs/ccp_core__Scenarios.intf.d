lib/core/scenarios.mli: Ccp_ipc Ccp_util Experiment Stats Time_ns
