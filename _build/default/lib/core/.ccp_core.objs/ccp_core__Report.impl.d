lib/core/report.ml: Array Buffer Ccp_algorithms Ccp_ipc Ccp_net Ccp_util Experiment Float List Printf Scenarios Stats Time_ns Trace
