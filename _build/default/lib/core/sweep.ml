open Ccp_util

type point = {
  rate_bps : float;
  base_rtt : Time_ns.t;
  buffer_bdps : float;
}

let grid ~rates_bps ~rtts ~buffer_bdps =
  List.concat_map
    (fun rate_bps ->
      List.concat_map
        (fun base_rtt ->
          List.map (fun buffer_bdps -> { rate_bps; base_rtt; buffer_bdps }) buffer_bdps)
        rtts)
    rates_bps

let default_grid =
  grid
    ~rates_bps:[ 10e6; 50e6; 100e6 ]
    ~rtts:[ Time_ns.ms 10; Time_ns.ms 40 ]
    ~buffer_bdps:[ 0.5; 1.0; 2.0 ]

type outcome = {
  point : point;
  native_utilization : float;
  ccp_utilization : float;
  native_median_rtt : Time_ns.t;
  ccp_median_rtt : Time_ns.t;
}

let divergence o = Float.abs (o.native_utilization -. o.ccp_utilization)

let run ?(duration = Time_ns.sec 10) ?(seed = 42) ~native ~ccp points =
  List.map
    (fun point ->
      let bdp = point.rate_bps *. Time_ns.to_float_sec point.base_rtt /. 8.0 in
      let run_one cc =
        let base =
          Experiment.default_config ~rate_bps:point.rate_bps ~base_rtt:point.base_rtt
            ~duration
        in
        Experiment.run
          {
            base with
            Experiment.seed;
            warmup = Time_ns.scale duration 0.2;
            buffer_bytes = max 3000 (int_of_float (point.buffer_bdps *. bdp));
            flows = [ Experiment.flow cc ];
          }
      in
      let native_result = run_one (Experiment.Native_cc native) in
      let ccp_result = run_one (Experiment.Ccp_cc ccp) in
      {
        point;
        native_utilization = native_result.Experiment.utilization;
        ccp_utilization = ccp_result.Experiment.utilization;
        native_median_rtt = native_result.Experiment.median_rtt;
        ccp_median_rtt = ccp_result.Experiment.median_rtt;
      })
    points

let worst outcomes =
  match outcomes with
  | [] -> invalid_arg "Sweep.worst: empty"
  | first :: rest ->
    List.fold_left (fun acc o -> if divergence o > divergence acc then o else acc) first rest

let render outcomes =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "%-10s %-8s %-7s | %-11s %-11s | %-12s %-12s | %s\n" "rate" "rtt" "buffer"
       "util native" "util ccp" "rtt native" "rtt ccp" "delta");
  Buffer.add_string buf (String.make 100 '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "%7.0f Mb %-8s %4.1fBDP | %10.1f%% %10.1f%% | %-12s %-12s | %.3f\n"
           (o.point.rate_bps /. 1e6)
           (Time_ns.to_string o.point.base_rtt)
           o.point.buffer_bdps
           (100.0 *. o.native_utilization)
           (100.0 *. o.ccp_utilization)
           (Time_ns.to_string o.native_median_rtt)
           (Time_ns.to_string o.ccp_median_rtt)
           (divergence o)))
    outcomes;
  let w = worst outcomes in
  Buffer.add_string buf
    (Printf.sprintf
       "\nworst utilization divergence: %.3f (at %.0f Mbit/s, %s, %.1f BDP)\n"
       (divergence w) (w.point.rate_bps /. 1e6)
       (Time_ns.to_string w.point.base_rtt)
       w.point.buffer_bdps);
  Buffer.contents buf
