(** Parameter sweeps: the "write once, run everywhere" claim checked
    across operating points rather than at the evaluation's single one.

    For every (rate, RTT, buffer) grid point, the same algorithm runs
    twice — natively in the datapath and off-datapath through CCP — and
    the sweep reports both, plus the worst divergence over the whole
    grid. The paper's architecture predicts the divergence stays small
    everywhere the IPC latency is small against the path RTT. *)

open Ccp_util

type point = {
  rate_bps : float;
  base_rtt : Time_ns.t;
  buffer_bdps : float;  (** bottleneck buffer, in bandwidth-delay products *)
}

val grid :
  rates_bps:float list -> rtts:Time_ns.t list -> buffer_bdps:float list -> point list
(** Cartesian product, in deterministic order. *)

val default_grid : point list
(** 10/50/100 Mbit/s x 10/40 ms x 0.5/1/2 BDP — 18 points. *)

type outcome = {
  point : point;
  native_utilization : float;
  ccp_utilization : float;
  native_median_rtt : Time_ns.t;
  ccp_median_rtt : Time_ns.t;
}

val divergence : outcome -> float
(** |native - ccp| utilization at this point. *)

val run :
  ?duration:Time_ns.t ->
  ?seed:int ->
  native:(unit -> Ccp_datapath.Congestion_iface.t) ->
  ccp:Ccp_agent.Algorithm.t ->
  point list ->
  outcome list
(** One native and one CCP run per point; default duration 10 s with 20%
    warmup. *)

val worst : outcome list -> outcome
(** The point with the largest utilization divergence. Raises
    [Invalid_argument] on an empty list. *)

val render : outcome list -> string
(** Aligned text table plus the worst-divergence summary line. *)
