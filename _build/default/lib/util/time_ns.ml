type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000

let of_float_sec s = int_of_float (Float.round (s *. 1e9))
let to_float_sec t = float_of_int t /. 1e9
let to_float_us t = float_of_int t /. 1e3
let to_float_ms t = float_of_int t /. 1e6

let add = ( + )
let sub = ( - )
let diff a b = abs (a - b)
let scale t f = int_of_float (Float.round (float_of_int t *. f))
let min = Stdlib.min
let max = Stdlib.max
let compare = Int.compare
let equal = Int.equal
let is_positive t = t > 0

let pp fmt t =
  let a = abs t in
  if a < 1_000 then Format.fprintf fmt "%dns" t
  else if a < 1_000_000 then Format.fprintf fmt "%.2fus" (to_float_us t)
  else if a < 1_000_000_000 then Format.fprintf fmt "%.2fms" (to_float_ms t)
  else Format.fprintf fmt "%.3fs" (to_float_sec t)

let to_string t = Format.asprintf "%a" pp t

let bytes_time ~bytes ~rate_bps =
  of_float_sec (float_of_int (bytes * 8) /. rate_bps)
