lib/util/rng.mli:
