lib/util/heap.mli:
