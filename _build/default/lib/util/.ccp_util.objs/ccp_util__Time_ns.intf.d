lib/util/time_ns.mli: Format
