lib/util/stats.mli: Time_ns
