lib/util/stats.ml: Array Float List Option Time_ns
