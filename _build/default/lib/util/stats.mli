(** Statistics containers used throughout the reproduction.

    Running summaries, exact percentiles over collected samples, CDF
    extraction (Figure 2), exponentially weighted moving averages (the
    prototype datapath's EWMA-filtered rates, §3), and windowed min/max
    trackers (BBR's min-RTT / max-bandwidth filters). *)

(** {1 Running summary} *)

module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val sum : t -> float
end

(** {1 Sample sets with exact percentiles} *)

module Samples : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val percentile : t -> float -> float
  (** [percentile t p] for [p] in \[0,100\]; linear interpolation between
      order statistics. Raises [Invalid_argument] on an empty set. *)

  val median : t -> float
  val mean : t -> float

  val cdf : t -> points:int -> (float * float) list
  (** [cdf t ~points] returns [(value, cumulative_fraction)] pairs at
      [points] evenly spaced fractions, suitable for plotting a CDF. *)

  val to_array : t -> float array
  (** Sorted copy of the samples. *)
end

(** {1 EWMA} *)

module Ewma : sig
  type t

  val create : alpha:float -> t
  (** [alpha] is the weight of each new observation, in (0, 1]. *)

  val add : t -> float -> unit
  val value : t -> float
  (** Current estimate; 0.0 before the first observation. *)

  val value_opt : t -> float option
end

(** {1 Windowed extrema} *)

module Windowed_min : sig
  type t

  val create : window:Time_ns.t -> t
  val add : t -> now:Time_ns.t -> float -> unit
  val get : t -> now:Time_ns.t -> float option
  (** Minimum over samples younger than [window]; [None] if all expired. *)
end

module Windowed_max : sig
  type t

  val create : window:Time_ns.t -> t
  val add : t -> now:Time_ns.t -> float -> unit
  val get : t -> now:Time_ns.t -> float option
end

(** {1 Misc} *)

val jain_fairness : float array -> float
(** Jain's fairness index: [(Σx)² / (n·Σx²)]; 1.0 is perfectly fair.
    Returns 1.0 for an empty array. *)
