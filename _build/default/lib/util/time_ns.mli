(** Simulation time as integer nanoseconds.

    All simulation clocks, delays, and intervals use this type. Using a
    63-bit integer count of nanoseconds keeps arithmetic exact and
    deterministic (no floating-point drift in event ordering) while covering
    ~292 years of simulated time. *)

type t = int
(** Nanoseconds. Always non-negative in simulation contexts. *)

val zero : t
val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : int -> t

val of_float_sec : float -> t
(** [of_float_sec s] rounds [s] seconds to the nearest nanosecond. *)

val to_float_sec : t -> float
val to_float_us : t -> float
val to_float_ms : t -> float

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] is [a - b]; may be negative for interval arithmetic. *)

val diff : t -> t -> t
(** [diff a b] is [abs (a - b)]. *)

val scale : t -> float -> t
(** [scale t f] multiplies a duration by a float factor, rounding. *)

val min : t -> t -> t
val max : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool

val is_positive : t -> bool

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/µs/ms/s). *)

val to_string : t -> string

val bytes_time : bytes:int -> rate_bps:float -> t
(** [bytes_time ~bytes ~rate_bps] is the serialization time of [bytes] bytes
    on a link of [rate_bps] bits per second. *)
