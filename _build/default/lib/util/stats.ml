module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable sum : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; sum = 0.0 }

  (* Welford's online algorithm keeps the variance numerically stable. *)
  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    t.sum <- t.sum +. x

  let count t = t.count
  let mean t = t.mean
  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
  let sum t = t.sum
end

module Samples = struct
  type t = {
    mutable data : float array;
    mutable len : int;
    mutable sorted : bool;
  }

  let create () = { data = Array.make 64 0.0; len = 0; sorted = true }

  let add t x =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) 0.0 in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1;
    t.sorted <- false

  let count t = t.len

  let ensure_sorted t =
    if not t.sorted then begin
      let slice = Array.sub t.data 0 t.len in
      Array.sort Float.compare slice;
      Array.blit slice 0 t.data 0 t.len;
      t.sorted <- true
    end

  let percentile t p =
    if t.len = 0 then invalid_arg "Stats.Samples.percentile: empty";
    if p < 0.0 || p > 100.0 then invalid_arg "Stats.Samples.percentile: p out of range";
    ensure_sorted t;
    let rank = p /. 100.0 *. float_of_int (t.len - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then t.data.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      t.data.(lo) +. (frac *. (t.data.(hi) -. t.data.(lo)))
    end

  let median t = percentile t 50.0

  let mean t =
    if t.len = 0 then invalid_arg "Stats.Samples.mean: empty";
    let s = ref 0.0 in
    for i = 0 to t.len - 1 do
      s := !s +. t.data.(i)
    done;
    !s /. float_of_int t.len

  let cdf t ~points =
    if points <= 0 then invalid_arg "Stats.Samples.cdf: points must be positive";
    List.init points (fun i ->
        let frac = float_of_int (i + 1) /. float_of_int points in
        (percentile t (frac *. 100.0), frac))

  let to_array t =
    ensure_sorted t;
    Array.sub t.data 0 t.len
end

module Ewma = struct
  type t = { alpha : float; mutable value : float option }

  let create ~alpha =
    if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Stats.Ewma.create: alpha in (0,1]";
    { alpha; value = None }

  let add t x =
    match t.value with
    | None -> t.value <- Some x
    | Some v -> t.value <- Some (v +. (t.alpha *. (x -. v)))

  let value t = Option.value t.value ~default:0.0
  let value_opt t = t.value
end

(* Windowed extrema use a monotonic deque of (time, value): entries the new
   sample dominates are evicted from the back, expired entries from the
   front, so the front is always the current extremum. *)
module Windowed_min = struct
  type entry = { at : Time_ns.t; v : float }
  type t = { window : Time_ns.t; mutable entries : entry list }

  let create ~window = { window; entries = [] }

  let add t ~now v =
    let rec trim = function
      | e :: rest when v <= e.v -> trim rest
      | keep -> keep
    in
    let rev = trim (List.rev t.entries) in
    t.entries <- List.rev ({ at = now; v } :: rev)

  let get t ~now =
    let cutoff = Time_ns.sub now t.window in
    let rec drop = function
      | e :: rest when Time_ns.compare e.at cutoff < 0 -> drop rest
      | keep -> keep
    in
    t.entries <- drop t.entries;
    match t.entries with [] -> None | e :: _ -> Some e.v
end

module Windowed_max = struct
  type entry = { at : Time_ns.t; v : float }
  type t = { window : Time_ns.t; mutable entries : entry list }

  let create ~window = { window; entries = [] }

  let add t ~now v =
    let rec trim = function
      | e :: rest when v >= e.v -> trim rest
      | keep -> keep
    in
    let rev = trim (List.rev t.entries) in
    t.entries <- List.rev ({ at = now; v } :: rev)

  let get t ~now =
    let cutoff = Time_ns.sub now t.window in
    let rec drop = function
      | e :: rest when Time_ns.compare e.at cutoff < 0 -> drop rest
      | keep -> keep
    in
    t.entries <- drop t.entries;
    match t.entries with [] -> None | e :: _ -> Some e.v
end

let jain_fairness xs =
  let n = Array.length xs in
  if n = 0 then 1.0
  else begin
    let sum = Array.fold_left ( +. ) 0.0 xs in
    let sumsq = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
    if sumsq = 0.0 then 1.0 else sum *. sum /. (float_of_int n *. sumsq)
  end
