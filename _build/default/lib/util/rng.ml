type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: expands a seed into well-distributed initial state, per
   Steele et al.; standard seeding procedure for xoshiro generators. *)
let splitmix64 state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** core step. *)
let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) land max_int in
  create ~seed

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Int64.to_int keeps the low 63 bits as a signed value, so a 63-bit
     logical shift can still come out negative; mask to OCaml's positive
     int range before reducing. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 1) land max_int in
  r mod bound

let float_unit t =
  (* 53 high bits -> [0,1) double, the conventional conversion. *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t bound = float_unit t *. bound
let bool t = Int64.logand (bits64 t) 1L = 1L
let uniform t ~lo ~hi = lo +. (float_unit t *. (hi -. lo))

let exponential t ~mean =
  let u = 1.0 -. float_unit t in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = 1.0 -. float_unit t and u2 = float_unit t in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mu +. (sigma *. z)

let lognormal t ~mu ~sigma = exp (gaussian t ~mu ~sigma)

let pareto t ~shape ~scale =
  if shape <= 0.0 then invalid_arg "Rng.pareto: shape must be positive";
  let u = 1.0 -. float_unit t in
  scale /. (u ** (1.0 /. shape))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
