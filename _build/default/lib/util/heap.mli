(** A polymorphic binary min-heap.

    The event queue of the discrete-event simulator sits on this structure,
    so stability matters: entries are ordered first by the client's key and,
    for equal keys, by insertion order. *)

type 'a t

val create : compare:('a -> 'a -> int) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. Ties are broken by insertion
    order (FIFO among equal keys). *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** All elements in unspecified order (for inspection/tests). *)
