type 'a entry = { value : 'a; seq : int }

type 'a t = {
  compare : 'a -> 'a -> int;
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create ~compare = { compare; data = [||]; len = 0; next_seq = 0 }

let length t = t.len
let is_empty t = t.len = 0

let entry_compare t a b =
  let c = t.compare a.value b.value in
  if c <> 0 then c else Int.compare a.seq b.seq

(* [grow t fill] ensures room for one more entry; [fill] seeds fresh cells
   so no dummy value is ever fabricated. *)
let grow t fill =
  let cap = Array.length t.data in
  if t.len = cap then
    if cap = 0 then t.data <- Array.make 16 fill
    else begin
      let bigger = Array.make (2 * cap) fill in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_compare t t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.len && entry_compare t t.data.(left) t.data.(!smallest) < 0 then smallest := left;
  if right < t.len && entry_compare t t.data.(right) t.data.(!smallest) < 0 then smallest := right;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t value =
  let entry = { value; seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek t = if t.len = 0 then None else Some t.data.(0).value

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0).value in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    Some top
  end

let clear t =
  t.len <- 0;
  t.data <- [||]

let to_list t =
  let rec collect i acc = if i < 0 then acc else collect (i - 1) (t.data.(i).value :: acc) in
  collect (t.len - 1) []
