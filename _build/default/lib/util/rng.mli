(** Deterministic pseudo-random number generation.

    A self-contained xoshiro256** generator seeded via splitmix64, so that
    every simulation is bit-reproducible for a given seed and independent
    of the OCaml stdlib [Random] state. Includes the samplers the
    reproduction needs: uniform, exponential, log-normal and Pareto. *)

type t

val create : seed:int -> t
(** Create a generator from a 63-bit seed. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator; advances [t]. *)

val copy : t -> t

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val bool : t -> bool

val uniform : t -> lo:float -> hi:float -> float

val exponential : t -> mean:float -> float
(** Exponential with the given mean (= 1/lambda). *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box–Muller normal sample. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** exp of a normal(mu, sigma) sample; used by IPC latency models. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto(shape, scale): heavy-tailed sizes; requires shape > 0. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
