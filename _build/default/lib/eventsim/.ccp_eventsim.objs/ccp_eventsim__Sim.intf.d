lib/eventsim/sim.mli: Ccp_util Rng Time_ns
