lib/eventsim/sim.ml: Ccp_util Heap Printf Rng Time_ns
