(** Discrete-event simulation engine.

    A simulator owns a virtual clock and an ordered event queue. Events
    scheduled for the same instant fire in FIFO order, which makes runs
    deterministic. Every network element, datapath, IPC channel and agent
    in this reproduction advances exclusively through this engine. *)

open Ccp_util

type t

type timer
(** Handle to a scheduled event; may be cancelled before it fires. *)

val create : ?seed:int -> unit -> t
(** Fresh simulator with clock at zero. [seed] (default 42) initialises the
    simulation-wide RNG from which components derive their own streams. *)

val now : t -> Time_ns.t

val rng : t -> Rng.t
(** The root RNG. Components that need independent streams should
    [Rng.split] it at construction time. *)

val schedule : t -> at:Time_ns.t -> (unit -> unit) -> timer
(** Schedule a callback at absolute time [at]. Raises [Invalid_argument] if
    [at] is in the past. *)

val schedule_after : t -> delay:Time_ns.t -> (unit -> unit) -> timer
(** Schedule a callback [delay] after the current time (negative delays are
    clamped to "now"). *)

val cancel : timer -> unit
(** Cancel a pending event; cancelling a fired or already-cancelled event is
    a no-op. *)

val is_pending : timer -> bool

val pending_events : t -> int

val run : ?until:Time_ns.t -> ?max_events:int -> t -> unit
(** Drain the event queue. Stops when the queue is empty, when the clock
    would pass [until] (events at exactly [until] do fire), or after
    [max_events] events as a runaway guard. *)

val step : t -> bool
(** Fire the single next event. Returns [false] if the queue was empty. *)
