open Ccp_util

type timer = { at : Time_ns.t; callback : unit -> unit; mutable cancelled : bool; mutable fired : bool }

type t = {
  mutable clock : Time_ns.t;
  queue : timer Heap.t;
  root_rng : Rng.t;
}

let timer_compare a b = Time_ns.compare a.at b.at

let create ?(seed = 42) () =
  { clock = Time_ns.zero; queue = Heap.create ~compare:timer_compare; root_rng = Rng.create ~seed }

let now t = t.clock
let rng t = t.root_rng

let schedule t ~at callback =
  if Time_ns.compare at t.clock < 0 then
    invalid_arg
      (Printf.sprintf "Sim.schedule: time %s is before now %s" (Time_ns.to_string at)
         (Time_ns.to_string t.clock));
  let timer = { at; callback; cancelled = false; fired = false } in
  Heap.push t.queue timer;
  timer

let schedule_after t ~delay callback =
  let delay = Time_ns.max delay Time_ns.zero in
  schedule t ~at:(Time_ns.add t.clock delay) callback

let cancel timer = timer.cancelled <- true
let is_pending timer = (not timer.cancelled) && not timer.fired

let pending_events t = Heap.length t.queue

let fire t timer =
  t.clock <- timer.at;
  timer.fired <- true;
  timer.callback ()

let step t =
  let rec next () =
    match Heap.pop t.queue with
    | None -> false
    | Some timer when timer.cancelled -> next ()
    | Some timer ->
      fire t timer;
      true
  in
  next ()

let run ?until ?(max_events = max_int) t =
  let fired = ref 0 in
  let continue = ref true in
  while !continue && !fired < max_events do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some timer when timer.cancelled -> ignore (Heap.pop t.queue)
    | Some timer ->
      (match until with
      | Some limit when Time_ns.compare timer.at limit > 0 ->
        t.clock <- limit;
        continue := false
      | _ ->
        ignore (Heap.pop t.queue);
        fire t timer;
        incr fired)
  done
