open Ccp_lang.Ast

type t = {
  max_rate_bps : float option;
  max_cwnd_bytes : int option;
  min_cwnd_bytes : int option;
}

let unrestricted = { max_rate_bps = None; max_cwnd_bytes = None; min_cwnd_bytes = None }
let with_max_rate cap = { unrestricted with max_rate_bps = Some cap }
let with_max_cwnd cap = { unrestricted with max_cwnd_bytes = Some cap }

let clamp_rate t rate =
  match t.max_rate_bps with Some cap -> Float.min cap rate | None -> rate

let clamp_cwnd t cwnd =
  let cwnd = match t.max_cwnd_bytes with Some cap -> min cap cwnd | None -> cwnd in
  match t.min_cwnd_bytes with Some floor -> max floor cwnd | None -> cwnd

let cap_expr cap e = Call ("min", [ e; Const cap ])
let floor_expr floor e = Call ("max", [ e; Const floor ])

let rewrite_prim t = function
  | Rate e ->
    let e = match t.max_rate_bps with Some cap -> cap_expr cap e | None -> e in
    Rate e
  | Cwnd e ->
    let e =
      match t.max_cwnd_bytes with Some cap -> cap_expr (float_of_int cap) e | None -> e
    in
    let e =
      match t.min_cwnd_bytes with Some f -> floor_expr (float_of_int f) e | None -> e
    in
    Cwnd e
  | (Measure _ | Wait _ | Wait_rtts _ | Report) as prim -> prim

let apply_program t program =
  if t.max_rate_bps = None && t.max_cwnd_bytes = None && t.min_cwnd_bytes = None then program
  else { program with prims = List.map (rewrite_prim t) program.prims }
