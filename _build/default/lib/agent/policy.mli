(** Agent-side policy enforcement (§2: "the agent ... imposes policies on
    the decisions of the congestion control algorithms, e.g.,
    per-connection maximum transmission rates").

    Direct commands are clamped; installed programs are rewritten so that
    every [Rate(e)] becomes [Rate(min(e, cap))] and every [Cwnd(e)]
    becomes [Cwnd(min(e, cap))] — the policy travels with the program and
    holds between agent decisions. *)

type t = {
  max_rate_bps : float option;  (** cap on the pacing rate, bytes/second *)
  max_cwnd_bytes : int option;
  min_cwnd_bytes : int option;  (** floor, e.g. one MSS *)
}

val unrestricted : t
val with_max_rate : float -> t
val with_max_cwnd : int -> t

val clamp_rate : t -> float -> float
val clamp_cwnd : t -> int -> int

val apply_program : t -> Ccp_lang.Ast.program -> Ccp_lang.Ast.program
(** Rewrite [Rate]/[Cwnd] primitives to respect the caps; identity for
    {!unrestricted}. *)
