lib/agent/policy.ml: Ccp_lang Float List
