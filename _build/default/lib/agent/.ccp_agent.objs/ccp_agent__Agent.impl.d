lib/agent/agent.ml: Algorithm Ccp_eventsim Ccp_ipc Ccp_lang Ccp_util Channel Format Hashtbl Logs Message Option Policy Printexc Sim Time_ns
