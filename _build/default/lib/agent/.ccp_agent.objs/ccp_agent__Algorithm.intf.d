lib/agent/algorithm.mli: Ccp_ipc Ccp_lang Message
