lib/agent/agent.mli: Algorithm Ccp_eventsim Ccp_ipc Channel Policy Sim
