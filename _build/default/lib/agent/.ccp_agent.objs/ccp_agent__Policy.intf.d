lib/agent/policy.mli: Ccp_lang
