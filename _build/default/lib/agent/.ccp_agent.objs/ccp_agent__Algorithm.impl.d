lib/agent/algorithm.ml: Array Ccp_ipc Ccp_lang Message
