(** Receive-side transport state machine.

    Reassembles the byte stream, generates cumulative ACKs (one per
    delivered segment, or one per GRO batch when segments arrive
    coalesced), echoes the triggering segment's transmit timestamp for
    exact RTT sampling, and echoes ECN marks. Out-of-order segments are
    buffered as merged intervals so the cumulative ACK advances as soon as
    a hole fills — duplicate ACKs fall out naturally. *)

open Ccp_net

type t

val create :
  flow:Packet.flow_id ->
  send_ack:(Packet.t -> unit) ->
  ?delayed_ack_every:int ->
  unit ->
  t
(** [delayed_ack_every] n acknowledges every n-th in-order segment (1 =
    ACK every segment, the default; 2 approximates Linux's delayed ACKs —
    out-of-order arrivals and ECN marks force an immediate ACK). *)

val on_data : t -> Packet.t -> unit
(** Process one data segment, possibly emitting an ACK. Non-data packets
    are rejected with [Invalid_argument]. *)

val on_batch : t -> Packet.t list -> unit
(** Process a GRO batch: stream state is updated for every segment but at
    most one ACK is emitted, with [acked_segments] set to the batch size —
    the receive-offload behaviour Figure 5 leans on. *)

val expected_seq : t -> int
(** Next in-order byte the receiver is waiting for. *)

val delivered_bytes : t -> int
(** In-order bytes received so far (the throughput numerator). *)

val out_of_order_bytes : t -> int
val acks_sent : t -> int
val segments_received : t -> int
