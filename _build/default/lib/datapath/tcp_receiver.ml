open Ccp_net

type t = {
  flow : Packet.flow_id;
  send_ack : Packet.t -> unit;
  delayed_ack_every : int;
  mutable expected : int;  (* next in-order byte awaited *)
  mutable ooo : (int * int) list;  (* disjoint sorted [start, stop) intervals above expected *)
  mutable unacked_segments : int;  (* in-order segments since the last ACK *)
  mutable acks_sent : int;
  mutable segments_received : int;
}

let create ~flow ~send_ack ?(delayed_ack_every = 1) () =
  if delayed_ack_every < 1 then invalid_arg "Tcp_receiver: delayed_ack_every must be >= 1";
  {
    flow;
    send_ack;
    delayed_ack_every;
    expected = 0;
    ooo = [];
    unacked_segments = 0;
    acks_sent = 0;
    segments_received = 0;
  }

(* Insert [start, stop) into the sorted disjoint interval list, merging
   overlapping and adjacent intervals. *)
let rec insert_interval intervals (start, stop) =
  match intervals with
  | [] -> [ (start, stop) ]
  | (s, e) :: rest ->
    if stop < s then (start, stop) :: intervals
    else if start > e then (s, e) :: insert_interval rest (start, stop)
    else insert_interval rest (min s start, max e stop)

(* Advance [expected] through any interval that now touches it. *)
let advance t =
  match t.ooo with
  | (s, e) :: rest when s <= t.expected ->
    if e > t.expected then t.expected <- e;
    t.ooo <- rest
  | _ -> ()

let emit_ack t ~(trigger : Packet.data) ~ecn_echo ~acked_segments ~newly_sacked =
  t.acks_sent <- t.acks_sent + 1;
  t.unacked_segments <- 0;
  t.send_ack
    (Packet.ack ~flow:t.flow ~cum_ack:t.expected ~echo_sent_at:trigger.Packet.sent_at ~ecn_echo
       ~acked_segments ~newly_sacked ~recv_bytes:t.expected ())

(* Returns [`In_order] if the segment advanced the stream, [`Sacked range]
   if it was buffered out of order, [`Duplicate] otherwise. *)
let ingest t (pkt : Packet.t) =
  match pkt.payload with
  | Ack _ -> invalid_arg "Tcp_receiver: got an ACK"
  | Data d ->
    t.segments_received <- t.segments_received + 1;
    let stop = Packet.seq_end d in
    if stop <= t.expected then `Duplicate
    else if d.seq <= t.expected then begin
      t.expected <- stop;
      advance t;
      `In_order
    end
    else begin
      t.ooo <- insert_interval t.ooo (d.seq, stop);
      `Sacked (d.seq, stop)
    end

let on_data t pkt =
  match pkt.Packet.payload with
  | Ack _ -> invalid_arg "Tcp_receiver.on_data: got an ACK"
  | Data d -> (
    let ecn_echo = pkt.Packet.ecn_marked in
    match ingest t pkt with
    | `In_order when not ecn_echo ->
      t.unacked_segments <- t.unacked_segments + 1;
      if t.unacked_segments >= t.delayed_ack_every then
        emit_ack t ~trigger:d ~ecn_echo ~acked_segments:t.unacked_segments ~newly_sacked:[]
    | `In_order ->
      emit_ack t ~trigger:d ~ecn_echo ~acked_segments:(t.unacked_segments + 1) ~newly_sacked:[]
    | `Duplicate ->
      (* Spurious retransmission: re-acknowledge immediately. *)
      emit_ack t ~trigger:d ~ecn_echo ~acked_segments:(t.unacked_segments + 1) ~newly_sacked:[]
    | `Sacked range ->
      (* Out-of-order data produces an immediate duplicate ACK carrying
         the newly buffered range. *)
      emit_ack t ~trigger:d ~ecn_echo ~acked_segments:(t.unacked_segments + 1)
        ~newly_sacked:[ range ])

let on_batch t pkts =
  match pkts with
  | [] -> ()
  | _ ->
    let last = List.nth pkts (List.length pkts - 1) in
    (match last.Packet.payload with
    | Ack _ -> invalid_arg "Tcp_receiver.on_batch: got an ACK"
    | Data d ->
      let ecn_echo = List.exists (fun p -> p.Packet.ecn_marked) pkts in
      let sacked = ref [] in
      List.iter
        (fun p ->
          match ingest t p with
          | `Sacked range -> sacked := range :: !sacked
          | `In_order | `Duplicate -> ())
        pkts;
      emit_ack t ~trigger:d ~ecn_echo ~acked_segments:(List.length pkts)
        ~newly_sacked:(List.rev !sacked))

let expected_seq t = t.expected
let delivered_bytes t = t.expected
let out_of_order_bytes t = List.fold_left (fun acc (s, e) -> acc + (e - s)) 0 t.ooo
let acks_sent t = t.acks_sent
let segments_received t = t.segments_received
