(** Token-bucket packet pacing.

    The second control primitive the paper requires of datapaths: enforce
    "a given pacing rate on packet transmissions" (§2.1). Tokens accrue at
    the configured rate up to a burst allowance; a segment may leave when
    the bucket holds its size in tokens. A rate of 0 disables pacing. *)

open Ccp_util

type t

val create : ?burst_bytes:int -> unit -> t
(** [burst_bytes] defaults to 10 standard segments (Linux's fq quantum
    neighbourhood). Pacing starts disabled. *)

val set_rate : t -> now:Time_ns.t -> float -> unit
(** [set_rate t ~now bytes_per_sec]; 0 disables pacing. Accrued tokens are
    settled at the old rate first. *)

val rate : t -> float

val earliest_send : t -> now:Time_ns.t -> bytes:int -> Time_ns.t
(** Earliest time at which a segment of [bytes] may be transmitted. Equals
    [now] when unpaced or when tokens suffice. *)

val note_sent : t -> now:Time_ns.t -> bytes:int -> unit
(** Consume tokens for a transmitted segment (the bucket may go negative,
    encoding serialization debt). *)
