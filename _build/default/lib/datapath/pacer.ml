open Ccp_util

type t = {
  burst_bytes : float;
  mutable rate : float;  (* bytes/second; 0 = unpaced *)
  mutable tokens : float;  (* bytes; may go negative *)
  mutable last_update : Time_ns.t;
}

let create ?(burst_bytes = 15_000) () =
  { burst_bytes = float_of_int burst_bytes; rate = 0.0; tokens = float_of_int burst_bytes;
    last_update = Time_ns.zero }

let settle t ~now =
  if t.rate > 0.0 then begin
    let elapsed = Time_ns.to_float_sec (Time_ns.sub now t.last_update) in
    if elapsed > 0.0 then t.tokens <- Float.min t.burst_bytes (t.tokens +. (elapsed *. t.rate))
  end;
  t.last_update <- now

let set_rate t ~now bytes_per_sec =
  if bytes_per_sec < 0.0 then invalid_arg "Pacer.set_rate: negative rate";
  settle t ~now;
  t.rate <- bytes_per_sec;
  if bytes_per_sec = 0.0 then t.tokens <- t.burst_bytes

let rate t = t.rate

let earliest_send t ~now ~bytes =
  if t.rate <= 0.0 then now
  else begin
    settle t ~now;
    let need = float_of_int bytes -. t.tokens in
    if need <= 0.0 then now
    else Time_ns.add now (Time_ns.of_float_sec (need /. t.rate))
  end

let note_sent t ~now ~bytes =
  if t.rate > 0.0 then begin
    settle t ~now;
    t.tokens <- t.tokens -. float_of_int bytes
  end
