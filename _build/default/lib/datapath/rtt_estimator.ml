open Ccp_util

type t = {
  min_rto : Time_ns.t;
  max_rto : Time_ns.t;
  mutable srtt : Time_ns.t option;
  mutable rttvar : Time_ns.t option;
  mutable latest : Time_ns.t option;
  mutable min_rtt : Time_ns.t option;
  mutable samples : int;
}

let create ?(min_rto = Time_ns.ms 200) ?(max_rto = Time_ns.sec 60) () =
  { min_rto; max_rto; srtt = None; rttvar = None; latest = None; min_rtt = None; samples = 0 }

(* RFC 6298 constants: alpha = 1/8, beta = 1/4. *)
let on_sample t r =
  if Time_ns.is_positive r then begin
    t.latest <- Some r;
    t.samples <- t.samples + 1;
    (match t.min_rtt with
    | None -> t.min_rtt <- Some r
    | Some m -> if Time_ns.compare r m < 0 then t.min_rtt <- Some r);
    match t.srtt with
    | None ->
      t.srtt <- Some r;
      t.rttvar <- Some (Time_ns.scale r 0.5)
    | Some srtt ->
      let rttvar = Option.value t.rttvar ~default:Time_ns.zero in
      let err = Time_ns.diff srtt r in
      let rttvar' = Time_ns.add (Time_ns.scale rttvar 0.75) (Time_ns.scale err 0.25) in
      let srtt' = Time_ns.add (Time_ns.scale srtt 0.875) (Time_ns.scale r 0.125) in
      t.rttvar <- Some rttvar';
      t.srtt <- Some srtt'
  end

let srtt t = t.srtt
let rttvar t = t.rttvar
let latest t = t.latest
let min_rtt t = t.min_rtt
let samples t = t.samples

let rto t =
  match (t.srtt, t.rttvar) with
  | Some srtt, Some rttvar ->
    let raw = Time_ns.add srtt (Time_ns.max (Time_ns.scale rttvar 4.0) (Time_ns.ms 1)) in
    Time_ns.min t.max_rto (Time_ns.max t.min_rto raw)
  | _ -> Time_ns.sec 1
