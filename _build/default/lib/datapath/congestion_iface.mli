(** The pluggable congestion-control interface of the datapath.

    This is our analogue of Linux's "pluggable TCP" API (§4): a congestion
    controller is a record of callbacks invoked synchronously by
    {!Tcp_flow} on connection setup, on every ACK, and on loss events. The
    in-datapath baseline algorithms ([Native_reno], [Native_cubic], ...)
    implement it directly; the CCP shim ({!Ccp_datapath}) implements the
    same interface but forwards summarized measurements to the off-datapath
    agent instead of deciding locally — which is exactly the paper's
    architectural split. *)

open Ccp_util

(** Handle through which a controller reads and programs its flow. *)
type ctl = {
  flow : int;
  mss : int;
  now : unit -> Time_ns.t;
  get_cwnd : unit -> int;  (** bytes *)
  set_cwnd : int -> unit;  (** clamped to at least one MSS *)
  get_rate : unit -> float;  (** pacing rate, bytes/second; 0 when unpaced *)
  set_rate : float -> unit;
  srtt : unit -> Time_ns.t option;
  latest_rtt : unit -> Time_ns.t option;
  min_rtt : unit -> Time_ns.t option;
  inflight : unit -> int;  (** bytes outstanding *)
  send_rate_ewma : unit -> float option;
  delivery_rate_ewma : unit -> float option;
}

(** Per-ACK measurement delivered to [on_ack] (one call per received
    cumulative ACK). *)
type ack_event = {
  now : Time_ns.t;
  bytes_acked : int;  (** bytes newly cumulatively acknowledged *)
  rtt_sample : Time_ns.t option;
  ecn_echo : bool;
  send_rate : float option;  (** instantaneous sample, bytes/second *)
  delivery_rate : float option;
  inflight_after : int;
}

type loss_kind =
  | Dup_acks  (** triple duplicate ACK; fast retransmit fired *)
  | Rto  (** retransmission timeout *)

type loss_event = { kind : loss_kind; at : Time_ns.t; bytes_lost_estimate : int }

type t = {
  name : string;
  on_init : ctl -> unit;
  on_ack : ctl -> ack_event -> unit;
  on_loss : ctl -> loss_event -> unit;
  on_exit_recovery : ctl -> unit;
      (** the ACK covering the recovery point arrived; fast recovery over *)
}

val noop : string -> t
(** A controller that never adjusts anything (fixed initial window);
    useful in tests. *)
