open Ccp_util

type ctl = {
  flow : int;
  mss : int;
  now : unit -> Time_ns.t;
  get_cwnd : unit -> int;
  set_cwnd : int -> unit;
  get_rate : unit -> float;
  set_rate : float -> unit;
  srtt : unit -> Time_ns.t option;
  latest_rtt : unit -> Time_ns.t option;
  min_rtt : unit -> Time_ns.t option;
  inflight : unit -> int;
  send_rate_ewma : unit -> float option;
  delivery_rate_ewma : unit -> float option;
}

type ack_event = {
  now : Time_ns.t;
  bytes_acked : int;
  rtt_sample : Time_ns.t option;
  ecn_echo : bool;
  send_rate : float option;
  delivery_rate : float option;
  inflight_after : int;
}

type loss_kind = Dup_acks | Rto
type loss_event = { kind : loss_kind; at : Time_ns.t; bytes_lost_estimate : int }

type t = {
  name : string;
  on_init : ctl -> unit;
  on_ack : ctl -> ack_event -> unit;
  on_loss : ctl -> loss_event -> unit;
  on_exit_recovery : ctl -> unit;
}

let noop name =
  {
    name;
    on_init = (fun _ -> ());
    on_ack = (fun _ _ -> ());
    on_loss = (fun _ _ -> ());
    on_exit_recovery = (fun _ -> ());
  }
