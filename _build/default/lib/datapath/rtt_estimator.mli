(** RTT estimation and retransmission timeout per RFC 6298.

    Keeps the smoothed RTT (SRTT), RTT variance, the latest raw sample, and
    the lifetime minimum — the datapath statistics the CCP API exposes
    (§2.1, "statistics on packet-level round trip times"). *)

open Ccp_util

type t

val create : ?min_rto:Time_ns.t -> ?max_rto:Time_ns.t -> unit -> t
(** Defaults: [min_rto] 200 ms (Linux's value), [max_rto] 60 s. *)

val on_sample : t -> Time_ns.t -> unit
(** Feed one RTT measurement; non-positive samples are ignored. *)

val srtt : t -> Time_ns.t option
val rttvar : t -> Time_ns.t option
val latest : t -> Time_ns.t option
val min_rtt : t -> Time_ns.t option
val samples : t -> int

val rto : t -> Time_ns.t
(** Current retransmission timeout: [srtt + 4*rttvar] clamped to the
    configured bounds; [1 s] before the first sample (RFC 6298 §2). *)
