lib/datapath/rate_estimator.mli: Ccp_util Time_ns
