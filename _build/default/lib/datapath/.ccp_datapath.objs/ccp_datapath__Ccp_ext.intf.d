lib/datapath/ccp_ext.mli: Ccp_eventsim Ccp_ipc Ccp_lang Ccp_util Channel Congestion_iface Sim Time_ns
