lib/datapath/congestion_iface.mli: Ccp_util Time_ns
