lib/datapath/tcp_flow.ml: Ccp_eventsim Ccp_net Ccp_util Congestion_iface Hashtbl List Option Pacer Packet Queue Rate_estimator Rtt_estimator Sim Time_ns
