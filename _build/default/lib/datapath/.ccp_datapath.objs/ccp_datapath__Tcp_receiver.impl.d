lib/datapath/tcp_receiver.ml: Ccp_net List Packet
