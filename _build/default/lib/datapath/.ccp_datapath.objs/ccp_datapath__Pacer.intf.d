lib/datapath/pacer.mli: Ccp_util Time_ns
