lib/datapath/tcp_receiver.mli: Ccp_net Packet
