lib/datapath/pacer.ml: Ccp_util Float Time_ns
