lib/datapath/congestion_iface.ml: Ccp_util Time_ns
