lib/datapath/rate_estimator.ml: Ccp_util Option Stats Time_ns
