lib/datapath/rtt_estimator.mli: Ccp_util Time_ns
