lib/datapath/rtt_estimator.ml: Ccp_util Option Time_ns
