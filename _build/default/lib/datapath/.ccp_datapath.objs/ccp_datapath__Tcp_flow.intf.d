lib/datapath/tcp_flow.mli: Ccp_eventsim Ccp_net Ccp_util Congestion_iface Packet Rate_estimator Rtt_estimator Sim Time_ns
