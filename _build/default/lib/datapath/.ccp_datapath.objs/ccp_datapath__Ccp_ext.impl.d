lib/datapath/ccp_ext.ml: Array Ast Ccp_eventsim Ccp_ipc Ccp_lang Ccp_util Channel Congestion_iface Eval Float Fold Hashtbl List Message Option Sim Time_ns Typecheck
