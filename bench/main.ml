(* Benchmark and reproduction harness.

   Two parts:
   - bechamel micro-benchmarks of the hot paths the paper reasons about
     (the §2.2 cube roots, the §2.3 per-ACK processing cost, the wire
     codec, the control-program parser);
   - the figure harness: regenerates every table and figure of the paper's
     evaluation and prints measured-vs-paper summaries.

   Usage: main.exe [sections...] where sections are any of
   micro perack obs tracing telemetry scale table1 batching fig2 fig3 fig4 fig5
   ablations sweep (default: all).
   Set QUICK=1 to shrink simulation durations (CI-friendly).

   Bechamel sections also append their ns/op estimates to BENCH.json in
   the working directory — a flat list of {"name","value","unit"} rows
   (the Ccp_obs.Metrics snapshot schema, validated by
   test/test_obs.ml) — so the perf trajectory is machine-readable run
   over run. *)

open Bechamel
open Toolkit
open Ccp_util
open Ccp_core

let quick = match Sys.getenv_opt "QUICK" with Some ("1" | "true") -> true | _ -> false

let sections =
  match Array.to_list Sys.argv with
  | _ :: (_ :: _ as rest) -> rest
  | _ ->
    [ "micro"; "perack"; "obs"; "tracing"; "telemetry"; "scale"; "table1"; "batching";
      "fig2"; "fig3"; "fig4"; "fig5"; "ablations"; "sweep" ]

let enabled name = List.mem name sections

let heading title =
  Printf.printf
    "\n================================================================\n%s\n================================================================\n%!"
    title

(* --- bechamel micro-benchmarks --- *)

let sample_report : Ccp_ipc.Message.t =
  Ccp_ipc.Message.Report
    {
      flow = 7;
      fields =
        [|
          ("acked", 123456.0); ("marked", 12.0); ("pkts", 85.0); ("maxrate", 1.25e7);
          ("minrtt", 10123.0); ("lastrtt", 11000.0); ("sumrtt", 870000.0);
          ("_cwnd", 145000.0); ("_rate", 0.0); ("_srtt_us", 10500.0);
        |];
    }

let sample_install : Ccp_ipc.Message.t =
  Ccp_ipc.Message.Install
    {
      flow = 7;
      program =
        Ccp_lang.Parser.parse_program
          "Measure(fold { init { acked = 0; minrtt = 1e12 } update { acked = acked + \
           pkt.bytes_acked; minrtt = min(minrtt, pkt.rtt_us) } }).Cwnd(cwnd + 2 * \
           mss).WaitRtts(1.0).Report()";
    }

let encoded_report = Ccp_ipc.Codec.encode sample_report
let encoded_install = Ccp_ipc.Codec.encode sample_install

(* A representative program source: the paper's BBR pulse pattern. *)
let parse_text =
  "Measure(rtt_us, bytes_acked).Rate(1.25 * rate).WaitRtts(1.0).Report().Rate(0.75 * \
   rate).WaitRtts(1.0).Report().Rate(rate).WaitRtts(6.0).Report()"

let fold_def =
  match
    Ccp_lang.Parser.parse_program
      "Measure(fold { init { acked = 0; minrtt = 1e12; maxrate = 0 } update { acked = acked \
       + pkt.bytes_acked; minrtt = min(minrtt, pkt.rtt_us); maxrate = max(maxrate, \
       pkt.recv_rate) } }).WaitRtts(1.0).Report()"
  with
  | { Ccp_lang.Ast.prims = Ccp_lang.Ast.Measure (Ccp_lang.Ast.Fold def) :: _; _ } -> def
  | _ -> assert false

let flow_env = function
  | "cwnd" -> Some 140000.0
  | "mss" -> Some 1448.0
  | "srtt_us" -> Some 10100.0
  | "rate" -> Some 1.2e7
  | _ -> Some 0.0

let pkt_env = function
  | "rtt_us" -> Some 10233.0
  | "bytes_acked" -> Some 1448.0
  | "recv_rate" -> Some 1.21e7
  | _ -> Some 0.0

(* Run a bechamel test group and return sorted (name, ns/op, r^2) rows;
   every row also lands in the JSON accumulator flushed at exit (as
   (name, value, unit) — the scale section contributes non-ns/op rows). *)
let json_rows : (string * float * string) list ref = ref []

let measure_rows tests =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> (name, est, Analyze.OLS.r_square ols) :: acc
        | _ -> acc)
      results []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  in
  Printf.printf "%-34s %14s %8s\n" "benchmark" "ns/op" "r^2";
  List.iter
    (fun (name, est, r2) ->
      Printf.printf "%-34s %14.1f %8s\n" name est
        (match r2 with Some r -> Printf.sprintf "%.4f" r | None -> "-"))
    rows;
  json_rows := !json_rows @ List.map (fun (name, est, _) -> (name, est, "ns/op")) rows;
  rows

let row_cost rows name =
  match List.find_opt (fun (n, _, _) -> n = name) rows with
  | Some (_, est, _) -> est
  | None -> 0.0

let write_bench_json () =
  match !json_rows with
  | [] -> ()
  | pairs ->
    let rows =
      List.map (fun (name, value, unit_) -> { Ccp_obs.Metrics.name; value; unit_ }) pairs
    in
    let json = Ccp_obs.Metrics.rows_to_json rows in
    (match Ccp_obs.Metrics.validate_rows_json json with
    | Ok _ -> ()
    | Error e -> failwith ("BENCH.json failed its own schema check: " ^ e));
    let oc = open_out "BENCH.json" in
    output_string oc (Ccp_obs.Json.to_string json);
    output_string oc "\n";
    close_out oc;
    Printf.printf "\nwrote BENCH.json (%d entries)\n" (List.length rows)

let micro_tests () =
  let fold_state = Ccp_lang.Fold.create fold_def ~flow_env in
  let cubic_expr = Ccp_lang.Parser.parse_expr "max(0.0, cwnd + 0.4 * mss * srtt_us / 1000)" in
  let eval_env = { Ccp_lang.Eval.lookup_var = flow_env; lookup_pkt = pkt_env } in
  Test.make_grouped ~name:"ccp"
    [
      Test.make ~name:"cubic/int-cbrt"
        (Staged.stage (fun () -> Ccp_algorithms.Cubic_math.int_cbrt 12345678901));
      Test.make ~name:"cubic/float-cbrt"
        (Staged.stage (fun () -> Ccp_algorithms.Cubic_math.float_cbrt 12345678901.0));
      Test.make ~name:"lang/parse-bbr-program"
        (Staged.stage (fun () -> Ccp_lang.Parser.parse_program parse_text));
      Test.make ~name:"lang/fold-step-per-ack"
        (Staged.stage (fun () -> Ccp_lang.Fold.step fold_state ~flow_env ~pkt_env));
      Test.make ~name:"lang/eval-expr"
        (Staged.stage (fun () -> Ccp_lang.Eval.eval eval_env cubic_expr));
      Test.make ~name:"ipc/encode-report"
        (Staged.stage (fun () -> Ccp_ipc.Codec.encode sample_report));
      (* The pre-scratch behaviour (fresh buffer per message), kept as
         the before/after baseline for the scratch-writer fix. *)
      Test.make ~name:"ipc/encode-report-fresh"
        (Staged.stage (fun () ->
             Ccp_ipc.Codec.encode_with (Ccp_ipc.Wire.Writer.create ()) sample_report));
      Test.make ~name:"ipc/decode-report"
        (Staged.stage (fun () -> Ccp_ipc.Codec.decode encoded_report));
      Test.make ~name:"ipc/encode-install"
        (Staged.stage (fun () -> Ccp_ipc.Codec.encode sample_install));
      Test.make ~name:"ipc/decode-install"
        (Staged.stage (fun () -> Ccp_ipc.Codec.decode encoded_install));
      Test.make ~name:"table1/render"
        (Staged.stage (fun () -> Ccp_algorithms.Primitives_table.render ()));
    ]

let run_micro () =
  heading "Micro-benchmarks (bechamel)";
  let rows = measure_rows (micro_tests ()) in
  let cost = row_cost rows in
  let fold_ns = cost "ccp/lang/fold-step-per-ack" in
  let report_ns = cost "ccp/ipc/encode-report" +. cost "ccp/ipc/decode-report" in
  Printf.printf
    "\n\
     §2.3 in measured numbers, at 100 Gbit/s with MTU segments (8.3M ACKs/s):\n\
     - per-ACK datapath fold work: %.1f ms of CPU per second of traffic\n\
     - per-RTT reporting at 10 µs RTT (100k reports/s, %d-byte reports): %.1f ms/s of codec work\n"
    (fold_ns *. 8.3e6 /. 1e6)
    (String.length encoded_report)
    (report_ns *. 100_000.0 /. 1e6)

(* --- per-ACK fast path: interpreter vs compiled (PR 3 headline) --- *)

module Lang = Ccp_lang

let perack_program =
  Lang.Parser.parse_program
    "Measure(fold { init { acked = 0; minrtt = 1e12; maxrate = 0 } update { acked = acked + \
     pkt.bytes_acked; minrtt = min(minrtt, pkt.rtt_us); maxrate = max(maxrate, pkt.recv_rate) \
     } }).Cwnd(cwnd + 2 * mss).WaitRtts(1.0).Report()"

let run_perack () =
  heading "Per-ACK path: interpreted vs compiled (install-time compilation)";
  let cwnd_expr, wait_expr =
    match perack_program.Lang.Ast.prims with
    | [ _; Lang.Ast.Cwnd c; Lang.Ast.Wait_rtts w; Lang.Ast.Report ] -> (c, w)
    | _ -> assert false
  in
  (* Interpreter side: string-keyed environments, as the datapath ran
     before install-time compilation. *)
  let ifold = Lang.Fold.create fold_def ~flow_env in
  let eval_env = { Lang.Eval.lookup_var = flow_env; lookup_pkt = (fun _ -> None) } in
  (* Compiled side: slot tables prefilled with the same values. *)
  let cp = Lang.Compile.compile_exn perack_program in
  let m = Lang.Compile.machine_for cp in
  List.iteri
    (fun i (name, _) -> m.Lang.Compile.flow.(i) <- Option.value (flow_env name) ~default:0.0)
    Lang.Ast.Vars.flow_vars;
  List.iteri
    (fun i (name, _) -> m.Lang.Compile.pkt.(i) <- Option.value (pkt_env name) ~default:0.0)
    Lang.Ast.Vars.pkt_fields;
  let plan, cwnd_code, wait_code =
    match cp.Lang.Compile.prims with
    | [| Lang.Compile.Measure_fold p; Lang.Compile.Cwnd c; Lang.Compile.Wait_rtts w;
         Lang.Compile.Report |] ->
      (p, c, w)
    | _ -> assert false
  in
  let cfold = Lang.Compile.Fold.create plan ~m in
  let incidents = Lang.Eval.fresh_counter () in
  (* Each benched closure folds [batch] ACKs (or runs [batch] ticks) so
     the harness's per-call closure overhead — identical for both
     sides, but large next to a ~40 ns compiled step — amortizes out of
     the comparison. Printed speedups are per single step. *)
  let batch = 10 in
  let rows =
    measure_rows
      (Test.make_grouped ~name:"perack"
         [
           Test.make ~name:(Printf.sprintf "fold-step-x%d/interpreted" batch)
             (Staged.stage (fun () ->
                  for _ = 1 to batch do
                    Lang.Fold.step ifold ~flow_env ~pkt_env
                  done));
           Test.make ~name:(Printf.sprintf "fold-step-x%d/compiled" batch)
             (Staged.stage (fun () ->
                  for _ = 1 to batch do
                    Lang.Compile.Fold.step cfold ~m ~incidents
                  done));
           Test.make ~name:(Printf.sprintf "tick-x%d/interpreted" batch)
             (Staged.stage (fun () ->
                  for _ = 1 to batch do
                    ignore (Lang.Eval.eval eval_env cwnd_expr : float);
                    ignore (Lang.Eval.eval eval_env wait_expr : float)
                  done));
           Test.make ~name:(Printf.sprintf "tick-x%d/compiled" batch)
             (Staged.stage (fun () ->
                  for _ = 1 to batch do
                    Lang.Compile.exec cwnd_code ~m ~slots:Lang.Compile.no_slots ~incidents;
                    Lang.Compile.exec wait_code ~m ~slots:Lang.Compile.no_slots ~incidents
                  done));
         ])
  in
  let cost = row_cost rows in
  let speedup what interp compiled =
    let i = cost interp /. float_of_int batch and c = cost compiled /. float_of_int batch in
    if c > 0.0 then Printf.printf "%s speedup: %.1fx (%.1f ns -> %.1f ns per step)\n" what (i /. c) i c
  in
  print_newline ();
  speedup "fold step " (Printf.sprintf "perack/fold-step-x%d/interpreted" batch)
    (Printf.sprintf "perack/fold-step-x%d/compiled" batch);
  speedup "program tick" (Printf.sprintf "perack/tick-x%d/interpreted" batch)
    (Printf.sprintf "perack/tick-x%d/compiled" batch)

(* --- observability overhead: the per-ACK path with obs off vs on --- *)

(* A fabricated ctl over plain refs (the test suite's trick), with every
   option preallocated so the ctl itself contributes zero allocation —
   what the Gc delta below then measures is the datapath's own path. *)
let obs_ctl sim ~flow =
  let cwnd = ref 140_000 and rate = ref 0.0 in
  let srtt = Some (Time_ns.ms 10) and latest = Some (Time_ns.ms 11) in
  let send_rate = Some 1e6 and delivery = Some 9e5 in
  let ctl : Ccp_datapath.Congestion_iface.ctl =
    {
      flow;
      mss = 1448;
      now = (fun () -> Ccp_eventsim.Sim.now sim);
      get_cwnd = (fun () -> !cwnd);
      set_cwnd = (fun b -> cwnd := max 1448 b);
      get_rate = (fun () -> !rate);
      set_rate = (fun r -> rate := r);
      srtt = (fun () -> srtt);
      latest_rtt = (fun () -> latest);
      min_rtt = (fun () -> srtt);
      inflight = (fun () -> 5000);
      send_rate_ewma = (fun () -> send_rate);
      delivery_rate_ewma = (fun () -> delivery);
    }
  in
  ctl

let obs_fold_program =
  Ccp_lang.Parser.parse_program
    "Measure(fold { init { acked = 0; minrtt = 1e12 } update { acked = acked + \
     pkt.bytes_acked; minrtt = min(minrtt, pkt.rtt_us) } }).Cwnd(cwnd + 2 * \
     mss).WaitRtts(1.0).Report()"

let obs_datapath ?obs () =
  let sim = Ccp_eventsim.Sim.create () in
  let channel =
    Ccp_ipc.Channel.create ~sim ~latency:(Ccp_ipc.Latency_model.Constant (Time_ns.us 20))
      ?obs ()
  in
  let ext = Ccp_datapath.Ccp_ext.create ~sim ~channel ?obs () in
  Ccp_ipc.Channel.on_receive channel Ccp_ipc.Channel.Agent_end (fun _ -> ());
  let ctl = obs_ctl sim ~flow:1 in
  let cc = Ccp_datapath.Ccp_ext.congestion_control ext in
  cc.Ccp_datapath.Congestion_iface.on_init ctl;
  Ccp_eventsim.Sim.run sim;
  Ccp_ipc.Channel.send channel ~from:Ccp_ipc.Channel.Agent_end
    (Ccp_ipc.Message.Install { flow = 1; program = obs_fold_program });
  Ccp_eventsim.Sim.run ~until:(Time_ns.add (Ccp_eventsim.Sim.now sim) (Time_ns.ms 5)) sim;
  (cc, ctl)

let obs_ack_event : Ccp_datapath.Congestion_iface.ack_event =
  {
    now = Time_ns.ms 50;
    bytes_acked = 1448;
    rtt_sample = Some (Time_ns.ms 11);
    ecn_echo = false;
    send_rate = Some 1e6;
    delivery_rate = Some 9e5;
    inflight_after = 5000;
  }

let run_obs () =
  heading "Observability overhead (flight recorder + metrics, per-ACK path)";
  let cc_off, ctl_off = obs_datapath () in
  let obs = Ccp_obs.Obs.create () in
  let cc_on, ctl_on = obs_datapath ~obs () in
  let ev = obs_ack_event in
  let reg = Ccp_obs.Metrics.create () in
  let counter = Ccp_obs.Metrics.counter reg ~unit_:"ops" "bench.counter" in
  let hist = Ccp_obs.Metrics.histogram reg ~unit_:"ns" "bench.histogram" in
  let ring = Ccp_obs.Recorder.create () in
  let sample = Ccp_obs.Recorder.Queue_sample { bytes = 12_345 } in
  let batch = 10 in
  let rows =
    measure_rows
      (Test.make_grouped ~name:"obs"
         [
           Test.make ~name:(Printf.sprintf "on-ack-x%d/disabled" batch)
             (Staged.stage (fun () ->
                  for _ = 1 to batch do
                    cc_off.Ccp_datapath.Congestion_iface.on_ack ctl_off ev
                  done));
           Test.make ~name:(Printf.sprintf "on-ack-x%d/enabled" batch)
             (Staged.stage (fun () ->
                  for _ = 1 to batch do
                    cc_on.Ccp_datapath.Congestion_iface.on_ack ctl_on ev
                  done));
           Test.make ~name:"metrics/counter-incr"
             (Staged.stage (fun () -> Ccp_obs.Metrics.incr counter));
           Test.make ~name:"metrics/histogram-observe"
             (Staged.stage (fun () -> Ccp_obs.Metrics.observe hist 1234.0));
           Test.make ~name:"recorder/record"
             (Staged.stage (fun () -> Ccp_obs.Recorder.record ring ~at:0 sample));
         ])
  in
  let cost = row_cost rows in
  let off = cost (Printf.sprintf "obs/on-ack-x%d/disabled" batch) /. float_of_int batch in
  let on = cost (Printf.sprintf "obs/on-ack-x%d/enabled" batch) /. float_of_int batch in
  Printf.printf "\nper-ACK observability overhead: %+.1f ns (%.1f ns off -> %.1f ns on)\n"
    (on -. off) off on;
  (* The "zero cost disabled" acceptance bar, measured where the bench
     already has the machinery set up; test_obs.ml asserts the same. *)
  let words0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    cc_off.Ccp_datapath.Congestion_iface.on_ack ctl_off ev
  done;
  let per_ack = (Gc.minor_words () -. words0) /. 10_000.0 in
  Printf.printf "obs-off allocation: %.4f minor words per ACK over 10k ACKs\n" per_ack;
  if per_ack > 0.0 then begin
    Printf.eprintf
      "bench: FAIL: obs-off per-ACK path allocated %.4f minor words per ACK (expected 0)\n%!"
      per_ack;
    exit 1
  end

(* --- tracing overhead: the per-ACK path and the span lifecycle --- *)

(* The tracer touches the per-ACK path not at all (spans are minted per
   report, roughly once per RTT), so tracer-on and tracer-off per-ACK
   costs should be indistinguishable — measured here rather than assumed.
   The span lifecycle itself is benched standalone, and its steady state
   must not allocate: tokens come from the preallocated pool, and with no
   recorder attached a finalization only updates metrics arrays. *)
let run_tracing () =
  heading "Tracing overhead (control-loop span tracer)";
  let cc_off, ctl_off = obs_datapath ~obs:(Ccp_obs.Obs.create ()) () in
  let cc_on, ctl_on = obs_datapath ~obs:(Ccp_obs.Obs.create ~tracer:true ()) () in
  let ev = obs_ack_event in
  let metrics = Ccp_obs.Metrics.create () in
  let tracer = Ccp_obs.Tracer.create ~metrics ~clock:(fun () -> 0.0) () in
  let lifecycle () =
    let s = Ccp_obs.Tracer.start tracer ~now:0 ~flow:1 ~kind:Ccp_obs.Tracer.Report_span in
    Ccp_obs.Tracer.sent tracer s ~now:10;
    Ccp_obs.Tracer.arrived tracer s ~now:20;
    Ccp_obs.Tracer.handler_begin tracer s;
    Ccp_obs.Tracer.note_send tracer s ~now:30;
    Ccp_obs.Tracer.handler_end tracer s ~now:30;
    Ccp_obs.Tracer.finish tracer s ~now:40 ~disposition:Ccp_obs.Tracer.Actuated
      ~apply_ns:5.0
  in
  let batch = 10 in
  let rows =
    measure_rows
      (Test.make_grouped ~name:"tracing"
         [
           Test.make ~name:(Printf.sprintf "on-ack-x%d/tracer-off" batch)
             (Staged.stage (fun () ->
                  for _ = 1 to batch do
                    cc_off.Ccp_datapath.Congestion_iface.on_ack ctl_off ev
                  done));
           Test.make ~name:(Printf.sprintf "on-ack-x%d/tracer-on" batch)
             (Staged.stage (fun () ->
                  for _ = 1 to batch do
                    cc_on.Ccp_datapath.Congestion_iface.on_ack ctl_on ev
                  done));
           Test.make ~name:"span/lifecycle" (Staged.stage lifecycle);
         ])
  in
  let cost = row_cost rows in
  let off = cost (Printf.sprintf "tracing/on-ack-x%d/tracer-off" batch) /. float_of_int batch in
  let on = cost (Printf.sprintf "tracing/on-ack-x%d/tracer-on" batch) /. float_of_int batch in
  Printf.printf "\nper-ACK tracing overhead: %+.1f ns (%.1f ns off -> %.1f ns on)\n"
    (on -. off) off on;
  Printf.printf "full span lifecycle: %.1f ns\n" (cost "tracing/span/lifecycle");
  let words0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    lifecycle ()
  done;
  let per_span = (Gc.minor_words () -. words0) /. 10_000.0 in
  Printf.printf "span lifecycle allocation (no recorder): %.4f minor words per span\n" per_span;
  (* The span state itself is preallocated (slot pool, parallel arrays), so
     a lifecycle allocates no per-span data. What remains is the float
     calling convention: each non-inlined [Metrics.observe]/clock call boxes
     a float argument or return (2 words each, ~26 words per lifecycle
     without flambda). Bound that boxing; the hard zero-allocation
     guarantee is the tracer-off per-ACK path asserted in the obs section. *)
  if per_span > 32.0 then begin
    Printf.eprintf
      "bench: FAIL: span lifecycle allocated %.4f minor words per span (expected <= 32 \
       float-boxing words; span state is pool-allocated)\n\
       %!"
      per_span;
    exit 1
  end

(* --- telemetry: windowed sampler tick cost; obs-off hot path --- *)

(* The sampler runs on the sim clock, never per ACK, so its only costs
   are the tick (a cumulative read of every registered metric) and the
   window close. Tick cost must scale with metric count and stay flat in
   ring capacity — the ring only bounds memory. And arming the full
   telemetry stack elsewhere in the process must leave the obs-off
   per-ACK path at exactly zero minor words, the same bar run_obs sets
   with just the recorder compiled in. *)
let run_telemetry () =
  heading "Telemetry (windowed time-series sampler; Top-K; SLO engine)";
  let tick_test ~metrics:n ~windows =
    let m = Ccp_obs.Metrics.create () in
    let counters =
      Array.init n (fun i ->
          Ccp_obs.Metrics.counter m ~unit_:"msgs" (Printf.sprintf "bench.c%03d" i))
    in
    let ts = Ccp_obs.Timeseries.create ~metrics:m ~window:1_000 ~windows ~subticks:1 () in
    let now = ref 0 in
    (* Every call advances one window and closes it (subticks 1): the
       worst case, sampling plus close plus ring insert each time. One
       counter moves so the window is never fully delta-suppressed. *)
    Test.make ~name:(Printf.sprintf "tick-close/m%d-w%d" n windows)
      (Staged.stage (fun () ->
           Ccp_obs.Metrics.incr counters.(0);
           now := !now + 1_000;
           ignore (Ccp_obs.Timeseries.tick ts ~now:!now : bool)))
  in
  let tk = Ccp_obs.Topk.create ~k:64 () in
  let sketch = Ccp_obs.Topk.sketch tk "bench.flows" in
  let spin = ref 0 in
  let rows =
    measure_rows
      (Test.make_grouped ~name:"telemetry"
         [
           tick_test ~metrics:8 ~windows:64;
           tick_test ~metrics:64 ~windows:64;
           tick_test ~metrics:256 ~windows:64;
           tick_test ~metrics:64 ~windows:16;
           tick_test ~metrics:64 ~windows:256;
           Test.make ~name:"topk/touch-churn"
             (Staged.stage (fun () ->
                  (* 4096 rotating keys against k=64: constant eviction,
                     the sketch's worst case. *)
                  spin := (!spin + 1) land 4095;
                  Ccp_obs.Topk.touch sketch !spin));
         ])
  in
  let cost = row_cost rows in
  let m8 = cost "telemetry/tick-close/m8-w64" in
  let m64 = cost "telemetry/tick-close/m64-w64" in
  let m256 = cost "telemetry/tick-close/m256-w64" in
  let w16 = cost "telemetry/tick-close/m64-w16" in
  let w256 = cost "telemetry/tick-close/m64-w256" in
  Printf.printf
    "\ntick+close cost vs metric count: %.0f ns at 8 -> %.0f ns at 64 -> %.0f ns at 256\n"
    m8 m64 m256;
  Printf.printf "tick+close cost vs ring capacity (64 metrics): %.0f ns at 16 windows, %.0f \
                 ns at 256 (memory bound, not time)\n"
    w16 w256;
  (* Zero-allocation bar with ALL telemetry subsystems not just compiled
     in but armed and live in the process: a full bundle with sketches
     fed and windows closing, while the datapath under test runs with
     obs off. *)
  let armed =
    Ccp_obs.Obs.create ~tracer:true ~telemetry:true ~clock:(fun () -> 0.0) ()
  in
  (match Ccp_obs.Obs.flow_sketch armed "flow.reports" with
  | Some s -> Ccp_obs.Topk.touch s 1
  | None -> ());
  (match armed.Ccp_obs.Obs.timeseries with
  | Some ts ->
    ignore (Ccp_obs.Timeseries.tick ts ~now:0 : bool);
    ignore (Ccp_obs.Timeseries.tick ts ~now:250_000_000 : bool)
  | None -> ());
  let cc_off, ctl_off = obs_datapath () in
  let ev = obs_ack_event in
  let words0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    cc_off.Ccp_datapath.Congestion_iface.on_ack ctl_off ev
  done;
  let per_ack = (Gc.minor_words () -. words0) /. 10_000.0 in
  Printf.printf
    "obs-off allocation with telemetry armed in-process: %.4f minor words per ACK\n" per_ack;
  if per_ack > 0.0 then begin
    Printf.eprintf
      "bench: FAIL: obs-off per-ACK path allocated %.4f minor words per ACK with the \
       telemetry stack armed (expected 0)\n\
       %!"
      per_ack;
    exit 1
  end

(* --- scale: the flow-multiplexed control plane at N flows --- *)

(* Registration churn and report dispatch measured end to end through
   the real channel + agent with the slot-pooled registry armed at
   fleet size, at N in {16, 256, 2048}. Two acceptance bars ride along:
   per-flow churn allocation stays bounded and N-independent (the pool
   touches preallocated slots, not a growing heap), and batched report
   dispatch costs less per report than unbatched (the frame amortizes
   per-message channel overhead). *)

let scale_ns = [ 16; 256; 2048 ]

let scale_sink : Ccp_agent.Algorithm.t =
  {
    Ccp_agent.Algorithm.name = "bench-sink";
    make =
      (fun _handle ->
        {
          Ccp_agent.Algorithm.no_op_handlers with
          Ccp_agent.Algorithm.on_report =
            (fun r -> ignore (Ccp_agent.Algorithm.field r "acked" : float option));
        });
  }

let scale_setup ?batching ~n () =
  let sim = Ccp_eventsim.Sim.create () in
  let channel =
    Ccp_ipc.Channel.create ~sim ~latency:(Ccp_ipc.Latency_model.Constant (Time_ns.us 20))
      ?batching ()
  in
  Ccp_ipc.Channel.on_receive channel Ccp_ipc.Channel.Datapath_end (fun _ -> ());
  let agent =
    Ccp_agent.Agent.create ~sim ~channel ~choose:(fun _ -> scale_sink) ~flow_pool:n ()
  in
  (sim, channel, agent)

let scale_churn_round sim channel ~n =
  for f = 0 to n - 1 do
    Ccp_ipc.Channel.send channel ~from:Ccp_ipc.Channel.Datapath_end
      (Ccp_ipc.Message.Ready { flow = f; mss = 1448; init_cwnd = 14_480 })
  done;
  Ccp_eventsim.Sim.run sim;
  for f = 0 to n - 1 do
    Ccp_ipc.Channel.send channel ~from:Ccp_ipc.Channel.Datapath_end
      (Ccp_ipc.Message.Closed { flow = f })
  done;
  Ccp_eventsim.Sim.run sim

(* (flows/sec, minor words per register+teardown cycle) *)
let scale_churn ~n ~rounds =
  let sim, channel, agent = scale_setup ~n () in
  scale_churn_round sim channel ~n;
  let words0 = Gc.minor_words () in
  scale_churn_round sim channel ~n;
  let words_per_flow = (Gc.minor_words () -. words0) /. float_of_int n in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to rounds do
    scale_churn_round sim channel ~n
  done;
  let dt = Unix.gettimeofday () -. t0 in
  if Ccp_agent.Agent.registrations_rejected agent > 0 then begin
    Printf.eprintf "bench: FAIL: scale churn at n=%d rejected registrations\n%!" n;
    exit 1
  end;
  (float_of_int (rounds * n) /. dt, words_per_flow)

let scale_report_fields = [| ("acked", 1448.0); ("sacked", 0.0); ("lastrtt", 10_233.0) |]

(* µs of wall clock per report, send through dispatch, at [n] live
   flows, reports round-robin across the fleet. *)
let scale_reports ?batching ~n ~reports () =
  let sim, channel, agent = scale_setup ?batching ~n () in
  for f = 0 to n - 1 do
    Ccp_ipc.Channel.send channel ~from:Ccp_ipc.Channel.Datapath_end
      (Ccp_ipc.Message.Ready { flow = f; mss = 1448; init_cwnd = 14_480 })
  done;
  Ccp_eventsim.Sim.run sim;
  let burst count =
    for i = 0 to count - 1 do
      Ccp_ipc.Channel.send channel ~from:Ccp_ipc.Channel.Datapath_end
        (Ccp_ipc.Message.Report { flow = i mod n; fields = scale_report_fields })
    done;
    Ccp_ipc.Channel.flush channel;
    Ccp_eventsim.Sim.run sim
  in
  burst (min reports 1024);
  let before = Ccp_agent.Agent.reports_received agent in
  let t0 = Unix.gettimeofday () in
  burst reports;
  let dt = Unix.gettimeofday () -. t0 in
  if Ccp_agent.Agent.reports_received agent - before <> reports then begin
    Printf.eprintf "bench: FAIL: scale dispatch at n=%d lost reports (%d of %d)\n%!" n
      (Ccp_agent.Agent.reports_received agent - before)
      reports;
    exit 1
  end;
  dt *. 1e6 /. float_of_int reports

let scale_batching =
  (* Deep byte/deadline watermarks so the count watermark (32, the
     incast default) is the one that fires: frames of 32 reports. *)
  {
    Ccp_ipc.Channel.max_count = 32;
    max_bytes = 1 lsl 20;
    deadline = Time_ns.ms 1;
  }

let run_scale () =
  heading "Scale: slot-pooled registry churn + batched report dispatch";
  let rounds = if quick then 20 else 100 in
  let reports = if quick then 20_000 else 100_000 in
  Printf.printf "%-8s %16s %14s %18s %18s\n" "flows" "flows/sec" "words/flow" "us/report(1-per)"
    "us/report(batch)";
  let words_per_flow =
    List.map
      (fun n ->
        let flows_per_sec, words = scale_churn ~n ~rounds in
        let unbatched = scale_reports ~n ~reports () in
        let batched = scale_reports ~batching:scale_batching ~n ~reports () in
        Printf.printf "%-8d %16.0f %14.1f %18.3f %18.3f\n%!" n flows_per_sec words unbatched
          batched;
        json_rows :=
          !json_rows
          @ [
              (Printf.sprintf "scale.flows_per_sec.n%d" n, flows_per_sec, "flows/s");
              (Printf.sprintf "scale.agent_us_per_report.unbatched.n%d" n, unbatched, "us");
              (Printf.sprintf "scale.agent_us_per_report.batched.n%d" n, batched, "us");
            ];
        if batched >= unbatched then begin
          Printf.eprintf
            "bench: FAIL: batched dispatch at n=%d cost %.3f us/report vs %.3f unbatched \
             (batching must amortize, not add)\n\
             %!"
            n batched unbatched;
          exit 1
        end;
        (n, words))
      scale_ns
  in
  (* Churn allocation must be bounded and must not grow with the fleet:
     the pool's whole point is that registration touches preallocated
     slots. The constant covers the Ready/Closed codec round-trip and
     scheduler event; 4x headroom separates "constant" from "linear"
     (a per-flow leak at n=2048 would blow far past it). *)
  List.iter
    (fun (n, words) ->
      if words > 1024.0 then begin
        Printf.eprintf
          "bench: FAIL: churn at n=%d allocated %.1f minor words per flow (expected <= 1024)\n%!"
          n words;
        exit 1
      end)
    words_per_flow;
  match words_per_flow with
  | (_, w0) :: (_ :: _ as rest) when w0 > 0.0 ->
    List.iter
      (fun (n, w) ->
        if w > 4.0 *. w0 then begin
          Printf.eprintf
            "bench: FAIL: churn allocation grows with fleet size (%.1f words/flow at n=%d vs \
             %.1f at n=%d)\n\
             %!"
            w n w0 (fst (List.hd words_per_flow));
          exit 1
        end)
      rest
  | _ -> ()

(* --- figure harness --- *)

let run_table1 () =
  heading "Table 1";
  print_string (Report.render_table1 ())

let run_batching () =
  heading "Batching load (§2.3)";
  print_string (Report.render_batching (Scenarios.Batching_load.table ()))

let run_fig2 () =
  heading "Figure 2";
  let samples = if quick then 10_000 else 60_000 in
  print_string (Report.render_fig2 (Scenarios.Fig2.run ~samples ()))

let run_fig3 () =
  heading "Figure 3";
  let duration = if quick then Time_ns.sec 8 else Time_ns.sec 30 in
  print_string (Report.render_fig3 (Scenarios.Fig3.run ~duration ()))

let run_fig4 () =
  heading "Figure 4";
  let duration = if quick then Time_ns.sec 30 else Time_ns.sec 60 in
  print_string (Report.render_fig4 (Scenarios.Fig4.run ~duration ()))

let run_fig5 () =
  heading "Figure 5";
  let runs = if quick then 2 else 4 in
  let duration = Time_ns.of_float_sec (if quick then 0.4 else 0.8) in
  print_string (Report.render_fig5 (Scenarios.Fig5.run ~runs ~duration ()))

let run_ablations () =
  heading "Ablations";
  print_string
    (Report.render_ablations
       ~interval:(Scenarios.Ablation.report_interval ())
       ~latency:(Scenarios.Ablation.ipc_latency ())
       ~urgent:(Scenarios.Ablation.urgent ())
       ~batching:(Scenarios.Ablation.batching_mode ()))

let run_sweep () =
  heading "Sweep: CCP vs native Reno across operating points";
  let points =
    if quick then
      Sweep.grid ~rates_bps:[ 20e6 ] ~rtts:[ Ccp_util.Time_ns.ms 20 ] ~buffer_bdps:[ 1.0 ]
    else Sweep.default_grid
  in
  let duration = Time_ns.sec (if quick then 6 else 10) in
  let outcomes =
    Sweep.run ~duration ~native:Ccp_algorithms.Native_reno.create
      ~ccp:(Ccp_algorithms.Ccp_reno.create ()) points
  in
  print_string (Sweep.render outcomes)

let () =
  if enabled "micro" then run_micro ();
  if enabled "perack" then run_perack ();
  if enabled "obs" then run_obs ();
  if enabled "tracing" then run_tracing ();
  if enabled "telemetry" then run_telemetry ();
  if enabled "scale" then run_scale ();
  if enabled "table1" then run_table1 ();
  if enabled "batching" then run_batching ();
  if enabled "fig2" then run_fig2 ();
  if enabled "fig3" then run_fig3 ();
  if enabled "fig4" then run_fig4 ();
  if enabled "fig5" then run_fig5 ();
  if enabled "ablations" then run_ablations ();
  if enabled "sweep" then run_sweep ();
  write_bench_json ();
  Printf.printf "\ndone.\n"
