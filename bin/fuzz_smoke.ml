(* CI fuzz smoke stage: hammer the admission/codec/eval pipeline with
   seeded adversarial ASTs and check the safety contracts the datapath
   relies on — admission never raises, the codec round-trips whatever is
   admitted, and evaluation is total and finite (the clamp holds) even
   under a hostile variable environment.

   Reuses CCP_PROP_SEED (same convention as test/prop.ml) so a CI soak
   run exercises fresh programs while the default run stays
   reproducible. Usage: fuzz_smoke [cases] (default 500). *)

open Ccp_util
open Ccp_lang
open Ccp_ipc

let default_seed = 0x5EED

let seed () =
  match Sys.getenv_opt "CCP_PROP_SEED" with
  | None | Some "" -> default_seed
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> n
      | None ->
          Printf.eprintf "fuzz_smoke: CCP_PROP_SEED=%S is not an integer\n" s;
          exit 2)

let cases () =
  match Sys.argv with
  | [| _ |] -> 500
  | [| _; n |] -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> n
      | _ ->
          Printf.eprintf "usage: fuzz_smoke [cases>0]\n";
          exit 2)
  | _ ->
      Printf.eprintf "usage: fuzz_smoke [cases>0]\n";
      exit 2

let failures = ref 0

let fail case fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "FAIL case %d: %s\n%!" case msg)
    fmt

(* A hostile evaluation environment: known names resolve, but to values
   chosen to provoke overflow and division blow-ups (zeros, denormals,
   huge magnitudes) alongside plausible ones. *)
let hostile_env rng =
  let poison = [| 0.0; 4.9e-324; -0.0; 1e308; -1e308; 1.0; 1448.0; 5e7 |] in
  let value () =
    if Rng.bool rng then poison.(Rng.int rng (Array.length poison))
    else Rng.uniform rng ~lo:(-1e6) ~hi:1e6
  in
  {
    Eval.lookup_var =
      (fun name -> if Ast.Vars.is_flow_var name then Some (value ()) else None);
    lookup_pkt =
      (fun name -> if Ast.Vars.is_pkt_field name then Some (value ()) else None);
  }

let prim_exprs = function
  | Ast.Rate e | Ast.Cwnd e | Ast.Wait e | Ast.Wait_rtts e -> [ e ]
  | Ast.Report -> []
  | Ast.Measure (Ast.Vector _) -> []
  | Ast.Measure (Ast.Fold { init; update }) ->
      List.map snd init @ List.map snd update

let check_admission case program =
  match Limits.admit program with
  | verdict -> verdict
  | exception e ->
      fail case "Limits.admit raised %s" (Printexc.to_string e);
      Error (Limits.Invalid_program, "raised")

let check_codec case program =
  let msg = Message.Install { flow = case; program } in
  match Codec.decode (Codec.encode msg) with
  | decoded ->
      if not (Message.equal msg decoded) then
        fail case "Install codec round-trip mismatch: %s" (Message.describe msg)
  | exception e ->
      fail case "Install codec raised %s on %s" (Printexc.to_string e)
        (Message.describe msg)

let check_eval case rng program =
  let env = hostile_env rng in
  let incidents = Eval.fresh_counter () in
  List.iter
    (fun prim ->
      List.iter
        (fun e ->
          match Eval.eval ~incidents env e with
          | v ->
              if not (Float.is_finite v) then
                fail case "eval produced non-finite %h (clamp failed)" v
          | exception ex ->
              fail case "eval raised %s" (Printexc.to_string ex))
        (prim_exprs prim))
    program.Ast.prims

let () =
  let seed = seed () in
  let cases = cases () in
  let rng = Rng.create ~seed in
  let admitted = ref 0 in
  let rejected = ref 0 in
  for case = 1 to cases do
    (* Adversarial draw: admission must classify it without raising, and
       anything it lets through must survive the codec and evaluate
       finitely. *)
    let program = Ast_gen.program rng in
    (match check_admission case program with
    | Ok () ->
        incr admitted;
        check_codec case program;
        check_eval case rng program
    | Error _ -> incr rejected);
    (* Well-typed draw: must be admitted, and the same runtime contracts
       hold. *)
    let wt = Ast_gen.well_typed_program rng in
    (match check_admission case wt with
    | Ok () -> ()
    | Error (reason, detail) ->
        fail case "well_typed_program refused (%s: %s)"
          (Limits.reason_to_string reason) detail);
    check_codec case wt;
    check_eval case rng wt
  done;
  Printf.printf
    "fuzz_smoke: %d cases (seed %d): %d adversarial admitted, %d rejected, %d failures\n"
    cases seed !admitted !rejected !failures;
  if !failures > 0 then exit 1
