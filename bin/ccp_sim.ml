(* ccp_sim: command-line driver for the CCP reproduction.

   Subcommands:
     run     one experiment with configurable link, flows, and algorithm
     fig2..fig5, table1, batching, ablations
             regenerate the corresponding paper artifact
     csv     run an experiment and dump a trace series as CSV *)

open Cmdliner
open Ccp_util
open Ccp_core

let algorithms : (string * (unit -> Experiment.cc_spec)) list =
  [
    ("reno", fun () -> Experiment.Native_cc Ccp_algorithms.Native_reno.create);
    ("cubic", fun () -> Experiment.Native_cc Ccp_algorithms.Native_cubic.create);
    ("vegas", fun () -> Experiment.Native_cc Ccp_algorithms.Native_vegas.create);
    ("dctcp", fun () -> Experiment.Native_cc Ccp_algorithms.Native_dctcp.create);
    ("htcp", fun () -> Experiment.Native_cc Ccp_algorithms.Native_htcp.create);
    ("illinois", fun () -> Experiment.Native_cc Ccp_algorithms.Native_illinois.create);
    ("ccp-reno", fun () -> Experiment.Ccp_cc (Ccp_algorithms.Ccp_reno.create ()));
    ("ccp-cubic", fun () -> Experiment.Ccp_cc (Ccp_algorithms.Ccp_cubic.create ()));
    ("ccp-vegas", fun () -> Experiment.Ccp_cc (Ccp_algorithms.Ccp_vegas.create `Fold));
    ("ccp-vegas-vector", fun () -> Experiment.Ccp_cc (Ccp_algorithms.Ccp_vegas.create `Vector));
    ("ccp-bbr", fun () -> Experiment.Ccp_cc (Ccp_algorithms.Ccp_bbr.create ()));
    ("ccp-dctcp", fun () -> Experiment.Ccp_cc (Ccp_algorithms.Ccp_dctcp.create ()));
    ("ccp-timely", fun () -> Experiment.Ccp_cc (Ccp_algorithms.Ccp_timely.create ()));
    ("ccp-pcc", fun () -> Experiment.Ccp_cc (Ccp_algorithms.Ccp_pcc.create ()));
    ("ccp-aimd", fun () -> Experiment.Ccp_cc (Ccp_algorithms.Ccp_aimd.create ()));
  ]
  @ List.map
      (fun (name, prog) ->
        ( "hostile-" ^ name,
          fun () -> Experiment.Ccp_cc (Scenarios.Hostile.attacker name prog) ))
      Scenarios.Hostile.all

let algorithm_names = String.concat ", " (List.map fst algorithms)

(* --- shared options --- *)

let rate_mbps =
  let doc = "Bottleneck rate in Mbit/s." in
  Arg.(value & opt float 100.0 & info [ "rate" ] ~docv:"MBPS" ~doc)

let rtt_ms =
  let doc = "Base round-trip time in milliseconds." in
  Arg.(value & opt float 20.0 & info [ "rtt" ] ~docv:"MS" ~doc)

let duration_s =
  let doc = "Simulated duration in seconds." in
  Arg.(value & opt float 15.0 & info [ "duration" ] ~docv:"S" ~doc)

let buffer_bdp =
  let doc = "Bottleneck buffer in bandwidth-delay products." in
  Arg.(value & opt float 1.0 & info [ "buffer-bdp" ] ~docv:"BDP" ~doc)

let seed =
  let doc = "Random seed (simulations are deterministic per seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

let flows_arg =
  let doc =
    Printf.sprintf
      "Flow specification: comma-separated $(i,algo[@start_s]) entries. Algorithms: %s."
      algorithm_names
  in
  Arg.(value & opt string "ccp-reno" & info [ "flows" ] ~docv:"SPEC" ~doc)

let ecn_bdp =
  let doc = "Enable ECN marking at this fraction of the buffer (e.g. 0.2); 0 disables." in
  Arg.(value & opt float 0.0 & info [ "ecn" ] ~docv:"FRAC" ~doc)

let trace_file =
  let doc =
    "Arm the flight recorder and write its event trace to $(docv) after the run. A \
     $(b,.csv) extension dumps the per-flow samples as CSV; anything else writes JSONL \
     (one event object per line). The written file is re-read and validated; a \
     malformed line makes the command exit non-zero."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* --- IPC fault-injection options (docs/fault-injection.md) --- *)

let ipc_drop =
  let doc = "Drop each IPC message with this probability." in
  Arg.(value & opt float 0.0 & info [ "ipc-drop" ] ~docv:"PROB" ~doc)

let ipc_dup =
  let doc = "Duplicate each IPC message with this probability." in
  Arg.(value & opt float 0.0 & info [ "ipc-dup" ] ~docv:"PROB" ~doc)

let ipc_spike =
  let doc =
    "IPC latency spikes: $(i,PROB:MS) adds MS milliseconds to a message's one-way \
     latency with probability PROB."
  in
  Arg.(value & opt (some string) None & info [ "ipc-spike" ] ~docv:"PROB:MS" ~doc)

let ipc_reorder =
  let doc =
    "Bounded IPC reordering: $(i,PROB:MS) lets a message slip up to MS milliseconds \
     past its FIFO slot with probability PROB."
  in
  Arg.(value & opt (some string) None & info [ "ipc-reorder" ] ~docv:"PROB:MS" ~doc)

let agent_crash =
  let doc = "Crash the agent at $(i,T1) seconds and restart it at $(i,T2) seconds." in
  Arg.(value & opt (some string) None & info [ "agent-crash" ] ~docv:"T1:T2" ~doc)

let fallback_rtts =
  let doc =
    "Arm the datapath watchdog: after this many base RTTs of agent silence the flow \
     reverts to native NewReno until the agent returns. 0 disables."
  in
  Arg.(value & opt float 0.0 & info [ "fallback-rtts" ] ~docv:"K" ~doc)

(* --- agent resilience options (docs/safety.md) --- *)

let shed_queue =
  let doc =
    "Arm agent overload control: bound the report backlog to $(docv) messages (hard \
     cap). 0 disables, dispatching every report synchronously."
  in
  Arg.(value & opt int 0 & info [ "shed-queue" ] ~docv:"N" ~doc)

let shed_watermark =
  let doc =
    "Overload high watermark: above this depth the agent sheds the oldest report of \
     the deepest-backlog flow. Defaults to half of --shed-queue."
  in
  Arg.(value & opt int 0 & info [ "shed-watermark" ] ~docv:"N" ~doc)

let shed_budget =
  let doc = "Reports dispatched per round when overload control is armed." in
  Arg.(value & opt int 4 & info [ "shed-budget" ] ~docv:"N" ~doc)

let shed_interval_ms =
  let doc = "Dispatch round interval in milliseconds when overload control is armed." in
  Arg.(value & opt float 5.0 & info [ "shed-interval" ] ~docv:"MS" ~doc)

let checkpoint_ms =
  let doc =
    "Checkpoint the agent's per-flow state every $(docv) milliseconds and replay the \
     latest snapshot after each --agent-crash restart (warm restart). 0 disables \
     (cold restarts)."
  in
  Arg.(value & opt float 0.0 & info [ "checkpoint-interval" ] ~docv:"MS" ~doc)

let build_overload ~shed_queue ~shed_watermark ~shed_budget ~shed_interval_ms =
  if shed_queue <= 0 then None
  else
    Some
      {
        Ccp_agent.Agent.queue_capacity = shed_queue;
        high_watermark =
          (if shed_watermark > 0 then shed_watermark else max 1 (shed_queue / 2));
        dispatch_budget = shed_budget;
        dispatch_interval = Time_ns.of_float_sec (shed_interval_ms /. 1e3);
      }

(* --- guard-envelope options (docs/safety.md) --- *)

let guard_min_cwnd =
  let doc = "Guard envelope: cwnd floor in segments." in
  Arg.(value & opt int 1 & info [ "guard-min-cwnd" ] ~docv:"SEGMENTS" ~doc)

let guard_max_rate =
  let doc = "Guard envelope: pacing-rate ceiling in Mbit/s." in
  Arg.(value & opt float 1e6 & info [ "guard-max-rate" ] ~docv:"MBPS" ~doc)

let guard_report_us =
  let doc = "Guard envelope: minimum interval between reports, in microseconds." in
  Arg.(value & opt float 10.0 & info [ "guard-report-interval" ] ~docv:"US" ~doc)

let guard_quarantine =
  let doc =
    "Arm quarantine: when a flow accumulates this many guard incidents its program is \
     cancelled and the flow falls back to native NewReno until a corrected install is \
     accepted. 0 disables (incidents are still counted)."
  in
  Arg.(value & opt int 0 & info [ "guard-quarantine" ] ~docv:"N" ~doc)

let build_guard ~guard_min_cwnd ~guard_max_rate ~guard_report_us ~guard_quarantine =
  {
    Ccp_datapath.Ccp_ext.default_guard with
    Ccp_datapath.Ccp_ext.min_cwnd_segments = guard_min_cwnd;
    max_rate_bytes_per_sec = guard_max_rate *. 1e6 /. 8.0;
    min_report_interval = Time_ns.of_float_sec (guard_report_us *. 1e-6);
    quarantine_after = guard_quarantine;
    quarantine_mode =
      (if guard_quarantine > 0 then
         Some (Ccp_datapath.Ccp_ext.Native Ccp_algorithms.Native_reno.create)
       else None);
  }

let parse_pair ~what spec =
  let num s =
    match float_of_string_opt (String.trim s) with
    | Some v -> v
    | None -> failwith (Printf.sprintf "%s: %S is not a number (in %S)" what s spec)
  in
  match String.split_on_char ':' spec with
  | [ a; b ] -> (num a, num b)
  | _ -> failwith (Printf.sprintf "%s: expected A:B, got %S" what spec)

let build_faults ~ipc_drop ~ipc_dup ~ipc_spike ~ipc_reorder ~agent_crash =
  let spike =
    Option.map
      (fun spec ->
        let probability, ms = parse_pair ~what:"--ipc-spike" spec in
        { Ccp_ipc.Fault_plan.probability; extra = Time_ns.of_float_sec (ms /. 1e3) })
      ipc_spike
  in
  let reorder =
    Option.map
      (fun spec ->
        let probability, ms = parse_pair ~what:"--ipc-reorder" spec in
        { Ccp_ipc.Fault_plan.probability; window = Time_ns.of_float_sec (ms /. 1e3) })
      ipc_reorder
  in
  let plan =
    Ccp_ipc.Fault_plan.make ~drop_probability:ipc_drop ~duplicate_probability:ipc_dup
      ?spike ?reorder ()
  in
  match agent_crash with
  | None -> plan
  | Some spec ->
    let at_s, restart_s = parse_pair ~what:"--agent-crash" spec in
    Ccp_ipc.Fault_plan.crash ~at:(Time_ns.of_float_sec at_s)
      ~restart:(Time_ns.of_float_sec restart_s) plan

let parse_flows spec =
  String.split_on_char ',' spec
  |> List.map (fun entry ->
         let entry = String.trim entry in
         let name, start_s =
           match String.index_opt entry '@' with
           | Some i ->
             ( String.sub entry 0 i,
               float_of_string (String.sub entry (i + 1) (String.length entry - i - 1)) )
           | None -> (entry, 0.0)
         in
         match List.assoc_opt name algorithms with
         | Some make -> Experiment.flow ~start_at:(Time_ns.of_float_sec start_s) (make ())
         | None -> failwith (Printf.sprintf "unknown algorithm %S (try: %s)" name algorithm_names))

let build_config ~rate_mbps ~rtt_ms ~duration_s ~buffer_bdp ~seed ~flows ~ecn_bdp =
  let rate_bps = rate_mbps *. 1e6 in
  let base_rtt = Time_ns.of_float_sec (rtt_ms /. 1e3) in
  let bdp = rate_bps *. Time_ns.to_float_sec base_rtt /. 8.0 in
  let buffer_bytes = max 3000 (int_of_float (buffer_bdp *. bdp)) in
  let base =
    Experiment.default_config ~rate_bps ~base_rtt ~duration:(Time_ns.of_float_sec duration_s)
  in
  {
    base with
    Experiment.seed;
    buffer_bytes;
    warmup = Time_ns.of_float_sec (duration_s /. 10.0);
    ecn_threshold_bytes =
      (if ecn_bdp > 0.0 then Some (int_of_float (ecn_bdp *. float_of_int buffer_bytes))
       else None);
    flows = parse_flows flows;
  }

let print_result (r : Experiment.result) =
  Printf.printf "utilization        %.1f%%\n" (100.0 *. r.Experiment.utilization);
  Printf.printf "median RTT         %s\n" (Time_ns.to_string r.Experiment.median_rtt);
  Printf.printf "p95 RTT            %s\n" (Time_ns.to_string r.Experiment.p95_rtt);
  Printf.printf "drops              %d\n" r.Experiment.drops;
  Printf.printf "ECN marks          %d\n" r.Experiment.ecn_marks;
  Printf.printf "Jain fairness      %.3f\n" r.Experiment.jain_index;
  List.iter
    (fun (f : Experiment.flow_result) ->
      Printf.printf
        "flow %d (%s): goodput %.2f Mbit/s, mean RTT %s, retx %d, RTOs %d, final cwnd %d\n"
        f.flow_id f.cc_name (f.goodput_bps /. 1e6) (Time_ns.to_string f.mean_rtt) f.retransmits
        f.timeouts f.final_cwnd)
    r.Experiment.flows;
  (match r.Experiment.agent_stats with
  | Some s ->
    Printf.printf
      "CCP agent: %d reports, %d urgents, %d installs, %d handler errors; IPC bytes %d up / %d down\n"
      s.Experiment.reports s.Experiment.urgents s.Experiment.installs s.Experiment.handler_errors
      s.Experiment.ipc_bytes_to_agent s.Experiment.ipc_bytes_to_datapath;
    let f = s.Experiment.ipc_faults in
    if
      s.Experiment.fallbacks > 0
      || f.Ccp_ipc.Channel.dropped + f.Ccp_ipc.Channel.duplicated + f.Ccp_ipc.Channel.delayed
         + f.Ccp_ipc.Channel.reordered + f.Ccp_ipc.Channel.partition_dropped
         > 0
    then
      Printf.printf
        "IPC faults: %d dropped, %d duplicated, %d delayed, %d reordered, %d lost to \
         partitions; %d fallback activations, %d probes\n"
        f.Ccp_ipc.Channel.dropped f.Ccp_ipc.Channel.duplicated f.Ccp_ipc.Channel.delayed
        f.Ccp_ipc.Channel.reordered f.Ccp_ipc.Channel.partition_dropped s.Experiment.fallbacks
        s.Experiment.fallback_probes;
    if
      s.Experiment.installs_refused > 0 || s.Experiment.quarantines > 0
      || s.Experiment.guard_incidents > 0
    then
      Printf.printf
        "datapath self-protection: %d installs admitted, %d refused; %d guard incidents, \
         %d quarantines\n"
        s.Experiment.installs_admitted s.Experiment.installs_refused
        s.Experiment.guard_incidents s.Experiment.quarantines;
    if s.Experiment.decode_failures > 0 then
      Printf.printf "IPC decode failures: %d\n" s.Experiment.decode_failures;
    if s.Experiment.reports_shed > 0 || s.Experiment.degradations > 0 then
      Printf.printf
        "agent overload: %d reports shed, %d flow degradations, max report wait %s\n"
        s.Experiment.reports_shed s.Experiment.degradations
        (Time_ns.to_string s.Experiment.max_queue_wait);
    if s.Experiment.checkpoints_taken > 0 || s.Experiment.warm_restores > 0 then
      Printf.printf "warm restart: %d checkpoints taken, %d flows restored warm\n"
        s.Experiment.checkpoints_taken s.Experiment.warm_restores
  | None -> ())

(* Flight-recorder sink for [run --trace]: write, then re-read and
   validate what landed on disk — the trace is only useful to downstream
   tooling if every line parses. *)
let csv_header = "time_s,flow,cwnd_bytes,rate_bps,srtt_us,inflight_bytes,delivery_rate_bps"

let write_trace ~path (obs : Ccp_obs.Obs.t) =
  let recorder = Ccp_obs.Obs.recorder_exn obs in
  let csv = Filename.check_suffix path ".csv" in
  let data =
    if csv then Ccp_obs.Recorder.flow_samples_csv recorder
    else Ccp_obs.Recorder.to_jsonl recorder
  in
  let oc = open_out path in
  output_string oc data;
  close_out oc;
  let ic = open_in path in
  let lines = ref 0 and bad = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       let ok =
         if csv then
           if !lines = 1 then String.equal line csv_header
           else List.length (String.split_on_char ',' line) = 7
         else
           match Ccp_obs.Json.parse line with
           | Ok (Ccp_obs.Json.Obj _) -> true
           | Ok _ | Error _ -> false
       in
       if not ok then incr bad
     done
   with End_of_file -> close_in ic);
  Printf.printf "trace: wrote %s (%d lines; %d events held, %d dropped by the ring)\n" path
    !lines
    (Ccp_obs.Recorder.length recorder)
    (Ccp_obs.Recorder.dropped recorder);
  if !bad > 0 then begin
    Printf.eprintf "ccp_sim: trace validation failed: %d malformed line(s) in %s\n%!" !bad path;
    exit 1
  end

let run_cmd =
  let action rate_mbps rtt_ms duration_s buffer_bdp seed flows ecn_bdp trace ipc_drop ipc_dup
      ipc_spike ipc_reorder agent_crash fallback_rtts guard_min_cwnd guard_max_rate
      guard_report_us guard_quarantine shed_queue shed_watermark shed_budget
      shed_interval_ms checkpoint_ms =
    let config =
      build_config ~rate_mbps ~rtt_ms ~duration_s ~buffer_bdp ~seed ~flows ~ecn_bdp
    in
    let agent_overload =
      build_overload ~shed_queue ~shed_watermark ~shed_budget ~shed_interval_ms
    in
    let checkpoint_interval =
      if checkpoint_ms > 0.0 then Some (Time_ns.of_float_sec (checkpoint_ms /. 1e3))
      else None
    in
    let faults =
      try build_faults ~ipc_drop ~ipc_dup ~ipc_spike ~ipc_reorder ~agent_crash
      with Invalid_argument msg | Failure msg ->
        Printf.eprintf "ccp_sim: %s\n%!" msg;
        exit Cmd.Exit.cli_error
    in
    let datapath =
      {
        config.Experiment.datapath with
        Ccp_datapath.Ccp_ext.guard =
          build_guard ~guard_min_cwnd ~guard_max_rate ~guard_report_us ~guard_quarantine;
      }
    in
    let datapath =
      if fallback_rtts <= 0.0 then datapath
      else
        {
          datapath with
          Ccp_datapath.Ccp_ext.fallback =
            Some
              (Ccp_datapath.Ccp_ext.native_fallback
                 ~after:(Time_ns.scale config.Experiment.base_rtt fallback_rtts)
                 Ccp_algorithms.Native_reno.create);
        }
    in
    let obs = Option.map (fun _ -> Ccp_obs.Obs.create ()) trace in
    (try
       print_result
         (Experiment.run
            {
              config with
              Experiment.faults;
              datapath;
              obs;
              agent_overload;
              checkpoint_interval;
            })
     with Invalid_argument msg ->
       Printf.eprintf "ccp_sim: %s\n%!" msg;
       exit Cmd.Exit.cli_error);
    (match (trace, obs) with
    | Some path, Some obs -> write_trace ~path obs
    | _ -> ())
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one dumbbell experiment.")
    Term.(
      const action $ rate_mbps $ rtt_ms $ duration_s $ buffer_bdp $ seed $ flows_arg $ ecn_bdp
      $ trace_file $ ipc_drop $ ipc_dup $ ipc_spike $ ipc_reorder $ agent_crash $ fallback_rtts
      $ guard_min_cwnd $ guard_max_rate $ guard_report_us $ guard_quarantine $ shed_queue
      $ shed_watermark $ shed_budget $ shed_interval_ms $ checkpoint_ms)

let csv_cmd =
  let series =
    let doc = "Trace series to dump (e.g. cwnd.0, throughput_mbps.1, queue_bytes, rtt_ms.0)." in
    Arg.(value & opt string "cwnd.0" & info [ "series" ] ~docv:"NAME" ~doc)
  in
  let action rate_mbps rtt_ms duration_s buffer_bdp seed flows ecn_bdp series =
    let config =
      build_config ~rate_mbps ~rtt_ms ~duration_s ~buffer_bdp ~seed ~flows ~ecn_bdp
    in
    let r = Experiment.run config in
    print_string (Report.series_csv r ~series)
  in
  Cmd.v
    (Cmd.info "csv" ~doc:"Run an experiment and print one trace series as CSV.")
    Term.(
      const action $ rate_mbps $ rtt_ms $ duration_s $ buffer_bdp $ seed $ flows_arg $ ecn_bdp
      $ series)

let simple name doc render =
  Cmd.v (Cmd.info name ~doc) Term.(const (fun () -> print_string (render ())) $ const ())

let fig2_cmd = simple "fig2" "Reproduce Figure 2 (IPC RTT CDFs)."
    (fun () -> Report.render_fig2 (Scenarios.Fig2.run ()))

let fig3_cmd = simple "fig3" "Reproduce Figure 3 (Cubic window dynamics)."
    (fun () -> Report.render_fig3 (Scenarios.Fig3.run ()))

let fig4_cmd = simple "fig4" "Reproduce Figure 4 (NewReno convergence)."
    (fun () -> Report.render_fig4 (Scenarios.Fig4.run ()))

let fig5_cmd = simple "fig5" "Reproduce Figure 5 (offload throughput)."
    (fun () -> Report.render_fig5 (Scenarios.Fig5.run ()))

let table1_cmd = simple "table1" "Render Table 1." (fun () -> Report.render_table1 ())

let batching_cmd = simple "batching" "Render the §2.3 batching-load table."
    (fun () -> Report.render_batching (Scenarios.Batching_load.table ()))

let ablations_cmd = simple "ablations" "Run the design ablations."
    (fun () ->
      Report.render_ablations
        ~interval:(Scenarios.Ablation.report_interval ())
        ~latency:(Scenarios.Ablation.ipc_latency ())
        ~urgent:(Scenarios.Ablation.urgent ())
        ~batching:(Scenarios.Ablation.batching_mode ()))

let degraded_cmd =
  let action seed =
    let c = Scenarios.Degraded.crash_restart ~seed () in
    let line label (r : Experiment.result) =
      let s = Option.get r.Experiment.agent_stats in
      Printf.printf "%-18s utilization %5.1f%%  median RTT %-10s fallbacks %d  probes %d\n"
        label
        (100.0 *. r.Experiment.utilization)
        (Time_ns.to_string r.Experiment.median_rtt)
        s.Experiment.fallbacks s.Experiment.fallback_probes
    in
    Printf.printf "Agent crash at 5 s, restart at 10 s (20 s run, CCP Reno):\n";
    line "clean" c.Scenarios.Degraded.clean;
    line "crash, no fallback" c.Scenarios.Degraded.without_fallback;
    line "crash + fallback" c.Scenarios.Degraded.with_fallback;
    Printf.printf "\nLossy IPC sweep (native-Reno fallback armed):\n";
    Printf.printf "%-8s %-12s %-12s %-10s %s\n" "drop" "utilization" "median RTT" "dropped"
      "fallbacks";
    List.iter
      (fun (p : Scenarios.Degraded.lossy_point) ->
        Printf.printf "%-8.2f %-12.3f %-12s %-10d %d\n" p.Scenarios.Degraded.drop_probability
          p.Scenarios.Degraded.utilization
          (Time_ns.to_string p.Scenarios.Degraded.median_rtt)
          p.Scenarios.Degraded.messages_dropped p.Scenarios.Degraded.fallbacks)
      (Scenarios.Degraded.lossy_ipc ~seed ())
  in
  Cmd.v
    (Cmd.info "degraded"
       ~doc:"Run the degraded-control-plane scenarios (agent crash, lossy IPC).")
    Term.(const action $ seed)

let hostile_cmd =
  let threshold =
    let doc = "Quarantine incident threshold." in
    Arg.(value & opt int 25 & info [ "threshold" ] ~docv:"N" ~doc)
  in
  let action seed threshold =
    Printf.printf
      "Hostile-program sweep (48 Mbit/s, 20 ms; quarantine to native Reno at %d incidents):\n"
      threshold;
    Printf.printf "%-16s %-8s %-9s %-9s %-11s %-11s %-10s %s\n" "program" "util" "admitted"
      "refused" "incidents" "quarantines" "recovered" "min cwnd";
    List.iter
      (fun (p : Scenarios.Hostile.point) ->
        Printf.printf "%-16s %-8.3f %-9d %-9d %-11d %-11d %-10b %d\n" p.Scenarios.Hostile.name
          p.Scenarios.Hostile.utilization p.Scenarios.Hostile.installs_admitted
          p.Scenarios.Hostile.installs_refused p.Scenarios.Hostile.guard_incidents
          p.Scenarios.Hostile.quarantines p.Scenarios.Hostile.recovered
          p.Scenarios.Hostile.min_cwnd_seen)
      (Scenarios.Hostile.sweep ~seed ~threshold ())
  in
  Cmd.v
    (Cmd.info "hostile"
       ~doc:
         "Run the adversarial-program suite against the datapath's admission control, guard \
          envelope, and quarantine.")
    Term.(const action $ seed $ threshold)

(* --- latency: Figure 2 measured end to end (docs/observability.md) --- *)

let slug label =
  let mapped =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | '0' .. '9' -> c
        | 'A' .. 'Z' -> Char.lowercase_ascii c
        | _ -> '_')
      label
  in
  String.concat "_" (List.filter (fun s -> s <> "") (String.split_on_char '_' mapped))

let write_chrome ~path (s : Scenarios.Reaction.series) =
  let obs = Option.get s.Scenarios.Reaction.result.Experiment.config.Experiment.obs in
  let recorder = Ccp_obs.Obs.recorder_exn obs in
  let json = Ccp_obs.Tracer.chrome_of_recorder recorder in
  let oc = open_out path in
  output_string oc (Ccp_obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  (* Re-read and validate: the file is only useful if Perfetto loads it. *)
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Ccp_obs.Json.parse data with
  | Error e ->
    Printf.eprintf "ccp_sim: chrome trace %s does not parse: %s\n%!" path e;
    exit 1
  | Ok parsed -> (
    match Ccp_obs.Tracer.validate_chrome parsed with
    | Error e ->
      Printf.eprintf "ccp_sim: chrome trace %s is malformed: %s\n%!" path e;
      exit 1
    | Ok n ->
      Printf.printf "trace: wrote %s (%d trace events, series %S)\n" path n
        s.Scenarios.Reaction.label)

(* Clean series sanity: the measured reaction p99 must sit inside
   [0.4, 1.1] x the calibrated model's RTT p99 — below it because a
   reaction is two independent one-way draws (whose sum concentrates
   under a single RTT draw's tail), and never meaningfully above. *)
let check_reaction_consistency series =
  let failures = ref 0 in
  List.iter
    (fun (s : Scenarios.Reaction.series) ->
      let clean =
        Ccp_ipc.Fault_plan.is_none
          s.Scenarios.Reaction.result.Experiment.config.Experiment.faults
      in
      if clean && Stats.Samples.count s.Scenarios.Reaction.reaction_us > 0 then begin
        let measured = Stats.Samples.percentile s.Scenarios.Reaction.reaction_us 99.0 in
        let model = s.Scenarios.Reaction.model_p99_us in
        let ok = measured >= 0.4 *. model && measured <= 1.1 *. model in
        Printf.printf "%-36s measured p99 %6.1f us vs model p99 %6.1f us  [%s]\n"
          s.Scenarios.Reaction.label measured model
          (if ok then "consistent" else "OUT OF BAND");
        if not ok then incr failures
      end)
    series;
  !failures

let reaction_rows series =
  List.concat_map
    (fun (s : Scenarios.Reaction.series) ->
      if Stats.Samples.count s.Scenarios.Reaction.reaction_us = 0 then []
      else begin
        let base = "reaction." ^ slug s.Scenarios.Reaction.label in
        let pct p = Stats.Samples.percentile s.Scenarios.Reaction.reaction_us p in
        let st = s.Scenarios.Reaction.spans in
        [
          { Ccp_obs.Metrics.name = base ^ ".p50_us"; value = pct 50.0; unit_ = "us" };
          { Ccp_obs.Metrics.name = base ^ ".p90_us"; value = pct 90.0; unit_ = "us" };
          { Ccp_obs.Metrics.name = base ^ ".p99_us"; value = pct 99.0; unit_ = "us" };
          {
            Ccp_obs.Metrics.name = base ^ ".actuated";
            value = float_of_int st.Ccp_obs.Tracer.actuated;
            unit_ = "spans";
          };
          {
            Ccp_obs.Metrics.name = base ^ ".orphaned";
            value = float_of_int st.Ccp_obs.Tracer.orphaned;
            unit_ = "spans";
          };
        ]
      end)
    series

let latency_cmd =
  let trace =
    let doc =
      "Write the first series' finalized spans as Chrome trace_event JSON to $(docv) \
       (load in chrome://tracing or Perfetto). The file is re-read and validated; a \
       malformed trace makes the command exit non-zero."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let bench_json =
    let doc =
      "Merge $(b,reaction.*) percentile and span-count rows into the BENCH.json-schema \
       file at $(docv) (created when absent)."
    in
    Arg.(value & opt (some string) None & info [ "bench-json" ] ~docv:"FILE" ~doc)
  in
  let action duration_s seed trace bench_json =
    let series =
      Scenarios.Reaction.run ~duration:(Time_ns.of_float_sec duration_s) ~seed ()
    in
    print_string (Report.render_reaction series);
    print_newline ();
    let failures = check_reaction_consistency series in
    (match trace with
    | Some path -> write_chrome ~path (List.hd series)
    | None -> ());
    (match bench_json with
    | Some path -> (
      match Ccp_obs.Metrics.merge_rows_file ~path (reaction_rows series) with
      | Ok n -> Printf.printf "bench-json: %s now holds %d rows\n" path n
      | Error e ->
        Printf.eprintf "ccp_sim: --bench-json: %s\n%!" e;
        exit 1)
    | None -> ());
    if failures > 0 then begin
      Printf.eprintf "ccp_sim: %d series measured p99 outside [0.4, 1.1] x model p99\n%!"
        failures;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "latency"
       ~doc:
         "Figure 2 measured end to end: run the control loop with the span tracer armed \
          and report reaction-latency CDFs under clean and degraded IPC.")
    Term.(const action $ duration_s $ seed $ trace $ bench_json)

(* --- robustness: measurement-noise matrix (docs/robustness.md) --- *)

let write_scorecard ~path (sc : Scenarios.Robustness.scorecard) =
  let oc = open_out path in
  output_string oc (Ccp_obs.Json.to_string (Scenarios.Robustness.to_json sc));
  output_char oc '\n';
  close_out oc;
  (* Re-read and validate what landed on disk, like --trace does. *)
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Ccp_obs.Json.parse data with
  | Error e ->
    Printf.eprintf "ccp_sim: scorecard %s does not parse: %s\n%!" path e;
    exit 1
  | Ok parsed -> (
    match Scenarios.Robustness.validate_scorecard parsed with
    | Error e ->
      Printf.eprintf "ccp_sim: scorecard %s is malformed: %s\n%!" path e;
      exit 1
    | Ok n -> Printf.printf "scorecard: wrote %s (%d cells)\n" path n)

let robustness_rows (sc : Scenarios.Robustness.scorecard) =
  let keys =
    List.sort_uniq compare
      (List.map
         (fun (c : Scenarios.Robustness.cell) -> (c.algo, c.perturb))
         sc.Scenarios.Robustness.cells)
  in
  List.concat_map
    (fun (algo, perturb) ->
      let cells =
        List.filter
          (fun (c : Scenarios.Robustness.cell) -> c.algo = algo && c.perturb = perturb)
          sc.Scenarios.Robustness.cells
      in
      let n = float_of_int (List.length cells) in
      let mean f = List.fold_left (fun acc c -> acc +. f c) 0.0 cells /. n in
      let base = Printf.sprintf "robustness.%s.%s" (slug algo) (slug perturb) in
      let row name value unit_ = { Ccp_obs.Metrics.name = base ^ "." ^ name; value; unit_ } in
      let rmses =
        List.filter_map
          (fun (c : Scenarios.Robustness.cell) -> c.cwnd_rmse_vs_baseline)
          cells
      in
      [
        row "utilization" (mean (fun c -> c.Scenarios.Robustness.utilization)) "fraction";
        row "jain" (mean (fun c -> c.Scenarios.Robustness.jain_index)) "index";
        row "median_rtt_inflation"
          (mean (fun c -> c.Scenarios.Robustness.median_rtt_inflation))
          "x";
        row "retransmit_rate" (mean (fun c -> c.Scenarios.Robustness.retransmit_rate)) "fraction";
      ]
      @
      match rmses with
      | [] -> []
      | _ ->
        [
          row "cwnd_rmse"
            (List.fold_left ( +. ) 0.0 rmses /. float_of_int (List.length rmses))
            "ratio";
        ])
    keys

let robustness_cmd =
  let algos =
    let doc =
      Printf.sprintf "Comma-separated algorithm subset (default all: %s)."
        (String.concat ", " Scenarios.Robustness.algorithm_names)
    in
    Arg.(value & opt string "" & info [ "algos" ] ~docv:"LIST" ~doc)
  in
  let perturbs =
    let doc =
      Printf.sprintf "Comma-separated perturbation subset (default all: %s)."
        (String.concat ", " Scenarios.Robustness.perturbation_names)
    in
    Arg.(value & opt string "" & info [ "perturb" ] ~docv:"LIST" ~doc)
  in
  let seeds =
    let doc = "Comma-separated seeds; each seed multiplies the matrix." in
    Arg.(value & opt string "42" & info [ "seeds" ] ~docv:"LIST" ~doc)
  in
  let rate_mbps =
    let doc = "Bottleneck rate in Mbit/s." in
    Arg.(value & opt float 48.0 & info [ "rate" ] ~docv:"MBPS" ~doc)
  in
  let duration_s =
    let doc = "Simulated duration per cell in seconds." in
    Arg.(value & opt float 10.0 & info [ "duration" ] ~docv:"S" ~doc)
  in
  let scorecard_file =
    let doc =
      "Write the scorecard as JSON to $(docv). The file is re-read and schema-validated; \
       a malformed scorecard makes the command exit non-zero."
    in
    Arg.(value & opt (some string) None & info [ "scorecard" ] ~docv:"FILE" ~doc)
  in
  let bench_json =
    let doc =
      "Merge $(b,robustness.*) per-(algorithm, perturbation) rows (averaged over seeds) \
       into the BENCH.json-schema file at $(docv) (created when absent)."
    in
    Arg.(value & opt (some string) None & info [ "bench-json" ] ~docv:"FILE" ~doc)
  in
  let action algos perturbs seeds rate_mbps rtt_ms duration_s scorecard_file bench_json =
    let split s = List.filter (fun x -> x <> "") (List.map String.trim (String.split_on_char ',' s)) in
    let opt_list s = match split s with [] -> None | l -> Some l in
    let seeds =
      match
        List.map
          (fun s ->
            match int_of_string_opt s with
            | Some n -> n
            | None ->
              Printf.eprintf "ccp_sim: --seeds: %S is not an integer\n%!" s;
              exit 1)
          (split seeds)
      with
      | [] -> [ 42 ]
      | l -> l
    in
    let sc =
      try
        Scenarios.Robustness.run ~rate_bps:(rate_mbps *. 1e6)
          ~base_rtt:(Time_ns.of_float_sec (rtt_ms /. 1e3))
          ~duration:(Time_ns.of_float_sec duration_s) ~seeds ?algos:(opt_list algos)
          ?perturbs:(opt_list perturbs) ()
      with Invalid_argument e ->
        Printf.eprintf "ccp_sim: %s\n%!" e;
        exit 1
    in
    print_string (Report.render_robustness sc);
    (match scorecard_file with Some path -> write_scorecard ~path sc | None -> ());
    match bench_json with
    | Some path -> (
      match Ccp_obs.Metrics.merge_rows_file ~path (robustness_rows sc) with
      | Ok n -> Printf.printf "bench-json: %s now holds %d rows\n" path n
      | Error e ->
        Printf.eprintf "ccp_sim: --bench-json: %s\n%!" e;
        exit 1)
    | None -> ()
  in
  Cmd.v
    (Cmd.info "robustness"
       ~doc:
         "Measurement-noise robustness matrix: perturbation plans x CCP algorithms, two \
          flows per cell with the guard envelope armed, reported as a schema-validated \
          scorecard.")
    Term.(
      const action $ algos $ perturbs $ seeds $ rate_mbps $ rtt_ms $ duration_s
      $ scorecard_file $ bench_json)

(* --- chaos: composed resilience scenario (docs/fault-injection.md) --- *)

let write_chaos_scorecard ~path (sc : Scenarios.Chaos.scorecard) =
  let oc = open_out path in
  output_string oc (Ccp_obs.Json.to_string (Scenarios.Chaos.to_json sc));
  output_char oc '\n';
  close_out oc;
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Ccp_obs.Json.parse data with
  | Error e ->
    Printf.eprintf "ccp_sim: scorecard %s does not parse: %s\n%!" path e;
    exit 1
  | Ok parsed -> (
    match Scenarios.Chaos.validate_scorecard parsed with
    | Error e ->
      Printf.eprintf "ccp_sim: scorecard %s is malformed: %s\n%!" path e;
      exit 1
    | Ok n -> Printf.printf "scorecard: wrote %s (%d cells)\n" path n)

(* Write-then-revalidate for the ccp-timeline/v1 document, the same
   discipline as the scorecards: the bytes on disk are re-read and
   re-checked against Ccp_obs.Timeline.validate before we claim
   success. *)
let write_timeline ~path (obs : Ccp_obs.Obs.t) =
  match Ccp_obs.Timeline.of_obs obs with
  | Error e ->
    Printf.eprintf "ccp_sim: --timeline: %s\n%!" e;
    exit 1
  | Ok doc -> (
    let oc = open_out path in
    output_string oc (Ccp_obs.Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    let ic = open_in_bin path in
    let data = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Ccp_obs.Json.parse data with
    | Error e ->
      Printf.eprintf "ccp_sim: timeline %s does not parse: %s\n%!" path e;
      exit 1
    | Ok parsed -> (
      match Ccp_obs.Timeline.validate parsed with
      | Error e ->
        Printf.eprintf "ccp_sim: timeline %s is malformed: %s\n%!" path e;
        exit 1
      | Ok n -> Printf.printf "timeline: wrote %s (%d windows)\n" path n))

let chaos_rows (sc : Scenarios.Chaos.scorecard) =
  let modes =
    List.sort_uniq compare
      (List.map (fun (c : Scenarios.Chaos.cell) -> c.mode) sc.Scenarios.Chaos.cells)
  in
  List.concat_map
    (fun mode ->
      let cells =
        List.filter (fun (c : Scenarios.Chaos.cell) -> c.mode = mode) sc.Scenarios.Chaos.cells
      in
      let n = float_of_int (List.length cells) in
      let mean f = List.fold_left (fun acc c -> acc +. f c) 0.0 cells /. n in
      let base = Printf.sprintf "chaos.%s" mode in
      let row name value unit_ = { Ccp_obs.Metrics.name = base ^ "." ^ name; value; unit_ } in
      let recoveries =
        List.filter_map (fun (c : Scenarios.Chaos.cell) -> c.mean_recovery_rtts) cells
      in
      [
        row "utilization" (mean (fun c -> c.Scenarios.Chaos.utilization)) "fraction";
        row "reports_shed" (mean (fun c -> float_of_int c.Scenarios.Chaos.reports_shed)) "msgs";
        row "max_queue_wait" (mean (fun c -> c.Scenarios.Chaos.max_queue_wait_rtts)) "rtts";
      ]
      @
      match recoveries with
      | [] -> []
      | _ ->
        [
          row "recovery"
            (List.fold_left ( +. ) 0.0 recoveries /. float_of_int (List.length recoveries))
            "rtts";
        ])
    modes

let chaos_cmd =
  let seeds =
    let doc = "Comma-separated seeds; each seed runs a cold and a warm cell." in
    Arg.(value & opt string "42" & info [ "seeds" ] ~docv:"LIST" ~doc)
  in
  let rate_mbps =
    let doc = "Bottleneck rate in Mbit/s." in
    Arg.(value & opt float 96.0 & info [ "rate" ] ~docv:"MBPS" ~doc)
  in
  let duration_s =
    let doc = "Simulated duration per cell in seconds." in
    Arg.(value & opt float 12.0 & info [ "duration" ] ~docv:"S" ~doc)
  in
  let scorecard_file =
    let doc =
      "Write the scorecard as JSON to $(docv). The file is re-read and schema-validated; \
       a malformed scorecard makes the command exit non-zero."
    in
    Arg.(value & opt (some string) None & info [ "scorecard" ] ~docv:"FILE" ~doc)
  in
  let bench_json =
    let doc =
      "Merge $(b,chaos.*) per-mode rows (averaged over seeds) into the BENCH.json-schema \
       file at $(docv) (created when absent)."
    in
    Arg.(value & opt (some string) None & info [ "bench-json" ] ~docv:"FILE" ~doc)
  in
  let timeline_file =
    let doc =
      "Arm the telemetry bundle (windowed time-series, Top-K flow sketches, SLO \
       engine) and write the first cell's $(b,ccp-timeline/v1) document to $(docv). \
       The file is re-read and schema-validated; a malformed timeline makes the \
       command exit non-zero. Also embeds a $(b,health) section per scorecard cell."
    in
    Arg.(value & opt (some string) None & info [ "timeline" ] ~docv:"FILE" ~doc)
  in
  let action seeds rate_mbps rtt_ms duration_s scorecard_file bench_json timeline_file =
    let seeds =
      match
        List.filter_map
          (fun s ->
            let s = String.trim s in
            if s = "" then None
            else
              match int_of_string_opt s with
              | Some n -> Some n
              | None ->
                Printf.eprintf "ccp_sim: --seeds: %S is not an integer\n%!" s;
                exit 1)
          (String.split_on_char ',' seeds)
      with
      | [] -> [ 42 ]
      | l -> l
    in
    let sc =
      Scenarios.Chaos.run ~rate_bps:(rate_mbps *. 1e6)
        ~base_rtt:(Time_ns.of_float_sec (rtt_ms /. 1e3))
        ~duration:(Time_ns.of_float_sec duration_s) ~seeds
        ~with_telemetry:(timeline_file <> None) ()
    in
    Printf.printf
      "Chaos: %d CCP-Reno flows, %.0f Mbit/s, IPC faults + RTT jitter + ~4x agent \
       overload; agent crash %s..%s\n"
      Scenarios.Chaos.flow_count (rate_mbps)
      (Time_ns.to_string sc.Scenarios.Chaos.crash_from)
      (Time_ns.to_string sc.Scenarios.Chaos.crash_until);
    Printf.printf "%-6s %-6s %-8s %-8s %-10s %-10s %-12s %s\n" "mode" "seed" "util" "shed"
      "max-wait" "restores" "recovery" "per-flow (RTTs)";
    List.iter
      (fun (c : Scenarios.Chaos.cell) ->
        Printf.printf "%-6s %-6d %-8.3f %-8d %-10.2f %-10d %-12s %s\n" c.Scenarios.Chaos.mode
          c.Scenarios.Chaos.seed c.Scenarios.Chaos.utilization c.Scenarios.Chaos.reports_shed
          c.Scenarios.Chaos.max_queue_wait_rtts c.Scenarios.Chaos.warm_restores
          (match c.Scenarios.Chaos.mean_recovery_rtts with
          | Some v -> Printf.sprintf "%.1f" v
          | None -> "never")
          (String.concat " "
             (List.map
                (fun (r : Scenarios.Chaos.recovery) ->
                  match r.Scenarios.Chaos.recovery_rtts with
                  | Some v -> Printf.sprintf "%.1f" v
                  | None -> "-")
                c.Scenarios.Chaos.recoveries)))
      sc.Scenarios.Chaos.cells;
    (match scorecard_file with Some path -> write_chaos_scorecard ~path sc | None -> ());
    (match timeline_file with
    | Some path -> (
      match sc.Scenarios.Chaos.cells with
      | { Scenarios.Chaos.telemetry = Some obs; _ } :: _ -> write_timeline ~path obs
      | _ ->
        Printf.eprintf "ccp_sim: --timeline: no telemetry bundle on the first cell\n%!";
        exit 1)
    | None -> ());
    match bench_json with
    | Some path -> (
      match Ccp_obs.Metrics.merge_rows_file ~path (chaos_rows sc) with
      | Ok n -> Printf.printf "bench-json: %s now holds %d rows\n" path n
      | Error e ->
        Printf.eprintf "ccp_sim: --bench-json: %s\n%!" e;
        exit 1)
    | None -> ()
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Composed resilience scenario: IPC faults x measurement noise x agent overload x \
          crash/restart, run cold and warm (checkpointed) per seed, reported as a \
          schema-validated scorecard.")
    Term.(
      const action $ seeds $ rate_mbps $ rtt_ms $ duration_s $ scorecard_file $ bench_json
      $ timeline_file)

(* --- top: textual live view of the control-loop telemetry --- *)

let top_cmd =
  let top_seed =
    let doc = "Seed for the chaos composition driven under the live view." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let top_rate =
    let doc = "Bottleneck rate in Mbit/s." in
    Arg.(value & opt float 96.0 & info [ "rate" ] ~docv:"MBPS" ~doc)
  in
  let top_duration =
    let doc = "Simulated duration per cell in seconds." in
    Arg.(value & opt float 12.0 & info [ "duration" ] ~docv:"S" ~doc)
  in
  let action seed rate_mbps rtt_ms duration_s =
    let delta name w =
      match Ccp_obs.Timeseries.point w name with
      | Some (Ccp_obs.Timeseries.Counter_point { delta; _ }) -> delta
      | _ -> 0
    in
    let p99_us name w =
      match Ccp_obs.Timeseries.point w name with
      | Some (Ccp_obs.Timeseries.Hist_point { p99; count; _ }) when count > 0 ->
        Printf.sprintf "%.0f" p99
      | _ -> "-"
    in
    let current = ref None in
    let hook ~mode ~seed obs (w : Ccp_obs.Timeseries.window) =
      (match !current with
      | Some o when o == obs -> ()
      | _ ->
        current := Some obs;
        Printf.printf "\n== %s cell, seed %d ==\n" mode seed;
        Printf.printf "%-4s %-12s %-8s %-6s %-8s %-7s %-10s %s\n" "w" "t(s)" "reports"
          "shed" "orphans" "fallbk" "p99-us" "alerts");
      let span =
        Printf.sprintf "%.2f-%.2f"
          (float_of_int w.Ccp_obs.Timeseries.t_start /. 1e9)
          (float_of_int w.Ccp_obs.Timeseries.t_end /. 1e9)
      in
      let alerts =
        match obs.Ccp_obs.Obs.health with
        | None -> ""
        | Some h ->
          String.concat " "
            (List.filter_map
               (fun (tr : Ccp_obs.Health.transition) ->
                 if tr.Ccp_obs.Health.tr_window = w.Ccp_obs.Timeseries.index then
                   Some
                     (Printf.sprintf "%s:%s(burn %.0f/%.0f)" tr.Ccp_obs.Health.tr_slo
                        (Ccp_obs.Health.state_to_string tr.Ccp_obs.Health.tr_to)
                        tr.Ccp_obs.Health.tr_burn_short tr.Ccp_obs.Health.tr_burn_long)
                 else None)
               (Ccp_obs.Health.transitions h))
      in
      Printf.printf "%-4d %-12s %-8d %-6d %-8d %-7d %-10s %s\n"
        w.Ccp_obs.Timeseries.index span
        (delta "datapath.reports_sent" w)
        (delta "agent.reports_shed" w)
        (delta "trace.spans_orphaned" w)
        (delta "datapath.fallbacks" w)
        (p99_us "trace.reaction_us" w)
        alerts
    in
    let sc =
      Scenarios.Chaos.run ~rate_bps:(rate_mbps *. 1e6)
        ~base_rtt:(Time_ns.of_float_sec (rtt_ms /. 1e3))
        ~duration:(Time_ns.of_float_sec duration_s) ~seeds:[ seed ]
        ~with_telemetry:true ~window_hook:hook ()
    in
    (* End-of-run rollup per cell: heavy hitters and SLO verdicts. *)
    List.iter
      (fun (c : Scenarios.Chaos.cell) ->
        match c.Scenarios.Chaos.telemetry with
        | None -> ()
        | Some obs ->
          Printf.printf "\n== %s cell, seed %d: rollup ==\n" c.Scenarios.Chaos.mode
            c.Scenarios.Chaos.seed;
          (match obs.Ccp_obs.Obs.topk with
          | None -> ()
          | Some tk ->
            List.iter
              (fun s ->
                let entries = Ccp_obs.Topk.entries s in
                if entries <> [] then begin
                  let top5 =
                    List.filteri (fun i _ -> i < 5) entries
                    |> List.map (fun (e : Ccp_obs.Topk.entry) ->
                           Printf.sprintf "flow %d: %d (+-%d)" e.Ccp_obs.Topk.key
                             e.Ccp_obs.Topk.count e.Ccp_obs.Topk.err)
                  in
                  Printf.printf "  %-20s %s\n" (Ccp_obs.Topk.name s)
                    (String.concat ", " top5)
                end)
              (Ccp_obs.Topk.sketches tk));
          (match obs.Ccp_obs.Obs.health with
          | None -> ()
          | Some h ->
            List.iter
              (fun (v : Ccp_obs.Health.verdict) ->
                Printf.printf "  slo %-20s %-4s bad %.4f vs objective %.4f, fired %d\n"
                  v.Ccp_obs.Health.v_slo
                  (if v.Ccp_obs.Health.v_pass then "ok" else "FAIL")
                  v.Ccp_obs.Health.v_bad_fraction v.Ccp_obs.Health.v_objective
                  v.Ccp_obs.Health.v_fired)
              (Ccp_obs.Health.verdicts h)))
      sc.Scenarios.Chaos.cells
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Textual live view of the control-loop telemetry: drives the chaos composition \
          with the bundle armed and prints one row per closed window (report/shed/orphan \
          deltas, actuation p99, burn-rate alert transitions) as the simulation runs, \
          then a per-cell rollup of heavy-hitter flows and SLO verdicts.")
    Term.(const action $ top_seed $ top_rate $ rtt_ms $ top_duration)

(* --- incast: flow-count scale-out family (docs/scale.md) --- *)

let write_incast_scorecard ~path (sc : Scenarios.Incast.scorecard) =
  let oc = open_out path in
  output_string oc (Ccp_obs.Json.to_string (Scenarios.Incast.to_json sc));
  output_char oc '\n';
  close_out oc;
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Ccp_obs.Json.parse data with
  | Error e ->
    Printf.eprintf "ccp_sim: scorecard %s does not parse: %s\n%!" path e;
    exit 1
  | Ok parsed -> (
    match Scenarios.Incast.validate_scorecard parsed with
    | Error e ->
      Printf.eprintf "ccp_sim: scorecard %s is malformed: %s\n%!" path e;
      exit 1
    | Ok n -> Printf.printf "scorecard: wrote %s (%d cells)\n" path n)

let incast_rows (sc : Scenarios.Incast.scorecard) =
  let groups =
    List.sort_uniq compare
      (List.map
         (fun (c : Scenarios.Incast.cell) -> (c.algo, c.n))
         sc.Scenarios.Incast.cells)
  in
  List.concat_map
    (fun (algo, n) ->
      let cells =
        List.filter
          (fun (c : Scenarios.Incast.cell) -> c.algo = algo && c.n = n)
          sc.Scenarios.Incast.cells
      in
      let k = float_of_int (List.length cells) in
      let mean f = List.fold_left (fun acc c -> acc +. f c) 0.0 cells /. k in
      let base = Printf.sprintf "incast.%s.n%d" algo n in
      let row name value unit_ = { Ccp_obs.Metrics.name = base ^ "." ^ name; value; unit_ } in
      [
        row "utilization" (mean (fun c -> c.Scenarios.Incast.utilization)) "fraction";
        row "p99_queue_delay" (mean (fun c -> c.Scenarios.Incast.p99_queue_delay_ms)) "ms";
        row "reports_per_frame"
          (mean (fun (c : Scenarios.Incast.cell) ->
               if c.wire_messages = 0 then 0.0
               else float_of_int c.reports /. float_of_int c.wire_messages))
          "msgs";
      ])
    groups

let incast_cmd =
  let ns =
    let doc = "Comma-separated flow counts (fan-in degrees)." in
    Arg.(value & opt string "16,64,256" & info [ "n"; "flows" ] ~docv:"LIST" ~doc)
  in
  let arrivals =
    let doc = "Comma-separated arrival patterns: synchronized, staggered." in
    Arg.(value & opt string "synchronized,staggered" & info [ "arrivals" ] ~docv:"LIST" ~doc)
  in
  let algos =
    let doc =
      Printf.sprintf "Comma-separated algorithm subset (default all: %s)."
        (String.concat ", " Scenarios.Incast.algorithm_names)
    in
    Arg.(value & opt string "" & info [ "algos" ] ~docv:"LIST" ~doc)
  in
  let seeds =
    let doc = "Comma-separated seeds; each seed multiplies the matrix." in
    Arg.(value & opt string "42" & info [ "seeds" ] ~docv:"LIST" ~doc)
  in
  let rate_mbps =
    let doc = "Bottleneck rate in Mbit/s." in
    Arg.(value & opt float 96.0 & info [ "rate" ] ~docv:"MBPS" ~doc)
  in
  let incast_rtt_ms =
    let doc = "Base RTT in milliseconds." in
    Arg.(value & opt float 10.0 & info [ "rtt" ] ~docv:"MS" ~doc)
  in
  let duration_s =
    let doc = "Simulated duration per cell in seconds." in
    Arg.(value & opt float 1.0 & info [ "duration" ] ~docv:"S" ~doc)
  in
  let no_batching =
    let doc =
      "Disable cross-flow report batching on the IPC channel (one wire frame per \
       report, the original framing)."
    in
    Arg.(value & flag & info [ "no-batching" ] ~doc)
  in
  let scorecard_file =
    let doc =
      "Write the scorecard as JSON to $(docv). The file is re-read and schema-validated; \
       a malformed scorecard makes the command exit non-zero."
    in
    Arg.(value & opt (some string) None & info [ "scorecard" ] ~docv:"FILE" ~doc)
  in
  let bench_json =
    let doc =
      "Merge $(b,incast.*) per-(algorithm, N) rows (averaged over seeds and arrivals) \
       into the BENCH.json-schema file at $(docv) (created when absent)."
    in
    Arg.(value & opt (some string) None & info [ "bench-json" ] ~docv:"FILE" ~doc)
  in
  let timeline_file =
    let doc =
      "Arm the telemetry bundle (Top-K flow sketches at k=64, windowed time-series, \
       SLO engine) and write the first cell's $(b,ccp-timeline/v1) document to \
       $(docv); re-read and schema-validated before the command exits zero."
    in
    Arg.(value & opt (some string) None & info [ "timeline" ] ~docv:"FILE" ~doc)
  in
  let action ns arrivals algos seeds rate_mbps rtt_ms duration_s no_batching scorecard_file
      bench_json timeline_file =
    let split s =
      List.filter (fun x -> x <> "") (List.map String.trim (String.split_on_char ',' s))
    in
    let ints flag s =
      List.map
        (fun x ->
          match int_of_string_opt x with
          | Some n -> n
          | None ->
            Printf.eprintf "ccp_sim: %s: %S is not an integer\n%!" flag x;
            exit 1)
        (split s)
    in
    let ns = match ints "--n" ns with [] -> [ 16; 64; 256 ] | l -> l in
    let seeds = match ints "--seeds" seeds with [] -> [ 42 ] | l -> l in
    let sc =
      try
        Scenarios.Incast.run ~rate_bps:(rate_mbps *. 1e6)
          ~base_rtt:(Time_ns.of_float_sec (rtt_ms /. 1e3))
          ~duration:(Time_ns.of_float_sec duration_s) ~ns
          ~arrivals:(List.map Scenarios.Incast.arrival_of_string (split arrivals))
          ?algos:(match split algos with [] -> None | l -> Some l)
          ~seeds ~batching:(not no_batching)
          ~with_telemetry:(timeline_file <> None) ()
      with Invalid_argument e ->
        Printf.eprintf "ccp_sim: %s\n%!" e;
        exit 1
    in
    Printf.printf
      "Incast: %.0f Mbit/s, %.1f ms base RTT, buffer BDP/4, report batching %s\n"
      rate_mbps rtt_ms
      (if no_batching then "off" else "on");
    Printf.printf "%-6s %-14s %-14s %-6s %-8s %-8s %-10s %-8s %-9s %-8s %-8s %s\n" "n"
      "arrival" "algo" "seed" "util" "jain" "p99-q(ms)" "retx" "reports" "frames" "batches"
      "pool-rej";
    List.iter
      (fun (c : Scenarios.Incast.cell) ->
        Printf.printf "%-6d %-14s %-14s %-6d %-8.3f %-8.3f %-10.2f %-8.4f %-9d %-8d %-8d %d\n"
          c.Scenarios.Incast.n
          (Scenarios.Incast.arrival_to_string c.Scenarios.Incast.arrival)
          c.Scenarios.Incast.algo c.Scenarios.Incast.seed c.Scenarios.Incast.utilization
          c.Scenarios.Incast.jain_index c.Scenarios.Incast.p99_queue_delay_ms
          c.Scenarios.Incast.retransmit_rate c.Scenarios.Incast.reports
          c.Scenarios.Incast.wire_messages c.Scenarios.Incast.batches
          c.Scenarios.Incast.pool_rejections)
      sc.Scenarios.Incast.cells;
    (match scorecard_file with Some path -> write_incast_scorecard ~path sc | None -> ());
    (match timeline_file with
    | Some path -> (
      match sc.Scenarios.Incast.cells with
      | { Scenarios.Incast.telemetry = Some obs; _ } :: _ -> write_timeline ~path obs
      | _ ->
        Printf.eprintf "ccp_sim: --timeline: no telemetry bundle on the first cell\n%!";
        exit 1)
    | None -> ());
    match bench_json with
    | Some path -> (
      match Ccp_obs.Metrics.merge_rows_file ~path (incast_rows sc) with
      | Ok n -> Printf.printf "bench-json: %s now holds %d rows\n" path n
      | Error e ->
        Printf.eprintf "ccp_sim: --bench-json: %s\n%!" e;
        exit 1)
    | None -> ()
  in
  Cmd.v
    (Cmd.info "incast"
       ~doc:
         "Flow-count scale-out family: N synchronized or staggered CCP senders into one \
          shallow-buffered bottleneck, slot-pooled agent registry and batched reports \
          armed, reported as a schema-validated scorecard.")
    Term.(
      const action $ ns $ arrivals $ algos $ seeds $ rate_mbps $ incast_rtt_ms $ duration_s
      $ no_batching $ scorecard_file $ bench_json $ timeline_file)

let sweep_cmd = simple "sweep" "CCP vs native Reno across a grid of operating points."
    (fun () ->
      Sweep.render
        (Sweep.run ~native:Ccp_algorithms.Native_reno.create
           ~ccp:(Ccp_algorithms.Ccp_reno.create ()) Sweep.default_grid))

let main =
  Cmd.group
    (Cmd.info "ccp_sim" ~version:"1.0.0"
       ~doc:"Congestion-control-plane reproduction (HotNets 2017).")
    [
      run_cmd; csv_cmd; fig2_cmd; fig3_cmd; fig4_cmd; fig5_cmd; table1_cmd; batching_cmd;
      ablations_cmd; sweep_cmd; degraded_cmd; hostile_cmd; latency_cmd; robustness_cmd;
      chaos_cmd; incast_cmd; top_cmd;
    ]

let () = exit (Cmd.eval main)
