(* ipc_rtt: measure real IPC round-trip times on this machine.

   The paper's Figure 2 measures Netlink (kernel <-> user space) and Unix
   domain socket RTTs. A kernel module is out of reach here, but the Unix
   domain socket measurement — and a pipe-pair baseline — run for real:
   a child process echoes one byte back to the parent over the chosen
   transport, and the parent records each ping-pong's wall-clock time.
   These numbers ground the calibrated log-normal models in
   Ccp_ipc.Latency_model. *)

open Cmdliner

let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

(* One echo server on [rx]/[tx]; exits when the socket closes. *)
let child_loop rx tx =
  let buf = Bytes.create 1 in
  let rec loop () =
    match Unix.read rx buf 0 1 with
    | 0 -> ()
    | _ ->
      ignore (Unix.write tx buf 0 1);
      loop ()
    | exception Unix.Unix_error (Unix.EPIPE, _, _) -> ()
  in
  loop ()

let close_all fds = List.iter Unix.close (List.sort_uniq compare fds)

let measure ~make_channel ~rounds ~warmup =
  let (parent_rx, parent_tx), (child_rx, child_tx) = make_channel () in
  match Unix.fork () with
  | 0 ->
    (* Child: close parent ends, echo until EOF. *)
    close_all [ parent_rx; parent_tx ];
    child_loop child_rx child_tx;
    Unix._exit 0
  | pid ->
    close_all [ child_rx; child_tx ];
    let buf = Bytes.make 1 'x' in
    let samples = Array.make rounds 0.0 in
    for i = 1 - warmup to rounds do
      let start = now_ns () in
      ignore (Unix.write parent_tx buf 0 1);
      ignore (Unix.read parent_rx buf 0 1);
      let elapsed = now_ns () - start in
      if i >= 1 then samples.(i - 1) <- float_of_int elapsed /. 1e3
    done;
    close_all [ parent_rx; parent_tx ];
    ignore (Unix.waitpid [] pid);
    Array.sort Float.compare samples;
    samples

let unix_socket_channel () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  ((a, a), (b, b))

let pipe_channel () =
  let to_child_rx, to_child_tx = Unix.pipe () in
  let to_parent_rx, to_parent_tx = Unix.pipe () in
  ((to_parent_rx, to_child_tx), (to_child_rx, to_parent_tx))

let report name samples =
  Printf.printf "%-22s n=%d  p50=%.1fus  p90=%.1fus  p99=%.1fus  max=%.1fus\n" name
    (Array.length samples) (percentile samples 50.0) (percentile samples 90.0)
    (percentile samples 99.0)
    samples.(Array.length samples - 1)

(* BENCH.json-schema rows for one transport's sorted samples. *)
let bench_rows slug samples =
  let row suffix value =
    { Ccp_obs.Metrics.name = Printf.sprintf "ipc_rtt.%s.%s" slug suffix; value; unit_ = "us" }
  in
  [
    row "p50_us" (percentile samples 50.0);
    row "p90_us" (percentile samples 90.0);
    row "p99_us" (percentile samples 99.0);
    row "max_us" samples.(Array.length samples - 1);
  ]

let run rounds bench_json =
  Printf.printf
    "Real IPC ping-pong round-trip times on this host (cf. Figure 2; paper p99s: netlink \
     idle 48us, unix idle 80us)\n";
  let socket = measure ~make_channel:unix_socket_channel ~rounds ~warmup:1000 in
  report "unix domain socket" socket;
  let pipe = measure ~make_channel:pipe_channel ~rounds ~warmup:1000 in
  report "pipe pair" pipe;
  match bench_json with
  | None -> ()
  | Some path -> (
    match
      Ccp_obs.Metrics.merge_rows_file ~path
        (bench_rows "unix_socket" socket @ bench_rows "pipe" pipe)
    with
    | Ok n -> Printf.printf "bench-json: %s now holds %d rows\n" path n
    | Error e ->
      Printf.eprintf "ipc_rtt: --bench-json: %s\n%!" e;
      exit 1)

let rounds =
  let doc = "Number of measured ping-pongs per transport." in
  Arg.(value & opt int 60_000 & info [ "rounds" ] ~docv:"N" ~doc)

let bench_json =
  let doc =
    "Merge $(b,ipc_rtt.*) percentile rows into the BENCH.json-schema file at $(docv) \
     (created when absent), alongside the simulator's bench rows."
  in
  Arg.(value & opt (some string) None & info [ "bench-json" ] ~docv:"FILE" ~doc)

let cmd =
  Cmd.v
    (Cmd.info "ipc_rtt" ~version:"1.0.0" ~doc:"Measure real IPC round-trip latency.")
    Term.(const run $ rounds $ bench_json)

let () = exit (Cmd.eval cmd)
