#!/bin/sh
# CI entry point: build everything and run the full test suite with the
# fixed property-test seed, so results are reproducible run to run.
#
# For soak testing, set SOAK_SEED (or export CCP_PROP_SEED directly) to
# rerun the randomized suites — property tests, fault-plan invariants —
# under a fresh seed after the deterministic pass:
#
#   SOAK_SEED=$(date +%s) sh bin/ci.sh
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
dune build @all

echo "== test (fixed seed) =="
dune runtest --force

echo "== fuzz smoke (fixed seed) =="
dune exec bin/fuzz_smoke.exe -- 500

echo "== bench smoke =="
# Exercises the bechamel sections (including the compiled-vs-interpreted
# per-ACK comparison) end to end; numbers land in BENCH_pr3.json but are
# not gated here — see docs/perf.md for the expected band.
QUICK=1 dune exec bench/main.exe -- micro perack

if [ -n "${SOAK_SEED:-}" ]; then
  echo "== soak (CCP_PROP_SEED=$SOAK_SEED) =="
  CCP_PROP_SEED="$SOAK_SEED" dune exec test/main.exe -- test -e
  CCP_PROP_SEED="$SOAK_SEED" dune exec bin/fuzz_smoke.exe -- 500
fi
