#!/bin/sh
# CI entry point: build everything and run the full test suite with the
# fixed property-test seed, so results are reproducible run to run.
#
# For soak testing, set SOAK_SEED (or export CCP_PROP_SEED directly) to
# rerun the randomized suites — property tests, fault-plan invariants —
# under a fresh seed after the deterministic pass:
#
#   SOAK_SEED=$(date +%s) sh bin/ci.sh
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
dune build @all

echo "== test (fixed seed) =="
dune runtest --force

echo "== fuzz smoke (fixed seed) =="
dune exec bin/fuzz_smoke.exe -- 500

echo "== bench smoke =="
# Exercises the bechamel sections (compiled-vs-interpreted per-ACK,
# observability and tracing overhead) end to end; numbers land in
# BENCH.json ({name,value,unit} rows, schema-checked by the writer
# itself). Timings are not gated here — see docs/perf.md for the
# expected band — but the obs section Gc-asserts the obs-off per-ACK
# path at 0 minor words and the tracing section bounds the span
# lifecycle's float-boxing words.
QUICK=1 dune exec bench/main.exe -- micro perack obs tracing telemetry

echo "== obs smoke =="
# The flight recorder end to end: a short traced run whose JSONL the
# driver re-parses after writing (a malformed line exits non-zero), plus
# the same through the CSV sink. The metrics-off zero-allocation Gc
# assertion runs as part of the suite above (obs: "per-ACK path
# allocation-free with obs off").
obs_tmp="$(mktemp -d)"
dune exec bin/ccp_sim.exe -- run --rate 24 --duration 3 --flows ccp-reno \
  --trace "$obs_tmp/trace.jsonl" > /dev/null
dune exec bin/ccp_sim.exe -- run --rate 24 --duration 3 --flows ccp-reno,reno@1 \
  --trace "$obs_tmp/trace.csv" > /dev/null
test -s "$obs_tmp/trace.jsonl" && test -s "$obs_tmp/trace.csv"
rm -rf "$obs_tmp"

echo "== trace smoke =="
# The span tracer end to end: the Figure-2 reaction-latency scenario with
# a Chrome trace_event export (re-parsed and re-validated by the driver
# after writing) and reaction.* percentile rows merged into BENCH.json.
# The driver exits non-zero if a clean series' measured p99 falls outside
# the calibrated latency model's band.
trace_tmp="$(mktemp -d)"
dune exec bin/ccp_sim.exe -- latency --duration 4 \
  --trace "$trace_tmp/chrome.json" --bench-json BENCH.json > /dev/null
test -s "$trace_tmp/chrome.json"
grep -q '"reaction\.' BENCH.json
rm -rf "$trace_tmp"

echo "== robustness smoke =="
# The measurement-noise matrix end to end (docs/robustness.md): a tiny
# algorithms x perturbations run through the CLI, whose scorecard JSON
# the driver re-reads and schema-validates after writing (a malformed or
# out-of-range scorecard exits non-zero), with robustness.* rows merged
# into BENCH.json. The golden byte-frozen scorecard and the
# perturbed-ACK zero-allocation Gc assertion on the obs-off per-ACK fold
# path run in the suite above (robustness: "golden scorecard",
# "fold path stays allocation-free under perturbed ACKs").
rob_tmp="$(mktemp -d)"
dune exec bin/ccp_sim.exe -- robustness --algos ccp-vegas \
  --perturb baseline,combined --duration 2 --rate 24 \
  --scorecard "$rob_tmp/scorecard.json" --bench-json BENCH.json > /dev/null
test -s "$rob_tmp/scorecard.json"
grep -q '"robustness\.' BENCH.json
rm -rf "$rob_tmp"

echo "== chaos smoke =="
# Agent-side resilience end to end (docs/safety.md, docs/fault-injection
# .md): IPC faults x measurement noise x ~4x agent overload x agent
# crash, run cold and warm through the CLI. The driver re-reads and
# schema-validates the scorecard JSON after writing (a malformed or
# out-of-range scorecard exits non-zero) and merges chaos.* rows into
# BENCH.json. The byte-frozen seed-42 scorecard and the recovery/
# starvation/utilization envelopes run in the suite above (chaos.*).
chaos_tmp="$(mktemp -d)"
dune exec bin/ccp_sim.exe -- chaos --duration 6 \
  --scorecard "$chaos_tmp/scorecard.json" --bench-json BENCH.json > /dev/null
test -s "$chaos_tmp/scorecard.json"
grep -q '"chaos\.' BENCH.json
rm -rf "$chaos_tmp"

echo "== health smoke =="
# The control-loop SLO engine end to end (docs/observability.md): the
# seed-42 chaos composition with the telemetry bundle armed, exported as
# a ccp-timeline/v1 document the driver re-reads and schema-validates
# after writing (window accounting, monotone quantiles, space-saving
# error bounds, health shapes — a malformed timeline exits non-zero).
# The agent-crash window must raise the orphan_rate burn-rate alert and
# a later window must clear it; the byte-frozen golden timeline runs in
# the suite above (telemetry.*).
health_tmp="$(mktemp -d)"
dune exec bin/ccp_sim.exe -- chaos --duration 6 --seeds 42 \
  --timeline "$health_tmp/timeline.json" > /dev/null
test -s "$health_tmp/timeline.json"
grep -q '"schema":"ccp-timeline/v1"' "$health_tmp/timeline.json"
grep -q '"slo":"orphan_rate","window":[0-9]*,"t_s":[0-9.]*,"to":"firing"' \
  "$health_tmp/timeline.json"
grep -q '"slo":"orphan_rate","window":[0-9]*,"t_s":[0-9.]*,"to":"ok"' \
  "$health_tmp/timeline.json"
rm -rf "$health_tmp"

echo "== incast smoke =="
# The flow-multiplexed control plane end to end (docs/scale.md): a
# 64-flow synchronized/staggered fan-in over the slot-pooled agent with
# report batching on, run through the CLI. The driver re-reads and
# schema-validates the scorecard JSON after writing (a malformed or
# out-of-range scorecard exits non-zero) and merges incast.* rows into
# BENCH.json. The byte-frozen seed-42 scorecard, the pool-churn
# property, and the batch-frame round-trip/corruption tests run in the
# suite above (scale.*, incast.*, ipc.batch).
incast_tmp="$(mktemp -d)"
dune exec bin/ccp_sim.exe -- incast -n 64 --seeds 42 --duration 0.5 \
  --scorecard "$incast_tmp/scorecard.json" --bench-json BENCH.json > /dev/null
test -s "$incast_tmp/scorecard.json"
grep -q '"incast\.' BENCH.json
rm -rf "$incast_tmp"

echo "== scale bench smoke =="
# The slot-pool churn and batched-report amortization benchmarks: the
# driver itself exits non-zero if registration churn allocates per-flow
# Gc garbage that grows with N, or if the batched agent-side cost per
# report fails to beat the unbatched path.
QUICK=1 dune exec bench/main.exe -- scale
grep -q '"scale\.' BENCH.json

if [ -n "${SOAK_SEED:-}" ]; then
  echo "== soak (CCP_PROP_SEED=$SOAK_SEED) =="
  CCP_PROP_SEED="$SOAK_SEED" dune exec test/main.exe -- test -e
  CCP_PROP_SEED="$SOAK_SEED" dune exec bin/fuzz_smoke.exe -- 500
fi
