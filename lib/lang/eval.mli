(** Total evaluation of control-program expressions.

    Evaluation never raises at runtime: the datapath must stay safe no
    matter what program the agent installs (§5, "Is CCP safe to deploy?").
    Division by zero yields 0, unknown builtins or variables yield 0, any
    non-finite intermediate result (overflow to ∞, [pow] blowing up,
    division by a denormal, NaN from a poisoned input) is clamped to 0,
    and every such incident is counted so tests and operators can see it.
    Static rejection of bad programs is {!Typecheck}'s job. *)

type env = {
  lookup_var : string -> float option;
      (** flow variables; inside folds, state fields shadow these *)
  lookup_pkt : string -> float option;  (** per-packet fields; [None] outside folds *)
}

type incident_counter = {
  mutable div_by_zero : int;
  mutable unknown_name : int;
  mutable non_finite : int;  (** NaN/±∞ results clamped to 0.0 *)
}

val fresh_counter : unit -> incident_counter

val eval : ?incidents:incident_counter -> env -> Ast.expr -> float
(** Total evaluation against [env]. The result (and every intermediate
    value) is finite. *)

val apply_builtin : string -> float list -> float option
(** [apply_builtin name args] is [None] for an unknown name or wrong
    arity. May return a non-finite value (e.g. [pow] overflow); {!eval}
    clamps and counts it. *)
