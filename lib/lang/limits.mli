(** Static resource limits on control programs (admission control, §2.4).

    {!Typecheck} answers "is this program well-formed?"; this module
    answers "is it cheap enough to run in the datapath?". The datapath
    enforces both on every [Install] — it cannot trust the agent, let
    alone the channel — and answers with an [Install_result] carrying one
    of the structured {!reason} codes below, so a rejection is observable
    end to end instead of a silent drop.

    The wait floors only bind on {e constant} arguments; a computed wait
    that evaluates too low is caught at runtime by the datapath's guard
    envelope ({!Ccp_datapath.Ccp_ext.guard_envelope}). *)

type t = {
  max_prims : int;  (** total primitives per program *)
  max_expr_depth : int;  (** nesting depth of any expression *)
  max_fold_fields : int;  (** declared fold state fields *)
  max_vector_columns : int;  (** columns of a vector measure spec *)
  min_wait_us : float;  (** floor on constant [Wait] arguments *)
  min_wait_rtts : float;  (** floor on constant [WaitRtts] arguments *)
}

val default : t
(** 256 prims, depth 32, 64 fold fields, 32 columns, 100 us / 0.1 RTT
    wait floors. *)

(** Structured rejection codes; stable across the IPC wire. *)
type reason =
  | Program_too_long
  | Expr_too_deep
  | Fold_too_large
  | Vector_too_wide
  | Wait_too_short
  | Invalid_program  (** failed {!Typecheck.check} *)

val all_reasons : reason list
val reason_to_string : reason -> string
val equal_reason : reason -> reason -> bool
val pp_reason : Format.formatter -> reason -> unit

val expr_depth : Ast.expr -> int

val check : ?limits:t -> Ast.program -> (unit, reason * string) result
(** Resource limits only; never raises. *)

val admit : ?limits:t -> Ast.program -> (unit, reason * string) result
(** [Typecheck.check] plus {!check}: the full admission decision a
    datapath runs on [Install]. Never raises. *)
