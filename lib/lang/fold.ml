type t = {
  def : Ast.fold_def;
  names : string array;
  values : float array;
  mutable packets : int;
}

let index_of t name =
  let rec find i =
    if i >= Array.length t.names then None else if t.names.(i) = name then Some i else find (i + 1)
  in
  find 0

let run_init def ~flow_env values =
  let env = { Eval.lookup_var = flow_env; lookup_pkt = (fun _ -> None) } in
  List.iteri (fun i (_, expr) -> values.(i) <- Eval.eval env expr) def.Ast.init

let create def ~flow_env =
  let names = Array.of_list (List.map fst def.Ast.init) in
  let values = Array.make (Array.length names) 0.0 in
  let t = { def; names; values; packets = 0 } in
  run_init def ~flow_env values;
  t

let get t name = Option.map (fun i -> t.values.(i)) (index_of t name)

(* State fields shadow flow variables, per the language definition. *)
let state_env t ~flow_env name =
  match get t name with Some v -> Some v | None -> flow_env name

let step ?incidents t ~flow_env ~pkt_env =
  let env = { Eval.lookup_var = state_env t ~flow_env; lookup_pkt = pkt_env } in
  let updates =
    List.map (fun (name, expr) -> (name, Eval.eval ?incidents env expr)) t.def.Ast.update
  in
  List.iter
    (fun (name, v) ->
      match index_of t name with
      | Some i -> t.values.(i) <- v
      | None -> () (* Typecheck rejects updates to undeclared fields. *))
    updates;
  t.packets <- t.packets + 1

let fields t = Array.to_list (Array.mapi (fun i name -> (name, t.values.(i))) t.names)

let diverged t ~limit =
  Array.exists (fun v -> (not (Float.is_finite v)) || Float.abs v > limit) t.values

let reset t ~flow_env =
  run_init t.def ~flow_env t.values;
  t.packets <- 0

let packet_count t = t.packets
