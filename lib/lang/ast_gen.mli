(** Seeded random program generator for fuzzing the admission and
    evaluation pipeline.

    Deliberately adversarial: unknown names, wrong arities, division by
    zero and by denormals, huge constants that overflow to infinity,
    empty and oversized measure specs, zero-length and over-long
    programs. Admission ({!Limits.admit}) must classify every output
    without raising, and evaluation must stay total and finite on
    whatever is admitted. Used by [bin/fuzz_smoke] (the CI fuzz stage)
    and the property-test suites; all draws come from the given
    {!Ccp_util.Rng} stream, so runs are reproducible per seed. *)

open Ccp_util

val expr : Rng.t -> depth:int -> Ast.expr
val prim : Rng.t -> Ast.prim
val program : Rng.t -> Ast.program

val well_typed_program : Rng.t -> Ast.program
(** A program that passes {!Limits.admit} (rejection-sampled, with a
    fixed valid fallback so the function is total). *)
