open Ccp_util
open Ast

let known_vars = List.map fst Vars.flow_vars
let known_pkts = List.map fst Vars.pkt_fields
let known_calls = List.map fst Vars.builtins

let pick rng xs = List.nth xs (Rng.int rng (List.length xs))

let gen_name rng ~known =
  if Rng.int rng 4 > 0 then pick rng known
  else
    (* Garbage names: admission must reject them without raising. *)
    String.init (1 + Rng.int rng 8) (fun _ -> Char.chr (97 + Rng.int rng 26))

let gen_const rng =
  match Rng.int rng 8 with
  | 0 -> 0.0
  | 1 -> -1.0 *. Rng.float rng 1e6
  | 2 -> 1e300 (* overflows under Mul/pow: exercises the non-finite clamp *)
  | 3 -> 4.9e-324 (* denormal divisor *)
  | 4 -> Rng.float rng 1.0
  | _ -> Rng.float rng 1e9

let rec expr rng ~depth =
  if depth <= 0 then
    match Rng.int rng 3 with
    | 0 -> Const (gen_const rng)
    | 1 -> Var (gen_name rng ~known:known_vars)
    | _ -> Pkt (gen_name rng ~known:known_pkts)
  else
    match Rng.int rng 6 with
    | 0 | 1 ->
      let op = pick rng [ Add; Sub; Mul; Div ] in
      Bin (op, expr rng ~depth:(depth - 1), expr rng ~depth:(depth - 1))
    | 2 -> Neg (expr rng ~depth:(depth - 1))
    | 3 ->
      let name = gen_name rng ~known:known_calls in
      let arity =
        match Vars.builtin_arity name with
        | Some a when Rng.int rng 5 > 0 -> a
        | _ -> Rng.int rng 5 (* wrong arity on purpose, sometimes *)
      in
      Call (name, List.init arity (fun _ -> expr rng ~depth:(depth - 1)))
    | _ -> Const (gen_const rng)

let gen_fold rng =
  let n = 1 + Rng.int rng 4 in
  let fields = List.init n (fun i -> Printf.sprintf "f%d" i) in
  let binding rng name =
    let e =
      if Rng.int rng 8 = 0 then expr rng ~depth:2
      else
        (* Usually reference declared state so some folds typecheck. *)
        match Rng.int rng 3 with
        | 0 -> Bin (Add, Var name, Pkt (gen_name rng ~known:known_pkts))
        | 1 -> Bin (Mul, Var name, Const (gen_const rng))
        | _ -> Const (gen_const rng)
    in
    (name, e)
  in
  {
    init = List.map (fun f -> (f, Const (gen_const rng))) fields;
    update = List.map (binding rng) fields;
  }

let prim rng =
  match Rng.int rng 8 with
  | 0 ->
    let fields =
      (* Sometimes empty (must be rejected), sometimes too wide. *)
      match Rng.int rng 6 with
      | 0 -> []
      | 1 -> List.init 70 (fun i -> Printf.sprintf "c%d" i)
      | _ ->
        List.sort_uniq compare
          (List.init (1 + Rng.int rng 4) (fun _ -> gen_name rng ~known:known_pkts))
    in
    Measure (Vector fields)
  | 1 -> Measure (Fold (gen_fold rng))
  | 2 -> Rate (expr rng ~depth:(Rng.int rng 4))
  | 3 -> Cwnd (expr rng ~depth:(Rng.int rng 4))
  | 4 -> Wait (expr rng ~depth:(Rng.int rng 3))
  | 5 -> Wait_rtts (expr rng ~depth:(Rng.int rng 3))
  | _ -> Report

let program rng =
  let n =
    match Rng.int rng 10 with
    | 0 -> 0 (* empty: rejected *)
    | 1 -> 300 (* over the prim budget: rejected *)
    | _ -> 1 + Rng.int rng 8
  in
  let prims = List.init n (fun _ -> prim rng) in
  let prims = if Rng.bool rng then prims @ [ Report ] else prims in
  Ast.program ~repeat:(Rng.bool rng) prims

let well_typed_program rng =
  (* Rejection-sample the wild generator through admission; the fixed
     fallback keeps this total (and the fallback itself must admit). *)
  let rec search tries =
    if tries = 0 then
      Ast.program
        [ Cwnd (Bin (Mul, Const 2.0, Var "mss")); Wait_rtts (Const 1.0); Report ]
    else
      let p = program rng in
      match Limits.admit p with Ok () -> p | Error _ -> search (tries - 1)
  in
  search 50
