open Ast

type env = {
  lookup_var : string -> float option;
  lookup_pkt : string -> float option;
}

type incident_counter = {
  mutable div_by_zero : int;
  mutable unknown_name : int;
  mutable non_finite : int;
}

let fresh_counter () = { div_by_zero = 0; unknown_name = 0; non_finite = 0 }

let apply_builtin name args =
  match (name, args) with
  | "min", [ a; b ] -> Some (Float.min a b)
  | "max", [ a; b ] -> Some (Float.max a b)
  | "abs", [ a ] -> Some (Float.abs a)
  | "sqrt", [ a ] -> Some (if a < 0.0 then 0.0 else sqrt a)
  | "pow", [ a; b ] ->
    (* Raw result; [eval]'s finiteness clamp catches pow(10,1000) → ∞
       and 0**-1 → ∞ alike, and counts them. *)
    Some (a ** b)
  | "if_lt", [ a; b; x; y ] -> Some (if a < b then x else y)
  | "if_le", [ a; b; x; y ] -> Some (if a <= b then x else y)
  | "if_gt", [ a; b; x; y ] -> Some (if a > b then x else y)
  | "if_ge", [ a; b; x; y ] -> Some (if a >= b then x else y)
  | _ -> None

let eval ?incidents env expr =
  let note_div () = match incidents with Some c -> c.div_by_zero <- c.div_by_zero + 1 | None -> () in
  let note_unknown () =
    match incidents with Some c -> c.unknown_name <- c.unknown_name + 1 | None -> ()
  in
  (* Every sub-expression result passes through [fin]: NaN and ±∞ (from
     overflow, division by a denormal, pow, or a poisoned environment
     value) collapse to 0.0 and are counted, so no non-finite value can
     propagate into cwnd/rate/fold state. *)
  let fin v =
    if Float.is_finite v then v
    else begin
      (match incidents with Some c -> c.non_finite <- c.non_finite + 1 | None -> ());
      0.0
    end
  in
  let rec go e =
    fin
      (match e with
      | Const f -> f
      | Var name -> (
        match env.lookup_var name with
        | Some v -> v
        | None ->
          note_unknown ();
          0.0)
      | Pkt field -> (
        match env.lookup_pkt field with
        | Some v -> v
        | None ->
          note_unknown ();
          0.0)
      | Neg e -> -.go e
      | Bin (op, l, r) -> (
        let a = go l and b = go r in
        match op with
        | Add -> a +. b
        | Sub -> a -. b
        | Mul -> a *. b
        | Div ->
          if b = 0.0 then begin
            note_div ();
            0.0
          end
          else a /. b)
      | Call (name, args) -> (
        let vals = List.map go args in
        match apply_builtin name vals with
        | Some v -> v
        | None ->
          note_unknown ();
          0.0))
  in
  go expr
