(** Install-time compilation of control programs (§2.3).

    The paper's cost argument is that per-ACK datapath work must stay
    tiny — that is the whole point of batching measurement into folds.
    The tree-walking {!Eval}/{!Fold} pair pays a string scan per name, a
    closure environment per lookup and a list allocation per packet;
    fine for a reference semantics, hostile to a fast path. This module
    does what real deployments do (NIC and eBPF datapaths alike): all
    name resolution and arity checking happens {e once}, at Install
    admission time, and the per-ACK path runs a flat postfix instruction
    array over a preallocated float stack — no strings, no closures, no
    lists, and {b no minor-heap allocation} in steady state.

    Semantics are {e bit-identical} to the interpreter, incident
    counting included: division by zero yields 0 and counts, every
    instruction result is clamped to 0 when non-finite and counted, and
    builtins reproduce [Eval.apply_builtin] exactly. The one intended
    difference: unknown names, unknown builtins and wrong arities —
    which the interpreter only discovers per-packet at run time — are
    compile errors, reported to the agent as a structured
    [Install_result] rejection. {!equivalent} is the differential
    harness the property tests drive to keep the two in lockstep. *)

(** {1 Slot spaces}

    Flow variables and packet fields are resolved to dense integer
    indices in the order of {!Ast.Vars.flow_vars} / [pkt_fields]. The
    datapath fills a [float array] per space instead of answering
    string lookups. *)

val flow_var_count : int
val pkt_field_count : int

val flow_index : string -> int option
val pkt_index : string -> int option

val flow_index_exn : string -> int
(** Raises [Invalid_argument] on unknown names; for datapath wiring
    that hardcodes the slot layout once at module initialisation. *)

val pkt_index_exn : string -> int

(** {1 Compiled code}

    Expressions lower to a flat postfix instruction stream packed into
    an [int array]: each word carries the opcode (bits 0–4), the
    result's operand-stack index (bits 5–24) and an operand index into
    [consts] or a slot table (bits 25+). The stack discipline is fully
    static, so there is no run-time stack pointer — instruction [i]
    reads its operands at [dst .. dst+arity-1] and writes [dst], and the
    whole expression's result lands at [stack.(0)]. Dispatch is a dense
    integer switch over sequential memory: no pointer chasing, no
    allocation. *)

type code = {
  ops : int array;  (** packed instructions, postfix order *)
  consts : float array;  (** literal pool indexed by [Const] operands *)
  max_stack : int;  (** exact peak operand-stack depth *)
  flow_mask : int;  (** bitmask of flow-variable slots this code reads *)
}

(** Preallocated execution state: one per flow, reused for every
    evaluation. [flow] and [pkt] are the slot tables the datapath
    refreshes in place before executing code that reads them
    ([flow_mask] says which flow slots matter). *)
type machine = {
  stack : float array;
  flow : float array;  (** [flow_var_count] wide *)
  pkt : float array;  (** [pkt_field_count] wide *)
}

val no_slots : float array
(** The empty slot table for code compiled outside a fold. *)

val exec :
  code -> m:machine -> slots:float array -> incidents:Eval.incident_counter -> unit
(** Execute [code]; the result is left in [m.stack.(0)] (returning it
    would box the float on every call). Allocation-free. [slots] is the
    fold state table ([no_slots] outside folds); [incidents] receives
    div-by-zero and non-finite counts exactly as {!Eval.eval} would. *)

(** {1 Compiled folds} *)

module Fold : sig
  type plan
  (** A compiled fold definition: init and update bindings each fused
      into one instruction array (binding [j]'s result lands at
      [stack.(j)]), with resolved commit-target slots. *)

  type t
  (** Runtime state: one [values] table. During {!step} the machine's
      operand stack doubles as the staging buffer, so all updates read
      the pre-packet state and commit simultaneously — the paper's
      [foldFn (old, pkt) -> new]. *)

  val init_flow_mask : plan -> int
  (** Flow slots the init (and reset) code reads. *)

  val step_flow_mask : plan -> int
  (** Flow slots the update code reads; refresh these before {!step}. *)

  val create : plan -> m:machine -> t
  (** Runs the init code against [m.flow] (refresh it first). Like
      {!Fold.create}, init-time incidents are not counted. *)

  val step : t -> m:machine -> incidents:Eval.incident_counter -> unit
  (** Fold one packet from [m.pkt]. The per-ACK fast path: zero
      minor-heap allocations (asserted by a [Gc.minor_words] test). *)

  val reset : t -> m:machine -> unit
  (** Re-run init (after a report flush); packet count returns to 0. *)

  val plan : t -> plan
  val get : t -> string -> float option
  val fields : t -> (string * float) array
  (** Current state in declaration order (allocates; report path only). *)

  val diverged : t -> limit:float -> bool
  val packet_count : t -> int
end

(** {1 Compiled programs} *)

type prim =
  | Measure_vector of { columns : string array; col_idx : int array }
  | Measure_fold of Fold.plan
  | Rate of code
  | Cwnd of code
  | Wait of code
  | Wait_rtts of code
  | Report

type program = { prims : prim array; repeat : bool; max_stack : int }

val compile : Ast.program -> (program, string) result
(** Resolve every name to a slot and lower every expression. Fails —
    with a human-readable reason — exactly on programs {!Typecheck}
    would reject for name/arity errors: unknown variables, packet
    fields or builtins, wrong builtin arity, [pkt.*] outside a fold
    update, updates to undeclared fields, duplicate fold fields. Any
    program {!Limits.admit} accepts compiles. *)

val compile_exn : Ast.program -> program

val machine_for : program -> machine
(** A machine sized to the program's peak stack depth. *)

(** {1 Differential harness} *)

val equivalent :
  Ast.program -> flow:float array -> pkts:float array array -> (unit, string) result
(** Run the program through the compiled pipeline and the {!Eval} /
    {!Fold} interpreter side by side on a fixed flow-variable table
    ([flow_var_count] wide) and a packet stream ([pkt_field_count]-wide
    rows, fed through the active measurement in batches at each wait),
    mirroring the datapath's execution order: decisions evaluated per
    primitive, folds stepped per packet, state flushed and reset at
    [Report]. Returns [Error] describing the first divergence in fold
    state (bit-compared), decision values (bit-compared), packet counts
    or incident counters; [Error] if the program does not compile. *)
