(** Datapath-side fold engine (§2.4, second batching approach).

    A fold keeps a constant number of named float fields. On every
    acknowledged packet the datapath evaluates all update expressions
    against the {e old} state plus the packet's fields, then commits them
    simultaneously — the semantics of the paper's
    [foldFn (old, pkt) -> new]. *)

type t

val create : Ast.fold_def -> flow_env:(string -> float option) -> t
(** Evaluate the [init] bindings (they may read flow variables, e.g.
    seeding [minrtt] from the flow's current estimate) and build the
    state. *)

val step :
  ?incidents:Eval.incident_counter ->
  t ->
  flow_env:(string -> float option) ->
  pkt_env:(string -> float option) ->
  unit
(** Apply the update bindings for one packet. *)

val get : t -> string -> float option
val fields : t -> (string * float) list
(** Current state in declaration order. *)

val diverged : t -> limit:float -> bool
(** True when any state field is non-finite or exceeds [limit] in
    magnitude — a runaway fold (e.g. [x <- x *. 1e6]) that the guard
    envelope should quarantine before it poisons reports. *)

val reset : t -> flow_env:(string -> float option) -> unit
(** Re-run the init bindings (after a [Report] flushes the state). *)

val packet_count : t -> int
(** Packets folded since the last reset. *)
