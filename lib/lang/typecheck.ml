open Ast

type error = { message : string }
type warning = { message : string }

type ctx = { mutable errors : error list; mutable warnings : warning list }

let err ctx fmt = Format.kasprintf (fun message -> ctx.errors <- { message } :: ctx.errors) fmt
let warn ctx fmt = Format.kasprintf (fun message -> ctx.warnings <- { message } :: ctx.warnings) fmt

(* [state] is the set of declared fold fields when checking inside a fold
   update, [None] elsewhere; [pkt_ok] allows pkt.* references. *)
let rec check_expr ctx ~state ~pkt_ok ~where = function
  | Const _ -> ()
  | Var name ->
    let in_state = match state with Some fields -> List.mem name fields | None -> false in
    if not (in_state || Vars.is_flow_var name) then
      err ctx "%s: unknown variable '%s'" where name
  | Pkt field ->
    if not pkt_ok then err ctx "%s: pkt.%s is only available inside fold updates" where field
    else if not (Vars.is_pkt_field field) then
      err ctx "%s: unknown packet field '%s'" where field
  | Neg e -> check_expr ctx ~state ~pkt_ok ~where e
  | Bin (_, l, r) ->
    check_expr ctx ~state ~pkt_ok ~where l;
    check_expr ctx ~state ~pkt_ok ~where r
  | Call (name, args) -> (
    List.iter (check_expr ctx ~state ~pkt_ok ~where) args;
    match Vars.builtin_arity name with
    | None -> err ctx "%s: unknown function '%s'" where name
    | Some arity ->
      if List.length args <> arity then
        err ctx "%s: '%s' expects %d arguments, got %d" where name arity (List.length args))

let check_duplicates ctx ~where names =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun name ->
      if Hashtbl.mem seen name then err ctx "%s: duplicate field '%s'" where name
      else Hashtbl.add seen name ())
    names

let check_fold ctx (def : fold_def) =
  let declared = List.map fst def.init in
  check_duplicates ctx ~where:"fold init" declared;
  List.iter
    (fun (name, e) ->
      check_expr ctx ~state:None ~pkt_ok:false ~where:(Printf.sprintf "fold init '%s'" name) e)
    def.init;
  List.iter
    (fun (name, e) ->
      if not (List.mem name declared) then
        err ctx "fold update assigns undeclared field '%s'" name;
      check_expr ctx ~state:(Some declared) ~pkt_ok:true
        ~where:(Printf.sprintf "fold update '%s'" name)
        e)
    def.update;
  if def.update = [] then warn ctx "fold has no update bindings; state never changes"

let check_measure ctx = function
  | Vector [] -> err ctx "Measure: vector spec has no fields; it would report nothing"
  | Vector fields ->
    check_duplicates ctx ~where:"Measure" fields;
    List.iter
      (fun f -> if not (Vars.is_pkt_field f) then err ctx "Measure: unknown packet field '%s'" f)
      fields
  | Fold def -> check_fold ctx def

let check_prim ctx = function
  | Measure spec -> check_measure ctx spec
  | Rate e -> check_expr ctx ~state:None ~pkt_ok:false ~where:"Rate" e
  | Cwnd e -> check_expr ctx ~state:None ~pkt_ok:false ~where:"Cwnd" e
  | Wait (Const us) when not (us > 0.0) ->
    err ctx "Wait: duration %g us is not positive; the program would never advance" us
  | Wait e -> check_expr ctx ~state:None ~pkt_ok:false ~where:"Wait" e
  | Wait_rtts (Const rtts) when not (rtts > 0.0) ->
    err ctx "WaitRtts: duration %g RTTs is not positive; the program would never advance" rtts
  | Wait_rtts e -> check_expr ctx ~state:None ~pkt_ok:false ~where:"WaitRtts" e
  | Report -> ()

let check program =
  let ctx = { errors = []; warnings = [] } in
  if program.prims = [] then err ctx "empty program";
  List.iter (check_prim ctx) program.prims;
  let has_wait = List.exists (function Wait _ | Wait_rtts _ -> true | _ -> false) program.prims in
  let has_report = List.exists (( = ) Report) program.prims in
  if program.repeat && not has_wait then
    err ctx "repeating program has no Wait/WaitRtts; it would spin without advancing time";
  if program.repeat && not has_report then
    warn ctx "repeating program never reports; the agent will not hear from this flow";
  (match (program.repeat, List.rev program.prims) with
  | false, last :: _ when last <> Report ->
    warn ctx "Once-program does not end with Report(); trailing state is never sent"
  | _ -> ());
  match ctx.errors with
  | [] -> Ok (List.rev ctx.warnings)
  | errors -> Error (List.rev errors)

let check_exn program =
  match check program with
  | Ok warnings -> warnings
  | Error ({ message } :: _) -> invalid_arg ("Typecheck: " ^ message)
  | Error [] -> assert false

let pp_error fmt ({ message } : error) = Format.pp_print_string fmt message
let pp_warning fmt ({ message } : warning) = Format.pp_print_string fmt message
