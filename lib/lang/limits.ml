open Ast

type t = {
  max_prims : int;
  max_expr_depth : int;
  max_fold_fields : int;
  max_vector_columns : int;
  min_wait_us : float;
  min_wait_rtts : float;
}

let default =
  {
    max_prims = 256;
    max_expr_depth = 32;
    max_fold_fields = 64;
    max_vector_columns = 32;
    min_wait_us = 100.0;
    min_wait_rtts = 0.1;
  }

type reason =
  | Program_too_long
  | Expr_too_deep
  | Fold_too_large
  | Vector_too_wide
  | Wait_too_short
  | Invalid_program

let all_reasons =
  [
    Program_too_long; Expr_too_deep; Fold_too_large; Vector_too_wide; Wait_too_short;
    Invalid_program;
  ]

let reason_to_string = function
  | Program_too_long -> "program-too-long"
  | Expr_too_deep -> "expr-too-deep"
  | Fold_too_large -> "fold-too-large"
  | Vector_too_wide -> "vector-too-wide"
  | Wait_too_short -> "wait-too-short"
  | Invalid_program -> "invalid-program"

let equal_reason (a : reason) (b : reason) = a = b
let pp_reason fmt r = Format.pp_print_string fmt (reason_to_string r)

let rec expr_depth = function
  | Const _ | Var _ | Pkt _ -> 1
  | Neg e -> 1 + expr_depth e
  | Bin (_, l, r) -> 1 + max (expr_depth l) (expr_depth r)
  | Call (_, args) -> 1 + List.fold_left (fun acc e -> max acc (expr_depth e)) 0 args

let prim_exprs = function
  | Measure (Vector _) -> []
  | Measure (Fold { init; update }) -> List.map snd init @ List.map snd update
  | Rate e | Cwnd e | Wait e | Wait_rtts e -> [ e ]
  | Report -> []

(* Static resource limits only; [admit] combines them with {!Typecheck}.
   The wait floors can only be enforced statically on constant arguments —
   computed waits are the runtime guard envelope's job. *)
let check ?(limits = default) (program : program) =
  let err reason fmt = Format.kasprintf (fun detail -> Error (reason, detail)) fmt in
  let n = List.length program.prims in
  if n > limits.max_prims then
    err Program_too_long "program has %d primitives (limit %d)" n limits.max_prims
  else
    let rec scan = function
      | [] -> Ok ()
      | prim :: rest -> (
        let too_deep =
          List.find_opt (fun e -> expr_depth e > limits.max_expr_depth) (prim_exprs prim)
        in
        match (too_deep, prim) with
        | Some e, _ ->
          err Expr_too_deep "expression depth %d exceeds limit %d" (expr_depth e)
            limits.max_expr_depth
        | None, Measure (Fold { init; _ }) when List.length init > limits.max_fold_fields ->
          err Fold_too_large "fold declares %d state fields (limit %d)" (List.length init)
            limits.max_fold_fields
        | None, Measure (Vector fields) when List.length fields > limits.max_vector_columns ->
          err Vector_too_wide "vector report has %d columns (limit %d)" (List.length fields)
            limits.max_vector_columns
        | None, Wait (Const us) when us < limits.min_wait_us ->
          err Wait_too_short "Wait(%g us) is below the %g us floor" us limits.min_wait_us
        | None, Wait_rtts (Const rtts) when rtts < limits.min_wait_rtts ->
          err Wait_too_short "WaitRtts(%g) is below the %g RTT floor" rtts limits.min_wait_rtts
        | None, _ -> scan rest)
    in
    scan program.prims

let admit ?limits program =
  match Typecheck.check program with
  | Error (first :: _) ->
    Error (Invalid_program, (first : Typecheck.error).message)
  | Error [] -> Error (Invalid_program, "unknown static error")
  | Ok _warnings -> check ?limits program
