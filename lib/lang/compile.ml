(* Install-time compiler for control programs: names become integer
   slots, expression trees become flat postfix instruction arrays, and
   the per-ACK path executes them over preallocated float arrays with
   zero minor-heap allocation. The {!Eval}/{!Fold} interpreter remains
   the reference semantics; [equivalent] keeps the two bit-identical. *)

(* The interpreter fold, needed by [equivalent] after our own [Fold]
   submodule shadows the name. *)
module Interp_fold = Fold

(* --- slot spaces --- *)

let flow_names = Array.of_list (List.map fst Ast.Vars.flow_vars)
let pkt_names = Array.of_list (List.map fst Ast.Vars.pkt_fields)
let flow_var_count = Array.length flow_names
let pkt_field_count = Array.length pkt_names

let index_in names name =
  let rec find i =
    if i >= Array.length names then None
    else if String.equal names.(i) name then Some i
    else find (i + 1)
  in
  find 0

let flow_index name = index_in flow_names name
let pkt_index name = index_in pkt_names name

let index_exn what index name =
  match index name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Compile.%s_index_exn: unknown name %S" what name)

let flow_index_exn name = index_exn "flow" flow_index name
let pkt_index_exn name = index_exn "pkt" pkt_index name

(* --- compiled code ---

   Packed instruction word: bits 0-4 opcode, bits 5-24 the result's
   operand-stack index (dst), bits 25+ the operand index (constant-pool
   or slot-table index for the load opcodes, unused otherwise). *)

let op_const = 0
let op_load_slot = 1
let op_load_flow = 2
let op_load_pkt = 3
let op_add = 4
let op_sub = 5
let op_mul = 6
let op_div = 7
let op_neg = 8
let op_min = 9
let op_max = 10
let op_abs = 11
let op_sqrt = 12
let op_pow = 13
let op_if_lt = 14
let op_if_le = 15
let op_if_gt = 16
let op_if_ge = 17

let op_const_nonfinite = 18
(* A non-finite literal, classified at compile time: the interpreter's
   per-node clamp turns it into 0.0 and counts a [non_finite] incident
   on every evaluation, so the opcode does exactly that with no
   constant pool entry. *)

let pack op ~dst ~arg = op lor (dst lsl 5) lor (arg lsl 25)

type code = { ops : int array; consts : float array; max_stack : int; flow_mask : int }

type machine = {
  stack : float array;
  flow : float array;
  pkt : float array;
}

let no_slots : float array = [||]

(* --- execution ---

   The loop is written for the per-ACK fast path: no closures, no refs,
   no float-returning helper calls (each would box its result without
   flambda). Finiteness is tested as [v -. v = 0.0] — exactly
   [Float.is_finite]'s definition — and min/max hand-inline the stdlib
   [Float.min]/[Float.max] bodies so results stay bit-identical to the
   interpreter while the floats stay in registers.

   There is no run-time stack pointer: the stack discipline is fully
   static, so each packed word carries its result index (dst) —
   instruction [i] reads its operands at [dst .. dst+arity-1] and
   writes [dst]. Accesses are unchecked: the emitter tracks the exact
   depth of every instruction (the [assert (em.cur = 1)] in
   [compile_expr]) and [machine_for] sizes the stack to the verified
   peak, so every index below is in bounds by construction; slot and
   constant-pool indices were validated/assigned at compile time. *)

let[@inline always] get (a : float array) i = Array.unsafe_get a i
let[@inline always] set (a : float array) i v = Array.unsafe_set a i v

let exec code ~(m : machine) ~(slots : float array)
    ~(incidents : Eval.incident_counter) =
  let stack = m.stack and flow = m.flow and pkt = m.pkt in
  let ops = code.ops and consts = code.consts in
  (* [fin] mirrors [Eval]'s per-node clamp: a non-finite result
     collapses to 0.0 and counts. It is inlined only into the opcodes
     that can produce a non-finite value from finite operands — loads
     from the external flow/pkt tables, add/sub/mul/div/pow — which
     provably cannot change incident counts: every other opcode maps
     finite inputs to finite outputs (slot loads read post-clamp
     state, sqrt is negative-guarded, min/max/if select an operand),
     so the interpreter's clamp never fires there either. *)
  for i = 0 to Array.length ops - 1 do
    let w = Array.unsafe_get ops i in
    let dst = (w lsr 5) land 0xFFFFF in
    match w land 0x1F with
    | 0 (* const, finite *) -> set stack dst (get consts (w lsr 25))
    | 1 (* load_slot *) -> set stack dst (get slots (w lsr 25))
    | 2 (* load_flow *) ->
      let v = get flow (w lsr 25) in
      if v -. v = 0.0 then set stack dst v
      else begin
        incidents.Eval.non_finite <- incidents.Eval.non_finite + 1;
        set stack dst 0.0
      end
    | 3 (* load_pkt *) ->
      let v = get pkt (w lsr 25) in
      if v -. v = 0.0 then set stack dst v
      else begin
        incidents.Eval.non_finite <- incidents.Eval.non_finite + 1;
        set stack dst 0.0
      end
    | 4 (* add *) ->
      let v = get stack dst +. get stack (dst + 1) in
      if v -. v = 0.0 then set stack dst v
      else begin
        incidents.Eval.non_finite <- incidents.Eval.non_finite + 1;
        set stack dst 0.0
      end
    | 5 (* sub *) ->
      let v = get stack dst -. get stack (dst + 1) in
      if v -. v = 0.0 then set stack dst v
      else begin
        incidents.Eval.non_finite <- incidents.Eval.non_finite + 1;
        set stack dst 0.0
      end
    | 6 (* mul *) ->
      let v = get stack dst *. get stack (dst + 1) in
      if v -. v = 0.0 then set stack dst v
      else begin
        incidents.Eval.non_finite <- incidents.Eval.non_finite + 1;
        set stack dst 0.0
      end
    | 7 (* div *) ->
      let b = get stack (dst + 1) in
      if b = 0.0 then begin
        incidents.Eval.div_by_zero <- incidents.Eval.div_by_zero + 1;
        set stack dst 0.0
      end
      else begin
        let v = get stack dst /. b in
        if v -. v = 0.0 then set stack dst v
        else begin
          incidents.Eval.non_finite <- incidents.Eval.non_finite + 1;
          set stack dst 0.0
        end
      end
    | 8 (* neg *) -> set stack dst (-.get stack dst)
    (* min/max are bit-identical to [Float.min]/[Float.max] on the
       values that can reach them: operands are always post-clamp
       finite, so NaN and infinities are impossible and only the
       signed-zero tie needs the sign probe — [1.0 /. x < 0.0]
       distinguishes -0.0 without the C call [Float.sign_bit] would
       cost on the hot path. *)
    | 9 (* min *) ->
      let x = get stack dst and y = get stack (dst + 1) in
      set stack dst
        (if y > x then x
         else if x > y then y
         else if x = 0.0 && 1.0 /. x < 0.0 then x
         else y)
    | 10 (* max *) ->
      let x = get stack dst and y = get stack (dst + 1) in
      set stack dst
        (if y > x then y
         else if x > y then x
         else if x = 0.0 && 1.0 /. x < 0.0 then y
         else x)
    | 11 (* abs *) -> set stack dst (Float.abs (get stack dst))
    | 12 (* sqrt *) ->
      let a = get stack dst in
      set stack dst (if a < 0.0 then 0.0 else sqrt a)
    | 13 (* pow *) ->
      let v = get stack dst ** get stack (dst + 1) in
      if v -. v = 0.0 then set stack dst v
      else begin
        incidents.Eval.non_finite <- incidents.Eval.non_finite + 1;
        set stack dst 0.0
      end
    | 14 (* if_lt *) ->
      set stack dst
        (if get stack dst < get stack (dst + 1) then get stack (dst + 2)
         else get stack (dst + 3))
    | 15 (* if_le *) ->
      set stack dst
        (if get stack dst <= get stack (dst + 1) then get stack (dst + 2)
         else get stack (dst + 3))
    | 16 (* if_gt *) ->
      set stack dst
        (if get stack dst > get stack (dst + 1) then get stack (dst + 2)
         else get stack (dst + 3))
    | 17 (* if_ge *) ->
      set stack dst
        (if get stack dst >= get stack (dst + 1) then get stack (dst + 2)
         else get stack (dst + 3))
    | _ (* const_nonfinite *) ->
      incidents.Eval.non_finite <- incidents.Eval.non_finite + 1;
      set stack dst 0.0
  done

(* --- compilation --- *)

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* Stack effects: pushes +1, unary 0, binary -1, 4-ary selectors -3.
   The instruction's result index (dst) is the depth after it executes
   minus one — packed into the word so execution needs no stack
   pointer. *)
type emitter = {
  mutable rev : int list;  (* packed words, reversed *)
  mutable consts_rev : float list;
  mutable n_consts : int;
  mutable cur : int;
  mutable peak : int;
  mutable mask : int;
}

let emit em op arg delta =
  em.cur <- em.cur + delta;
  em.rev <- pack op ~dst:(em.cur - 1) ~arg :: em.rev;
  if em.cur > em.peak then em.peak <- em.cur

let emit_const em f =
  if f -. f = 0.0 then begin
    let idx = em.n_consts in
    em.consts_rev <- f :: em.consts_rev;
    em.n_consts <- idx + 1;
    emit em op_const idx 1
  end
  else
    (* Classified at compile time: [Eval]'s clamp fires on every
       evaluation of a non-finite literal, so no pool entry is needed —
       the opcode itself is "count an incident, produce 0.0". *)
    emit em op_const_nonfinite 0 1

let builtin_op ~where name args =
  let op, delta =
    match name with
    | "min" -> (op_min, -1)
    | "max" -> (op_max, -1)
    | "abs" -> (op_abs, 0)
    | "sqrt" -> (op_sqrt, 0)
    | "pow" -> (op_pow, -1)
    | "if_lt" -> (op_if_lt, -3)
    | "if_le" -> (op_if_le, -3)
    | "if_gt" -> (op_if_gt, -3)
    | "if_ge" -> (op_if_ge, -3)
    | _ -> error "%s: unknown function '%s'" where name
  in
  (match Ast.Vars.builtin_arity name with
  | Some arity when arity <> List.length args ->
    error "%s: '%s' expects %d arguments, got %d" where name arity (List.length args)
  | _ -> ());
  (op, delta)

(* [state] is the declared fold-field table inside fold updates, where
   state fields shadow flow variables (the language definition); [pkt_ok]
   allows pkt.* references, also only inside fold updates. *)
let compile_expr ~state ~pkt_ok ~where e =
  let em = { rev = []; consts_rev = []; n_consts = 0; cur = 0; peak = 0; mask = 0 } in
  let rec go e =
    match e with
    | Ast.Const f -> emit_const em f
    | Ast.Var name -> (
      match state with
      | Some fields when index_in fields name <> None ->
        emit em op_load_slot (Option.get (index_in fields name)) 1
      | _ -> (
        match flow_index name with
        | Some i ->
          em.mask <- em.mask lor (1 lsl i);
          emit em op_load_flow i 1
        | None -> error "%s: unknown variable '%s'" where name))
    | Ast.Pkt field -> (
      if not pkt_ok then error "%s: pkt.%s is only available inside fold updates" where field;
      match pkt_index field with
      | Some i -> emit em op_load_pkt i 1
      | None -> error "%s: unknown packet field '%s'" where field)
    | Ast.Neg e ->
      go e;
      emit em op_neg 0 0
    | Ast.Bin (op, l, r) ->
      go l;
      go r;
      emit em
        (match op with
        | Ast.Add -> op_add
        | Ast.Sub -> op_sub
        | Ast.Mul -> op_mul
        | Ast.Div -> op_div)
        0 (-1)
    | Ast.Call (name, args) ->
      let op, delta = builtin_op ~where name args in
      List.iter go args;
      emit em op 0 delta
  in
  go e;
  assert (em.cur = 1);
  {
    ops = Array.of_list (List.rev em.rev);
    consts = Array.of_list (List.rev em.consts_rev);
    max_stack = em.peak;
    flow_mask = em.mask;
  }

(* Fuse a binding list into one code: binding [j]'s instructions are
   shifted up by [j] stack slots, so after one [exec] pass result [j]
   sits at [stack.(j)] — the operand stack doubles as the staging
   buffer and the whole list runs in a single dispatch loop. Constant
   pools are concatenated, so [Const] operands are rebased. *)
let fuse codes =
  let n_ops = Array.fold_left (fun a c -> a + Array.length c.ops) 0 codes in
  let ops = Array.make n_ops 0 in
  let consts = Array.concat (Array.to_list (Array.map (fun c -> c.consts) codes)) in
  let pos = ref 0 and const_base = ref 0 in
  let max_stack = ref 0 and mask = ref 0 in
  Array.iteri
    (fun j c ->
      Array.iter
        (fun w ->
          let op = w land 0x1F and dst = (w lsr 5) land 0xFFFFF and arg = w lsr 25 in
          let arg = if op = op_const then arg + !const_base else arg in
          ops.(!pos) <- pack op ~dst:(dst + j) ~arg;
          incr pos)
        c.ops;
      const_base := !const_base + Array.length c.consts;
      if j + c.max_stack > !max_stack then max_stack := j + c.max_stack;
      mask := !mask lor c.flow_mask)
    codes;
  { ops; consts; max_stack = !max_stack; flow_mask = !mask }

(* --- compiled folds --- *)

module Fold = struct
  type plan = {
    field_names : string array;
    init : code;  (** fused init bindings: result [i] at [stack.(i)] *)
    update : code;  (** fused update bindings: result [j] at [stack.(j)] *)
    update_targets : int array;  (** field slot each binding commits to *)
    init_mask : int;
    step_mask : int;
    stack_need : int;
  }

  type t = {
    plan : plan;
    values : float array;
    mutable packets : int;
    discard : Eval.incident_counter;
        (* init/reset evaluate uncounted, matching [Fold.create] *)
  }

  let init_flow_mask p = p.init_mask
  let step_flow_mask p = p.step_mask
  let plan t = t.plan

  let compile_plan (def : Ast.fold_def) =
    let field_names = Array.of_list (List.map fst def.Ast.init) in
    Array.iteri
      (fun i name ->
        for j = 0 to i - 1 do
          if String.equal field_names.(j) name then error "fold init: duplicate field '%s'" name
        done)
      field_names;
    let init =
      fuse
        (Array.of_list
           (List.map
              (fun (name, e) ->
                compile_expr ~state:None ~pkt_ok:false
                  ~where:(Printf.sprintf "fold init '%s'" name)
                  e)
              def.Ast.init))
    in
    let update_targets =
      Array.of_list
        (List.map
           (fun (name, _) ->
             match index_in field_names name with
             | Some i -> i
             | None -> error "fold update assigns undeclared field '%s'" name)
           def.Ast.update)
    in
    let update =
      fuse
        (Array.of_list
           (List.map
              (fun (name, e) ->
                compile_expr ~state:(Some field_names) ~pkt_ok:true
                  ~where:(Printf.sprintf "fold update '%s'" name)
                  e)
              def.Ast.update))
    in
    {
      field_names;
      init;
      update;
      update_targets;
      init_mask = init.flow_mask;
      step_mask = update.flow_mask;
      stack_need = max init.max_stack update.max_stack;
    }

  let run_init t ~m =
    exec t.plan.init ~m ~slots:no_slots ~incidents:t.discard;
    for i = 0 to Array.length t.values - 1 do
      t.values.(i) <- m.stack.(i)
    done

  let create plan ~m =
    let t =
      {
        plan;
        values = Array.make (Array.length plan.field_names) 0.0;
        packets = 0;
        discard = Eval.fresh_counter ();
      }
    in
    run_init t ~m;
    t

  let step t ~m ~incidents =
    (* One fused exec; every binding reads the pre-packet [t.values],
       results land at [m.stack.(0..n-1)] and commit afterwards (in
       binding order, so a duplicate target's last binding wins, like
       the interpreter). *)
    exec t.plan.update ~m ~slots:t.values ~incidents;
    let targets = t.plan.update_targets in
    for j = 0 to Array.length targets - 1 do
      set t.values (Array.unsafe_get targets j) (get m.stack j)
    done;
    t.packets <- t.packets + 1

  let reset t ~m =
    run_init t ~m;
    t.packets <- 0

  let get t name = Option.map (fun i -> t.values.(i)) (index_in t.plan.field_names name)
  let fields t = Array.mapi (fun i name -> (name, t.values.(i))) t.plan.field_names

  (* Loop without a closure or ref: this runs per ACK. *)
  let rec diverged_from values limit i =
    i < Array.length values
    &&
    let x = Array.unsafe_get values i in
    x -. x <> 0.0 || Float.abs x > limit || diverged_from values limit (i + 1)

  let diverged t ~limit = diverged_from t.values limit 0
  let packet_count t = t.packets
end

(* --- compiled programs --- *)

type prim =
  | Measure_vector of { columns : string array; col_idx : int array }
  | Measure_fold of Fold.plan
  | Rate of code
  | Cwnd of code
  | Wait of code
  | Wait_rtts of code
  | Report

type program = { prims : prim array; repeat : bool; max_stack : int }

let compile_prim = function
  | Ast.Measure (Ast.Vector fields) ->
    let columns = Array.of_list fields in
    let col_idx =
      Array.map
        (fun f ->
          match pkt_index f with
          | Some i -> i
          | None -> error "Measure: unknown packet field '%s'" f)
        columns
    in
    Measure_vector { columns; col_idx }
  | Ast.Measure (Ast.Fold def) -> Measure_fold (Fold.compile_plan def)
  | Ast.Rate e -> Rate (compile_expr ~state:None ~pkt_ok:false ~where:"Rate" e)
  | Ast.Cwnd e -> Cwnd (compile_expr ~state:None ~pkt_ok:false ~where:"Cwnd" e)
  | Ast.Wait e -> Wait (compile_expr ~state:None ~pkt_ok:false ~where:"Wait" e)
  | Ast.Wait_rtts e -> Wait_rtts (compile_expr ~state:None ~pkt_ok:false ~where:"WaitRtts" e)
  | Ast.Report -> Report

let prim_stack = function
  | Measure_vector _ | Report -> 0
  | Measure_fold plan -> plan.Fold.stack_need
  | Rate c | Cwnd c | Wait c | Wait_rtts c -> c.max_stack

let compile_exn (p : Ast.program) =
  let prims = Array.of_list (List.map compile_prim p.Ast.prims) in
  let max_stack = Array.fold_left (fun acc pr -> max acc (prim_stack pr)) 0 prims in
  { prims; repeat = p.Ast.repeat; max_stack }

let compile p = try Ok (compile_exn p) with Error msg -> Result.Error msg

let machine_for (p : program) =
  {
    stack = Array.make (max 1 p.max_stack) 0.0;
    flow = Array.make flow_var_count 0.0;
    pkt = Array.make pkt_field_count 0.0;
  }

(* --- differential harness --- *)

exception Diverged of string

let diverged fmt = Format.kasprintf (fun s -> raise (Diverged s)) fmt

let bits = Int64.bits_of_float

(* Feed the packet stream through both measurement engines in batches
   at every wait (and drain the tail at program end), mirroring how
   ACKs interleave with a sleeping program in the datapath. *)
let pkts_per_wait = 3

let equivalent (prog : Ast.program) ~flow ~pkts =
  if Array.length flow <> flow_var_count then
    invalid_arg "Compile.equivalent: flow table has the wrong width";
  Array.iter
    (fun row ->
      if Array.length row <> pkt_field_count then
        invalid_arg "Compile.equivalent: packet row has the wrong width")
    pkts;
  match compile prog with
  | Result.Error e -> Result.Error (Printf.sprintf "does not compile: %s" e)
  | Ok cp -> (
    let m = machine_for cp in
    Array.blit flow 0 m.flow 0 flow_var_count;
    let inc_i = Eval.fresh_counter () and inc_c = Eval.fresh_counter () in
    let flow_env name = Option.map (fun i -> flow.(i)) (flow_index name) in
    let pkt_env row name = Option.map (fun i -> row.(i)) (pkt_index name) in
    let ifold = ref None and cfold = ref None in
    let ivec = ref None and cvec = ref None in
    let compare_folds ~when_ () =
      match (!ifold, !cfold) with
      | None, None -> ()
      | Some fi, Some fc ->
        if Interp_fold.packet_count fi <> Fold.packet_count fc then
          diverged "%s: packet counts differ (interp %d, compiled %d)" when_
            (Interp_fold.packet_count fi) (Fold.packet_count fc);
        List.iter2
          (fun (ni, vi) (nc, vc) ->
            if not (String.equal ni nc) then
              diverged "%s: field order differs (%s vs %s)" when_ ni nc;
            if bits vi <> bits vc then
              diverged "%s: field %s differs (interp %h, compiled %h)" when_ ni vi vc)
          (Interp_fold.fields fi)
          (Array.to_list (Fold.fields fc))
      | _ -> diverged "%s: one side has a fold, the other does not" when_
    in
    let feed_one row =
      (match (!ifold, !cfold) with
      | Some fi, Some fc ->
        Interp_fold.step ~incidents:inc_i fi ~flow_env ~pkt_env:(pkt_env row);
        Array.blit row 0 m.pkt 0 pkt_field_count;
        Fold.step fc ~m ~incidents:inc_c;
        compare_folds ~when_:"after packet" ()
      | None, None -> ()
      | _ -> diverged "fold presence mismatch");
      match (!ivec, !cvec) with
      | Some columns, Some (cprim : prim) -> (
        match cprim with
        | Measure_vector { col_idx; _ } ->
          Array.blit row 0 m.pkt 0 pkt_field_count;
          List.iteri
            (fun k f ->
              let vi = Option.value (pkt_env row f) ~default:0.0 in
              let vc = m.pkt.(col_idx.(k)) in
              if bits vi <> bits vc then
                diverged "vector column %s differs (interp %h, compiled %h)" f vi vc)
            columns
        | _ -> diverged "vector/compiled prim mismatch")
      | None, None -> ()
      | _ -> diverged "vector presence mismatch"
    in
    let cursor = ref 0 in
    let n_pkts = Array.length pkts in
    let feed k =
      let stop = min n_pkts (!cursor + k) in
      while !cursor < stop do
        feed_one pkts.(!cursor);
        incr cursor
      done
    in
    let decide ~what e code_ =
      let vi =
        Eval.eval ~incidents:inc_i { Eval.lookup_var = flow_env; lookup_pkt = (fun _ -> None) } e
      in
      exec code_ ~m ~slots:no_slots ~incidents:inc_c;
      let vc = m.stack.(0) in
      if bits vi <> bits vc then
        diverged "%s decision differs (interp %h, compiled %h)" what vi vc
    in
    let aprims = Array.of_list prog.Ast.prims in
    try
      let pc = ref 0 and steps = ref 0 in
      let running = ref (Array.length aprims > 0) in
      while !running && !steps < 4096 do
        incr steps;
        if !pc >= Array.length aprims then
          if prog.Ast.repeat && !cursor < n_pkts then pc := 0 else running := false
        else begin
          let i = !pc in
          incr pc;
          (match (aprims.(i), cp.prims.(i)) with
          | Ast.Measure (Ast.Fold def), (Measure_fold plan as _cprim) ->
            ifold := Some (Interp_fold.create def ~flow_env);
            cfold := Some (Fold.create plan ~m);
            ivec := None;
            cvec := None;
            compare_folds ~when_:"after init" ()
          | Ast.Measure (Ast.Vector fields), (Measure_vector _ as cprim) ->
            ifold := None;
            cfold := None;
            ivec := Some fields;
            cvec := Some cprim
          | Ast.Rate e, Rate c -> decide ~what:"Rate" e c
          | Ast.Cwnd e, Cwnd c -> decide ~what:"Cwnd" e c
          | Ast.Wait e, Wait c ->
            decide ~what:"Wait" e c;
            feed pkts_per_wait
          | Ast.Wait_rtts e, Wait_rtts c ->
            decide ~what:"WaitRtts" e c;
            feed pkts_per_wait
          | Ast.Report, Report -> (
            compare_folds ~when_:"at report" ();
            match (!ifold, !cfold) with
            | Some fi, Some fc ->
              Interp_fold.reset fi ~flow_env;
              Fold.reset fc ~m;
              compare_folds ~when_:"after report reset" ()
            | _ -> ())
          | _ -> diverged "prim shape mismatch at %d" i)
        end
      done;
      feed n_pkts;
      compare_folds ~when_:"at end" ();
      if inc_i.Eval.div_by_zero <> inc_c.Eval.div_by_zero then
        diverged "div_by_zero counts differ (interp %d, compiled %d)" inc_i.Eval.div_by_zero
          inc_c.Eval.div_by_zero;
      if inc_i.Eval.non_finite <> inc_c.Eval.non_finite then
        diverged "non_finite counts differ (interp %d, compiled %d)" inc_i.Eval.non_finite
          inc_c.Eval.non_finite;
      if inc_i.Eval.unknown_name <> 0 || inc_c.Eval.unknown_name <> 0 then
        diverged "unknown_name incidents on a compiled program (interp %d, compiled %d)"
          inc_i.Eval.unknown_name inc_c.Eval.unknown_name;
      Ok ()
    with Diverged msg -> Result.Error msg)
