(** Per-flow runtime of a {!Perturb_plan}: the stateful object the
    datapath consults at each measurement point.

    One sampler serves one flow. Its RNG streams are seeded explicitly
    (never split off the simulator root), so arming a perturbation does
    not shift any random draw the rest of the simulation makes — a
    perturbed run differs from the clean run only where the plan says it
    should.

    Every accessor is the identity (and draws nothing) for the parts of
    the plan that are absent, so a sampler over {!Perturb_plan.none}
    changes no behaviour at all. *)

open Ccp_util

type t

type stats = {
  rtt_samples : int;  (** RTT samples passed through the jitter model *)
  burst_episodes : int;  (** burst episodes opened *)
  rate_samples : int;  (** delivery-rate samples passed through *)
  rate_collapsed : int;  (** samples replaced by zero *)
  policer_passed : int;  (** data packets the token bucket admitted *)
  policer_dropped : int;  (** data packets the token bucket dropped *)
}

val zero_stats : stats
val merge_stats : stats -> stats -> stats

val create : seed:int -> Perturb_plan.t -> t
(** Equal seed and plan give byte-identical perturbation sequences. *)

val plan : t -> Perturb_plan.t

val rtt : t -> Time_ns.t -> Time_ns.t
(** Perturb one RTT sample per the plan's [rtt_jitter]; the result is
    clamped to at least 1 ns so downstream estimators never see a
    non-positive sample. Identity when the plan has no jitter. *)

val delivery_rate : t -> float -> float
(** Perturb one delivery-rate sample (bytes/second) per the plan's
    [rate_error]; clamped to at least 0. Identity when absent. *)

val admit_data : t -> now:Time_ns.t -> bytes:int -> bool
(** Token-bucket policer decision for one transmitted data packet.
    Deterministic (no RNG). Always [true] when the plan has no policer. *)

val stats : t -> stats
(** Immutable snapshot of the perturbation counters so far. *)
