open Ccp_util

type burst = { probability : float; extra : Time_ns.t; length : int }

type rtt_jitter = {
  additive_sigma : Time_ns.t;
  multiplicative : float;
  burst : burst option;
}

type rate_error = { multiplicative : float; collapse_probability : float }

type ack_stretch = { every : int }

type policer = { rate_bps : float; burst_bytes : int }

type t = {
  rtt_jitter : rtt_jitter option;
  rate_error : rate_error option;
  ack_stretch : ack_stretch option;
  policer : policer option;
}

let none = { rtt_jitter = None; rate_error = None; ack_stretch = None; policer = None }

let is_none t =
  t.rtt_jitter = None && t.rate_error = None && t.ack_stretch = None && t.policer = None

let check_probability what p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Perturb_plan: %s probability %g outside [0,1]" what p)

let check_spread what m =
  if not (m >= 0.0 && m < 1.0) then
    invalid_arg (Printf.sprintf "Perturb_plan: %s spread %g outside [0,1)" what m)

let make ?rtt_jitter ?rate_error ?ack_stretch ?policer () =
  Option.iter
    (fun (j : rtt_jitter) ->
      if Time_ns.compare j.additive_sigma Time_ns.zero < 0 then
        invalid_arg "Perturb_plan: rtt_jitter additive sigma is negative";
      check_spread "rtt_jitter multiplicative" j.multiplicative;
      Option.iter
        (fun (b : burst) ->
          check_probability "burst" b.probability;
          if Time_ns.compare b.extra Time_ns.zero < 0 then
            invalid_arg "Perturb_plan: burst extra delay is negative";
          if b.length < 1 then invalid_arg "Perturb_plan: burst length below 1")
        j.burst)
    rtt_jitter;
  Option.iter
    (fun (e : rate_error) ->
      check_spread "rate_error multiplicative" e.multiplicative;
      check_probability "rate collapse" e.collapse_probability)
    rate_error;
  Option.iter
    (fun (s : ack_stretch) ->
      if s.every < 1 then invalid_arg "Perturb_plan: ack stretch factor below 1")
    ack_stretch;
  Option.iter
    (fun (p : policer) ->
      if not (p.rate_bps > 0.0) then invalid_arg "Perturb_plan: policer rate must be positive";
      if p.burst_bytes <= 0 then invalid_arg "Perturb_plan: policer burst must be positive")
    policer;
  { rtt_jitter; rate_error; ack_stretch; policer }

let overlay a b = match b with Some _ -> b | None -> a

let compose a b =
  {
    rtt_jitter = overlay a.rtt_jitter b.rtt_jitter;
    rate_error = overlay a.rate_error b.rate_error;
    ack_stretch = overlay a.ack_stretch b.ack_stretch;
    policer = overlay a.policer b.policer;
  }

let ack_stretch_every t = match t.ack_stretch with Some s -> s.every | None -> 1

let describe t =
  if is_none t then "none"
  else begin
    let parts = ref [] in
    let add fmt = Printf.ksprintf (fun s -> parts := s :: !parts) fmt in
    Option.iter
      (fun (j : rtt_jitter) ->
        add "rtt-jitter=%s/±%g%s" (Time_ns.to_string j.additive_sigma) j.multiplicative
          (match j.burst with
          | Some b ->
            Printf.sprintf "+burst(%g,%s,x%d)" b.probability (Time_ns.to_string b.extra) b.length
          | None -> ""))
      t.rtt_jitter;
    Option.iter
      (fun (e : rate_error) ->
        add "rate-error=±%g/collapse=%g" e.multiplicative e.collapse_probability)
      t.rate_error;
    Option.iter (fun (s : ack_stretch) -> add "ack-stretch=%d" s.every) t.ack_stretch;
    Option.iter
      (fun (p : policer) -> add "policer=%gbps/%dB" p.rate_bps p.burst_bytes)
      t.policer;
    String.concat " " (List.rev !parts)
  end
