(** Composable measurement-noise perturbation for the datapath.

    Where {!Ccp_ipc.Fault_plan} degrades the IPC channel between the
    datapath and the agent, a perturbation plan degrades the datapath's
    {e measurement primitives} themselves — the raw inputs every
    measurement-based congestion-control algorithm folds over: RTT
    samples, delivery-rate samples, the ACK clock, and the data path's
    admitted rate. The robustness literature (Robustifying
    Measurement-Based CCAs) shows exactly these inputs are what breaks
    Vegas/BBR/Timely/PCC-style controllers in the wild; the plan makes
    each distortion a first-class, seeded, reproducible experiment knob.

    Every random decision is drawn from a {!Sampler}'s own RNG streams
    (seeded per flow, independent of the simulator root), so a perturbed
    run is exactly as reproducible as a clean one.

    The empty plan ({!none}) is the identity: a run configured with it
    performs {e no} extra RNG draws and is byte-for-byte identical to a
    run with no perturbation wired at all. *)

open Ccp_util

type burst = {
  probability : float;  (** chance an RTT sample opens a burst episode *)
  extra : Time_ns.t;  (** additional latency during the episode *)
  length : int;  (** samples per episode, including the trigger *)
}

type rtt_jitter = {
  additive_sigma : Time_ns.t;  (** gaussian noise added to each sample *)
  multiplicative : float;
      (** each sample is scaled by uniform [1-m, 1+m]; 0 disables *)
  burst : burst option;
      (** correlated episodes: once triggered, the next [length] samples
          all pay [extra] (bufferbloat-style plateaus, not white noise) *)
}

type rate_error = {
  multiplicative : float;
      (** each delivery-rate sample is scaled by uniform [1-m, 1+m] *)
  collapse_probability : float;
      (** chance a sample is replaced by 0 outright — the degenerate
          estimate ACK compression and stretch ACKs produce *)
}

type ack_stretch = {
  every : int;  (** receiver aggregates this many in-order segments per ACK *)
}

type policer = {
  rate_bps : float;  (** token refill rate, bits/second *)
  burst_bytes : int;  (** bucket depth *)
}

type t = {
  rtt_jitter : rtt_jitter option;
  rate_error : rate_error option;
  ack_stretch : ack_stretch option;
  policer : policer option;
      (** token-bucket policer on the flow's transmitted data packets:
          segments that find the bucket empty are dropped in the network
          (loss without queueing delay — the signature that confuses
          delay-based controllers) *)
}

val none : t
(** No perturbation. The identity plan. *)

val is_none : t -> bool
(** [true] iff the plan can never affect a sample; experiments skip the
    sampler (and its RNG streams) entirely in that case. *)

val make :
  ?rtt_jitter:rtt_jitter ->
  ?rate_error:rate_error ->
  ?ack_stretch:ack_stretch ->
  ?policer:policer ->
  unit ->
  t
(** Validating constructor. Raises [Invalid_argument] if a probability is
    outside \[0, 1\], a sigma/extra/spread is negative, a burst length or
    stretch factor is below 1, or a policer rate/burst is non-positive. *)

val compose : t -> t -> t
(** [compose a b] overlays [b] on [a], field by field; where both set a
    field, [b] wins. [none] is the identity on both sides. *)

val ack_stretch_every : t -> int
(** The receiver's ACK aggregation factor under this plan; 1 when no
    stretch is configured. *)

val describe : t -> string
(** One-line human-readable summary, ["none"] for the empty plan. *)
