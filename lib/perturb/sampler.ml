open Ccp_util

type stats = {
  rtt_samples : int;
  burst_episodes : int;
  rate_samples : int;
  rate_collapsed : int;
  policer_passed : int;
  policer_dropped : int;
}

let zero_stats =
  {
    rtt_samples = 0;
    burst_episodes = 0;
    rate_samples = 0;
    rate_collapsed = 0;
    policer_passed = 0;
    policer_dropped = 0;
  }

let merge_stats a b =
  {
    rtt_samples = a.rtt_samples + b.rtt_samples;
    burst_episodes = a.burst_episodes + b.burst_episodes;
    rate_samples = a.rate_samples + b.rate_samples;
    rate_collapsed = a.rate_collapsed + b.rate_collapsed;
    policer_passed = a.policer_passed + b.policer_passed;
    policer_dropped = a.policer_dropped + b.policer_dropped;
  }

type t = {
  plan : Perturb_plan.t;
  (* Separate streams per primitive: adding draws to one never shifts
     the other, so e.g. arming rate noise cannot change the jitter a
     combined plan applies to RTT samples. *)
  rtt_rng : Rng.t;
  rate_rng : Rng.t;
  mutable burst_left : int;  (* samples remaining in the open episode *)
  mutable tokens : float;  (* policer bucket, bytes *)
  mutable last_refill : Time_ns.t option;
  mutable rtt_samples : int;
  mutable burst_episodes : int;
  mutable rate_samples : int;
  mutable rate_collapsed : int;
  mutable policer_passed : int;
  mutable policer_dropped : int;
}

let create ~seed plan =
  let root = Rng.create ~seed in
  let rtt_rng = Rng.split root in
  let rate_rng = Rng.split root in
  {
    plan;
    rtt_rng;
    rate_rng;
    burst_left = 0;
    tokens =
      (match plan.Perturb_plan.policer with
      | Some p -> float_of_int p.Perturb_plan.burst_bytes
      | None -> 0.0);
    last_refill = None;
    rtt_samples = 0;
    burst_episodes = 0;
    rate_samples = 0;
    rate_collapsed = 0;
    policer_passed = 0;
    policer_dropped = 0;
  }

let plan t = t.plan

let min_rtt_floor = Time_ns.ns 1

let rtt t r =
  match t.plan.Perturb_plan.rtt_jitter with
  | None -> r
  | Some j ->
    t.rtt_samples <- t.rtt_samples + 1;
    let sec = Time_ns.to_float_sec r in
    let sec =
      if j.Perturb_plan.multiplicative > 0.0 then
        sec
        *. Rng.uniform t.rtt_rng
             ~lo:(1.0 -. j.Perturb_plan.multiplicative)
             ~hi:(1.0 +. j.Perturb_plan.multiplicative)
      else sec
    in
    let sec =
      if Time_ns.is_positive j.Perturb_plan.additive_sigma then
        sec
        +. Rng.gaussian t.rtt_rng ~mu:0.0
             ~sigma:(Time_ns.to_float_sec j.Perturb_plan.additive_sigma)
      else sec
    in
    let sec =
      match j.Perturb_plan.burst with
      | None -> sec
      | Some b ->
        if t.burst_left > 0 then begin
          t.burst_left <- t.burst_left - 1;
          sec +. Time_ns.to_float_sec b.Perturb_plan.extra
        end
        else if
          b.Perturb_plan.probability > 0.0
          && Rng.float t.rtt_rng 1.0 < b.Perturb_plan.probability
        then begin
          t.burst_episodes <- t.burst_episodes + 1;
          t.burst_left <- b.Perturb_plan.length - 1;
          sec +. Time_ns.to_float_sec b.Perturb_plan.extra
        end
        else sec
    in
    let out = Time_ns.of_float_sec sec in
    if Time_ns.compare out min_rtt_floor < 0 then min_rtt_floor else out

let delivery_rate t r =
  match t.plan.Perturb_plan.rate_error with
  | None -> r
  | Some e ->
    t.rate_samples <- t.rate_samples + 1;
    if
      e.Perturb_plan.collapse_probability > 0.0
      && Rng.float t.rate_rng 1.0 < e.Perturb_plan.collapse_probability
    then begin
      t.rate_collapsed <- t.rate_collapsed + 1;
      0.0
    end
    else if e.Perturb_plan.multiplicative > 0.0 then
      Float.max 0.0
        (r
        *. Rng.uniform t.rate_rng
             ~lo:(1.0 -. e.Perturb_plan.multiplicative)
             ~hi:(1.0 +. e.Perturb_plan.multiplicative))
    else r

let admit_data t ~now ~bytes =
  match t.plan.Perturb_plan.policer with
  | None -> true
  | Some p ->
    let elapsed =
      match t.last_refill with
      | None -> 0.0
      | Some last -> Time_ns.to_float_sec (Time_ns.sub now last)
    in
    t.last_refill <- Some now;
    t.tokens <-
      Float.min
        (float_of_int p.Perturb_plan.burst_bytes)
        (t.tokens +. (elapsed *. p.Perturb_plan.rate_bps /. 8.0));
    let b = float_of_int bytes in
    if t.tokens >= b then begin
      t.tokens <- t.tokens -. b;
      t.policer_passed <- t.policer_passed + 1;
      true
    end
    else begin
      t.policer_dropped <- t.policer_dropped + 1;
      false
    end

let stats t =
  {
    rtt_samples = t.rtt_samples;
    burst_episodes = t.burst_episodes;
    rate_samples = t.rate_samples;
    rate_collapsed = t.rate_collapsed;
    policer_passed = t.policer_passed;
    policer_dropped = t.policer_dropped;
  }
