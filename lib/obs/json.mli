(** Minimal JSON: just enough for the observability sinks.

    The flight recorder dumps JSONL, the metrics registry dumps a rows
    array, and CI re-parses both to prove the output is machine-readable.
    Pulling in a JSON package for that would be the only external
    dependency of the whole library, so we carry ~150 lines instead.

    Numbers are printed with ["%.12g"], which round-trips every value the
    recorder produces and is deterministic — the golden-trace test relies
    on byte-stable output for a fixed simulation. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering; object fields keep their order. *)

val parse : string -> (t, string) result
(** Strict parse of one JSON value (surrounding whitespace allowed).
    Errors carry a character offset. *)

val parse_exn : string -> t

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] otherwise. *)

val to_float : t -> float option
(** [Num] payload; [None] otherwise. *)

val to_str : t -> string option
