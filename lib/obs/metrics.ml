type counter = { c_name : string; c_unit : string; mutable count : int }

type gauge = { g_name : string; g_unit : string; value : float array }
(* [value] is a 1-element float array: an unboxed cell we can set from the
   hot path without allocating (a mutable float field in a mixed record
   would box on every store). *)

type histogram = {
  h_name : string;
  h_unit : string;
  bounds : float array; (* inclusive upper edges, strictly increasing *)
  counts : int array; (* length = Array.length bounds + 1 (overflow) *)
  sums : float array; (* 1 element: running sum, unboxed *)
  mutable observations : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = { table : (string, metric) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let default_bounds =
  (* 1-2-5 series covering 1 .. 5e8: ns-scale latencies up to ~0.5 s,
     byte counts up to ~500 MB. *)
  let edges = ref [] in
  let mag = ref 1.0 in
  while !mag <= 1e8 do
    edges := (5.0 *. !mag) :: (2.0 *. !mag) :: !mag :: !edges;
    mag := !mag *. 10.0
  done;
  Array.of_list (List.rev !edges)

let counter t ?(unit_ = "") name =
  match Hashtbl.find_opt t.table name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg (name ^ " already registered as a non-counter")
  | None ->
    let c = { c_name = name; c_unit = unit_; count = 0 } in
    Hashtbl.replace t.table name (Counter c);
    c

let gauge t ?(unit_ = "") name =
  match Hashtbl.find_opt t.table name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg (name ^ " already registered as a non-gauge")
  | None ->
    let g = { g_name = name; g_unit = unit_; value = [| 0.0 |] } in
    Hashtbl.replace t.table name (Gauge g);
    g

let check_bounds bounds =
  if Array.length bounds = 0 then invalid_arg "histogram needs >= 1 bound";
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "histogram bounds must be strictly increasing"
  done

let histogram t ?(unit_ = "") ?(bounds = default_bounds) name =
  match Hashtbl.find_opt t.table name with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg (name ^ " already registered as a non-histogram")
  | None ->
    check_bounds bounds;
    let h =
      {
        h_name = name;
        h_unit = unit_;
        bounds = Array.copy bounds;
        counts = Array.make (Array.length bounds + 1) 0;
        sums = [| 0.0 |];
        observations = 0;
      }
    in
    Hashtbl.replace t.table name (Histogram h);
    h

(* ---- hot path ---------------------------------------------------------- *)

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let counter_value c = c.count

let set g v = g.value.(0) <- v
let gauge_value g = g.value.(0)

(* Top-level so the recursive scan is a direct call: a [let rec] closure
   inside [observe] would allocate on every observation. *)
let rec bucket_index bounds n v i =
  if i < n && v > bounds.(i) then bucket_index bounds n v (i + 1) else i

let observe h v =
  (* Linear scan: bucket arrays are ~30 entries; binary search wins
     nothing at this size. *)
  let i = bucket_index h.bounds (Array.length h.bounds) v 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sums.(0) <- h.sums.(0) +. v;
  h.observations <- h.observations + 1

let observations h = h.observations

let hist_mean h =
  if h.observations = 0 then 0.0
  else h.sums.(0) /. float_of_int h.observations

let quantile_of_counts ~bounds ~counts ~observations q =
  if observations = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = q *. float_of_int observations in
    let nb = Array.length bounds in
    let rec walk i cum =
      if i > nb then bounds.(nb - 1)
      else
        let cum' = cum + counts.(i) in
        if float_of_int cum' >= target && counts.(i) > 0 then
          if i = nb then
            (* overflow bucket: no upper edge, report the last finite one *)
            bounds.(nb - 1)
          else
            let lo = if i = 0 then 0.0 else bounds.(i - 1) in
            let hi = bounds.(i) in
            let frac =
              (target -. float_of_int cum) /. float_of_int counts.(i)
            in
            lo +. ((hi -. lo) *. Float.max 0.0 (Float.min 1.0 frac))
        else walk (i + 1) cum'
    in
    walk 0 0
  end

let quantile h q =
  quantile_of_counts ~bounds:h.bounds ~counts:h.counts
    ~observations:h.observations q

let fraction_above ~bounds ~counts ~observations threshold =
  if observations = 0 then 0.0
  else begin
    let nb = Array.length bounds in
    let above = ref 0.0 in
    for i = 0 to nb do
      if counts.(i) > 0 then begin
        let lo = if i = 0 then 0.0 else bounds.(i - 1) in
        let hi = if i = nb then Float.max threshold bounds.(nb - 1) else bounds.(i) in
        let c = float_of_int counts.(i) in
        if threshold <= lo then above := !above +. c
        else if threshold < hi then
          (* linear interpolation inside the bucket, matching [quantile] *)
          above := !above +. (c *. ((hi -. threshold) /. (hi -. lo)))
      end
    done;
    !above /. float_of_int observations
  end

(* ---- snapshots --------------------------------------------------------- *)

type row = { name : string; value : float; unit_ : string }

let has_prefix ~prefix name =
  String.length name >= String.length prefix
  && String.equal (String.sub name 0 (String.length prefix)) prefix

let snapshot ?prefix t =
  let keep name =
    match prefix with None -> true | Some p -> has_prefix ~prefix:p name
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun _ metric ->
      match metric with
      | Counter c ->
        if keep c.c_name then
          rows :=
            { name = c.c_name; value = float_of_int c.count; unit_ = c.c_unit }
            :: !rows
      | Gauge g ->
        if keep g.g_name then
          rows :=
            { name = g.g_name; value = g.value.(0); unit_ = g.g_unit } :: !rows
      | Histogram h ->
        (* Filter on the base metric name: a prefix selects the whole
           histogram (all derived rows), never a slice of it. *)
        if keep h.h_name then begin
          let r name value unit_ = { name; value; unit_ } in
          rows :=
            r (h.h_name ^ "_count") (float_of_int h.observations) "count"
            :: r (h.h_name ^ "_mean") (hist_mean h) h.h_unit
            :: r (h.h_name ^ "_p50") (quantile h 0.50) h.h_unit
            :: r (h.h_name ^ "_p90") (quantile h 0.90) h.h_unit
            :: r (h.h_name ^ "_p99") (quantile h 0.99) h.h_unit
            :: !rows
        end)
    t.table;
  List.sort (fun a b -> compare a.name b.name) !rows

(* ---- raw views (for the windowed sampler) ------------------------------- *)

type hist_state = {
  hs_bounds : float array;
  hs_counts : int array;
  hs_sum : float;
  hs_observations : int;
}

type view =
  | V_counter of int
  | V_gauge of float
  | V_histogram of hist_state

let sorted_views t =
  let out = ref [] in
  Hashtbl.iter
    (fun _ metric ->
      match metric with
      | Counter c -> out := (c.c_name, c.c_unit, V_counter c.count) :: !out
      | Gauge g -> out := (g.g_name, g.g_unit, V_gauge g.value.(0)) :: !out
      | Histogram h ->
        out :=
          ( h.h_name,
            h.h_unit,
            V_histogram
              {
                hs_bounds = h.bounds;
                hs_counts = Array.copy h.counts;
                hs_sum = h.sums.(0);
                hs_observations = h.observations;
              } )
          :: !out)
    t.table;
  List.sort (fun (a, _, _) (b, _, _) -> compare a b) !out

let rows_to_json rows =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("name", Json.Str r.name);
             ("value", Json.Num r.value);
             ("unit", Json.Str r.unit_);
           ])
       rows)

let validate_rows_json json =
  match json with
  | Json.List rows ->
    let rec check i = function
      | [] -> Ok i
      | Json.Obj fields :: rest -> (
        let str k = Option.bind (List.assoc_opt k fields) Json.to_str in
        let num k = Option.bind (List.assoc_opt k fields) Json.to_float in
        match (str "name", num "value", str "unit") with
        | Some _, Some _, Some _ -> check (i + 1) rest
        | None, _, _ -> Error (Printf.sprintf "row %d: missing name" i)
        | _, None, _ -> Error (Printf.sprintf "row %d: missing value" i)
        | _, _, None -> Error (Printf.sprintf "row %d: missing unit" i))
      | _ :: _ -> Error (Printf.sprintf "row %d: not an object" i)
    in
    check 0 rows
  | _ -> Error "top level is not an array"

let pp_rows fmt rows =
  List.iter
    (fun r ->
      Format.fprintf fmt "%-48s %14.2f %s@." r.name r.value r.unit_)
    rows

let rows_of_json json =
  match validate_rows_json json with
  | Error _ as e -> e
  | Ok _ -> (
    match json with
    | Json.List objs ->
      Ok
        (List.map
           (fun o ->
             let str k = Option.get (Option.bind (Json.member k o) Json.to_str) in
             let num k = Option.get (Option.bind (Json.member k o) Json.to_float) in
             { name = str "name"; value = num "value"; unit_ = str "unit" })
           objs)
    | _ -> Error "top level is not an array")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let merge_rows_file ~path rows =
  let existing =
    if Sys.file_exists path then
      match Json.parse (read_file path) with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok json -> (
        match rows_of_json json with
        | Error e -> Error (Printf.sprintf "%s: %s" path e)
        | Ok rows -> Ok rows)
    else Ok []
  in
  match existing with
  | Error _ as e -> e
  | Ok old ->
    let replaced = List.map (fun r -> r.name) rows in
    let kept = List.filter (fun r -> not (List.mem r.name replaced)) old in
    let merged = List.sort (fun a b -> compare a.name b.name) (kept @ rows) in
    let json = rows_to_json merged in
    (* Self-check the schema before touching the file, like the bench writer. *)
    (match validate_rows_json json with
    | Error e -> Error e
    | Ok _ ->
      let oc = open_out path in
      output_string oc (Json.to_string json);
      output_string oc "\n";
      close_out oc;
      Ok (List.length merged))
