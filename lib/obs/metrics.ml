type counter = { c_name : string; c_unit : string; mutable count : int }

type gauge = { g_name : string; g_unit : string; value : float array }
(* [value] is a 1-element float array: an unboxed cell we can set from the
   hot path without allocating (a mutable float field in a mixed record
   would box on every store). *)

type histogram = {
  h_name : string;
  h_unit : string;
  bounds : float array; (* inclusive upper edges, strictly increasing *)
  counts : int array; (* length = Array.length bounds + 1 (overflow) *)
  sums : float array; (* 1 element: running sum, unboxed *)
  mutable observations : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = { table : (string, metric) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let default_bounds =
  (* 1-2-5 series covering 1 .. 5e8: ns-scale latencies up to ~0.5 s,
     byte counts up to ~500 MB. *)
  let edges = ref [] in
  let mag = ref 1.0 in
  while !mag <= 1e8 do
    edges := (5.0 *. !mag) :: (2.0 *. !mag) :: !mag :: !edges;
    mag := !mag *. 10.0
  done;
  Array.of_list (List.rev !edges)

let counter t ?(unit_ = "") name =
  match Hashtbl.find_opt t.table name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg (name ^ " already registered as a non-counter")
  | None ->
    let c = { c_name = name; c_unit = unit_; count = 0 } in
    Hashtbl.replace t.table name (Counter c);
    c

let gauge t ?(unit_ = "") name =
  match Hashtbl.find_opt t.table name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg (name ^ " already registered as a non-gauge")
  | None ->
    let g = { g_name = name; g_unit = unit_; value = [| 0.0 |] } in
    Hashtbl.replace t.table name (Gauge g);
    g

let check_bounds bounds =
  if Array.length bounds = 0 then invalid_arg "histogram needs >= 1 bound";
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "histogram bounds must be strictly increasing"
  done

let histogram t ?(unit_ = "") ?(bounds = default_bounds) name =
  match Hashtbl.find_opt t.table name with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg (name ^ " already registered as a non-histogram")
  | None ->
    check_bounds bounds;
    let h =
      {
        h_name = name;
        h_unit = unit_;
        bounds = Array.copy bounds;
        counts = Array.make (Array.length bounds + 1) 0;
        sums = [| 0.0 |];
        observations = 0;
      }
    in
    Hashtbl.replace t.table name (Histogram h);
    h

(* ---- hot path ---------------------------------------------------------- *)

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let counter_value c = c.count

let set g v = g.value.(0) <- v
let gauge_value g = g.value.(0)

(* Top-level so the recursive scan is a direct call: a [let rec] closure
   inside [observe] would allocate on every observation. *)
let rec bucket_index bounds n v i =
  if i < n && v > bounds.(i) then bucket_index bounds n v (i + 1) else i

let observe h v =
  (* Linear scan: bucket arrays are ~30 entries; binary search wins
     nothing at this size. *)
  let i = bucket_index h.bounds (Array.length h.bounds) v 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sums.(0) <- h.sums.(0) +. v;
  h.observations <- h.observations + 1

let observations h = h.observations

let hist_mean h =
  if h.observations = 0 then 0.0
  else h.sums.(0) /. float_of_int h.observations

let quantile h q =
  if h.observations = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = q *. float_of_int h.observations in
    let nb = Array.length h.bounds in
    let rec walk i cum =
      if i > nb then h.bounds.(nb - 1)
      else
        let cum' = cum + h.counts.(i) in
        if float_of_int cum' >= target && h.counts.(i) > 0 then
          if i = nb then
            (* overflow bucket: no upper edge, report the last finite one *)
            h.bounds.(nb - 1)
          else
            let lo = if i = 0 then 0.0 else h.bounds.(i - 1) in
            let hi = h.bounds.(i) in
            let frac =
              (target -. float_of_int cum) /. float_of_int h.counts.(i)
            in
            lo +. ((hi -. lo) *. Float.max 0.0 (Float.min 1.0 frac))
        else walk (i + 1) cum'
    in
    walk 0 0
  end

(* ---- snapshots --------------------------------------------------------- *)

type row = { name : string; value : float; unit_ : string }

let snapshot t =
  let rows = ref [] in
  Hashtbl.iter
    (fun _ metric ->
      match metric with
      | Counter c ->
        rows :=
          { name = c.c_name; value = float_of_int c.count; unit_ = c.c_unit }
          :: !rows
      | Gauge g ->
        rows :=
          { name = g.g_name; value = g.value.(0); unit_ = g.g_unit } :: !rows
      | Histogram h ->
        let r name value unit_ = { name; value; unit_ } in
        rows :=
          r (h.h_name ^ "_count") (float_of_int h.observations) "count"
          :: r (h.h_name ^ "_mean") (hist_mean h) h.h_unit
          :: r (h.h_name ^ "_p50") (quantile h 0.50) h.h_unit
          :: r (h.h_name ^ "_p90") (quantile h 0.90) h.h_unit
          :: r (h.h_name ^ "_p99") (quantile h 0.99) h.h_unit
          :: !rows)
    t.table;
  List.sort (fun a b -> compare a.name b.name) !rows

let rows_to_json rows =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("name", Json.Str r.name);
             ("value", Json.Num r.value);
             ("unit", Json.Str r.unit_);
           ])
       rows)

let validate_rows_json json =
  match json with
  | Json.List rows ->
    let rec check i = function
      | [] -> Ok i
      | Json.Obj fields :: rest -> (
        let str k = Option.bind (List.assoc_opt k fields) Json.to_str in
        let num k = Option.bind (List.assoc_opt k fields) Json.to_float in
        match (str "name", num "value", str "unit") with
        | Some _, Some _, Some _ -> check (i + 1) rest
        | None, _, _ -> Error (Printf.sprintf "row %d: missing name" i)
        | _, None, _ -> Error (Printf.sprintf "row %d: missing value" i)
        | _, _, None -> Error (Printf.sprintf "row %d: missing unit" i))
      | _ :: _ -> Error (Printf.sprintf "row %d: not an object" i)
    in
    check 0 rows
  | _ -> Error "top level is not an array"

let pp_rows fmt rows =
  List.iter
    (fun r ->
      Format.fprintf fmt "%-48s %14.2f %s@." r.name r.value r.unit_)
    rows

let rows_of_json json =
  match validate_rows_json json with
  | Error _ as e -> e
  | Ok _ -> (
    match json with
    | Json.List objs ->
      Ok
        (List.map
           (fun o ->
             let str k = Option.get (Option.bind (Json.member k o) Json.to_str) in
             let num k = Option.get (Option.bind (Json.member k o) Json.to_float) in
             { name = str "name"; value = num "value"; unit_ = str "unit" })
           objs)
    | _ -> Error "top level is not an array")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let merge_rows_file ~path rows =
  let existing =
    if Sys.file_exists path then
      match Json.parse (read_file path) with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok json -> (
        match rows_of_json json with
        | Error e -> Error (Printf.sprintf "%s: %s" path e)
        | Ok rows -> Ok rows)
    else Ok []
  in
  match existing with
  | Error _ as e -> e
  | Ok old ->
    let replaced = List.map (fun r -> r.name) rows in
    let kept = List.filter (fun r -> not (List.mem r.name replaced)) old in
    let merged = List.sort (fun a b -> compare a.name b.name) (kept @ rows) in
    let json = rows_to_json merged in
    (* Self-check the schema before touching the file, like the bench writer. *)
    (match validate_rows_json json with
    | Error e -> Error e
    | Ok _ ->
      let oc = open_out path in
      output_string oc (Json.to_string json);
      output_string oc "\n";
      close_out oc;
      Ok (List.length merged))
