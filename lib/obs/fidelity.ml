type run = {
  series : (float * float) array;
  utilization : float;
  median_rtt_ms : float;
}

type report = {
  cwnd_rmse : float;
  utilization_delta : float;
  median_rtt_delta_ms : float;
  samples : int;
}

let resample series ~t0 ~t1 ~n =
  if n <= 0 then invalid_arg "Fidelity.resample: n must be > 0";
  let len = Array.length series in
  let out = Array.make n 0.0 in
  if len = 0 then out
  else begin
    let step = if n = 1 then 0.0 else (t1 -. t0) /. float_of_int (n - 1) in
    (* One forward pass: both the grid and the series are time-ascending,
       so the source cursor only ever moves right. *)
    let j = ref 0 in
    for i = 0 to n - 1 do
      let t = t0 +. (step *. float_of_int i) in
      while !j < len - 1 && fst series.(!j + 1) <= t do
        j := !j + 1
      done;
      (* Before the first sample, hold the first value: a cwnd trace has
         no meaningful "zero before start". *)
      out.(i) <- snd series.(!j)
    done;
    out
  end

let rmse a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Fidelity.rmse: length mismatch";
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      let d = a.(i) -. b.(i) in
      acc := !acc +. (d *. d)
    done;
    sqrt (!acc /. float_of_int n)
  end

let compare_runs ?(samples = 512) ~ccp ~native () =
  if Array.length ccp.series = 0 then
    invalid_arg "Fidelity.compare_runs: empty ccp series";
  if Array.length native.series = 0 then
    invalid_arg "Fidelity.compare_runs: empty native series";
  let first s = fst s.(0) and last s = fst s.(Array.length s - 1) in
  let t0 = Float.max (first ccp.series) (first native.series) in
  let t1 = Float.min (last ccp.series) (last native.series) in
  if t1 <= t0 then
    invalid_arg "Fidelity.compare_runs: series time ranges do not overlap";
  let a = resample ccp.series ~t0 ~t1 ~n:samples in
  let b = resample native.series ~t0 ~t1 ~n:samples in
  let mean_b =
    Array.fold_left ( +. ) 0.0 b /. float_of_int (Array.length b)
  in
  let raw = rmse a b in
  let cwnd_rmse = if mean_b > 0.0 then raw /. mean_b else raw in
  {
    cwnd_rmse;
    utilization_delta = ccp.utilization -. native.utilization;
    median_rtt_delta_ms = ccp.median_rtt_ms -. native.median_rtt_ms;
    samples;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "cwnd RMSE %.4f (normalized) | utilization delta %+.2f pts | median RTT \
     delta %+.2f ms | %d samples"
    r.cwnd_rmse
    (r.utilization_delta *. 100.0)
    r.median_rtt_delta_ms r.samples
