type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ---------------------------------------------------------- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f ->
    (* JSON has no NaN/inf; degrade to null rather than emit garbage. *)
    if Float.is_nan f || Float.abs f = infinity then
      Buffer.add_string buf "null"
    else Buffer.add_string buf (num_to_string f)
  | Str s ->
    Buffer.add_char buf '"';
    escape_into buf s;
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_into buf k;
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

(* ---- parsing ----------------------------------------------------------- *)

exception Fail of int * string

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let fail p msg = raise (Fail (p.pos, msg))

let skip_ws p =
  let continue = ref true in
  while !continue do
    match peek p with
    | Some (' ' | '\t' | '\n' | '\r') -> advance p
    | _ -> continue := false
  done

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | _ -> fail p (Printf.sprintf "expected %c" c)

let parse_literal p lit value =
  let n = String.length lit in
  if p.pos + n <= String.length p.src && String.sub p.src p.pos n = lit then (
    p.pos <- p.pos + n;
    value)
  else fail p (Printf.sprintf "expected %s" lit)

let parse_string_body p =
  (* [p.pos] is just past the opening quote *)
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek p with
    | None -> fail p "unterminated string"
    | Some '"' -> advance p
    | Some '\\' -> (
      advance p;
      match peek p with
      | Some '"' -> advance p; Buffer.add_char buf '"'; loop ()
      | Some '\\' -> advance p; Buffer.add_char buf '\\'; loop ()
      | Some '/' -> advance p; Buffer.add_char buf '/'; loop ()
      | Some 'n' -> advance p; Buffer.add_char buf '\n'; loop ()
      | Some 'r' -> advance p; Buffer.add_char buf '\r'; loop ()
      | Some 't' -> advance p; Buffer.add_char buf '\t'; loop ()
      | Some 'b' -> advance p; Buffer.add_char buf '\b'; loop ()
      | Some 'f' -> advance p; Buffer.add_char buf '\012'; loop ()
      | Some 'u' ->
        advance p;
        if p.pos + 4 > String.length p.src then fail p "short \\u escape";
        let hex = String.sub p.src p.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> fail p "bad \\u escape"
        in
        p.pos <- p.pos + 4;
        (* Only BMP, encoded as UTF-8; enough for our own output. *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then (
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
        else (
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))));
        loop ()
      | _ -> fail p "bad escape")
    | Some c ->
      advance p;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number p =
  let start = p.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek p with Some c -> is_num_char c | None -> false) do
    advance p
  done;
  if p.pos = start then fail p "expected number";
  let s = String.sub p.src start (p.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail p ("bad number " ^ s)

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail p "unexpected end of input"
  | Some 'n' -> parse_literal p "null" Null
  | Some 't' -> parse_literal p "true" (Bool true)
  | Some 'f' -> parse_literal p "false" (Bool false)
  | Some '"' ->
    advance p;
    Str (parse_string_body p)
  | Some '[' ->
    advance p;
    skip_ws p;
    if peek p = Some ']' then (
      advance p;
      List [])
    else
      let rec items acc =
        let v = parse_value p in
        skip_ws p;
        match peek p with
        | Some ',' ->
          advance p;
          items (v :: acc)
        | Some ']' ->
          advance p;
          List.rev (v :: acc)
        | _ -> fail p "expected , or ]"
      in
      List (items [])
  | Some '{' ->
    advance p;
    skip_ws p;
    if peek p = Some '}' then (
      advance p;
      Obj [])
    else
      let field () =
        skip_ws p;
        expect p '"';
        let k = parse_string_body p in
        skip_ws p;
        expect p ':';
        let v = parse_value p in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws p;
        match peek p with
        | Some ',' ->
          advance p;
          fields (kv :: acc)
        | Some '}' ->
          advance p;
          List.rev (kv :: acc)
        | _ -> fail p "expected , or }"
      in
      Obj (fields [])
  | Some _ -> Num (parse_number p)

let parse s =
  let p = { src = s; pos = 0 } in
  match
    let v = parse_value p in
    skip_ws p;
    if p.pos <> String.length s then fail p "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (pos, msg) ->
    Error (Printf.sprintf "JSON parse error at %d: %s" pos msg)

let parse_exn s =
  match parse s with Ok v -> v | Error e -> invalid_arg e

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_str = function Str s -> Some s | _ -> None
