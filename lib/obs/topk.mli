(** Space-saving (Misra–Gries) heavy-hitter sketches keyed by flow id.

    A sketch tracks at most [k] keys in preallocated arrays. Updates for
    a tracked key are O(1); a miss with the sketch full evicts the
    minimum-count entry (ties to the lowest slot, deterministically) and
    the newcomer inherits its count as recorded overestimation error.

    Guarantees (property-tested in [test/test_telemetry.ml]): for every
    tracked key, [count - err <= true <= count], and
    [err <= total / k] — so any key whose true count exceeds [total / k]
    of the stream is always tracked. That is what makes per-flow
    contributions (reports, sheds, orphans, queue wait, guard incidents)
    observable at N=2048 flows without O(N) metric names.

    A {!t} is a get-or-create registry of named sketches, mirroring the
    {!Metrics} idiom so call sites pre-resolve handles once. *)

type t
(** Registry of named sketches. *)

type sketch

type entry = { key : int; count : int; err : int }
(** [count] over-estimates the true count by at most [err]. *)

val create : ?k:int -> unit -> t
(** [k] is the default capacity for sketches created through this
    registry (64 when omitted). *)

val default_k : t -> int

val sketch : t -> ?k:int -> string -> sketch
(** Get or create by name. [k] applies only on creation. *)

val name : sketch -> string
val k : sketch -> int

val total : sketch -> int
(** Total weight ever added (the stream length N). *)

val tracked : sketch -> int
(** Keys currently tracked ([<= k]). *)

val touch : sketch -> int -> unit
(** [touch s key] adds weight 1. *)

val add : sketch -> int -> int -> unit
(** [add s key w] adds weight [w >= 0]; raises on negative weight. *)

val entries : sketch -> entry list
(** Tracked entries, heaviest first (ties by ascending key) —
    deterministic regardless of hashtable layout. *)

val find : sketch -> int -> entry option

val error_bound : sketch -> int
(** [total / k] when the sketch has ever been full, else 0: an upper
    bound on every entry's [err]. *)

val sketches : t -> sketch list
(** All sketches, sorted by name. *)

val sketch_to_json : sketch -> Json.t
val to_json : t -> Json.t
(** Sorted array of [{"name";"k";"total";"entries":[{"key";"count";"err"}]}]. *)
