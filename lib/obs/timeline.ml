(* The ccp-timeline/v1 document: windowed time-series plus the optional
   heavy-hitter and health sections, composed from one Obs bundle and
   schema-validated the same way the scenario scorecards are — the
   writer re-reads and re-validates the file it just produced, and the
   byte-exact seed-42 chaos golden pins the format. *)

let schema_tag = "ccp-timeline/v1"

let compose ~timeseries ?topk ?health () =
  let base =
    [
      ("schema", Json.Str schema_tag);
      ( "window_s",
        Json.Num (float_of_int (Timeseries.window_ns timeseries) /. 1e9) );
      ( "windows_total",
        Json.Num (float_of_int (Timeseries.closed_windows timeseries)) );
      ( "windows_dropped",
        Json.Num (float_of_int (Timeseries.dropped_windows timeseries)) );
      ("windows", Timeseries.windows_to_json timeseries);
    ]
  in
  let with_topk =
    match topk with None -> [] | Some tk -> [ ("topk", Topk.to_json tk) ]
  in
  let with_health =
    match health with None -> [] | Some h -> [ ("health", Health.to_json h) ]
  in
  Json.Obj (base @ with_topk @ with_health)

let of_obs (obs : Obs.t) =
  match obs.Obs.timeseries with
  | None -> Error "Timeline.of_obs: bundle has no timeseries"
  | Some ts -> Ok (compose ~timeseries:ts ?topk:obs.Obs.topk ?health:obs.Obs.health ())

(* ---- validation --------------------------------------------------------- *)

let ( let* ) = Result.bind

let str name obj =
  match Json.member name obj with
  | Some (Json.Str s) -> Ok s
  | _ -> Error (Printf.sprintf "missing string field %S" name)

let num name obj =
  match Option.bind (Json.member name obj) Json.to_float with
  | Some v when Float.is_finite v -> Ok v
  | _ -> Error (Printf.sprintf "missing or non-finite numeric field %S" name)

let counter name obj =
  let* v = num name obj in
  if v >= 0.0 && Float.is_integer v then Ok v
  else Error (Printf.sprintf "field %S = %g is not a non-negative integer" name v)

let arr name obj =
  match Json.member name obj with
  | Some (Json.List l) -> Ok l
  | _ -> Error (Printf.sprintf "missing array field %S" name)

let fold_each ctx check l =
  let rec go i = function
    | [] -> Ok ()
    | x :: rest -> (
      match Result.map_error (fun e -> Printf.sprintf "%s %d: %s" ctx i e) (check x) with
      | Ok () -> go (i + 1) rest
      | Error _ as e -> e)
  in
  go 0 l

let check_point p =
  let* _ = str "name" p in
  let* _ = str "unit" p in
  let* kind = str "kind" p in
  match kind with
  | "counter" ->
    let* _ = num "delta" p in
    let* _ = num "rate" p in
    Ok ()
  | "gauge" ->
    let* lo = num "min" p in
    let* hi = num "max" p in
    let* last = num "last" p in
    if lo <= last && last <= hi then Ok ()
    else Error (Printf.sprintf "gauge last %g outside [min %g, max %g]" last lo hi)
  | "histogram" ->
    let* _ = counter "count" p in
    let* _ = num "mean" p in
    let* p50 = num "p50" p in
    let* p90 = num "p90" p in
    let* p99 = num "p99" p in
    if p50 <= p90 && p90 <= p99 then Ok ()
    else Error (Printf.sprintf "quantiles not monotone (%g, %g, %g)" p50 p90 p99)
  | k -> Error (Printf.sprintf "unknown point kind %S" k)

let check_window w =
  let* _ = counter "index" w in
  let* t0 = num "t_start_s" w in
  let* t1 = num "t_end_s" w in
  let* () =
    if t0 >= 0.0 && t1 > t0 then Ok ()
    else Error (Printf.sprintf "window span (%g, %g) inconsistent" t0 t1)
  in
  let* points = arr "metrics" w in
  fold_each "point" check_point points

let check_sketch s =
  let* _ = str "name" s in
  let* k = counter "k" s in
  let* total = counter "total" s in
  let* entries = arr "entries" s in
  let* () =
    if float_of_int (List.length entries) <= k then Ok ()
    else Error "more entries than k"
  in
  let bound = if List.length entries < int_of_float k then 0.0 else total /. k in
  fold_each "entry" (fun e ->
      let* _ = counter "key" e in
      let* _ = counter "count" e in
      let* err = counter "err" e in
      if err <= bound then Ok ()
      else Error (Printf.sprintf "err %g exceeds space-saving bound %g" err bound))
    entries

let check_transition tr =
  let* _ = str "slo" tr in
  let* _ = counter "window" tr in
  let* _ = num "t_s" tr in
  let* to_ = str "to" tr in
  let* () =
    if to_ = "firing" || to_ = "ok" then Ok ()
    else Error (Printf.sprintf "unknown alert state %S" to_)
  in
  let* _ = num "burn_short" tr in
  let* _ = num "burn_long" tr in
  Ok ()

let check_slo s =
  let* _ = str "slo" s in
  let* obj = num "objective" s in
  let* () =
    if obj > 0.0 && obj <= 1.0 then Ok ()
    else Error (Printf.sprintf "objective %g out of (0, 1]" obj)
  in
  let* _ = num "bad" s in
  let* _ = num "total" s in
  let* frac = num "bad_fraction" s in
  let* () =
    if frac >= 0.0 && frac <= 1.0 +. 1e-9 then Ok ()
    else Error (Printf.sprintf "bad_fraction %g out of range" frac)
  in
  let* _ = counter "breaches" s in
  let* _ = counter "fired" s in
  let* _ = num "worst_burn" s in
  let* final = str "final_state" s in
  let* () =
    if final = "firing" || final = "ok" then Ok ()
    else Error (Printf.sprintf "unknown final state %S" final)
  in
  match Json.member "pass" s with
  | Some (Json.Bool _) -> Ok ()
  | _ -> Error "missing boolean field \"pass\""

let validate_health h =
  let* _ = num "burn_threshold" h in
  let* _ = counter "long_windows" h in
  let* _ = counter "windows_evaluated" h in
  let* slos = arr "slos" h in
  let* () = fold_each "slo" check_slo slos in
  let* transitions = arr "transitions" h in
  fold_each "transition" check_transition transitions

let validate json =
  let* schema = str "schema" json in
  let* () =
    if schema = schema_tag then Ok ()
    else Error (Printf.sprintf "schema is %S, want %S" schema schema_tag)
  in
  let* w = num "window_s" json in
  let* () =
    if w > 0.0 then Ok () else Error (Printf.sprintf "window_s %g not positive" w)
  in
  let* total = counter "windows_total" json in
  let* dropped = counter "windows_dropped" json in
  let* windows = arr "windows" json in
  let held = List.length windows in
  let* () =
    if float_of_int held +. dropped = total then Ok ()
    else
      Error
        (Printf.sprintf "held %d + dropped %g windows != total %g" held dropped total)
  in
  let* () = fold_each "window" check_window windows in
  let* () =
    match Json.member "topk" json with
    | None -> Ok ()
    | Some (Json.List sketches) -> fold_each "sketch" check_sketch sketches
    | Some _ -> Error "\"topk\" is not an array"
  in
  let* () =
    match Json.member "health" json with
    | None -> Ok ()
    | Some h -> validate_health h
  in
  Ok held
