(** Fidelity: quantitative distance between a CCP run and a native run.

    The paper's Figure 3/4 argument is visual — "the window dynamics are
    microscopically identical". This module makes it a number: align the
    two cwnd traces on a common time grid (step interpolation, matching
    how cwnd actually evolves) and compute a normalized RMSE, plus the
    utilization and median-RTT deltas the figures report. The regression
    tests assert thresholds on the result. *)

type run = {
  series : (float * float) array; (* (time_sec, value), time-ascending *)
  utilization : float; (* fraction of bottleneck, 0..1 *)
  median_rtt_ms : float;
}

type report = {
  cwnd_rmse : float;
      (** RMSE of the two resampled traces, normalized by the mean of the
          reference (native) trace; 0 = identical, 0.1 = 10% of mean. *)
  utilization_delta : float; (** ccp - native, in fraction points *)
  median_rtt_delta_ms : float; (** ccp - native *)
  samples : int; (** grid points actually compared *)
}

val resample : (float * float) array -> t0:float -> t1:float -> n:int -> float array
(** Step-interpolate a series onto [n] evenly spaced points in
    [\[t0, t1\]]: each grid point takes the last value at-or-before it
    (the first value before the series starts). Empty series -> zeros. *)

val rmse : float array -> float array -> float
(** Plain RMSE of two equal-length vectors. *)

val compare_runs : ?samples:int -> ccp:run -> native:run -> unit -> report
(** Compare over the overlapping time range of the two series.
    [samples] defaults to 512. Raises [Invalid_argument] if either
    series is empty or the ranges do not overlap. *)

val pp_report : Format.formatter -> report -> unit
