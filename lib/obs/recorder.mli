(** Flight recorder: a bounded ring of typed events.

    Producers ([Tcp_flow], [Ccp_ext], [Channel], [Experiment]) record
    events with the simulation timestamp; when the ring is full the
    oldest event is overwritten and [dropped] counts exactly how many
    were lost. Memory is two preallocated arrays — recording an event
    stores into existing slots and allocates only the event value itself.

    Sinks: JSONL (one event object per line, oldest first) and a CSV of
    just the [Flow_sample] rows for plotting cwnd/rate/RTT traces. *)

(** A finalized control-loop span from {!Tracer}: all [*_at] fields are
    simulation nanoseconds, -1 when the span never reached that stage;
    [*_ns] fields are wall-clock stage costs (0 when unmeasured). *)
type span = {
  id : int;
  flow : int;
  kind : string; (* "report" | "urgent" *)
  disposition : string; (* "actuated" | "no_action" | "rejected" | "orphaned" | "shed" *)
  started_at : int;
  sent_at : int;
  agent_at : int;
  action_at : int;
  done_at : int;
  summarize_ns : float;
  handler_ns : float;
  apply_ns : float;
}

type event =
  | Flow_sample of {
      flow : int;
      cwnd : int; (* bytes *)
      rate : float; (* bytes/sec; 0 when unpaced *)
      srtt_us : float; (* 0 until first sample *)
      inflight : int; (* bytes outstanding *)
      delivery_rate : float; (* bytes/sec *)
    }
  | Queue_sample of { bytes : int }
  | Install of { flow : int; accepted : bool; detail : string }
  | Quarantine of { flow : int; incidents : int; dominant : string }
  | Fallback of { flow : int; entered : bool }
  | Report_sent of { flow : int; urgent : bool }
  | Ipc_fault of { kind : string }
  | Span of span
  | Alert of { slo : string; state : string; burn_short : float; burn_long : float }
      (** {!Health} burn-rate alert state transition (JSONL kind
          ["alert"]); [state] is ["firing"] or ["ok"]. *)
  | Custom of { name : string; value : float }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 65536 events. *)

val capacity : t -> int

val record : t -> at:int -> event -> unit
(** [at] is the simulation timestamp in nanoseconds ([Time_ns.t]). *)

val length : t -> int
(** Events currently held (<= capacity). *)

val recorded : t -> int
(** Total events ever recorded, including dropped ones. *)

val dropped : t -> int
(** Events overwritten because the ring was full. *)

val to_list : t -> (int * event) list
(** Held events, oldest first. *)

val event_to_json : at:int -> event -> Json.t

val to_jsonl : t -> string
(** One JSON object per line, oldest first, trailing newline. *)

val flow_samples_csv : t -> string
(** Header + one row per [Flow_sample]:
    [time_s,flow,cwnd_bytes,rate_bps,srtt_us,inflight_bytes,delivery_rate_bps]. *)

val flow_series : t -> flow:int -> (float -> event -> float option) -> (float * float) array
(** Extract a (time_sec, value) series for one flow; the callback picks
    the value out of each event (returning [None] to skip). Used by the
    fidelity comparison. *)

val cwnd_of_event : flow:int -> float -> event -> float option
(** Selector for [flow_series]: cwnd in bytes of [Flow_sample]s. *)
