(** Causal span tracing across the control loop.

    One span covers one control-loop iteration: minted in the datapath
    when a report or urgent event departs, carried across the IPC channel
    as an integer token, re-armed while the agent handler runs, attached
    to the resulting [Install]/[Set_cwnd]/[Set_rate], and finalized when
    the datapath applies (or refuses) the control. Stage timings feed the
    [trace.*] metrics; finalized spans land in the flight recorder as
    {!Recorder.Span} events and export to Chrome [trace_event] JSON.

    Tokens come from a preallocated pool ([slot lor (gen lsl bits)]);
    freeing a slot bumps its generation, so stale tokens — duplicate or
    reordered deliveries arriving after the span finalized — are counted
    ([trace.stale_refs]) and otherwise ignored. Spans whose message is
    lost to a fault are finalized with the [Orphaned] disposition, so the
    pool cannot leak under any fault plan. *)

type t

type disposition = Actuated | No_action | Rejected | Orphaned | Shed

val disposition_to_string : disposition -> string

type span_kind = Report_span | Urgent_span

val span_kind_to_string : span_kind -> string

val create :
  ?capacity:int ->
  metrics:Metrics.t ->
  ?recorder:Recorder.t ->
  ?tk_orphans:Topk.sketch ->
  clock:(unit -> float) ->
  unit ->
  t
(** [capacity] (default 1024) is rounded up to a power of two. [clock]
    returns wall nanoseconds and times the summarize/handler/apply
    stages; simulation timestamps are passed per call. [tk_orphans], when
    given, is touched with the span's flow id on every [Orphaned]
    finalization — the tracer is the only place that still knows the
    flow of a message lost in flight. *)

val no_span : int
(** [-1]: the token meaning "no span". Safe to pass to every operation. *)

(** {1 Lifecycle} *)

val start : t -> now:int -> flow:int -> kind:span_kind -> int
(** Mint a span at simulation time [now]; returns its token, or
    {!no_span} when the pool is exhausted (counted in
    [trace.spans_dropped]). Allocation-free. *)

val sent : t -> int -> now:int -> unit
(** The traced message entered the channel: stamps the sim send time and
    observes the wall-clock summarize cost ([trace.summarize_ns]). *)

val arrived : t -> int -> now:int -> unit
(** First arrival at the agent end (later arrivals keep the first stamp). *)

val handler_begin : t -> int -> unit
(** The agent handler for this span starts: begins wall handler timing
    and arms the span as {!active} so outgoing control messages can
    attach to it. *)

val handler_end : t -> int -> now:int -> unit
(** Handler done: observes [trace.handler_ns] and disarms. A span that no
    control message claimed is finalized here with [No_action]. *)

val active : t -> int
(** The armed span awaiting its first control message, or {!no_span}. *)

val note_send : t -> int -> now:int -> unit
(** An outgoing control message claimed the span: stamps the action time
    and marks it consumed (later sends in the same handler get no span). *)

val finish : t -> int -> now:int -> disposition:disposition -> apply_ns:float -> unit
(** Finalize: observe stage histograms ([trace.reaction_us] only for
    [Actuated]), record a {!Recorder.Span} event, return the slot to the
    pool. Stale tokens are counted and ignored. *)

val orphan : t -> int -> now:int -> unit
(** [finish] with [Orphaned] — the traced message was dropped by a fault
    (random loss, partition, crashed agent). *)

val shed : t -> int -> now:int -> unit
(** [finish] with [Shed] — the agent's overload control dropped the
    traced report before its handler ran. Counted in
    [trace.spans_shed]. *)

(** {1 Accounting} *)

type stats = {
  started : int;
  actuated : int;
  no_action : int;
  rejected : int;
  orphaned : int;
  shed : int;  (** dropped by agent overload control before the handler *)
  dropped : int;  (** mints refused because the pool was empty *)
  stale_refs : int;
  live : int;  (** started and not yet finalized *)
}

val stats : t -> stats
(** Invariant:
    [started = actuated + no_action + rejected + orphaned + shed + live]. *)

val pool_capacity : t -> int
val free_slots : t -> int
(** Invariant: [free_slots = pool_capacity - live]. *)

val live_spans : t -> int

val wall_clock : t -> unit -> float
(** The wall clock the tracer was created with, for callers that time
    work they report via [~apply_ns]. *)

(** {1 Chrome trace_event export} *)

val chrome_of_recorder : Recorder.t -> Json.t
(** All {!Recorder.Span} events as a [{"traceEvents": [...]}] object for
    chrome://tracing / Perfetto: one complete ("X") event per reaction
    and per IPC leg ([ts]/[dur] in microseconds of simulation time,
    [pid] 1, [tid] = flow), plus handler/apply instants carrying the
    wall-clock stage costs in [args]. *)

val validate_chrome : Json.t -> (int, string) result
(** Check a parsed value against the Chrome trace shape; [Ok n] gives the
    event count. Shared by the golden test and the CI trace-smoke. *)
