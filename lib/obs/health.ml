(* SLO engine over the windowed timeline.

   Each SLO names a service-level indicator computed from one closed
   window's cumulative-counter deltas: either a bad/total event ratio
   (orphans per span started, sheds per report, decode failures per
   message) or the fraction of a histogram's per-window observations
   above a latency budget (actuation latency vs the paper's Figure-2
   budget). The burn rate is that bad fraction divided by the SLO
   objective — burn 1.0 exactly consumes the error budget.

   Alerting is the SRE multi-window shape: an alert fires when both the
   short-window burn (the window that just closed) and the long-window
   burn (aggregated deltas over the last [long_windows] closes) reach
   [burn_threshold], and clears as soon as [clear_windows] consecutive
   short windows are back under it. The long window keeps a transient
   blip from paging; the short window makes recovery visible
   immediately — which is exactly the chaos-scenario contract: the
   agent-crash window fires, the first healthy window after restart
   clears.

   State transitions are recorded in the flight recorder as [Alert]
   events, and final per-SLO verdicts (whole-run bad fraction vs
   objective) are what the scenario scorecards embed. *)

type sli =
  | Event_ratio of { bad : string list; total : string list }
  | Latency_above of { hist : string; budget : float }

type slo = { slo_name : string; sli : sli; objective : float }

type config = {
  slos : slo list;
  burn_threshold : float;
  long_windows : int;
  clear_windows : int;
}

let ratio name ~bad ~total ~objective =
  { slo_name = name; sli = Event_ratio { bad; total }; objective }

let default_config ?(budget_us = 100_000.0) () =
  {
    slos =
      [
        {
          slo_name = "actuation_latency";
          sli = Latency_above { hist = "trace.reaction_us"; budget = budget_us };
          objective = 0.01;
        };
        ratio "orphan_rate" ~bad:[ "trace.spans_orphaned" ]
          ~total:[ "trace.spans_started" ] ~objective:0.05;
        ratio "shed_rate" ~bad:[ "agent.reports_shed" ]
          ~total:[ "agent.reports_shed"; "agent.reports_received" ]
          ~objective:0.9;
        ratio "decode_failure_rate" ~bad:[ "ipc.decode_failures" ]
          ~total:[ "ipc.to_agent.messages"; "ipc.to_datapath.messages" ]
          ~objective:0.01;
        ratio "staleness" ~bad:[ "trace.stale_refs"; "agent.pool.stale_derefs" ]
          ~total:[ "ipc.to_agent.messages"; "ipc.to_datapath.messages" ]
          ~objective:0.01;
        ratio "quarantine_rate" ~bad:[ "datapath.quarantines" ]
          ~total:[ "datapath.reports_sent" ] ~objective:0.01;
      ];
    burn_threshold = 10.0;
    long_windows = 8;
    clear_windows = 1;
  }

type alert_state = Ok_state | Firing

let state_to_string = function Ok_state -> "ok" | Firing -> "firing"

type transition = {
  tr_slo : string;
  tr_window : int;  (* window index of the close that transitioned *)
  tr_at : int;  (* ns *)
  tr_to : alert_state;
  tr_burn_short : float;
  tr_burn_long : float;
}

(* Per-SLO running state: a ring of the last [long_windows] per-window
   (bad, total) pairs, whole-run totals, and the alert FSM. *)
type slo_state = {
  slo : slo;
  ring_bad : float array;
  ring_total : float array;
  mutable ring_next : int;
  mutable ring_filled : int;
  mutable run_bad : float;
  mutable run_total : float;
  mutable state : alert_state;
  mutable ok_streak : int;
  mutable fired : int;  (* alert episodes *)
  mutable breaches : int;  (* windows with short burn >= threshold *)
  mutable worst_burn : float;
}

type t = {
  cfg : config;
  states : slo_state list;
  recorder : Recorder.t option;
  mutable transitions : transition list;  (* newest first *)
  mutable windows_evaluated : int;
}

let create ?(config = default_config ()) ?recorder () =
  if config.burn_threshold <= 0.0 then
    invalid_arg "Health.create: burn_threshold must be > 0";
  if config.long_windows <= 0 then
    invalid_arg "Health.create: long_windows must be > 0";
  if config.clear_windows <= 0 then
    invalid_arg "Health.create: clear_windows must be > 0";
  List.iter
    (fun s ->
      if s.objective <= 0.0 || s.objective > 1.0 then
        invalid_arg
          (Printf.sprintf "Health.create: SLO %s objective must be in (0, 1]"
             s.slo_name))
    config.slos;
  {
    cfg = config;
    states =
      List.map
        (fun slo ->
          {
            slo;
            ring_bad = Array.make config.long_windows 0.0;
            ring_total = Array.make config.long_windows 0.0;
            ring_next = 0;
            ring_filled = 0;
            run_bad = 0.0;
            run_total = 0.0;
            state = Ok_state;
            ok_streak = 0;
            fired = 0;
            breaches = 0;
            worst_burn = 0.0;
          })
        config.slos;
    recorder;
    transitions = [];
    windows_evaluated = 0;
  }

let config t = t.cfg

(* Extract one SLI's (bad, total) event counts from a closed window. A
   metric missing from the window contributes zero — window points are
   delta-suppressed, so absence means no activity. *)
let window_counts (w : Timeseries.window) sli =
  let counter_delta name =
    match Timeseries.point w name with
    | Some (Timeseries.Counter_point { delta; _ }) -> float_of_int delta
    | _ -> 0.0
  in
  let sum names = List.fold_left (fun acc n -> acc +. counter_delta n) 0.0 names in
  match sli with
  | Event_ratio { bad; total } -> (sum bad, sum total)
  | Latency_above { hist; budget } -> (
    match Timeseries.point w hist with
    | Some (Timeseries.Hist_point { count; p50; p90; p99; mean = _ }) ->
      let n = float_of_int count in
      (* Lower bound on the fraction over budget from the window
         quantiles (the full bucket deltas are not retained in a closed
         window): a quantile above the budget proves at least that tail
         fraction of the window's observations exceeded it. *)
      let frac =
        if p50 > budget then 0.5
        else if p90 > budget then 0.1
        else if p99 > budget then 0.01
        else 0.0
      in
      (frac *. n, n)
    | _ -> (0.0, 0.0))

let burn ~objective ~bad ~total =
  if total <= 0.0 then 0.0 else bad /. total /. objective

let transition t st ~window ~at ~to_ ~burn_short ~burn_long =
  st.state <- to_;
  if to_ = Firing then st.fired <- st.fired + 1;
  let tr =
    {
      tr_slo = st.slo.slo_name;
      tr_window = window;
      tr_at = at;
      tr_to = to_;
      tr_burn_short = burn_short;
      tr_burn_long = burn_long;
    }
  in
  t.transitions <- tr :: t.transitions;
  match t.recorder with
  | Some r ->
    Recorder.record r ~at
      (Recorder.Alert
         {
           slo = st.slo.slo_name;
           state = state_to_string to_;
           burn_short;
           burn_long;
         })
  | None -> ()

let on_window t (w : Timeseries.window) =
  t.windows_evaluated <- t.windows_evaluated + 1;
  List.iter
    (fun st ->
      let bad, total = window_counts w st.slo.sli in
      st.ring_bad.(st.ring_next) <- bad;
      st.ring_total.(st.ring_next) <- total;
      st.ring_next <- (st.ring_next + 1) mod t.cfg.long_windows;
      if st.ring_filled < t.cfg.long_windows then
        st.ring_filled <- st.ring_filled + 1;
      st.run_bad <- st.run_bad +. bad;
      st.run_total <- st.run_total +. total;
      let objective = st.slo.objective in
      let burn_short = burn ~objective ~bad ~total in
      let long_bad = Array.fold_left ( +. ) 0.0 st.ring_bad in
      let long_total = Array.fold_left ( +. ) 0.0 st.ring_total in
      let burn_long = burn ~objective ~bad:long_bad ~total:long_total in
      if burn_short > st.worst_burn then st.worst_burn <- burn_short;
      let breach = burn_short >= t.cfg.burn_threshold in
      if breach then st.breaches <- st.breaches + 1;
      match st.state with
      | Ok_state ->
        if breach && burn_long >= t.cfg.burn_threshold then begin
          st.ok_streak <- 0;
          transition t st ~window:w.Timeseries.index ~at:w.Timeseries.t_end
            ~to_:Firing ~burn_short ~burn_long
        end
      | Firing ->
        if breach then st.ok_streak <- 0
        else begin
          st.ok_streak <- st.ok_streak + 1;
          if st.ok_streak >= t.cfg.clear_windows then begin
            st.ok_streak <- 0;
            transition t st ~window:w.Timeseries.index ~at:w.Timeseries.t_end
              ~to_:Ok_state ~burn_short ~burn_long
          end
        end)
    t.states

let transitions t = List.rev t.transitions
let windows_evaluated t = t.windows_evaluated

(* ---- verdicts ----------------------------------------------------------- *)

type verdict = {
  v_slo : string;
  v_objective : float;
  v_bad : float;
  v_total : float;
  v_bad_fraction : float;
  v_breaches : int;
  v_fired : int;
  v_worst_burn : float;
  v_final_state : alert_state;
  v_pass : bool;
}

let verdicts t =
  List.map
    (fun st ->
      let frac = if st.run_total <= 0.0 then 0.0 else st.run_bad /. st.run_total in
      {
        v_slo = st.slo.slo_name;
        v_objective = st.slo.objective;
        v_bad = st.run_bad;
        v_total = st.run_total;
        v_bad_fraction = frac;
        v_breaches = st.breaches;
        v_fired = st.fired;
        v_worst_burn = st.worst_burn;
        v_final_state = st.state;
        v_pass = frac <= st.slo.objective && st.state = Ok_state;
      })
    t.states

let alert_state t ~slo =
  List.find_map
    (fun st -> if String.equal st.slo.slo_name slo then Some st.state else None)
    t.states

(* ---- export ------------------------------------------------------------- *)

let verdict_to_json v =
  Json.Obj
    [
      ("slo", Json.Str v.v_slo);
      ("objective", Json.Num v.v_objective);
      ("bad", Json.Num v.v_bad);
      ("total", Json.Num v.v_total);
      ("bad_fraction", Json.Num v.v_bad_fraction);
      ("breaches", Json.Num (float_of_int v.v_breaches));
      ("fired", Json.Num (float_of_int v.v_fired));
      ("worst_burn", Json.Num v.v_worst_burn);
      ("final_state", Json.Str (state_to_string v.v_final_state));
      ("pass", Json.Bool v.v_pass);
    ]

let transition_to_json tr =
  Json.Obj
    [
      ("slo", Json.Str tr.tr_slo);
      ("window", Json.Num (float_of_int tr.tr_window));
      ("t_s", Json.Num (float_of_int tr.tr_at /. 1e9));
      ("to", Json.Str (state_to_string tr.tr_to));
      ("burn_short", Json.Num tr.tr_burn_short);
      ("burn_long", Json.Num tr.tr_burn_long);
    ]

let to_json t =
  Json.Obj
    [
      ("burn_threshold", Json.Num t.cfg.burn_threshold);
      ("long_windows", Json.Num (float_of_int t.cfg.long_windows));
      ("windows_evaluated", Json.Num (float_of_int t.windows_evaluated));
      ("slos", Json.List (List.map verdict_to_json (verdicts t)));
      ("transitions", Json.List (List.map transition_to_json (transitions t)));
    ]
