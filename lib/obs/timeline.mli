(** The [ccp-timeline/v1] document: the {!Timeseries} windows plus the
    optional {!Topk} and {!Health} sections, composed from one {!Obs}
    bundle. Like the scenario scorecards, the document carries a schema
    tag and a structural validator so [ccp_sim --timeline] can
    write-then-revalidate the file it just produced. *)

val schema_tag : string
(** ["ccp-timeline/v1"] *)

val compose :
  timeseries:Timeseries.t -> ?topk:Topk.t -> ?health:Health.t -> unit -> Json.t

val of_obs : Obs.t -> (Json.t, string) result
(** Compose from a bundle; [Error] when the bundle was created without
    telemetry. *)

val validate_health : Json.t -> (unit, string) result
(** Validate just a ["health"] section ({!Health.to_json} output) —
    shared with the scenario scorecard validators, which embed the same
    section per cell when telemetry is armed. *)

val validate : Json.t -> (int, string) result
(** Structural validation: schema tag, window accounting
    (held + dropped = total), per-point field presence and invariants
    (monotone quantiles, gauge last within min/max), Top-K space-saving
    error bounds, and health verdict/transition shapes. Returns the
    number of held windows. *)
