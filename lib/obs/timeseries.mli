(** Sim-clock-driven windowed sampler over the {!Metrics} registry.

    The experiment driver calls {!tick} on a fixed interval of simulated
    time ({!tick_interval_ns}); every [subticks]-th tick closes a
    window. Counters report per-window deltas and per-second rates,
    gauges report last/min/max of the values seen at the ticks inside
    the window, histograms report per-window quantiles computed from
    bucket-count deltas — all derived from cumulative reads of the
    registry, so the per-ACK path gains nothing.

    Memory is bounded: a ring of at most [windows] closed windows plus
    one baseline per metric; {!dropped_windows} counts ring evictions
    exactly, like the flight recorder. The sampler draws nothing from
    any RNG and iterates metrics sorted by name, so a seeded run yields
    a byte-stable timeline.

    Windows are delta-suppressed: a counter with zero delta or a
    histogram with zero per-window observations is omitted from that
    window's points (gauges always appear once registered). The sum of
    a counter's per-window deltas over all closed windows therefore
    still equals its cumulative value at the last close — the qcheck
    property in [test/test_telemetry.ml]. *)

type point =
  | Counter_point of { delta : int; rate : float  (** per second *) }
  | Gauge_point of { last : float; min : float; max : float }
  | Hist_point of { count : int; mean : float; p50 : float; p90 : float; p99 : float }

type window = {
  index : int;  (** 0-based, counting every window ever closed *)
  t_start : int;  (** ns *)
  t_end : int;  (** ns *)
  points : (string * string * point) list;  (** (name, unit, point), sorted by name *)
}

type t

val create :
  metrics:Metrics.t -> ?window:int -> ?windows:int -> ?subticks:int -> unit -> t
(** [window] is the window length in ns (default 250 ms); [windows] the
    ring capacity in closed windows (default 64); [subticks] the number
    of gauge-sampling ticks per window (default 4). *)

val window_ns : t -> int
val subticks : t -> int
val capacity : t -> int

val tick_interval_ns : t -> int
(** [window / subticks] — the interval the driver should schedule
    {!tick} on. *)

val tick : t -> now:int -> bool
(** Sample the registry at simulation time [now]. The first call anchors
    the window grid and baselines all cumulative state (activity before
    it is never counted); thereafter every [subticks]-th call closes a
    window. Returns [true] when this call closed one. *)

val flush : t -> now:int -> unit
(** Close the in-progress partial window, if any — call at end of run so
    tail activity is not lost. *)

val set_on_close : t -> (t -> window -> unit) -> unit
(** Hook invoked after each window close (the live-view and {!Health}
    driver point). One hook; a second call replaces the first. *)

val closed_windows : t -> int
(** Windows ever closed, including ring-evicted ones. *)

val dropped_windows : t -> int
(** Windows evicted because the ring was full. *)

val windows : t -> window list
(** Held windows, oldest first. *)

val last_window : t -> window option
val point : window -> string -> point option

val window_to_json : window -> Json.t
val windows_to_json : t -> Json.t
(** Array of per-window objects — the ["windows"] section of the
    [ccp-timeline/v1] document (see {!Timeline}). *)

val to_csv : t -> string
(** One row per (window, metric) point; kind-specific columns are left
    empty for the other kinds. *)
