(** The observability bundle threaded through the stack.

    An [Obs.t] is what a subsystem receives when the experiment enables
    observability: a metrics registry, optionally a flight recorder,
    optionally a control-loop span tracer, optionally the telemetry
    trio — a {!Timeseries} windowed sampler, a {!Topk} heavy-hitter
    registry, and a {!Health} SLO engine — and a monotonic clock for
    self-timing. Every instrumented call site takes [Obs.t option] and
    does nothing on [None] — the disabled path is a single pattern match,
    which is how the per-ACK path stays allocation-free with
    observability off. *)

type t = {
  metrics : Metrics.t;
  recorder : Recorder.t option;
  tracer : Tracer.t option;
  timeseries : Timeseries.t option;
  topk : Topk.t option;
  health : Health.t option;
  clock : unit -> float; (** monotonic-ish nanoseconds, for self-timing *)
  on_window_extra : (Timeseries.t -> Timeseries.window -> unit) option ref;
      (** internal — use {!set_window_hook} *)
}

val create :
  ?recorder_capacity:int ->
  ?recorder:bool ->
  ?tracer:bool ->
  ?tracer_capacity:int ->
  ?telemetry:bool ->
  ?window_ns:int ->
  ?windows:int ->
  ?subticks:int ->
  ?topk_k:int ->
  ?slo:Health.config ->
  ?budget_us:float ->
  ?clock:(unit -> float) ->
  unit ->
  t
(** [recorder] defaults to [true]; [recorder_capacity] to the
    [Recorder.create] default. [tracer] defaults to [false] — when
    enabled the tracer publishes [trace.*] metrics, draws span tokens
    from a pool of [tracer_capacity] (default 1024) slots, and finalizes
    spans into the recorder (when there is one).

    [telemetry] (default [false]) arms the trio together: a {!Topk}
    registry (per-sketch capacity [topk_k], default 64) whose
    ["flow.orphans"] sketch is pre-wired into the tracer, a
    {!Timeseries} sampler ([window_ns]/[windows]/[subticks] as in
    {!Timeseries.create}), and a {!Health} engine on the SLO [slo]
    config (default {!Health.default_config} with [budget_us]) that is
    driven from every window close and records alert transitions into
    the recorder. With [telemetry] off all three fields are [None] and
    nothing new runs anywhere.

    [clock] defaults to [Sys.time]-based nanoseconds — coarse, but
    dependency-free; benches measure precise overhead externally. *)

val set_window_hook : t -> (Timeseries.t -> Timeseries.window -> unit) -> unit
(** Register a live-view hook called after each window close, after the
    health engine has evaluated the window (so alert state is current).
    No-op bundle-wise when telemetry is off. One hook; a second call
    replaces the first. *)

val record : t -> at:int -> Recorder.event -> unit
(** No-op when the bundle has no recorder. *)

val recorder_exn : t -> Recorder.t
(** Raises [Invalid_argument] when the bundle has no recorder. *)

val tracer_exn : t -> Tracer.t
(** Raises [Invalid_argument] when the bundle has no tracer. *)

val flow_sketch : t -> string -> Topk.sketch option
(** Get-or-create a named heavy-hitter sketch, [None] when telemetry is
    off. Call once at wiring time and keep the handle — the per-event
    path should only ever see the pre-resolved [sketch option]. *)
