(** The observability bundle threaded through the stack.

    An [Obs.t] is what a subsystem receives when the experiment enables
    observability: a metrics registry, optionally a flight recorder,
    optionally a control-loop span tracer, and a monotonic clock for
    self-timing. Every instrumented call site takes [Obs.t option] and
    does nothing on [None] — the disabled path is a single pattern match,
    which is how the per-ACK path stays allocation-free with
    observability off. *)

type t = {
  metrics : Metrics.t;
  recorder : Recorder.t option;
  tracer : Tracer.t option;
  clock : unit -> float; (** monotonic-ish nanoseconds, for self-timing *)
}

val create :
  ?recorder_capacity:int ->
  ?recorder:bool ->
  ?tracer:bool ->
  ?tracer_capacity:int ->
  ?clock:(unit -> float) ->
  unit ->
  t
(** [recorder] defaults to [true]; [recorder_capacity] to the
    [Recorder.create] default. [tracer] defaults to [false] — when
    enabled the tracer publishes [trace.*] metrics, draws span tokens
    from a pool of [tracer_capacity] (default 1024) slots, and finalizes
    spans into the recorder (when there is one). [clock] defaults to
    [Sys.time]-based nanoseconds — coarse, but dependency-free; benches
    measure precise overhead externally. *)

val record : t -> at:int -> Recorder.event -> unit
(** No-op when the bundle has no recorder. *)

val recorder_exn : t -> Recorder.t
(** Raises [Invalid_argument] when the bundle has no recorder. *)

val tracer_exn : t -> Tracer.t
(** Raises [Invalid_argument] when the bundle has no tracer. *)
