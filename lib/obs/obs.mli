(** The observability bundle threaded through the stack.

    An [Obs.t] is what a subsystem receives when the experiment enables
    observability: a metrics registry, optionally a flight recorder, and
    a monotonic clock for self-timing. Every instrumented call site takes
    [Obs.t option] and does nothing on [None] — the disabled path is a
    single pattern match, which is how the per-ACK path stays
    allocation-free with observability off. *)

type t = {
  metrics : Metrics.t;
  recorder : Recorder.t option;
  clock : unit -> float; (** monotonic-ish nanoseconds, for self-timing *)
}

val create : ?recorder_capacity:int -> ?recorder:bool -> ?clock:(unit -> float) -> unit -> t
(** [recorder] defaults to [true]; [recorder_capacity] to the
    [Recorder.create] default. [clock] defaults to [Sys.time]-based
    nanoseconds — coarse, but dependency-free; benches measure precise
    overhead externally. *)

val record : t -> at:int -> Recorder.event -> unit
(** No-op when the bundle has no recorder. *)

val recorder_exn : t -> Recorder.t
(** Raises [Invalid_argument] when the bundle has no recorder. *)
