type span = {
  id : int;
  flow : int;
  kind : string;
  disposition : string;
  started_at : int;
  sent_at : int;
  agent_at : int;
  action_at : int;
  done_at : int;
  summarize_ns : float;
  handler_ns : float;
  apply_ns : float;
}

type event =
  | Flow_sample of {
      flow : int;
      cwnd : int;
      rate : float;
      srtt_us : float;
      inflight : int;
      delivery_rate : float;
    }
  | Queue_sample of { bytes : int }
  | Install of { flow : int; accepted : bool; detail : string }
  | Quarantine of { flow : int; incidents : int; dominant : string }
  | Fallback of { flow : int; entered : bool }
  | Report_sent of { flow : int; urgent : bool }
  | Ipc_fault of { kind : string }
  | Span of span
  | Alert of { slo : string; state : string; burn_short : float; burn_long : float }
  | Custom of { name : string; value : float }

type t = {
  times : int array;
  events : event array;
  cap : int;
  mutable next : int; (* ring write cursor *)
  mutable recorded : int; (* total ever recorded *)
}

let placeholder = Queue_sample { bytes = 0 }

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Recorder.create: capacity must be > 0";
  {
    times = Array.make capacity 0;
    events = Array.make capacity placeholder;
    cap = capacity;
    next = 0;
    recorded = 0;
  }

let capacity t = t.cap

let record t ~at event =
  t.times.(t.next) <- at;
  t.events.(t.next) <- event;
  t.next <- (t.next + 1) mod t.cap;
  t.recorded <- t.recorded + 1

let length t = min t.recorded t.cap

let recorded t = t.recorded

let dropped t = max 0 (t.recorded - t.cap)

let to_list t =
  let n = length t in
  let start = if t.recorded <= t.cap then 0 else t.next in
  List.init n (fun i ->
      let j = (start + i) mod t.cap in
      (t.times.(j), t.events.(j)))

let event_to_json ~at event =
  let time_s = float_of_int at /. 1e9 in
  let base kind fields =
    Json.Obj (("t", Json.Num time_s) :: ("ev", Json.Str kind) :: fields)
  in
  match event with
  | Flow_sample { flow; cwnd; rate; srtt_us; inflight; delivery_rate } ->
    base "flow_sample"
      [
        ("flow", Json.Num (float_of_int flow));
        ("cwnd", Json.Num (float_of_int cwnd));
        ("rate", Json.Num rate);
        ("srtt_us", Json.Num srtt_us);
        ("inflight", Json.Num (float_of_int inflight));
        ("delivery_rate", Json.Num delivery_rate);
      ]
  | Queue_sample { bytes } ->
    base "queue_sample" [ ("bytes", Json.Num (float_of_int bytes)) ]
  | Install { flow; accepted; detail } ->
    base "install"
      [
        ("flow", Json.Num (float_of_int flow));
        ("accepted", Json.Bool accepted);
        ("detail", Json.Str detail);
      ]
  | Quarantine { flow; incidents; dominant } ->
    base "quarantine"
      [
        ("flow", Json.Num (float_of_int flow));
        ("incidents", Json.Num (float_of_int incidents));
        ("dominant", Json.Str dominant);
      ]
  | Fallback { flow; entered } ->
    base "fallback"
      [ ("flow", Json.Num (float_of_int flow)); ("entered", Json.Bool entered) ]
  | Report_sent { flow; urgent } ->
    base "report"
      [ ("flow", Json.Num (float_of_int flow)); ("urgent", Json.Bool urgent) ]
  | Ipc_fault { kind } -> base "ipc_fault" [ ("kind", Json.Str kind) ]
  | Span s ->
    base "span"
      [
        ("id", Json.Num (float_of_int s.id));
        ("flow", Json.Num (float_of_int s.flow));
        ("kind", Json.Str s.kind);
        ("disposition", Json.Str s.disposition);
        ("started_at", Json.Num (float_of_int s.started_at));
        ("sent_at", Json.Num (float_of_int s.sent_at));
        ("agent_at", Json.Num (float_of_int s.agent_at));
        ("action_at", Json.Num (float_of_int s.action_at));
        ("done_at", Json.Num (float_of_int s.done_at));
        ("summarize_ns", Json.Num s.summarize_ns);
        ("handler_ns", Json.Num s.handler_ns);
        ("apply_ns", Json.Num s.apply_ns);
      ]
  | Alert { slo; state; burn_short; burn_long } ->
    base "alert"
      [
        ("slo", Json.Str slo);
        ("state", Json.Str state);
        ("burn_short", Json.Num burn_short);
        ("burn_long", Json.Num burn_long);
      ]
  | Custom { name; value } ->
    base "custom" [ ("name", Json.Str name); ("value", Json.Num value) ]

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (at, ev) ->
      Buffer.add_string buf (Json.to_string (event_to_json ~at ev));
      Buffer.add_char buf '\n')
    (to_list t);
  Buffer.contents buf

let flow_samples_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "time_s,flow,cwnd_bytes,rate_bps,srtt_us,inflight_bytes,delivery_rate_bps\n";
  List.iter
    (fun (at, ev) ->
      match ev with
      | Flow_sample { flow; cwnd; rate; srtt_us; inflight; delivery_rate } ->
        Buffer.add_string buf
          (Printf.sprintf "%.6f,%d,%d,%.3f,%.3f,%d,%.3f\n"
             (float_of_int at /. 1e9)
             flow cwnd (rate *. 8.0) srtt_us inflight (delivery_rate *. 8.0))
      | _ -> ())
    (to_list t);
  Buffer.contents buf

let flow_series t ~flow pick =
  let out = ref [] in
  List.iter
    (fun (at, ev) ->
      let time_s = float_of_int at /. 1e9 in
      let matches =
        match ev with
        | Flow_sample f -> f.flow = flow
        | Install i -> i.flow = flow
        | Quarantine q -> q.flow = flow
        | Fallback f -> f.flow = flow
        | Report_sent r -> r.flow = flow
        | Span s -> s.flow = flow
        | Queue_sample _ | Ipc_fault _ | Alert _ | Custom _ -> true
      in
      if matches then
        match pick time_s ev with
        | Some v -> out := (time_s, v) :: !out
        | None -> ())
    (to_list t);
  Array.of_list (List.rev !out)

let cwnd_of_event ~flow _time ev =
  match ev with
  | Flow_sample f when f.flow = flow -> Some (float_of_int f.cwnd)
  | _ -> None
