type t = {
  metrics : Metrics.t;
  recorder : Recorder.t option;
  tracer : Tracer.t option;
  clock : unit -> float;
}

let default_clock () = Sys.time () *. 1e9

let create ?recorder_capacity ?(recorder = true) ?(tracer = false) ?tracer_capacity
    ?(clock = default_clock) () =
  let metrics = Metrics.create () in
  let recorder =
    if recorder then Some (Recorder.create ?capacity:recorder_capacity ())
    else None
  in
  let tracer =
    if tracer then Some (Tracer.create ?capacity:tracer_capacity ~metrics ?recorder ~clock ())
    else None
  in
  { metrics; recorder; tracer; clock }

let record t ~at event =
  match t.recorder with
  | Some r -> Recorder.record r ~at event
  | None -> ()

let recorder_exn t =
  match t.recorder with
  | Some r -> r
  | None -> invalid_arg "Obs.recorder_exn: bundle has no recorder"

let tracer_exn t =
  match t.tracer with
  | Some tr -> tr
  | None -> invalid_arg "Obs.tracer_exn: bundle has no tracer"
