type t = {
  metrics : Metrics.t;
  recorder : Recorder.t option;
  clock : unit -> float;
}

let default_clock () = Sys.time () *. 1e9

let create ?recorder_capacity ?(recorder = true) ?(clock = default_clock) () =
  let recorder =
    if recorder then Some (Recorder.create ?capacity:recorder_capacity ())
    else None
  in
  { metrics = Metrics.create (); recorder; clock }

let record t ~at event =
  match t.recorder with
  | Some r -> Recorder.record r ~at event
  | None -> ()

let recorder_exn t =
  match t.recorder with
  | Some r -> r
  | None -> invalid_arg "Obs.recorder_exn: bundle has no recorder"
