type t = {
  metrics : Metrics.t;
  recorder : Recorder.t option;
  tracer : Tracer.t option;
  timeseries : Timeseries.t option;
  topk : Topk.t option;
  health : Health.t option;
  clock : unit -> float;
  on_window_extra : (Timeseries.t -> Timeseries.window -> unit) option ref;
}

let default_clock () = Sys.time () *. 1e9

let create ?recorder_capacity ?(recorder = true) ?(tracer = false) ?tracer_capacity
    ?(telemetry = false) ?window_ns ?windows ?subticks ?topk_k ?slo ?budget_us
    ?(clock = default_clock) () =
  let metrics = Metrics.create () in
  let recorder =
    if recorder then Some (Recorder.create ?capacity:recorder_capacity ())
    else None
  in
  let topk = if telemetry then Some (Topk.create ?k:topk_k ()) else None in
  let tk_orphans = Option.map (fun tk -> Topk.sketch tk "flow.orphans") topk in
  let tracer =
    if tracer then
      Some (Tracer.create ?capacity:tracer_capacity ~metrics ?recorder ?tk_orphans ~clock ())
    else None
  in
  let timeseries =
    if telemetry then
      Some (Timeseries.create ~metrics ?window:window_ns ?windows ?subticks ())
    else None
  in
  let health =
    if telemetry then
      let config =
        match slo with Some c -> c | None -> Health.default_config ?budget_us ()
      in
      Some (Health.create ~config ?recorder ())
    else None
  in
  let on_window_extra = ref None in
  (match timeseries with
  | Some ts ->
    (* One physical hook on the sampler: health first (so alert events
       carry this window's burn rates), then whatever live view the
       caller registered via [set_window_hook]. *)
    Timeseries.set_on_close ts (fun ts w ->
        (match health with Some h -> Health.on_window h w | None -> ());
        match !on_window_extra with Some f -> f ts w | None -> ())
  | None -> ());
  { metrics; recorder; tracer; timeseries; topk; health; clock; on_window_extra }

let set_window_hook t f = t.on_window_extra := Some f

let record t ~at event =
  match t.recorder with
  | Some r -> Recorder.record r ~at event
  | None -> ()

let recorder_exn t =
  match t.recorder with
  | Some r -> r
  | None -> invalid_arg "Obs.recorder_exn: bundle has no recorder"

let tracer_exn t =
  match t.tracer with
  | Some tr -> tr
  | None -> invalid_arg "Obs.tracer_exn: bundle has no tracer"

let flow_sketch t name =
  match t.topk with None -> None | Some tk -> Some (Topk.sketch tk name)
