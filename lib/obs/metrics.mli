(** Metrics registry: counters, gauges, fixed-bucket histograms.

    Handles are get-or-create by name, so per-flow code paths can ask for
    ["datapath.reports_sent"] repeatedly and always share one counter.
    Registration allocates; the hot operations ([incr], [set], [observe])
    do not — the datapath calls them from the per-ACK path when
    observability is enabled, and the disabled path never touches them.

    Snapshots flatten everything into (name, value, unit) rows — the same
    schema [bench/main.exe] writes to BENCH.json — and histograms expand
    into [_count]/[_mean]/[_p50]/[_p90]/[_p99] rows. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> ?unit_:string -> string -> counter
(** Get or create. Raises [Invalid_argument] if the name is already
    registered as a different metric kind. *)

val gauge : t -> ?unit_:string -> string -> gauge

val histogram : t -> ?unit_:string -> ?bounds:float array -> string -> histogram
(** [bounds] are inclusive upper edges of the finite buckets, strictly
    increasing; one overflow bucket is added above the last edge.
    Defaults to [default_bounds]. [bounds] is ignored when the histogram
    already exists. *)

val default_bounds : float array
(** Log-spaced 1–2–5 edges from 1 to 5e8 — wide enough for nanosecond
    latencies through byte counts. *)

(* Hot-path operations: allocation-free. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
val observations : histogram -> int
val hist_mean : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0,1]: linear interpolation inside the
    bucket holding the q-th observation. Values in the overflow bucket
    report the last finite edge. 0. when empty. *)

val quantile_of_counts :
  bounds:float array -> counts:int array -> observations:int -> float -> float
(** {!quantile} over an explicit bucket-count array — the same
    interpolation applied to a per-window count {e delta}, which is how
    {!Timeseries} reports per-window histogram quantiles. *)

val fraction_above :
  bounds:float array -> counts:int array -> observations:int -> float -> float
(** Estimated fraction of observations strictly above a threshold,
    interpolating linearly inside the bucket the threshold falls in.
    Observations in the overflow bucket count as above any threshold up
    to the last finite edge and as below thresholds beyond it
    (conservative). 0. when empty. *)

(* Snapshots. *)

type row = { name : string; value : float; unit_ : string }

val snapshot : ?prefix:string -> t -> row list
(** All metrics as rows, sorted by name. [prefix] keeps only metrics
    whose {e registered} name starts with it — a histogram's derived
    [_count]/[_p99] rows follow the base name, so [~prefix:"trace."]
    selects whole histograms, never slices of one. *)

(* Raw views, for samplers that need deltas rather than rows. *)

type hist_state = {
  hs_bounds : float array;  (** shared with the live histogram — do not mutate *)
  hs_counts : int array;  (** copied at view time *)
  hs_sum : float;
  hs_observations : int;
}

type view =
  | V_counter of int
  | V_gauge of float
  | V_histogram of hist_state

val sorted_views : t -> (string * string * view) list
(** [(name, unit, view)] for every registered metric, sorted by name —
    a deterministic iteration order independent of hashtable layout.
    Allocates (histogram counts are copied); meant for periodic
    samplers like {!Timeseries}, not hot paths. *)

val rows_to_json : row list -> Json.t
(** [List] of [{"name";"value";"unit"}] objects — the BENCH.json schema. *)

val validate_rows_json : Json.t -> (int, string) result
(** Check a parsed value against the rows schema; [Ok n] gives the row
    count. Shared by the bench-schema test and CI smoke. *)

val pp_rows : Format.formatter -> row list -> unit

val rows_of_json : Json.t -> (row list, string) result
(** Inverse of {!rows_to_json}, after schema validation. *)

val merge_rows_file : path:string -> row list -> (int, string) result
(** Merge [rows] into the BENCH.json-schema file at [path]: existing rows
    with the same name are replaced, everything is re-sorted by name and
    schema-checked before writing. Creates the file when absent. [Ok n]
    gives the merged row count. Used by [ipc_rtt --bench-json] and
    [ccp_sim latency --bench-json] so real-machine IPC RTTs and simulated
    reaction latencies land in one artifact. *)
