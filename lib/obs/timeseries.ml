(* Sim-clock-driven windowed sampler over the Metrics registry.

   The experiment driver calls [tick] on a fixed interval of simulated
   time; every [subticks]-th tick closes a window. Counters report the
   per-window delta (and a per-second rate), gauges report the
   last/min/max of the values seen at the ticks inside the window, and
   histograms report per-window quantiles computed from the
   bucket-count delta against the previous close — all derived from
   cumulative reads of the registry, so nothing is added to any hot
   path and registering new metrics mid-run just makes them appear in
   the next window.

   Memory is bounded: a ring of at most [windows] closed windows, each
   holding one point per active metric, plus one baseline per metric.
   When the ring wraps, [dropped_windows] counts what was evicted —
   same contract as the flight recorder. Determinism: metric iteration
   is sorted by name ([Metrics.sorted_views]), and the sampler draws
   nothing from any RNG, so a seeded run yields a byte-stable
   timeline. *)

type point =
  | Counter_point of { delta : int; rate : float }
  | Gauge_point of { last : float; min : float; max : float }
  | Hist_point of { count : int; mean : float; p50 : float; p90 : float; p99 : float }

type window = {
  index : int;  (* 0-based, counting every window ever closed *)
  t_start : int;  (* ns *)
  t_end : int;  (* ns *)
  points : (string * string * point) list;  (* (name, unit, point), sorted *)
}

(* Per-metric cumulative baseline at the previous window close, plus the
   gauge aggregate accumulated across the ticks of the open window. *)
type baseline =
  | B_counter of { mutable prev : int }
  | B_gauge of { mutable last : float; mutable min : float; mutable max : float }
  | B_hist of {
      mutable prev_counts : int array;
      mutable prev_sum : float;
      mutable prev_obs : int;
    }

type t = {
  metrics : Metrics.t;
  window_ns : int;
  subticks : int;
  cap : int;  (* ring capacity in windows *)
  ring : window option array;
  mutable next : int;  (* ring write cursor *)
  mutable closed : int;  (* windows ever closed *)
  baselines : (string, baseline) Hashtbl.t;
  mutable ticks_in_window : int;
  mutable window_start : int;  (* ns; start of the open window *)
  mutable started : bool;
  mutable on_close : (t -> window -> unit) option;
}

let create ~metrics ?(window = 250_000_000) ?(windows = 64) ?(subticks = 4) () =
  if window <= 0 then invalid_arg "Timeseries.create: window must be > 0";
  if windows <= 0 then invalid_arg "Timeseries.create: windows must be > 0";
  if subticks <= 0 then invalid_arg "Timeseries.create: subticks must be > 0";
  {
    metrics;
    window_ns = window;
    subticks;
    cap = windows;
    ring = Array.make windows None;
    next = 0;
    closed = 0;
    baselines = Hashtbl.create 64;
    ticks_in_window = 0;
    window_start = 0;
    started = false;
    on_close = None;
  }

let window_ns t = t.window_ns
let subticks t = t.subticks
let capacity t = t.cap
let tick_interval_ns t = max 1 (t.window_ns / t.subticks)
let closed_windows t = t.closed
let dropped_windows t = max 0 (t.closed - t.cap)
let set_on_close t f = t.on_close <- Some f

(* Fold the current registry state into the per-metric baselines. On a
   closing tick this also emits the window's points; on an ordinary
   subtick it only refreshes gauge aggregates. *)
let observe_views t ~closing =
  let points = ref [] in
  List.iter
    (fun (name, unit_, view) ->
      match view with
      | Metrics.V_counter cur -> (
        match Hashtbl.find_opt t.baselines name with
        | Some (B_counter b) ->
          if closing then begin
            let delta = cur - b.prev in
            b.prev <- cur;
            if delta <> 0 then
              points :=
                ( name,
                  unit_,
                  Counter_point
                    {
                      delta;
                      rate = float_of_int delta /. (float_of_int t.window_ns /. 1e9);
                    } )
                :: !points
          end
        | Some _ -> ()
        | None ->
          (* First sighting: the whole cumulative value belongs to windows
             before this metric was visible; baseline it without emitting,
             so deltas never double-count the past. *)
          Hashtbl.replace t.baselines name (B_counter { prev = cur }))
      | Metrics.V_gauge cur -> (
        match Hashtbl.find_opt t.baselines name with
        | Some (B_gauge b) ->
          b.last <- cur;
          if cur < b.min then b.min <- cur;
          if cur > b.max then b.max <- cur;
          if closing then begin
            points :=
              (name, unit_, Gauge_point { last = b.last; min = b.min; max = b.max })
              :: !points;
            b.min <- cur;
            b.max <- cur
          end
        | Some _ -> ()
        | None ->
          Hashtbl.replace t.baselines name (B_gauge { last = cur; min = cur; max = cur }))
      | Metrics.V_histogram hs -> (
        match Hashtbl.find_opt t.baselines name with
        | Some (B_hist b) ->
          if closing then begin
            let n = Array.length hs.Metrics.hs_counts in
            let delta_counts =
              Array.init n (fun i -> hs.Metrics.hs_counts.(i) - b.prev_counts.(i))
            in
            let count = hs.Metrics.hs_observations - b.prev_obs in
            let sum = hs.Metrics.hs_sum -. b.prev_sum in
            b.prev_counts <- hs.Metrics.hs_counts;
            b.prev_sum <- hs.Metrics.hs_sum;
            b.prev_obs <- hs.Metrics.hs_observations;
            if count > 0 then begin
              let q p =
                Metrics.quantile_of_counts ~bounds:hs.Metrics.hs_bounds
                  ~counts:delta_counts ~observations:count p
              in
              points :=
                ( name,
                  unit_,
                  Hist_point
                    {
                      count;
                      mean = sum /. float_of_int count;
                      p50 = q 0.50;
                      p90 = q 0.90;
                      p99 = q 0.99;
                    } )
                :: !points
            end
          end
        | Some _ -> ()
        | None ->
          Hashtbl.replace t.baselines name
            (B_hist
               {
                 prev_counts = hs.Metrics.hs_counts;
                 prev_sum = hs.Metrics.hs_sum;
                 prev_obs = hs.Metrics.hs_observations;
               })))
    (Metrics.sorted_views t.metrics);
  List.rev !points

let push_window t w =
  t.ring.(t.next) <- Some w;
  t.next <- (t.next + 1) mod t.cap;
  t.closed <- t.closed + 1;
  match t.on_close with Some f -> f t w | None -> ()

let close_window t ~now =
  let points = observe_views t ~closing:true in
  let w = { index = t.closed; t_start = t.window_start; t_end = now; points } in
  t.window_start <- now;
  t.ticks_in_window <- 0;
  push_window t w

let tick t ~now =
  if not t.started then begin
    (* The first tick anchors the window grid; cumulative state present
       before it is baselined out, so window 0 covers activity from this
       point on. *)
    t.started <- true;
    t.window_start <- now;
    t.ticks_in_window <- 0;
    ignore (observe_views t ~closing:false : (string * string * point) list);
    false
  end
  else begin
    t.ticks_in_window <- t.ticks_in_window + 1;
    if t.ticks_in_window >= t.subticks then begin
      close_window t ~now;
      true
    end
    else begin
      ignore (observe_views t ~closing:false : (string * string * point) list);
      false
    end
  end

let flush t ~now =
  if t.started && (t.ticks_in_window > 0 || now > t.window_start) then
    close_window t ~now

let windows t =
  let n = min t.closed t.cap in
  let start = if t.closed <= t.cap then 0 else t.next in
  List.init n (fun i ->
      match t.ring.((start + i) mod t.cap) with
      | Some w -> w
      | None -> assert false)

let last_window t =
  if t.closed = 0 then None
  else t.ring.((t.next + t.cap - 1) mod t.cap)

let point w name =
  List.find_map
    (fun (n, _, p) -> if String.equal n name then Some p else None)
    w.points

(* ---- export ------------------------------------------------------------- *)

let sec ns = float_of_int ns /. 1e9

let point_fields = function
  | Counter_point { delta; rate } ->
    [
      ("kind", Json.Str "counter");
      ("delta", Json.Num (float_of_int delta));
      ("rate", Json.Num rate);
    ]
  | Gauge_point { last; min; max } ->
    [
      ("kind", Json.Str "gauge");
      ("last", Json.Num last);
      ("min", Json.Num min);
      ("max", Json.Num max);
    ]
  | Hist_point { count; mean; p50; p90; p99 } ->
    [
      ("kind", Json.Str "histogram");
      ("count", Json.Num (float_of_int count));
      ("mean", Json.Num mean);
      ("p50", Json.Num p50);
      ("p90", Json.Num p90);
      ("p99", Json.Num p99);
    ]

let window_to_json w =
  Json.Obj
    [
      ("index", Json.Num (float_of_int w.index));
      ("t_start_s", Json.Num (sec w.t_start));
      ("t_end_s", Json.Num (sec w.t_end));
      ( "metrics",
        Json.List
          (List.map
             (fun (name, unit_, p) ->
               Json.Obj
                 (("name", Json.Str name)
                 :: ("unit", Json.Str unit_)
                 :: point_fields p))
             w.points) );
    ]

let windows_to_json t = Json.List (List.map window_to_json (windows t))

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "window,t_start_s,t_end_s,name,unit,kind,delta,rate,last,min,max,count,mean,p50,p90,p99\n";
  List.iter
    (fun w ->
      List.iter
        (fun (name, unit_, p) ->
          let head =
            Printf.sprintf "%d,%.6f,%.6f,%s,%s," w.index (sec w.t_start)
              (sec w.t_end) name unit_
          in
          Buffer.add_string buf head;
          (match p with
          | Counter_point { delta; rate } ->
            Buffer.add_string buf
              (Printf.sprintf "counter,%d,%.6f,,,,,,,,\n" delta rate)
          | Gauge_point { last; min; max } ->
            Buffer.add_string buf
              (Printf.sprintf "gauge,,,%.6f,%.6f,%.6f,,,,,\n" last min max)
          | Hist_point { count; mean; p50; p90; p99 } ->
            Buffer.add_string buf
              (Printf.sprintf "histogram,,,,,,%d,%.6f,%.6f,%.6f,%.6f\n" count mean
                 p50 p90 p99)))
        w.points)
    (windows t);
  Buffer.contents buf
