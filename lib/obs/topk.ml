(* Space-saving (Misra–Gries style) heavy-hitter sketches keyed by flow
   id. A sketch tracks at most [k] keys in preallocated parallel arrays;
   when a new key arrives with the sketch full, the minimum-count entry
   is evicted and the newcomer inherits its count as overestimation
   error. The classic guarantees follow: every tracked estimate
   over-counts by at most its recorded error, and that error is at most
   [total / k] — so any key whose true count exceeds [total / k] is
   guaranteed to be tracked, which is exactly what makes per-flow
   accounting observable at N=2048 flows without N metric names.

   Eviction scans the k entries linearly; k is tens-to-hundreds and the
   scan only runs on a miss with a full sketch, never on the per-ACK
   path, so a heap buys nothing here. Ties evict the lowest slot index,
   keeping runs deterministic. *)

type sketch = {
  s_name : string;
  k : int;
  keys : int array;
  counts : int array;
  errs : int array;
  index : (int, int) Hashtbl.t;  (* key -> slot *)
  mutable used : int;
  mutable total : int;
}

type entry = { key : int; count : int; err : int }

type t = {
  table : (string, sketch) Hashtbl.t;
  default_k : int;
}

let create ?(k = 64) () =
  if k <= 0 then invalid_arg "Topk.create: k must be > 0";
  { table = Hashtbl.create 8; default_k = k }

let default_k t = t.default_k

let sketch t ?k name =
  match Hashtbl.find_opt t.table name with
  | Some s -> s
  | None ->
    let k = Option.value ~default:t.default_k k in
    if k <= 0 then invalid_arg "Topk.sketch: k must be > 0";
    let s =
      {
        s_name = name;
        k;
        keys = Array.make k 0;
        counts = Array.make k 0;
        errs = Array.make k 0;
        index = Hashtbl.create (2 * k);
        used = 0;
        total = 0;
      }
    in
    Hashtbl.replace t.table name s;
    s

let name s = s.s_name
let k s = s.k
let total s = s.total
let tracked s = s.used

let add s key w =
  if w < 0 then invalid_arg "Topk.add: negative weight";
  if w > 0 then begin
    s.total <- s.total + w;
    match Hashtbl.find_opt s.index key with
    | Some slot -> s.counts.(slot) <- s.counts.(slot) + w
    | None ->
      if s.used < s.k then begin
        let slot = s.used in
        s.used <- s.used + 1;
        s.keys.(slot) <- key;
        s.counts.(slot) <- w;
        s.errs.(slot) <- 0;
        Hashtbl.replace s.index key slot
      end
      else begin
        (* Evict the minimum-count entry (ties to the lowest slot). *)
        let victim = ref 0 in
        for i = 1 to s.k - 1 do
          if s.counts.(i) < s.counts.(!victim) then victim := i
        done;
        let slot = !victim in
        Hashtbl.remove s.index s.keys.(slot);
        Hashtbl.replace s.index key slot;
        s.errs.(slot) <- s.counts.(slot);
        s.counts.(slot) <- s.counts.(slot) + w;
        s.keys.(slot) <- key
      end
  end

let touch s key = add s key 1

let entries s =
  let out = ref [] in
  for i = s.used - 1 downto 0 do
    out := { key = s.keys.(i); count = s.counts.(i); err = s.errs.(i) } :: !out
  done;
  List.sort
    (fun a b ->
      match compare b.count a.count with 0 -> compare a.key b.key | c -> c)
    !out

let find s key =
  match Hashtbl.find_opt s.index key with
  | None -> None
  | Some slot ->
    Some { key; count = s.counts.(slot); err = s.errs.(slot) }

(* The space-saving invariant, rechecked by tests and the timeline
   validator: every entry's recorded overestimation is within the proven
   bound. *)
let error_bound s = if s.used < s.k then 0 else s.total / s.k

let sketches t =
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) t.table [] in
  List.map
    (fun n -> Hashtbl.find t.table n)
    (List.sort compare names)

let sketch_to_json s =
  let i n = Json.Num (float_of_int n) in
  Json.Obj
    [
      ("name", Json.Str s.s_name);
      ("k", i s.k);
      ("total", i s.total);
      ( "entries",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [ ("key", i e.key); ("count", i e.count); ("err", i e.err) ])
             (entries s)) );
    ]

let to_json t = Json.List (List.map sketch_to_json (sketches t))
