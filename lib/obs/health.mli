(** SLO engine with multi-window burn-rate alerting over the
    {!Timeseries} windows.

    Each SLO computes a service-level indicator from one closed window:
    either a bad/total event ratio over cumulative-counter deltas
    (orphans per span started, sheds per report, decode failures per
    message) or a quantile-derived lower bound on the fraction of a
    latency histogram's window observations above a budget (actuation
    latency vs the Figure-2 budget). Burn rate = bad fraction /
    objective.

    An alert fires when both the short-window burn (the window that
    just closed) and the long-window burn (deltas aggregated over the
    last [long_windows] closes) reach [burn_threshold]; it clears after
    [clear_windows] consecutive short windows back under the threshold.
    Transitions are recorded as {!Recorder.Alert} events; end-of-run
    {!verdicts} (whole-run bad fraction vs objective, plus alert
    history) are embedded in the scenario scorecards. *)

type sli =
  | Event_ratio of { bad : string list; total : string list }
      (** counter names; a window's SLI is [sum bad / sum total] of the
          per-window deltas (0 when the denominator is 0) *)
  | Latency_above of { hist : string; budget : float }
      (** histogram name and budget in the histogram's unit; the SLI is
          a lower bound on the fraction over budget: 0.5 / 0.1 / 0.01
          when the window's p50 / p90 / p99 exceeds it *)

type slo = { slo_name : string; sli : sli; objective : float }
(** [objective] is the maximum acceptable bad fraction, in (0, 1]. *)

type config = {
  slos : slo list;
  burn_threshold : float;
  long_windows : int;
  clear_windows : int;
}

val default_config : ?budget_us:float -> unit -> config
(** The stack's six standing SLOs — actuation latency vs [budget_us]
    (default 100 ms), orphan rate, shed rate, decode-failure rate,
    staleness, quarantine rate — with burn threshold 10 over an
    8-window long window and 1-window clear. *)

type alert_state = Ok_state | Firing

val state_to_string : alert_state -> string

type transition = {
  tr_slo : string;
  tr_window : int;
  tr_at : int;  (** ns *)
  tr_to : alert_state;
  tr_burn_short : float;
  tr_burn_long : float;
}

type t

val create : ?config:config -> ?recorder:Recorder.t -> unit -> t

val config : t -> config

val on_window : t -> Timeseries.window -> unit
(** Evaluate every SLO against a freshly closed window. Drive this from
    {!Timeseries.set_on_close} (what {!Obs.create} wires up) or call it
    directly in tests. *)

val transitions : t -> transition list
(** Alert state transitions, oldest first. *)

val windows_evaluated : t -> int

val alert_state : t -> slo:string -> alert_state option

type verdict = {
  v_slo : string;
  v_objective : float;
  v_bad : float;
  v_total : float;
  v_bad_fraction : float;  (** whole-run bad / total *)
  v_breaches : int;  (** windows with short burn >= threshold *)
  v_fired : int;  (** alert episodes *)
  v_worst_burn : float;
  v_final_state : alert_state;
  v_pass : bool;  (** bad fraction within objective and not left firing *)
}

val verdicts : t -> verdict list
(** One per configured SLO, in configuration order. *)

val verdict_to_json : verdict -> Json.t
val transition_to_json : transition -> Json.t

val to_json : t -> Json.t
(** The ["health"] section of the [ccp-timeline/v1] document:
    burn config, per-SLO verdicts, and the transition log. *)
