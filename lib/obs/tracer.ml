(* Causal span tracing across the control loop.

   A span is minted in the datapath when a report or urgent event leaves
   for the agent, rides the wire as a small integer token (slot | gen),
   is re-armed at the agent end while the handler runs, follows the
   resulting control message back, and is finalized when the datapath
   applies (or refuses) the control. All per-span state lives in
   preallocated parallel arrays indexed by pool slot, so the traced hot
   path stores ints and floats into existing arrays; the only allocation
   happens at finalization, when the completed span is recorded into the
   flight-recorder ring.

   Tokens are [slot lor (gen lsl bits)]. Freeing a slot bumps its
   generation, so a stale token — a duplicate delivery after the original
   finalized, a reordered straggler — fails the generation check and is
   counted in [trace.stale_refs] instead of corrupting a reused slot.
   There is no ID table to leak: liveness is the [busy] bit. *)

type disposition = Actuated | No_action | Rejected | Orphaned | Shed

let disposition_to_string = function
  | Actuated -> "actuated"
  | No_action -> "no_action"
  | Rejected -> "rejected"
  | Orphaned -> "orphaned"
  | Shed -> "shed"

type span_kind = Report_span | Urgent_span

let span_kind_to_string = function Report_span -> "report" | Urgent_span -> "urgent"

type t = {
  cap : int;
  mask : int;
  bits : int;
  (* Parallel per-slot state. Sim timestamps are int nanoseconds, -1 when
     the stage was never reached; wall-clock stage costs are floats in
     dedicated float arrays (unboxed stores). *)
  gen : int array;
  busy : bool array;
  serial : int array;
  s_flow : int array;
  s_kind : int array;
  started_at : int array;
  sent_at : int array;
  agent_at : int array;
  action_at : int array;
  wall0 : float array;
  summ_ns : float array;
  hand0 : float array;
  hand_ns : float array;
  free : int array;
  mutable free_top : int;
  mutable live : int;
  mutable next_serial : int;
  (* The span whose agent handler is currently running (-1 none), and
     whether an outgoing control message already claimed it. Single
     threaded, like the simulator. *)
  mutable active : int;
  mutable active_consumed : bool;
  clock : unit -> float;
  recorder : Recorder.t option;
  tk_orphans : Topk.sketch option;
  c_started : Metrics.counter;
  c_actuated : Metrics.counter;
  c_no_action : Metrics.counter;
  c_rejected : Metrics.counter;
  c_orphaned : Metrics.counter;
  c_shed : Metrics.counter;
  c_dropped : Metrics.counter;
  c_stale : Metrics.counter;
  h_reaction : Metrics.histogram;
  h_ipc_out : Metrics.histogram;
  h_ipc_back : Metrics.histogram;
  h_summ : Metrics.histogram;
  h_hand : Metrics.histogram;
  h_apply : Metrics.histogram;
}

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let create ?(capacity = 1024) ~metrics ?recorder ?tk_orphans ~clock () =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be > 0";
  let cap = pow2_at_least capacity 1 in
  let bits =
    let rec go b = if 1 lsl b >= cap then b else go (b + 1) in
    go 0
  in
  {
    cap;
    mask = cap - 1;
    bits;
    gen = Array.make cap 0;
    busy = Array.make cap false;
    serial = Array.make cap 0;
    s_flow = Array.make cap 0;
    s_kind = Array.make cap 0;
    started_at = Array.make cap (-1);
    sent_at = Array.make cap (-1);
    agent_at = Array.make cap (-1);
    action_at = Array.make cap (-1);
    wall0 = Array.make cap 0.0;
    summ_ns = Array.make cap 0.0;
    hand0 = Array.make cap 0.0;
    hand_ns = Array.make cap 0.0;
    free = Array.init cap (fun i -> cap - 1 - i);
    free_top = cap;
    live = 0;
    next_serial = 0;
    active = -1;
    active_consumed = false;
    clock;
    recorder;
    tk_orphans;
    c_started = Metrics.counter metrics ~unit_:"spans" "trace.spans_started";
    c_actuated = Metrics.counter metrics ~unit_:"spans" "trace.spans_actuated";
    c_no_action = Metrics.counter metrics ~unit_:"spans" "trace.spans_no_action";
    c_rejected = Metrics.counter metrics ~unit_:"spans" "trace.spans_rejected";
    c_orphaned = Metrics.counter metrics ~unit_:"spans" "trace.spans_orphaned";
    c_shed = Metrics.counter metrics ~unit_:"spans" "trace.spans_shed";
    c_dropped = Metrics.counter metrics ~unit_:"spans" "trace.spans_dropped";
    c_stale = Metrics.counter metrics ~unit_:"refs" "trace.stale_refs";
    h_reaction = Metrics.histogram metrics ~unit_:"us" "trace.reaction_us";
    h_ipc_out = Metrics.histogram metrics ~unit_:"us" "trace.ipc_out_us";
    h_ipc_back = Metrics.histogram metrics ~unit_:"us" "trace.ipc_back_us";
    h_summ = Metrics.histogram metrics ~unit_:"ns" "trace.summarize_ns";
    h_hand = Metrics.histogram metrics ~unit_:"ns" "trace.handler_ns";
    h_apply = Metrics.histogram metrics ~unit_:"ns" "trace.apply_ns";
  }

let no_span = -1

let slot_of t token = token land t.mask

let is_live t token =
  token >= 0
  &&
  let slot = token land t.mask in
  t.busy.(slot) && t.gen.(slot) = token lsr t.bits

(* A negative token means "no span" and is silently ignored everywhere; a
   nonnegative token that fails the liveness check is a stale reference. *)
let stale t token = if token >= 0 then Metrics.incr t.c_stale

let start t ~now ~flow ~kind =
  if t.free_top = 0 then begin
    Metrics.incr t.c_dropped;
    no_span
  end
  else begin
    t.free_top <- t.free_top - 1;
    let slot = t.free.(t.free_top) in
    t.busy.(slot) <- true;
    t.serial.(slot) <- t.next_serial;
    t.next_serial <- t.next_serial + 1;
    t.s_flow.(slot) <- flow;
    t.s_kind.(slot) <- (match kind with Report_span -> 0 | Urgent_span -> 1);
    t.started_at.(slot) <- now;
    t.sent_at.(slot) <- -1;
    t.agent_at.(slot) <- -1;
    t.action_at.(slot) <- -1;
    t.wall0.(slot) <- t.clock ();
    t.summ_ns.(slot) <- 0.0;
    t.hand0.(slot) <- 0.0;
    t.hand_ns.(slot) <- 0.0;
    t.live <- t.live + 1;
    Metrics.incr t.c_started;
    slot lor (t.gen.(slot) lsl t.bits)
  end

let sent t token ~now =
  if is_live t token then begin
    let slot = slot_of t token in
    t.sent_at.(slot) <- now;
    let d = t.clock () -. t.wall0.(slot) in
    let d = if d > 0.0 then d else 0.0 in
    t.summ_ns.(slot) <- d;
    Metrics.observe t.h_summ d
  end
  else stale t token

let arrived t token ~now =
  if is_live t token then begin
    let slot = slot_of t token in
    if t.agent_at.(slot) < 0 then t.agent_at.(slot) <- now
  end
  else stale t token

let handler_begin t token =
  if is_live t token then begin
    t.hand0.(slot_of t token) <- t.clock ();
    t.active <- token;
    t.active_consumed <- false
  end
  else begin
    stale t token;
    t.active <- no_span
  end

let active t = if t.active >= 0 && not t.active_consumed then t.active else no_span

let note_send t token ~now =
  if is_live t token then begin
    let slot = slot_of t token in
    if t.action_at.(slot) < 0 then t.action_at.(slot) <- now;
    if t.active = token then t.active_consumed <- true
  end
  else stale t token

let release t slot =
  t.busy.(slot) <- false;
  t.gen.(slot) <- t.gen.(slot) + 1;
  t.free.(t.free_top) <- slot;
  t.free_top <- t.free_top + 1;
  t.live <- t.live - 1

let us_of_span a b = float_of_int (b - a) /. 1e3

let finish t token ~now ~disposition ~apply_ns =
  if is_live t token then begin
    let slot = slot_of t token in
    (match disposition with
    | Actuated ->
      Metrics.incr t.c_actuated;
      Metrics.observe t.h_reaction (us_of_span t.started_at.(slot) now);
      if t.action_at.(slot) >= 0 then
        Metrics.observe t.h_ipc_back (us_of_span t.action_at.(slot) now)
    | No_action -> Metrics.incr t.c_no_action
    | Rejected -> Metrics.incr t.c_rejected
    | Orphaned ->
      Metrics.incr t.c_orphaned;
      (* Only the tracer knows which flow an orphaned message belonged
         to, so the per-flow orphan sketch is fed here. *)
      (match t.tk_orphans with
      | Some s -> Topk.touch s t.s_flow.(slot)
      | None -> ())
    | Shed -> Metrics.incr t.c_shed);
    if t.sent_at.(slot) >= 0 && t.agent_at.(slot) >= 0 then
      Metrics.observe t.h_ipc_out (us_of_span t.sent_at.(slot) t.agent_at.(slot));
    if apply_ns > 0.0 then Metrics.observe t.h_apply apply_ns;
    (match t.recorder with
    | None -> ()
    | Some r ->
      Recorder.record r ~at:now
        (Recorder.Span
           {
             id = t.serial.(slot);
             flow = t.s_flow.(slot);
             kind = span_kind_to_string (if t.s_kind.(slot) = 0 then Report_span else Urgent_span);
             disposition = disposition_to_string disposition;
             started_at = t.started_at.(slot);
             sent_at = t.sent_at.(slot);
             agent_at = t.agent_at.(slot);
             action_at = t.action_at.(slot);
             done_at = now;
             summarize_ns = t.summ_ns.(slot);
             handler_ns = t.hand_ns.(slot);
             apply_ns;
           }));
    if t.active = token then begin
      t.active <- no_span;
      t.active_consumed <- false
    end;
    release t slot
  end
  else stale t token

let handler_end t token ~now =
  if is_live t token then begin
    let slot = slot_of t token in
    let d = t.clock () -. t.hand0.(slot) in
    let d = if d > 0.0 then d else 0.0 in
    t.hand_ns.(slot) <- d;
    Metrics.observe t.h_hand d;
    let consumed = t.action_at.(slot) >= 0 in
    if t.active = token then begin
      t.active <- no_span;
      t.active_consumed <- false
    end;
    (* A handler that produced no control message ends its span here. *)
    if not consumed then finish t token ~now ~disposition:No_action ~apply_ns:0.0
  end
  else begin
    stale t token;
    t.active <- no_span
  end

let orphan t token ~now = finish t token ~now ~disposition:Orphaned ~apply_ns:0.0
let shed t token ~now = finish t token ~now ~disposition:Shed ~apply_ns:0.0

(* ---- accounting -------------------------------------------------------- *)

type stats = {
  started : int;
  actuated : int;
  no_action : int;
  rejected : int;
  orphaned : int;
  shed : int;
  dropped : int;
  stale_refs : int;
  live : int;
}

let stats t =
  {
    started = Metrics.counter_value t.c_started;
    actuated = Metrics.counter_value t.c_actuated;
    no_action = Metrics.counter_value t.c_no_action;
    rejected = Metrics.counter_value t.c_rejected;
    orphaned = Metrics.counter_value t.c_orphaned;
    shed = Metrics.counter_value t.c_shed;
    dropped = Metrics.counter_value t.c_dropped;
    stale_refs = Metrics.counter_value t.c_stale;
    live = t.live;
  }

let pool_capacity t = t.cap
let free_slots t = t.free_top
let live_spans (t : t) = t.live
let wall_clock (t : t) = t.clock

(* ---- Chrome trace_event export ----------------------------------------- *)

(* One complete ("X") event for the whole reaction and one per IPC leg,
   plus instants at the handler and apply points carrying the wall-clock
   stage costs. [ts]/[dur] are microseconds of simulation time; pid is
   always 1 and tid is the flow id, so Perfetto groups spans per flow. *)
let chrome_events_of_span ~at:_ (s : Recorder.span) =
  let us ns = float_of_int ns /. 1e3 in
  let num f = Json.Num f in
  let common_args extra =
    ( "args",
      Json.Obj
        ([
           ("id", num (float_of_int s.Recorder.id));
           ("disposition", Json.Str s.Recorder.disposition);
         ]
        @ extra) )
  in
  let x name ~ts ~dur args =
    Json.Obj
      [
        ("name", Json.Str name);
        ("cat", Json.Str s.Recorder.kind);
        ("ph", Json.Str "X");
        ("ts", num ts);
        ("dur", num dur);
        ("pid", num 1.0);
        ("tid", num (float_of_int s.Recorder.flow));
        args;
      ]
  in
  let i name ~ts args =
    Json.Obj
      [
        ("name", Json.Str name);
        ("cat", Json.Str s.Recorder.kind);
        ("ph", Json.Str "i");
        ("ts", num ts);
        ("s", Json.Str "t");
        ("pid", num 1.0);
        ("tid", num (float_of_int s.Recorder.flow));
        args;
      ]
  in
  let events = ref [] in
  let add e = events := e :: !events in
  add
    (x "reaction"
       ~ts:(us s.Recorder.started_at)
       ~dur:(us (s.Recorder.done_at - s.Recorder.started_at))
       (common_args [ ("summarize_ns", num s.Recorder.summarize_ns) ]));
  if s.Recorder.sent_at >= 0 && s.Recorder.agent_at >= 0 then
    add
      (x "ipc_out" ~ts:(us s.Recorder.sent_at)
         ~dur:(us (s.Recorder.agent_at - s.Recorder.sent_at))
         (common_args []));
  if s.Recorder.agent_at >= 0 then
    add
      (i "handler" ~ts:(us s.Recorder.agent_at)
         (common_args [ ("handler_ns", num s.Recorder.handler_ns) ]));
  if s.Recorder.action_at >= 0 then
    add
      (x "ipc_back"
         ~ts:(us s.Recorder.action_at)
         ~dur:(us (s.Recorder.done_at - s.Recorder.action_at))
         (common_args []));
  if String.equal s.Recorder.disposition "actuated" then
    add
      (i "apply" ~ts:(us s.Recorder.done_at)
         (common_args [ ("apply_ns", num s.Recorder.apply_ns) ]));
  List.rev !events

let chrome_of_recorder r =
  let events = ref [] in
  List.iter
    (fun (at, ev) ->
      match ev with
      | Recorder.Span s -> events := List.rev_append (chrome_events_of_span ~at s) !events
      | _ -> ())
    (Recorder.to_list r);
  Json.Obj [ ("traceEvents", Json.List (List.rev !events)) ]

let validate_chrome json =
  match Json.member "traceEvents" json with
  | None -> Error "missing traceEvents array"
  | Some (Json.List events) ->
    let rec check i = function
      | [] -> Ok i
      | Json.Obj fields :: rest -> (
        let str k = Option.bind (List.assoc_opt k fields) Json.to_str in
        let num k = Option.bind (List.assoc_opt k fields) Json.to_float in
        match (str "name", str "ph", num "ts", num "pid", num "tid") with
        | Some _, Some ph, Some _, Some _, Some _ ->
          if String.equal ph "X" && num "dur" = None then
            Error (Printf.sprintf "event %d: complete event without dur" i)
          else check (i + 1) rest
        | _ -> Error (Printf.sprintf "event %d: missing name/ph/ts/pid/tid" i))
      | _ :: _ -> Error (Printf.sprintf "event %d: not an object" i)
    in
    check 0 events
  | Some _ -> Error "traceEvents is not an array"
