(** Composable fault injection for the simulated IPC channel.

    A fault plan describes how the channel between the datapath and the
    user-space agent misbehaves: random message loss and duplication,
    latency spikes, bounded reordering windows, full partition intervals,
    and agent crash/restart episodes. The {!Channel} draws every random
    decision from its own RNG stream (split off the simulator root), so a
    faulty run is exactly as reproducible as a clean one.

    The empty plan ({!none}) is the identity: a channel created with it
    performs {e no} extra RNG draws and behaves byte-for-byte like a
    channel without fault injection. *)

open Ccp_util

(** Half-open interval [\[from_, until)] of simulated time. *)
type interval = { from_ : Time_ns.t; until : Time_ns.t }

type spike = {
  probability : float;  (** chance a message pays the extra delay *)
  extra : Time_ns.t;  (** additional one-way latency when it fires *)
}

type reorder = {
  probability : float;  (** chance a message escapes the FIFO floor *)
  window : Time_ns.t;
      (** bound on how far past its FIFO slot the straggler may land;
          later messages are free to overtake it inside the window *)
}

type t = {
  drop_probability : float;  (** i.i.d. per-message loss, both directions *)
  duplicate_probability : float;  (** deliver a second copy after a fresh latency draw *)
  spike : spike option;
  reorder : reorder option;
  partitions : interval list;
      (** while a partition is open, every send (either direction) is
          silently dropped — the channel carries nothing *)
  agent_outages : interval list;
      (** agent crash/restart episodes: like a partition, but messages
          already in flight toward the agent are also lost on arrival, and
          {!Ccp_core.Experiment} additionally resets the agent's per-flow
          state at the restart instant (the process lost its memory) *)
}

val none : t
(** No faults. The identity plan. *)

val is_none : t -> bool
(** [true] iff the plan can never affect a message; channels skip the
    fault path (and its RNG draws) entirely in that case. *)

val make :
  ?drop_probability:float ->
  ?duplicate_probability:float ->
  ?spike:spike ->
  ?reorder:reorder ->
  ?partitions:interval list ->
  ?agent_outages:interval list ->
  unit ->
  t
(** Validating constructor. Raises [Invalid_argument] if a probability is
    outside \[0, 1\], a spike/reorder duration is negative, or an interval
    has [until <= from_]. Partition and outage lists are normalized:
    sorted by start, with overlapping or abutting intervals merged, so
    {!agent_down} / {!in_partition} are well-defined however the episodes
    were phrased. *)

val crash : at:Time_ns.t -> restart:Time_ns.t -> t -> t
(** [crash ~at ~restart plan] adds one agent outage episode (the outage
    list is re-normalized, so an episode overlapping an existing one
    extends it rather than shadowing it). *)

val in_partition : t -> Time_ns.t -> bool
(** The instant falls inside a partition {e or} agent outage. *)

val agent_down : t -> Time_ns.t -> bool
(** The instant falls inside an agent outage. *)

val partition_time : t -> Time_ns.t
(** Total scheduled unavailability: summed lengths of partitions and agent
    outages. Each list is normalized at construction, so overlaps within a
    list are never double-counted; a partition that coincides with an
    outage still counts once per list. *)

val describe : t -> string
(** One-line human-readable summary, ["none"] for the empty plan. *)
