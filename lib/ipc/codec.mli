(** Binary codec for {!Message.t}, including full control-program ASTs.

    Every message crossing the simulated channel is actually encoded and
    decoded, so the wire format is exercised on every simulated IPC
    exchange, and its size is what the channel's byte counters report.
    [decode (encode m)] = [m] is a qcheck property in the test suite. *)

exception Decode_error of string

val encode : Message.t -> string
(** Encodes via a module-level scratch {!Wire.Writer} that is reset and
    reused across calls, so steady-state encoding allocates only the
    result string. Not reentrant (fine: the simulator is single
    threaded); use {!encode_with} with a private writer otherwise. *)

val encode_with : Wire.Writer.t -> Message.t -> string
(** [encode_with w msg] resets [w] and encodes into it. *)

val decode : string -> Message.t
(** Raises {!Decode_error} (or {!Wire.Reader.Truncated}) on malformed
    input; the datapath treats that as a hostile agent and drops the
    message. *)

val encode_program : Ccp_lang.Ast.program -> string
val decode_program : string -> Ccp_lang.Ast.program

val encoded_size : Message.t -> int

val encode_traced : ?span:Message.trace_context -> Message.t -> string
(** [encode] plus an optional trailing trace-context block (tag byte 1 +
    varint span token). With [span] absent or negative the output is
    byte-identical to {!encode}, so tracing-off channels put exactly the
    same bytes on the wire as before the field existed. *)

val decode_traced : string -> Message.t * Message.trace_context
(** Inverse of {!encode_traced}; bytes without the trailing block decode
    as [(msg, Message.no_trace)] — absent-field backward compatibility.
    {!decode} itself still rejects any trailing bytes. *)

(** {2 Batch frames}

    A batch frame packs many traced message encodings into one wire
    message: tag byte 10, varint entry count, then each entry as a
    length-prefixed {!encode_traced} blob. Tag 10 is outside the
    single-message tag space, so the framings cannot be confused: a
    batching-unaware peer's {!decode} rejects a batch with a clean
    [Decode_error] rather than misparsing it. *)

val batch_tag : int
(** First byte of every batch frame (10). *)

val max_batch_entries : int
(** Upper bound on entries per frame (4096); both {!frame_batch} and
    {!decode_batch} enforce it. *)

val is_batch : string -> bool
(** [true] iff the bytes start with {!batch_tag} — cheap framing sniff
    used by the channel's receive path. No legacy message starts with
    tag 10, so this never misclassifies. *)

val frame_batch : string list -> string
(** Wrap pre-encoded {!encode_traced} entries (in send order) into one
    batch frame. Raises [Invalid_argument] above {!max_batch_entries}.
    An empty list yields a valid zero-entry frame. *)

val encode_batch : (Message.t * Message.trace_context) array -> string
(** [frame_batch] over [encode_traced ~span msg] for each element. *)

val decode_batch : string -> (Message.t * Message.trace_context) array
(** Inverse of {!encode_batch}: strict framing (trailing bytes rejected,
    entry count bounded), each entry decoded with {!decode_traced}.
    Raises {!Decode_error} / {!Wire.Reader.Truncated} on malformed
    input — the whole frame is rejected, never a prefix of it. *)
