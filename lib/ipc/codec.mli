(** Binary codec for {!Message.t}, including full control-program ASTs.

    Every message crossing the simulated channel is actually encoded and
    decoded, so the wire format is exercised on every simulated IPC
    exchange, and its size is what the channel's byte counters report.
    [decode (encode m)] = [m] is a qcheck property in the test suite. *)

exception Decode_error of string

val encode : Message.t -> string
(** Encodes via a module-level scratch {!Wire.Writer} that is reset and
    reused across calls, so steady-state encoding allocates only the
    result string. Not reentrant (fine: the simulator is single
    threaded); use {!encode_with} with a private writer otherwise. *)

val encode_with : Wire.Writer.t -> Message.t -> string
(** [encode_with w msg] resets [w] and encodes into it. *)

val decode : string -> Message.t
(** Raises {!Decode_error} (or {!Wire.Reader.Truncated}) on malformed
    input; the datapath treats that as a hostile agent and drops the
    message. *)

val encode_program : Ccp_lang.Ast.program -> string
val decode_program : string -> Ccp_lang.Ast.program

val encoded_size : Message.t -> int

val encode_traced : ?span:Message.trace_context -> Message.t -> string
(** [encode] plus an optional trailing trace-context block (tag byte 1 +
    varint span token). With [span] absent or negative the output is
    byte-identical to {!encode}, so tracing-off channels put exactly the
    same bytes on the wire as before the field existed. *)

val decode_traced : string -> Message.t * Message.trace_context
(** Inverse of {!encode_traced}; bytes without the trailing block decode
    as [(msg, Message.no_trace)] — absent-field backward compatibility.
    {!decode} itself still rejects any trailing bytes. *)
