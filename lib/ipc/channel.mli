(** The simulated IPC channel between a datapath and the CCP agent.

    Asynchronous and bidirectional. Every send encodes the message with
    {!Codec}, draws a one-way latency from the channel's {!Latency_model},
    and schedules decoding + delivery at the far end — so the control loop
    experiences exactly the asynchrony the paper's architecture implies,
    and the codec is on the hot path. Messages in each direction are
    delivered in FIFO order even when latency draws would reorder them
    (both Netlink and Unix sockets preserve ordering).

    A {!Fault_plan.t} degrades the channel on purpose: messages may be
    dropped, duplicated, delayed, reordered within a bounded window, or
    blackholed during partition/agent-crash intervals. Fault decisions come
    from a dedicated RNG stream split off the simulator root, so degraded
    runs stay deterministic — and the empty plan leaves the channel
    byte-for-byte identical to one without fault injection. *)

open Ccp_eventsim

type t

type endpoint = Datapath_end | Agent_end

val create :
  sim:Sim.t ->
  latency:Latency_model.t ->
  ?faults:Fault_plan.t ->
  ?obs:Ccp_obs.Obs.t ->
  unit ->
  t
(** The latency model is interpreted as a round-trip distribution; each
    message pays a one-way (half) draw. [faults] defaults to
    {!Fault_plan.none}. When [obs] is given the channel publishes
    per-direction message/byte counters, a one-way latency histogram
    ([ipc.oneway_latency_us]) and an [ipc.faults_injected] counter, and
    records an [Ipc_fault] trace event for every injected fault. *)

val on_receive : t -> endpoint -> (Message.t -> unit) -> unit
(** Register the handler that receives messages arriving {e at} the given
    endpoint. Must be set before traffic flows toward that endpoint. *)

val send : t -> from:endpoint -> Message.t -> unit
(** Raises [Invalid_argument] if the destination handler is not set. *)

(** {1 Statistics} *)

val messages_sent : t -> endpoint -> int
(** Messages sent {e from} the given endpoint. *)

val bytes_sent : t -> endpoint -> int
val decode_failures : t -> int

(** Cumulative effect of the fault plan on this channel, both directions
    combined. All-zero when the plan is {!Fault_plan.none}. *)
type fault_stats = {
  dropped : int;  (** random per-message losses *)
  duplicated : int;  (** extra copies delivered *)
  delayed : int;  (** latency spikes applied *)
  reordered : int;  (** messages released from the FIFO floor *)
  partition_dropped : int;
      (** losses to partitions and agent outages, including in-flight
          messages that arrived at a crashed agent *)
}

val fault_plan : t -> Fault_plan.t
val fault_stats : t -> fault_stats
