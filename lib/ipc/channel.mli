(** The simulated IPC channel between a datapath and the CCP agent.

    Asynchronous and bidirectional. Every send encodes the message with
    {!Codec}, draws a one-way latency from the channel's {!Latency_model},
    and schedules decoding + delivery at the far end — so the control loop
    experiences exactly the asynchrony the paper's architecture implies,
    and the codec is on the hot path. Messages in each direction are
    delivered in FIFO order even when latency draws would reorder them
    (both Netlink and Unix sockets preserve ordering).

    A {!Fault_plan.t} degrades the channel on purpose: messages may be
    dropped, duplicated, delayed, reordered within a bounded window, or
    blackholed during partition/agent-crash intervals. Fault decisions come
    from a dedicated RNG stream split off the simulator root, so degraded
    runs stay deterministic — and the empty plan leaves the channel
    byte-for-byte identical to one without fault injection. *)

open Ccp_eventsim

type t

type endpoint = Datapath_end | Agent_end

val create :
  sim:Sim.t ->
  latency:Latency_model.t ->
  ?faults:Fault_plan.t ->
  ?obs:Ccp_obs.Obs.t ->
  unit ->
  t
(** The latency model is interpreted as a round-trip distribution; each
    message pays a one-way (half) draw. [faults] defaults to
    {!Fault_plan.none}. When [obs] is given the channel publishes
    per-direction message/byte counters, a one-way latency histogram
    ([ipc.oneway_latency_us]) and an [ipc.faults_injected] counter, and
    records an [Ipc_fault] trace event for every injected fault. *)

val on_receive : t -> endpoint -> (Message.t -> unit) -> unit
(** Register the handler that receives messages arriving {e at} the given
    endpoint. Must be set before traffic flows toward that endpoint. *)

val send : t -> from:endpoint -> ?span:Message.trace_context -> Message.t -> unit
(** Raises [Invalid_argument] if the destination handler is not set.

    When the channel's [obs] bundle carries a {!Ccp_obs.Tracer}, [span]
    attaches that span's token to the message (an extra trailing wire
    block; without a span the bytes are identical to the untraced
    format). Datapath-side sends stamp the span as sent; agent-side sends
    with no explicit [span] automatically attach the span whose handler
    is currently running ({!Ccp_obs.Tracer.active}), so algorithm code
    stays tracing-unaware. Spans whose message is destroyed by a fault
    (drop, partition, crashed agent) are finalized as orphaned. *)

val rx_span : t -> Message.trace_context
(** The span token carried by the message currently being delivered to a
    handler, or {!Message.no_trace}. Valid only inside a handler call. *)

(** {1 Statistics} *)

val messages_sent : t -> endpoint -> int
(** Messages sent {e from} the given endpoint. *)

val bytes_sent : t -> endpoint -> int

val decode_failures : t -> int
(** Deliveries whose bytes failed to decode; also published as the
    [ipc.decode_failures] counter when the channel carries an [obs]
    bundle. *)

(** Cumulative effect of the fault plan on this channel, both directions
    combined. All-zero when the plan is {!Fault_plan.none}. *)
type fault_stats = {
  dropped : int;  (** random per-message losses *)
  duplicated : int;  (** extra copies delivered *)
  delayed : int;  (** latency spikes applied *)
  reordered : int;  (** messages released from the FIFO floor *)
  partition_dropped : int;
      (** losses to partitions and agent outages, including in-flight
          messages that arrived at a crashed agent *)
}

val fault_plan : t -> Fault_plan.t
val fault_stats : t -> fault_stats
