(** The simulated IPC channel between a datapath and the CCP agent.

    Asynchronous and bidirectional. Every send encodes the message with
    {!Codec}, draws a one-way latency from the channel's {!Latency_model},
    and schedules decoding + delivery at the far end — so the control loop
    experiences exactly the asynchrony the paper's architecture implies,
    and the codec is on the hot path. Messages in each direction are
    delivered in FIFO order even when latency draws would reorder them
    (both Netlink and Unix sockets preserve ordering).

    A {!Fault_plan.t} degrades the channel on purpose: messages may be
    dropped, duplicated, delayed, reordered within a bounded window, or
    blackholed during partition/agent-crash intervals. Fault decisions come
    from a dedicated RNG stream split off the simulator root, so degraded
    runs stay deterministic — and the empty plan leaves the channel
    byte-for-byte identical to one without fault injection. *)

open Ccp_eventsim

type t

type endpoint = Datapath_end | Agent_end

(** Watermarks for datapath->agent report batching. A pending frame is
    flushed when it holds [max_count] reports, when its payload reaches
    [max_bytes], or [deadline] after the first report was parked —
    whichever comes first. All three must be positive. *)
type batching = {
  max_count : int;
  max_bytes : int;
  deadline : Ccp_util.Time_ns.t;
}

val create :
  sim:Sim.t ->
  latency:Latency_model.t ->
  ?faults:Fault_plan.t ->
  ?batching:batching ->
  ?obs:Ccp_obs.Obs.t ->
  unit ->
  t
(** The latency model is interpreted as a round-trip distribution; each
    message pays a one-way (half) draw. [faults] defaults to
    {!Fault_plan.none}. When [obs] is given the channel publishes
    per-direction message/byte counters, a one-way latency histogram
    ([ipc.oneway_latency_us]) and an [ipc.faults_injected] counter, and
    records an [Ipc_fault] trace event for every injected fault.

    [batching] (default off) turns on cross-flow report coalescing:
    datapath-side [Report] sends are parked and flushed as one
    {!Codec.frame_batch} wire frame at the watermarks, amortizing
    per-message channel overhead across every flow that reported in the
    flush window. Non-report datapath traffic (Ready/Urgent/Closed/
    vector reports) never waits: it flushes the pending frame first —
    wire order equals send order — and departs immediately, so loss
    signals keep their latency. With batching off the channel is
    byte-for-byte identical to one built before batching existed, and
    batching draws nothing from any RNG stream, so enabling it never
    perturbs latency or fault draws. *)

val on_receive : t -> endpoint -> (Message.t -> unit) -> unit
(** Register the handler that receives messages arriving {e at} the given
    endpoint. Must be set before traffic flows toward that endpoint. *)

val send : t -> from:endpoint -> ?span:Message.trace_context -> Message.t -> unit
(** Raises [Invalid_argument] if the destination handler is not set.

    When the channel's [obs] bundle carries a {!Ccp_obs.Tracer}, [span]
    attaches that span's token to the message (an extra trailing wire
    block; without a span the bytes are identical to the untraced
    format). Datapath-side sends stamp the span as sent; agent-side sends
    with no explicit [span] automatically attach the span whose handler
    is currently running ({!Ccp_obs.Tracer.active}), so algorithm code
    stays tracing-unaware. Spans whose message is destroyed by a fault
    (drop, partition, crashed agent) are finalized as orphaned. *)

val rx_span : t -> Message.trace_context
(** The span token carried by the message currently being delivered to a
    handler, or {!Message.no_trace}. Valid only inside a handler call.
    Batched reports each carry their own span: the register is updated
    per entry as the frame unpacks. *)

val flush : t -> unit
(** Force out the pending report frame, if any. No-op with batching off
    or nothing pending. The watermarks make this unnecessary in steady
    state; it exists for drain-before-shutdown and tests. *)

val deliver_raw : t -> toward:endpoint -> string -> unit
(** Deliver arbitrary bytes to an endpoint's handler immediately, as a
    corrupted or hostile peer would produce them — no encode, no latency
    draw, no fault plan. Malformed bytes count a decode failure and are
    dropped without disturbing the channel. Test/fuzzing hook. *)

(** {1 Statistics} *)

val messages_sent : t -> endpoint -> int
(** Wire frames sent {e from} the given endpoint — with batching on, a
    flushed batch counts once however many reports it carries. *)

val bytes_sent : t -> endpoint -> int

val decode_failures : t -> int
(** Deliveries whose bytes failed to decode; also published as the
    [ipc.decode_failures] counter when the channel carries an [obs]
    bundle. A corrupt batch frame counts once, atomically: none of its
    entries are delivered. *)

val pending_reports : t -> int
(** Reports parked in the not-yet-flushed batch frame (0 with batching
    off). *)

val batches_sent : t -> int
(** Batch frames flushed onto the wire since creation. *)

val reports_batched : t -> int
(** Reports that went through the batching path (parked then flushed),
    including frames of one. *)

(** Cumulative effect of the fault plan on this channel, both directions
    combined. All-zero when the plan is {!Fault_plan.none}. *)
type fault_stats = {
  dropped : int;  (** random per-message losses *)
  duplicated : int;  (** extra copies delivered *)
  delayed : int;  (** latency spikes applied *)
  reordered : int;  (** messages released from the FIFO floor *)
  partition_dropped : int;
      (** losses to partitions and agent outages, including in-flight
          messages that arrived at a crashed agent *)
}

val fault_plan : t -> Fault_plan.t
val fault_stats : t -> fault_stats
