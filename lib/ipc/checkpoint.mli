(** Versioned agent-state checkpoint for warm crash recovery.

    A snapshot of the agent's per-flow soft state — algorithm name, last
    commanded cwnd/rate, and the algorithm's own register dump — written
    on a timer by {!Ccp_core.Experiment} and replayed into a restarted
    agent so recovered flows resume near their pre-crash operating point
    instead of re-handshaking cold. Encoded over the {!Wire} primitives
    (the same binary substrate as the live {!Codec} protocol) with an
    explicit version: a restarted agent refuses blobs written by an
    incompatible predecessor rather than misreading them. *)

open Ccp_util

type flow_snapshot = {
  flow : int;
  algorithm : string;  (** [Algorithm.t.name] that was driving the flow *)
  cwnd : int;  (** last cwnd the agent commanded, bytes; 0 = never set *)
  rate : float;  (** last pacing rate commanded, bytes/s; 0 = never set *)
  registers : (string * float) array;
      (** opaque algorithm registers from [handlers.on_checkpoint] *)
}

type t = { taken_at : Time_ns.t; flows : flow_snapshot list }

val version : int
(** Current format version (encoded in every blob). *)

val encode : t -> string
(** Deterministic binary encoding (magic byte, version, then per-flow
    records). *)

val decode : string -> (t, string) result
(** Total: bad magic, version mismatch, truncation, or trailing garbage
    come back as [Error] — never an exception. *)

val describe : t -> string
(** One-line human-readable summary. *)
