open Ccp_util
open Ccp_eventsim

type endpoint = Datapath_end | Agent_end

type direction = {
  mutable handler : (Message.t -> unit) option;
  mutable messages : int;
  mutable bytes : int;
  mutable last_delivery : Time_ns.t;  (* FIFO floor for this direction *)
}

type fault_stats = {
  dropped : int;
  duplicated : int;
  delayed : int;
  reordered : int;
  partition_dropped : int;
}

let no_faults_yet =
  { dropped = 0; duplicated = 0; delayed = 0; reordered = 0; partition_dropped = 0 }

(* Pre-registered handles so the send path never does a name lookup. *)
type obs_handles = {
  obs : Ccp_obs.Obs.t;
  msg_to_agent : Ccp_obs.Metrics.counter;
  msg_to_datapath : Ccp_obs.Metrics.counter;
  bytes_to_agent : Ccp_obs.Metrics.counter;
  bytes_to_datapath : Ccp_obs.Metrics.counter;
  oneway_us : Ccp_obs.Metrics.histogram;
  faults_injected : Ccp_obs.Metrics.counter;
  decode_failures : Ccp_obs.Metrics.counter;
}

let make_handles obs =
  let open Ccp_obs in
  {
    obs;
    msg_to_agent = Metrics.counter obs.Obs.metrics ~unit_:"msgs" "ipc.to_agent.messages";
    msg_to_datapath =
      Metrics.counter obs.Obs.metrics ~unit_:"msgs" "ipc.to_datapath.messages";
    bytes_to_agent = Metrics.counter obs.Obs.metrics ~unit_:"bytes" "ipc.to_agent.bytes";
    bytes_to_datapath =
      Metrics.counter obs.Obs.metrics ~unit_:"bytes" "ipc.to_datapath.bytes";
    oneway_us = Metrics.histogram obs.Obs.metrics ~unit_:"us" "ipc.oneway_latency_us";
    faults_injected = Metrics.counter obs.Obs.metrics ~unit_:"events" "ipc.faults_injected";
    decode_failures = Metrics.counter obs.Obs.metrics ~unit_:"errors" "ipc.decode_failures";
  }

type t = {
  sim : Sim.t;
  latency : Latency_model.t;
  rng : Rng.t;
  faults : Fault_plan.t;
  (* Separate stream so fault decisions never perturb latency draws; only
     split when the plan is non-empty, keeping clean runs byte-identical. *)
  fault_rng : Rng.t option;
  to_agent : direction;
  to_datapath : direction;
  mutable decode_failures : int;
  mutable fault_stats : fault_stats;
  handles : obs_handles option;
  tracer : Ccp_obs.Tracer.t option;
  (* Span token of the message currently being delivered (-1 none): the
     receiving handler reads it via [rx_span]. Single threaded, so a
     plain register is enough. *)
  mutable rx_span : Message.trace_context;
}

let fresh_direction () =
  { handler = None; messages = 0; bytes = 0; last_delivery = Time_ns.zero }

let create ~sim ~latency ?(faults = Fault_plan.none) ?obs () =
  let rng = Rng.split (Sim.rng sim) in
  let fault_rng = if Fault_plan.is_none faults then None else Some (Rng.split (Sim.rng sim)) in
  {
    sim;
    latency;
    rng;
    faults;
    fault_rng;
    to_agent = fresh_direction ();
    to_datapath = fresh_direction ();
    decode_failures = 0;
    fault_stats = no_faults_yet;
    handles = Option.map make_handles obs;
    tracer = (match obs with Some o -> o.Ccp_obs.Obs.tracer | None -> None);
    rx_span = Message.no_trace;
  }

let direction_toward t = function
  | Agent_end -> t.to_agent
  | Datapath_end -> t.to_datapath

let note_fault t kind =
  match t.handles with
  | None -> ()
  | Some h ->
    Ccp_obs.Metrics.incr h.faults_injected;
    Ccp_obs.Obs.record h.obs ~at:(Sim.now t.sim) (Ccp_obs.Recorder.Ipc_fault { kind })

let note_send t toward ~bytes ~delay =
  match t.handles with
  | None -> ()
  | Some h ->
    let msgs, byts =
      match toward with
      | Agent_end -> (h.msg_to_agent, h.bytes_to_agent)
      | Datapath_end -> (h.msg_to_datapath, h.bytes_to_datapath)
    in
    Ccp_obs.Metrics.incr msgs;
    Ccp_obs.Metrics.add byts bytes;
    Ccp_obs.Metrics.observe h.oneway_us (Time_ns.to_float_us delay)

let on_receive t endpoint handler = (direction_toward t endpoint).handler <- Some handler

let rx_span t = t.rx_span

(* The span of a message that a fault destroyed is finalized as orphaned,
   so the tracer's pool accounting stays exact under any fault plan. *)
let orphan_span t span =
  match t.tracer with
  | Some tr when span >= 0 -> Ccp_obs.Tracer.orphan tr span ~now:(Sim.now t.sim)
  | _ -> ()

let deliver t handler ~toward bytes =
  match Codec.decode_traced bytes with
  | decoded, span ->
    (match t.tracer with
    | Some tr when span >= 0 ->
      if toward = Agent_end then Ccp_obs.Tracer.arrived tr span ~now:(Sim.now t.sim);
      t.rx_span <- span;
      handler decoded;
      t.rx_span <- Message.no_trace
    | _ -> handler decoded)
  | exception (Codec.Decode_error _ | Wire.Reader.Truncated | Wire.Reader.Malformed _) ->
    t.decode_failures <- t.decode_failures + 1;
    (match t.handles with
    | Some h -> Ccp_obs.Metrics.incr h.decode_failures
    | None -> ())

(* Schedule one copy of [bytes]. [fifo] decides whether the arrival is
   clamped to (and advances) the direction's FIFO floor; reordered and
   duplicated copies skip the clamp so later sends may overtake them. *)
let schedule_copy t dir ~toward handler ~arrival ~fifo ~span bytes =
  let arrival = if fifo then Time_ns.max arrival dir.last_delivery else arrival in
  if fifo then dir.last_delivery <- arrival;
  ignore
    (Sim.schedule t.sim ~at:arrival (fun () ->
         (* A crashed agent loses messages already in flight toward it. *)
         if toward = Agent_end && Fault_plan.agent_down t.faults (Sim.now t.sim) then begin
           t.fault_stats <-
             { t.fault_stats with partition_dropped = t.fault_stats.partition_dropped + 1 };
           note_fault t "agent_down";
           orphan_span t span
         end
         else deliver t handler ~toward bytes))

let send t ~from ?(span = Message.no_trace) msg =
  let toward = match from with Datapath_end -> Agent_end | Agent_end -> Datapath_end in
  let dir = direction_toward t toward in
  let handler =
    match dir.handler with
    | Some h -> h
    | None -> invalid_arg "Channel.send: destination handler not registered"
  in
  (* Agent-side control messages attach to the span whose handler is
     running, so algorithm code needs no tracing awareness at all. *)
  let span =
    match t.tracer with
    | None -> Message.no_trace
    | Some tr ->
      if span >= 0 then span
      else if from = Agent_end then Ccp_obs.Tracer.active tr
      else Message.no_trace
  in
  let bytes = Codec.encode_traced ~span msg in
  dir.messages <- dir.messages + 1;
  dir.bytes <- dir.bytes + String.length bytes;
  (match t.tracer with
  | Some tr when span >= 0 ->
    let now = Sim.now t.sim in
    (match from with
    | Datapath_end -> Ccp_obs.Tracer.sent tr span ~now
    | Agent_end -> Ccp_obs.Tracer.note_send tr span ~now)
  | _ -> ());
  match t.fault_rng with
  | None ->
    (* Clean channel: the original delivery path, untouched. *)
    let delay = Latency_model.one_way t.latency t.rng in
    note_send t toward ~bytes:(String.length bytes) ~delay;
    let arrival = Time_ns.add (Sim.now t.sim) delay in
    (* Preserve per-direction FIFO ordering under random latency draws. *)
    let arrival = Time_ns.max arrival dir.last_delivery in
    dir.last_delivery <- arrival;
    ignore (Sim.schedule t.sim ~at:arrival (fun () -> deliver t handler ~toward bytes))
  | Some frng ->
    let now = Sim.now t.sim in
    let stats = t.fault_stats in
    if Fault_plan.in_partition t.faults now then begin
      t.fault_stats <- { stats with partition_dropped = stats.partition_dropped + 1 };
      note_fault t "partition";
      orphan_span t span
    end
    else if
      t.faults.Fault_plan.drop_probability > 0.0
      && Rng.float frng 1.0 < t.faults.Fault_plan.drop_probability
    then begin
      t.fault_stats <- { stats with dropped = stats.dropped + 1 };
      note_fault t "drop";
      orphan_span t span
    end
    else begin
      let delay = Latency_model.one_way t.latency t.rng in
      let delay =
        match t.faults.Fault_plan.spike with
        | Some s when s.Fault_plan.probability > 0.0 && Rng.float frng 1.0 < s.Fault_plan.probability ->
          t.fault_stats <- { t.fault_stats with delayed = t.fault_stats.delayed + 1 };
          note_fault t "spike";
          Time_ns.add delay s.Fault_plan.extra
        | _ -> delay
      in
      note_send t toward ~bytes:(String.length bytes) ~delay;
      let arrival = Time_ns.add now delay in
      (match t.faults.Fault_plan.reorder with
      | Some r
        when r.Fault_plan.probability > 0.0 && Rng.float frng 1.0 < r.Fault_plan.probability ->
        (* Bounded reordering: push the message at most [window] past its
           FIFO slot without raising the floor, so later sends overtake. *)
        let slot = Time_ns.max arrival dir.last_delivery in
        (* Time_ns.t is integer nanoseconds, so the window bounds the draw. *)
        let lag = Rng.int frng (max 1 (r.Fault_plan.window + 1)) in
        t.fault_stats <- { t.fault_stats with reordered = t.fault_stats.reordered + 1 };
        note_fault t "reorder";
        schedule_copy t dir ~toward handler ~arrival:(Time_ns.add slot (Time_ns.ns lag))
          ~fifo:false ~span bytes
      | _ -> schedule_copy t dir ~toward handler ~arrival ~fifo:true ~span bytes);
      if
        t.faults.Fault_plan.duplicate_probability > 0.0
        && Rng.float frng 1.0 < t.faults.Fault_plan.duplicate_probability
      then begin
        (* The duplicate pays its own latency draw and floats free of the
           FIFO floor, as a retransmitted datagram would. *)
        let dup_arrival = Time_ns.add now (Latency_model.one_way t.latency t.rng) in
        t.fault_stats <- { t.fault_stats with duplicated = t.fault_stats.duplicated + 1 };
        note_fault t "duplicate";
        schedule_copy t dir ~toward handler ~arrival:dup_arrival ~fifo:false ~span bytes
      end
    end

let messages_sent t = function
  | Datapath_end -> t.to_agent.messages
  | Agent_end -> t.to_datapath.messages

let bytes_sent t = function
  | Datapath_end -> t.to_agent.bytes
  | Agent_end -> t.to_datapath.bytes

let decode_failures t = t.decode_failures
let fault_plan t = t.faults
let fault_stats t = t.fault_stats
