open Ccp_util
open Ccp_eventsim

type endpoint = Datapath_end | Agent_end

type direction = {
  mutable handler : (Message.t -> unit) option;
  mutable messages : int;
  mutable bytes : int;
  mutable last_delivery : Time_ns.t;  (* FIFO floor for this direction *)
}

type fault_stats = {
  dropped : int;
  duplicated : int;
  delayed : int;
  reordered : int;
  partition_dropped : int;
}

let no_faults_yet =
  { dropped = 0; duplicated = 0; delayed = 0; reordered = 0; partition_dropped = 0 }

type batching = { max_count : int; max_bytes : int; deadline : Time_ns.t }

(* Pending reports are kept already traced-encoded (newest first), so a
   flush only length-prefixes them into one frame — the per-report encode
   cost is paid exactly once whether or not the report is batched. *)
type batch_state = {
  cfg : batching;
  mutable entries : string list;
  mutable spans : Message.trace_context list;  (* parallel to [entries] *)
  mutable count : int;
  mutable pending_bytes : int;
  mutable flush_serial : int;  (* bumped per flush; stale deadline timers no-op *)
  mutable batches : int;
  mutable batched : int;
}

(* Pre-registered handles so the send path never does a name lookup. *)
type obs_handles = {
  obs : Ccp_obs.Obs.t;
  msg_to_agent : Ccp_obs.Metrics.counter;
  msg_to_datapath : Ccp_obs.Metrics.counter;
  bytes_to_agent : Ccp_obs.Metrics.counter;
  bytes_to_datapath : Ccp_obs.Metrics.counter;
  oneway_us : Ccp_obs.Metrics.histogram;
  faults_injected : Ccp_obs.Metrics.counter;
  decode_failures : Ccp_obs.Metrics.counter;
  batches_sent : Ccp_obs.Metrics.counter;
  reports_batched : Ccp_obs.Metrics.counter;
  pending_reports : Ccp_obs.Metrics.gauge;
}

let make_handles obs =
  let open Ccp_obs in
  {
    obs;
    msg_to_agent = Metrics.counter obs.Obs.metrics ~unit_:"msgs" "ipc.to_agent.messages";
    msg_to_datapath =
      Metrics.counter obs.Obs.metrics ~unit_:"msgs" "ipc.to_datapath.messages";
    bytes_to_agent = Metrics.counter obs.Obs.metrics ~unit_:"bytes" "ipc.to_agent.bytes";
    bytes_to_datapath =
      Metrics.counter obs.Obs.metrics ~unit_:"bytes" "ipc.to_datapath.bytes";
    oneway_us = Metrics.histogram obs.Obs.metrics ~unit_:"us" "ipc.oneway_latency_us";
    faults_injected = Metrics.counter obs.Obs.metrics ~unit_:"events" "ipc.faults_injected";
    decode_failures = Metrics.counter obs.Obs.metrics ~unit_:"errors" "ipc.decode_failures";
    batches_sent = Metrics.counter obs.Obs.metrics ~unit_:"frames" "ipc.batches_sent";
    reports_batched = Metrics.counter obs.Obs.metrics ~unit_:"reports" "ipc.reports_batched";
    pending_reports = Metrics.gauge obs.Obs.metrics ~unit_:"reports" "ipc.pending_reports";
  }

type t = {
  sim : Sim.t;
  latency : Latency_model.t;
  rng : Rng.t;
  faults : Fault_plan.t;
  (* Separate stream so fault decisions never perturb latency draws; only
     split when the plan is non-empty, keeping clean runs byte-identical. *)
  fault_rng : Rng.t option;
  to_agent : direction;
  to_datapath : direction;
  (* Datapath->agent report batching; [None] (the default) keeps every
     send on the one-frame-per-message path, byte-identical to a build
     without batching. *)
  batch : batch_state option;
  mutable decode_failures : int;
  mutable fault_stats : fault_stats;
  handles : obs_handles option;
  tracer : Ccp_obs.Tracer.t option;
  (* Span token of the message currently being delivered (-1 none): the
     receiving handler reads it via [rx_span]. Single threaded, so a
     plain register is enough. *)
  mutable rx_span : Message.trace_context;
}

let fresh_direction () =
  { handler = None; messages = 0; bytes = 0; last_delivery = Time_ns.zero }

let create ~sim ~latency ?(faults = Fault_plan.none) ?batching ?obs () =
  let rng = Rng.split (Sim.rng sim) in
  let fault_rng = if Fault_plan.is_none faults then None else Some (Rng.split (Sim.rng sim)) in
  let batch =
    match batching with
    | None -> None
    | Some cfg ->
      if cfg.max_count <= 0 || cfg.max_bytes <= 0 then
        invalid_arg "Channel.create: batching watermarks must be positive";
      if Time_ns.to_float_us cfg.deadline <= 0.0 then
        invalid_arg "Channel.create: batching deadline must be positive";
      Some
        {
          cfg;
          entries = [];
          spans = [];
          count = 0;
          pending_bytes = 0;
          flush_serial = 0;
          batches = 0;
          batched = 0;
        }
  in
  {
    sim;
    latency;
    rng;
    faults;
    fault_rng;
    to_agent = fresh_direction ();
    to_datapath = fresh_direction ();
    batch;
    decode_failures = 0;
    fault_stats = no_faults_yet;
    handles = Option.map make_handles obs;
    tracer = (match obs with Some o -> o.Ccp_obs.Obs.tracer | None -> None);
    rx_span = Message.no_trace;
  }

let direction_toward t = function
  | Agent_end -> t.to_agent
  | Datapath_end -> t.to_datapath

let note_fault t kind =
  match t.handles with
  | None -> ()
  | Some h ->
    Ccp_obs.Metrics.incr h.faults_injected;
    Ccp_obs.Obs.record h.obs ~at:(Sim.now t.sim) (Ccp_obs.Recorder.Ipc_fault { kind })

let note_send t toward ~bytes ~delay =
  match t.handles with
  | None -> ()
  | Some h ->
    let msgs, byts =
      match toward with
      | Agent_end -> (h.msg_to_agent, h.bytes_to_agent)
      | Datapath_end -> (h.msg_to_datapath, h.bytes_to_datapath)
    in
    Ccp_obs.Metrics.incr msgs;
    Ccp_obs.Metrics.add byts bytes;
    Ccp_obs.Metrics.observe h.oneway_us (Time_ns.to_float_us delay)

let on_receive t endpoint handler = (direction_toward t endpoint).handler <- Some handler

let rx_span t = t.rx_span

(* The span of a message that a fault destroyed is finalized as orphaned,
   so the tracer's pool accounting stays exact under any fault plan. A
   batch frame carries one span per batched report; a fault that destroys
   the frame orphans all of them. *)
let orphan_span t span =
  match t.tracer with
  | Some tr when span >= 0 -> Ccp_obs.Tracer.orphan tr span ~now:(Sim.now t.sim)
  | _ -> ()

let orphan_spans t spans = List.iter (orphan_span t) spans

let note_decode_failure t =
  t.decode_failures <- t.decode_failures + 1;
  match t.handles with
  | Some h -> Ccp_obs.Metrics.incr h.decode_failures
  | None -> ()

let deliver_one t handler ~toward decoded span =
  match t.tracer with
  | Some tr when span >= 0 ->
    if toward = Agent_end then Ccp_obs.Tracer.arrived tr span ~now:(Sim.now t.sim);
    t.rx_span <- span;
    handler decoded;
    t.rx_span <- Message.no_trace
  | _ -> handler decoded

let deliver t handler ~toward bytes =
  if Codec.is_batch bytes then
    (* Frame validation is atomic: a corrupt entry rejects the whole
       frame as one decode failure, never a decoded prefix of it. *)
    match Codec.decode_batch bytes with
    | entries ->
      Array.iter (fun (msg, span) -> deliver_one t handler ~toward msg span) entries
    | exception (Codec.Decode_error _ | Wire.Reader.Truncated | Wire.Reader.Malformed _) ->
      note_decode_failure t
  else
    match Codec.decode_traced bytes with
    | decoded, span -> deliver_one t handler ~toward decoded span
    | exception (Codec.Decode_error _ | Wire.Reader.Truncated | Wire.Reader.Malformed _) ->
      note_decode_failure t

(* Schedule one copy of [bytes]. [fifo] decides whether the arrival is
   clamped to (and advances) the direction's FIFO floor; reordered and
   duplicated copies skip the clamp so later sends may overtake them. *)
let schedule_copy t dir ~toward handler ~arrival ~fifo ~spans bytes =
  let arrival = if fifo then Time_ns.max arrival dir.last_delivery else arrival in
  if fifo then dir.last_delivery <- arrival;
  ignore
    (Sim.schedule t.sim ~at:arrival (fun () ->
         (* A crashed agent loses messages already in flight toward it. *)
         if toward = Agent_end && Fault_plan.agent_down t.faults (Sim.now t.sim) then begin
           t.fault_stats <-
             { t.fault_stats with partition_dropped = t.fault_stats.partition_dropped + 1 };
           note_fault t "agent_down";
           orphan_spans t spans
         end
         else deliver t handler ~toward bytes))

(* Put one wire frame (single message or batch) on the channel: byte
   accounting, latency draw, fault plan, delivery scheduling. [spans] are
   the live span tokens riding the frame, orphaned if a fault eats it. *)
let transmit t dir handler ~toward ~spans bytes =
  dir.messages <- dir.messages + 1;
  dir.bytes <- dir.bytes + String.length bytes;
  match t.fault_rng with
  | None ->
    (* Clean channel: the original delivery path, untouched. *)
    let delay = Latency_model.one_way t.latency t.rng in
    note_send t toward ~bytes:(String.length bytes) ~delay;
    let arrival = Time_ns.add (Sim.now t.sim) delay in
    (* Preserve per-direction FIFO ordering under random latency draws. *)
    let arrival = Time_ns.max arrival dir.last_delivery in
    dir.last_delivery <- arrival;
    ignore (Sim.schedule t.sim ~at:arrival (fun () -> deliver t handler ~toward bytes))
  | Some frng ->
    let now = Sim.now t.sim in
    let stats = t.fault_stats in
    if Fault_plan.in_partition t.faults now then begin
      t.fault_stats <- { stats with partition_dropped = stats.partition_dropped + 1 };
      note_fault t "partition";
      orphan_spans t spans
    end
    else if
      t.faults.Fault_plan.drop_probability > 0.0
      && Rng.float frng 1.0 < t.faults.Fault_plan.drop_probability
    then begin
      t.fault_stats <- { stats with dropped = stats.dropped + 1 };
      note_fault t "drop";
      orphan_spans t spans
    end
    else begin
      let delay = Latency_model.one_way t.latency t.rng in
      let delay =
        match t.faults.Fault_plan.spike with
        | Some s when s.Fault_plan.probability > 0.0 && Rng.float frng 1.0 < s.Fault_plan.probability ->
          t.fault_stats <- { t.fault_stats with delayed = t.fault_stats.delayed + 1 };
          note_fault t "spike";
          Time_ns.add delay s.Fault_plan.extra
        | _ -> delay
      in
      note_send t toward ~bytes:(String.length bytes) ~delay;
      let arrival = Time_ns.add now delay in
      (match t.faults.Fault_plan.reorder with
      | Some r
        when r.Fault_plan.probability > 0.0 && Rng.float frng 1.0 < r.Fault_plan.probability ->
        (* Bounded reordering: push the message at most [window] past its
           FIFO slot without raising the floor, so later sends overtake. *)
        let slot = Time_ns.max arrival dir.last_delivery in
        (* Time_ns.t is integer nanoseconds, so the window bounds the draw. *)
        let lag = Rng.int frng (max 1 (r.Fault_plan.window + 1)) in
        t.fault_stats <- { t.fault_stats with reordered = t.fault_stats.reordered + 1 };
        note_fault t "reorder";
        schedule_copy t dir ~toward handler ~arrival:(Time_ns.add slot (Time_ns.ns lag))
          ~fifo:false ~spans bytes
      | _ -> schedule_copy t dir ~toward handler ~arrival ~fifo:true ~spans bytes);
      if
        t.faults.Fault_plan.duplicate_probability > 0.0
        && Rng.float frng 1.0 < t.faults.Fault_plan.duplicate_probability
      then begin
        (* The duplicate pays its own latency draw and floats free of the
           FIFO floor, as a retransmitted datagram would. *)
        let dup_arrival = Time_ns.add now (Latency_model.one_way t.latency t.rng) in
        t.fault_stats <- { t.fault_stats with duplicated = t.fault_stats.duplicated + 1 };
        note_fault t "duplicate";
        schedule_copy t dir ~toward handler ~arrival:dup_arrival ~fifo:false ~spans bytes
      end
    end

let stamp_send t ~from span =
  match t.tracer with
  | Some tr when span >= 0 ->
    let now = Sim.now t.sim in
    (match from with
    | Datapath_end -> Ccp_obs.Tracer.sent tr span ~now
    | Agent_end -> Ccp_obs.Tracer.note_send tr span ~now)
  | _ -> ()

let flush t =
  match t.batch with
  | None -> ()
  | Some b when b.count = 0 -> ()
  | Some b ->
    let dir = t.to_agent in
    let handler =
      match dir.handler with
      | Some h -> h
      | None -> invalid_arg "Channel.flush: destination handler not registered"
    in
    let entries = List.rev b.entries in
    let spans = List.filter (fun s -> s >= 0) (List.rev b.spans) in
    b.entries <- [];
    b.spans <- [];
    b.count <- 0;
    b.pending_bytes <- 0;
    b.flush_serial <- b.flush_serial + 1;
    b.batches <- b.batches + 1;
    (match t.handles with
    | Some h ->
      Ccp_obs.Metrics.incr h.batches_sent;
      Ccp_obs.Metrics.set h.pending_reports 0.0
    | None -> ());
    let frame = Codec.frame_batch entries in
    (* Batched datapath spans are stamped as sent when the frame actually
       hits the wire, not when the report was parked. *)
    List.iter (fun s -> stamp_send t ~from:Datapath_end s) spans;
    transmit t dir handler ~toward:Agent_end ~spans frame

let enqueue_report t b ~span msg =
  let entry = Codec.encode_traced ~span msg in
  b.entries <- entry :: b.entries;
  b.spans <- span :: b.spans;
  b.count <- b.count + 1;
  b.pending_bytes <- b.pending_bytes + String.length entry;
  b.batched <- b.batched + 1;
  (match t.handles with
  | Some h ->
    Ccp_obs.Metrics.incr h.reports_batched;
    Ccp_obs.Metrics.set h.pending_reports (float_of_int b.count)
  | None -> ());
  if b.count >= b.cfg.max_count || b.pending_bytes >= b.cfg.max_bytes then flush t
  else if b.count = 1 then begin
    (* Arm the deadline as the frame opens. A watermark flush in the
       meantime bumps the serial, so the timer expires harmlessly; the
       count can only return to zero through a flush, so a matching
       serial implies there is still something to send. *)
    let serial = b.flush_serial in
    ignore
      (Sim.schedule t.sim
         ~at:(Time_ns.add (Sim.now t.sim) b.cfg.deadline)
         (fun () -> if b.flush_serial = serial then flush t))
  end

let send_single t dir handler ~from ~toward ~span msg =
  let bytes = Codec.encode_traced ~span msg in
  stamp_send t ~from span;
  transmit t dir handler ~toward ~spans:(if span >= 0 then [ span ] else []) bytes

let send t ~from ?(span = Message.no_trace) msg =
  let toward = match from with Datapath_end -> Agent_end | Agent_end -> Datapath_end in
  let dir = direction_toward t toward in
  let handler =
    match dir.handler with
    | Some h -> h
    | None -> invalid_arg "Channel.send: destination handler not registered"
  in
  (* Agent-side control messages attach to the span whose handler is
     running, so algorithm code needs no tracing awareness at all. *)
  let span =
    match t.tracer with
    | None -> Message.no_trace
    | Some tr ->
      if span >= 0 then span
      else if from = Agent_end then Ccp_obs.Tracer.active tr
      else Message.no_trace
  in
  match t.batch with
  | Some b when from = Datapath_end -> (
    match msg with
    | Message.Report _ -> enqueue_report t b ~span msg
    | _ ->
      (* Non-report datapath traffic (Ready, Urgent, Closed, vectors)
         never waits on a watermark: flush what is queued — preserving
         send order on the wire — then go out immediately. *)
      if b.count > 0 then flush t;
      send_single t dir handler ~from ~toward ~span msg)
  | _ -> send_single t dir handler ~from ~toward ~span msg

let deliver_raw t ~toward bytes =
  let dir = direction_toward t toward in
  match dir.handler with
  | Some handler -> deliver t handler ~toward bytes
  | None -> invalid_arg "Channel.deliver_raw: destination handler not registered"

let messages_sent t = function
  | Datapath_end -> t.to_agent.messages
  | Agent_end -> t.to_datapath.messages

let bytes_sent t = function
  | Datapath_end -> t.to_agent.bytes
  | Agent_end -> t.to_datapath.bytes

let decode_failures t = t.decode_failures
let pending_reports t = match t.batch with Some b -> b.count | None -> 0
let batches_sent t = match t.batch with Some b -> b.batches | None -> 0
let reports_batched t = match t.batch with Some b -> b.batched | None -> 0
let fault_plan t = t.faults
let fault_stats t = t.fault_stats
