open Ccp_lang.Ast

exception Decode_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

(* --- expressions --- *)

let binop_tag = function Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3

let binop_of_tag = function
  | 0 -> Add
  | 1 -> Sub
  | 2 -> Mul
  | 3 -> Div
  | n -> fail "bad binop tag %d" n

let rec write_expr w = function
  | Const f ->
    Wire.Writer.byte w 0;
    Wire.Writer.float w f
  | Var name ->
    Wire.Writer.byte w 1;
    Wire.Writer.string w name
  | Pkt field ->
    Wire.Writer.byte w 2;
    Wire.Writer.string w field
  | Bin (op, l, r) ->
    Wire.Writer.byte w 3;
    Wire.Writer.byte w (binop_tag op);
    write_expr w l;
    write_expr w r
  | Neg e ->
    Wire.Writer.byte w 4;
    write_expr w e
  | Call (name, args) ->
    Wire.Writer.byte w 5;
    Wire.Writer.string w name;
    Wire.Writer.varint w (List.length args);
    List.iter (write_expr w) args

let rec read_expr r =
  match Wire.Reader.byte r with
  | 0 -> Const (Wire.Reader.float r)
  | 1 -> Var (Wire.Reader.string r)
  | 2 -> Pkt (Wire.Reader.string r)
  | 3 ->
    let op = binop_of_tag (Wire.Reader.byte r) in
    let l = read_expr r in
    let rhs = read_expr r in
    Bin (op, l, rhs)
  | 4 -> Neg (read_expr r)
  | 5 ->
    let name = Wire.Reader.string r in
    let n = Wire.Reader.varint r in
    if n > 16 then fail "call with %d arguments" n;
    let args = List.init n (fun _ -> read_expr r) in
    Call (name, args)
  | tag -> fail "bad expr tag %d" tag

(* --- programs --- *)

let write_bindings w bindings =
  Wire.Writer.varint w (List.length bindings);
  List.iter
    (fun (name, e) ->
      Wire.Writer.string w name;
      write_expr w e)
    bindings

let read_bindings r =
  let n = Wire.Reader.varint r in
  if n > 256 then fail "fold with %d bindings" n;
  List.init n (fun _ ->
      let name = Wire.Reader.string r in
      (name, read_expr r))

let write_spec w = function
  | Vector fields ->
    Wire.Writer.byte w 0;
    Wire.Writer.varint w (List.length fields);
    List.iter (Wire.Writer.string w) fields
  | Fold { init; update } ->
    Wire.Writer.byte w 1;
    write_bindings w init;
    write_bindings w update

let read_spec r =
  match Wire.Reader.byte r with
  | 0 ->
    let n = Wire.Reader.varint r in
    if n > 64 then fail "vector with %d fields" n;
    Vector (List.init n (fun _ -> Wire.Reader.string r))
  | 1 ->
    let init = read_bindings r in
    let update = read_bindings r in
    Fold { init; update }
  | tag -> fail "bad measure-spec tag %d" tag

let write_prim w = function
  | Measure spec ->
    Wire.Writer.byte w 0;
    write_spec w spec
  | Rate e ->
    Wire.Writer.byte w 1;
    write_expr w e
  | Cwnd e ->
    Wire.Writer.byte w 2;
    write_expr w e
  | Wait e ->
    Wire.Writer.byte w 3;
    write_expr w e
  | Wait_rtts e ->
    Wire.Writer.byte w 4;
    write_expr w e
  | Report -> Wire.Writer.byte w 5

let read_prim r =
  match Wire.Reader.byte r with
  | 0 -> Measure (read_spec r)
  | 1 -> Rate (read_expr r)
  | 2 -> Cwnd (read_expr r)
  | 3 -> Wait (read_expr r)
  | 4 -> Wait_rtts (read_expr r)
  | 5 -> Report
  | tag -> fail "bad prim tag %d" tag

let write_program w (program : program) =
  Wire.Writer.byte w (if program.repeat then 1 else 0);
  Wire.Writer.varint w (List.length program.prims);
  List.iter (write_prim w) program.prims

let read_program r =
  let repeat =
    match Wire.Reader.byte r with
    | 0 -> false
    | 1 -> true
    | b -> fail "bad repeat flag %d" b
  in
  let n = Wire.Reader.varint r in
  if n > 1024 then fail "program with %d primitives" n;
  let prims = List.init n (fun _ -> read_prim r) in
  { prims; repeat }

(* One module-level scratch writer serves every encode: [reset] keeps
   the grown buffer, so the steady-state encode path allocates only the
   result string instead of a fresh 128-byte buffer per message. *)
let scratch = Wire.Writer.create ()

let encode_program p =
  Wire.Writer.reset scratch;
  write_program scratch p;
  Wire.Writer.contents scratch

let decode_program s = read_program (Wire.Reader.of_string s)

(* --- messages --- *)

let reason_tag : Ccp_lang.Limits.reason -> int = function
  | Program_too_long -> 0
  | Expr_too_deep -> 1
  | Fold_too_large -> 2
  | Vector_too_wide -> 3
  | Wait_too_short -> 4
  | Invalid_program -> 5

let reason_of_tag : int -> Ccp_lang.Limits.reason = function
  | 0 -> Program_too_long
  | 1 -> Expr_too_deep
  | 2 -> Fold_too_large
  | 3 -> Vector_too_wide
  | 4 -> Wait_too_short
  | 5 -> Invalid_program
  | n -> fail "bad install-reject reason tag %d" n

let incident_tag : Message.incident_kind -> int = function
  | Cwnd_clamped -> 0
  | Rate_clamped -> 1
  | Wait_clamped -> 2
  | Non_finite -> 3
  | Div_by_zero_storm -> 4
  | Report_throttled -> 5
  | Fold_divergence -> 6
  | Eval_budget_exhausted -> 7

let incident_of_tag : int -> Message.incident_kind = function
  | 0 -> Cwnd_clamped
  | 1 -> Rate_clamped
  | 2 -> Wait_clamped
  | 3 -> Non_finite
  | 4 -> Div_by_zero_storm
  | 5 -> Report_throttled
  | 6 -> Fold_divergence
  | 7 -> Eval_budget_exhausted
  | n -> fail "bad incident-kind tag %d" n

let write_message w (msg : Message.t) =
  match msg with
  | Ready { flow; mss; init_cwnd } ->
    Wire.Writer.byte w 0;
    Wire.Writer.varint w flow;
    Wire.Writer.varint w mss;
    Wire.Writer.varint w init_cwnd
  | Report { flow; fields } ->
    Wire.Writer.byte w 1;
    Wire.Writer.varint w flow;
    Wire.Writer.varint w (Array.length fields);
    Array.iter
      (fun (name, v) ->
        Wire.Writer.string w name;
        Wire.Writer.float w v)
      fields
  | Report_vector { flow; columns; rows } ->
    Wire.Writer.byte w 2;
    Wire.Writer.varint w flow;
    Wire.Writer.varint w (Array.length columns);
    Array.iter (Wire.Writer.string w) columns;
    Wire.Writer.varint w (Array.length rows);
    Array.iter
      (fun row ->
        if Array.length row <> Array.length columns then
          invalid_arg "Codec: vector row width mismatch";
        Array.iter (Wire.Writer.float w) row)
      rows
  | Urgent { flow; kind; cwnd_at_event; inflight_at_event } ->
    Wire.Writer.byte w 3;
    Wire.Writer.varint w flow;
    Wire.Writer.byte w
      (match kind with Message.Dup_ack_loss -> 0 | Message.Timeout -> 1 | Message.Ecn -> 2);
    Wire.Writer.varint w cwnd_at_event;
    Wire.Writer.varint w inflight_at_event
  | Closed { flow } ->
    Wire.Writer.byte w 4;
    Wire.Writer.varint w flow
  | Install_result { flow; verdict } ->
    Wire.Writer.byte w 8;
    Wire.Writer.varint w flow;
    (match verdict with
    | Message.Accepted -> Wire.Writer.byte w 0
    | Message.Rejected { reason; detail } ->
      Wire.Writer.byte w 1;
      Wire.Writer.byte w (reason_tag reason);
      Wire.Writer.string w detail)
  | Quarantined { flow; incidents; dominant } ->
    Wire.Writer.byte w 9;
    Wire.Writer.varint w flow;
    Wire.Writer.varint w incidents;
    Wire.Writer.byte w (incident_tag dominant)
  | Install { flow; program } ->
    Wire.Writer.byte w 5;
    Wire.Writer.varint w flow;
    write_program w program
  | Set_cwnd { flow; bytes } ->
    Wire.Writer.byte w 6;
    Wire.Writer.varint w flow;
    Wire.Writer.varint w bytes
  | Set_rate { flow; bytes_per_sec } ->
    Wire.Writer.byte w 7;
    Wire.Writer.varint w flow;
    Wire.Writer.float w bytes_per_sec

let read_message r : Message.t =
  match Wire.Reader.byte r with
  | 0 ->
    let flow = Wire.Reader.varint r in
    let mss = Wire.Reader.varint r in
    let init_cwnd = Wire.Reader.varint r in
    Ready { flow; mss; init_cwnd }
  | 1 ->
    let flow = Wire.Reader.varint r in
    let n = Wire.Reader.varint r in
    if n > 4096 then fail "report with %d fields" n;
    let fields =
      Array.init n (fun _ ->
          let name = Wire.Reader.string r in
          (name, Wire.Reader.float r))
    in
    Report { flow; fields }
  | 2 ->
    let flow = Wire.Reader.varint r in
    let ncols = Wire.Reader.varint r in
    if ncols > 64 then fail "vector report with %d columns" ncols;
    let columns = Array.init ncols (fun _ -> Wire.Reader.string r) in
    let nrows = Wire.Reader.varint r in
    if nrows * ncols > 1_000_000 then fail "vector report too large";
    let rows = Array.init nrows (fun _ -> Array.init ncols (fun _ -> Wire.Reader.float r)) in
    Report_vector { flow; columns; rows }
  | 3 ->
    let flow = Wire.Reader.varint r in
    let kind =
      match Wire.Reader.byte r with
      | 0 -> Message.Dup_ack_loss
      | 1 -> Message.Timeout
      | 2 -> Message.Ecn
      | k -> fail "bad urgent kind %d" k
    in
    let cwnd_at_event = Wire.Reader.varint r in
    let inflight_at_event = Wire.Reader.varint r in
    Urgent { flow; kind; cwnd_at_event; inflight_at_event }
  | 4 -> Closed { flow = Wire.Reader.varint r }
  | 5 ->
    let flow = Wire.Reader.varint r in
    let program = read_program r in
    Install { flow; program }
  | 6 ->
    let flow = Wire.Reader.varint r in
    let bytes = Wire.Reader.varint r in
    Set_cwnd { flow; bytes }
  | 7 ->
    let flow = Wire.Reader.varint r in
    let bytes_per_sec = Wire.Reader.float r in
    Set_rate { flow; bytes_per_sec }
  | 8 ->
    let flow = Wire.Reader.varint r in
    let verdict =
      match Wire.Reader.byte r with
      | 0 -> Message.Accepted
      | 1 ->
        let reason = reason_of_tag (Wire.Reader.byte r) in
        let detail = Wire.Reader.string r in
        Message.Rejected { reason; detail }
      | v -> fail "bad install verdict %d" v
    in
    Install_result { flow; verdict }
  | 9 ->
    let flow = Wire.Reader.varint r in
    let incidents = Wire.Reader.varint r in
    let dominant = incident_of_tag (Wire.Reader.byte r) in
    Quarantined { flow; incidents; dominant }
  | tag -> fail "bad message tag %d" tag

let encode_with w msg =
  Wire.Writer.reset w;
  write_message w msg;
  Wire.Writer.contents w

let encode msg = encode_with scratch msg

let decode s =
  let r = Wire.Reader.of_string s in
  let msg = read_message r in
  if not (Wire.Reader.at_end r) then fail "trailing bytes after message";
  msg

let encoded_size msg = String.length (encode msg)

(* --- trace context ---

   An optional trailing block after the message body: byte 1 (the
   trace-context block tag) followed by the varint span token. A message
   encoded without a span is byte-identical to the pre-tracing format,
   and [decode_traced] on such bytes yields [Message.no_trace] — the
   field is backward and forward compatible. Plain [decode] still rejects
   any trailing bytes, so untraced consumers keep their strict framing. *)

let encode_traced ?(span = Message.no_trace) msg =
  if span < 0 then encode msg
  else begin
    Wire.Writer.reset scratch;
    write_message scratch msg;
    Wire.Writer.byte scratch 1;
    Wire.Writer.varint scratch span;
    Wire.Writer.contents scratch
  end

let decode_traced s =
  let r = Wire.Reader.of_string s in
  let msg = read_message r in
  if Wire.Reader.at_end r then (msg, Message.no_trace)
  else begin
    (match Wire.Reader.byte r with
    | 1 -> ()
    | tag -> fail "bad trailing block tag %d" tag);
    let span = Wire.Reader.varint r in
    if not (Wire.Reader.at_end r) then fail "trailing bytes after trace context";
    (msg, span)
  end

(* --- batch frames ---

   Cross-flow report batching: one wire frame carrying many messages'
   already-traced encodings as length-prefixed entries, so the per-frame
   encode/decode and delivery cost is amortized over every flow that
   reported in the same flush window. The frame tag (10) sits outside the
   single-message tag space (0..9), which keeps the two framings
   unambiguous in both directions: a batching-unaware [decode] rejects a
   batch frame cleanly ("bad message tag 10") instead of misparsing it,
   and [decode_batch] on a legacy single-message frame fails the tag
   check the same way. Entries round-trip through [encode_traced] /
   [decode_traced], so each batched report keeps its own span token. *)

let batch_tag = 10
let max_batch_entries = 4096

let is_batch s = String.length s > 0 && Char.code s.[0] = batch_tag

let frame_batch entries =
  let count = List.length entries in
  if count > max_batch_entries then
    invalid_arg
      (Printf.sprintf "Codec.frame_batch: %d entries exceeds max %d" count max_batch_entries);
  Wire.Writer.reset scratch;
  Wire.Writer.byte scratch batch_tag;
  Wire.Writer.varint scratch count;
  List.iter (Wire.Writer.string scratch) entries;
  Wire.Writer.contents scratch

let encode_batch msgs =
  (* Entries first (each borrows [scratch]), then the frame around them. *)
  let entries = Array.to_list (Array.map (fun (msg, span) -> encode_traced ~span msg) msgs) in
  frame_batch entries

let decode_batch s =
  let r = Wire.Reader.of_string s in
  (match Wire.Reader.byte r with
  | tag when tag = batch_tag -> ()
  | tag -> fail "bad batch tag %d" tag);
  let n = Wire.Reader.varint r in
  if n > max_batch_entries then fail "batch with %d entries" n;
  let out = Array.make n (Message.Closed { flow = 0 }, Message.no_trace) in
  (* Explicit loop: the reader is stateful, entries must parse in order. *)
  for i = 0 to n - 1 do
    out.(i) <- decode_traced (Wire.Reader.string r)
  done;
  if not (Wire.Reader.at_end r) then fail "trailing bytes after batch";
  out
