type trace_context = int

let no_trace = -1
let has_trace span = span >= 0

type urgent_kind = Dup_ack_loss | Timeout | Ecn

type report = { flow : int; fields : (string * float) array }
type vector_report = { flow : int; columns : string array; rows : float array array }
type urgent = { flow : int; kind : urgent_kind; cwnd_at_event : int; inflight_at_event : int }

type install_verdict =
  | Accepted
  | Rejected of { reason : Ccp_lang.Limits.reason; detail : string }

type install_result = { flow : int; verdict : install_verdict }

type incident_kind =
  | Cwnd_clamped
  | Rate_clamped
  | Wait_clamped
  | Non_finite
  | Div_by_zero_storm
  | Report_throttled
  | Fold_divergence
  | Eval_budget_exhausted

type quarantine = { flow : int; incidents : int; dominant : incident_kind }

type t =
  | Ready of { flow : int; mss : int; init_cwnd : int }
  | Report of report
  | Report_vector of vector_report
  | Urgent of urgent
  | Closed of { flow : int }
  | Install_result of install_result
  | Quarantined of quarantine
  | Install of { flow : int; program : Ccp_lang.Ast.program }
  | Set_cwnd of { flow : int; bytes : int }
  | Set_rate of { flow : int; bytes_per_sec : float }

let flow = function
  | Ready { flow; _ }
  | Report { flow; _ }
  | Report_vector { flow; _ }
  | Urgent { flow; _ }
  | Closed { flow }
  | Install_result { flow; _ }
  | Quarantined { flow; _ }
  | Install { flow; _ }
  | Set_cwnd { flow; _ }
  | Set_rate { flow; _ } ->
    flow

let urgent_kind_to_string = function
  | Dup_ack_loss -> "dup-ack-loss"
  | Timeout -> "timeout"
  | Ecn -> "ecn"

let incident_kind_to_string = function
  | Cwnd_clamped -> "cwnd-clamped"
  | Rate_clamped -> "rate-clamped"
  | Wait_clamped -> "wait-clamped"
  | Non_finite -> "non-finite"
  | Div_by_zero_storm -> "div-by-zero-storm"
  | Report_throttled -> "report-throttled"
  | Fold_divergence -> "fold-divergence"
  | Eval_budget_exhausted -> "eval-budget-exhausted"

let all_incident_kinds =
  [
    Cwnd_clamped; Rate_clamped; Wait_clamped; Non_finite; Div_by_zero_storm; Report_throttled;
    Fold_divergence; Eval_budget_exhausted;
  ]

let describe = function
  | Ready { flow; mss; init_cwnd } ->
    Printf.sprintf "ready(flow=%d mss=%d cwnd=%d)" flow mss init_cwnd
  | Report { flow; fields } -> Printf.sprintf "report(flow=%d fields=%d)" flow (Array.length fields)
  | Report_vector { flow; rows; _ } ->
    Printf.sprintf "report-vector(flow=%d rows=%d)" flow (Array.length rows)
  | Urgent { flow; kind; _ } -> Printf.sprintf "urgent(flow=%d %s)" flow (urgent_kind_to_string kind)
  | Closed { flow } -> Printf.sprintf "closed(flow=%d)" flow
  | Install_result { flow; verdict = Accepted } -> Printf.sprintf "install-result(flow=%d ok)" flow
  | Install_result { flow; verdict = Rejected { reason; _ } } ->
    Printf.sprintf "install-result(flow=%d rejected: %s)" flow
      (Ccp_lang.Limits.reason_to_string reason)
  | Quarantined { flow; incidents; dominant } ->
    Printf.sprintf "quarantined(flow=%d incidents=%d dominant=%s)" flow incidents
      (incident_kind_to_string dominant)
  | Install { flow; _ } -> Printf.sprintf "install(flow=%d)" flow
  | Set_cwnd { flow; bytes } -> Printf.sprintf "set-cwnd(flow=%d %d)" flow bytes
  | Set_rate { flow; bytes_per_sec } -> Printf.sprintf "set-rate(flow=%d %.0f)" flow bytes_per_sec

let equal a b =
  match (a, b) with
  | Ready r1, Ready r2 -> r1.flow = r2.flow && r1.mss = r2.mss && r1.init_cwnd = r2.init_cwnd
  | Report r1, Report r2 -> r1.flow = r2.flow && r1.fields = r2.fields
  | Report_vector v1, Report_vector v2 ->
    v1.flow = v2.flow && v1.columns = v2.columns && v1.rows = v2.rows
  | Urgent u1, Urgent u2 -> u1 = u2
  | Closed c1, Closed c2 -> c1.flow = c2.flow
  | Install_result r1, Install_result r2 ->
    r1.flow = r2.flow
    && (match (r1.verdict, r2.verdict) with
       | Accepted, Accepted -> true
       | Rejected a, Rejected b ->
         Ccp_lang.Limits.equal_reason a.reason b.reason && String.equal a.detail b.detail
       | (Accepted | Rejected _), _ -> false)
  | Quarantined q1, Quarantined q2 ->
    q1.flow = q2.flow && q1.incidents = q2.incidents && q1.dominant = q2.dominant
  | Install i1, Install i2 ->
    i1.flow = i2.flow && Ccp_lang.Ast.equal_program i1.program i2.program
  | Set_cwnd s1, Set_cwnd s2 -> s1.flow = s2.flow && s1.bytes = s2.bytes
  | Set_rate s1, Set_rate s2 -> s1.flow = s2.flow && Float.equal s1.bytes_per_sec s2.bytes_per_sec
  | ( ( Ready _ | Report _ | Report_vector _ | Urgent _ | Closed _ | Install_result _
      | Quarantined _ | Install _ | Set_cwnd _ | Set_rate _ ),
      _ ) ->
    false
