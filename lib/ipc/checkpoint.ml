(* Versioned agent-state checkpoint for warm crash recovery.

   A checkpoint is a point-in-time snapshot of everything the agent
   would otherwise lose in a crash: per flow, the algorithm's name, the
   last cwnd/rate it commanded, and the algorithm's own registers (an
   opaque name/value dump from [Algorithm.handlers.on_checkpoint]). It
   is encoded over the same {!Wire} primitives as the live protocol so
   the blob survives the encode/decode round trip a real persistence
   path would impose, and it carries an explicit version so a restarted
   agent can refuse a blob written by an incompatible predecessor
   instead of misreading it. *)

open Ccp_util

type flow_snapshot = {
  flow : int;
  algorithm : string;
  cwnd : int;
  rate : float;
  registers : (string * float) array;
}

type t = { taken_at : Time_ns.t; flows : flow_snapshot list }

let version = 1

(* A magic byte in front of the version keeps a checkpoint blob from
   ever being confused with a {!Codec} message (whose first byte is a
   wire tag in 0..9). *)
let magic = 0xC5

let encode t =
  let w = Wire.Writer.create () in
  Wire.Writer.byte w magic;
  Wire.Writer.varint w version;
  Wire.Writer.varint w (t.taken_at : Time_ns.t);
  Wire.Writer.varint w (List.length t.flows);
  List.iter
    (fun s ->
      Wire.Writer.varint w s.flow;
      Wire.Writer.string w s.algorithm;
      Wire.Writer.varint w s.cwnd;
      Wire.Writer.float w s.rate;
      Wire.Writer.varint w (Array.length s.registers);
      Array.iter
        (fun (name, value) ->
          Wire.Writer.string w name;
          Wire.Writer.float w value)
        s.registers)
    t.flows;
  Wire.Writer.contents w

let decode blob =
  try
    let r = Wire.Reader.of_string blob in
    let m = Wire.Reader.byte r in
    if m <> magic then Error (Printf.sprintf "checkpoint: bad magic 0x%02X" m)
    else
      let v = Wire.Reader.varint r in
      if v <> version then
        Error (Printf.sprintf "checkpoint: version %d, expected %d" v version)
      else begin
        let taken_at = Time_ns.ns (Wire.Reader.varint r) in
        let n_flows = Wire.Reader.varint r in
        let flows = ref [] in
        for _ = 1 to n_flows do
          let flow = Wire.Reader.varint r in
          let algorithm = Wire.Reader.string r in
          let cwnd = Wire.Reader.varint r in
          let rate = Wire.Reader.float r in
          let n_regs = Wire.Reader.varint r in
          let registers =
            Array.init n_regs (fun _ ->
                let name = Wire.Reader.string r in
                let value = Wire.Reader.float r in
                (name, value))
          in
          flows := { flow; algorithm; cwnd; rate; registers } :: !flows
        done;
        if not (Wire.Reader.at_end r) then
          Error
            (Printf.sprintf "checkpoint: %d trailing bytes" (Wire.Reader.remaining r))
        else Ok { taken_at; flows = List.rev !flows }
      end
  with
  | Wire.Reader.Truncated -> Error "checkpoint: truncated"
  | Wire.Reader.Malformed what -> Error ("checkpoint: malformed " ^ what)

let describe t =
  Printf.sprintf "checkpoint v%d at %s: %d flow%s" version
    (Time_ns.to_string t.taken_at)
    (List.length t.flows)
    (if List.length t.flows = 1 then "" else "s")
