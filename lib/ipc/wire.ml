module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 128
  let reset = Buffer.clear
  let byte t b = Buffer.add_char t (Char.chr (b land 0xff))

  let varint t n =
    if n < 0 then invalid_arg "Wire.Writer.varint: negative";
    let rec go n =
      if n < 0x80 then byte t n
      else begin
        byte t (0x80 lor (n land 0x7f));
        go (n lsr 7)
      end
    in
    go n

  let zigzag t n =
    (* Map signed to unsigned: 0,-1,1,-2,... -> 0,1,2,3,... *)
    let encoded = (n lsl 1) lxor (n asr 62) in
    varint t (encoded land max_int)

  let float t f =
    let bits = Int64.bits_of_float f in
    for i = 0 to 7 do
      byte t (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)
    done

  let string t s =
    varint t (String.length s);
    Buffer.add_string t s

  let contents = Buffer.contents
  let length = Buffer.length
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  exception Truncated
  exception Malformed of string

  let of_string data = { data; pos = 0 }

  let byte t =
    if t.pos >= String.length t.data then raise Truncated;
    let b = Char.code t.data.[t.pos] in
    t.pos <- t.pos + 1;
    b

  let varint t =
    let rec go shift acc =
      if shift > 62 then raise (Malformed "varint too long");
      let b = byte t in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let zigzag t =
    let encoded = varint t in
    (encoded lsr 1) lxor (-(encoded land 1))

  let float t =
    let bits = ref 0L in
    for i = 0 to 7 do
      bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (byte t)) (8 * i))
    done;
    Int64.float_of_bits !bits

  let string t =
    let len = varint t in
    if t.pos + len > String.length t.data then raise Truncated;
    let s = String.sub t.data t.pos len in
    t.pos <- t.pos + len;
    s

  let at_end t = t.pos = String.length t.data
  let remaining t = String.length t.data - t.pos
end
