(** Low-level binary encoding primitives for the CCP wire format.

    Integers use LEB128 varints (small values — flow ids, field counts —
    dominate the traffic); floats are IEEE-754 bits, little-endian; strings
    are length-prefixed UTF-8. *)

module Writer : sig
  type t

  val create : unit -> t

  val reset : t -> unit
  (** Empty the writer, keeping its internal buffer for reuse — the
      encode path recycles one scratch writer instead of allocating a
      fresh buffer per message. *)

  val byte : t -> int -> unit
  val varint : t -> int -> unit
  (** Non-negative integers only; raises [Invalid_argument] on negatives. *)

  val zigzag : t -> int -> unit
  (** Signed integers via zigzag + varint. *)

  val float : t -> float -> unit
  val string : t -> string -> unit
  val contents : t -> string
  val length : t -> int
end

module Reader : sig
  type t

  exception Truncated
  exception Malformed of string

  val of_string : string -> t
  val byte : t -> int
  val varint : t -> int
  val zigzag : t -> int
  val float : t -> float
  val string : t -> string
  val at_end : t -> bool
  val remaining : t -> int
end
