(** Messages exchanged between the datapath and the CCP agent.

    Datapath → agent: flow lifecycle, batched measurement reports (fold
    state or per-packet vectors, §2.4) and urgent events (§2.1).
    Agent → datapath: program installation and direct window/rate commands
    (the fallback the paper describes for datapaths that cannot run control
    programs). *)

type trace_context = int
(** A {!Ccp_obs.Tracer} span token riding alongside a message, or
    {!no_trace}. Encoded as an optional trailing wire block (see
    {!Codec.encode_traced}); messages encoded without one decode as
    {!no_trace}, so the field is wire-compatible in both directions. *)

val no_trace : trace_context
(** [-1]. *)

val has_trace : trace_context -> bool

type urgent_kind =
  | Dup_ack_loss  (** triple duplicate ACK (fast-retransmit trigger) *)
  | Timeout  (** retransmission timeout *)
  | Ecn  (** ECN congestion-experienced echo *)

type report = {
  flow : int;
  fields : (string * float) array;  (** fold-mode summary, name/value pairs *)
}

type vector_report = {
  flow : int;
  columns : string array;
  rows : float array array;  (** one row per acknowledged packet *)
}

type urgent = {
  flow : int;
  kind : urgent_kind;
  cwnd_at_event : int;
  inflight_at_event : int;
}

(** Datapath's answer to an [Install]: admission control (§2.4) makes
    rejection observable instead of a silent drop. *)
type install_verdict =
  | Accepted
  | Rejected of { reason : Ccp_lang.Limits.reason; detail : string }

type install_result = { flow : int; verdict : install_verdict }

(** Runtime-guardrail incident classes the datapath counts per flow; the
    dominant kind is reported when a flow is quarantined. *)
type incident_kind =
  | Cwnd_clamped  (** Cwnd eval outside the guard envelope *)
  | Rate_clamped  (** Rate eval above the rate ceiling *)
  | Wait_clamped  (** computed wait below the runtime floor *)
  | Non_finite  (** NaN/±∞ clamped during evaluation *)
  | Div_by_zero_storm  (** sustained division by zero *)
  | Report_throttled  (** report sent faster than the rate limiter allows *)
  | Fold_divergence  (** fold state went non-finite or past the limit *)
  | Eval_budget_exhausted  (** per-tick eval-step budget hit *)

type quarantine = { flow : int; incidents : int; dominant : incident_kind }

type t =
  (* datapath -> agent *)
  | Ready of { flow : int; mss : int; init_cwnd : int }
  | Report of report
  | Report_vector of vector_report
  | Urgent of urgent
  | Closed of { flow : int }
  | Install_result of install_result
  | Quarantined of quarantine
      (** incidents crossed the threshold; the flow fell back to native CC
          and only an accepted re-[Install] wins it back *)
  (* agent -> datapath *)
  | Install of { flow : int; program : Ccp_lang.Ast.program }
  | Set_cwnd of { flow : int; bytes : int }
  | Set_rate of { flow : int; bytes_per_sec : float }

val flow : t -> int
val describe : t -> string
val urgent_kind_to_string : urgent_kind -> string
val incident_kind_to_string : incident_kind -> string
val all_incident_kinds : incident_kind list
val equal : t -> t -> bool
