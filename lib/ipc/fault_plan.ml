open Ccp_util

type interval = { from_ : Time_ns.t; until : Time_ns.t }

type spike = { probability : float; extra : Time_ns.t }
type reorder = { probability : float; window : Time_ns.t }

type t = {
  drop_probability : float;
  duplicate_probability : float;
  spike : spike option;
  reorder : reorder option;
  partitions : interval list;
  agent_outages : interval list;
}

let none =
  {
    drop_probability = 0.0;
    duplicate_probability = 0.0;
    spike = None;
    reorder = None;
    partitions = [];
    agent_outages = [];
  }

let is_none t =
  t.drop_probability = 0.0
  && t.duplicate_probability = 0.0
  && t.spike = None
  && t.reorder = None
  && t.partitions = []
  && t.agent_outages = []

let check_probability what p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Fault_plan: %s probability %g outside [0,1]" what p)

let check_interval what { from_; until } =
  if Time_ns.compare until from_ <= 0 then
    invalid_arg
      (Printf.sprintf "Fault_plan: %s interval [%s, %s) is empty or inverted" what
         (Time_ns.to_string from_) (Time_ns.to_string until))

(* Sort intervals by start and merge any that overlap or abut, so
   [agent_down]/[in_partition] answer the same question however the caller
   phrased the episodes ([0,5)+[3,8) and [0,8) are the same outage) and
   [partition_time] never double-counts. *)
let normalize_intervals intervals =
  let sorted =
    List.sort
      (fun a b ->
        match Time_ns.compare a.from_ b.from_ with
        | 0 -> Time_ns.compare a.until b.until
        | c -> c)
      intervals
  in
  let rec merge = function
    | a :: b :: rest when Time_ns.compare b.from_ a.until <= 0 ->
        let until = if Time_ns.compare a.until b.until >= 0 then a.until else b.until in
        merge ({ a with until } :: rest)
    | a :: rest -> a :: merge rest
    | [] -> []
  in
  merge sorted

let make ?(drop_probability = 0.0) ?(duplicate_probability = 0.0) ?spike ?reorder
    ?(partitions = []) ?(agent_outages = []) () =
  check_probability "drop" drop_probability;
  check_probability "duplicate" duplicate_probability;
  Option.iter
    (fun (s : spike) ->
      check_probability "spike" s.probability;
      if Time_ns.compare s.extra Time_ns.zero < 0 then
        invalid_arg "Fault_plan: spike extra delay is negative")
    spike;
  Option.iter
    (fun (r : reorder) ->
      check_probability "reorder" r.probability;
      if Time_ns.compare r.window Time_ns.zero < 0 then
        invalid_arg "Fault_plan: reorder window is negative")
    reorder;
  List.iter (check_interval "partition") partitions;
  List.iter (check_interval "agent outage") agent_outages;
  {
    drop_probability;
    duplicate_probability;
    spike;
    reorder;
    partitions = normalize_intervals partitions;
    agent_outages = normalize_intervals agent_outages;
  }

let crash ~at ~restart t =
  let episode = { from_ = at; until = restart } in
  check_interval "agent outage" episode;
  { t with agent_outages = normalize_intervals (t.agent_outages @ [ episode ]) }

let inside at { from_; until } =
  Time_ns.compare at from_ >= 0 && Time_ns.compare at until < 0

let agent_down t at = List.exists (inside at) t.agent_outages
let in_partition t at = List.exists (inside at) t.partitions || agent_down t at

let partition_time t =
  List.fold_left
    (fun acc i -> Time_ns.add acc (Time_ns.sub i.until i.from_))
    Time_ns.zero
    (t.partitions @ t.agent_outages)

let describe t =
  if is_none t then "none"
  else begin
    let parts = ref [] in
    let add fmt = Printf.ksprintf (fun s -> parts := s :: !parts) fmt in
    if t.drop_probability > 0.0 then add "drop=%g" t.drop_probability;
    if t.duplicate_probability > 0.0 then add "dup=%g" t.duplicate_probability;
    Option.iter
      (fun (s : spike) -> add "spike=%g+%s" s.probability (Time_ns.to_string s.extra))
      t.spike;
    Option.iter
      (fun (r : reorder) -> add "reorder=%g/%s" r.probability (Time_ns.to_string r.window))
      t.reorder;
    List.iter
      (fun i -> add "partition=[%s,%s)" (Time_ns.to_string i.from_) (Time_ns.to_string i.until))
      t.partitions;
    List.iter
      (fun i -> add "crash=[%s,%s)" (Time_ns.to_string i.from_) (Time_ns.to_string i.until))
      t.agent_outages;
    String.concat " " (List.rev !parts)
  end
