open Ccp_util
open Ccp_net

let spark_levels = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                      "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline values =
  match values with
  | [] -> ""
  | _ ->
    let lo = List.fold_left Float.min infinity values in
    let hi = List.fold_left Float.max neg_infinity values in
    let span = if hi > lo then hi -. lo else 1.0 in
    let buf = Buffer.create (List.length values * 3) in
    List.iter
      (fun v ->
        let idx = int_of_float ((v -. lo) /. span *. 8.0) in
        Buffer.add_string buf spark_levels.(max 0 (min 8 idx)))
      values;
    Buffer.contents buf

let trace_sparkline result ~series ~points =
  let pts = Trace.series result.Experiment.trace series in
  sparkline (List.map snd (Trace.downsample pts ~max_points:points))

let line buf fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt

let render_fig2 (series : Scenarios.Fig2.series list) =
  let buf = Buffer.create 2048 in
  let sample_count =
    match series with s :: _ -> Stats.Samples.count s.Scenarios.Fig2.samples | [] -> 0
  in
  line buf "Figure 2: CDF of IPC round-trip times (%d samples per configuration)" sample_count;
  line buf "%-38s %8s %8s %8s %11s %10s" "configuration" "p50 us" "p90 us" "p99 us" "paper p99" "model p99";
  List.iter
    (fun (s : Scenarios.Fig2.series) ->
      line buf "%-38s %8.1f %8.1f %8.1f %11.1f %10.1f" s.label
        (Stats.Samples.percentile s.samples 50.0)
        (Stats.Samples.percentile s.samples 90.0)
        (Stats.Samples.percentile s.samples 99.0)
        s.paper_p99_us
        (Ccp_ipc.Latency_model.p99_us s.model))
    series;
  line buf "";
  List.iter
    (fun (s : Scenarios.Fig2.series) ->
      let cdf = Stats.Samples.cdf s.samples ~points:40 in
      line buf "  %-38s |%s|" s.label (sparkline (List.map fst cdf)))
    series;
  Buffer.contents buf

let render_reaction (series : Scenarios.Reaction.series list) =
  let buf = Buffer.create 4096 in
  line buf "Figure 2, measured end to end: control-loop reaction latency";
  line buf "(report departure at the datapath to control application, traced spans)";
  line buf "%-34s %8s %8s %8s %10s %9s %9s" "configuration" "p50 us" "p90 us" "p99 us"
    "model p99" "actuated" "orphaned";
  List.iter
    (fun (s : Scenarios.Reaction.series) ->
      let st = s.Scenarios.Reaction.spans in
      if Stats.Samples.count s.reaction_us = 0 then
        line buf "%-34s %8s %8s %8s %10.1f %9d %9d" s.label "-" "-" "-" s.model_p99_us
          st.Ccp_obs.Tracer.actuated st.Ccp_obs.Tracer.orphaned
      else
        line buf "%-34s %8.1f %8.1f %8.1f %10.1f %9d %9d" s.label
          (Stats.Samples.percentile s.reaction_us 50.0)
          (Stats.Samples.percentile s.reaction_us 90.0)
          (Stats.Samples.percentile s.reaction_us 99.0)
          s.model_p99_us st.Ccp_obs.Tracer.actuated st.Ccp_obs.Tracer.orphaned)
    series;
  line buf "";
  line buf "reaction CDFs (note: a reaction is two one-way IPC trips, so it";
  line buf "concentrates below the RTT model's p99):";
  List.iter
    (fun (s : Scenarios.Reaction.series) ->
      if Stats.Samples.count s.reaction_us > 0 then begin
        let cdf = Stats.Samples.cdf s.reaction_us ~points:40 in
        line buf "  %-34s |%s|" s.label (sparkline (List.map fst cdf))
      end)
    series;
  let extras =
    List.filter_map
      (fun (s : Scenarios.Reaction.series) ->
        Option.map
          (fun after -> Printf.sprintf "%s: fallback takeover %.1f ms after crash"
               s.Scenarios.Reaction.label (Time_ns.to_float_ms after))
          s.Scenarios.Reaction.fallback_after)
      series
  in
  if extras <> [] then begin
    line buf "";
    List.iter (fun e -> line buf "  %s" e) extras
  end;
  Buffer.contents buf

let util_pct r = 100.0 *. r.Experiment.utilization
let med_ms r = Time_ns.to_float_ms r.Experiment.median_rtt

let render_fig3 (c : Scenarios.comparison) =
  let buf = Buffer.create 2048 in
  line buf "Figure 3: Cubic window dynamics, CCP vs in-datapath (1 Gbit/s, 10 ms RTT, 1 BDP buffer)";
  line buf "%-14s %12s %12s %14s %14s" "system" "util (meas)" "util (paper)" "med RTT (meas)"
    "med RTT (paper)";
  line buf "%-14s %11.1f%% %11.1f%% %12.1fms %12.1fms" "ccp cubic" (util_pct c.ccp) 95.4
    (med_ms c.ccp) 16.1;
  line buf "%-14s %11.1f%% %11.1f%% %12.1fms %12.1fms" "linux cubic" (util_pct c.native) 94.4
    (med_ms c.native) 15.8;
  line buf "";
  line buf "cwnd evolution (sparklines over the run):";
  line buf "  ccp    |%s|" (trace_sparkline c.ccp ~series:"cwnd.0" ~points:72);
  line buf "  linux  |%s|" (trace_sparkline c.native ~series:"cwnd.0" ~points:72);
  Buffer.contents buf

let throughput_series result flow =
  Trace.series result.Experiment.trace (Printf.sprintf "throughput_mbps.%d" flow)

let render_fig4 (c : Scenarios.comparison) =
  let buf = Buffer.create 2048 in
  line buf
    "Figure 4: NewReno reactivity, second flow joins at t=20 s (1 Gbit/s, 10 ms RTT, 60 s)";
  let describe label (r : Experiment.result) =
    let conv = Scenarios.Fig4.convergence_time r in
    let flows = r.Experiment.flows in
    let goodput i = (List.nth flows i).Experiment.goodput_bps /. 1e6 in
    line buf "%-14s util=%5.1f%%  goodput flow0=%6.1f Mbit/s flow1=%6.1f Mbit/s  converged at %s"
      label (util_pct r) (goodput 0) (goodput 1)
      (match conv with Some at -> Time_ns.to_string at | None -> "never");
    let spark flow =
      sparkline
        (List.map snd (Trace.downsample (throughput_series r flow) ~max_points:72))
    in
    line buf "  flow0 |%s|" (spark 0);
    line buf "  flow1 |%s|" (spark 1)
  in
  describe "ccp reno" c.ccp;
  describe "linux reno" c.native;
  line buf "";
  line buf "paper: both implementations exhibit similar convergence dynamics.";
  Buffer.contents buf

let render_fig5 (cells : Scenarios.Fig5.cell list) =
  let buf = Buffer.create 2048 in
  line buf "Figure 5: throughput with NIC offloads enabled/disabled (10 Gbit/s, mean of 4 runs)";
  line buf "%-14s %-8s %12s %12s %12s %10s" "offloads" "system" "Gbit/s" "sender CPU" "recv CPU"
    "GRO batch";
  List.iter
    (fun (c : Scenarios.Fig5.cell) ->
      line buf "%-14s %-8s %12.2f %11.0f%% %11.0f%% %10.1f"
        (Scenarios.Fig5.setting_to_string c.setting)
        c.system c.mean_gbps
        (100.0 *. c.sender_cpu_busy)
        (100.0 *. c.receiver_cpu_busy)
        c.gro_mean_batch)
    cells;
  line buf "";
  line buf "paper shape: offloads on -> both saturate the NIC; TSO off -> CPU-bound, CCP >= Linux;";
  line buf "all off -> comparable. (absolute numbers depend on the CPU cost model, DESIGN.md)";
  Buffer.contents buf

let render_table1 () =
  "Table 1: measurement and control primitives by protocol\n"
  ^ Ccp_algorithms.Primitives_table.render ()

let render_batching (rows : Scenarios.Batching_load.row list) =
  let buf = Buffer.create 1024 in
  line buf "Batching load (§2.3): per-ACK processing vs per-RTT reports";
  line buf "%12s %10s %16s %16s %9s" "link" "RTT" "ACKs/sec" "batches/sec" "ratio";
  List.iter
    (fun (r : Scenarios.Batching_load.row) ->
      line buf "%9.0f Gb %10s %16.0f %16.0f %9.0f" (r.link_bps /. 1e9)
        (Time_ns.to_string r.rtt) r.acks_per_sec r.batches_per_sec
        (r.acks_per_sec /. r.batches_per_sec))
    rows;
  Buffer.contents buf

let render_ablations ~interval ~latency ~urgent ~batching =
  let buf = Buffer.create 2048 in
  line buf "Ablation: report interval (CCP Reno, 100 Mbit/s, 20 ms RTT)";
  line buf "  %12s %10s %12s %9s" "interval" "util" "median RTT" "reports";
  List.iter
    (fun (p : Scenarios.Ablation.interval_point) ->
      line buf "  %9.2f rtt %9.1f%% %12s %9d" p.interval_rtts (100.0 *. p.utilization)
        (Time_ns.to_string p.median_rtt) p.reports)
    interval;
  line buf "";
  line buf "Ablation: IPC round-trip latency (constant)";
  line buf "  %12s %10s %12s" "IPC RTT" "util" "median RTT";
  List.iter
    (fun (p : Scenarios.Ablation.latency_point) ->
      line buf "  %12s %9.1f%% %12s" (Time_ns.to_string p.ipc_rtt) (100.0 *. p.utilization)
        (Time_ns.to_string p.median_rtt))
    latency;
  line buf "";
  line buf "Ablation: urgent loss notifications";
  line buf "  %12s %10s %12s %9s" "urgent" "util" "median RTT" "drops";
  List.iter
    (fun (p : Scenarios.Ablation.urgent_point) ->
      line buf "  %12s %9.1f%% %12s %9d"
        (if p.urgent_enabled then "on" else "off")
        (100.0 *. p.utilization)
        (Time_ns.to_string p.median_rtt) p.drops)
    urgent;
  line buf "";
  line buf "Ablation: batching mode (Vegas fold vs vector, §2.4)";
  line buf "  %12s %10s %16s %9s" "mode" "util" "IPC bytes->agent" "reports";
  List.iter
    (fun (p : Scenarios.Ablation.batching_point) ->
      line buf "  %12s %9.1f%% %16d %9d" p.mode (100.0 *. p.utilization) p.ipc_bytes_to_agent
        p.reports)
    batching;
  Buffer.contents buf

let render_robustness (sc : Scenarios.Robustness.scorecard) =
  let buf = Buffer.create 4096 in
  line buf
    "Robustness scorecard: measurement noise x algorithms (%.0f Mbit/s, %s base RTT, %s runs, seeds %s)"
    (sc.Scenarios.Robustness.rate_bps /. 1e6)
    (Time_ns.to_string sc.Scenarios.Robustness.base_rtt)
    (Time_ns.to_string sc.Scenarios.Robustness.duration)
    (String.concat "," (List.map string_of_int sc.Scenarios.Robustness.seeds));
  line buf "%-12s %-12s %5s %7s %6s %8s %8s %7s %5s %5s %9s" "algorithm" "perturbation"
    "seed" "util" "jain" "medRTTx" "p95RTTx" "retx%" "quar" "fall" "rmse-base";
  List.iter
    (fun (c : Scenarios.Robustness.cell) ->
      line buf "%-12s %-12s %5d %6.1f%% %6.3f %8.2f %8.2f %6.2f%% %5d %5d %9s" c.algo
        c.perturb c.seed (100.0 *. c.utilization) c.jain_index c.median_rtt_inflation
        c.p95_rtt_inflation
        (100.0 *. c.retransmit_rate)
        c.quarantines c.fallbacks
        (match c.cwnd_rmse_vs_baseline with
        | Some v -> Printf.sprintf "%.3f" v
        | None -> "-"))
    sc.Scenarios.Robustness.cells;
  line buf "";
  line buf "medRTTx/p95RTTx: true RTT over base RTT (the scorecard always measures the";
  line buf "real network RTT; only the algorithm's view of it is perturbed).";
  Buffer.contents buf

let series_csv (result : Experiment.result) ~series =
  Trace.to_csv result.Experiment.trace ~name:series
