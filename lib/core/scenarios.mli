(** Canned experiment configurations for every figure and table in the
    paper's evaluation, plus the ablations DESIGN.md calls out. Each
    scenario returns structured data; {!Report} renders it. *)

open Ccp_util

(** Figure 2: CDF of IPC round-trip times for Netlink and Unix-domain
    sockets, with the CPU idle and loaded (Turbo Boost). *)
module Fig2 : sig
  type series = {
    label : string;
    model : Ccp_ipc.Latency_model.t;
    samples : Stats.Samples.t;
    paper_p99_us : float;
  }

  val run : ?samples:int -> ?seed:int -> unit -> series list
  (** Four series; 60 000 samples each by default, as in the paper. *)
end

(** Figures 3 and 4 compare a CCP implementation against the in-datapath
    one under identical conditions. *)
type comparison = {
  ccp : Experiment.result;
  native : Experiment.result;
}

(** Figure 3: TCP Cubic window evolution, CCP vs Linux. 1 Gbit/s link,
    10 ms RTT, 1 BDP of buffer; the paper reports 95.4 % / 94.4 %
    utilization and 16.1 / 15.8 ms median RTT. *)
module Fig3 : sig
  val rate_bps : float
  val base_rtt : Time_ns.t

  val run :
    ?rate_bps:float ->
    ?duration:Time_ns.t ->
    ?seed:int ->
    ?with_obs:bool ->
    unit ->
    comparison
  (** Default duration 30 s at the paper's 1 Gbit/s; [rate_bps] scales the
      link down for quick regression runs. With [with_obs] each run gets a
      fresh {!Ccp_obs.Obs.t} (retrievable from [result.config.obs]) so the
      flight recorder captures the window series. Traces ["cwnd.0"] carry
      the window series the paper plots. *)
end

(** Figure 4: NewReno reactivity — a second flow joins at t=20 s of 60;
    CCP and native should show the same convergence dynamics. *)
module Fig4 : sig
  val second_flow_start : Time_ns.t

  val run :
    ?rate_bps:float ->
    ?second_flow_start:Time_ns.t ->
    ?duration:Time_ns.t ->
    ?seed:int ->
    ?with_obs:bool ->
    unit ->
    comparison

  val convergence_time : ?after:Time_ns.t -> Experiment.result -> Time_ns.t option
  (** First time after the second flow starts (default
      {!second_flow_start}; pass [after] when the run used a different
      join time) at which both flows' throughputs stay within 25 % of the
      fair share for one second. *)
end

val fidelity : ?flow:int -> ?samples:int -> comparison -> Ccp_obs.Fidelity.report
(** Paper-fidelity report for a CCP-vs-native comparison: aligns the two
    runs' cwnd series for [flow] (default 0) — preferring the flight
    recorder's [Flow_sample] series when the runs were made [~with_obs],
    falling back to the per-change ["cwnd.<i>"] trace — and returns the
    normalized cwnd RMSE, utilization delta, and median-RTT delta. *)

(** Figure 5: throughput with NIC offloads enabled/disabled on a
    10 Gbit/s link, averaged over 4 runs. *)
module Fig5 : sig
  type offload_setting = All_on | Tso_off | All_off

  type cell = {
    setting : offload_setting;
    system : string;  (** "linux" (native cubic) or "ccp" (CCP cubic) *)
    runs_gbps : float list;
    mean_gbps : float;
    sender_cpu_busy : float;  (** mean busy fraction *)
    receiver_cpu_busy : float;
    gro_mean_batch : float;
  }

  val setting_to_string : offload_setting -> string

  val run : ?runs:int -> ?duration:Time_ns.t -> ?seed:int -> unit -> cell list
  (** Six cells: 3 offload settings x 2 systems. *)
end

(** Beyond the paper: Fig. 3-style runs under a degraded control plane
    (the §5 "what if the agent fails?" question, made concrete by
    {!Ccp_ipc.Fault_plan} and the datapath's native-fallback watchdog). *)
module Degraded : sig
  val watchdog_after : Time_ns.t
  (** The canned silence threshold: 4 base RTTs. *)

  val reno_fallback : unit -> Ccp_datapath.Ccp_ext.fallback
  (** Native NewReno stand-in with the canned threshold. *)

  val run_one :
    ?duration:Time_ns.t ->
    ?seed:int ->
    ?faults:Ccp_ipc.Fault_plan.t ->
    ?fallback:Ccp_datapath.Ccp_ext.fallback ->
    unit ->
    Experiment.result
  (** One CCP-Reno flow on a 48 Mbit/s, 20 ms dumbbell under the given
      fault plan and fallback policy. *)

  type crash_comparison = {
    clean : Experiment.result;  (** no faults: the baseline *)
    without_fallback : Experiment.result;  (** crash, watchdog disabled *)
    with_fallback : Experiment.result;  (** crash, native-Reno watchdog *)
  }

  val crash_restart :
    ?crash_at:Time_ns.t ->
    ?restart_at:Time_ns.t ->
    ?duration:Time_ns.t ->
    ?seed:int ->
    unit ->
    crash_comparison
  (** The headline degraded scenario: the agent crashes at 5 s and
      restarts at 10 s of a 20 s run. Without fallback the flow coasts on
      its last window; with it the datapath reverts to native Reno within
      [watchdog_after] and hands back control after the restart. *)

  type lossy_point = {
    drop_probability : float;
    utilization : float;
    median_rtt : Time_ns.t;
    messages_dropped : int;
    fallbacks : int;
  }

  val lossy_ipc : ?duration:Time_ns.t -> ?seed:int -> unit -> lossy_point list
  (** Sweep i.i.d. IPC message loss from 0 to 50 %, native fallback armed. *)
end

(** The in-text §2.3 arithmetic: ACKs/s versus batches/s. *)
module Batching_load : sig
  type row = {
    link_bps : float;
    rtt : Time_ns.t;
    acks_per_sec : float;  (** MTU-sized segments per second *)
    batches_per_sec : float;  (** one report per RTT *)
  }

  val table : unit -> row list
end

(** Ablations over the design choices (DESIGN.md §5). *)
module Ablation : sig
  type interval_point = {
    interval_rtts : float;
    utilization : float;
    median_rtt : Time_ns.t;
    reports : int;
  }

  val report_interval : ?seed:int -> unit -> interval_point list
  (** CCP Reno with reports every 0.25-4 RTTs. *)

  type latency_point = {
    ipc_rtt : Time_ns.t;
    utilization : float;
    median_rtt : Time_ns.t;
  }

  val ipc_latency : ?seed:int -> unit -> latency_point list
  (** Constant IPC RTTs from 1 µs to 10 ms (the §5 low-RTT question). *)

  type urgent_point = {
    urgent_enabled : bool;
    utilization : float;
    median_rtt : Time_ns.t;
    drops : int;
  }

  val urgent : ?seed:int -> unit -> urgent_point list

  type batching_point = {
    mode : string;  (** "fold" or "vector" *)
    utilization : float;
    ipc_bytes_to_agent : int;
    reports : int;
  }

  val batching_mode : ?seed:int -> unit -> batching_point list
  (** Vegas fold vs vector (§2.4): same behaviour, different IPC cost. *)
end

(** Adversarial programs against the datapath's self-protection layers
    (admission control, runtime guard envelope, quarantine-to-native-CC) —
    the robustness counterpart of {!Degraded}. Every program here passes
    the agent-side static checks; the datapath must defend itself. *)
module Hostile : sig
  val zero_cwnd : Ccp_lang.Ast.program
  (** [Cwnd(0)] loop: stalls the flow without the guard cwnd floor. *)

  val huge_rate : Ccp_lang.Ast.program
  (** [Rate(1e300)] + [Cwnd(1e15)]: absurd knob values, clamped. *)

  val report_spam : Ccp_lang.Ast.program
  (** A report every microsecond, against the report rate limiter. *)

  val div_storm : Ccp_lang.Ast.program
  (** Divides by zero on every tick. *)

  val diverging_fold : Ccp_lang.Ast.program
  (** Fold state multiplied by 1e6 per packet; trips divergence
      detection. *)

  val spin : Ccp_lang.Ast.program
  (** Computed zero-length wait; runs into the runtime wait floor. *)

  val wait_too_short : Ccp_lang.Ast.program
  (** [WaitRtts(0.05)], below the static floor — the one admission
      rejects outright. *)

  val all : (string * Ccp_lang.Ast.program) list

  val attacker : ?recover:bool -> string -> Ccp_lang.Ast.program -> Ccp_agent.Algorithm.t
  (** Installs the hostile program on ready; on rejection or quarantine,
      installs a corrected window program iff [recover] (default true). *)

  val armed_guard : ?threshold:int -> unit -> Ccp_datapath.Ccp_ext.guard_envelope
  (** Default guard envelope with quarantine armed: native NewReno mode,
      incident threshold 25. *)

  type point = {
    name : string;
    utilization : float;
    installs_admitted : int;
    installs_refused : int;
    quarantines : int;
    guard_incidents : int;
    recovered : bool;  (** a CCP program controls the flow at run end *)
    min_cwnd_seen : int;  (** floor of the cwnd trace, bytes *)
  }

  val run_one :
    ?duration:Time_ns.t ->
    ?seed:int ->
    ?threshold:int ->
    ?recover:bool ->
    string * Ccp_lang.Ast.program ->
    point
  (** One attacker flow on a 48 Mbit/s, 20 ms dumbbell with the armed
      guard envelope. *)

  val sweep : ?duration:Time_ns.t -> ?seed:int -> ?threshold:int -> unit -> point list
  (** {!run_one} over {!all}. *)
end

(** Robustness matrix: measurement-noise perturbations × CCP algorithms —
    the {!Ccp_perturb} counterpart of {!Hostile}. Hostile attacks the
    datapath with adversarial programs; here the network's *measurements*
    misbehave (jittered RTT samples, noisy delivery-rate estimates,
    stretch ACKs, a token-bucket policer) while well-behaved algorithms
    run on top. Each cell runs two same-algorithm flows on a 48 Mbit/s,
    20 ms dumbbell with the guard envelope armed, so the matrix also
    checks that noise alone never trips quarantine. *)
module Robustness : sig
  val default_rate_bps : float
  val default_base_rtt : Time_ns.t

  val algorithms : (string * (unit -> Ccp_agent.Algorithm.t)) list
  (** The measurement-hungry four: ccp-vegas (fold), ccp-bbr, ccp-timely,
      ccp-pcc. *)

  val perturbations : rate_bps:float -> (string * Ccp_perturb.Perturb_plan.t) list
  (** baseline (empty plan), rtt-jitter, rate-noise, stretch-ack, policer
      (3/4 of [rate_bps]), combined (jitter + rate-noise + stretch via
      {!Ccp_perturb.Perturb_plan.compose}). *)

  val algorithm_names : string list
  val perturbation_names : string list

  val second_flow_at : Time_ns.t -> Time_ns.t
  (** When the second flow of a cell joins: 25 % into the run. *)

  type cell = {
    algo : string;
    perturb : string;
    seed : int;
    utilization : float;
    jain_index : float;  (** over the cell's two flows *)
    median_rtt_inflation : float;  (** true median RTT / base RTT *)
    p95_rtt_inflation : float;
    retransmit_rate : float;  (** retransmits / segments sent, all flows *)
    timeouts : int;
    quarantines : int;
    installs_refused : int;
    fallbacks : int;
    guard_incidents : int;
    cwnd_rmse_vs_baseline : float option;
        (** flow-0 cwnd RMSE against the same (algo, seed) clean cell;
            [None] on the baseline cell itself, when "baseline" was not
            selected, or when the traces don't overlap *)
    perturb_stats : Ccp_perturb.Sampler.stats option;
        (** summed sampler counters; [None] on baseline cells *)
    result : Experiment.result;  (** the full run, for deeper digging *)
    telemetry : Ccp_obs.Obs.t option;
        (** armed bundle when run with [~with_telemetry:true], else [None] *)
  }

  type scorecard = {
    rate_bps : float;
    base_rtt : Time_ns.t;
    duration : Time_ns.t;
    seeds : int list;
    cells : cell list;  (** in seeds × algorithms × perturbations order *)
  }

  val schema_tag : string
  (** ["ccp-robustness-scorecard/v1"], the [schema] field of the JSON. *)

  val run :
    ?rate_bps:float ->
    ?base_rtt:Time_ns.t ->
    ?duration:Time_ns.t ->
    ?seeds:int list ->
    ?algos:string list ->
    ?perturbs:string list ->
    ?with_telemetry:bool ->
    unit ->
    scorecard
  (** Run the matrix (defaults: 48 Mbit/s, 20 ms, 10 s, seed 42, all
      algorithms, all perturbations). [algos]/[perturbs] select subsets
      by name; unknown names raise [Invalid_argument]. Deterministic:
      same arguments, same scorecard (including its JSON bytes).
      [with_telemetry] (default [false]) arms a fresh tracer+telemetry
      bundle per cell, adding a [health] section to each cell's JSON. *)

  val to_json : scorecard -> Ccp_obs.Json.t
  val cell_to_json : cell -> Ccp_obs.Json.t

  val validate_scorecard : Ccp_obs.Json.t -> (int, string) result
  (** Schema check for emitted scorecards (CI re-parses what it writes):
      verifies the schema tag, that every cell carries finite metrics in
      range (utilization, Jain, RTT inflation, retransmit rate, integer
      counters), and that RMSE is null or non-negative. [Ok n] = [n]
      valid cells. *)
end

(** Chaos: every resilience layer at once. IPC faults (1 % drops, 2 %
    latency spikes, one agent crash/restart), RTT-jitter measurement
    perturbation, and sustained ~4× agent overload (four CCP-Reno flows
    reporting every quarter-RTT against a one-report-per-quarter-RTT
    dispatch budget) on a dumbbell with the datapath clamp watchdog
    armed. Each seed runs the composition twice — cold (no checkpoints)
    and warm ({!Experiment.config.checkpoint_interval} armed) — and the
    scorecard reports per-flow cwnd recovery time after the restart,
    shed/starvation statistics, and the utilization floor. *)
module Chaos : sig
  val default_rate_bps : float
  val default_base_rtt : Time_ns.t

  val flow_count : int
  (** Four same-algorithm CCP-Reno flows. *)

  val report_interval_rtts : float
  (** Reno report cadence (0.25 RTTs) — ×{!flow_count} flows against a
      one-per-round budget, the ~4× overload. *)

  val overload : base_rtt:Time_ns.t -> Ccp_agent.Agent.overload
  val degrade : Ccp_agent.Agent.degrade
  val fallback : base_rtt:Time_ns.t -> Ccp_datapath.Ccp_ext.fallback
  (** Clamp to 4 segments after 2 RTTs of agent silence. *)

  val checkpoint_interval : Time_ns.t
  (** Warm cells checkpoint every 100 ms. *)

  val slo_config : Ccp_obs.Health.config
  (** The SLO config telemetry-armed cells run under: the stock six
      SLOs with the orphan objective tightened to 1 % and the long burn
      window shortened to 2, so the agent-crash orphan burst fires the
      [orphan_rate] alert and the first healthy window after restart
      clears it (see docs/observability.md). *)

  val crash_from : duration:Time_ns.t -> Time_ns.t
  (** Outage start: 45 % into the run. *)

  val crash_length : base_rtt:Time_ns.t -> Time_ns.t
  (** Outage length: 10 RTTs. *)

  type recovery = {
    flow_id : int;
    pre_crash_cwnd : float;
        (** last cwnd sample before the outage; 0 when the flow never
            reported a window *)
    recovery_rtts : float option;
        (** RTTs from restart until cwnd is back within 20 % of
            [pre_crash_cwnd]; [None] = never within the run *)
  }

  type cell = {
    mode : string;  (** ["cold"] or ["warm"] *)
    seed : int;
    utilization : float;
    jain_index : float;
    reports_shed : int;
    max_queue_wait_rtts : float;
        (** longest any dispatched report sat queued, in RTTs — the
            starvation bound under the 4× overload *)
    degradations : int;
    decode_failures : int;
    checkpoints_taken : int;  (** 0 on cold cells *)
    warm_restores : int;  (** 0 on cold cells *)
    fallbacks : int;
    recoveries : recovery list;  (** one per flow, ascending id *)
    mean_recovery_rtts : float option;  (** over flows that recovered *)
    result : Experiment.result;
    telemetry : Ccp_obs.Obs.t option;
        (** the cell's armed bundle when the scorecard ran
            [~with_telemetry:true] — source of its timeline document and
            the [health] section of its JSON — else [None] *)
  }

  type scorecard = {
    rate_bps : float;
    base_rtt : Time_ns.t;
    duration : Time_ns.t;
    seeds : int list;
    crash_from : Time_ns.t;
    crash_until : Time_ns.t;
    cells : cell list;  (** per seed: cold then warm *)
  }

  val schema_tag : string
  (** ["ccp-chaos-scorecard/v1"], the [schema] field of the JSON. *)

  val run :
    ?rate_bps:float ->
    ?base_rtt:Time_ns.t ->
    ?duration:Time_ns.t ->
    ?seeds:int list ->
    ?with_telemetry:bool ->
    ?window_hook:
      (mode:string ->
      seed:int ->
      Ccp_obs.Obs.t ->
      Ccp_obs.Timeseries.window ->
      unit) ->
    unit ->
    scorecard
  (** Run the composition (defaults: 96 Mbit/s, 20 ms, 12 s, seed 42).
      Deterministic: same arguments, same scorecard (including its JSON
      bytes). [with_telemetry] (default [false]) arms a fresh
      tracer+telemetry bundle per cell — with a zero wall clock, so the
      exported timelines stay byte-stable — adding a [health] section to
      each cell's JSON and making [ccp_sim chaos --timeline] possible.
      [window_hook] (needs [with_telemetry]) fires after every closed
      telemetry window with the cell's bundle — the [ccp_sim top] live
      view; {!Health} has already consumed the window when it fires. *)

  val to_json : scorecard -> Ccp_obs.Json.t
  val cell_to_json : cell -> Ccp_obs.Json.t

  val validate_scorecard : Ccp_obs.Json.t -> (int, string) result
  (** Schema check for emitted scorecards: verifies the schema tag and
      crash window, every cell's mode/metric ranges, that cold cells
      report no checkpoints or warm restores, and that recovery entries
      are null or non-negative; a cell's optional [health] section is
      checked with {!Ccp_obs.Timeline.validate_health}. [Ok n] = [n]
      valid cells. *)
end

(** Figure 2 measured end to end: full control-loop runs with the span
    tracer armed, reaction latency (report departure to control
    application) read back from the flight recorder's [Span] events.
    Four clean series on the paper's calibrated models, plus degraded
    series (latency spikes, message loss, agent crash with the native
    fallback watchdog). *)
module Reaction : sig
  type series = {
    label : string;
    model : Ccp_ipc.Latency_model.t;
    model_p99_us : float;  (** calibrated RTT p99 (the paper's number) *)
    reaction_us : Stats.Samples.t;
        (** per-actuated-span reaction latency in µs of simulated time *)
    spans : Ccp_obs.Tracer.stats;  (** span accounting for the whole run *)
    recorder_dropped : int;  (** recorder ring overwrites during the run *)
    fallback_after : Time_ns.t option;
        (** crash series only: crash instant to native-fallback takeover *)
    result : Experiment.result;
  }

  val run_one :
    ?duration:Time_ns.t ->
    ?seed:int ->
    label:string ->
    model:Ccp_ipc.Latency_model.t ->
    model_p99_us:float ->
    ?faults:Ccp_ipc.Fault_plan.t ->
    ?fallback:Ccp_datapath.Ccp_ext.fallback ->
    ?crash_at:Time_ns.t ->
    unit ->
    series
  (** One CCP-Reno flow on a 48 Mbit/s, 20 ms dumbbell with tracer and
      recorder armed. *)

  val run : ?duration:Time_ns.t -> ?seed:int -> unit -> series list
  (** The four clean calibrated series plus three degraded ones
      (spikes, 20 % loss, agent crash + fallback). Default 12 s runs. *)
end

(** Incast: the flow-count scale-out family. N CCP-controlled senders
    share one shallow-buffered bottleneck (BDP/4), starting either all
    at once ([Synchronized] — the partition/aggregate burst) or spread
    over the first quarter of the run ([Staggered]). Cells arm the
    agent's preallocated slot pool sized to the fleet and, by default,
    cross-flow report batching on the IPC channel, so one run exercises
    the whole flow-multiplexed control plane: per-flow registration
    churn, N reports per RTT on one channel, and the datapath flow
    table at capacity. The ["ccp-aggregate"] algorithm runs the same
    topology with all N flows as members of a single congestion-
    controlled aggregate (§3's flow aggregation). *)
module Incast : sig
  val default_rate_bps : float
  (** 96 Mbit/s. *)

  val default_base_rtt : Time_ns.t
  (** 10 ms. *)

  val default_batching : Ccp_ipc.Channel.batching
  (** 32 reports / 4096 bytes / 200 µs — the deadline bounds the extra
      control-loop delay batching can add. *)

  type arrival = Synchronized | Staggered

  val arrival_to_string : arrival -> string
  val arrival_of_string : string -> arrival
  (** Inverse of {!arrival_to_string}; raises [Invalid_argument] on
      unknown names. *)

  val algorithm_names : string list
  (** [["ccp-reno"; "ccp-aggregate"]]. *)

  type cell = {
    n : int;  (** concurrent senders *)
    arrival : arrival;
    algo : string;
    seed : int;
    utilization : float;
    jain_index : float;
    p99_queue_delay_ms : float;
        (** p99 RTT minus base RTT, clamped at zero — the incast tail *)
    retransmit_rate : float;
    timeouts : int;
    reports : int;  (** reports the agent dispatched *)
    reports_shed : int;
    decode_failures : int;
    wire_messages : int;  (** datapath->agent wire frames *)
    batches : int;  (** of which {!Ccp_ipc.Codec.frame_batch} frames *)
    pool_rejections : int;
        (** [Ready] registrations the slot pool refused — 0 unless a
            cell is run with fewer slots than flows *)
    result : Experiment.result;
    telemetry : Ccp_obs.Obs.t option;
        (** armed bundle when run with [~with_telemetry:true] — its
            [flow.*] Top-K sketches make per-flow contributions
            observable at N=2048 without O(N) metric names — else
            [None] *)
  }

  type scorecard = {
    rate_bps : float;
    base_rtt : Time_ns.t;
    duration : Time_ns.t;
    batching : bool;
    seeds : int list;
    cells : cell list;
  }

  val schema_tag : string
  (** ["ccp-incast-scorecard/v1"], the [schema] field of the JSON. *)

  val run_cell :
    ?with_telemetry:bool ->
    rate_bps:float ->
    base_rtt:Time_ns.t ->
    duration:Time_ns.t ->
    batching:bool ->
    seed:int ->
    n:int ->
    arrival:arrival ->
    algo:string ->
    unit ->
    cell
  (** One N-flow incast run: buffer BDP/4 (floored at 9000 bytes), 10 %
      warmup, agent slot pool and datapath flow table sized
      [max 16 n]. Raises [Invalid_argument] on an unknown [algo]. *)

  val run :
    ?rate_bps:float ->
    ?base_rtt:Time_ns.t ->
    ?duration:Time_ns.t ->
    ?ns:int list ->
    ?arrivals:arrival list ->
    ?algos:string list ->
    ?seeds:int list ->
    ?batching:bool ->
    ?with_telemetry:bool ->
    unit ->
    scorecard
  (** Run the matrix (defaults: 96 Mbit/s, 10 ms, 1 s, N in
      {16, 64, 256}, both arrivals, both algorithms, seed 42, batching
      on). Deterministic: same arguments, same scorecard (including its
      JSON bytes) — batching changes wire traffic but draws nothing
      from any RNG stream. *)

  val to_json : scorecard -> Ccp_obs.Json.t
  val cell_to_json : cell -> Ccp_obs.Json.t

  val validate_scorecard : Ccp_obs.Json.t -> (int, string) result
  (** Schema check for emitted scorecards (CI re-parses what it
      writes): schema tag, arrival/algo names, metric ranges
      (utilization, Jain — zero admissible under starvation —, tail
      delay, retransmit rate), counter integrality, [batches <=
      wire_messages], no batches in an unbatched scorecard, and
      reports implying wire frames. [Ok n] = [n] valid cells. *)
end
