open Ccp_util
open Ccp_net
open Ccp_algorithms

module Fig2 = struct
  type series = {
    label : string;
    model : Ccp_ipc.Latency_model.t;
    samples : Stats.Samples.t;
    paper_p99_us : float;
  }

  let configurations =
    [
      ("netlink, idle CPU", Ccp_ipc.Latency_model.netlink_idle, 48.0);
      ("unix sockets, idle CPU", Ccp_ipc.Latency_model.unix_idle, 80.0);
      ("netlink, busy CPU + TurboBoost", Ccp_ipc.Latency_model.netlink_busy, 18.0);
      ("unix sockets, busy CPU + TurboBoost", Ccp_ipc.Latency_model.unix_busy, 35.0);
    ]

  let run ?(samples = 60_000) ?(seed = 42) () =
    List.map
      (fun (label, model, paper_p99_us) ->
        let rng = Rng.create ~seed in
        let collected = Stats.Samples.create () in
        for _ = 1 to samples do
          let rtt = Ccp_ipc.Latency_model.sample model rng in
          Stats.Samples.add collected (Time_ns.to_float_us rtt)
        done;
        { label; model; samples = collected; paper_p99_us })
      configurations
end

type comparison = { ccp : Experiment.result; native : Experiment.result }

let one_flow_config ~rate_bps ~base_rtt ~duration ~seed cc =
  let base = Experiment.default_config ~rate_bps ~base_rtt ~duration in
  {
    base with
    Experiment.seed;
    warmup = Time_ns.scale duration 0.1;
    flows = [ Experiment.flow cc ];
  }

(* Arm a fresh observability bundle for one run. Each run gets its own
   recorder/metrics so CCP and native traces never mix; the bundle stays
   reachable through [result.config.obs] for post-run extraction. *)
let armed_obs ~with_obs config =
  if not with_obs then config
  else { config with Experiment.obs = Some (Ccp_obs.Obs.create ()) }

module Fig3 = struct
  let default_rate_bps = 1e9
  let rate_bps = default_rate_bps
  let base_rtt = Time_ns.ms 10

  let run ?(rate_bps = default_rate_bps) ?(duration = Time_ns.sec 30) ?(seed = 42)
      ?(with_obs = false) () =
    let run_one cc =
      Experiment.run
        (armed_obs ~with_obs (one_flow_config ~rate_bps ~base_rtt ~duration ~seed cc))
    in
    {
      ccp = run_one (Experiment.Ccp_cc (Ccp_cubic.create ()));
      native = run_one (Experiment.Native_cc Native_cubic.create);
    }
end

module Fig4 = struct
  let second_flow_start = Time_ns.sec 20

  let run ?(rate_bps = 1e9) ?(second_flow_start = second_flow_start)
      ?(duration = Time_ns.sec 60) ?(seed = 42) ?(with_obs = false) () =
    let base_rtt = Time_ns.ms 10 in
    let run_one mk =
      let base = Experiment.default_config ~rate_bps ~base_rtt ~duration in
      Experiment.run
        (armed_obs ~with_obs
           {
             base with
             Experiment.seed;
             flows =
               [ Experiment.flow (mk ()); Experiment.flow ~start_at:second_flow_start (mk ()) ];
           })
    in
    {
      ccp = run_one (fun () -> Experiment.Ccp_cc (Ccp_reno.create ()));
      native = run_one (fun () -> Experiment.Native_cc Native_reno.create);
    }

  (* Both flows within 25% of fair share, sustained for a full second.
     [after] is when the second flow started (measurement begins there);
     it defaults to the module-level [second_flow_start] used by [run]. *)
  let convergence_time ?(after = second_flow_start) (result : Experiment.result) =
    let series i =
      Trace.series result.Experiment.trace (Printf.sprintf "throughput_mbps.%d" i)
    in
    let fair_mbps = result.Experiment.config.Experiment.rate_bps /. 2.0 /. 1e6 in
    let ok v = Float.abs (v -. fair_mbps) <= 0.25 *. fair_mbps in
    let s0 = Array.of_list (series 0) and s1 = Array.of_list (series 1) in
    let n = min (Array.length s0) (Array.length s1) in
    let need = Time_ns.sec 1 in
    let rec scan i run_start =
      if i >= n then None
      else begin
        let at, v0 = s0.(i) in
        let _, v1 = s1.(i) in
        if Time_ns.compare at after < 0 then scan (i + 1) None
        else if ok v0 && ok v1 then begin
          match run_start with
          | None -> scan (i + 1) (Some at)
          | Some start ->
            if Time_ns.compare (Time_ns.sub at start) need >= 0 then Some start
            else scan (i + 1) run_start
        end
        else scan (i + 1) None
      end
    in
    scan 0 None
end

(* Quantitative Figure-3/4 fidelity: extract the cwnd series of [flow]
   from each run and hand both to {!Ccp_obs.Fidelity}. Prefers the flight
   recorder's [Flow_sample] series when the run carried one (runs made
   with [~with_obs:true]); otherwise falls back to the per-change
   ["cwnd.<flow>"] trace series every run records. *)
let fidelity ?(flow = 0) ?samples (cmp : comparison) =
  let run_of (r : Experiment.result) =
    let recorded =
      match r.Experiment.config.Experiment.obs with
      | Some obs -> (
        match obs.Ccp_obs.Obs.recorder with
        | Some rec_ ->
          Ccp_obs.Recorder.flow_series rec_ ~flow (Ccp_obs.Recorder.cwnd_of_event ~flow)
        | None -> [||])
      | None -> [||]
    in
    let series =
      if Array.length recorded > 0 then recorded
      else
        Array.of_list
          (List.map
             (fun (at, v) -> (Time_ns.to_float_sec at, v))
             (Trace.series r.Experiment.trace (Printf.sprintf "cwnd.%d" flow)))
    in
    {
      Ccp_obs.Fidelity.series;
      utilization = r.Experiment.utilization;
      median_rtt_ms = Time_ns.to_float_ms r.Experiment.median_rtt;
    }
  in
  Ccp_obs.Fidelity.compare_runs ?samples ~ccp:(run_of cmp.ccp) ~native:(run_of cmp.native) ()

module Fig5 = struct
  type offload_setting = All_on | Tso_off | All_off

  type cell = {
    setting : offload_setting;
    system : string;
    runs_gbps : float list;
    mean_gbps : float;
    sender_cpu_busy : float;
    receiver_cpu_busy : float;
    gro_mean_batch : float;
  }

  let setting_to_string = function
    | All_on -> "offloads on"
    | Tso_off -> "TSO off"
    | All_off -> "all off"

  (* Per-ACK CPU cost differs between the systems: the native datapath runs
     the full pluggable-TCP callback chain (cubic update, rate sampling) on
     every ACK, while the CCP datapath executes only a fold step — the
     cycles §2.3 argues batching gives back. *)
  let ack_cost_native = Time_ns.ns 600
  let ack_cost_ccp = Time_ns.ns 350

  let offload_spec ~setting ~ack_cost : Experiment.offload_spec =
    let sender =
      {
        Offload.Sender_path.default_config with
        tso = (setting = All_on);
        ack_cost;
      }
    in
    let receiver =
      { Offload.Receiver_path.default_config with gro = setting <> All_off }
    in
    { Experiment.sender; receiver }

  let run ?(runs = 4) ?(duration = Time_ns.of_float_sec 0.8) ?(seed = 42) () =
    let rate_bps = 10e9 and base_rtt = Time_ns.us 200 in
    let warmup = Time_ns.scale duration 0.25 in
    let cell setting (system, cc, ack_cost) =
      let run_once i =
        let base = Experiment.default_config ~rate_bps ~base_rtt ~duration in
        let config =
          {
            base with
            Experiment.seed = seed + i;
            warmup;
            buffer_bytes = 500_000;
            flows = [ Experiment.flow (cc ()) ];
            offloads = Some (offload_spec ~setting ~ack_cost);
            sample_interval = Time_ns.ms 50;
          }
        in
        Experiment.run config
      in
      let results = List.init runs run_once in
      let gbps r =
        List.fold_left (fun acc (f : Experiment.flow_result) -> acc +. f.goodput_bps) 0.0
          r.Experiment.flows
        /. 1e9
      in
      let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      let cpu f = mean (List.filter_map f results) in
      {
        setting;
        system;
        runs_gbps = List.map gbps results;
        mean_gbps = mean (List.map gbps results);
        sender_cpu_busy =
          cpu (fun r ->
              Option.map (fun (c : Experiment.cpu_stats) -> c.busy_fraction) r.Experiment.sender_cpu);
        receiver_cpu_busy =
          cpu (fun r ->
              Option.map
                (fun (c : Experiment.cpu_stats) -> c.busy_fraction)
                r.Experiment.receiver_cpu);
        gro_mean_batch =
          cpu (fun r ->
              Option.map (fun (c : Experiment.cpu_stats) -> c.mean_batch) r.Experiment.receiver_cpu);
      }
    in
    let systems =
      [
        ("linux", (fun () -> Experiment.Native_cc Native_cubic.create), ack_cost_native);
        ("ccp", (fun () -> Experiment.Ccp_cc (Ccp_cubic.create ())), ack_cost_ccp);
      ]
    in
    List.concat_map
      (fun setting ->
        List.map (fun (name, cc, ack) -> cell setting (name, cc, ack)) systems)
      [ All_on; Tso_off; All_off ]
end

module Degraded = struct
  let default_rate_bps = 48e6
  let default_base_rtt = Time_ns.ms 20

  (* k=4 RTTs of silence before the datapath takes the flow back. *)
  let watchdog_after = Time_ns.scale default_base_rtt 4.0

  let reno_fallback () =
    Ccp_datapath.Ccp_ext.native_fallback ~after:watchdog_after Native_reno.create

  let run_one ?(duration = Time_ns.sec 15) ?(seed = 42)
      ?(faults = Ccp_ipc.Fault_plan.none) ?fallback () =
    let base =
      Experiment.default_config ~rate_bps:default_rate_bps ~base_rtt:default_base_rtt
        ~duration
    in
    Experiment.run
      {
        base with
        Experiment.seed;
        warmup = Time_ns.scale duration 0.05;
        datapath = { Ccp_datapath.Ccp_ext.default_config with fallback };
        faults;
        flows = [ Experiment.flow (Experiment.Ccp_cc (Ccp_reno.create ())) ];
      }

  type crash_comparison = {
    clean : Experiment.result;
    without_fallback : Experiment.result;
    with_fallback : Experiment.result;
  }

  let crash_restart ?(crash_at = Time_ns.sec 5) ?(restart_at = Time_ns.sec 10)
      ?(duration = Time_ns.sec 20) ?(seed = 42) () =
    let faults = Ccp_ipc.Fault_plan.crash ~at:crash_at ~restart:restart_at Ccp_ipc.Fault_plan.none in
    {
      clean = run_one ~duration ~seed ();
      without_fallback = run_one ~duration ~seed ~faults ();
      with_fallback = run_one ~duration ~seed ~faults ~fallback:(reno_fallback ()) ();
    }

  type lossy_point = {
    drop_probability : float;
    utilization : float;
    median_rtt : Time_ns.t;
    messages_dropped : int;
    fallbacks : int;
  }

  let lossy_ipc ?(duration = Time_ns.sec 12) ?(seed = 42) () =
    List.map
      (fun drop_probability ->
        let faults = Ccp_ipc.Fault_plan.make ~drop_probability () in
        let r = run_one ~duration ~seed ~faults ~fallback:(reno_fallback ()) () in
        let stats = Option.get r.Experiment.agent_stats in
        {
          drop_probability;
          utilization = r.Experiment.utilization;
          median_rtt = r.Experiment.median_rtt;
          messages_dropped = stats.Experiment.ipc_faults.Ccp_ipc.Channel.dropped;
          fallbacks = stats.Experiment.fallbacks;
        })
      [ 0.0; 0.01; 0.05; 0.2; 0.5 ]
end

module Batching_load = struct
  type row = {
    link_bps : float;
    rtt : Time_ns.t;
    acks_per_sec : float;
    batches_per_sec : float;
  }

  let mtu_bits = 1500.0 *. 8.0

  let table () =
    let rows =
      [
        (100e9, Time_ns.us 10);
        (100e9, Time_ns.ms 100);
        (10e9, Time_ns.us 10);
        (10e9, Time_ns.ms 10);
        (1e9, Time_ns.ms 10);
        (1e9, Time_ns.ms 100);
      ]
    in
    List.map
      (fun (link_bps, rtt) ->
        {
          link_bps;
          rtt;
          acks_per_sec = link_bps /. mtu_bits;
          batches_per_sec = 1.0 /. Time_ns.to_float_sec rtt;
        })
      rows
end

module Ablation = struct
  let rate_bps = 100e6
  let base_rtt = Time_ns.ms 20
  let duration = Time_ns.sec 12

  type interval_point = {
    interval_rtts : float;
    utilization : float;
    median_rtt : Time_ns.t;
    reports : int;
  }

  let report_interval ?(seed = 42) () =
    List.map
      (fun interval_rtts ->
        let cc = Experiment.Ccp_cc (Ccp_reno.create_with ~interval_rtts ()) in
        let r = Experiment.run (one_flow_config ~rate_bps ~base_rtt ~duration ~seed cc) in
        {
          interval_rtts;
          utilization = r.Experiment.utilization;
          median_rtt = r.Experiment.median_rtt;
          reports =
            (match r.Experiment.agent_stats with
            | Some s -> s.Experiment.reports
            | None -> 0);
        })
      [ 0.25; 0.5; 1.0; 2.0; 4.0 ]

  type latency_point = {
    ipc_rtt : Time_ns.t;
    utilization : float;
    median_rtt : Time_ns.t;
  }

  let ipc_latency ?(seed = 42) () =
    List.map
      (fun ipc_rtt ->
        let cc = Experiment.Ccp_cc (Ccp_reno.create ()) in
        let config =
          {
            (one_flow_config ~rate_bps ~base_rtt ~duration ~seed cc) with
            Experiment.ipc = Ccp_ipc.Latency_model.Constant ipc_rtt;
          }
        in
        let r = Experiment.run config in
        { ipc_rtt; utilization = r.Experiment.utilization; median_rtt = r.Experiment.median_rtt })
      [ Time_ns.us 1; Time_ns.us 10; Time_ns.us 100; Time_ns.ms 1; Time_ns.ms 10 ]

  type urgent_point = {
    urgent_enabled : bool;
    utilization : float;
    median_rtt : Time_ns.t;
    drops : int;
  }

  let urgent ?(seed = 42) () =
    List.map
      (fun urgent_enabled ->
        let cc = Experiment.Ccp_cc (Ccp_reno.create ()) in
        let config =
          {
            (one_flow_config ~rate_bps ~base_rtt ~duration ~seed cc) with
            Experiment.datapath =
              { Ccp_datapath.Ccp_ext.default_config with urgent_on_loss = urgent_enabled };
          }
        in
        let r = Experiment.run config in
        {
          urgent_enabled;
          utilization = r.Experiment.utilization;
          median_rtt = r.Experiment.median_rtt;
          drops = r.Experiment.drops;
        })
      [ true; false ]

  type batching_point = {
    mode : string;
    utilization : float;
    ipc_bytes_to_agent : int;
    reports : int;
  }

  let batching_mode ?(seed = 42) () =
    List.map
      (fun (mode, algo) ->
        let r =
          Experiment.run
            (one_flow_config ~rate_bps ~base_rtt ~duration ~seed (Experiment.Ccp_cc algo))
        in
        let stats = Option.get r.Experiment.agent_stats in
        {
          mode;
          utilization = r.Experiment.utilization;
          ipc_bytes_to_agent = stats.Experiment.ipc_bytes_to_agent;
          reports = stats.Experiment.reports;
        })
      [ ("fold", Ccp_vegas.create `Fold); ("vector", Ccp_vegas.create `Vector) ]
end

(* Adversarial programs against the datapath's self-protection (admission
   control, guard envelope, quarantine). Each one is statically valid — it
   passes the agent's own Typecheck — so without the guard layers it would
   run unchecked. *)
module Hostile = struct
  open Ccp_lang.Ast

  (* Hide a constant from admission's static wait floor: the value only
     materialises at runtime, which is exactly the layer the guard
     envelope covers. *)
  let nonconst f = Bin (Mul, Const f, Const 1.0)

  let zero_cwnd = program [ Cwnd (Const 0.0); Wait_rtts (Const 0.5); Report ]

  let huge_rate =
    program [ Rate (Const 1e300); Cwnd (Const 1e15); Wait_rtts (Const 0.5); Report ]

  let report_spam =
    program [ Cwnd (Bin (Mul, Const 10.0, Var "mss")); Wait (nonconst 1.0); Report ]

  let div_storm =
    program
      [ Cwnd (Bin (Div, Var "cwnd", Const 0.0)); Wait (nonconst 200.0); Report ]

  let diverging_fold =
    program
      [
        Measure (Fold { init = [ ("x", Const 1.0) ]; update = [ ("x", Bin (Mul, Var "x", Const 1e6)) ] });
        Cwnd (Bin (Mul, Const 10.0, Var "mss"));
        Wait_rtts (Const 0.5);
        Report;
      ]

  let spin = program [ Cwnd (Bin (Mul, Var "cwnd", Const 1.0)); Wait (nonconst 0.0); Report ]

  (* Statically detectable: the only one admission refuses outright
     (WaitRtts below the 0.1 floor) instead of quarantining at runtime. *)
  let wait_too_short =
    program [ Cwnd (Bin (Mul, Const 10.0, Var "mss")); Wait_rtts (Const 0.05); Report ]

  let all =
    [
      ("zero-cwnd", zero_cwnd);
      ("huge-rate", huge_rate);
      ("report-spam", report_spam);
      ("div-storm", div_storm);
      ("diverging-fold", diverging_fold);
      ("spin", spin);
      ("wait-too-short", wait_too_short);
    ]

  (* An agent algorithm that installs a hostile program, then — when the
     datapath pushes back with a rejection or a quarantine — swaps in a
     corrected window program, modelling an operator shipping a fix. *)
  let attacker ?(recover = true) name hostile : Ccp_agent.Algorithm.t =
    let make (handle : Ccp_agent.Algorithm.handle) =
      let corrected () =
        Prog.window_program ~cwnd:(10 * handle.Ccp_agent.Algorithm.info.Ccp_agent.Algorithm.mss) ()
      in
      {
        Ccp_agent.Algorithm.no_op_handlers with
        on_ready = (fun () -> handle.Ccp_agent.Algorithm.install hostile);
        on_quarantine =
          (fun _ -> if recover then handle.Ccp_agent.Algorithm.install (corrected ()));
        on_install_result =
          (fun r ->
            match r.Ccp_ipc.Message.verdict with
            | Ccp_ipc.Message.Rejected _ when recover ->
              handle.Ccp_agent.Algorithm.install (corrected ())
            | _ -> ());
      }
    in
    { Ccp_agent.Algorithm.name = "hostile-" ^ name; make }

  let default_rate_bps = 48e6
  let default_base_rtt = Time_ns.ms 20

  let armed_guard ?(threshold = 25) () =
    {
      Ccp_datapath.Ccp_ext.default_guard with
      Ccp_datapath.Ccp_ext.quarantine_after = threshold;
      quarantine_mode = Some (Ccp_datapath.Ccp_ext.Native Native_reno.create);
    }

  type point = {
    name : string;
    utilization : float;
    installs_admitted : int;
    installs_refused : int;
    quarantines : int;
    guard_incidents : int;
    recovered : bool;
    min_cwnd_seen : int;
  }

  let run_one ?(duration = Time_ns.sec 5) ?(seed = 42) ?(threshold = 25) ?(recover = true)
      (name, hostile) =
    let dp = ref None in
    let base =
      Experiment.default_config ~rate_bps:default_rate_bps ~base_rtt:default_base_rtt ~duration
    in
    let config =
      {
        base with
        Experiment.seed;
        datapath =
          {
            Ccp_datapath.Ccp_ext.default_config with
            Ccp_datapath.Ccp_ext.guard = armed_guard ~threshold ();
          };
        flows = [ Experiment.flow (Experiment.Ccp_cc (attacker ~recover name hostile)) ];
        inspect = Some (fun h -> dp := Some h.Experiment.h_datapath);
      }
    in
    let r = Experiment.run config in
    let stats = Option.get r.Experiment.agent_stats in
    let recovered =
      match !dp with
      | Some dp ->
        Ccp_datapath.Ccp_ext.controller dp ~flow:0 = Some Ccp_datapath.Ccp_ext.Agent_program
      | None -> false
    in
    let min_cwnd_seen =
      match Trace.series r.Experiment.trace "cwnd.0" with
      | [] -> 0
      | points -> List.fold_left (fun acc (_, v) -> min acc (int_of_float v)) max_int points
    in
    {
      name;
      utilization = r.Experiment.utilization;
      installs_admitted = stats.Experiment.installs_admitted;
      installs_refused = stats.Experiment.installs_refused;
      quarantines = stats.Experiment.quarantines;
      guard_incidents = stats.Experiment.guard_incidents;
      recovered;
      min_cwnd_seen;
    }

  let sweep ?(duration = Time_ns.sec 5) ?(seed = 42) ?(threshold = 25) () =
    List.map (fun entry -> run_one ~duration ~seed ~threshold entry) all
end

(* Robustness: the measurement-noise counterpart of {!Hostile}. Hostile
   attacks the datapath with adversarial programs; here the *network*
   misbehaves — jittered RTT samples, noisy delivery-rate estimates,
   stretch ACKs, a token-bucket policer — and well-behaved algorithms run
   on top. Each cell is two same-algorithm flows on a dumbbell with the
   guard envelope armed, so the matrix also answers "does noise alone
   ever trip quarantine?" (it must not). *)
module Robustness = struct
  module Plan = Ccp_perturb.Perturb_plan
  module J = Ccp_obs.Json

  let default_rate_bps = 48e6
  let default_base_rtt = Time_ns.ms 20

  (* The measurement-hungry algorithms: Vegas and Timely live off RTT
     samples, BBR off delivery rate, PCC off its utility of both —
     exactly the primitives the perturbation layer corrupts. *)
  let algorithms : (string * (unit -> Ccp_agent.Algorithm.t)) list =
    [
      ("ccp-vegas", fun () -> Ccp_vegas.create `Fold);
      ("ccp-bbr", fun () -> Ccp_bbr.create ());
      ("ccp-timely", fun () -> Ccp_timely.create ());
      ("ccp-pcc", fun () -> Ccp_pcc.create ());
    ]

  let rtt_jitter_plan =
    Plan.make
      ~rtt_jitter:
        {
          Plan.additive_sigma = Time_ns.ms 2;
          multiplicative = 0.1;
          burst = Some { Plan.probability = 0.01; extra = Time_ns.ms 10; length = 8 };
        }
      ()

  let rate_noise_plan =
    Plan.make ~rate_error:{ Plan.multiplicative = 0.3; collapse_probability = 0.02 } ()

  let stretch_ack_plan = Plan.make ~ack_stretch:{ Plan.every = 4 } ()

  let policer_plan ~rate_bps =
    Plan.make ~policer:{ Plan.rate_bps = 0.75 *. rate_bps; burst_bytes = 32_768 } ()

  let combined_plan =
    List.fold_left Plan.compose Plan.none
      [ rtt_jitter_plan; rate_noise_plan; stretch_ack_plan ]

  let perturbations ~rate_bps =
    [
      ("baseline", Plan.none);
      ("rtt-jitter", rtt_jitter_plan);
      ("rate-noise", rate_noise_plan);
      ("stretch-ack", stretch_ack_plan);
      ("policer", policer_plan ~rate_bps);
      ("combined", combined_plan);
    ]

  let algorithm_names = List.map fst algorithms
  let perturbation_names = List.map fst (perturbations ~rate_bps:default_rate_bps)

  type cell = {
    algo : string;
    perturb : string;
    seed : int;
    utilization : float;
    jain_index : float;
    median_rtt_inflation : float;
    p95_rtt_inflation : float;
    retransmit_rate : float;
    timeouts : int;
    quarantines : int;
    installs_refused : int;
    fallbacks : int;
    guard_incidents : int;
    cwnd_rmse_vs_baseline : float option;
    perturb_stats : Ccp_perturb.Sampler.stats option;
    result : Experiment.result;
    telemetry : Ccp_obs.Obs.t option;
  }

  type scorecard = {
    rate_bps : float;
    base_rtt : Time_ns.t;
    duration : Time_ns.t;
    seeds : int list;
    cells : cell list;
  }

  let schema_tag = "ccp-robustness-scorecard/v1"
  let second_flow_at duration = Time_ns.scale duration 0.25

  let run_cell ?(with_telemetry = false) ~rate_bps ~base_rtt ~duration ~seed ~plan mk
      () =
    let base = Experiment.default_config ~rate_bps ~base_rtt ~duration in
    let telemetry =
      if with_telemetry then
        Some
          (Ccp_obs.Obs.create ~tracer:true ~telemetry:true ~clock:(fun () -> 0.0) ())
      else None
    in
    let r =
      Experiment.run
      {
        base with
        Experiment.seed;
        obs = telemetry;
        warmup = Time_ns.scale duration 0.1;
        datapath =
          {
            Ccp_datapath.Ccp_ext.default_config with
            Ccp_datapath.Ccp_ext.guard = Hostile.armed_guard ();
          };
        perturb = plan;
        flows =
          [
            Experiment.flow (Experiment.Ccp_cc (mk ()));
            Experiment.flow ~start_at:(second_flow_at duration) (Experiment.Ccp_cc (mk ()));
          ];
      }
    in
    (r, telemetry)

  let cwnd_run (r : Experiment.result) =
    {
      Ccp_obs.Fidelity.series =
        Array.of_list
          (List.map
             (fun (at, v) -> (Time_ns.to_float_sec at, v))
             (Trace.series r.Experiment.trace "cwnd.0"));
      utilization = r.Experiment.utilization;
      median_rtt_ms = Time_ns.to_float_ms r.Experiment.median_rtt;
    }

  let rmse_vs baseline r =
    match baseline with
    | None -> None
    | Some b -> (
      try
        let rep = Ccp_obs.Fidelity.compare_runs ~ccp:(cwnd_run r) ~native:(cwnd_run b) () in
        Some rep.Ccp_obs.Fidelity.cwnd_rmse
      with Invalid_argument _ -> None)

  let cell_of ~algo ~perturb ~seed ~base_rtt ~baseline ~telemetry
      (r : Experiment.result) =
    let sum f = List.fold_left (fun acc fr -> acc + f fr) 0 r.Experiment.flows in
    let segments = sum (fun (f : Experiment.flow_result) -> f.segments_sent) in
    let retx = sum (fun (f : Experiment.flow_result) -> f.retransmits) in
    let agent f =
      match r.Experiment.agent_stats with Some s -> f s | None -> 0
    in
    let base_ms = Time_ns.to_float_ms base_rtt in
    {
      algo;
      perturb;
      seed;
      utilization = r.Experiment.utilization;
      jain_index = r.Experiment.jain_index;
      median_rtt_inflation = Time_ns.to_float_ms r.Experiment.median_rtt /. base_ms;
      p95_rtt_inflation = Time_ns.to_float_ms r.Experiment.p95_rtt /. base_ms;
      retransmit_rate =
        (if segments = 0 then 0.0 else float_of_int retx /. float_of_int segments);
      timeouts = sum (fun (f : Experiment.flow_result) -> f.timeouts);
      quarantines = agent (fun s -> s.Experiment.quarantines);
      installs_refused = agent (fun s -> s.Experiment.installs_refused);
      fallbacks = agent (fun s -> s.Experiment.fallbacks);
      guard_incidents = agent (fun s -> s.Experiment.guard_incidents);
      cwnd_rmse_vs_baseline = rmse_vs baseline r;
      perturb_stats = r.Experiment.perturb_stats;
      result = r;
      telemetry;
    }

  let lookup kind table names =
    List.map
      (fun n ->
        match List.assoc_opt n table with
        | Some v -> (n, v)
        | None ->
          invalid_arg
            (Printf.sprintf "Robustness: unknown %s %S (have: %s)" kind n
               (String.concat ", " (List.map fst table))))
      names

  let run ?(rate_bps = default_rate_bps) ?(base_rtt = default_base_rtt)
      ?(duration = Time_ns.sec 10) ?(seeds = [ 42 ]) ?algos ?perturbs
      ?(with_telemetry = false) () =
    let sel_algos = lookup "algorithm" algorithms (Option.value algos ~default:algorithm_names) in
    let sel_perturbs =
      lookup "perturbation" (perturbations ~rate_bps)
        (Option.value perturbs ~default:perturbation_names)
    in
    let cells =
      List.concat_map
        (fun seed ->
          List.concat_map
            (fun (algo, mk) ->
              (* The clean cell doubles as the reference trace for the
                 perturbed cells' cwnd RMSE; without "baseline" in the
                 selection no hidden extra runs happen and RMSE is
                 omitted. *)
              let baseline =
                if List.mem_assoc "baseline" sel_perturbs then
                  Some
                    (run_cell ~with_telemetry ~rate_bps ~base_rtt ~duration ~seed
                       ~plan:Plan.none mk ())
                else None
              in
              List.map
                (fun (pname, plan) ->
                  let r, telemetry =
                    match (pname, baseline) with
                    | "baseline", Some b -> b
                    | _ ->
                      run_cell ~with_telemetry ~rate_bps ~base_rtt ~duration ~seed
                        ~plan mk ()
                  in
                  let reference =
                    if pname = "baseline" then None else Option.map fst baseline
                  in
                  cell_of ~algo ~perturb:pname ~seed ~base_rtt ~baseline:reference
                    ~telemetry r)
                sel_perturbs)
            sel_algos)
        seeds
    in
    { rate_bps; base_rtt; duration; seeds; cells }

  let stats_to_json (s : Ccp_perturb.Sampler.stats) =
    let i n = J.Num (float_of_int n) in
    J.Obj
      [
        ("rtt_samples", i s.Ccp_perturb.Sampler.rtt_samples);
        ("burst_episodes", i s.Ccp_perturb.Sampler.burst_episodes);
        ("rate_samples", i s.Ccp_perturb.Sampler.rate_samples);
        ("rate_collapsed", i s.Ccp_perturb.Sampler.rate_collapsed);
        ("policer_passed", i s.Ccp_perturb.Sampler.policer_passed);
        ("policer_dropped", i s.Ccp_perturb.Sampler.policer_dropped);
      ]

  let cell_to_json c =
    let i n = J.Num (float_of_int n) in
    J.Obj
      ([
        ("algo", J.Str c.algo);
        ("perturb", J.Str c.perturb);
        ("seed", i c.seed);
        ("utilization", J.Num c.utilization);
        ("jain", J.Num c.jain_index);
        ("median_rtt_inflation", J.Num c.median_rtt_inflation);
        ("p95_rtt_inflation", J.Num c.p95_rtt_inflation);
        ("retransmit_rate", J.Num c.retransmit_rate);
        ("timeouts", i c.timeouts);
        ("quarantines", i c.quarantines);
        ("installs_refused", i c.installs_refused);
        ("fallbacks", i c.fallbacks);
        ("guard_incidents", i c.guard_incidents);
        ( "cwnd_rmse_vs_baseline",
          match c.cwnd_rmse_vs_baseline with Some v -> J.Num v | None -> J.Null );
        ( "perturb_stats",
          match c.perturb_stats with Some s -> stats_to_json s | None -> J.Null );
      ]
      @
      match c.telemetry with
      | Some { Ccp_obs.Obs.health = Some h; _ } ->
        [ ("health", Ccp_obs.Health.to_json h) ]
      | _ -> [])

  let to_json sc =
    J.Obj
      [
        ("schema", J.Str schema_tag);
        ("rate_bps", J.Num sc.rate_bps);
        ("base_rtt_ms", J.Num (Time_ns.to_float_ms sc.base_rtt));
        ("duration_s", J.Num (Time_ns.to_float_sec sc.duration));
        ("seeds", J.List (List.map (fun s -> J.Num (float_of_int s)) sc.seeds));
        ("cells", J.List (List.map cell_to_json sc.cells));
      ]

  let validate_scorecard json =
    let ( let* ) = Result.bind in
    let str name obj =
      match J.member name obj with
      | Some (J.Str s) -> Ok s
      | _ -> Error (Printf.sprintf "missing string field %S" name)
    in
    let num name obj =
      match Option.bind (J.member name obj) J.to_float with
      | Some v when Float.is_finite v -> Ok v
      | _ -> Error (Printf.sprintf "missing or non-finite numeric field %S" name)
    in
    let counter name obj =
      let* v = num name obj in
      if v >= 0.0 && Float.is_integer v then Ok v
      else Error (Printf.sprintf "field %S = %g is not a non-negative integer" name v)
    in
    let* schema = str "schema" json in
    let* () =
      if schema = schema_tag then Ok ()
      else Error (Printf.sprintf "schema is %S, want %S" schema schema_tag)
    in
    let* _ = num "rate_bps" json in
    let* _ = num "base_rtt_ms" json in
    let* _ = num "duration_s" json in
    let* cells =
      match J.member "cells" json with
      | Some (J.List l) -> Ok l
      | _ -> Error "missing \"cells\" array"
    in
    let check_cell i cell =
      let ctx msg = Printf.sprintf "cell %d: %s" i msg in
      let ( let* ) a b = Result.bind (Result.map_error ctx a) b in
      let* _ = str "algo" cell in
      let* _ = str "perturb" cell in
      let* _ = counter "seed" cell in
      let* u = num "utilization" cell in
      let* () =
        if u >= 0.0 && u <= 1.5 then Ok ()
        else Error (ctx (Printf.sprintf "utilization %g out of range" u))
      in
      let* jain = num "jain" cell in
      let* () =
        if jain > 0.0 && jain <= 1.0 +. 1e-9 then Ok ()
        else Error (ctx (Printf.sprintf "jain %g out of range" jain))
      in
      let* m = num "median_rtt_inflation" cell in
      let* p = num "p95_rtt_inflation" cell in
      let* () =
        if m >= 0.9 && p >= m -. 1e-9 then Ok ()
        else Error (ctx (Printf.sprintf "RTT inflation pair (%g, %g) inconsistent" m p))
      in
      let* rr = num "retransmit_rate" cell in
      let* () =
        if rr >= 0.0 && rr <= 1.0 then Ok ()
        else Error (ctx (Printf.sprintf "retransmit_rate %g out of range" rr))
      in
      let* _ = counter "timeouts" cell in
      let* _ = counter "quarantines" cell in
      let* _ = counter "installs_refused" cell in
      let* _ = counter "fallbacks" cell in
      let* _ = counter "guard_incidents" cell in
      let* () =
        match J.member "cwnd_rmse_vs_baseline" cell with
        | Some J.Null -> Ok ()
        | Some (J.Num v) when Float.is_finite v && v >= 0.0 -> Ok ()
        | _ -> Error (ctx "cwnd_rmse_vs_baseline must be null or a non-negative number")
      in
      match J.member "health" cell with
      | None -> Ok ()
      | Some h -> Result.map_error ctx (Ccp_obs.Timeline.validate_health h)
    in
    let rec check i = function
      | [] -> Ok (List.length cells)
      | c :: rest -> ( match check_cell i c with Ok () -> check (i + 1) rest | Error e -> Error e)
    in
    check 0 cells
end

(* Chaos: every resilience layer exercised at once. IPC faults (drops,
   latency spikes, an agent crash/restart) × measurement perturbation
   (RTT jitter) × sustained agent overload (reports arrive ~4× faster
   than the dispatch budget drains them) run against four CCP-Reno flows
   with the datapath watchdog armed. Each seed runs the same composition
   twice — cold (no checkpoints) and warm (periodic agent-state
   checkpoints replayed at restart) — so the scorecard directly measures
   what warm restart buys: per-flow cwnd recovery time back to the
   pre-crash operating point, read off the cwnd trace. *)
module Chaos = struct
  module Plan = Ccp_perturb.Perturb_plan
  module J = Ccp_obs.Json

  let default_rate_bps = 96e6
  let default_base_rtt = Time_ns.ms 20
  let flow_count = 4

  (* Reports every quarter-RTT per flow; the agent drains one per
     quarter-RTT round. Four flows → arrival ≈ 4× drain capacity, yet
     round-robin still serves every flow about once per RTT, so the
     shedder (never taking a flow's only queued report) keeps the
     starvation bound tight while most of the backlog is shed. *)
  let report_interval_rtts = 0.25

  let overload ~base_rtt =
    {
      Ccp_agent.Agent.queue_capacity = 8;
      high_watermark = 4;
      dispatch_budget = 1;
      dispatch_interval = Time_ns.scale base_rtt report_interval_rtts;
    }

  let degrade =
    {
      Ccp_agent.Agent.error_threshold = 3;
      backoff_initial = Time_ns.ms 200;
      backoff_max = Time_ns.sec 2;
    }

  (* Conservative clamp during agent silence: the crash is visible as a
     collapsed window, so recovery back to the pre-crash point is a real
     climb for a cold restart and a single re-install for a warm one. *)
  let fallback ~base_rtt =
    Ccp_datapath.Ccp_ext.clamp_fallback
      ~after:(Time_ns.scale base_rtt 2.0)
      ~cwnd_segments:4

  let checkpoint_interval = Time_ns.ms 100
  let crash_from ~duration = Time_ns.scale duration 0.45
  let crash_length ~base_rtt = Time_ns.scale base_rtt 10.0

  let fault_plan ~crash_from ~crash_until =
    Ccp_ipc.Fault_plan.make ~drop_probability:0.01
      ~spike:{ Ccp_ipc.Fault_plan.probability = 0.02; extra = Time_ns.ms 2 }
      ~agent_outages:[ { Ccp_ipc.Fault_plan.from_ = crash_from; until = crash_until } ]
      ()

  let perturb_plan =
    Plan.make
      ~rtt_jitter:
        { Plan.additive_sigma = Time_ns.us 500; multiplicative = 0.05; burst = None }
      ()

  type recovery = {
    flow_id : int;
    pre_crash_cwnd : float;
    recovery_rtts : float option;
  }

  type cell = {
    mode : string;
    seed : int;
    utilization : float;
    jain_index : float;
    reports_shed : int;
    max_queue_wait_rtts : float;
    degradations : int;
    decode_failures : int;
    checkpoints_taken : int;
    warm_restores : int;
    fallbacks : int;
    recoveries : recovery list;
    mean_recovery_rtts : float option;
    result : Experiment.result;
    telemetry : Ccp_obs.Obs.t option;
        (* the armed bundle, for timeline export and health verdicts *)
  }

  type scorecard = {
    rate_bps : float;
    base_rtt : Time_ns.t;
    duration : Time_ns.t;
    seeds : int list;
    crash_from : Time_ns.t;
    crash_until : Time_ns.t;
    cells : cell list;
  }

  let schema_tag = "ccp-chaos-scorecard/v1"

  (* Recovery, per flow, from the cwnd trace: the pre-crash operating
     point is the last cwnd sample before the outage begins; the flow has
     recovered at the first post-restart sample back within 20 % of it. *)
  let recovery_of ~base_rtt ~crash_from ~crash_until (r : Experiment.result) flow_id =
    let series = Trace.series r.Experiment.trace (Printf.sprintf "cwnd.%d" flow_id) in
    let pre =
      List.fold_left
        (fun acc (at, v) -> if Time_ns.compare at crash_from < 0 then v else acc)
        0.0 series
    in
    let recovered_at =
      if pre <= 0.0 then None
      else
        List.find_map
          (fun (at, v) ->
            if Time_ns.compare at crash_until >= 0 && v >= 0.8 *. pre then Some at
            else None)
          series
    in
    {
      flow_id;
      pre_crash_cwnd = pre;
      recovery_rtts =
        Option.map
          (fun at ->
            Time_ns.to_float_sec (Time_ns.sub at crash_until)
            /. Time_ns.to_float_sec base_rtt)
          recovered_at;
    }

  (* Chaos-tuned SLO config. The composition sheds over half of all
     reports by design, and the crash injects a one-to-two-window
     orphan burst; against the stock config that burst never clears the
     8-window long burn. A 1 % orphan objective over a 2-window long
     burn separates the crash (short burn ~35, long ~18 at seed 42)
     from convergence-phase noise (short burn <= ~6) with margin on
     both sides of the threshold-10 gate, so the agent-crash window
     raises the orphan_rate alert and the first healthy window after
     restart clears it. *)
  let slo_config =
    let d = Ccp_obs.Health.default_config () in
    {
      d with
      Ccp_obs.Health.slos =
        List.map
          (fun (s : Ccp_obs.Health.slo) ->
            if String.equal s.Ccp_obs.Health.slo_name "orphan_rate" then
              { s with Ccp_obs.Health.objective = 0.01 }
            else s)
          d.Ccp_obs.Health.slos;
      long_windows = 2;
    }

  let run_cell ?(with_telemetry = false) ?window_hook ~rate_bps ~base_rtt ~duration
      ~seed ~crash_from ~crash_until ~mode ~checkpoint () =
    let base = Experiment.default_config ~rate_bps ~base_rtt ~duration in
    let mk () = Ccp_reno.create_with ~interval_rtts:report_interval_rtts () in
    (* One fresh bundle per cell so windows, sketches, and alert state
       never bleed across modes or seeds. The zero wall clock keeps the
       stage-cost histograms (and therefore the exported timeline)
       byte-stable across hosts; every other timestamp is sim time. *)
    let telemetry =
      if with_telemetry then
        Some
          (Ccp_obs.Obs.create ~tracer:true ~telemetry:true ~slo:slo_config
             ~clock:(fun () -> 0.0) ())
      else None
    in
    (match (telemetry, window_hook) with
    | Some obs, Some f ->
      Ccp_obs.Obs.set_window_hook obs (fun _ w -> f ~mode ~seed obs w)
    | _ -> ());
    let r =
      Experiment.run
        {
          base with
          Experiment.seed;
          obs = telemetry;
          warmup = Time_ns.scale duration 0.1;
          datapath =
            {
              Ccp_datapath.Ccp_ext.default_config with
              Ccp_datapath.Ccp_ext.fallback = Some (fallback ~base_rtt);
            };
          faults = fault_plan ~crash_from ~crash_until;
          perturb = perturb_plan;
          agent_overload = Some (overload ~base_rtt);
          agent_degrade = Some degrade;
          checkpoint_interval = checkpoint;
          flows =
            List.init flow_count (fun _ -> Experiment.flow (Experiment.Ccp_cc (mk ())));
        }
    in
    let recoveries =
      List.init flow_count (fun id ->
          recovery_of ~base_rtt ~crash_from ~crash_until r id)
    in
    let recovered = List.filter_map (fun rec_ -> rec_.recovery_rtts) recoveries in
    let stats f = match r.Experiment.agent_stats with Some s -> f s | None -> 0 in
    {
      mode;
      seed;
      utilization = r.Experiment.utilization;
      jain_index = r.Experiment.jain_index;
      reports_shed = stats (fun s -> s.Experiment.reports_shed);
      max_queue_wait_rtts =
        (match r.Experiment.agent_stats with
        | Some s ->
          Time_ns.to_float_sec s.Experiment.max_queue_wait
          /. Time_ns.to_float_sec base_rtt
        | None -> 0.0);
      degradations = stats (fun s -> s.Experiment.degradations);
      decode_failures = stats (fun s -> s.Experiment.decode_failures);
      checkpoints_taken = stats (fun s -> s.Experiment.checkpoints_taken);
      warm_restores = stats (fun s -> s.Experiment.warm_restores);
      fallbacks = stats (fun s -> s.Experiment.fallbacks);
      recoveries;
      mean_recovery_rtts =
        (match recovered with
        | [] -> None
        | l -> Some (List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)));
      result = r;
      telemetry;
    }

  let modes = [ ("cold", None); ("warm", Some checkpoint_interval) ]

  let run ?(rate_bps = default_rate_bps) ?(base_rtt = default_base_rtt)
      ?(duration = Time_ns.sec 12) ?(seeds = [ 42 ]) ?(with_telemetry = false)
      ?window_hook () =
    let crash_from = crash_from ~duration in
    let crash_until = Time_ns.add crash_from (crash_length ~base_rtt) in
    let cells =
      List.concat_map
        (fun seed ->
          List.map
            (fun (mode, checkpoint) ->
              run_cell ~with_telemetry ?window_hook ~rate_bps ~base_rtt ~duration
                ~seed ~crash_from ~crash_until ~mode ~checkpoint ())
            modes)
        seeds
    in
    { rate_bps; base_rtt; duration; seeds; crash_from; crash_until; cells }

  let recovery_to_json rec_ =
    J.Obj
      [
        ("flow", J.Num (float_of_int rec_.flow_id));
        ("pre_crash_cwnd", J.Num rec_.pre_crash_cwnd);
        ( "recovery_rtts",
          match rec_.recovery_rtts with Some v -> J.Num v | None -> J.Null );
      ]

  let cell_to_json c =
    let i n = J.Num (float_of_int n) in
    (* The health section only exists when the cell ran with telemetry
       armed, so plain scorecards stay byte-identical to the goldens. *)
    let health =
      match c.telemetry with
      | Some { Ccp_obs.Obs.health = Some h; _ } ->
        [ ("health", Ccp_obs.Health.to_json h) ]
      | _ -> []
    in
    J.Obj
      ([
         ("mode", J.Str c.mode);
         ("seed", i c.seed);
         ("utilization", J.Num c.utilization);
         ("jain", J.Num c.jain_index);
         ("reports_shed", i c.reports_shed);
         ("max_queue_wait_rtts", J.Num c.max_queue_wait_rtts);
         ("degradations", i c.degradations);
         ("decode_failures", i c.decode_failures);
         ("checkpoints_taken", i c.checkpoints_taken);
         ("warm_restores", i c.warm_restores);
         ("fallbacks", i c.fallbacks);
         ("recoveries", J.List (List.map recovery_to_json c.recoveries));
         ( "mean_recovery_rtts",
           match c.mean_recovery_rtts with Some v -> J.Num v | None -> J.Null );
       ]
      @ health)

  let to_json sc =
    J.Obj
      [
        ("schema", J.Str schema_tag);
        ("rate_bps", J.Num sc.rate_bps);
        ("base_rtt_ms", J.Num (Time_ns.to_float_ms sc.base_rtt));
        ("duration_s", J.Num (Time_ns.to_float_sec sc.duration));
        ("crash_from_s", J.Num (Time_ns.to_float_sec sc.crash_from));
        ("crash_until_s", J.Num (Time_ns.to_float_sec sc.crash_until));
        ("seeds", J.List (List.map (fun s -> J.Num (float_of_int s)) sc.seeds));
        ("cells", J.List (List.map cell_to_json sc.cells));
      ]

  let validate_scorecard json =
    let ( let* ) = Result.bind in
    let str name obj =
      match J.member name obj with
      | Some (J.Str s) -> Ok s
      | _ -> Error (Printf.sprintf "missing string field %S" name)
    in
    let num name obj =
      match Option.bind (J.member name obj) J.to_float with
      | Some v when Float.is_finite v -> Ok v
      | _ -> Error (Printf.sprintf "missing or non-finite numeric field %S" name)
    in
    let counter name obj =
      let* v = num name obj in
      if v >= 0.0 && Float.is_integer v then Ok v
      else Error (Printf.sprintf "field %S = %g is not a non-negative integer" name v)
    in
    let* schema = str "schema" json in
    let* () =
      if schema = schema_tag then Ok ()
      else Error (Printf.sprintf "schema is %S, want %S" schema schema_tag)
    in
    let* _ = num "rate_bps" json in
    let* _ = num "base_rtt_ms" json in
    let* _ = num "duration_s" json in
    let* cf = num "crash_from_s" json in
    let* cu = num "crash_until_s" json in
    let* () =
      if cf >= 0.0 && cu > cf then Ok ()
      else Error (Printf.sprintf "crash window (%g, %g) inconsistent" cf cu)
    in
    let* cells =
      match J.member "cells" json with
      | Some (J.List l) -> Ok l
      | _ -> Error "missing \"cells\" array"
    in
    let check_cell i cell =
      let ctx msg = Printf.sprintf "cell %d: %s" i msg in
      let ( let* ) a b = Result.bind (Result.map_error ctx a) b in
      let* mode = str "mode" cell in
      let* () =
        if mode = "cold" || mode = "warm" then Ok ()
        else Error (ctx (Printf.sprintf "unknown mode %S" mode))
      in
      let* _ = counter "seed" cell in
      let* u = num "utilization" cell in
      let* () =
        if u >= 0.0 && u <= 1.5 then Ok ()
        else Error (ctx (Printf.sprintf "utilization %g out of range" u))
      in
      let* jain = num "jain" cell in
      let* () =
        if jain > 0.0 && jain <= 1.0 +. 1e-9 then Ok ()
        else Error (ctx (Printf.sprintf "jain %g out of range" jain))
      in
      let* _ = counter "reports_shed" cell in
      let* w = num "max_queue_wait_rtts" cell in
      let* () =
        if w >= 0.0 then Ok ()
        else Error (ctx (Printf.sprintf "max_queue_wait_rtts %g negative" w))
      in
      let* _ = counter "degradations" cell in
      let* _ = counter "decode_failures" cell in
      let* ck = counter "checkpoints_taken" cell in
      let* wr = counter "warm_restores" cell in
      let* () =
        if mode = "cold" && (ck > 0.0 || wr > 0.0) then
          Error (ctx "cold cell reports checkpoints or warm restores")
        else Ok ()
      in
      let* _ = counter "fallbacks" cell in
      let* recoveries =
        match J.member "recoveries" cell with
        | Some (J.List l) -> Ok l
        | _ -> Error (ctx "missing \"recoveries\" array")
      in
      let check_recovery r =
        let* _ = counter "flow" r in
        let* pre = num "pre_crash_cwnd" r in
        let* () =
          if pre >= 0.0 then Ok ()
          else Error (ctx (Printf.sprintf "pre_crash_cwnd %g negative" pre))
        in
        match J.member "recovery_rtts" r with
        | Some J.Null -> Ok ()
        | Some (J.Num v) when Float.is_finite v && v >= 0.0 -> Ok ()
        | _ -> Error (ctx "recovery_rtts must be null or a non-negative number")
      in
      let* () =
        List.fold_left
          (fun acc r -> match acc with Error _ -> acc | Ok () -> check_recovery r)
          (Ok ()) recoveries
      in
      let* () =
        match J.member "mean_recovery_rtts" cell with
        | Some J.Null -> Ok ()
        | Some (J.Num v) when Float.is_finite v && v >= 0.0 -> Ok ()
        | _ -> Error (ctx "mean_recovery_rtts must be null or a non-negative number")
      in
      (* Optional: present only when the cell ran with telemetry armed. *)
      match J.member "health" cell with
      | None -> Ok ()
      | Some h -> Result.map_error ctx (Ccp_obs.Timeline.validate_health h)
    in
    let rec check i = function
      | [] -> Ok (List.length cells)
      | c :: rest -> (
        match check_cell i c with Ok () -> check (i + 1) rest | Error e -> Error e)
    in
    check 0 cells
end

(* Figure 2, measured end to end. {!Fig2} samples the latency model
   directly; here the full control loop runs with the span tracer armed
   and reaction latency — report departure to control application at the
   datapath — is read back from the recorder's [Span] events. The clean
   series use the paper's four calibrated models; the degraded series add
   latency spikes, message loss, and an agent crash, where the watchdog's
   fallback reaction is the time from crash to native takeover. *)
module Reaction = struct
  type series = {
    label : string;
    model : Ccp_ipc.Latency_model.t;
    model_p99_us : float;
    reaction_us : Stats.Samples.t;
    spans : Ccp_obs.Tracer.stats;
    recorder_dropped : int;
    fallback_after : Time_ns.t option;
    result : Experiment.result;
  }

  let default_rate_bps = 48e6
  let default_base_rtt = Time_ns.ms 20

  (* Reaction time of every actuated span, in microseconds of simulated
     time. A reaction is two one-way IPC trips (the handler itself is
     instantaneous in simulated time), so against the model's RTT p99
     these land lower: the sum of two independent half-RTT draws
     concentrates below a single full draw's tail. *)
  let reaction_samples obs =
    let samples = Stats.Samples.create () in
    (match obs.Ccp_obs.Obs.recorder with
    | Some recorder ->
      List.iter
        (fun (_, event) ->
          match event with
          | Ccp_obs.Recorder.Span s
            when s.Ccp_obs.Recorder.disposition = "actuated"
                 && s.Ccp_obs.Recorder.started_at >= 0
                 && s.Ccp_obs.Recorder.done_at >= 0 ->
            Stats.Samples.add samples
              (float_of_int (s.Ccp_obs.Recorder.done_at - s.Ccp_obs.Recorder.started_at)
              /. 1e3)
          | _ -> ())
        (Ccp_obs.Recorder.to_list recorder)
    | None -> ());
    samples

  let fallback_entry obs ~crash_at =
    match obs.Ccp_obs.Obs.recorder with
    | None -> None
    | Some recorder ->
      List.find_map
        (fun (at, event) ->
          match event with
          | Ccp_obs.Recorder.Fallback { entered = true; _ }
            when Time_ns.compare at crash_at >= 0 ->
            Some (Time_ns.sub at crash_at)
          | _ -> None)
        (Ccp_obs.Recorder.to_list recorder)

  let run_one ?(duration = Time_ns.sec 12) ?(seed = 42) ~label ~model ~model_p99_us
      ?(faults = Ccp_ipc.Fault_plan.none) ?fallback ?crash_at () =
    let obs = Ccp_obs.Obs.create ~tracer:true ~tracer_capacity:4096 () in
    let base =
      Experiment.default_config ~rate_bps:default_rate_bps ~base_rtt:default_base_rtt
        ~duration
    in
    let config =
      {
        base with
        Experiment.seed;
        warmup = Time_ns.scale duration 0.05;
        ipc = model;
        faults;
        datapath = { Ccp_datapath.Ccp_ext.default_config with fallback };
        obs = Some obs;
        flows = [ Experiment.flow (Experiment.Ccp_cc (Ccp_reno.create ())) ];
      }
    in
    let result = Experiment.run config in
    {
      label;
      model;
      model_p99_us;
      reaction_us = reaction_samples obs;
      spans = Ccp_obs.Tracer.stats (Ccp_obs.Obs.tracer_exn obs);
      recorder_dropped =
        (match obs.Ccp_obs.Obs.recorder with
        | Some r -> Ccp_obs.Recorder.dropped r
        | None -> 0);
      fallback_after =
        (match crash_at with
        | Some at -> fallback_entry obs ~crash_at:at
        | None -> None);
      result;
    }

  let run ?(duration = Time_ns.sec 12) ?(seed = 42) () =
    let clean =
      List.map
        (fun (label, model, model_p99_us) ->
          run_one ~duration ~seed ~label ~model ~model_p99_us ())
        Fig2.configurations
    in
    let unix = Ccp_ipc.Latency_model.unix_idle and unix_p99 = 80.0 in
    let spiky =
      run_one ~duration ~seed ~label:"unix idle + 5% 2ms spikes" ~model:unix
        ~model_p99_us:unix_p99
        ~faults:
          (Ccp_ipc.Fault_plan.make
             ~spike:{ Ccp_ipc.Fault_plan.probability = 0.05; extra = Time_ns.ms 2 }
             ())
        ()
    in
    (* The fallback watchdog stays armed here: a dropped [Install] would
       otherwise leave the flow uncontrolled (the agent only installs on
       [Ready]), whereas fallback probes re-handshake until it lands. *)
    let lossy =
      run_one ~duration ~seed ~label:"unix idle + 20% message loss" ~model:unix
        ~model_p99_us:unix_p99
        ~faults:(Ccp_ipc.Fault_plan.make ~drop_probability:0.2 ())
        ~fallback:(Degraded.reno_fallback ()) ()
    in
    let crash_at = Time_ns.scale duration 0.3 in
    let restart_at = Time_ns.scale duration 0.7 in
    let crashed =
      run_one ~duration ~seed ~label:"unix idle + agent crash (fallback)" ~model:unix
        ~model_p99_us:unix_p99
        ~faults:(Ccp_ipc.Fault_plan.crash ~at:crash_at ~restart:restart_at Ccp_ipc.Fault_plan.none)
        ~fallback:(Degraded.reno_fallback ()) ~crash_at ()
    in
    clean @ [ spiky; lossy; crashed ]
end

(* Incast: the flow-count scale-out family. N senders share one
   bottleneck — either synchronized (every flow starts at t=0, the
   classic partition/aggregate burst) or staggered over the first
   quarter of the run — and every flow is CCP-controlled, so the agent,
   the IPC channel, and the datapath flow table all see N-flow load at
   once. Cells run with the agent's slot pool sized to the fleet and,
   by default, cross-flow report batching armed; the scorecard reads
   fan-in health off the tail (p99 queue delay over base RTT), fairness
   (Jain), loss (retransmit rate, timeouts), and the control plane's
   own accounting (reports, sheds, wire frames vs. batch frames, pool
   rejections). The "ccp-aggregate" algorithm rides the same topology
   with all N flows as members of one congestion-controlled aggregate. *)
module Incast = struct
  module J = Ccp_obs.Json

  let schema_tag = "ccp-incast-scorecard/v1"
  let default_rate_bps = 96e6
  let default_base_rtt = Time_ns.ms 10

  (* Watermarks tuned for fan-in: a synchronized burst fills a frame in
     one RTT's worth of reports; the 200 us deadline bounds the extra
     control-loop delay batching can ever add. *)
  let default_batching =
    { Ccp_ipc.Channel.max_count = 32; max_bytes = 4096; deadline = Time_ns.us 200 }

  type arrival = Synchronized | Staggered

  let arrival_to_string = function
    | Synchronized -> "synchronized"
    | Staggered -> "staggered"

  let arrival_of_string = function
    | "synchronized" -> Synchronized
    | "staggered" -> Staggered
    | s -> invalid_arg (Printf.sprintf "Incast: unknown arrival %S" s)

  let algorithm_names = [ "ccp-reno"; "ccp-aggregate" ]

  type cell = {
    n : int;
    arrival : arrival;
    algo : string;
    seed : int;
    utilization : float;
    jain_index : float;
    p99_queue_delay_ms : float;
    retransmit_rate : float;
    timeouts : int;
    reports : int;
    reports_shed : int;
    decode_failures : int;
    wire_messages : int;  (* datapath->agent wire frames *)
    batches : int;  (* of which batch frames *)
    pool_rejections : int;
    result : Experiment.result;
    telemetry : Ccp_obs.Obs.t option;
  }

  type scorecard = {
    rate_bps : float;
    base_rtt : Time_ns.t;
    duration : Time_ns.t;
    batching : bool;
    seeds : int list;
    cells : cell list;
  }

  let start_of ~arrival ~duration ~n i =
    match arrival with
    | Synchronized -> Time_ns.zero
    | Staggered ->
      (* Spread arrivals over the first quarter of the run. *)
      Time_ns.scale duration (0.25 *. float_of_int i /. float_of_int (max 1 n))

  let flows_of ~algo ~arrival ~duration ~n =
    match algo with
    | "ccp-reno" ->
      List.init n (fun i ->
          Experiment.flow
            ~start_at:(start_of ~arrival ~duration ~n i)
            (Experiment.Ccp_cc (Ccp_reno.create ())))
    | "ccp-aggregate" ->
      (* One aggregate instance; all N flows register as members and the
         controller splits one window across them. *)
      let algo = Ccp_aggregate.algorithm (Ccp_aggregate.create ()) in
      List.init n (fun i ->
          Experiment.flow
            ~start_at:(start_of ~arrival ~duration ~n i)
            (Experiment.Ccp_cc algo))
    | s ->
      invalid_arg
        (Printf.sprintf "Incast: unknown algorithm %S (have: %s)" s
           (String.concat ", " algorithm_names))

  let run_cell ?(with_telemetry = false) ~rate_bps ~base_rtt ~duration ~batching
      ~seed ~n ~arrival ~algo () =
    let handles = ref None in
    let base = Experiment.default_config ~rate_bps ~base_rtt ~duration in
    (* Telemetry at fan-in scale: a fresh bundle per cell whose Top-K
       sketches stay O(k) even at N=2048 flows. The zero wall clock
       keeps exports byte-stable; the larger k gives the heavy-hitter
       bound (error <= total/k) room to separate aggregate-dominant
       flows from the crowd. *)
    let telemetry =
      if with_telemetry then
        Some
          (Ccp_obs.Obs.create ~tracer:true ~telemetry:true ~topk_k:64
             ~clock:(fun () -> 0.0)
             ())
      else None
    in
    (* A shallow buffer is what makes incast incast: BDP/4, floored at
       six segments so tiny configurations still pass traffic. *)
    let bdp_bytes = rate_bps *. Time_ns.to_float_sec base_rtt /. 8.0 in
    let buffer_bytes = max 9000 (int_of_float (bdp_bytes /. 4.0)) in
    let r =
      Experiment.run
        {
          base with
          Experiment.seed;
          obs = telemetry;
          buffer_bytes;
          warmup = Time_ns.scale duration 0.1;
          flows = flows_of ~algo ~arrival ~duration ~n;
          ipc_batching = (if batching then Some default_batching else None);
          agent_flow_pool = Some (max 16 n);
          datapath =
            { Ccp_datapath.Ccp_ext.default_config with
              Ccp_datapath.Ccp_ext.flow_capacity = max 16 n };
          inspect = Some (fun h -> handles := Some h);
        }
    in
    let sum f = List.fold_left (fun acc fr -> acc + f fr) 0 r.Experiment.flows in
    let segments = sum (fun (f : Experiment.flow_result) -> f.segments_sent) in
    let retx = sum (fun (f : Experiment.flow_result) -> f.retransmits) in
    let agent f = match r.Experiment.agent_stats with Some s -> f s | None -> 0 in
    let wire_messages, batches, pool_rejections =
      match !handles with
      | Some h ->
        ( Ccp_ipc.Channel.messages_sent h.Experiment.h_channel Ccp_ipc.Channel.Datapath_end,
          Ccp_ipc.Channel.batches_sent h.Experiment.h_channel,
          Ccp_agent.Agent.registrations_rejected h.Experiment.h_agent )
      | None -> (0, 0, 0)
    in
    {
      n;
      arrival;
      algo;
      seed;
      utilization = r.Experiment.utilization;
      jain_index = r.Experiment.jain_index;
      p99_queue_delay_ms =
        Float.max 0.0
          (Time_ns.to_float_ms r.Experiment.p99_rtt -. Time_ns.to_float_ms base_rtt);
      retransmit_rate =
        (if segments = 0 then 0.0 else float_of_int retx /. float_of_int segments);
      timeouts = sum (fun (f : Experiment.flow_result) -> f.timeouts);
      reports = agent (fun s -> s.Experiment.reports);
      reports_shed = agent (fun s -> s.Experiment.reports_shed);
      decode_failures = agent (fun s -> s.Experiment.decode_failures);
      wire_messages;
      batches;
      pool_rejections;
      result = r;
      telemetry;
    }

  let run ?(rate_bps = default_rate_bps) ?(base_rtt = default_base_rtt)
      ?(duration = Time_ns.sec 1) ?(ns = [ 16; 64; 256 ])
      ?(arrivals = [ Synchronized; Staggered ]) ?(algos = algorithm_names)
      ?(seeds = [ 42 ]) ?(batching = true) ?(with_telemetry = false) () =
    List.iter
      (fun a ->
        if not (List.mem a algorithm_names) then
          invalid_arg
            (Printf.sprintf "Incast: unknown algorithm %S (have: %s)" a
               (String.concat ", " algorithm_names)))
      algos;
    List.iter
      (fun n -> if n <= 0 then invalid_arg "Incast: flow counts must be positive")
      ns;
    let cells =
      List.concat_map
        (fun seed ->
          List.concat_map
            (fun n ->
              List.concat_map
                (fun arrival ->
                  List.map
                    (fun algo ->
                      run_cell ~with_telemetry ~rate_bps ~base_rtt ~duration
                        ~batching ~seed ~n ~arrival ~algo ())
                    algos)
                arrivals)
            ns)
        seeds
    in
    { rate_bps; base_rtt; duration; batching; seeds; cells }

  let cell_to_json c =
    let i n = J.Num (float_of_int n) in
    J.Obj
      ([
        ("n", i c.n);
        ("arrival", J.Str (arrival_to_string c.arrival));
        ("algo", J.Str c.algo);
        ("seed", i c.seed);
        ("utilization", J.Num c.utilization);
        ("jain", J.Num c.jain_index);
        ("p99_queue_delay_ms", J.Num c.p99_queue_delay_ms);
        ("retransmit_rate", J.Num c.retransmit_rate);
        ("timeouts", i c.timeouts);
        ("reports", i c.reports);
        ("reports_shed", i c.reports_shed);
        ("decode_failures", i c.decode_failures);
        ("wire_messages", i c.wire_messages);
        ("batches", i c.batches);
        ("pool_rejections", i c.pool_rejections);
      ]
      @
      match c.telemetry with
      | Some { Ccp_obs.Obs.health = Some h; _ } ->
        [ ("health", Ccp_obs.Health.to_json h) ]
      | _ -> [])

  let to_json sc =
    J.Obj
      [
        ("schema", J.Str schema_tag);
        ("rate_bps", J.Num sc.rate_bps);
        ("base_rtt_ms", J.Num (Time_ns.to_float_ms sc.base_rtt));
        ("duration_s", J.Num (Time_ns.to_float_sec sc.duration));
        ("batching", J.Bool sc.batching);
        ("seeds", J.List (List.map (fun s -> J.Num (float_of_int s)) sc.seeds));
        ("cells", J.List (List.map cell_to_json sc.cells));
      ]

  let validate_scorecard json =
    let ( let* ) = Result.bind in
    let str name obj =
      match J.member name obj with
      | Some (J.Str s) -> Ok s
      | _ -> Error (Printf.sprintf "missing string field %S" name)
    in
    let num name obj =
      match Option.bind (J.member name obj) J.to_float with
      | Some v when Float.is_finite v -> Ok v
      | _ -> Error (Printf.sprintf "missing or non-finite numeric field %S" name)
    in
    let counter name obj =
      let* v = num name obj in
      if v >= 0.0 && Float.is_integer v then Ok v
      else Error (Printf.sprintf "field %S = %g is not a non-negative integer" name v)
    in
    let* schema = str "schema" json in
    let* () =
      if schema = schema_tag then Ok ()
      else Error (Printf.sprintf "schema is %S, want %S" schema schema_tag)
    in
    let* _ = num "rate_bps" json in
    let* _ = num "base_rtt_ms" json in
    let* _ = num "duration_s" json in
    let* batching =
      match J.member "batching" json with
      | Some (J.Bool b) -> Ok b
      | _ -> Error "missing boolean field \"batching\""
    in
    let* cells =
      match J.member "cells" json with
      | Some (J.List l) -> Ok l
      | _ -> Error "missing \"cells\" array"
    in
    let check_cell i cell =
      let ctx msg = Printf.sprintf "cell %d: %s" i msg in
      let ( let* ) a b = Result.bind (Result.map_error ctx a) b in
      let* n = counter "n" cell in
      let* () =
        if n >= 1.0 then Ok () else Error (ctx (Printf.sprintf "n %g < 1" n))
      in
      let* arrival = str "arrival" cell in
      let* () =
        if arrival = "synchronized" || arrival = "staggered" then Ok ()
        else Error (ctx (Printf.sprintf "unknown arrival %S" arrival))
      in
      let* algo = str "algo" cell in
      let* () =
        if List.mem algo algorithm_names then Ok ()
        else Error (ctx (Printf.sprintf "unknown algo %S" algo))
      in
      let* _ = counter "seed" cell in
      let* u = num "utilization" cell in
      let* () =
        if u >= 0.0 && u <= 1.5 then Ok ()
        else Error (ctx (Printf.sprintf "utilization %g out of range" u))
      in
      let* jain = num "jain" cell in
      let* () =
        (* Unlike the robustness matrix, heavy fan-in can legitimately
           starve flows to zero goodput, so 0 is admissible. *)
        if jain >= 0.0 && jain <= 1.0 +. 1e-9 then Ok ()
        else Error (ctx (Printf.sprintf "jain %g out of range" jain))
      in
      let* q = num "p99_queue_delay_ms" cell in
      let* () =
        if q >= 0.0 then Ok ()
        else Error (ctx (Printf.sprintf "p99_queue_delay_ms %g negative" q))
      in
      let* rr = num "retransmit_rate" cell in
      let* () =
        if rr >= 0.0 && rr <= 1.0 then Ok ()
        else Error (ctx (Printf.sprintf "retransmit_rate %g out of range" rr))
      in
      let* _ = counter "timeouts" cell in
      let* reports = counter "reports" cell in
      let* _ = counter "reports_shed" cell in
      let* _ = counter "decode_failures" cell in
      let* wire = counter "wire_messages" cell in
      let* batches = counter "batches" cell in
      let* () =
        if batches <= wire then Ok ()
        else Error (ctx (Printf.sprintf "batches %g > wire_messages %g" batches wire))
      in
      let* () =
        if batching || batches = 0.0 then Ok ()
        else Error (ctx "batches nonzero in an unbatched scorecard")
      in
      let* () =
        if reports = 0.0 || wire > 0.0 then Ok ()
        else Error (ctx "reports arrived over zero wire frames")
      in
      let* _ = counter "pool_rejections" cell in
      match J.member "health" cell with
      | None -> Ok ()
      | Some h -> Result.map_error ctx (Ccp_obs.Timeline.validate_health h)
    in
    let rec check i = function
      | [] -> Ok (List.length cells)
      | c :: rest -> (
        match check_cell i c with Ok () -> check (i + 1) rest | Error e -> Error e)
    in
    check 0 cells
end
