(** Rendering of scenario results as the text the bench harness prints:
    for every figure, the series the paper plots plus an explicit
    paper-vs-measured summary. *)

val sparkline : float list -> string
(** Unicode sparkline of a series (empty string for an empty list). *)

val render_fig2 : Scenarios.Fig2.series list -> string
(** Percentile table (p50/p90/p99) per configuration, the model's analytic
    values, the paper's p99, and a CDF sparkline. *)

val render_reaction : Scenarios.Reaction.series list -> string
(** Measured control-loop reaction latency table + CDF sparklines for
    {!Scenarios.Reaction}: per-series measured p50/p90/p99 against the
    calibrated model p99, span accounting, and (for the crash series)
    the watchdog's fallback takeover time. *)

val render_fig3 : Scenarios.comparison -> string
(** Utilization and median RTT for CCP and native Cubic against the
    paper's 95.4 %/16.1 ms and 94.4 %/15.8 ms, plus cwnd sparklines of
    both window evolutions. *)

val render_fig4 : Scenarios.comparison -> string
(** Per-flow throughput series, convergence times, and post-convergence
    Jain index for CCP and native NewReno. *)

val render_fig5 : Scenarios.Fig5.cell list -> string
(** Mean throughput per offload setting and system, with CPU busy
    fractions and GRO batch sizes. *)

val render_table1 : unit -> string

val render_batching : Scenarios.Batching_load.row list -> string

val render_ablations :
  interval:Scenarios.Ablation.interval_point list ->
  latency:Scenarios.Ablation.latency_point list ->
  urgent:Scenarios.Ablation.urgent_point list ->
  batching:Scenarios.Ablation.batching_point list ->
  string

val render_robustness : Scenarios.Robustness.scorecard -> string
(** Per-cell table of the robustness matrix: utilization, Jain index,
    median/p95 RTT inflation over base RTT, retransmit rate, quarantine
    and fallback counts, and cwnd RMSE against the clean baseline cell. *)

val series_csv : Experiment.result -> series:string -> string
(** Extract one trace series as CSV (for offline plotting). *)
