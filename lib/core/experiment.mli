(** Experiment driver: build a dumbbell, attach native and/or CCP flows,
    run, and collect the metrics the paper reports.

    A single experiment hosts any mix of flows. All CCP flows on the host
    share one IPC channel, one CCP datapath extension, and one agent — the
    paper's architecture, where a single user-space agent serves every
    flow (and different flows may run different algorithms). *)

open Ccp_util
open Ccp_net
open Ccp_datapath

type cc_spec =
  | Native_cc of (unit -> Congestion_iface.t)
      (** in-datapath controller; fresh instance per flow *)
  | Ccp_cc of Ccp_agent.Algorithm.t  (** off-datapath algorithm via the agent *)

type flow_spec = {
  cc : cc_spec;
  start_at : Time_ns.t;
  app_limit_bytes : int option;
  delayed_ack_every : int;
}

val flow : ?start_at:Time_ns.t -> ?app_limit_bytes:int -> ?delayed_ack_every:int ->
  cc_spec -> flow_spec

type offload_spec = {
  sender : Offload.Sender_path.config;
  receiver : Offload.Receiver_path.config;
}

(** Live handles to the shared CCP plumbing, passed to [config.inspect]
    just after wiring and before the simulation runs. Intended for tests
    and scenarios that schedule mid-run observations (e.g. "is the flow in
    fallback at t=7s?") on [h_sim]. *)
type handles = {
  h_sim : Ccp_eventsim.Sim.t;
  h_channel : Ccp_ipc.Channel.t;
  h_datapath : Ccp_ext.t;
  h_agent : Ccp_agent.Agent.t;
}

type config = {
  seed : int;
  rate_bps : float;
  base_rtt : Time_ns.t;
  buffer_bytes : int;
  ecn_threshold_bytes : int option;
  duration : Time_ns.t;
  warmup : Time_ns.t;  (** excluded from utilization/goodput accounting *)
  flows : flow_spec list;
  ipc : Ccp_ipc.Latency_model.t;  (** round-trip model for CCP flows *)
  ipc_batching : Ccp_ipc.Channel.batching option;
      (** cross-flow report batching watermarks on the IPC channel;
          [None] (the default) sends one wire frame per message — the
          original framing, byte-identical to a build without batching *)
  datapath : Ccp_ext.config;
  tcp : Tcp_flow.config;
  sample_interval : Time_ns.t;  (** throughput/queue series resolution *)
  offloads : offload_spec option;  (** Figure 5's host CPU model, off by default *)
  policy : (Ccp_agent.Algorithm.flow_info -> Ccp_agent.Policy.t) option;
  jitter : Time_ns.t;  (** per-packet forward-path jitter (reordering); 0 = off *)
  rate_schedule : (Time_ns.t * float) list;
      (** piecewise-constant bottleneck capacity (cellular-style); empty =
          the fixed [rate_bps] *)
  faults : Ccp_ipc.Fault_plan.t;
      (** IPC fault injection; agent outages additionally reset the agent's
          flow table at each restart instant. [Fault_plan.none] = clean. *)
  perturb : Ccp_perturb.Perturb_plan.t;
      (** measurement-noise perturbation applied to every flow's datapath
          sampling (RTT jitter, delivery-rate error, stretch ACKs, token-
          bucket policer); orthogonal to [faults].
          [Perturb_plan.none] (the default) = clean measurements, with
          runs byte-identical to an unperturbed build. *)
  agent_overload : Ccp_agent.Agent.overload option;
      (** agent-side report-queue bounds and budgeted dispatch; [None]
          (the default) dispatches every message synchronously *)
  agent_degrade : Ccp_agent.Agent.degrade option;
      (** per-flow agent-side quarantine of repeatedly failing handlers
          with back-off re-admission; [None] = never degrade *)
  agent_flow_pool : int option;
      (** capacity of the agent's preallocated per-flow slot pool
          ({!Ccp_agent.Flow_table}); [None] (the default) keeps the
          open-ended hashtable registry *)
  checkpoint_interval : Time_ns.t option;
      (** snapshot the agent's per-flow state ({!Ccp_ipc.Checkpoint})
          this often, and replay the latest snapshot after each
          [faults] agent-outage restart (warm restart); [None] (the
          default) restarts cold. No effect without agent outages. *)
  inspect : (handles -> unit) option;
      (** called once after CCP wiring when any flow is CCP; ignored
          otherwise *)
  obs : Ccp_obs.Obs.t option;
      (** observability bundle threaded through the channel, datapath
          extension, agent, and every TCP flow; [None] (the default)
          keeps all of them on their zero-cost paths *)
  obs_flow_sample_interval : Time_ns.t;
      (** minimum spacing of per-flow [Flow_sample] trace events
          (default 10 ms); zero records one per ACK *)
}

val default_config : rate_bps:float -> base_rtt:Time_ns.t -> duration:Time_ns.t -> config
(** Buffer defaults to 1 BDP; seed 42; no ECN; no warmup; no offloads;
    Netlink-idle IPC; 100 ms sampling; observability off. *)

type flow_result = {
  flow_id : int;
  cc_name : string;
  delivered_bytes : int;  (** in-order bytes at the receiver, whole run *)
  goodput_bps : float;  (** over [warmup, duration] *)
  mean_rtt : Time_ns.t;
  segments_sent : int;  (** transmissions, retransmissions included *)
  retransmits : int;
  timeouts : int;
  recoveries : int;
  final_cwnd : int;
}

type result = {
  config : config;
  utilization : float;  (** total goodput / capacity over the measured window *)
  median_rtt : Time_ns.t;  (** across all per-ACK samples of all flows *)
  p95_rtt : Time_ns.t;
  p99_rtt : Time_ns.t;  (** incast's tail metric: p99 over the same samples *)
  flows : flow_result list;
  drops : int;
  ecn_marks : int;
  trace : Trace.t;
      (** series: ["cwnd.<i>"] (bytes, per change), ["rtt_ms.<i>"] (per
          sample), ["throughput_mbps.<i>"] and ["queue_bytes"] (sampled) *)
  jain_index : float;  (** over per-flow goodputs of flows active at the end *)
  agent_stats : agent_stats option;  (** present when any flow is CCP *)
  sender_cpu : cpu_stats option;  (** present when offloads are modelled *)
  receiver_cpu : cpu_stats option;
  perturb_stats : Ccp_perturb.Sampler.stats option;
      (** summed over all flows; present when [config.perturb] is
          non-empty *)
}

and agent_stats = {
  reports : int;
  urgents : int;
  installs : int;
  handler_errors : int;
  ipc_bytes_to_agent : int;
  ipc_bytes_to_datapath : int;
  fallbacks : int;  (** watchdog fallback activations across all flows *)
  fallback_probes : int;  (** [Ready] re-handshakes sent from fallback *)
  ipc_faults : Ccp_ipc.Channel.fault_stats;  (** all-zero under a clean channel *)
  installs_admitted : int;  (** installs the datapath's admission control accepted *)
  installs_refused : int;  (** installs rejected with an [Install_result] reason *)
  quarantines : int;  (** guard-envelope quarantines entered *)
  guard_incidents : int;  (** total runtime-guardrail incidents, all flows *)
  decode_failures : int;  (** IPC deliveries whose bytes failed to decode *)
  reports_shed : int;  (** reports dropped by agent overload control *)
  degradations : int;  (** agent-side per-flow quarantine entries *)
  checkpoints_taken : int;  (** agent state snapshots written *)
  warm_restores : int;  (** flows re-registered with snapshot state applied *)
  quarantine_probes : int;
      (** [Ready] re-admission probes from quarantine back-off timers *)
  max_queue_wait : Time_ns.t;
      (** longest any dispatched report sat in the overload queue —
          the starvation bound; zero with [agent_overload] off *)
}

and cpu_stats = {
  busy_fraction : float;  (** busy time / run duration *)
  operations : int;
  segments_total : int;
  mean_batch : float;
}

val run : config -> result
