open Ccp_util
open Ccp_eventsim
open Ccp_net
open Ccp_datapath

type cc_spec =
  | Native_cc of (unit -> Congestion_iface.t)
  | Ccp_cc of Ccp_agent.Algorithm.t

type flow_spec = {
  cc : cc_spec;
  start_at : Time_ns.t;
  app_limit_bytes : int option;
  delayed_ack_every : int;
}

let flow ?(start_at = Time_ns.zero) ?app_limit_bytes ?(delayed_ack_every = 1) cc =
  { cc; start_at; app_limit_bytes; delayed_ack_every }

type offload_spec = {
  sender : Offload.Sender_path.config;
  receiver : Offload.Receiver_path.config;
}

(* Live handles to the CCP plumbing of a running experiment, for tests
   that need to observe or poke mid-run (schedule assertions on h_sim). *)
type handles = {
  h_sim : Sim.t;
  h_channel : Ccp_ipc.Channel.t;
  h_datapath : Ccp_ext.t;
  h_agent : Ccp_agent.Agent.t;
}

type config = {
  seed : int;
  rate_bps : float;
  base_rtt : Time_ns.t;
  buffer_bytes : int;
  ecn_threshold_bytes : int option;
  duration : Time_ns.t;
  warmup : Time_ns.t;
  flows : flow_spec list;
  ipc : Ccp_ipc.Latency_model.t;
  ipc_batching : Ccp_ipc.Channel.batching option;
      (* cross-flow report batching watermarks on the IPC channel;
         None = one wire frame per message, the original framing *)
  datapath : Ccp_ext.config;
  tcp : Tcp_flow.config;
  sample_interval : Time_ns.t;
  offloads : offload_spec option;
  policy : (Ccp_agent.Algorithm.flow_info -> Ccp_agent.Policy.t) option;
  jitter : Time_ns.t;
  rate_schedule : (Time_ns.t * float) list;
  faults : Ccp_ipc.Fault_plan.t;
  perturb : Ccp_perturb.Perturb_plan.t;
      (* measurement-noise perturbation on every flow's datapath
         sampling; Perturb_plan.none = clean measurements *)
  agent_overload : Ccp_agent.Agent.overload option;
  agent_degrade : Ccp_agent.Agent.degrade option;
  agent_flow_pool : int option;
      (* slot-pool capacity for the agent's per-flow registry;
         None = open-ended hashtable *)
  checkpoint_interval : Time_ns.t option;
      (* snapshot agent state this often and replay the latest snapshot
         after each agent-outage restart; None = cold restarts *)
  inspect : (handles -> unit) option;
  obs : Ccp_obs.Obs.t option;
  obs_flow_sample_interval : Time_ns.t;
      (* throttle for per-flow Flow_sample trace events; zero = every ACK *)
}

let default_config ~rate_bps ~base_rtt ~duration =
  let bdp = int_of_float (rate_bps *. Time_ns.to_float_sec base_rtt /. 8.0) in
  {
    seed = 42;
    rate_bps;
    base_rtt;
    buffer_bytes = max 3000 bdp;
    ecn_threshold_bytes = None;
    duration;
    warmup = Time_ns.zero;
    flows = [];
    ipc = Ccp_ipc.Latency_model.netlink_idle;
    ipc_batching = None;
    datapath = Ccp_ext.default_config;
    tcp = Tcp_flow.default_config;
    sample_interval = Time_ns.ms 100;
    offloads = None;
    policy = None;
    jitter = Time_ns.zero;
    rate_schedule = [];
    faults = Ccp_ipc.Fault_plan.none;
    perturb = Ccp_perturb.Perturb_plan.none;
    agent_overload = None;
    agent_degrade = None;
    agent_flow_pool = None;
    checkpoint_interval = None;
    inspect = None;
    obs = None;
    obs_flow_sample_interval = Time_ns.ms 10;
  }

type flow_result = {
  flow_id : int;
  cc_name : string;
  delivered_bytes : int;
  goodput_bps : float;
  mean_rtt : Time_ns.t;
  segments_sent : int;
  retransmits : int;
  timeouts : int;
  recoveries : int;
  final_cwnd : int;
}

type result = {
  config : config;
  utilization : float;
  median_rtt : Time_ns.t;
  p95_rtt : Time_ns.t;
  p99_rtt : Time_ns.t;
  flows : flow_result list;
  drops : int;
  ecn_marks : int;
  trace : Trace.t;
  jain_index : float;
  agent_stats : agent_stats option;
  sender_cpu : cpu_stats option;
  receiver_cpu : cpu_stats option;
  perturb_stats : Ccp_perturb.Sampler.stats option;
}

and agent_stats = {
  reports : int;
  urgents : int;
  installs : int;
  handler_errors : int;
  ipc_bytes_to_agent : int;
  ipc_bytes_to_datapath : int;
  fallbacks : int;
  fallback_probes : int;
  ipc_faults : Ccp_ipc.Channel.fault_stats;
  installs_admitted : int;
  installs_refused : int;
  quarantines : int;
  guard_incidents : int;
  decode_failures : int;
  reports_shed : int;
  degradations : int;
  checkpoints_taken : int;
  warm_restores : int;
  quarantine_probes : int;
  max_queue_wait : Time_ns.t;
}

and cpu_stats = {
  busy_fraction : float;
  operations : int;
  segments_total : int;
  mean_batch : float;
}

(* Wiring for one flow: sender, receiver, and their attachment to the
   dumbbell (possibly through the offload CPU model). *)
type flow_instance = {
  spec : flow_spec;
  id : int;
  sender : Tcp_flow.t;
  receiver : Tcp_receiver.t;
  rtt_samples : Stats.Samples.t;
  sampler : Ccp_perturb.Sampler.t option;
  mutable delivered_at_warmup : int;
}

let has_ccp_flows (config : config) =
  List.exists (fun f -> match f.cc with Ccp_cc _ -> true | Native_cc _ -> false) config.flows

let run (config : config) =
  if config.flows = [] then invalid_arg "Experiment.run: no flows";
  let sim = Sim.create ~seed:config.seed () in
  let trace = Trace.create sim in
  let checkpoints_taken = ref 0 in
  let dumbbell =
    Topology.Dumbbell.create ~sim ~rate_bps:config.rate_bps ~base_rtt:config.base_rtt
      ~buffer_bytes:config.buffer_bytes ?ecn_threshold_bytes:config.ecn_threshold_bytes
      ~jitter:config.jitter ~rate_schedule:config.rate_schedule ()
  in
  (* Shared CCP plumbing, created only if some flow needs it. *)
  let ccp_parts =
    if not (has_ccp_flows config) then None
    else begin
      let channel =
        Ccp_ipc.Channel.create ~sim ~latency:config.ipc ~faults:config.faults
          ?batching:config.ipc_batching ?obs:config.obs ()
      in
      let ccp_ext = Ccp_ext.create ~sim ~channel ~config:config.datapath ?obs:config.obs () in
      let algorithms = Hashtbl.create 4 in
      let choose (info : Ccp_agent.Algorithm.flow_info) =
        match Hashtbl.find_opt algorithms info.Ccp_agent.Algorithm.flow with
        | Some algo -> algo
        | None -> failwith "Experiment: unknown CCP flow"
      in
      let agent =
        Ccp_agent.Agent.create ~sim ~channel ~choose
          ?policy:config.policy ?overload:config.agent_overload
          ?degrade:config.agent_degrade ?flow_pool:config.agent_flow_pool
          ?obs:config.obs ()
      in
      (* Warm-restart support: snapshot the agent's per-flow state on a
         timer, keeping only the latest encoded blob — exactly what a
         real agent persisting to a state file would have available
         after a crash. *)
      let latest_checkpoint = ref None in
      (match config.checkpoint_interval with
      | Some interval when Time_ns.is_positive interval ->
        let rec tick () =
          latest_checkpoint :=
            Some (Ccp_ipc.Checkpoint.encode (Ccp_agent.Agent.checkpoint agent));
          incr checkpoints_taken;
          ignore (Sim.schedule_after sim ~delay:interval (fun () -> tick ()))
        in
        ignore (Sim.schedule_after sim ~delay:interval (fun () -> tick ()))
      | Some _ | None -> ());
      (* A crashed agent loses its per-flow state; model the restart as a
         reset at the end of each outage. The channel already blackholes
         its traffic for the interval, so the pair gives the full crash:
         silence, then a process waiting for Ready probes — amnesiac on a
         cold restart, or staged with the latest checkpoint on a warm
         one. A blob that fails to decode restores nothing: a corrupt
         state file must never be worse than no state file. *)
      List.iter
        (fun (o : Ccp_ipc.Fault_plan.interval) ->
          ignore
            (Sim.schedule sim ~at:o.Ccp_ipc.Fault_plan.until (fun () ->
                 Ccp_agent.Agent.reset agent;
                 match !latest_checkpoint with
                 | Some blob -> (
                   match Ccp_ipc.Checkpoint.decode blob with
                   | Ok snapshot -> Ccp_agent.Agent.restore agent snapshot
                   | Error _ -> ())
                 | None -> ())))
        config.faults.Ccp_ipc.Fault_plan.agent_outages;
      Option.iter
        (fun inspect ->
          inspect { h_sim = sim; h_channel = channel; h_datapath = ccp_ext; h_agent = agent })
        config.inspect;
      Some (channel, ccp_ext, agent, algorithms)
    end
  in
  (* Offload paths (Figure 5). One sender path and one receiver path per
     flow: each host's stack is modelled independently. *)
  let make_flow id spec =
    let cc =
      match spec.cc with
      | Native_cc make_cc -> make_cc ()
      | Ccp_cc algo ->
        let _, ccp_ext, _, algorithms = Option.get ccp_parts in
        Hashtbl.replace algorithms id algo;
        Ccp_ext.congestion_control ccp_ext
    in
    let tcp_config =
      {
        config.tcp with
        app_limit_bytes = spec.app_limit_bytes;
        ecn_capable = config.ecn_threshold_bytes <> None || config.tcp.ecn_capable;
      }
    in
    (* Per-flow measurement-noise sampler. Seeded from the experiment
       seed and the flow id — never from the simulator's RNG — so arming
       a perturbation shifts no draw the rest of the simulation makes,
       and the empty plan leaves runs byte-identical. *)
    let sampler =
      if Ccp_perturb.Perturb_plan.is_none config.perturb then None
      else
        Some
          (Ccp_perturb.Sampler.create
             ~seed:(config.seed lxor ((id + 1) * 0x9E3779B9))
             config.perturb)
    in
    (* Receiver side: ACKs go straight onto the reverse path. Stretch
       ACKs are the receiver's own delayed-ACK machinery turned up, so
       dup-ACK/ECN immediacy (and with it loss recovery) is preserved. *)
    let receiver =
      Tcp_receiver.create ~flow:id
        ~send_ack:(fun ack -> Topology.Dumbbell.send_ack dumbbell ack)
        ~delayed_ack_every:
          (max spec.delayed_ack_every
             (Ccp_perturb.Perturb_plan.ack_stretch_every config.perturb))
        ()
    in
    let receiver_path =
      Option.map
        (fun (off : offload_spec) ->
          Offload.Receiver_path.create ~sim ~config:off.receiver ~deliver:(fun batch ->
              Tcp_receiver.on_batch receiver batch))
        config.offloads
    in
    let data_sink =
      match receiver_path with
      | Some path -> fun pkt -> Offload.Receiver_path.receive path pkt
      | None -> fun pkt -> Tcp_receiver.on_data receiver pkt
    in
    (* Sender side: segments and incoming ACKs pass through the host CPU
       model if present. The flow's real ACK handler is attached to the
       path's ack_out after creation, breaking the definition cycle. *)
    let sender_ref = ref None in
    (* The token-bucket policer sits at the link injection point (after
       any offload path), dropping data packets that find the bucket
       empty — loss without queueing delay. *)
    let inject_data =
      match sampler with
      | Some s when (Ccp_perturb.Sampler.plan s).Ccp_perturb.Perturb_plan.policer <> None ->
        fun (pkt : Packet.t) ->
          if Ccp_perturb.Sampler.admit_data s ~now:(Sim.now sim) ~bytes:pkt.Packet.wire_size
          then Topology.Dumbbell.send_data dumbbell pkt
      | Some _ | None -> fun pkt -> Topology.Dumbbell.send_data dumbbell pkt
    in
    let sender_path =
      Option.map
        (fun (off : offload_spec) ->
          Offload.Sender_path.create ~sim ~config:off.sender ~out:inject_data
            ~ack_out:(fun ack ->
              match !sender_ref with
              | Some sender -> Tcp_flow.on_ack sender ack
              | None -> ())
            ())
        config.offloads
    in
    let transmit =
      match sender_path with
      | Some path -> fun pkt -> Offload.Sender_path.send path pkt
      | None -> inject_data
    in
    let sender =
      Tcp_flow.create ~sim ~flow:id ~config:tcp_config ~cc ~transmit ?obs:config.obs
        ~obs_sample_interval:config.obs_flow_sample_interval ?perturb:sampler ()
    in
    sender_ref := Some sender;
    let ack_sink =
      match sender_path with
      | Some path -> fun ack -> Offload.Sender_path.receive_ack path ack
      | None -> fun ack -> Tcp_flow.on_ack sender ack
    in
    Topology.Dumbbell.register dumbbell ~flow:id ~data_sink ~ack_sink;
    let rtt_samples = Stats.Samples.create () in
    let cwnd_series = Printf.sprintf "cwnd.%d" id in
    Tcp_flow.set_cwnd_listener sender (fun _at cwnd ->
        Trace.add trace ~series:cwnd_series (float_of_int cwnd));
    let rtt_series = Printf.sprintf "rtt_ms.%d" id in
    Tcp_flow.set_rtt_listener sender (fun at rtt ->
        if Time_ns.compare at config.warmup >= 0 then
          Stats.Samples.add rtt_samples (Time_ns.to_float_us rtt);
        Trace.add trace ~series:rtt_series (Time_ns.to_float_ms rtt));
    ignore (Sim.schedule sim ~at:spec.start_at (fun () -> Tcp_flow.start sender));
    ({ spec; id; sender; receiver; rtt_samples; sampler; delivered_at_warmup = 0 },
     sender_path, receiver_path)
  in
  let instances = List.mapi (fun id spec -> make_flow id spec) config.flows in
  let flows_only = List.map (fun (f, _, _) -> f) instances in
  (* Periodic series: per-flow throughput and bottleneck queue depth. *)
  List.iter
    (fun inst ->
      let series = Printf.sprintf "throughput_mbps.%d" inst.id in
      let last = ref 0 in
      Trace.sample_every trace ~series ~every:config.sample_interval (fun () ->
          let delivered = Tcp_receiver.delivered_bytes inst.receiver in
          let delta = delivered - !last in
          last := delivered;
          float_of_int (delta * 8) /. Time_ns.to_float_sec config.sample_interval /. 1e6))
    flows_only;
  Trace.sample_every trace ~series:"queue_bytes" ~every:config.sample_interval (fun () ->
      float_of_int (Queue_disc.backlog_bytes (Link.qdisc (Topology.Dumbbell.forward dumbbell))));
  (* Mirror the queue series into the flight recorder. *)
  (match config.obs with
  | Some obs when obs.Ccp_obs.Obs.recorder <> None ->
    let qdisc = Link.qdisc (Topology.Dumbbell.forward dumbbell) in
    let rec sample_queue () =
      Ccp_obs.Obs.record obs ~at:(Sim.now sim)
        (Ccp_obs.Recorder.Queue_sample { bytes = Queue_disc.backlog_bytes qdisc });
      ignore (Sim.schedule_after sim ~delay:config.sample_interval (fun () -> sample_queue ()))
    in
    ignore (Sim.schedule sim ~at:Time_ns.zero (fun () -> sample_queue ()))
  | Some _ | None -> ());
  (* Telemetry: drive the windowed sampler on its own sim-time tick. The
     loop exists only when the bundle was created with [~telemetry:true],
     so a plain run schedules nothing new. *)
  (match config.obs with
  | Some { Ccp_obs.Obs.timeseries = Some ts; _ } ->
    let interval = Ccp_obs.Timeseries.tick_interval_ns ts in
    let rec telemetry_tick () =
      ignore (Ccp_obs.Timeseries.tick ts ~now:(Sim.now sim) : bool);
      ignore (Sim.schedule_after sim ~delay:interval (fun () -> telemetry_tick ()))
    in
    ignore (Sim.schedule sim ~at:Time_ns.zero (fun () -> telemetry_tick ()))
  | Some _ | None -> ());
  (* Snapshot delivered bytes at the end of warmup for goodput accounting. *)
  if Time_ns.is_positive config.warmup then
    ignore
      (Sim.schedule sim ~at:config.warmup (fun () ->
           List.iter
             (fun inst ->
               inst.delivered_at_warmup <- Tcp_receiver.delivered_bytes inst.receiver)
             flows_only));
  Sim.run ~until:config.duration sim;
  (* Close the partial telemetry window so tail activity (and its health
     evaluation) is not lost. *)
  (match config.obs with
  | Some { Ccp_obs.Obs.timeseries = Some ts; _ } ->
    Ccp_obs.Timeseries.flush ts ~now:(Sim.now sim)
  | Some _ | None -> ());
  (* --- collect results --- *)
  let measured_window = Time_ns.sub config.duration config.warmup in
  let measured_seconds = Time_ns.to_float_sec measured_window in
  let flow_results =
    List.map
      (fun inst ->
        let delivered = Tcp_receiver.delivered_bytes inst.receiver in
        let measured = delivered - inst.delivered_at_warmup in
        let goodput =
          if measured_seconds > 0.0 then float_of_int (measured * 8) /. measured_seconds
          else 0.0
        in
        let mean_rtt =
          if Stats.Samples.count inst.rtt_samples = 0 then Time_ns.zero
          else Time_ns.of_float_sec (Stats.Samples.mean inst.rtt_samples *. 1e-6)
        in
        {
          flow_id = inst.id;
          cc_name =
            (match inst.spec.cc with
            | Native_cc make_cc -> (make_cc ()).Congestion_iface.name
            | Ccp_cc algo -> algo.Ccp_agent.Algorithm.name);
          delivered_bytes = delivered;
          goodput_bps = goodput;
          mean_rtt;
          segments_sent = Tcp_flow.segments_sent inst.sender;
          retransmits = Tcp_flow.retransmits inst.sender;
          timeouts = Tcp_flow.timeouts inst.sender;
          recoveries = Tcp_flow.recoveries inst.sender;
          final_cwnd = Tcp_flow.cwnd inst.sender;
        })
      flows_only
  in
  let all_rtts = Stats.Samples.create () in
  List.iter
    (fun inst ->
      Array.iter (Stats.Samples.add all_rtts) (Stats.Samples.to_array inst.rtt_samples))
    flows_only;
  let median_rtt, p95_rtt, p99_rtt =
    if Stats.Samples.count all_rtts = 0 then (Time_ns.zero, Time_ns.zero, Time_ns.zero)
    else
      ( Time_ns.of_float_sec (Stats.Samples.percentile all_rtts 50.0 *. 1e-6),
        Time_ns.of_float_sec (Stats.Samples.percentile all_rtts 95.0 *. 1e-6),
        Time_ns.of_float_sec (Stats.Samples.percentile all_rtts 99.0 *. 1e-6) )
  in
  let total_goodput = List.fold_left (fun acc r -> acc +. r.goodput_bps) 0.0 flow_results in
  let utilization = total_goodput /. config.rate_bps in
  let qdisc = Link.qdisc (Topology.Dumbbell.forward dumbbell) in
  let agent_stats =
    Option.map
      (fun (channel, ccp_ext, agent, _) ->
        {
          reports = Ccp_agent.Agent.reports_received agent;
          urgents = Ccp_agent.Agent.urgents_received agent;
          installs = Ccp_agent.Agent.installs_sent agent;
          handler_errors = Ccp_agent.Agent.handler_errors agent;
          ipc_bytes_to_agent = Ccp_ipc.Channel.bytes_sent channel Ccp_ipc.Channel.Datapath_end;
          ipc_bytes_to_datapath = Ccp_ipc.Channel.bytes_sent channel Ccp_ipc.Channel.Agent_end;
          fallbacks = Ccp_ext.fallbacks_triggered ccp_ext;
          fallback_probes = Ccp_ext.fallback_probes_sent ccp_ext;
          ipc_faults = Ccp_ipc.Channel.fault_stats channel;
          installs_admitted = Ccp_ext.installs_accepted ccp_ext;
          installs_refused = Ccp_ext.installs_rejected ccp_ext;
          quarantines = Ccp_ext.quarantines_triggered ccp_ext;
          guard_incidents = Ccp_ext.guard_incident_total ccp_ext;
          decode_failures = Ccp_ipc.Channel.decode_failures channel;
          reports_shed = Ccp_agent.Agent.reports_shed agent;
          degradations = Ccp_agent.Agent.degradations agent;
          checkpoints_taken = !checkpoints_taken;
          warm_restores = Ccp_agent.Agent.warm_restores agent;
          quarantine_probes = Ccp_ext.quarantine_probes_sent ccp_ext;
          max_queue_wait = Ccp_agent.Agent.max_queue_wait agent;
        })
      ccp_parts
  in
  let duration_s = Time_ns.to_float_sec config.duration in
  let cpu_stats_of_sender paths =
    match paths with
    | [] -> None
    | _ ->
      let busy =
        List.fold_left
          (fun acc p -> acc +. Time_ns.to_float_sec (Offload.Sender_path.busy_time p))
          0.0 paths
      in
      let ops = List.fold_left (fun acc p -> acc + Offload.Sender_path.operations p) 0 paths in
      let segs = List.fold_left (fun acc p -> acc + Offload.Sender_path.segments p) 0 paths in
      Some
        {
          busy_fraction = busy /. duration_s;
          operations = ops;
          segments_total = segs;
          mean_batch = (if ops = 0 then 0.0 else float_of_int segs /. float_of_int ops);
        }
  in
  let cpu_stats_of_receiver paths =
    match paths with
    | [] -> None
    | _ ->
      let busy =
        List.fold_left
          (fun acc p -> acc +. Time_ns.to_float_sec (Offload.Receiver_path.busy_time p))
          0.0 paths
      in
      let ops = List.fold_left (fun acc p -> acc + Offload.Receiver_path.operations p) 0 paths in
      let segs =
        List.fold_left (fun acc p -> acc + Offload.Receiver_path.segments p) 0 paths
      in
      Some
        {
          busy_fraction = busy /. duration_s;
          operations = ops;
          segments_total = segs;
          mean_batch = (if ops = 0 then 0.0 else float_of_int segs /. float_of_int ops);
        }
  in
  let sender_paths = List.filter_map (fun (_, s, _) -> s) instances in
  let receiver_paths = List.filter_map (fun (_, _, r) -> r) instances in
  {
    config;
    utilization;
    median_rtt;
    p95_rtt;
    p99_rtt;
    flows = flow_results;
    drops = Queue_disc.dropped_packets qdisc;
    ecn_marks = Queue_disc.marked_packets qdisc;
    trace;
    jain_index =
      Stats.jain_fairness (Array.of_list (List.map (fun r -> r.goodput_bps) flow_results));
    agent_stats;
    sender_cpu = cpu_stats_of_sender sender_paths;
    receiver_cpu = cpu_stats_of_receiver receiver_paths;
    perturb_stats =
      (match List.filter_map (fun inst -> inst.sampler) flows_only with
      | [] -> None
      | samplers ->
        Some
          (List.fold_left
             (fun acc s -> Ccp_perturb.Sampler.merge_stats acc (Ccp_perturb.Sampler.stats s))
             Ccp_perturb.Sampler.zero_stats samplers));
  }
