open Ccp_agent
open Ccp_lang.Ast

type mode = [ `Vector | `Fold ]

type state = {
  alpha : float;
  beta : float;
  mutable cwnd : int;  (* bytes *)
  mutable base_rtt_us : float;
  mutable slow_start : bool;
}

(* The §2.4 fold: basertt tracks the minimum RTT; delta accumulates +1 for
   every packet that saw fewer than alpha queued packets and -1 for every
   packet that saw more than beta. The queue estimate uses the refreshed
   basertt, as the paper's foldFn does, and the window it divides by
   includes the delta accumulated so far — the paper's vector loop updates
   v.cwnd between packets, and omitting that feedback makes the fold
   overshoot by the whole batch size. *)
let vegas_fold ~alpha ~beta =
  let fresh_base = Call ("min", [ Var "basertt"; Pkt "rtt_us" ]) in
  let effective_cwnd_pkts = Bin (Add, Bin (Div, Var "cwnd", Var "mss"), Var "delta") in
  let in_queue =
    Bin
      ( Div,
        Bin (Mul, Bin (Sub, Pkt "rtt_us", fresh_base), effective_cwnd_pkts),
        Pkt "rtt_us" )
  in
  {
    init =
      [
        (* Seed from the flow's own estimate when one exists. *)
        ("basertt", Call ("if_gt", [ Var "minrtt_us"; Const 0.0; Var "minrtt_us"; Const 1e12 ]));
        ("delta", Const 0.0);
        ("acked", Const 0.0);
      ];
    update =
      [
        ("basertt", fresh_base);
        ( "delta",
          Bin
            ( Add,
              Var "delta",
              Call
                ( "if_lt",
                  [
                    in_queue;
                    Const alpha;
                    Const 1.0;
                    Call ("if_gt", [ in_queue; Const beta; Const (-1.0); Const 0.0 ]);
                  ] ) ) );
        ("acked", Bin (Add, Var "acked", Pkt "bytes_acked"));
      ];
  }

let create_with ?(alpha = 2.0) ?(beta = 4.0) ?(interval_rtts = 1.0) mode =
  let make (handle : Algorithm.handle) =
    let mss = handle.info.mss in
    let st =
      { alpha; beta; cwnd = handle.info.init_cwnd; base_rtt_us = infinity; slow_start = true }
    in
    let push () =
      match mode with
      | `Vector ->
        handle.install
          (Prog.vector_program ~interval_rtts ~fields:[ "rtt_us"; "bytes_acked" ] ~cwnd:st.cwnd ())
      | `Fold ->
        handle.install
          (program
             [
               Measure (Fold (vegas_fold ~alpha ~beta));
               Cwnd (Prog.ci st.cwnd);
               Wait_rtts (Prog.c interval_rtts);
               Report;
             ])
    in
    let cwnd_pkts () = float_of_int st.cwnd /. float_of_int mss in
    let in_queue rtt_us =
      if rtt_us <= 0.0 || st.base_rtt_us = infinity then 0.0
      else (rtt_us -. st.base_rtt_us) /. rtt_us *. cwnd_pkts ()
    in
    (* Vegas's conservative slow start: double while the queue stays below
       alpha, stop growing exponentially at the first sign of queueing. *)
    let slow_start_step ~max_in_queue ~acked =
      if max_in_queue >= st.alpha then st.slow_start <- false
      else st.cwnd <- st.cwnd + min acked st.cwnd
    in
    (* Vegas makes one +-1 segment decision per RTT (the Linux
       implementation counts one diff test per window). Applying the
       batch's per-packet votes unclamped would move the window by the
       whole batch size each RTT and oscillate violently, so the handlers
       reduce the batch to a single signed step. *)
    let apply_step vote =
      if vote > 0.5 then st.cwnd <- st.cwnd + mss
      else if vote < -0.5 then st.cwnd <- max (2 * mss) (st.cwnd - mss)
    in
    let on_report_vector (report : Ccp_ipc.Message.vector_report) =
      let rtt_col = Option.get (Algorithm.column report "rtt_us") in
      let bytes_col = Option.get (Algorithm.column report "bytes_acked") in
      let sum_inq = ref 0.0 in
      let samples = ref 0 in
      let acked = ref 0 in
      Array.iter
        (fun row ->
          let rtt = row.(rtt_col) in
          if rtt > 0.0 then begin
            st.base_rtt_us <- Float.min st.base_rtt_us rtt;
            sum_inq := !sum_inq +. in_queue rtt;
            incr samples;
            acked := !acked + int_of_float row.(bytes_col)
          end)
        report.rows;
      let avg_inq = if !samples = 0 then 0.0 else !sum_inq /. float_of_int !samples in
      if st.slow_start then slow_start_step ~max_in_queue:avg_inq ~acked:!acked
      else if avg_inq < st.alpha then apply_step 1.0
      else if avg_inq > st.beta then apply_step (-1.0);
      push ()
    in
    let on_report (report : Ccp_ipc.Message.report) =
      let basertt = Algorithm.field_exn report "basertt" in
      let delta = Algorithm.field_exn report "delta" in
      let acked = int_of_float (Algorithm.field_exn report "acked") in
      let lastrtt = Algorithm.field_exn report "_rtt_us" in
      if basertt < 1e12 then st.base_rtt_us <- Float.min st.base_rtt_us basertt;
      if st.slow_start then slow_start_step ~max_in_queue:(in_queue lastrtt) ~acked
      else apply_step delta;
      push ()
    in
    let on_urgent (urgent : Ccp_ipc.Message.urgent) =
      st.slow_start <- false;
      (match urgent.kind with
      | Ccp_ipc.Message.Dup_ack_loss | Ccp_ipc.Message.Ecn ->
        st.cwnd <- max (2 * mss) (3 * st.cwnd / 4)
      | Ccp_ipc.Message.Timeout -> st.cwnd <- mss);
      push ()
    in
    { Algorithm.no_op_handlers with on_ready = push; on_report; on_report_vector; on_urgent }
  in
  let name = match mode with `Vector -> "ccp-vegas-vector" | `Fold -> "ccp-vegas-fold" in
  { Algorithm.name; make }

let create mode = create_with mode
