open Ccp_agent

type state = {
  ewma_alpha : float;
  addstep : float;  (* bytes/s additive increase *)
  beta : float;
  t_low_factor : float;
  t_high_factor : float;
  hai_threshold : int;
  mutable rate : float;  (* bytes/s *)
  mutable prev_rtt_us : float;
  mutable rtt_diff_us : float;  (* EWMA of consecutive RTT differences *)
  mutable min_rtt_us : float;
  mutable completion_events : int;  (* consecutive gradient<=0 rounds (HAI mode) *)
}

let create_with ?(ewma_alpha = 0.2) ?(addstep_bytes_per_sec = 600_000.0) ?(beta = 0.8)
    ?(t_low_factor = 1.05) ?(t_high_factor = 1.5) ?(hai_threshold = 5) () =
  let make (handle : Algorithm.handle) =
    let st =
      {
        ewma_alpha;
        addstep = addstep_bytes_per_sec;
        beta;
        t_low_factor;
        t_high_factor;
        hai_threshold;
        rate = float_of_int handle.info.init_cwnd /. 0.010;
        prev_rtt_us = 0.0;
        rtt_diff_us = 0.0;
        min_rtt_us = infinity;
        completion_events = 0;
      }
    in
    let push () = handle.install (Prog.rate_program ~rate:st.rate ()) in
    let on_report report =
      let pkts = Algorithm.field_exn report "pkts" in
      (* Sub-microsecond RTT aggregates are measurement artifacts, not
         network signal (perturbed samples clamp at 1 ns): a near-zero
         [min_rtt_us] divisor explodes the gradient and a near-zero
         [new_rtt] explodes [t_high /. new_rtt], so both are ignored
         below 1 us rather than fed into the MD terms. *)
      let new_rtt = if pkts > 0.0 then Algorithm.field_exn report "sumrtt" /. pkts else 0.0 in
      if new_rtt >= 1.0 then begin
        let minrtt = Algorithm.field_exn report "minrtt" in
        if minrtt >= 1.0 && minrtt < 1e12 then st.min_rtt_us <- Float.min st.min_rtt_us minrtt;
        if st.prev_rtt_us > 0.0 && st.min_rtt_us < infinity then begin
          let diff = new_rtt -. st.prev_rtt_us in
          st.rtt_diff_us <-
            ((1.0 -. st.ewma_alpha) *. st.rtt_diff_us) +. (st.ewma_alpha *. diff);
          let gradient = st.rtt_diff_us /. st.min_rtt_us in
          let t_low = st.t_low_factor *. st.min_rtt_us in
          let t_high = st.t_high_factor *. st.min_rtt_us in
          if new_rtt < t_low then begin
            st.completion_events <- 0;
            st.rate <- st.rate +. st.addstep
          end
          else if new_rtt > t_high then begin
            st.completion_events <- 0;
            st.rate <- st.rate *. (1.0 -. (st.beta *. (1.0 -. (t_high /. new_rtt))))
          end
          else if gradient <= 0.0 then begin
            st.completion_events <- st.completion_events + 1;
            (* Hyperactive increase after N calm rounds, per the paper. *)
            let n = if st.completion_events >= st.hai_threshold then 5.0 else 1.0 in
            st.rate <- st.rate +. (n *. st.addstep)
          end
          else begin
            st.completion_events <- 0;
            st.rate <- st.rate *. (1.0 -. (st.beta *. gradient))
          end;
          st.rate <- Float.max (float_of_int handle.info.mss /. 0.1) st.rate
        end;
        st.prev_rtt_us <- new_rtt
      end;
      push ()
    in
    let on_urgent (urgent : Ccp_ipc.Message.urgent) =
      match urgent.kind with
      | Ccp_ipc.Message.Timeout ->
        st.rate <- Float.max (float_of_int handle.info.mss /. 0.1) (st.rate /. 2.0);
        push ()
      | Ccp_ipc.Message.Dup_ack_loss | Ccp_ipc.Message.Ecn ->
        st.rate <- st.rate *. st.beta;
        push ()
    in
    { Algorithm.no_op_handlers with on_ready = push; on_report; on_urgent }
  in
  { Algorithm.name = "ccp-timely"; make }

let create () = create_with ()
