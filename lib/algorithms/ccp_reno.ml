open Ccp_agent

type state = {
  mutable cwnd : int;  (* agent's shadow of the window, bytes *)
  mutable ssthresh : int;
  mutable acked_accum : int;
  mutable last_ecn_us : float;
}

let create_with ?(interval_rtts = 1.0) ?(react_to_ecn = true) () =
  let make (handle : Algorithm.handle) =
    let mss = handle.info.mss in
    let st =
      {
        cwnd = handle.info.init_cwnd;
        ssthresh = max_int / 2;
        acked_accum = 0;
        last_ecn_us = 0.0;
      }
    in
    let push () = handle.install (Prog.window_program ~interval_rtts ~cwnd:st.cwnd ()) in
    let halve () =
      st.ssthresh <- max (st.cwnd / 2) (2 * mss);
      st.cwnd <- st.ssthresh
    in
    let on_report report =
      let acked = int_of_float (Algorithm.field_exn report "acked") in
      let marked = Algorithm.field_exn report "marked" in
      let srtt_us = Algorithm.field_exn report "_srtt_us" in
      if react_to_ecn && marked > 0.0 && handle.now_us () -. st.last_ecn_us > srtt_us then begin
        st.last_ecn_us <- handle.now_us ();
        halve ()
      end
      else if acked > 0 then begin
        (* At most double per report: the per-RTT equivalent of RFC 3465. *)
        if st.cwnd < st.ssthresh then st.cwnd <- st.cwnd + min acked st.cwnd
        else begin
          st.acked_accum <- st.acked_accum + acked;
          if st.acked_accum >= st.cwnd then begin
            st.acked_accum <- st.acked_accum - st.cwnd;
            st.cwnd <- st.cwnd + mss
          end
        end
      end;
      push ()
    in
    let on_urgent (urgent : Ccp_ipc.Message.urgent) =
      (match urgent.kind with
      | Ccp_ipc.Message.Dup_ack_loss -> halve ()
      | Ccp_ipc.Message.Timeout ->
        st.ssthresh <- max (st.cwnd / 2) (2 * mss);
        st.cwnd <- mss
      | Ccp_ipc.Message.Ecn -> halve ());
      push ()
    in
    (* Warm-restart registers: the installed program pins the window at
       [st.cwnd], so restoring cwnd/ssthresh before [on_ready] re-installs
       is enough to resume at the pre-crash operating point. *)
    let on_checkpoint () =
      [|
        ("cwnd", float_of_int st.cwnd);
        ("ssthresh", float_of_int (min st.ssthresh (max_int / 2)));
        ("acked_accum", float_of_int st.acked_accum);
      |]
    in
    let on_restore registers =
      Array.iter
        (fun (name, value) ->
          if Float.is_finite value && value >= 0.0 then
            match name with
            | "cwnd" -> if value >= float_of_int mss then st.cwnd <- int_of_float value
            | "ssthresh" -> st.ssthresh <- int_of_float value
            | "acked_accum" -> st.acked_accum <- int_of_float value
            | _ -> ())
        registers
    in
    {
      Algorithm.no_op_handlers with
      on_ready = push;
      on_report;
      on_urgent;
      on_checkpoint;
      on_restore;
    }
  in
  { Algorithm.name = "ccp-reno"; make }

let create () = create_with ()
