open Ccp_agent
open Ccp_lang.Ast

type trial = { throughput : float; loss_rate : float }

type phase = Startup | Probing

type state = {
  epsilon : float;
  loss_penalty : float;
  step_fraction : float;
  mutable phase : phase;
  mutable rate : float;  (* bytes/s *)
  mutable prev_utility : float;  (* startup: utility of the previous cycle *)
  mutable report_index : int;  (* 0 = up-trial result pending, 1 = down-trial *)
  mutable up_trial : trial option;
  mutable direction : int;  (* last move: +1 / -1 / 0 *)
  mutable amplifier : int;  (* consecutive same-direction moves *)
  mutable losses_since_report : int;
  mutable last_report_us : float;
}

(* PCC-Allegro style utility: reward throughput, punish loss steeply. *)
let utility st { throughput; loss_rate } =
  (throughput ** 0.9) -. (st.loss_penalty *. throughput *. loss_rate)

let create_with ?(epsilon = 0.05) ?(loss_penalty = 11.35) ?(step_fraction = 0.1) () =
  let make (handle : Algorithm.handle) =
    let mss = float_of_int handle.info.mss in
    let st =
      {
        epsilon;
        loss_penalty;
        step_fraction;
        phase = Startup;
        rate = float_of_int handle.info.init_cwnd /. 0.010;
        prev_utility = neg_infinity;
        report_index = 0;
        up_trial = None;
        direction = 0;
        amplifier = 1;
        losses_since_report = 0;
        last_report_us = 0.0;
      }
    in
    let reset_measurement () =
      st.losses_since_report <- 0;
      st.last_report_us <- handle.now_us ()
    in
    (* PCC's monitor intervals must lag each rate change by one RTT: the
       ACKs arriving just after a rate change still carry the previous
       rate's packets, and measuring them against the new rate inverts the
       utility gradient. Hence every trial is: set the rate, wait one RTT
       for it to take effect end-to-end, then measure for one RTT. *)
    let trial ~gain =
      [
        Rate (Prog.c (st.rate *. gain));
        Prog.dynamic_cwnd_cap;
        Wait_rtts (Prog.c 1.0);
        Measure (Fold Prog.std_fold);
        Wait_rtts (Prog.c 1.0);
        Report;
      ]
    in
    (* Startup: one measured interval per program, rate doubling each
       cycle until utility stops improving — PCC's slow-start analogue. *)
    let push_startup () =
      reset_measurement ();
      handle.install (program (trial ~gain:1.0))
    in
    (* Probing: two back-to-back micro-experiments, one RTT above the base
       rate and one below, each closed by a Report. *)
    let push_probing () =
      st.report_index <- 0;
      st.up_trial <- None;
      reset_measurement ();
      handle.install (program (trial ~gain:(1.0 +. st.epsilon) @ trial ~gain:(1.0 -. st.epsilon)))
    in
    let trial_of_report report =
      let acked = Algorithm.field_exn report "acked" in
      let now_us = Algorithm.field_exn report "_now_us" in
      let srtt_us = Algorithm.field_exn report "_srtt_us" in
      (* The measurement window is the trial's final WaitRtts(1.0). Floored
         at 100 us: a near-zero srtt (perturbed samples clamp at 1 ns)
         would otherwise divide throughput toward infinity and saturate
         the utility. *)
      let interval_s =
        Float.max 1e-4
          (if srtt_us > 0.0 then srtt_us *. 1e-6
           else (now_us -. st.last_report_us) *. 1e-6)
      in
      st.last_report_us <- now_us;
      let throughput = acked /. interval_s in
      let lost_bytes = float_of_int st.losses_since_report *. mss in
      st.losses_since_report <- 0;
      let loss_rate = if acked > 0.0 then lost_bytes /. (acked +. lost_bytes) else 0.0 in
      { throughput; loss_rate }
    in
    let min_rate = mss /. 0.1 in
    let move direction =
      if direction = st.direction then st.amplifier <- min 16 (st.amplifier + 1)
      else st.amplifier <- 1;
      st.direction <- direction;
      let step =
        float_of_int st.amplifier *. st.step_fraction *. st.epsilon *. st.rate
        *. float_of_int direction
      in
      st.rate <- Float.max min_rate (st.rate +. step)
    in
    let on_report report =
      match st.phase with
      | Startup ->
        let trial = trial_of_report report in
        let u = utility st trial in
        if u > st.prev_utility && trial.loss_rate < 0.01 then begin
          st.prev_utility <- u;
          st.rate <- st.rate *. 2.0;
          push_startup ()
        end
        else begin
          (* Utility fell: back off to the last good rate and probe. *)
          st.phase <- Probing;
          st.rate <- Float.max min_rate (st.rate /. 2.0);
          push_probing ()
        end
      | Probing -> (
        let trial = trial_of_report report in
        match st.report_index with
        | 0 ->
          st.up_trial <- Some trial;
          st.report_index <- 1
        | _ ->
          let down = trial in
          (match st.up_trial with
          | None -> ()
          | Some up ->
            let u_up = utility st up and u_down = utility st down in
            if u_up > u_down then move 1 else if u_down > u_up then move (-1));
          push_probing ())
    in
    let on_urgent (urgent : Ccp_ipc.Message.urgent) =
      match urgent.kind with
      | Ccp_ipc.Message.Dup_ack_loss | Ccp_ipc.Message.Ecn ->
        st.losses_since_report <- st.losses_since_report + 1
      | Ccp_ipc.Message.Timeout ->
        st.rate <- Float.max min_rate (st.rate /. 2.0);
        st.amplifier <- 1;
        st.direction <- 0;
        (match st.phase with Startup -> push_startup () | Probing -> push_probing ())
    in
    let on_ready () = push_startup () in
    { Algorithm.no_op_handlers with on_ready; on_report; on_urgent }
  in
  { Algorithm.name = "ccp-pcc"; make }

let create () = create_with ()
