(** Sending-rate and delivery-rate estimation.

    Implements the delivery-rate sampling scheme BBR introduced (and that
    the paper's four-line kernel patch enables): the sender snapshots its
    cumulative sent/delivered counters into every transmitted segment's
    bookkeeping; when the segment is acknowledged, the counter deltas over
    the elapsed interval give unbiased rate samples even under partial
    batches and coalesced ACKs. EWMA-filtered values mirror what the
    paper's prototype reports to the CCP. *)

open Ccp_util

type t

type snapshot
(** Counter state captured at transmit time; stored with the in-flight
    segment. *)

val create : ?ewma_alpha:float -> ?delivery_transform:(float -> float) -> unit -> t
(** [ewma_alpha] defaults to 0.125. [delivery_transform] is applied to
    every delivery-rate sample (bytes/second) before it reaches either
    the EWMA or the caller — the hook measurement-noise perturbation
    ({!Ccp_perturb}) uses to model estimation error; omitted, samples
    pass through untouched. *)

val on_send : t -> now:Time_ns.t -> bytes:int -> snapshot
(** Account for [bytes] leaving and capture a snapshot. *)

type rates = {
  send_rate : float option;  (** bytes/second *)
  delivery_rate : float option;
}

val on_ack : t -> now:Time_ns.t -> bytes_newly_acked:int -> snapshot -> rates
(** Advance the delivered counters and compute instantaneous rate samples
    against the acknowledged segment's snapshot. Samples are [None] when
    the elapsed interval is too short to divide. *)

val total_sent : t -> int
val total_delivered : t -> int

val send_rate_ewma : t -> float option
(** Filtered sending rate, bytes/second. *)

val delivery_rate_ewma : t -> float option
