open Ccp_util

type t = {
  mutable total_sent : int;
  mutable total_delivered : int;
  mutable delivered_time : Time_ns.t;
  mutable first_send_time : Time_ns.t option;
  send_ewma : Stats.Ewma.t;
  delivery_ewma : Stats.Ewma.t;
  delivery_transform : (float -> float) option;
}

type snapshot = {
  sent_at : Time_ns.t;
  sent_before : int;  (* total_sent when this segment left *)
  delivered_before : int;
  delivered_time_before : Time_ns.t;
}

type rates = { send_rate : float option; delivery_rate : float option }

let create ?(ewma_alpha = 0.125) ?delivery_transform () =
  {
    total_sent = 0;
    total_delivered = 0;
    delivered_time = Time_ns.zero;
    first_send_time = None;
    send_ewma = Stats.Ewma.create ~alpha:ewma_alpha;
    delivery_ewma = Stats.Ewma.create ~alpha:ewma_alpha;
    delivery_transform;
  }

let on_send t ~now ~bytes =
  if t.first_send_time = None then begin
    t.first_send_time <- Some now;
    t.delivered_time <- now
  end;
  let snapshot =
    {
      sent_at = now;
      sent_before = t.total_sent;
      delivered_before = t.total_delivered;
      delivered_time_before = t.delivered_time;
    }
  in
  t.total_sent <- t.total_sent + bytes;
  snapshot

let rate_of ~bytes ~interval =
  let seconds = Time_ns.to_float_sec interval in
  if seconds <= 0.0 || bytes <= 0 then None else Some (float_of_int bytes /. seconds)

let on_ack t ~now ~bytes_newly_acked snapshot =
  t.total_delivered <- t.total_delivered + bytes_newly_acked;
  t.delivered_time <- now;
  let send_rate =
    rate_of
      ~bytes:(t.total_sent - snapshot.sent_before)
      ~interval:(Time_ns.sub now snapshot.sent_at)
  in
  let delivery_rate =
    rate_of
      ~bytes:(t.total_delivered - snapshot.delivered_before)
      ~interval:(Time_ns.sub now snapshot.delivered_time_before)
  in
  (* The transform (measurement-noise perturbation) applies before the
     EWMA so the filtered value the CCP reports as _recv_rate and the
     per-sample value in the ack event stay mutually consistent. *)
  let delivery_rate =
    match t.delivery_transform with
    | Some f -> Option.map f delivery_rate
    | None -> delivery_rate
  in
  Option.iter (Stats.Ewma.add t.send_ewma) send_rate;
  Option.iter (Stats.Ewma.add t.delivery_ewma) delivery_rate;
  { send_rate; delivery_rate }

let total_sent t = t.total_sent
let total_delivered t = t.total_delivered
let send_rate_ewma t = Stats.Ewma.value_opt t.send_ewma
let delivery_rate_ewma t = Stats.Ewma.value_opt t.delivery_ewma
