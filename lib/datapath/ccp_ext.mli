(** The CCP modification to the datapath (§2).

    This module is what a datapath implementor adds to become
    CCP-compliant. It plugs into {!Tcp_flow} through the same
    {!Congestion_iface.t} as any native controller, but instead of deciding
    locally it:

    - executes the installed control program (Table 2): applies [Rate] and
      [Cwnd], honours [Wait]/[WaitRtts] via simulator timers, and loops
      repeating programs;
    - aggregates per-ACK measurements per the program's [Measure] spec —
      a {!Ccp_lang.Fold} or a bounded per-packet vector (§2.4);
    - sends [Report] messages to the agent at the program's [Report()]
      points, and [Urgent] messages immediately on loss/timeout (and
      optionally ECN), bypassing batching (§2.1);
    - applies [Install] / [Set_cwnd] / [Set_rate] messages arriving
      asynchronously from the agent, validating programs before running
      them (a misbehaving agent must not break the datapath, §5).

    Reports always carry the reserved fields [_cwnd], [_rate], [_mss],
    [_srtt_us], [_rtt_us], [_minrtt_us], [_inflight_bytes], [_send_rate],
    [_recv_rate], [_now_us] and [_packets] alongside the program's own
    fold fields — mirroring the prototype datapath of §3, which reports the
    most recent ACK and EWMA-filtered rates. *)

open Ccp_util
open Ccp_eventsim
open Ccp_ipc

(** Safe-fallback watchdog (§5, "Is CCP safe to deploy?"): if the agent
    goes silent — no Install/Set_cwnd/Set_rate for [after] — the datapath
    takes the flow back. [Clamp] pins a conservative window and disables
    pacing, keeping traffic flowing (slowly). [Native] hands the flow to a
    freshly created in-datapath controller (e.g. [Native_reno.create]),
    which then receives every ACK and loss event as if it had owned the
    flow all along — full-speed operation with zero agent involvement.

    While in fallback the watchdog also re-sends [Ready] once per period:
    a restarted agent that lost its state re-learns the flow from the
    probe, re-installs a program, and the datapath hands control back on
    that first message. Any agent message for the flow lifts fallback. *)
type fallback_mode =
  | Clamp of { cwnd_segments : int }  (** conservative window while in fallback *)
  | Native of (unit -> Congestion_iface.t)
      (** fresh in-datapath controller per fallback episode *)

type fallback = {
  after : Time_ns.t;  (** silence threshold, and probe period while down *)
  mode : fallback_mode;
}

val clamp_fallback : after:Time_ns.t -> cwnd_segments:int -> fallback
val native_fallback : after:Time_ns.t -> (unit -> Congestion_iface.t) -> fallback

(** Runtime guardrails (§2.4 self-protection): hard bounds the datapath
    enforces on every value an installed program produces, no matter what
    admission control let through — a statically valid program can still
    compute a zero window, an absurd rate, or a sub-microsecond wait. Each
    violation is clamped {e and counted}; when a flow's incident score
    reaches [quarantine_after] and a [quarantine_mode] is armed, the
    program is cancelled, the mode takes the flow (exactly like a watchdog
    fallback episode), and the agent is told via [Quarantined]. Only a
    subsequently {e accepted} [Install] wins the flow back. *)
type guard_envelope = {
  min_cwnd_segments : int;  (** cwnd floor, in segments (× mss) *)
  max_cwnd_bytes : int;  (** cwnd ceiling *)
  max_rate_bytes_per_sec : float;  (** pacing-rate ceiling *)
  min_wait : Time_ns.t;
      (** floor on {e computed} waits; a shorter wait would spin the
          datapath at one timestamp *)
  max_eval_steps : int;  (** per-tick program-step budget *)
  min_report_interval : Time_ns.t;  (** report rate limiter *)
  div_storm_unit : int;
      (** divisions-by-zero per incident point: isolated div-by-zero is
          tolerated, a sustained storm scores *)
  divergence_limit : float;  (** fold state magnitude bound *)
  quarantine_after : int;  (** incident score that triggers quarantine *)
  quarantine_mode : fallback_mode option;  (** [None] = count but never quarantine *)
  quarantine_backoff : Time_ns.t option;
      (** when set, a quarantined flow re-sends [Ready] on a doubling
          timer starting at this delay, inviting the agent to win the
          flow back with a corrected install; [None] (the default) leaves
          re-admission to the watchdog's silence-driven probes *)
  quarantine_backoff_max : Time_ns.t;  (** cap on the probe back-off *)
}

val default_guard : guard_envelope
(** 1-segment cwnd floor, 1 GiB ceiling, 1 Tbit/s rate ceiling, 1 us wait
    floor, 10k steps per tick, 10 us report interval, 50 div-by-zero per
    point, 1e18 fold bound, quarantine at 50 with no mode armed, no
    back-off probes (5 s cap when armed). *)

(** Per-flow incident counters, one per {!Ccp_ipc.Message.incident_kind}.
    Mutable for the datapath's own accounting; treat as read-only. *)
type guard_incidents = {
  mutable cwnd_clamped : int;
  mutable rate_clamped : int;
  mutable wait_clamped : int;
  mutable non_finite : int;
  mutable div_storms : int;
  mutable report_throttled : int;
  mutable fold_divergence : int;
  mutable eval_budget : int;
}

val guard_total : guard_incidents -> int
(** The flow's incident score: the plain sum of the counters. *)

type config = {
  urgent_on_loss : bool;
  urgent_on_ecn : bool;
  validate_installs : bool;
      (** run admission ({!Ccp_lang.Limits.admit}) on every [Install] *)
  default_wait : Time_ns.t;  (** WaitRtts fallback before the first RTT sample *)
  max_vector_rows : int;  (** vector-mode memory bound; overflow rows are dropped and counted *)
  flow_capacity : int;
      (** expected concurrent flows — sizes the flow table up front so an
          incast of thousands of registrations does not rehash its way up
          from a tiny table (default 8) *)
  fallback : fallback option;
  limits : Ccp_lang.Limits.t;  (** static admission limits *)
  guard : guard_envelope;
}

val default_config : config
(** Loss urgent on, ECN urgent off, validation on, 10 ms default wait,
    4096-row vectors, 8-flow table hint, watchdog disabled,
    {!Ccp_lang.Limits.default} admission limits, {!default_guard}
    envelope. *)

type t

val create :
  sim:Sim.t -> channel:Channel.t -> ?config:config -> ?obs:Ccp_obs.Obs.t -> unit -> t
(** Registers itself as the channel's datapath-side endpoint. With [obs]
    the extension publishes install/guard/quarantine/fallback/report
    counters, times the per-ACK measurement step into the
    [datapath.fold_step_ns] histogram, and records Install, Quarantine,
    Fallback, and Report trace events. Without it, the per-ACK path stays
    allocation-free. *)

val congestion_control : t -> Congestion_iface.t
(** The controller to hand to {!Tcp_flow.create}. Each flow that calls
    [on_init] is registered with the agent via a [Ready] message. *)

(** {1 Introspection (tests, experiments)} *)

val installed_program : t -> flow:int -> Ccp_lang.Ast.program option
val reports_sent : t -> int
val urgents_sent : t -> int
val installs_accepted : t -> int
val installs_rejected : t -> int
val vector_rows_dropped : t -> int
val eval_incidents : t -> flow:int -> Ccp_lang.Eval.incident_counter option

val fallbacks_triggered : t -> int

val fallback_probes_sent : t -> int
(** [Ready] re-handshakes emitted while flows sat in fallback. *)

val in_fallback : t -> flow:int -> bool

val quarantines_triggered : t -> int
(** Guard-envelope quarantines entered across all flows. *)

val quarantine_probes_sent : t -> int
(** [Ready] re-admission probes emitted by [quarantine_backoff] timers. *)

val in_quarantine : t -> flow:int -> bool

val has_compiled_program : t -> flow:int -> bool
(** Whether the flow holds a compiled, runnable program. Always agrees
    with [installed_program]: admission is atomic, so a crash between
    [Install] and [Install_result] can never leave a half-admitted
    program (source recorded but nothing runnable, or vice versa). *)

val guard_incidents : t -> flow:int -> guard_incidents option
(** The flow's counters for the {e current} guard window (reset on every
    accepted install). *)

val guard_incident_total : t -> int
(** Incidents across all flows and all closed guard windows — the
    datapath-wide "how badly were we abused" number for experiment
    stats. *)

(** Who is driving a flow right now. The datapath maintains the invariant
    that exactly one party controls each flow: an installed agent program,
    an active native fallback, and a quarantine are mutually exclusive by
    construction ([Awaiting_agent] covers the startup window before the
    first install, when the flow still runs at its initial window). *)
type controller = Agent_program | Native_fallback | Quarantined | Awaiting_agent

val controller : t -> flow:int -> controller option
