(** The CCP modification to the datapath (§2).

    This module is what a datapath implementor adds to become
    CCP-compliant. It plugs into {!Tcp_flow} through the same
    {!Congestion_iface.t} as any native controller, but instead of deciding
    locally it:

    - executes the installed control program (Table 2): applies [Rate] and
      [Cwnd], honours [Wait]/[WaitRtts] via simulator timers, and loops
      repeating programs;
    - aggregates per-ACK measurements per the program's [Measure] spec —
      a {!Ccp_lang.Fold} or a bounded per-packet vector (§2.4);
    - sends [Report] messages to the agent at the program's [Report()]
      points, and [Urgent] messages immediately on loss/timeout (and
      optionally ECN), bypassing batching (§2.1);
    - applies [Install] / [Set_cwnd] / [Set_rate] messages arriving
      asynchronously from the agent, validating programs before running
      them (a misbehaving agent must not break the datapath, §5).

    Reports always carry the reserved fields [_cwnd], [_rate], [_mss],
    [_srtt_us], [_rtt_us], [_minrtt_us], [_inflight_bytes], [_send_rate],
    [_recv_rate], [_now_us] and [_packets] alongside the program's own
    fold fields — mirroring the prototype datapath of §3, which reports the
    most recent ACK and EWMA-filtered rates. *)

open Ccp_util
open Ccp_eventsim
open Ccp_ipc

(** Safe-fallback watchdog (§5, "Is CCP safe to deploy?"): if the agent
    goes silent — no Install/Set_cwnd/Set_rate for [after] — the datapath
    takes the flow back. [Clamp] pins a conservative window and disables
    pacing, keeping traffic flowing (slowly). [Native] hands the flow to a
    freshly created in-datapath controller (e.g. [Native_reno.create]),
    which then receives every ACK and loss event as if it had owned the
    flow all along — full-speed operation with zero agent involvement.

    While in fallback the watchdog also re-sends [Ready] once per period:
    a restarted agent that lost its state re-learns the flow from the
    probe, re-installs a program, and the datapath hands control back on
    that first message. Any agent message for the flow lifts fallback. *)
type fallback_mode =
  | Clamp of { cwnd_segments : int }  (** conservative window while in fallback *)
  | Native of (unit -> Congestion_iface.t)
      (** fresh in-datapath controller per fallback episode *)

type fallback = {
  after : Time_ns.t;  (** silence threshold, and probe period while down *)
  mode : fallback_mode;
}

val clamp_fallback : after:Time_ns.t -> cwnd_segments:int -> fallback
val native_fallback : after:Time_ns.t -> (unit -> Congestion_iface.t) -> fallback

type config = {
  urgent_on_loss : bool;
  urgent_on_ecn : bool;
  validate_installs : bool;
  default_wait : Time_ns.t;  (** WaitRtts fallback before the first RTT sample *)
  max_vector_rows : int;  (** vector-mode memory bound; overflow rows are dropped and counted *)
  fallback : fallback option;
}

val default_config : config
(** Loss urgent on, ECN urgent off, validation on, 10 ms default wait,
    4096-row vectors, watchdog disabled. *)

type t

val create : sim:Sim.t -> channel:Channel.t -> ?config:config -> unit -> t
(** Registers itself as the channel's datapath-side endpoint. *)

val congestion_control : t -> Congestion_iface.t
(** The controller to hand to {!Tcp_flow.create}. Each flow that calls
    [on_init] is registered with the agent via a [Ready] message. *)

(** {1 Introspection (tests, experiments)} *)

val installed_program : t -> flow:int -> Ccp_lang.Ast.program option
val reports_sent : t -> int
val urgents_sent : t -> int
val installs_accepted : t -> int
val installs_rejected : t -> int
val vector_rows_dropped : t -> int
val eval_incidents : t -> flow:int -> Ccp_lang.Eval.incident_counter option

val fallbacks_triggered : t -> int

val fallback_probes_sent : t -> int
(** [Ready] re-handshakes emitted while flows sat in fallback. *)

val in_fallback : t -> flow:int -> bool

(** Who is driving a flow right now. The datapath maintains the invariant
    that exactly one party controls each flow: an installed agent program
    and an active native fallback are mutually exclusive by construction
    ([Awaiting_agent] covers the startup window before the first install,
    when the flow still runs at its initial window). *)
type controller = Agent_program | Native_fallback | Awaiting_agent

val controller : t -> flow:int -> controller option
