open Ccp_util
open Ccp_eventsim
open Ccp_net

type config = {
  mss : int;
  initial_cwnd_segments : int;
  ecn_capable : bool;
  min_rto : Time_ns.t;
  app_limit_bytes : int option;
}

let default_config =
  {
    mss = 1448;
    initial_cwnd_segments = 10;
    ecn_capable = false;
    min_rto = Time_ns.ms 200;
    app_limit_bytes = None;
  }

(* Scoreboard entry: one transmitted, not yet cumulatively acknowledged
   segment. [copies] counts transmissions currently believed in the
   network; it drops to zero when the segment is SACKed (delivered) or
   declared lost. *)
type seg = {
  seq : int;
  len : int;
  mutable sent_at : Time_ns.t;
  mutable retransmitted : bool;
  mutable snapshot : Rate_estimator.snapshot;
  mutable sacked : bool;
  mutable lost : bool;
  mutable copies : int;
}

type t = {
  sim : Sim.t;
  flow : Packet.flow_id;
  config : config;
  cc : Congestion_iface.t;
  transmit : Packet.t -> unit;
  rtt_est : Rtt_estimator.t;
  rate_est : Rate_estimator.t;
  pacer : Pacer.t;
  mutable ctl : Congestion_iface.ctl option;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable cwnd : int;
  segs : (int, seg) Hashtbl.t;  (* keyed by seq *)
  order : seg Queue.t;  (* seq order; front is the oldest outstanding *)
  retx_queue : seg Queue.t;  (* lost segments awaiting retransmission *)
  mutable pipe : int;  (* bytes believed in the network *)
  mutable highest_sacked : int;  (* highest SACKed byte (exclusive) *)
  mutable newest_sacked_sent_at : Time_ns.t;  (* RACK: send time of newest SACKed data *)
  mutable loss_scan_seq : int;  (* loss marking resumes here *)
  mutable recovery_point : int option;
  (* Proportional Rate Reduction (RFC 6937) state: during recovery,
     transmissions are clocked by delivered data instead of bursting the
     whole cwnd-pipe gap at once. *)
  mutable prr_delivered : int;
  mutable prr_out : int;
  mutable recover_fs : int;
  mutable recovery_quota : int;  (* bytes try_send may currently emit *)
  mutable rto_timer : Sim.timer option;
  mutable rto_backoff : int;
  mutable send_timer : Sim.timer option;
  mutable started : bool;
  (* counters *)
  mutable segments_sent : int;
  mutable retransmit_count : int;
  mutable timeout_count : int;
  mutable recovery_count : int;
  mutable dup_acks : int;
  (* listeners *)
  mutable cwnd_listener : (Time_ns.t -> int -> unit) option;
  mutable rtt_listener : (Time_ns.t -> Time_ns.t -> unit) option;
  (* observability *)
  obs_h : obs_handles option;
  obs_sample_interval : Time_ns.t;
  mutable last_flow_sample : Time_ns.t;
  (* measurement-noise perturbation; None = clean measurements *)
  perturb : Ccp_perturb.Sampler.t option;
}

and obs_handles = {
  obs : Ccp_obs.Obs.t;
  o_rtt_us : Ccp_obs.Metrics.histogram;
  o_segments : Ccp_obs.Metrics.counter;
  o_retx : Ccp_obs.Metrics.counter;
  o_timeouts : Ccp_obs.Metrics.counter;
  o_recoveries : Ccp_obs.Metrics.counter;
  o_cwnd_updates : Ccp_obs.Metrics.counter;
}

(* Handles are shared across flows: the registry is get-or-create by name. *)
let make_obs_handles obs =
  let open Ccp_obs in
  let m = obs.Obs.metrics in
  {
    obs;
    o_rtt_us = Metrics.histogram m ~unit_:"us" "tcp.rtt_us";
    o_segments = Metrics.counter m ~unit_:"segments" "tcp.segments_sent";
    o_retx = Metrics.counter m ~unit_:"segments" "tcp.retransmits";
    o_timeouts = Metrics.counter m ~unit_:"events" "tcp.timeouts";
    o_recoveries = Metrics.counter m ~unit_:"events" "tcp.recoveries";
    o_cwnd_updates = Metrics.counter m ~unit_:"updates" "tcp.cwnd_updates";
  }

let create ~sim ~flow ~config ~cc ~transmit ?obs ?(obs_sample_interval = Time_ns.zero)
    ?perturb () =
  if config.mss <= 0 then invalid_arg "Tcp_flow: mss must be positive";
  {
    sim;
    flow;
    config;
    cc;
    transmit;
    rtt_est = Rtt_estimator.create ~min_rto:config.min_rto ();
    rate_est =
      Rate_estimator.create
        ?delivery_transform:
          (Option.map (fun s r -> Ccp_perturb.Sampler.delivery_rate s r) perturb)
        ();
    pacer = Pacer.create ~burst_bytes:(10 * config.mss) ();
    ctl = None;
    snd_una = 0;
    snd_nxt = 0;
    cwnd = config.initial_cwnd_segments * config.mss;
    segs = Hashtbl.create 1024;
    order = Queue.create ();
    retx_queue = Queue.create ();
    pipe = 0;
    highest_sacked = 0;
    newest_sacked_sent_at = Time_ns.zero;
    loss_scan_seq = 0;
    recovery_point = None;
    prr_delivered = 0;
    prr_out = 0;
    recover_fs = 1;
    recovery_quota = 0;
    rto_timer = None;
    rto_backoff = 1;
    send_timer = None;
    started = false;
    segments_sent = 0;
    retransmit_count = 0;
    timeout_count = 0;
    recovery_count = 0;
    dup_acks = 0;
    cwnd_listener = None;
    rtt_listener = None;
    obs_h = Option.map make_obs_handles obs;
    obs_sample_interval;
    last_flow_sample = Time_ns.ns (-1);
    perturb;
  }

let now t = Sim.now t.sim
let inflight t = t.pipe

(* Sampled per-flow time series for the flight recorder, throttled to at
   most one [Flow_sample] per [obs_sample_interval] (0 = every ACK). *)
let maybe_flow_sample t at =
  match t.obs_h with
  | None -> ()
  | Some h ->
    if
      Time_ns.compare (Time_ns.sub at t.last_flow_sample) t.obs_sample_interval
      >= 0
      || Time_ns.compare t.last_flow_sample Time_ns.zero < 0
    then begin
      t.last_flow_sample <- at;
      let srtt_us =
        match Rtt_estimator.srtt t.rtt_est with
        | Some s -> Time_ns.to_float_us s
        | None -> 0.0
      in
      let delivery_rate =
        match Rate_estimator.delivery_rate_ewma t.rate_est with
        | Some r -> r
        | None -> 0.0
      in
      Ccp_obs.Obs.record h.obs ~at
        (Ccp_obs.Recorder.Flow_sample
           {
             flow = t.flow;
             cwnd = t.cwnd;
             rate = Pacer.rate t.pacer;
             srtt_us;
             inflight = t.pipe;
             delivery_rate;
           })
    end

let notify_cwnd t =
  match t.cwnd_listener with Some f -> f (now t) t.cwnd | None -> ()

let set_cwnd_internal t bytes =
  let clamped = max t.config.mss bytes in
  if clamped <> t.cwnd then begin
    t.cwnd <- clamped;
    (match t.obs_h with
    | Some h -> Ccp_obs.Metrics.incr h.o_cwnd_updates
    | None -> ());
    notify_cwnd t
  end

(* --- RTO management --- *)

let cancel_rto t =
  Option.iter Sim.cancel t.rto_timer;
  t.rto_timer <- None

let rec arm_rto t =
  cancel_rto t;
  if t.snd_nxt > t.snd_una then begin
    let delay = Time_ns.scale (Rtt_estimator.rto t.rtt_est) (float_of_int t.rto_backoff) in
    t.rto_timer <- Some (Sim.schedule_after t.sim ~delay (fun () -> on_rto t))
  end

(* --- transmission --- *)

and emit t seg ~retransmit =
  let at = now t in
  seg.sent_at <- at;
  seg.snapshot <- Rate_estimator.on_send t.rate_est ~now:at ~bytes:seg.len;
  seg.copies <- seg.copies + 1;
  t.pipe <- t.pipe + seg.len;
  t.segments_sent <- t.segments_sent + 1;
  (match t.obs_h with
  | Some h ->
    Ccp_obs.Metrics.incr h.o_segments;
    if retransmit then Ccp_obs.Metrics.incr h.o_retx
  | None -> ());
  if retransmit then begin
    seg.retransmitted <- true;
    t.retransmit_count <- t.retransmit_count + 1
  end;
  Pacer.note_sent t.pacer ~now:at ~bytes:(seg.len + Packet.header_bytes);
  t.transmit
    (Packet.data ~flow:t.flow ~seq:seg.seq ~len:seg.len ~sent_at:at ~is_retransmit:retransmit
       ~ecn_capable:t.config.ecn_capable ());
  if Option.is_none t.rto_timer then arm_rto t

and send_new_segment t ~len =
  let seq = t.snd_nxt in
  let seg =
    {
      seq;
      len;
      sent_at = now t;
      retransmitted = false;
      snapshot = Rate_estimator.on_send t.rate_est ~now:(now t) ~bytes:0;
      sacked = false;
      lost = false;
      copies = 0;
    }
  in
  Hashtbl.replace t.segs seq seg;
  Queue.add seg t.order;
  t.snd_nxt <- t.snd_nxt + len;
  emit t seg ~retransmit:false

and next_payload_len t =
  let len =
    match t.config.app_limit_bytes with
    | None -> t.config.mss
    | Some limit -> min t.config.mss (limit - t.snd_nxt)
  in
  if len <= 0 then None else Some len

(* Next lost segment that still needs retransmission. The hole at snd_una
   has absolute priority: only it can advance the window. A segment
   returned from the head may still sit in the retransmit queue; it is
   skipped there later because retransmission clears its [lost] flag. *)
and pop_retransmit_candidate t =
  match Queue.peek_opt t.order with
  | Some head when head.lost && (not head.sacked) && head.copies = 0 -> Some head
  | Some _ | None ->
    let rec pop () =
      match Queue.take_opt t.retx_queue with
      | None -> None
      | Some seg ->
        if seg.lost && (not seg.sacked) && seg.copies = 0 && seg.seq + seg.len > t.snd_una then
          Some seg
        else pop ()
    in
    pop ()

and try_send t =
  if t.started then begin
    Option.iter Sim.cancel t.send_timer;
    t.send_timer <- None;
    let rec loop () =
      let quota_ok = t.recovery_point = None || t.recovery_quota >= t.config.mss in
      if quota_ok && t.pipe + t.config.mss <= t.cwnd then begin
        let at = now t in
        let wire = t.config.mss + Packet.header_bytes in
        let earliest = Pacer.earliest_send t.pacer ~now:at ~bytes:wire in
        if Time_ns.compare earliest at > 0 then
          t.send_timer <-
            Some (Sim.schedule t.sim ~at:earliest (fun () ->
                      t.send_timer <- None;
                      try_send t))
        else begin
          (* Lost segments take priority over new data. *)
          let consume_quota len =
            if t.recovery_point <> None then begin
              t.recovery_quota <- t.recovery_quota - len;
              t.prr_out <- t.prr_out + len
            end
          in
          match pop_retransmit_candidate t with
          | Some seg ->
            seg.lost <- false;
            consume_quota seg.len;
            emit t seg ~retransmit:true;
            loop ()
          | None -> (
            match next_payload_len t with
            | Some len ->
              consume_quota len;
              send_new_segment t ~len;
              loop ()
            | None -> ())
        end
      end
    in
    loop ()
  end

(* --- timeout --- *)

and on_rto t =
  t.rto_timer <- None;
  if t.snd_nxt > t.snd_una then begin
    t.timeout_count <- t.timeout_count + 1;
    (match t.obs_h with
    | Some h -> Ccp_obs.Metrics.incr h.o_timeouts
    | None -> ());
    t.rto_backoff <- min 64 (t.rto_backoff * 2);
    (* RFC 6675 style: keep the SACK scoreboard, declare every unSACKed
       outstanding segment lost, and let the (collapsed) window slow-start
       the retransmissions. Re-sending SACKed data would be pure waste.
       The retransmit queue is rebuilt in sequence order so the hole at
       snd_una — the only segment that can advance the window — goes out
       first, not behind a backlog of stale entries. *)
    let lost = ref 0 in
    Queue.clear t.retx_queue;
    Queue.iter
      (fun seg ->
        if not seg.sacked then begin
          t.pipe <- t.pipe - (seg.len * seg.copies);
          seg.copies <- 0;
          seg.retransmitted <- false;
          if not seg.lost then lost := !lost + seg.len;
          seg.lost <- true;
          Queue.add seg t.retx_queue
        end)
      t.order;
    t.recovery_point <- None;
    t.recovery_quota <- 0;
    t.prr_delivered <- 0;
    t.prr_out <- 0;
    let ctl = Option.get t.ctl in
    t.cc.on_loss ctl { kind = Rto; at = now t; bytes_lost_estimate = max !lost t.config.mss };
    try_send t;
    arm_rto t
  end

(* --- SACK scoreboard --- *)

(* Mark [start, stop) delivered out of order; returns bytes newly marked.
   Ranges above snd_nxt are stale echoes of data sent before an RTO's
   go-back-N and must be ignored or they poison the scoreboard. *)
let mark_sacked t (start, stop) =
  let stop = min stop t.snd_nxt in
  let newly = ref 0 in
  let rec walk seq =
    if seq < stop then
      match Hashtbl.find_opt t.segs seq with
      | None -> () (* already cumulatively acknowledged *)
      | Some seg ->
        if not seg.sacked then begin
          t.pipe <- t.pipe - (seg.len * seg.copies);
          seg.copies <- 0;
          seg.sacked <- true;
          seg.lost <- false;
          if Time_ns.compare seg.sent_at t.newest_sacked_sent_at > 0 then
            t.newest_sacked_sent_at <- seg.sent_at;
          newly := !newly + seg.len
        end;
        walk (seq + seg.len)
  in
  walk start;
  if stop > t.highest_sacked then t.highest_sacked <- stop;
  !newly

(* FACK loss inference with a RACK-style reorder window: a segment is
   deemed lost once (a) bytes equivalent to three segments were SACKed
   above it, and (b) data sent at least srtt/4 AFTER it has already been
   delivered — so mild reordering (link jitter displaces packets by less
   than the window) never triggers spurious retransmissions, while real
   holes are marked as soon as meaningfully newer data is SACKed. The
   scan stops at the first not-yet-judgeable segment (later segments were
   sent later still) without advancing the scan pointer, so it is
   re-examined on the next ACK. Returns bytes newly marked. *)
let scan_losses t =
  let threshold = 3 * t.config.mss in
  let reorder_window =
    match Rtt_estimator.srtt t.rtt_est with
    | Some srtt -> Time_ns.scale srtt 0.25
    | None -> Time_ns.zero
  in
  let newly_lost = ref 0 in
  let rec walk seq =
    if seq < t.snd_nxt && seq + threshold < t.highest_sacked then begin
      match Hashtbl.find_opt t.segs seq with
      | None -> walk (max (seq + t.config.mss) t.snd_una)
      | Some seg ->
        let markable = (not seg.sacked) && (not seg.lost) && not seg.retransmitted in
        let rack_ok =
          Time_ns.compare (Time_ns.sub t.newest_sacked_sent_at seg.sent_at) reorder_window >= 0
        in
        if markable && not rack_ok then
          (* Not judgeable yet: revisit from here on the next ACK. *)
          ()
        else begin
          if markable then begin
            t.pipe <- t.pipe - (seg.len * seg.copies);
            seg.copies <- 0;
            seg.lost <- true;
            newly_lost := !newly_lost + seg.len;
            Queue.add seg t.retx_queue
          end;
          t.loss_scan_seq <- seq + seg.len;
          walk (seq + seg.len)
        end
    end
  in
  walk (max t.loss_scan_seq t.snd_una);
  !newly_lost

(* RFC 6937 proportional rate reduction: compute how much try_send may
   emit, given the bytes this ACK newly delivered (cum-acked + SACKed).
   While the pipe exceeds the post-cut window, send proportionally to
   deliveries; once below, slow-start back up to the window. *)
let prr_update t ~delivered =
  if t.recovery_point <> None && delivered > 0 then begin
    t.prr_delivered <- t.prr_delivered + delivered;
    let ssthresh = t.cwnd in
    let sndcnt =
      if t.pipe > ssthresh then
        (((t.prr_delivered * ssthresh) + t.recover_fs - 1) / t.recover_fs) - t.prr_out
      else begin
        let limit = max (t.prr_delivered - t.prr_out) delivered + t.config.mss in
        min (ssthresh - t.pipe) limit
      end
    in
    t.recovery_quota <- max 0 sndcnt
  end

(* RACK-style lost-retransmission detection: a retransmitted, still
   unSACKed segment whose (re)transmission is more than two smoothed RTTs
   old — while ACKs keep arriving — was lost again. Re-mark it so
   try_send resends instead of stalling into an RTO. Scanning is bounded
   to the leading window of unSACKed segments to keep per-ACK work O(1)
   amortized. *)
let max_retx_scan = 64

let check_retransmit_timeouts t =
  match Rtt_estimator.srtt t.rtt_est with
  | None -> ()
  | Some srtt ->
    let deadline = Time_ns.scale srtt 2.0 in
    let at = now t in
    let examined = ref 0 in
    (try
       Queue.iter
         (fun seg ->
           if !examined >= max_retx_scan then raise Exit;
           if not seg.sacked then begin
             incr examined;
             if
               seg.retransmitted && seg.copies > 0
               && Time_ns.compare (Time_ns.sub at seg.sent_at) deadline > 0
             then begin
               t.pipe <- t.pipe - (seg.len * seg.copies);
               seg.copies <- 0;
               seg.lost <- true;
               Queue.add seg t.retx_queue
             end
           end)
         t.order
     with Exit -> ())

let pop_acked t cum_ack =
  let rec pop newest =
    match Queue.peek_opt t.order with
    | Some seg when seg.seq + seg.len <= cum_ack ->
      ignore (Queue.take t.order);
      Hashtbl.remove t.segs seg.seq;
      t.pipe <- t.pipe - (seg.len * seg.copies);
      seg.copies <- 0;
      (* Prefer an RTT/rate sample from a never-retransmitted segment. *)
      let newest = if seg.retransmitted then newest else Some seg in
      pop newest
    | _ -> newest
  in
  pop None

let build_ctl t : Congestion_iface.ctl =
  {
    flow = t.flow;
    mss = t.config.mss;
    now = (fun () -> now t);
    get_cwnd = (fun () -> t.cwnd);
    set_cwnd =
      (fun bytes ->
        set_cwnd_internal t bytes;
        try_send t);
    get_rate = (fun () -> Pacer.rate t.pacer);
    set_rate =
      (fun rate ->
        Pacer.set_rate t.pacer ~now:(now t) rate;
        try_send t);
    srtt = (fun () -> Rtt_estimator.srtt t.rtt_est);
    latest_rtt = (fun () -> Rtt_estimator.latest t.rtt_est);
    min_rtt = (fun () -> Rtt_estimator.min_rtt t.rtt_est);
    inflight = (fun () -> inflight t);
    send_rate_ewma = (fun () -> Rate_estimator.send_rate_ewma t.rate_est);
    delivery_rate_ewma = (fun () -> Rate_estimator.delivery_rate_ewma t.rate_est);
  }

let ctl t =
  match t.ctl with
  | Some c -> c
  | None ->
    let c = build_ctl t in
    t.ctl <- Some c;
    c

let start t =
  if not t.started then begin
    t.started <- true;
    let c = ctl t in
    t.cc.on_init c;
    notify_cwnd t;
    try_send t
  end

let on_ack t (pkt : Packet.t) =
  match pkt.payload with
  | Data _ -> invalid_arg "Tcp_flow.on_ack: got a data packet"
  | Ack a ->
    let at = now t in
    let c = ctl t in
    let true_rtt =
      let r = Time_ns.sub at a.echo_sent_at in
      if Time_ns.is_positive r then Some r else None
    in
    (* The controller (estimators, ack event, and through them the CCP
       report primitives) sees the perturbed sample; the observability
       sinks and the rtt listener keep the true network RTT, so a
       robustness scorecard measures real queueing, not injected noise. *)
    let rtt_sample =
      match t.perturb with
      | Some s -> Option.map (fun r -> Ccp_perturb.Sampler.rtt s r) true_rtt
      | None -> true_rtt
    in
    Option.iter (fun r -> Rtt_estimator.on_sample t.rtt_est r) rtt_sample;
    Option.iter
      (fun r ->
        (match t.obs_h with
        | Some h -> Ccp_obs.Metrics.observe h.o_rtt_us (Time_ns.to_float_us r)
        | None -> ());
        match t.rtt_listener with Some f -> f at r | None -> ())
      true_rtt;
    let sacked_bytes =
      List.fold_left (fun acc range -> acc + mark_sacked t range) 0 a.newly_sacked
    in
    let newly_lost = scan_losses t in
    (* One multiplicative decrease per window of loss, as TCP requires. *)
    if newly_lost > 0 && t.recovery_point = None then begin
      t.recovery_point <- Some t.snd_nxt;
      t.recovery_count <- t.recovery_count + 1;
      (match t.obs_h with
      | Some h -> Ccp_obs.Metrics.incr h.o_recoveries
      | None -> ());
      t.prr_delivered <- 0;
      t.prr_out <- 0;
      t.recover_fs <- max (t.pipe + newly_lost) t.config.mss;
      t.recovery_quota <- 0;
      t.cc.on_loss c { kind = Dup_acks; at; bytes_lost_estimate = newly_lost }
    end;
    check_retransmit_timeouts t;
    let cum = min a.cum_ack t.snd_nxt in
    if cum > t.snd_una then begin
      let newly = cum - t.snd_una in
      t.snd_una <- cum;
      if t.loss_scan_seq < cum then t.loss_scan_seq <- cum;
      if t.highest_sacked < cum then t.highest_sacked <- cum;
      let newest_seg = pop_acked t cum in
      let rates =
        match newest_seg with
        | Some seg -> Rate_estimator.on_ack t.rate_est ~now:at ~bytes_newly_acked:newly seg.snapshot
        | None ->
          { Rate_estimator.send_rate = None; delivery_rate = None }
      in
      t.rto_backoff <- 1;
      prr_update t ~delivered:(newly + sacked_bytes);
      (match t.recovery_point with
      | Some point when cum >= point ->
        t.recovery_point <- None;
        t.recovery_quota <- 0;
        t.cc.on_exit_recovery c
      | Some _ | None -> ());
      let event : Congestion_iface.ack_event =
        {
          now = at;
          bytes_acked = newly;
          rtt_sample;
          ecn_echo = a.ecn_echo;
          send_rate = rates.Rate_estimator.send_rate;
          delivery_rate = rates.Rate_estimator.delivery_rate;
          inflight_after = inflight t;
        }
      in
      t.cc.on_ack c event;
      maybe_flow_sample t at;
      if t.snd_nxt > t.snd_una then arm_rto t else cancel_rto t;
      try_send t
    end
    else begin
      t.dup_acks <- t.dup_acks + 1;
      prr_update t ~delivered:sacked_bytes;
      let event : Congestion_iface.ack_event =
        {
          now = at;
          bytes_acked = 0;
          rtt_sample;
          ecn_echo = a.ecn_echo;
          send_rate = None;
          delivery_rate = None;
          inflight_after = inflight t;
        }
      in
      t.cc.on_ack c event;
      maybe_flow_sample t at;
      try_send t
    end

let cwnd t = t.cwnd
let pacing_rate t = Pacer.rate t.pacer
let snd_nxt t = t.snd_nxt
let snd_una t = t.snd_una
let in_recovery t = t.recovery_point <> None
let srtt t = Rtt_estimator.srtt t.rtt_est
let min_rtt t = Rtt_estimator.min_rtt t.rtt_est
let rtt_estimator t = t.rtt_est
let rate_estimator t = t.rate_est
let segments_sent t = t.segments_sent
let retransmits t = t.retransmit_count
let timeouts t = t.timeout_count
let recoveries t = t.recovery_count
let set_cwnd_listener t f = t.cwnd_listener <- Some f
let set_rtt_listener t f = t.rtt_listener <- Some f
