open Ccp_util
open Ccp_eventsim
open Ccp_lang
open Ccp_ipc

type fallback_mode =
  | Clamp of { cwnd_segments : int }
  | Native of (unit -> Congestion_iface.t)

type fallback = {
  after : Time_ns.t;
  mode : fallback_mode;
}

let clamp_fallback ~after ~cwnd_segments = { after; mode = Clamp { cwnd_segments } }
let native_fallback ~after make_cc = { after; mode = Native make_cc }

type guard_envelope = {
  min_cwnd_segments : int;
  max_cwnd_bytes : int;
  max_rate_bytes_per_sec : float;
  min_wait : Time_ns.t;
  max_eval_steps : int;
  min_report_interval : Time_ns.t;
  div_storm_unit : int;
  divergence_limit : float;
  quarantine_after : int;
  quarantine_mode : fallback_mode option;
  quarantine_backoff : Time_ns.t option;
  quarantine_backoff_max : Time_ns.t;
}

let default_guard =
  {
    min_cwnd_segments = 1;
    max_cwnd_bytes = 1 lsl 30;
    max_rate_bytes_per_sec = 125e9 (* 1 Tbit/s *);
    min_wait = Time_ns.us 1;
    max_eval_steps = 10_000;
    min_report_interval = Time_ns.us 10;
    div_storm_unit = 50;
    divergence_limit = 1e18;
    quarantine_after = 50;
    quarantine_mode = None;
    quarantine_backoff = None;
    quarantine_backoff_max = Time_ns.sec 5;
  }

type guard_incidents = {
  mutable cwnd_clamped : int;
  mutable rate_clamped : int;
  mutable wait_clamped : int;
  mutable non_finite : int;
  mutable div_storms : int;
  mutable report_throttled : int;
  mutable fold_divergence : int;
  mutable eval_budget : int;
}

let fresh_guard_incidents () =
  {
    cwnd_clamped = 0;
    rate_clamped = 0;
    wait_clamped = 0;
    non_finite = 0;
    div_storms = 0;
    report_throttled = 0;
    fold_divergence = 0;
    eval_budget = 0;
  }

let guard_total g =
  g.cwnd_clamped + g.rate_clamped + g.wait_clamped + g.non_finite + g.div_storms
  + g.report_throttled + g.fold_divergence + g.eval_budget

let dominant_incident g : Message.incident_kind =
  let counts =
    [
      (g.cwnd_clamped, Message.Cwnd_clamped);
      (g.rate_clamped, Message.Rate_clamped);
      (g.wait_clamped, Message.Wait_clamped);
      (g.non_finite, Message.Non_finite);
      (g.div_storms, Message.Div_by_zero_storm);
      (g.report_throttled, Message.Report_throttled);
      (g.fold_divergence, Message.Fold_divergence);
      (g.eval_budget, Message.Eval_budget_exhausted);
    ]
  in
  snd
    (List.fold_left
       (fun (best, kind) (n, k) -> if n > best then (n, k) else (best, kind))
       (-1, Message.Cwnd_clamped)
       counts)

type config = {
  urgent_on_loss : bool;
  urgent_on_ecn : bool;
  validate_installs : bool;
  default_wait : Time_ns.t;
  max_vector_rows : int;
  flow_capacity : int;
  fallback : fallback option;
  limits : Limits.t;
  guard : guard_envelope;
}

let default_config =
  {
    urgent_on_loss = true;
    urgent_on_ecn = false;
    validate_installs = true;
    default_wait = Time_ns.ms 10;
    max_vector_rows = 4096;
    flow_capacity = 8;
    fallback = None;
    limits = Limits.default;
    guard = default_guard;
  }

type measurement =
  | No_measurement
  | Fold_state of Compile.Fold.t
  | Vector of {
      columns : string array;
      col_idx : int array;
      mutable rows : float array list;
      mutable count : int;
    }

type flow_state = {
  ctl : Congestion_iface.ctl;
  mutable program : Ast.program option;
      (* the source AST, kept for introspection ([installed_program]) *)
  mutable exec : (Compile.program * Compile.machine) option;
      (* the compiled form actually run, with its preallocated machine;
         set and cleared together with [program] *)
  mutable pc : int;
  mutable wait_timer : Sim.timer option;
  mutable measurement : measurement;
  last_rtt_us : float array;
      (* 1-element cell: a [mutable float] in this mixed record would box
         on every store, and this is written on every ACK *)
  mutable last_ecn_urgent : Time_ns.t;
  mutable last_agent_contact : Time_ns.t;
  mutable fallback_active : bool;
  mutable fallback_cc : Congestion_iface.t option;
      (* live native controller instance while a [Native] fallback holds the flow *)
  incidents : Eval.incident_counter;
  mutable quarantined : bool;
  mutable quarantine_cc : Congestion_iface.t option;
      (* live native controller while the guard envelope has the flow quarantined *)
  mutable last_report_at : Time_ns.t option;
  mutable div_baseline : int;
      (* raw eval div-by-zero count at the last guard reset *)
  mutable nonfinite_baseline : int;
  guard : guard_incidents;
}

(* Pre-resolved metric handles: the per-ACK path must not do name lookups,
   and with [obs = None] it must not allocate at all. *)
type obs_handles = {
  obs : Ccp_obs.Obs.t;
  o_reports : Ccp_obs.Metrics.counter;
  o_urgents : Ccp_obs.Metrics.counter;
  o_installs_accepted : Ccp_obs.Metrics.counter;
  o_installs_rejected : Ccp_obs.Metrics.counter;
  o_guard_incidents : Ccp_obs.Metrics.counter;
  o_quarantines : Ccp_obs.Metrics.counter;
  o_fallbacks : Ccp_obs.Metrics.counter;
  o_acks : Ccp_obs.Metrics.counter;
  o_fold_ns : Ccp_obs.Metrics.histogram;
  (* Per-flow heavy-hitter sketches; [None] when telemetry is off. *)
  tk_reports : Ccp_obs.Topk.sketch option;
  tk_guard : Ccp_obs.Topk.sketch option;
}

let make_obs_handles obs =
  let open Ccp_obs in
  let m = obs.Obs.metrics in
  {
    obs;
    o_reports = Metrics.counter m ~unit_:"msgs" "datapath.reports_sent";
    o_urgents = Metrics.counter m ~unit_:"msgs" "datapath.urgents_sent";
    o_installs_accepted = Metrics.counter m ~unit_:"msgs" "datapath.installs_accepted";
    o_installs_rejected = Metrics.counter m ~unit_:"msgs" "datapath.installs_rejected";
    o_guard_incidents = Metrics.counter m ~unit_:"events" "datapath.guard_incidents";
    o_quarantines = Metrics.counter m ~unit_:"events" "datapath.quarantines";
    o_fallbacks = Metrics.counter m ~unit_:"events" "datapath.fallbacks";
    o_acks = Metrics.counter m ~unit_:"acks" "datapath.acks_processed";
    o_fold_ns = Metrics.histogram m ~unit_:"ns" "datapath.fold_step_ns";
    tk_reports = Obs.flow_sketch obs "flow.reports";
    tk_guard = Obs.flow_sketch obs "flow.guard_incidents";
  }

type t = {
  sim : Sim.t;
  channel : Channel.t;
  config : config;
  flows : (int, flow_state) Hashtbl.t;
  mutable reports_sent : int;
  mutable urgents_sent : int;
  mutable installs_accepted : int;
  mutable installs_rejected : int;
  mutable vector_rows_dropped : int;
  mutable fallbacks_triggered : int;
  mutable fallback_probes_sent : int;
  mutable quarantines : int;
  mutable quarantine_probes_sent : int;
  retired_guard : guard_incidents;
      (* incidents from guard windows closed by an accepted re-install *)
  obs : obs_handles option;
  tracer : Ccp_obs.Tracer.t option;
}

let obs_record t event =
  match t.obs with
  | None -> ()
  | Some h -> Ccp_obs.Obs.record h.obs ~at:(Sim.now t.sim) event

let obs_guard_incident t fs =
  match t.obs with
  | None -> ()
  | Some h -> (
    Ccp_obs.Metrics.incr h.o_guard_incidents;
    match h.tk_guard with
    | Some s -> Ccp_obs.Topk.touch s fs.ctl.Congestion_iface.flow
    | None -> ())

(* --- slot tables ---

   Compiled code reads flow variables and packet fields from the
   machine's preallocated [float array]s instead of string-keyed
   environments. The slot layout is fixed by {!Compile}; we resolve it
   once at module initialisation and refresh only the slots the code
   about to run actually reads (its [flow_mask]). *)

(* [Time_ns.to_float_us] is a cross-module call; without flambda its
   float result comes back boxed, which would put an allocation on the
   per-ACK path. [Time_ns.t] is transparently [int], so convert inline. *)
let[@inline always] us_of_ns (ns : Time_ns.t) = float_of_int ns /. 1e3
let[@inline always] us_of_opt o = match o with Some d -> us_of_ns d | None -> 0.0

let fslot_cwnd = Compile.flow_index_exn "cwnd"
let fslot_rate = Compile.flow_index_exn "rate"
let fslot_mss = Compile.flow_index_exn "mss"
let fslot_srtt_us = Compile.flow_index_exn "srtt_us"
let fslot_rtt_us = Compile.flow_index_exn "rtt_us"
let fslot_minrtt_us = Compile.flow_index_exn "minrtt_us"
let fslot_inflight = Compile.flow_index_exn "inflight_bytes"
let fslot_now_us = Compile.flow_index_exn "now_us"
let pslot_rtt_us = Compile.pkt_index_exn "rtt_us"
let pslot_bytes_acked = Compile.pkt_index_exn "bytes_acked"
let pslot_bytes_lost = Compile.pkt_index_exn "bytes_lost"
let pslot_ecn = Compile.pkt_index_exn "ecn"
let pslot_send_rate = Compile.pkt_index_exn "send_rate"
let pslot_recv_rate = Compile.pkt_index_exn "recv_rate"
let pslot_inflight = Compile.pkt_index_exn "inflight_bytes"
let pslot_now_us = Compile.pkt_index_exn "now_us"

let refresh_flow fs (m : Compile.machine) mask =
  let ctl = fs.ctl in
  let f = m.Compile.flow in
  if mask land (1 lsl fslot_cwnd) <> 0 then
    f.(fslot_cwnd) <- float_of_int (ctl.Congestion_iface.get_cwnd ());
  if mask land (1 lsl fslot_rate) <> 0 then f.(fslot_rate) <- ctl.Congestion_iface.get_rate ();
  if mask land (1 lsl fslot_mss) <> 0 then
    f.(fslot_mss) <- float_of_int ctl.Congestion_iface.mss;
  if mask land (1 lsl fslot_srtt_us) <> 0 then
    f.(fslot_srtt_us) <- us_of_opt (ctl.Congestion_iface.srtt ());
  if mask land (1 lsl fslot_rtt_us) <> 0 then f.(fslot_rtt_us) <- fs.last_rtt_us.(0);
  if mask land (1 lsl fslot_minrtt_us) <> 0 then
    f.(fslot_minrtt_us) <- us_of_opt (ctl.Congestion_iface.min_rtt ());
  if mask land (1 lsl fslot_inflight) <> 0 then
    f.(fslot_inflight) <- float_of_int (ctl.Congestion_iface.inflight ());
  if mask land (1 lsl fslot_now_us) <> 0 then
    f.(fslot_now_us) <- us_of_ns (ctl.Congestion_iface.now ())

let refresh_pkt (m : Compile.machine) (ev : Congestion_iface.ack_event) ~bytes_lost =
  let p = m.Compile.pkt in
  p.(pslot_rtt_us) <- us_of_opt ev.rtt_sample;
  p.(pslot_bytes_acked) <- float_of_int ev.bytes_acked;
  p.(pslot_bytes_lost) <- float_of_int bytes_lost;
  p.(pslot_ecn) <- (if ev.ecn_echo then 1.0 else 0.0);
  p.(pslot_send_rate) <- Option.value ev.send_rate ~default:0.0;
  p.(pslot_recv_rate) <- Option.value ev.delivery_rate ~default:0.0;
  p.(pslot_inflight) <- float_of_int ev.inflight_after;
  p.(pslot_now_us) <- us_of_ns ev.now

(* --- reporting --- *)

let reserved_fields fs ~packets =
  let ctl = fs.ctl in
  [|
    ("_cwnd", float_of_int (ctl.Congestion_iface.get_cwnd ()));
    ("_rate", ctl.Congestion_iface.get_rate ());
    ("_mss", float_of_int ctl.Congestion_iface.mss);
    ("_srtt_us", us_of_opt (ctl.Congestion_iface.srtt ()));
    ("_rtt_us", fs.last_rtt_us.(0));
    ("_minrtt_us", us_of_opt (ctl.Congestion_iface.min_rtt ()));
    ("_inflight_bytes", float_of_int (ctl.Congestion_iface.inflight ()));
    ("_send_rate", Option.value (ctl.Congestion_iface.send_rate_ewma ()) ~default:0.0);
    ("_recv_rate", Option.value (ctl.Congestion_iface.delivery_rate_ewma ()) ~default:0.0);
    ("_now_us", Time_ns.to_float_us (ctl.Congestion_iface.now ()));
    ("_packets", float_of_int packets);
  |]

let send_report t fs =
  let flow = fs.ctl.Congestion_iface.flow in
  (* A span opens when the datapath decides to report; [Channel.send]
     stamps it as sent, so the start->sent gap is summarize time. *)
  let span =
    match t.tracer with
    | None -> Message.no_trace
    | Some tr ->
      Ccp_obs.Tracer.start tr ~now:(Sim.now t.sim) ~flow ~kind:Ccp_obs.Tracer.Report_span
  in
  (match fs.measurement with
  | No_measurement ->
    let fields = reserved_fields fs ~packets:0 in
    Channel.send t.channel ~from:Channel.Datapath_end ~span (Message.Report { flow; fields })
  | Fold_state fold ->
    let packets = Compile.Fold.packet_count fold in
    let fields = Array.append (Compile.Fold.fields fold) (reserved_fields fs ~packets) in
    Channel.send t.channel ~from:Channel.Datapath_end ~span (Message.Report { flow; fields });
    (match fs.exec with
    | Some (_, m) ->
      refresh_flow fs m (Compile.Fold.init_flow_mask (Compile.Fold.plan fold));
      Compile.Fold.reset fold ~m
    | None -> ())
  | Vector v ->
    let rows = Array.of_list (List.rev v.rows) in
    v.rows <- [];
    v.count <- 0;
    Channel.send t.channel ~from:Channel.Datapath_end ~span
      (Message.Report_vector { flow; columns = v.columns; rows }));
  t.reports_sent <- t.reports_sent + 1;
  (match t.obs with
  | Some h -> (
    Ccp_obs.Metrics.incr h.o_reports;
    match h.tk_reports with
    | Some s -> Ccp_obs.Topk.touch s flow
    | None -> ())
  | None -> ());
  obs_record t (Ccp_obs.Recorder.Report_sent { flow; urgent = false })

let send_urgent t fs kind =
  let ctl = fs.ctl in
  t.urgents_sent <- t.urgents_sent + 1;
  (match t.obs with
  | Some h -> (
    Ccp_obs.Metrics.incr h.o_urgents;
    match h.tk_reports with
    | Some s -> Ccp_obs.Topk.touch s ctl.Congestion_iface.flow
    | None -> ())
  | None -> ());
  obs_record t
    (Ccp_obs.Recorder.Report_sent { flow = ctl.Congestion_iface.flow; urgent = true });
  let span =
    match t.tracer with
    | None -> Message.no_trace
    | Some tr ->
      Ccp_obs.Tracer.start tr ~now:(Sim.now t.sim) ~flow:ctl.Congestion_iface.flow
        ~kind:Ccp_obs.Tracer.Urgent_span
  in
  Channel.send t.channel ~from:Channel.Datapath_end ~span
    (Message.Urgent
       {
         flow = ctl.Congestion_iface.flow;
         kind;
         cwnd_at_event = ctl.Congestion_iface.get_cwnd ();
         inflight_at_event = ctl.Congestion_iface.inflight ();
       })

(* --- program execution --- *)

let cancel_wait fs =
  Option.iter Sim.cancel fs.wait_timer;
  fs.wait_timer <- None

let eval_flow fs (m : Compile.machine) (code : Compile.code) =
  refresh_flow fs m code.Compile.flow_mask;
  Compile.exec code ~m ~slots:Compile.no_slots ~incidents:fs.incidents;
  m.Compile.stack.(0)

(* --- runtime guardrails and quarantine --- *)

(* Fold the evaluator's raw incident counts (cumulative for the flow's
   lifetime) into the current guard window. Division-by-zero only scores
   once per [div_storm_unit] occurrences: isolated div-by-zero is a normal
   hazard of measurement-driven programs, a sustained storm is not. *)
let absorb_eval_incidents t fs =
  fs.guard.non_finite <- fs.incidents.Eval.non_finite - fs.nonfinite_baseline;
  fs.guard.div_storms <-
    (fs.incidents.Eval.div_by_zero - fs.div_baseline) / t.config.guard.div_storm_unit

(* Backed-off re-admission probes: while the flow sits in quarantine,
   re-send [Ready] on a doubling timer (capped at
   [quarantine_backoff_max]) so an agent that can produce a corrected
   install gets the chance without waiting for a watchdog period — and a
   persistently hostile agent is probed ever more rarely. The probe chain
   dies the moment an accepted install clears [fs.quarantined]. *)
let rec quarantine_probe t fs ~delay =
  if fs.quarantined then begin
    t.quarantine_probes_sent <- t.quarantine_probes_sent + 1;
    Channel.send t.channel ~from:Channel.Datapath_end
      (Message.Ready
         {
           flow = fs.ctl.Congestion_iface.flow;
           mss = fs.ctl.Congestion_iface.mss;
           init_cwnd = fs.ctl.Congestion_iface.get_cwnd ();
         });
    let next =
      Time_ns.min t.config.guard.quarantine_backoff_max (Time_ns.scale delay 2.0)
    in
    ignore
      (Sim.schedule_after t.sim ~delay:next (fun () -> quarantine_probe t fs ~delay:next))
  end

let quarantine t fs =
  let g = t.config.guard in
  fs.quarantined <- true;
  t.quarantines <- t.quarantines + 1;
  (* The offending program is cancelled outright; only an accepted
     re-install brings CCP control back. *)
  cancel_wait fs;
  fs.program <- None;
  fs.exec <- None;
  fs.measurement <- No_measurement;
  fs.ctl.Congestion_iface.set_rate 0.0;
  (match g.quarantine_mode with
  | Some (Clamp { cwnd_segments }) ->
    fs.ctl.Congestion_iface.set_cwnd (cwnd_segments * fs.ctl.Congestion_iface.mss)
  | Some (Native make_cc) ->
    let cc = make_cc () in
    fs.quarantine_cc <- Some cc;
    cc.Congestion_iface.on_init fs.ctl
  | None -> assert false (* only called when a mode is armed *));
  (match t.obs with Some h -> Ccp_obs.Metrics.incr h.o_quarantines | None -> ());
  obs_record t
    (Ccp_obs.Recorder.Quarantine
       {
         flow = fs.ctl.Congestion_iface.flow;
         incidents = guard_total fs.guard;
         dominant = Message.incident_kind_to_string (dominant_incident fs.guard);
       });
  Channel.send t.channel ~from:Channel.Datapath_end
    (Message.Quarantined
       {
         flow = fs.ctl.Congestion_iface.flow;
         incidents = guard_total fs.guard;
         dominant = dominant_incident fs.guard;
       });
  match g.quarantine_backoff with
  | Some initial ->
    ignore
      (Sim.schedule_after t.sim ~delay:initial (fun () -> quarantine_probe t fs ~delay:initial))
  | None -> ()

let maybe_quarantine t fs =
  let g = t.config.guard in
  match g.quarantine_mode with
  | None -> ()
  | Some _ ->
    if (not fs.quarantined) && g.quarantine_after > 0 && guard_total fs.guard >= g.quarantine_after
    then quarantine t fs

(* Absorb eval-side incidents and re-check the threshold; call after any
   guarded evaluation or fold step. *)
let guard_note t fs =
  absorb_eval_incidents t fs;
  maybe_quarantine t fs

(* Execute primitives from [fs.pc] until the program blocks on a wait or
   finishes. The step budget guards against zero-length waits in repeating
   programs (typecheck rejects wait-free loops, but the datapath cannot
   trust the agent); every [Cwnd]/[Rate]/[Wait] result passes through the
   guard envelope before it touches the flow. *)
let rec advance t fs =
  let g = t.config.guard in
  let budget = ref (max 1 g.max_eval_steps) in
  let rec step () =
    decr budget;
    if !budget <= 0 then begin
      fs.guard.eval_budget <- fs.guard.eval_budget + 1;
      obs_guard_incident t fs;
      maybe_quarantine t fs;
      if not fs.quarantined then
        fs.wait_timer <-
          Some (Sim.schedule_after t.sim ~delay:(Time_ns.us 1) (fun () ->
                    fs.wait_timer <- None;
                    advance t fs))
    end
    else
      match fs.exec with
      | None -> ()
      | Some (cp, m) ->
        let prims = cp.Compile.prims in
        if fs.pc >= Array.length prims then begin
          if cp.Compile.repeat then begin
            fs.pc <- 0;
            step ()
          end
        end
        else begin
          let prim = prims.(fs.pc) in
          fs.pc <- fs.pc + 1;
          match prim with
          | Compile.Measure_vector { columns; col_idx } ->
            fs.measurement <- Vector { columns; col_idx; rows = []; count = 0 };
            step ()
          | Compile.Measure_fold plan ->
            refresh_flow fs m (Compile.Fold.init_flow_mask plan);
            fs.measurement <- Fold_state (Compile.Fold.create plan ~m);
            step ()
          | Compile.Rate code ->
            let raw = eval_flow fs m code in
            let rate = Float.min (Float.max 0.0 raw) g.max_rate_bytes_per_sec in
            if rate <> raw then begin
              fs.guard.rate_clamped <- fs.guard.rate_clamped + 1;
              obs_guard_incident t fs
            end;
            fs.ctl.Congestion_iface.set_rate rate;
            guard_note t fs;
            step ()
          | Compile.Cwnd code ->
            let raw = eval_flow fs m code in
            let lo = float_of_int (g.min_cwnd_segments * fs.ctl.Congestion_iface.mss) in
            let hi = float_of_int g.max_cwnd_bytes in
            let cwnd = Float.min (Float.max lo raw) hi in
            if cwnd <> raw then begin
              fs.guard.cwnd_clamped <- fs.guard.cwnd_clamped + 1;
              obs_guard_incident t fs
            end;
            fs.ctl.Congestion_iface.set_cwnd (int_of_float cwnd);
            guard_note t fs;
            step ()
          | Compile.Wait code ->
            let us = Float.max 0.0 (eval_flow fs m code) in
            guard_note t fs;
            let duration = guarded_wait t fs (Time_ns.of_float_sec (us *. 1e-6)) in
            if not fs.quarantined then block_for t fs duration
          | Compile.Wait_rtts code ->
            let rtts = Float.max 0.0 (eval_flow fs m code) in
            let base =
              match fs.ctl.Congestion_iface.srtt () with
              | Some srtt -> srtt
              | None -> t.config.default_wait
            in
            guard_note t fs;
            let duration = guarded_wait t fs (Time_ns.scale base rtts) in
            if not fs.quarantined then block_for t fs duration
          | Compile.Report ->
            let now = Sim.now t.sim in
            let throttled =
              match fs.last_report_at with
              | Some last ->
                Time_ns.compare (Time_ns.sub now last) t.config.guard.min_report_interval < 0
              | None -> false
            in
            if throttled then begin
              (* Skip the send but keep aggregating: the pending state goes
                 out with the next unthrottled report. *)
              fs.guard.report_throttled <- fs.guard.report_throttled + 1;
              obs_guard_incident t fs;
              maybe_quarantine t fs
            end
            else begin
              fs.last_report_at <- Some now;
              send_report t fs
            end;
            if not fs.quarantined then step ()
        end
  in
  step ()

(* A computed wait below the envelope floor would spin the simulator (or a
   real datapath's CPU) at one timestamp; floor it and count the clamp. *)
and guarded_wait t fs duration =
  if Time_ns.compare duration t.config.guard.min_wait < 0 then begin
    fs.guard.wait_clamped <- fs.guard.wait_clamped + 1;
    obs_guard_incident t fs;
    maybe_quarantine t fs;
    t.config.guard.min_wait
  end
  else duration

and block_for t fs duration =
  cancel_wait fs;
  fs.wait_timer <-
    Some (Sim.schedule_after t.sim ~delay:duration (fun () ->
              fs.wait_timer <- None;
              advance t fs))

(* Close the current guard window: bank its incidents in the datapath-wide
   accumulator and start the new program with a clean slate (otherwise a
   corrected re-install would be re-quarantined on inherited incidents). *)
let reset_guard_window t fs =
  let g = fs.guard and r = t.retired_guard in
  r.cwnd_clamped <- r.cwnd_clamped + g.cwnd_clamped;
  r.rate_clamped <- r.rate_clamped + g.rate_clamped;
  r.wait_clamped <- r.wait_clamped + g.wait_clamped;
  r.non_finite <- r.non_finite + g.non_finite;
  r.div_storms <- r.div_storms + g.div_storms;
  r.report_throttled <- r.report_throttled + g.report_throttled;
  r.fold_divergence <- r.fold_divergence + g.fold_divergence;
  r.eval_budget <- r.eval_budget + g.eval_budget;
  g.cwnd_clamped <- 0;
  g.rate_clamped <- 0;
  g.wait_clamped <- 0;
  g.non_finite <- 0;
  g.div_storms <- 0;
  g.report_throttled <- 0;
  g.fold_divergence <- 0;
  g.eval_budget <- 0;
  fs.div_baseline <- fs.incidents.Eval.div_by_zero;
  fs.nonfinite_baseline <- fs.incidents.Eval.non_finite

let send_install_result t fs verdict =
  Channel.send t.channel ~from:Channel.Datapath_end
    (Message.Install_result { flow = fs.ctl.Congestion_iface.flow; verdict })

(* Admission control (§2.4): the datapath trusts neither the agent nor the
   channel, so every [Install] re-runs the static checks and the resource
   limits and answers with an [Install_result] either way. An accepted
   install atomically wins the flow back from quarantine. *)
let install_program t fs program =
  let verdict =
    if not t.config.validate_installs then Ok ()
    else Limits.admit ~limits:t.config.limits program
  in
  match verdict with
  | Ok () -> (
    (* Compilation is part of admission: a program that names unknown
       variables, fields or builtins is refused here — even with
       [validate_installs = false], since the datapath cannot execute
       what it cannot compile — instead of limping along emitting
       unknown-name incidents per packet like the old interpreter. *)
    match Compile.compile program with
    | Error detail ->
      t.installs_rejected <- t.installs_rejected + 1;
      (match t.obs with
      | Some h -> Ccp_obs.Metrics.incr h.o_installs_rejected
      | None -> ());
      obs_record t
        (Ccp_obs.Recorder.Install
           { flow = fs.ctl.Congestion_iface.flow; accepted = false; detail });
      send_install_result t fs (Message.Rejected { reason = Limits.Invalid_program; detail });
      false
    | Ok cp ->
      t.installs_accepted <- t.installs_accepted + 1;
      (match t.obs with
      | Some h -> Ccp_obs.Metrics.incr h.o_installs_accepted
      | None -> ());
      obs_record t
        (Ccp_obs.Recorder.Install
           { flow = fs.ctl.Congestion_iface.flow; accepted = true; detail = "" });
      if fs.quarantined then begin
        fs.quarantined <- false;
        fs.quarantine_cc <- None
      end;
      reset_guard_window t fs;
      cancel_wait fs;
      fs.program <- Some program;
      fs.exec <- Some (cp, Compile.machine_for cp);
      fs.pc <- 0;
      fs.measurement <- No_measurement;
      send_install_result t fs Message.Accepted;
      advance t fs;
      true)
  | Error (reason, detail) ->
    t.installs_rejected <- t.installs_rejected + 1;
    (match t.obs with
    | Some h -> Ccp_obs.Metrics.incr h.o_installs_rejected
    | None -> ());
    obs_record t
      (Ccp_obs.Recorder.Install
         { flow = fs.ctl.Congestion_iface.flow; accepted = false; detail });
    send_install_result t fs (Message.Rejected { reason; detail });
    false

(* --- agent -> datapath messages --- *)

let note_agent_contact t fs =
  fs.last_agent_contact <- Sim.now t.sim;
  if fs.fallback_active then begin
    (* Agent recovered: the native stand-in releases the flow before the
       message is applied, so control is handed back atomically. *)
    fs.fallback_active <- false;
    fs.fallback_cc <- None;
    obs_record t
      (Ccp_obs.Recorder.Fallback
         { flow = fs.ctl.Congestion_iface.flow; entered = false })
  end

(* Spans close where control is applied. [rx_finish] finalizes the span
   carried by the message currently being delivered (if any); [rx_actuate]
   additionally times the actuation itself with the tracer's wall clock. *)
let rx_finish t ~disposition =
  match t.tracer with
  | None -> ()
  | Some tr ->
    let span = Channel.rx_span t.channel in
    if span >= 0 then
      Ccp_obs.Tracer.finish tr span ~now:(Sim.now t.sim) ~disposition ~apply_ns:0.0

let rx_actuate t apply =
  match t.tracer with
  | None -> apply ()
  | Some tr ->
    let span = Channel.rx_span t.channel in
    if span < 0 then apply ()
    else begin
      let clock = Ccp_obs.Tracer.wall_clock tr in
      let t0 = clock () in
      apply ();
      Ccp_obs.Tracer.finish tr span ~now:(Sim.now t.sim)
        ~disposition:Ccp_obs.Tracer.Actuated
        ~apply_ns:(Float.max 0.0 (clock () -. t0))
    end

let on_message t (msg : Message.t) =
  match msg with
  | Message.Install { flow; program } -> (
    match Hashtbl.find_opt t.flows flow with
    | Some fs -> (
      note_agent_contact t fs;
      match t.tracer with
      | None -> ignore (install_program t fs program : bool)
      | Some tr ->
        let span = Channel.rx_span t.channel in
        if span < 0 then ignore (install_program t fs program : bool)
        else begin
          let clock = Ccp_obs.Tracer.wall_clock tr in
          let t0 = clock () in
          let accepted = install_program t fs program in
          Ccp_obs.Tracer.finish tr span ~now:(Sim.now t.sim)
            ~disposition:
              (if accepted then Ccp_obs.Tracer.Actuated else Ccp_obs.Tracer.Rejected)
            ~apply_ns:(Float.max 0.0 (clock () -. t0))
        end)
    | None -> rx_finish t ~disposition:Ccp_obs.Tracer.No_action)
  | Message.Set_cwnd { flow; bytes } -> (
    match Hashtbl.find_opt t.flows flow with
    | Some fs ->
      note_agent_contact t fs;
      (* Direct knob commands cannot release a quarantine — only an
         accepted [Install] proves the agent has a corrected program. *)
      if not fs.quarantined then
        rx_actuate t (fun () -> fs.ctl.Congestion_iface.set_cwnd bytes)
      else rx_finish t ~disposition:Ccp_obs.Tracer.No_action
    | None -> rx_finish t ~disposition:Ccp_obs.Tracer.No_action)
  | Message.Set_rate { flow; bytes_per_sec } -> (
    match Hashtbl.find_opt t.flows flow with
    | Some fs ->
      note_agent_contact t fs;
      if not fs.quarantined then
        rx_actuate t (fun () ->
            fs.ctl.Congestion_iface.set_rate (Float.max 0.0 bytes_per_sec))
      else rx_finish t ~disposition:Ccp_obs.Tracer.No_action
    | None -> rx_finish t ~disposition:Ccp_obs.Tracer.No_action)
  | Message.Ready _ | Message.Report _ | Message.Report_vector _ | Message.Urgent _
  | Message.Closed _ | Message.Install_result _ | Message.Quarantined _ ->
    (* Agent-bound traffic is never delivered to the datapath end. *)
    ()

let create ~sim ~channel ?(config = default_config) ?obs () =
  let t =
    {
      sim;
      channel;
      config;
      flows = Hashtbl.create (max 8 config.flow_capacity);
      reports_sent = 0;
      urgents_sent = 0;
      installs_accepted = 0;
      installs_rejected = 0;
      vector_rows_dropped = 0;
      fallbacks_triggered = 0;
      fallback_probes_sent = 0;
      quarantines = 0;
      quarantine_probes_sent = 0;
      retired_guard = fresh_guard_incidents ();
      obs = Option.map make_obs_handles obs;
      tracer = (match obs with Some o -> o.Ccp_obs.Obs.tracer | None -> None);
    }
  in
  Channel.on_receive channel Channel.Datapath_end (on_message t);
  t

(* --- the Congestion_iface implementation --- *)

(* The watchdog checks agent liveness once per [after] period. Entering
   fallback always stops the orphaned program and disables pacing; what
   happens next depends on the mode. [Clamp] pins a conservative window and
   re-applies it on every tick while the silence lasts (an
   installed-but-orphaned program could keep adjusting the knobs between
   ticks). [Native] instantiates an in-datapath controller that takes over
   ACK and loss handling until the agent returns. In either mode, every
   tick spent in fallback re-sends [Ready] — a cheap re-handshake probe so
   a restarted agent re-learns the flow and can reclaim it. *)
let rec watchdog_tick t fs (fb : fallback) =
  let silence = Time_ns.sub (Sim.now t.sim) fs.last_agent_contact in
  if fs.quarantined then begin
    (* Quarantine supersedes the watchdog: the guard envelope already holds
       the flow. Still probe a silent agent so a restarted one re-learns
       the flow and can send the corrected install. *)
    if Time_ns.compare silence fb.after >= 0 then begin
      t.fallback_probes_sent <- t.fallback_probes_sent + 1;
      Channel.send t.channel ~from:Channel.Datapath_end
        (Message.Ready
           {
             flow = fs.ctl.Congestion_iface.flow;
             mss = fs.ctl.Congestion_iface.mss;
             init_cwnd = fs.ctl.Congestion_iface.get_cwnd ();
           })
    end;
    ignore (Sim.schedule_after t.sim ~delay:fb.after (fun () -> watchdog_tick t fs fb))
  end
  else begin
  if Time_ns.compare silence fb.after >= 0 then begin
    if not fs.fallback_active then begin
      fs.fallback_active <- true;
      t.fallbacks_triggered <- t.fallbacks_triggered + 1;
      (match t.obs with Some h -> Ccp_obs.Metrics.incr h.o_fallbacks | None -> ());
      obs_record t
        (Ccp_obs.Recorder.Fallback
           { flow = fs.ctl.Congestion_iface.flow; entered = true });
      (* Stop executing the orphaned program. *)
      cancel_wait fs;
      fs.program <- None;
      fs.exec <- None;
      fs.measurement <- No_measurement;
      fs.ctl.Congestion_iface.set_rate 0.0;
      match fb.mode with
      | Clamp _ -> ()
      | Native make_cc ->
        let cc = make_cc () in
        fs.fallback_cc <- Some cc;
        cc.Congestion_iface.on_init fs.ctl
    end;
    (match fb.mode with
    | Clamp { cwnd_segments } ->
      fs.ctl.Congestion_iface.set_cwnd (cwnd_segments * fs.ctl.Congestion_iface.mss);
      fs.ctl.Congestion_iface.set_rate 0.0
    | Native _ -> ());
    t.fallback_probes_sent <- t.fallback_probes_sent + 1;
    Channel.send t.channel ~from:Channel.Datapath_end
      (Message.Ready
         {
           flow = fs.ctl.Congestion_iface.flow;
           mss = fs.ctl.Congestion_iface.mss;
           init_cwnd = fs.ctl.Congestion_iface.get_cwnd ();
         })
  end;
  ignore
    (Sim.schedule_after t.sim ~delay:fb.after (fun () -> watchdog_tick t fs fb))
  end

let on_init t ctl =
  let fs =
    {
      ctl;
      program = None;
      exec = None;
      pc = 0;
      wait_timer = None;
      measurement = No_measurement;
      last_rtt_us = [| 0.0 |];
      last_ecn_urgent = Time_ns.zero;
      last_agent_contact = Sim.now t.sim;
      fallback_active = false;
      fallback_cc = None;
      incidents = Eval.fresh_counter ();
      quarantined = false;
      quarantine_cc = None;
      last_report_at = None;
      div_baseline = 0;
      nonfinite_baseline = 0;
      guard = fresh_guard_incidents ();
    }
  in
  Hashtbl.replace t.flows ctl.Congestion_iface.flow fs;
  (match t.config.fallback with
  | Some fb -> ignore (Sim.schedule_after t.sim ~delay:fb.after (fun () -> watchdog_tick t fs fb))
  | None -> ());
  Channel.send t.channel ~from:Channel.Datapath_end
    (Message.Ready
       {
         flow = ctl.Congestion_iface.flow;
         mss = ctl.Congestion_iface.mss;
         init_cwnd = ctl.Congestion_iface.get_cwnd ();
       })

(* The per-ACK fast path: refresh only the flow slots the update code
   reads, copy the packet into the slot table, and run the compiled
   fold — no strings, no closures, no allocation. *)
let record_measurement t fs (ev : Congestion_iface.ack_event) ~bytes_lost =
  match (fs.measurement, fs.exec) with
  | No_measurement, _ | _, None -> ()
  | Fold_state fold, Some (_, m) ->
    let plan = Compile.Fold.plan fold in
    refresh_flow fs m (Compile.Fold.step_flow_mask plan);
    refresh_pkt m ev ~bytes_lost;
    Compile.Fold.step fold ~m ~incidents:fs.incidents;
    if Compile.Fold.diverged fold ~limit:t.config.guard.divergence_limit then begin
      fs.guard.fold_divergence <- fs.guard.fold_divergence + 1;
      obs_guard_incident t fs
    end;
    guard_note t fs
  | Vector v, Some (_, m) ->
    if v.count >= t.config.max_vector_rows then
      t.vector_rows_dropped <- t.vector_rows_dropped + 1
    else begin
      refresh_pkt m ev ~bytes_lost;
      let row = Array.map (fun i -> m.Compile.pkt.(i)) v.col_idx in
      v.rows <- row :: v.rows;
      v.count <- v.count + 1
    end

(* The CCP half of the per-ACK fast path, after control-ownership
   dispatch. Kept allocation-free when [t.obs = None]; with observability
   on, the fold step is timed into the [datapath.fold_step_ns]
   histogram. *)
let on_ack_ccp t fs ctl (ev : Congestion_iface.ack_event) =
  (match ev.rtt_sample with
  | Some r -> fs.last_rtt_us.(0) <- us_of_ns r
  | None -> ());
  (match t.obs with
  | None -> record_measurement t fs ev ~bytes_lost:0
  | Some h ->
    Ccp_obs.Metrics.incr h.o_acks;
    let t0 = h.obs.Ccp_obs.Obs.clock () in
    record_measurement t fs ev ~bytes_lost:0;
    Ccp_obs.Metrics.observe h.o_fold_ns (h.obs.Ccp_obs.Obs.clock () -. t0));
  if ev.ecn_echo && t.config.urgent_on_ecn then begin
    (* Rate-limit ECN urgents to one per smoothed RTT. *)
    let interval =
      match ctl.Congestion_iface.srtt () with
      | Some srtt -> srtt
      | None -> t.config.default_wait
    in
    if Time_ns.compare (Time_ns.sub ev.now fs.last_ecn_urgent) interval >= 0 then begin
      fs.last_ecn_urgent <- ev.now;
      send_urgent t fs Message.Ecn
    end
  end

let on_ack t ctl (ev : Congestion_iface.ack_event) =
  (* [Hashtbl.find] + exception instead of [find_opt]: the option would be
     a fresh allocation on every ACK. *)
  match Hashtbl.find t.flows ctl.Congestion_iface.flow with
  | exception Not_found -> ()
  | fs ->
    if fs.quarantined then (
      (* The quarantine controller owns the flow until an accepted
         re-install; no measurement aggregation, no urgents. Clamp-mode
         quarantine ([quarantine_cc = None]) pins the window and rides
         out the episode. *)
      match fs.quarantine_cc with
      | Some cc -> cc.Congestion_iface.on_ack ctl ev
      | None -> ())
    else (
      match fs.fallback_cc with
      | Some cc when fs.fallback_active ->
        (* The native stand-in owns the flow; no measurement aggregation
           and no urgents while the agent is out. *)
        cc.Congestion_iface.on_ack ctl ev
      | Some _ | None -> on_ack_ccp t fs ctl ev)

let on_loss t ctl (loss : Congestion_iface.loss_event) =
  match Hashtbl.find_opt t.flows ctl.Congestion_iface.flow with
  | None -> ()
  | Some { quarantined = true; quarantine_cc = Some cc; _ } ->
    cc.Congestion_iface.on_loss ctl loss
  | Some { quarantined = true; _ } -> (
    (* Clamp-mode quarantine keeps the kernel-style RTO collapse but sends
       no urgent: the agent lost the flow until it re-installs. *)
    match loss.kind with
    | Congestion_iface.Rto -> ctl.Congestion_iface.set_cwnd ctl.Congestion_iface.mss
    | Congestion_iface.Dup_acks -> ())
  | Some { fallback_active = true; fallback_cc = Some cc; _ } ->
    cc.Congestion_iface.on_loss ctl loss
  | Some fs -> (
    match loss.kind with
    | Congestion_iface.Rto ->
      (* Kernel-style safety: a timeout collapses the window in the
         datapath itself; the agent will reprogram when it reacts. *)
      ctl.Congestion_iface.set_cwnd ctl.Congestion_iface.mss;
      if t.config.urgent_on_loss then send_urgent t fs Message.Timeout
    | Congestion_iface.Dup_acks ->
      if t.config.urgent_on_loss then send_urgent t fs Message.Dup_ack_loss)

let on_exit_recovery t ctl =
  match Hashtbl.find_opt t.flows ctl.Congestion_iface.flow with
  | Some { quarantined = true; quarantine_cc = Some cc; _ }
  | Some { quarantined = false; fallback_active = true; fallback_cc = Some cc; _ } ->
    cc.Congestion_iface.on_exit_recovery ctl
  | Some _ | None -> ()

let congestion_control t : Congestion_iface.t =
  {
    name = "ccp";
    on_init = on_init t;
    on_ack = on_ack t;
    on_loss = on_loss t;
    on_exit_recovery = on_exit_recovery t;
  }

let installed_program t ~flow =
  Option.bind (Hashtbl.find_opt t.flows flow) (fun fs -> fs.program)

let reports_sent t = t.reports_sent
let urgents_sent t = t.urgents_sent
let installs_accepted t = t.installs_accepted
let installs_rejected t = t.installs_rejected
let vector_rows_dropped t = t.vector_rows_dropped

let eval_incidents t ~flow =
  Option.map (fun fs -> fs.incidents) (Hashtbl.find_opt t.flows flow)

let fallbacks_triggered t = t.fallbacks_triggered
let fallback_probes_sent t = t.fallback_probes_sent

let in_fallback t ~flow =
  match Hashtbl.find_opt t.flows flow with
  | Some fs -> fs.fallback_active
  | None -> false

let quarantines_triggered t = t.quarantines
let quarantine_probes_sent t = t.quarantine_probes_sent

let has_compiled_program t ~flow =
  match Hashtbl.find_opt t.flows flow with
  | Some fs -> fs.exec <> None
  | None -> false

let in_quarantine t ~flow =
  match Hashtbl.find_opt t.flows flow with
  | Some fs -> fs.quarantined
  | None -> false

let guard_incidents t ~flow = Option.map (fun fs -> fs.guard) (Hashtbl.find_opt t.flows flow)

let guard_incident_total t =
  Hashtbl.fold (fun _ fs acc -> acc + guard_total fs.guard) t.flows (guard_total t.retired_guard)

type controller = Agent_program | Native_fallback | Quarantined | Awaiting_agent

let controller t ~flow =
  Option.map
    (fun fs ->
      if fs.quarantined then Quarantined
      else if fs.fallback_active then Native_fallback
      else if fs.program <> None then Agent_program
      else Awaiting_agent)
    (Hashtbl.find_opt t.flows flow)
