(** Send-side transport state machine.

    A [Tcp_flow.t] implements reliable bulk transfer with congestion
    control delegated to a {!Congestion_iface.t}: window- and rate-based
    sending (token-bucket pacing), RTT sampling via receiver timestamp
    echoes, BBR-style delivery-rate sampling, duplicate-ACK fast
    retransmit with NewReno-style recovery (window inflation during
    recovery, retransmission on partial ACKs), and RFC 6298 retransmission
    timeouts with exponential backoff and go-back-N recovery.

    The flow is datapath-neutral glue: native controllers make their
    decisions inside [on_ack]/[on_loss]; the CCP shim forwards summaries to
    the off-datapath agent and applies its asynchronous updates through the
    same {!Congestion_iface.ctl} handle. *)

open Ccp_util
open Ccp_eventsim
open Ccp_net

type t

type config = {
  mss : int;  (** payload bytes per segment *)
  initial_cwnd_segments : int;
  ecn_capable : bool;
  min_rto : Time_ns.t;
  app_limit_bytes : int option;  (** [None] = unlimited backlog *)
}

val default_config : config
(** mss 1448 (1500-byte wire MTU minus headers), initial window 10
    segments, ECN off, min RTO 200 ms, unlimited data. *)

val create :
  sim:Sim.t ->
  flow:Packet.flow_id ->
  config:config ->
  cc:Congestion_iface.t ->
  transmit:(Packet.t -> unit) ->
  ?obs:Ccp_obs.Obs.t ->
  ?obs_sample_interval:Time_ns.t ->
  ?perturb:Ccp_perturb.Sampler.t ->
  unit ->
  t
(** With [obs] the flow publishes RTT/segment/retransmit/timeout/recovery
    metrics and records a [Flow_sample] trace event (cwnd, pacing rate,
    srtt, inflight, delivery rate) on ACKs, throttled to at most one per
    [obs_sample_interval] (default: every ACK).

    With [perturb] the congestion controller's measurement inputs are
    perturbed per the sampler's plan: RTT samples are jittered before
    reaching the RTT estimator and the ack event, and delivery-rate
    samples pass through the sampler's error model. The observability
    metrics and the RTT listener keep the true samples. Omitted (or a
    sampler over the empty plan), measurements are untouched. *)

val start : t -> unit
(** Call the controller's [on_init] and begin transmitting. *)

val on_ack : t -> Packet.t -> unit
(** Feed an arriving ACK (the dumbbell's [ack_sink]). *)

val ctl : t -> Congestion_iface.ctl
(** The control handle (shared with the congestion controller). *)

(** {1 Observers} *)

val cwnd : t -> int
val pacing_rate : t -> float
val inflight : t -> int
val snd_nxt : t -> int
val snd_una : t -> int
val in_recovery : t -> bool
val srtt : t -> Time_ns.t option
val min_rtt : t -> Time_ns.t option
val rtt_estimator : t -> Rtt_estimator.t
val rate_estimator : t -> Rate_estimator.t

(** {1 Counters} *)

val segments_sent : t -> int
val retransmits : t -> int
val timeouts : t -> int
val recoveries : t -> int

(** {1 Listeners} *)

val set_cwnd_listener : t -> (Time_ns.t -> int -> unit) -> unit
(** Invoked on every congestion-window change (Figure 3's trace). *)

val set_rtt_listener : t -> (Time_ns.t -> Time_ns.t -> unit) -> unit
(** Invoked with (now, rtt sample) on every RTT measurement. *)
