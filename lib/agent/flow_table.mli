(** Generation-checked slot pool for per-flow agent state.

    The {!Ccp_obs.Tracer} pool idiom, generalized: values live in a
    fixed preallocated slot array, and every registration mints a token
    that folds the slot's generation counter in with its index. Lookups
    through a token re-check the generation, so a reference that
    outlives its flow (a closure captured by an algorithm, a timer
    firing after teardown) is detected and counted — never resolved to
    whichever flow reused the slot. Register/release of thousands of
    flows touches only the preallocated arrays plus one bounded
    flow-id index entry, keeping churn allocation-bounded.

    Capacity is fixed at creation (rounded up to a power of two);
    exhaustion is a structured [Error `Pool_exhausted] the caller turns
    into an explicit rejection, not an exception mid-dispatch. *)

type 'a t

type token = int
(** Slot index | (generation << bits). Only meaningful to the pool that
    minted it. *)

val no_token : token
(** Sentinel (-1): never live, and {!get} on it counts nothing. *)

type stats = {
  capacity : int;  (** slot count (power of two) *)
  live : int;  (** currently registered flows *)
  registered : int;  (** lifetime successful registrations *)
  released : int;  (** lifetime releases (incl. replacements) *)
  stale_refs : int;  (** token lookups that failed the generation check *)
  rejected : int;  (** registrations refused with [`Pool_exhausted] *)
}

val create : ?capacity:int -> unit -> 'a t
(** Default capacity 1024; raises [Invalid_argument] when not positive. *)

val register : 'a t -> flow:int -> 'a -> (token, [ `Pool_exhausted ]) result
(** Bind [flow] to a fresh slot and return its token. An existing
    binding for [flow] is released first (its tokens go stale), matching
    [Hashtbl.replace] semantics. *)

val release : 'a t -> flow:int -> bool
(** Free [flow]'s slot, bumping its generation so every outstanding
    token for it goes stale. [false] if the flow was not registered. *)

val get : 'a t -> token -> 'a option
(** Token-checked dereference. [None] — with [stale_refs] incremented —
    when the token's generation no longer matches; {!no_token} returns
    [None] silently. *)

val is_live : 'a t -> token -> bool
(** Generation check without counting a stale reference. *)

val find : 'a t -> flow:int -> 'a option
(** Lookup by flow id via the index (the common dispatch path). *)

val token_of : 'a t -> flow:int -> token option
(** The currently-live token for [flow], if registered. *)

val live : 'a t -> int
val capacity : 'a t -> int

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Visit live entries as [(flow, value)], in slot order (deterministic,
    unlike hashtable order). *)

val fold : 'a t -> init:'b -> f:(int -> 'a -> 'b -> 'b) -> 'b

val clear : 'a t -> unit
(** Release every live slot; all outstanding tokens go stale. *)

val stats : 'a t -> stats
