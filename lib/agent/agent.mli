(** The CCP agent: the user-space process between algorithms and datapaths.

    The agent owns the agent end of the IPC {!Ccp_ipc.Channel}, keeps a
    per-flow registry, picks an algorithm for each new flow (different
    flows on one host may run different algorithms — the paper's file
    download vs. video call example), builds each algorithm instance's
    {!Algorithm.handle} with policy enforcement baked in, and dispatches
    incoming reports and urgent events to the right instance. *)

open Ccp_eventsim
open Ccp_ipc

type t

val create :
  sim:Sim.t ->
  channel:Channel.t ->
  choose:(Algorithm.flow_info -> Algorithm.t) ->
  ?policy:(Algorithm.flow_info -> Policy.t) ->
  ?obs:Ccp_obs.Obs.t ->
  unit ->
  t
(** [choose] selects the algorithm for each new flow; [policy] (default
    unrestricted) selects its policy. Registers the agent as the channel's
    agent-side endpoint. With [obs] the agent publishes
    reports/urgents/installs/handler-error counters. *)

val with_algorithm : sim:Sim.t -> channel:Channel.t -> Algorithm.t -> t
(** Convenience: every flow runs the same algorithm, no policy. *)

val reset : t -> unit
(** Drop every per-flow algorithm instance, as a crashed-and-restarted
    agent process would: counters survive (they are observability, not
    state) but flows must re-register via [Ready] before the agent serves
    them again. The datapath watchdog's fallback probes provide exactly
    that re-handshake. Used by fault-injection experiments
    ({!Ccp_ipc.Fault_plan} agent outages). *)

(** {1 Introspection} *)

val flow_count : t -> int
val algorithm_name : t -> flow:int -> string option
val reports_received : t -> int
val urgents_received : t -> int
val installs_sent : t -> int
val handler_errors : t -> int
(** Exceptions raised by algorithm handlers; the agent isolates them so a
    buggy algorithm cannot take down other flows (§5 safety). *)

val install_results_received : t -> int
val install_rejects : t -> int
(** Installs the datapath's admission control refused. *)

val quarantines_seen : t -> int
(** Quarantine events received from the datapath. *)
