(** The CCP agent: the user-space process between algorithms and datapaths.

    The agent owns the agent end of the IPC {!Ccp_ipc.Channel}, keeps a
    per-flow registry, picks an algorithm for each new flow (different
    flows on one host may run different algorithms — the paper's file
    download vs. video call example), builds each algorithm instance's
    {!Algorithm.handle} with policy enforcement baked in, and dispatches
    incoming reports and urgent events to the right instance.

    Three optional resilience layers harden it against the failure modes
    a real deployment hits first: {!type-overload} bounds the report
    backlog with deterministic shedding and budgeted round-robin
    dispatch; {!type-degrade} quarantines a flow whose handlers keep
    failing (the datapath watchdog then takes that flow to native CC)
    with exponential-backoff re-admission; and {!checkpoint}/{!restore}
    snapshot per-flow algorithm state so a crashed-and-restarted agent
    resumes warm instead of cold. All three are off by default, and off
    means byte-identical to the pre-resilience agent. *)

open Ccp_util
open Ccp_eventsim
open Ccp_ipc

type t

(** Overload control. Reports (only — urgents bypass batching, §2.4) are
    parked in per-flow FIFO queues and drained [dispatch_budget] at a
    time, round-robin across flows, every [dispatch_interval]. Above
    [high_watermark] the agent sheds the oldest report of the
    deepest-backlog flow (ties to the lowest flow id), never a flow's
    only queued report; [queue_capacity] is the hard cap. Shed reports
    finalize their span with the [Shed] disposition and count in
    [agent.reports_shed]. *)
type overload = {
  queue_capacity : int;
  high_watermark : int;
  dispatch_budget : int;
  dispatch_interval : Time_ns.t;
}

(** Per-flow degradation: [error_threshold] {e consecutive} handler
    failures quarantine that flow agent-side — its messages are dropped
    (so the datapath watchdog reverts it to native CC) while every other
    flow keeps full service. After a backoff (starting at
    [backoff_initial], doubling per re-trip up to [backoff_max]) the
    agent rebuilds a fresh algorithm instance and re-admits the flow. *)
type degrade = {
  error_threshold : int;
  backoff_initial : Time_ns.t;
  backoff_max : Time_ns.t;
}

val create :
  sim:Sim.t ->
  channel:Channel.t ->
  choose:(Algorithm.flow_info -> Algorithm.t) ->
  ?policy:(Algorithm.flow_info -> Policy.t) ->
  ?overload:overload ->
  ?degrade:degrade ->
  ?flow_pool:int ->
  ?obs:Ccp_obs.Obs.t ->
  unit ->
  t
(** [choose] selects the algorithm for each new flow; [policy] (default
    unrestricted) selects its policy. Registers the agent as the channel's
    agent-side endpoint. With [obs] the agent publishes
    reports/urgents/installs/handler-error counters plus the resilience
    metrics ([agent.reports_shed], [agent.queue_depth],
    [agent.dispatch_rounds], [agent.degradations], [agent.degraded_drops],
    [agent.warm_restores]). Raises [Invalid_argument] on a nonsensical
    [overload]/[degrade] (non-positive sizes or times, watermark above
    capacity, [backoff_max < backoff_initial]) or non-positive
    [flow_pool].

    [flow_pool] (default off) moves the per-flow registry into a
    preallocated {!Flow_table} of that capacity (rounded up to a power of
    two). Registration and teardown then touch only preallocated slots; a
    [Ready] arriving with every slot occupied is refused — counted in
    {!registrations_rejected}, the flow left to its datapath watchdog —
    and every handle action is generation-checked, so a closure or timer
    holding a handle to a torn-down flow is counted stale and dropped
    instead of acting on whichever flow reused the slot. Off means the
    original open-ended hashtable with identical behavior. *)

val with_algorithm : sim:Sim.t -> channel:Channel.t -> Algorithm.t -> t
(** Convenience: every flow runs the same algorithm, no policy. *)

val reset : t -> unit
(** Drop every per-flow algorithm instance, as a crashed-and-restarted
    agent process would: counters survive (they are observability, not
    state) but flows must re-register via [Ready] before the agent serves
    them again. The datapath watchdog's fallback probes provide exactly
    that re-handshake. Queued reports are shed (their spans finalized) and
    any staged {!restore} snapshot is discarded. Used by fault-injection
    experiments ({!Ccp_ipc.Fault_plan} agent outages). *)

(** {1 Checkpoint / warm restore} *)

val checkpoint : t -> Checkpoint.t
(** Snapshot every registered flow: algorithm name, last commanded
    cwnd/rate, and the algorithm's own registers
    ([Algorithm.handlers.on_checkpoint]; a raising checkpoint handler
    yields an empty register set rather than aborting the snapshot).
    Flows are listed in ascending id order, so the encoding is
    deterministic. *)

val restore : t -> Checkpoint.t -> unit
(** Stage a snapshot for replay. Nothing happens immediately: when a
    [Ready] re-registers a flow present in the snapshot {e with the same
    algorithm name}, the fresh instance gets [on_restore registers]
    before its [on_ready], or — for register-less algorithms — a
    [set_cwnd]/[set_rate] nudge to the last commanded values after it.
    Each flow's staged entry is consumed on first use; mismatched
    algorithm names discard the stale entry. Call after {!reset} when
    simulating a warm restart. *)

(** {1 Introspection} *)

val flow_count : t -> int
val algorithm_name : t -> flow:int -> string option

val flow_degraded : t -> flow:int -> bool
(** The flow is currently quarantined agent-side awaiting re-admission. *)

val reports_received : t -> int
val urgents_received : t -> int
val installs_sent : t -> int
val handler_errors : t -> int
(** Exceptions raised by algorithm handlers; the agent isolates them so a
    buggy algorithm cannot take down other flows (§5 safety). *)

val install_results_received : t -> int
val install_rejects : t -> int
(** Installs the datapath's admission control refused. *)

val quarantines_seen : t -> int
(** Quarantine events received from the datapath. *)

val reports_shed : t -> int
(** Reports dropped by overload control (watermark/capacity sheds, purges
    on degrade/close, and queue loss at [reset]). *)

val reports_queued : t -> int
(** Current queue depth across all flows (0 unless [overload] is armed). *)

val max_queue_wait : t -> Time_ns.t
(** Longest any {e dispatched} report sat queued. Since the shedder never
    takes a flow's only queued report, this bounds how long a backlogged
    flow went unserved — the starvation metric. Zero when [overload] is
    off. *)

val dispatch_rounds : t -> int
val degradations : t -> int
(** Times any flow was quarantined agent-side. *)

val degraded_drops : t -> int
(** Messages dropped because their flow was degraded. *)

val warm_restores : t -> int
(** Flows re-registered with a checkpoint snapshot applied. *)

val registrations_rejected : t -> int
(** [Ready] registrations refused because the [flow_pool] was exhausted.
    Always 0 without [flow_pool]. *)

val pool_stats : t -> Flow_table.stats option
(** Slot-pool accounting (live flows, lifetime churn, stale handle
    references, rejections) when [flow_pool] is armed; [None] otherwise. *)
