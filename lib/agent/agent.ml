open Ccp_util
open Ccp_eventsim
open Ccp_ipc

type flow_entry = {
  info : Algorithm.flow_info;
  algorithm_name : string;
  handlers : Algorithm.handlers;
}

type t = {
  sim : Sim.t;
  channel : Channel.t;
  choose : Algorithm.flow_info -> Algorithm.t;
  policy : Algorithm.flow_info -> Policy.t;
  flows : (int, flow_entry) Hashtbl.t;
  mutable reports_received : int;
  mutable urgents_received : int;
  mutable installs_sent : int;
  mutable handler_errors : int;
  mutable install_results_received : int;
  mutable install_rejects : int;
  mutable quarantines_seen : int;
  obs : agent_obs option;
  tracer : Ccp_obs.Tracer.t option;
}

and agent_obs = {
  o_reports : Ccp_obs.Metrics.counter;
  o_urgents : Ccp_obs.Metrics.counter;
  o_installs : Ccp_obs.Metrics.counter;
  o_handler_errors : Ccp_obs.Metrics.counter;
  o_rejects : Ccp_obs.Metrics.counter;
  o_quarantines : Ccp_obs.Metrics.counter;
}

let make_agent_obs obs =
  let open Ccp_obs in
  let m = obs.Obs.metrics in
  {
    o_reports = Metrics.counter m ~unit_:"msgs" "agent.reports_received";
    o_urgents = Metrics.counter m ~unit_:"msgs" "agent.urgents_received";
    o_installs = Metrics.counter m ~unit_:"msgs" "agent.installs_sent";
    o_handler_errors = Metrics.counter m ~unit_:"errors" "agent.handler_errors";
    o_rejects = Metrics.counter m ~unit_:"msgs" "agent.install_rejects";
    o_quarantines = Metrics.counter m ~unit_:"msgs" "agent.quarantines_seen";
  }

let obs_incr t pick =
  match t.obs with Some h -> Ccp_obs.Metrics.incr (pick h) | None -> ()

let guard t f =
  try f ()
  with exn ->
    t.handler_errors <- t.handler_errors + 1;
    obs_incr t (fun h -> h.o_handler_errors);
    Logs.warn (fun m -> m "agent: algorithm handler raised %s" (Printexc.to_string exn))

let make_handle t (info : Algorithm.flow_info) policy : Algorithm.handle =
  let install program =
    (match Ccp_lang.Typecheck.check program with
    | Ok _ -> ()
    | Error (first :: _) ->
      invalid_arg
        (Format.asprintf "Agent.install: invalid program: %a" Ccp_lang.Typecheck.pp_error first)
    | Error [] -> assert false);
    let program = Policy.apply_program policy program in
    t.installs_sent <- t.installs_sent + 1;
    obs_incr t (fun h -> h.o_installs);
    Channel.send t.channel ~from:Channel.Agent_end
      (Message.Install { flow = info.Algorithm.flow; program })
  in
  {
    info;
    install;
    install_text = (fun text -> install (Ccp_lang.Parser.parse_program text));
    set_cwnd =
      (fun bytes ->
        Channel.send t.channel ~from:Channel.Agent_end
          (Message.Set_cwnd { flow = info.Algorithm.flow; bytes = Policy.clamp_cwnd policy bytes }));
    set_rate =
      (fun rate ->
        Channel.send t.channel ~from:Channel.Agent_end
          (Message.Set_rate
             { flow = info.Algorithm.flow; bytes_per_sec = Policy.clamp_rate policy rate }));
    now_us = (fun () -> Time_ns.to_float_us (Sim.now t.sim));
  }

let on_ready t ~flow ~mss ~init_cwnd =
  let info = { Algorithm.flow; mss; init_cwnd } in
  let algorithm = t.choose info in
  let policy = t.policy info in
  let handle = make_handle t info policy in
  let handlers = algorithm.Algorithm.make handle in
  Hashtbl.replace t.flows flow
    { info; algorithm_name = algorithm.Algorithm.name; handlers };
  guard t handlers.Algorithm.on_ready

let dispatch t (msg : Message.t) =
  match msg with
  | Message.Ready { flow; mss; init_cwnd } -> on_ready t ~flow ~mss ~init_cwnd
  | Message.Report report -> (
    t.reports_received <- t.reports_received + 1;
    obs_incr t (fun h -> h.o_reports);
    match Hashtbl.find_opt t.flows report.Message.flow with
    | Some entry -> guard t (fun () -> entry.handlers.Algorithm.on_report report)
    | None -> ())
  | Message.Report_vector report -> (
    t.reports_received <- t.reports_received + 1;
    obs_incr t (fun h -> h.o_reports);
    match Hashtbl.find_opt t.flows report.Message.flow with
    | Some entry -> guard t (fun () -> entry.handlers.Algorithm.on_report_vector report)
    | None -> ())
  | Message.Urgent urgent -> (
    t.urgents_received <- t.urgents_received + 1;
    obs_incr t (fun h -> h.o_urgents);
    match Hashtbl.find_opt t.flows urgent.Message.flow with
    | Some entry -> guard t (fun () -> entry.handlers.Algorithm.on_urgent urgent)
    | None -> ())
  | Message.Install_result result -> (
    t.install_results_received <- t.install_results_received + 1;
    (match result.Message.verdict with
    | Message.Accepted -> ()
    | Message.Rejected { reason; detail } ->
      t.install_rejects <- t.install_rejects + 1;
      obs_incr t (fun h -> h.o_rejects);
      Logs.warn (fun m ->
          m "agent: datapath rejected install for flow %d: %s (%s)" result.Message.flow
            (Ccp_lang.Limits.reason_to_string reason)
            detail));
    match Hashtbl.find_opt t.flows result.Message.flow with
    | Some entry -> guard t (fun () -> entry.handlers.Algorithm.on_install_result result)
    | None -> ())
  | Message.Quarantined q -> (
    t.quarantines_seen <- t.quarantines_seen + 1;
    obs_incr t (fun h -> h.o_quarantines);
    Logs.warn (fun m ->
        m "agent: flow %d quarantined after %d incidents (dominant %s)" q.Message.flow
          q.Message.incidents
          (Message.incident_kind_to_string q.Message.dominant));
    match Hashtbl.find_opt t.flows q.Message.flow with
    | Some entry -> guard t (fun () -> entry.handlers.Algorithm.on_quarantine q)
    | None -> ())
  | Message.Closed { flow } -> Hashtbl.remove t.flows flow
  | Message.Install _ | Message.Set_cwnd _ | Message.Set_rate _ ->
    (* Datapath-bound traffic is never delivered to the agent end. *)
    ()

(* Handler dispatch runs inside the message's span (when it carries one):
   [handler_begin] arms the span so control messages the algorithm sends
   attach to it, and [handler_end] times the handler and finalizes spans
   that produced no action. *)
let on_message t (msg : Message.t) =
  match t.tracer with
  | None -> dispatch t msg
  | Some tr ->
    let span = Channel.rx_span t.channel in
    if span < 0 then dispatch t msg
    else begin
      Ccp_obs.Tracer.handler_begin tr span;
      dispatch t msg;
      Ccp_obs.Tracer.handler_end tr span ~now:(Sim.now t.sim)
    end

let create ~sim ~channel ~choose ?(policy = fun _ -> Policy.unrestricted) ?obs () =
  let t =
    {
      sim;
      channel;
      choose;
      policy;
      flows = Hashtbl.create 8;
      reports_received = 0;
      urgents_received = 0;
      installs_sent = 0;
      handler_errors = 0;
      install_results_received = 0;
      install_rejects = 0;
      quarantines_seen = 0;
      obs = Option.map make_agent_obs obs;
      tracer = (match obs with Some o -> o.Ccp_obs.Obs.tracer | None -> None);
    }
  in
  Channel.on_receive channel Channel.Agent_end (on_message t);
  t

let with_algorithm ~sim ~channel algorithm = create ~sim ~channel ~choose:(fun _ -> algorithm) ()

let reset t = Hashtbl.reset t.flows

let flow_count t = Hashtbl.length t.flows

let algorithm_name t ~flow =
  Option.map (fun e -> e.algorithm_name) (Hashtbl.find_opt t.flows flow)

let reports_received t = t.reports_received
let urgents_received t = t.urgents_received
let installs_sent t = t.installs_sent
let handler_errors t = t.handler_errors
let install_results_received t = t.install_results_received
let install_rejects t = t.install_rejects
let quarantines_seen t = t.quarantines_seen
