open Ccp_util
open Ccp_eventsim
open Ccp_ipc

(* Overload control: with [overload] armed, reports are parked in bounded
   per-flow FIFO queues and drained in budgeted round-robin rounds instead
   of being dispatched synchronously. Above the high watermark the agent
   sheds deterministically — always the oldest report of the
   deepest-backlog flow (ties to the lowest flow id), and never a flow's
   only queued report — so a hot flow absorbs its own overload and a quiet
   flow is never starved of its one pending update. *)
type overload = {
  queue_capacity : int;
  high_watermark : int;
  dispatch_budget : int;
  dispatch_interval : Time_ns.t;
}

(* Per-flow degradation: [error_threshold] consecutive handler failures
   quarantine that flow agent-side; the agent stops serving it, the
   datapath watchdog takes the flow to native CC, and after an
   exponentially backed-off pause the agent rebuilds a fresh algorithm
   instance and tries to win the flow back. *)
type degrade = {
  error_threshold : int;
  backoff_initial : Time_ns.t;
  backoff_max : Time_ns.t;
}

type flow_state = Active | Degraded of { until : Time_ns.t }

type flow_entry = {
  info : Algorithm.flow_info;
  mutable algorithm_name : string;
  mutable handlers : Algorithm.handlers;
  mutable consec_errors : int;
  mutable state : flow_state;
  mutable backoff : Time_ns.t;  (* next quarantine duration *)
  mutable last_cwnd : int;  (* last commanded via set_cwnd, bytes; 0 = never *)
  mutable last_rate : float;  (* last commanded via set_rate; 0 = never *)
}

(* Each queued element remembers its arrival time, so dispatch can report
   how long reports sat waiting — the scenario-level starvation metric. *)
type flow_queue = { fq : (Message.t * int * Time_ns.t) Queue.t; mutable in_rr : bool }

(* Where per-flow entries live. [Hashed] is the original open-ended
   hashtable; [Pooled] (the [flow_pool] knob) preallocates a
   generation-checked slot pool so registering/tearing down thousands of
   flows is allocation-bounded, capacity overrun is a structured
   rejection, and a handle that outlives its flow is detected (counted
   stale) instead of steering the slot's next occupant. *)
type registry =
  | Hashed of (int, flow_entry) Hashtbl.t
  | Pooled of flow_entry Flow_table.t

type t = {
  sim : Sim.t;
  channel : Channel.t;
  choose : Algorithm.flow_info -> Algorithm.t;
  policy : Algorithm.flow_info -> Policy.t;
  flows : registry;
  overload : overload option;
  degrade : degrade option;
  queues : (int, flow_queue) Hashtbl.t;
  rr : int Queue.t;  (* flows with queued reports, each at most once *)
  mutable queued_total : int;
  mutable round_scheduled : bool;
  pending_restore : (int, Checkpoint.flow_snapshot) Hashtbl.t;
  mutable reports_received : int;
  mutable urgents_received : int;
  mutable installs_sent : int;
  mutable handler_errors : int;
  mutable install_results_received : int;
  mutable install_rejects : int;
  mutable quarantines_seen : int;
  mutable reports_shed : int;
  mutable max_queue_wait : Time_ns.t;
  mutable dispatch_rounds : int;
  mutable degradations : int;
  mutable degraded_drops : int;
  mutable warm_restores : int;
  mutable registrations_rejected : int;
  obs : agent_obs option;
  tracer : Ccp_obs.Tracer.t option;
}

and agent_obs = {
  o_reports : Ccp_obs.Metrics.counter;
  o_urgents : Ccp_obs.Metrics.counter;
  o_installs : Ccp_obs.Metrics.counter;
  o_handler_errors : Ccp_obs.Metrics.counter;
  o_rejects : Ccp_obs.Metrics.counter;
  o_quarantines : Ccp_obs.Metrics.counter;
  o_shed : Ccp_obs.Metrics.counter;
  o_rounds : Ccp_obs.Metrics.counter;
  o_degradations : Ccp_obs.Metrics.counter;
  o_degraded_drops : Ccp_obs.Metrics.counter;
  o_warm_restores : Ccp_obs.Metrics.counter;
  o_queue_depth : Ccp_obs.Metrics.gauge;
  o_regs_rejected : Ccp_obs.Metrics.counter;
  o_pool_occupancy : Ccp_obs.Metrics.gauge;
  o_pool_stale : Ccp_obs.Metrics.gauge;
  (* Per-flow heavy-hitter sketches; [None] when telemetry is off. *)
  tk_sheds : Ccp_obs.Topk.sketch option;
  tk_queue_wait : Ccp_obs.Topk.sketch option;
}

let make_agent_obs obs =
  let open Ccp_obs in
  let m = obs.Obs.metrics in
  {
    o_reports = Metrics.counter m ~unit_:"msgs" "agent.reports_received";
    o_urgents = Metrics.counter m ~unit_:"msgs" "agent.urgents_received";
    o_installs = Metrics.counter m ~unit_:"msgs" "agent.installs_sent";
    o_handler_errors = Metrics.counter m ~unit_:"errors" "agent.handler_errors";
    o_rejects = Metrics.counter m ~unit_:"msgs" "agent.install_rejects";
    o_quarantines = Metrics.counter m ~unit_:"msgs" "agent.quarantines_seen";
    o_shed = Metrics.counter m ~unit_:"msgs" "agent.reports_shed";
    o_rounds = Metrics.counter m ~unit_:"rounds" "agent.dispatch_rounds";
    o_degradations = Metrics.counter m ~unit_:"events" "agent.degradations";
    o_degraded_drops = Metrics.counter m ~unit_:"msgs" "agent.degraded_drops";
    o_warm_restores = Metrics.counter m ~unit_:"events" "agent.warm_restores";
    o_queue_depth = Metrics.gauge m ~unit_:"msgs" "agent.queue_depth";
    o_regs_rejected = Metrics.counter m ~unit_:"flows" "agent.registrations_rejected";
    o_pool_occupancy = Metrics.gauge m ~unit_:"flows" "agent.pool.occupancy";
    o_pool_stale = Metrics.gauge m ~unit_:"refs" "agent.pool.stale_derefs";
    tk_sheds = Obs.flow_sketch obs "flow.sheds";
    tk_queue_wait = Obs.flow_sketch obs "flow.queue_wait_us";
  }

let obs_incr t pick =
  match t.obs with Some h -> Ccp_obs.Metrics.incr (pick h) | None -> ()

let note_queue_depth t =
  match t.obs with
  | Some h -> Ccp_obs.Metrics.set h.o_queue_depth (float_of_int t.queued_total)
  | None -> ()

(* Republish the flow pool's occupancy and stale-deref totals as gauges
   after any registry mutation, so the windowed sampler can see them. *)
let note_pool t =
  match (t.obs, t.flows) with
  | Some h, Pooled pool ->
    let s = Flow_table.stats pool in
    Ccp_obs.Metrics.set h.o_pool_occupancy (float_of_int s.Flow_table.live);
    Ccp_obs.Metrics.set h.o_pool_stale (float_of_int s.Flow_table.stale_refs)
  | _ -> ()

let is_degraded entry = match entry.state with Degraded _ -> true | Active -> false

(* ---- flow registry ------------------------------------------------------- *)

let reg_find t flow =
  match t.flows with
  | Hashed flows -> Hashtbl.find_opt flows flow
  | Pooled pool -> Flow_table.find pool ~flow

let reg_remove t flow =
  match t.flows with
  | Hashed flows -> Hashtbl.remove flows flow
  | Pooled pool -> ignore (Flow_table.release pool ~flow : bool)

let reg_length t =
  match t.flows with
  | Hashed flows -> Hashtbl.length flows
  | Pooled pool -> Flow_table.live pool

let reg_fold t f init =
  match t.flows with
  | Hashed flows -> Hashtbl.fold f flows init
  | Pooled pool -> Flow_table.fold pool ~init ~f

(* ---- overload queue ----------------------------------------------------- *)

let shed_span t span =
  match t.tracer with
  | Some tr when span >= 0 -> Ccp_obs.Tracer.shed tr span ~now:(Sim.now t.sim)
  | _ -> ()

let count_shed t ~flow span =
  t.reports_shed <- t.reports_shed + 1;
  (match t.obs with
  | Some h -> (
    Ccp_obs.Metrics.incr h.o_shed;
    match h.tk_sheds with
    | Some s -> Ccp_obs.Topk.touch s flow
    | None -> ())
  | None -> ());
  shed_span t span

(* Shed the oldest report of the deepest-backlog flow (ties to the lowest
   flow id) until the total depth is back at [limit]. [floor] is the depth
   below which a flow is exempt: 1 for the watermark pass (never take a
   flow's only queued report), 0 for the hard capacity cap. *)
let shed_to t ~limit ~floor =
  let continue_ = ref true in
  while t.queued_total > limit && !continue_ do
    let victim = ref (-1) and depth = ref floor in
    Hashtbl.iter
      (fun flow q ->
        let d = Queue.length q.fq in
        if d > !depth || (d = !depth && d > floor && (!victim < 0 || flow < !victim))
        then begin
          victim := flow;
          depth := d
        end)
      t.queues;
    match !victim with
    | -1 -> continue_ := false
    | flow ->
      let q = Hashtbl.find t.queues flow in
      let _, span, _ = Queue.pop q.fq in
      t.queued_total <- t.queued_total - 1;
      count_shed t ~flow span
  done

let purge_queue t flow =
  match Hashtbl.find_opt t.queues flow with
  | None -> ()
  | Some q ->
    while not (Queue.is_empty q.fq) do
      let _, span, _ = Queue.pop q.fq in
      t.queued_total <- t.queued_total - 1;
      count_shed t ~flow span
    done;
    note_queue_depth t

(* ---- handler isolation -------------------------------------------------- *)

(* Run one flow's handler with failure isolation: an exception is counted
   and, with [degrade] armed, [error_threshold] consecutive failures
   quarantine the flow agent-side with a backed-off re-admission. *)
let rec guard_flow t entry f =
  match f () with
  | () ->
    if entry.consec_errors > 0 then begin
      entry.consec_errors <- 0;
      match t.degrade with
      | Some d -> entry.backoff <- d.backoff_initial
      | None -> ()
    end
  | exception exn ->
    t.handler_errors <- t.handler_errors + 1;
    obs_incr t (fun h -> h.o_handler_errors);
    entry.consec_errors <- entry.consec_errors + 1;
    Logs.warn (fun m ->
        m "agent: flow %d handler raised %s" entry.info.Algorithm.flow
          (Printexc.to_string exn));
    trip_degrade t entry

and trip_degrade t entry =
  match t.degrade with
  | None -> ()
  | Some d ->
    if entry.consec_errors >= d.error_threshold && not (is_degraded entry) then begin
      let flow = entry.info.Algorithm.flow in
      let until = Time_ns.add (Sim.now t.sim) entry.backoff in
      entry.state <- Degraded { until };
      t.degradations <- t.degradations + 1;
      obs_incr t (fun h -> h.o_degradations);
      Logs.warn (fun m ->
          m "agent: flow %d degraded after %d consecutive errors; re-admission at %s"
            flow entry.consec_errors (Time_ns.to_string until));
      purge_queue t flow;
      entry.backoff <- Time_ns.min d.backoff_max (Time_ns.scale entry.backoff 2.0);
      ignore
        (Sim.schedule t.sim ~at:until (fun () -> readmit t entry flow))
    end

(* Re-admission after backoff: rebuild a fresh algorithm instance for the
   flow (the old one's state is suspect) and run its [on_ready] under the
   same isolation, so an immediately-failing re-admission re-trips with a
   doubled backoff. The physical-equality check drops stale timers left
   behind by [reset]/restart or a [Closed]. *)
and readmit t entry flow =
  match reg_find t flow with
  | Some e when e == entry && is_degraded entry ->
    let algorithm = t.choose entry.info in
    let policy = t.policy entry.info in
    let tok =
      ref
        (match t.flows with
        | Hashed _ -> Flow_table.no_token
        | Pooled pool ->
          Option.value ~default:Flow_table.no_token (Flow_table.token_of pool ~flow))
    in
    let handle = make_handle t entry.info policy ~tok in
    entry.handlers <- algorithm.Algorithm.make handle;
    entry.algorithm_name <- algorithm.Algorithm.name;
    entry.consec_errors <- 0;
    entry.state <- Active;
    Logs.info (fun m -> m "agent: flow %d re-admitted" flow);
    guard_flow t entry entry.handlers.Algorithm.on_ready
  | _ -> ()

and make_handle t (info : Algorithm.flow_info) policy ~tok : Algorithm.handle =
  let flow = info.Algorithm.flow in
  (* Hashed mode keeps the original semantics: best-effort entry update
     by flow id, and the command always goes out. Pooled mode routes
     every action through one generation-checked deref of [tok]: a handle
     captured by a closure that outlives its flow fails the check (the
     pool counts it stale) and the action is dropped — never applied to,
     or sent on behalf of, whatever flow reused the slot. *)
  let action ~update go =
    match t.flows with
    | Hashed flows ->
      (match Hashtbl.find_opt flows flow with Some entry -> update entry | None -> ());
      go ()
    | Pooled pool -> (
      match Flow_table.get pool !tok with
      | Some entry ->
        update entry;
        go ()
      | None -> ())
  in
  let no_update = ignore in
  let install program =
    (match Ccp_lang.Typecheck.check program with
    | Ok _ -> ()
    | Error (first :: _) ->
      invalid_arg
        (Format.asprintf "Agent.install: invalid program: %a" Ccp_lang.Typecheck.pp_error first)
    | Error [] -> assert false);
    let program = Policy.apply_program policy program in
    action ~update:no_update (fun () ->
        t.installs_sent <- t.installs_sent + 1;
        obs_incr t (fun h -> h.o_installs);
        Channel.send t.channel ~from:Channel.Agent_end
          (Message.Install { flow; program }))
  in
  {
    info;
    install;
    install_text = (fun text -> install (Ccp_lang.Parser.parse_program text));
    set_cwnd =
      (fun bytes ->
        let bytes = Policy.clamp_cwnd policy bytes in
        action
          ~update:(fun entry -> entry.last_cwnd <- bytes)
          (fun () ->
            Channel.send t.channel ~from:Channel.Agent_end
              (Message.Set_cwnd { flow; bytes })));
    set_rate =
      (fun rate ->
        let bytes_per_sec = Policy.clamp_rate policy rate in
        action
          ~update:(fun entry -> entry.last_rate <- bytes_per_sec)
          (fun () ->
            Channel.send t.channel ~from:Channel.Agent_end
              (Message.Set_rate { flow; bytes_per_sec })));
    now_us = (fun () -> Time_ns.to_float_us (Sim.now t.sim));
  }

let on_ready t ~flow ~mss ~init_cwnd =
  match reg_find t flow with
  | Some entry when is_degraded entry ->
    (* The watchdog's Ready probes keep arriving while the flow is
       quarantined agent-side; re-admission is owned by the backoff
       timer, not the probe. *)
    ()
  | _ ->
    let info = { Algorithm.flow; mss; init_cwnd } in
    let algorithm = t.choose info in
    let policy = t.policy info in
    let backoff =
      match t.degrade with Some d -> d.backoff_initial | None -> Time_ns.ms 100
    in
    let entry =
      {
        info;
        algorithm_name = algorithm.Algorithm.name;
        handlers = Algorithm.no_op_handlers;
        consec_errors = 0;
        state = Active;
        backoff;
        last_cwnd = 0;
        last_rate = 0.0;
      }
    in
    let tok = ref Flow_table.no_token in
    let registered =
      match t.flows with
      | Hashed flows ->
        Hashtbl.replace flows flow entry;
        true
      | Pooled pool -> (
        (* The slot is taken before the algorithm instance is built so
           the handle's token is live during [make] — aggregates install
           to sibling members from there. *)
        match Flow_table.register pool ~flow entry with
        | Ok token ->
          tok := token;
          true
        | Error `Pool_exhausted ->
          (* Structured rejection: the flow simply stays unserved (its
             datapath watchdog keeps native CC) and the refusal is
             counted, instead of an unbounded table quietly growing. *)
          t.registrations_rejected <- t.registrations_rejected + 1;
          obs_incr t (fun h -> h.o_regs_rejected);
          Logs.warn (fun m ->
              m "agent: flow %d registration rejected: flow pool exhausted (capacity %d)"
                flow (Flow_table.capacity pool));
          false)
    in
    note_pool t;
    if registered then begin
    let handle = make_handle t info policy ~tok in
    entry.handlers <- algorithm.Algorithm.make handle;
    (* Warm restart: replay the checkpointed registers into the fresh
       instance before [on_ready] runs, so the program it installs starts
       from the pre-crash operating point. Register-less algorithms get a
       generic nudge to the last commanded cwnd/rate instead. *)
    (match Hashtbl.find_opt t.pending_restore flow with
    | Some snap when String.equal snap.Checkpoint.algorithm algorithm.Algorithm.name ->
      Hashtbl.remove t.pending_restore flow;
      t.warm_restores <- t.warm_restores + 1;
      obs_incr t (fun h -> h.o_warm_restores);
      if Array.length snap.Checkpoint.registers > 0 then
        guard_flow t entry (fun () ->
            entry.handlers.Algorithm.on_restore snap.Checkpoint.registers);
      guard_flow t entry entry.handlers.Algorithm.on_ready;
      if Array.length snap.Checkpoint.registers = 0 then begin
        if snap.Checkpoint.cwnd > 0 then handle.Algorithm.set_cwnd snap.Checkpoint.cwnd;
        if snap.Checkpoint.rate > 0.0 then handle.Algorithm.set_rate snap.Checkpoint.rate
      end
    | Some _ ->
      (* A snapshot from a different algorithm is stale, not restorable. *)
      Hashtbl.remove t.pending_restore flow;
      guard_flow t entry entry.handlers.Algorithm.on_ready
    | None -> guard_flow t entry entry.handlers.Algorithm.on_ready)
    end

let drop_if_degraded t entry =
  let degraded = is_degraded entry in
  if degraded then begin
    t.degraded_drops <- t.degraded_drops + 1;
    obs_incr t (fun h -> h.o_degraded_drops)
  end;
  degraded

let dispatch t (msg : Message.t) =
  match msg with
  | Message.Ready { flow; mss; init_cwnd } -> on_ready t ~flow ~mss ~init_cwnd
  | Message.Report report -> (
    t.reports_received <- t.reports_received + 1;
    obs_incr t (fun h -> h.o_reports);
    match reg_find t report.Message.flow with
    | Some entry when drop_if_degraded t entry -> ()
    | Some entry ->
      guard_flow t entry (fun () -> entry.handlers.Algorithm.on_report report)
    | None -> ())
  | Message.Report_vector report -> (
    t.reports_received <- t.reports_received + 1;
    obs_incr t (fun h -> h.o_reports);
    match reg_find t report.Message.flow with
    | Some entry when drop_if_degraded t entry -> ()
    | Some entry ->
      guard_flow t entry (fun () -> entry.handlers.Algorithm.on_report_vector report)
    | None -> ())
  | Message.Urgent urgent -> (
    t.urgents_received <- t.urgents_received + 1;
    obs_incr t (fun h -> h.o_urgents);
    match reg_find t urgent.Message.flow with
    | Some entry when drop_if_degraded t entry -> ()
    | Some entry ->
      guard_flow t entry (fun () -> entry.handlers.Algorithm.on_urgent urgent)
    | None -> ())
  | Message.Install_result result -> (
    t.install_results_received <- t.install_results_received + 1;
    (match result.Message.verdict with
    | Message.Accepted -> ()
    | Message.Rejected { reason; detail } ->
      t.install_rejects <- t.install_rejects + 1;
      obs_incr t (fun h -> h.o_rejects);
      Logs.warn (fun m ->
          m "agent: datapath rejected install for flow %d: %s (%s)" result.Message.flow
            (Ccp_lang.Limits.reason_to_string reason)
            detail));
    match reg_find t result.Message.flow with
    | Some entry when drop_if_degraded t entry -> ()
    | Some entry ->
      guard_flow t entry (fun () -> entry.handlers.Algorithm.on_install_result result)
    | None -> ())
  | Message.Quarantined q -> (
    t.quarantines_seen <- t.quarantines_seen + 1;
    obs_incr t (fun h -> h.o_quarantines);
    Logs.warn (fun m ->
        m "agent: flow %d quarantined after %d incidents (dominant %s)" q.Message.flow
          q.Message.incidents
          (Message.incident_kind_to_string q.Message.dominant));
    match reg_find t q.Message.flow with
    | Some entry when drop_if_degraded t entry -> ()
    | Some entry ->
      guard_flow t entry (fun () -> entry.handlers.Algorithm.on_quarantine q)
    | None -> ())
  | Message.Closed { flow } ->
    purge_queue t flow;
    reg_remove t flow;
    note_pool t
  | Message.Install _ | Message.Set_cwnd _ | Message.Set_rate _ ->
    (* Datapath-bound traffic is never delivered to the agent end. *)
    ()

(* Handler dispatch runs inside the message's span (when it carries one):
   [handler_begin] arms the span so control messages the algorithm sends
   attach to it, and [handler_end] times the handler and finalizes spans
   that produced no action. *)
let dispatch_with_span t msg span =
  match t.tracer with
  | Some tr when span >= 0 ->
    Ccp_obs.Tracer.handler_begin tr span;
    dispatch t msg;
    Ccp_obs.Tracer.handler_end tr span ~now:(Sim.now t.sim)
  | _ -> dispatch t msg

(* ---- budgeted round-robin dispatch rounds ------------------------------- *)

let rec schedule_round t ov =
  t.round_scheduled <- true;
  ignore
    (Sim.schedule_after t.sim ~delay:ov.dispatch_interval (fun () -> run_round t ov))

and run_round t ov =
  t.round_scheduled <- false;
  t.dispatch_rounds <- t.dispatch_rounds + 1;
  obs_incr t (fun h -> h.o_rounds);
  let budget = ref ov.dispatch_budget in
  while !budget > 0 && not (Queue.is_empty t.rr) do
    let flow = Queue.pop t.rr in
    match Hashtbl.find_opt t.queues flow with
    | None -> ()
    | Some q ->
      if Queue.is_empty q.fq then q.in_rr <- false
      else begin
        let msg, span, enq_at = Queue.pop q.fq in
        t.queued_total <- t.queued_total - 1;
        let wait = Time_ns.sub (Sim.now t.sim) enq_at in
        if Time_ns.compare wait t.max_queue_wait > 0 then t.max_queue_wait <- wait;
        (match t.obs with
        | Some { tk_queue_wait = Some s; _ } ->
          (* Weighted by waited microseconds, so the sketch ranks flows
             by total queueing imposed, not report count. *)
          Ccp_obs.Topk.add s flow (int_of_float (Time_ns.to_float_us wait))
        | _ -> ());
        decr budget;
        dispatch_with_span t msg span;
        if Queue.is_empty q.fq then q.in_rr <- false else Queue.push flow t.rr
      end
  done;
  note_queue_depth t;
  note_pool t;
  if t.queued_total > 0 then schedule_round t ov

let enqueue t ov ~flow msg =
  let span = Channel.rx_span t.channel in
  let q =
    match Hashtbl.find_opt t.queues flow with
    | Some q -> q
    | None ->
      let q = { fq = Queue.create (); in_rr = false } in
      Hashtbl.replace t.queues flow q;
      q
  in
  Queue.push (msg, span, Sim.now t.sim) q.fq;
  t.queued_total <- t.queued_total + 1;
  if not q.in_rr then begin
    q.in_rr <- true;
    Queue.push flow t.rr
  end;
  shed_to t ~limit:ov.high_watermark ~floor:1;
  shed_to t ~limit:ov.queue_capacity ~floor:0;
  note_queue_depth t;
  if not t.round_scheduled then schedule_round t ov

let queueable t flow =
  match reg_find t flow with
  | Some entry -> not (is_degraded entry)
  | None -> false

let on_message t (msg : Message.t) =
  match (t.overload, msg) with
  | Some ov, (Message.Report { flow; _ } | Message.Report_vector { flow; _ })
    when queueable t flow ->
    (* Only reports queue; Ready/Urgent/Install_result/Quarantined/Closed
       stay synchronous — the urgent path must bypass batching (§2.4), and
       control-plane verdicts are rare and cheap. Reports for unknown or
       degraded flows fall through to [dispatch], which drops and counts
       them as before. *)
    enqueue t ov ~flow msg
  | _ -> dispatch_with_span t msg (Channel.rx_span t.channel)

(* ---- checkpoint / warm restore ------------------------------------------ *)

let checkpoint t =
  let flows =
    reg_fold t
      (fun flow entry acc ->
        let registers =
          try entry.handlers.Algorithm.on_checkpoint () with _ -> [||]
        in
        {
          Checkpoint.flow;
          algorithm = entry.algorithm_name;
          cwnd = entry.last_cwnd;
          rate = entry.last_rate;
          registers;
        }
        :: acc)
      []
    |> List.sort (fun a b -> compare a.Checkpoint.flow b.Checkpoint.flow)
  in
  { Checkpoint.taken_at = Sim.now t.sim; flows }

let restore t (ckpt : Checkpoint.t) =
  List.iter
    (fun snap -> Hashtbl.replace t.pending_restore snap.Checkpoint.flow snap)
    ckpt.Checkpoint.flows

let create ~sim ~channel ~choose ?(policy = fun _ -> Policy.unrestricted) ?overload
    ?degrade ?flow_pool ?obs () =
  Option.iter
    (fun capacity ->
      if capacity <= 0 then invalid_arg "Agent: flow_pool capacity must be > 0")
    flow_pool;
  Option.iter
    (fun ov ->
      if ov.queue_capacity <= 0 then invalid_arg "Agent: queue_capacity must be > 0";
      if ov.high_watermark <= 0 || ov.high_watermark > ov.queue_capacity then
        invalid_arg "Agent: high_watermark must be in (0, queue_capacity]";
      if ov.dispatch_budget <= 0 then invalid_arg "Agent: dispatch_budget must be > 0";
      if not (Time_ns.is_positive ov.dispatch_interval) then
        invalid_arg "Agent: dispatch_interval must be positive")
    overload;
  Option.iter
    (fun d ->
      if d.error_threshold <= 0 then invalid_arg "Agent: error_threshold must be > 0";
      if not (Time_ns.is_positive d.backoff_initial) then
        invalid_arg "Agent: backoff_initial must be positive";
      if Time_ns.compare d.backoff_max d.backoff_initial < 0 then
        invalid_arg "Agent: backoff_max must be >= backoff_initial")
    degrade;
  let t =
    {
      sim;
      channel;
      choose;
      policy;
      flows =
        (match flow_pool with
        | None -> Hashed (Hashtbl.create 8)
        | Some capacity -> Pooled (Flow_table.create ~capacity ()));
      overload;
      degrade;
      queues = Hashtbl.create 8;
      rr = Queue.create ();
      queued_total = 0;
      round_scheduled = false;
      pending_restore = Hashtbl.create 4;
      reports_received = 0;
      urgents_received = 0;
      installs_sent = 0;
      handler_errors = 0;
      install_results_received = 0;
      install_rejects = 0;
      quarantines_seen = 0;
      reports_shed = 0;
      max_queue_wait = Time_ns.zero;
      dispatch_rounds = 0;
      degradations = 0;
      degraded_drops = 0;
      warm_restores = 0;
      registrations_rejected = 0;
      obs = Option.map make_agent_obs obs;
      tracer = (match obs with Some o -> o.Ccp_obs.Obs.tracer | None -> None);
    }
  in
  Channel.on_receive channel Channel.Agent_end (on_message t);
  t

let with_algorithm ~sim ~channel algorithm = create ~sim ~channel ~choose:(fun _ -> algorithm) ()

let reset t =
  (* Pooled mode bumps every slot's generation, so handles and timers
     from before the crash come back stale, not aimed at new tenants. *)
  (match t.flows with
  | Hashed flows -> Hashtbl.reset flows
  | Pooled pool -> Flow_table.clear pool);
  (* A crashed process loses its report queues too; the spans parked
     there are finalized as shed so the tracer pool cannot leak across a
     restart. *)
  Hashtbl.iter
    (fun flow q ->
      while not (Queue.is_empty q.fq) do
        let _, span, _ = Queue.pop q.fq in
        t.queued_total <- t.queued_total - 1;
        count_shed t ~flow span
      done)
    t.queues;
  Hashtbl.reset t.queues;
  Queue.clear t.rr;
  t.queued_total <- 0;
  note_queue_depth t;
  note_pool t;
  Hashtbl.reset t.pending_restore

let flow_count t = reg_length t

let algorithm_name t ~flow =
  Option.map (fun e -> e.algorithm_name) (reg_find t flow)

let flow_degraded t ~flow =
  match reg_find t flow with
  | Some entry -> is_degraded entry
  | None -> false

let reports_received t = t.reports_received
let urgents_received t = t.urgents_received
let installs_sent t = t.installs_sent
let handler_errors t = t.handler_errors
let install_results_received t = t.install_results_received
let install_rejects t = t.install_rejects
let quarantines_seen t = t.quarantines_seen
let reports_shed t = t.reports_shed
let reports_queued t = t.queued_total
let max_queue_wait t = t.max_queue_wait
let dispatch_rounds t = t.dispatch_rounds
let degradations t = t.degradations
let degraded_drops t = t.degraded_drops
let warm_restores t = t.warm_restores
let registrations_rejected t = t.registrations_rejected

let pool_stats t =
  match t.flows with
  | Pooled pool -> Some (Flow_table.stats pool)
  | Hashed _ -> None
