open Ccp_ipc

type flow_info = { flow : int; mss : int; init_cwnd : int }

type handle = {
  info : flow_info;
  install : Ccp_lang.Ast.program -> unit;
  install_text : string -> unit;
  set_cwnd : int -> unit;
  set_rate : float -> unit;
  now_us : unit -> float;
}

type handlers = {
  on_ready : unit -> unit;
  on_report : Message.report -> unit;
  on_report_vector : Message.vector_report -> unit;
  on_urgent : Message.urgent -> unit;
  on_install_result : Message.install_result -> unit;
  on_quarantine : Message.quarantine -> unit;
  on_checkpoint : unit -> (string * float) array;
  on_restore : (string * float) array -> unit;
}

type t = {
  name : string;
  make : handle -> handlers;
}

let no_op_handlers =
  {
    on_ready = (fun () -> ());
    on_report = (fun _ -> ());
    on_report_vector = (fun _ -> ());
    on_urgent = (fun _ -> ());
    on_install_result = (fun _ -> ());
    on_quarantine = (fun _ -> ());
    on_checkpoint = (fun () -> [||]);
    on_restore = (fun _ -> ());
  }

let field (report : Message.report) name =
  let found = ref None in
  Array.iter (fun (n, v) -> if n = name && !found = None then found := Some v) report.fields;
  !found

exception Missing_field of string

let field_exn report name =
  match field report name with
  | Some v -> v
  | None -> raise (Missing_field name)

let column (report : Message.vector_report) name =
  let found = ref None in
  Array.iteri (fun i n -> if n = name && !found = None then found := Some i) report.columns;
  !found
