(* Generation-checked slot pool for per-flow agent state.

   This is the Ccp_obs.Tracer pool idiom lifted to hold arbitrary
   per-flow values: a fixed, preallocated array of slots, a free stack,
   and a generation counter per slot folded into every handed-out token.
   Registration and teardown of thousands of flows then touch only the
   preallocated arrays (plus one bounded flow-id index entry), and a
   reference that outlives its flow — an algorithm closure still holding
   a handle after Closed, a quarantine timer firing late — fails the
   generation check and is *counted* as stale instead of silently
   mutating whichever flow reused the slot. Exhaustion is a structured
   [Error `Pool_exhausted], never an exception on the dispatch path. *)

type token = int

let no_token = -1

type stats = {
  capacity : int;
  live : int;
  registered : int;
  released : int;
  stale_refs : int;
  rejected : int;
}

type 'a t = {
  cap : int;
  mask : int;
  bits : int;  (* token = slot lor (generation lsl bits) *)
  gen : int array;
  busy : bool array;
  slot_flow : int array;  (* flow id occupying the slot; -1 when free *)
  slots : 'a option array;
  free : int array;  (* stack of free slot indices *)
  mutable free_top : int;
  index : (int, token) Hashtbl.t;  (* flow id -> live token *)
  mutable registered : int;
  mutable released : int;
  mutable stale_refs : int;
  mutable rejected : int;
}

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let create ?(capacity = 1024) () =
  if capacity <= 0 then invalid_arg "Flow_table.create: capacity must be positive";
  let cap = pow2_at_least capacity 1 in
  let bits =
    let rec go b = if 1 lsl b >= cap then b else go (b + 1) in
    go 0
  in
  {
    cap;
    mask = cap - 1;
    bits;
    gen = Array.make cap 0;
    busy = Array.make cap false;
    slot_flow = Array.make cap (-1);
    slots = Array.make cap None;
    (* Low slots pop first, matching the tracer pool's fill order. *)
    free = Array.init cap (fun i -> cap - 1 - i);
    free_top = cap;
    index = Hashtbl.create cap;
    registered = 0;
    released = 0;
    stale_refs = 0;
    rejected = 0;
  }

let capacity t = t.cap
let live t = t.registered - t.released

let token_of t ~flow = Hashtbl.find_opt t.index flow

let release_slot t slot =
  t.busy.(slot) <- false;
  (* Bumping the generation is what invalidates every outstanding token
     for this slot; the new occupant mints tokens under the new one. *)
  t.gen.(slot) <- t.gen.(slot) + 1;
  t.slots.(slot) <- None;
  Hashtbl.remove t.index t.slot_flow.(slot);
  t.slot_flow.(slot) <- -1;
  t.free.(t.free_top) <- slot;
  t.free_top <- t.free_top + 1;
  t.released <- t.released + 1

let release t ~flow =
  match Hashtbl.find_opt t.index flow with
  | None -> false
  | Some token ->
    release_slot t (token land t.mask);
    true

let register t ~flow value =
  (* Re-registration replaces (Hashtbl.replace semantics): the previous
     slot is released first, so its outstanding tokens go stale. *)
  ignore (release t ~flow : bool);
  if t.free_top = 0 then begin
    t.rejected <- t.rejected + 1;
    Error `Pool_exhausted
  end
  else begin
    t.free_top <- t.free_top - 1;
    let slot = t.free.(t.free_top) in
    let token = slot lor (t.gen.(slot) lsl t.bits) in
    t.busy.(slot) <- true;
    t.slot_flow.(slot) <- flow;
    t.slots.(slot) <- Some value;
    Hashtbl.replace t.index flow token;
    t.registered <- t.registered + 1;
    Ok token
  end

let is_live t token =
  token >= 0
  &&
  let slot = token land t.mask in
  t.busy.(slot) && t.gen.(slot) = token lsr t.bits

let get t token =
  if is_live t token then t.slots.(token land t.mask)
  else begin
    if token >= 0 then t.stale_refs <- t.stale_refs + 1;
    None
  end

let find t ~flow =
  match Hashtbl.find_opt t.index flow with
  | None -> None
  | Some token -> t.slots.(token land t.mask)

let iter t f =
  for slot = 0 to t.cap - 1 do
    if t.busy.(slot) then
      match t.slots.(slot) with
      | Some v -> f t.slot_flow.(slot) v
      | None -> ()
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun flow v -> acc := f flow v !acc);
  !acc

let clear t =
  for slot = 0 to t.cap - 1 do
    if t.busy.(slot) then release_slot t slot
  done

let stats t =
  {
    capacity = t.cap;
    live = live t;
    registered = t.registered;
    released = t.released;
    stale_refs = t.stale_refs;
    rejected = t.rejected;
  }
