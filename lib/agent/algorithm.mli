(** The user-space congestion-control algorithm API (Table 3).

    An algorithm is a factory: for every new flow the agent calls [make]
    with a {!handle} and gets back the flow's event handlers — [on_ready]
    (the paper's [Init]), [on_report]/[on_report_vector] ([OnMeasurement]
    for the two batching modes), and [on_urgent] ([OnUrgent]). Per-flow
    algorithm state lives in the closure returned by [make]. The handle
    provides [Install] plus the direct window/rate commands. *)

open Ccp_ipc

type flow_info = { flow : int; mss : int; init_cwnd : int }

type handle = {
  info : flow_info;
  install : Ccp_lang.Ast.program -> unit;
      (** Validate (raising [Invalid_argument] on a static error), apply
          the agent's policy, and send to the datapath. *)
  install_text : string -> unit;
      (** Parse surface syntax, then as [install]. *)
  set_cwnd : int -> unit;
  set_rate : float -> unit;  (** bytes/second *)
  now_us : unit -> float;  (** agent clock (simulation time) *)
}

type handlers = {
  on_ready : unit -> unit;
  on_report : Message.report -> unit;
  on_report_vector : Message.vector_report -> unit;
  on_urgent : Message.urgent -> unit;
  on_install_result : Message.install_result -> unit;
      (** the datapath's admission verdict for this flow's last [Install] *)
  on_quarantine : Message.quarantine -> unit;
      (** the datapath quarantined the flow to native CC; re-[install] a
          corrected program to win it back *)
  on_checkpoint : unit -> (string * float) array;
      (** dump the algorithm's per-flow registers for a warm-restart
          checkpoint ({!Ccp_ipc.Checkpoint}); [[||]] (the default) means
          the algorithm keeps no restorable state *)
  on_restore : (string * float) array -> unit;
      (** called on a fresh instance, before [on_ready], with the
          registers a crashed predecessor checkpointed — restore what you
          recognize, ignore the rest *)
}

type t = {
  name : string;
  make : handle -> handlers;
}

val no_op_handlers : handlers
(** Handlers that ignore everything; convenient base for algorithms that
    only use some events. *)

(** {1 Report helpers} *)

exception Missing_field of string

val field : Message.report -> string -> float option
val field_exn : Message.report -> string -> float
(** Raises {!Missing_field} if the report lacks the field. *)

val column : Message.vector_report -> string -> int option
(** Index of a column in a vector report. *)
