(* Paper-fidelity regression tests: CCP and native runs of the same
   scenario must stay close (the paper's central claim), and the flight
   recorder's trace of a fixed scenario must stay byte-identical run
   over run (determinism).

   The scenarios are QUICK-scaled versions of Fig. 3 and Fig. 4 — same
   topology shape, link rate scaled down an order of magnitude so the
   whole file runs in seconds. Thresholds are calibrated against the
   seed-42 baselines with headroom; see docs/observability.md. *)

open Ccp_util
open Ccp_core

let fidelity_of cmp = Scenarios.fidelity cmp

let check_report ~what ~max_rmse ~max_util_delta ~max_rtt_delta_ms
    (r : Ccp_obs.Fidelity.report) =
  if r.Ccp_obs.Fidelity.samples < 100 then
    Alcotest.failf "%s: only %d aligned samples" what r.Ccp_obs.Fidelity.samples;
  if r.Ccp_obs.Fidelity.cwnd_rmse > max_rmse then
    Alcotest.failf "%s: cwnd RMSE %.3f exceeds %.3f" what r.Ccp_obs.Fidelity.cwnd_rmse max_rmse;
  if Float.abs r.Ccp_obs.Fidelity.utilization_delta > max_util_delta then
    Alcotest.failf "%s: utilization delta %+.3f exceeds ±%.3f" what
      r.Ccp_obs.Fidelity.utilization_delta max_util_delta;
  if Float.abs r.Ccp_obs.Fidelity.median_rtt_delta_ms > max_rtt_delta_ms then
    Alcotest.failf "%s: median RTT delta %+.2f ms exceeds ±%.1f ms" what
      r.Ccp_obs.Fidelity.median_rtt_delta_ms max_rtt_delta_ms

let test_fig3_fidelity () =
  let cmp =
    Scenarios.Fig3.run ~rate_bps:100e6 ~duration:(Time_ns.sec 10) ~seed:42 ~with_obs:true ()
  in
  check_report ~what:"fig3 (cubic)" ~max_rmse:0.35 ~max_util_delta:0.03
    ~max_rtt_delta_ms:5.0 (fidelity_of cmp)

let test_fig4_fidelity () =
  let cmp =
    Scenarios.Fig4.run ~rate_bps:80e6 ~second_flow_start:(Time_ns.sec 8)
      ~duration:(Time_ns.sec 20) ~seed:42 ~with_obs:true ()
  in
  check_report ~what:"fig4 (reno)" ~max_rmse:0.45 ~max_util_delta:0.03 ~max_rtt_delta_ms:5.0
    (fidelity_of cmp);
  (* Both systems must actually converge after the second flow joins. *)
  let conv r = Scenarios.Fig4.convergence_time ~after:(Time_ns.sec 8) r in
  match (conv cmp.Scenarios.ccp, conv cmp.Scenarios.native) with
  | Some _, Some _ -> ()
  | c, n ->
    Alcotest.failf "fig4: convergence ccp=%b native=%b" (c <> None) (n <> None)

(* --- determinism: the golden trace --- *)

(* A short CCP-Reno run on a lossy, spiky IPC channel: exercises report,
   install, fault, flow-sample, and queue-sample events, and the fault
   path's RNG draws — if any part of the pipeline picks up
   nondeterminism, these bytes change. *)
let golden_events = 80

let golden_run () =
  let obs = Ccp_obs.Obs.create () in
  let config =
    Experiment.default_config ~rate_bps:48e6 ~base_rtt:(Time_ns.ms 20)
      ~duration:(Time_ns.sec 2)
  in
  let config =
    {
      config with
      Experiment.seed = 42;
      flows = [ Experiment.flow (Experiment.Ccp_cc (Ccp_algorithms.Ccp_reno.create ())) ];
      faults =
        Ccp_ipc.Fault_plan.make ~drop_probability:0.1
          ~spike:{ Ccp_ipc.Fault_plan.probability = 0.05; extra = Time_ns.ms 2 }
          ();
      obs = Some obs;
    }
  in
  ignore (Experiment.run config : Experiment.result);
  let lines =
    Ccp_obs.Recorder.to_jsonl (Ccp_obs.Obs.recorder_exn obs)
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take golden_events lines

(* [dune runtest] runs this binary in [_build/default/test] (where the
   [(deps ...)] stanza materializes the golden file); [dune exec] runs it
   from the project root. Accept both. *)
let golden_path () =
  if Sys.file_exists "golden_trace.expected" then "golden_trace.expected"
  else "test/golden_trace.expected"

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let test_golden_trace () =
  let actual = golden_run () in
  Alcotest.(check int) "enough events recorded" golden_events (List.length actual);
  (* In-process determinism: a second identical run yields identical bytes. *)
  Alcotest.(check (list string)) "rerun is byte-identical" actual (golden_run ());
  (* Cross-build determinism: the checked-in golden file. Regenerate with
     CCP_REGEN_GOLDEN=path/to/golden_trace.expected after an intentional
     trace-format change. *)
  match Sys.getenv_opt "CCP_REGEN_GOLDEN" with
  | Some path ->
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) actual;
    close_out oc;
    Printf.printf "regenerated %s\n" path
  | None ->
    let expected = read_lines (golden_path ()) in
    Alcotest.(check int) "golden file line count" golden_events (List.length expected);
    List.iteri
      (fun i (e, a) ->
        if not (String.equal e a) then
          Alcotest.failf "golden trace diverges at event %d:\n  expected %s\n  actual   %s" i e
            a)
      (List.combine expected actual)

let suite =
  [
    ( "fidelity",
      [
        Alcotest.test_case "fig3 ccp-vs-native cwnd fidelity" `Quick test_fig3_fidelity;
        Alcotest.test_case "fig4 ccp-vs-native convergence fidelity" `Quick test_fig4_fidelity;
        Alcotest.test_case "golden trace is deterministic" `Quick test_golden_trace;
      ] );
  ]
