(* Tests for the congestion-control algorithms: the cubic math, Table 1
   metadata, native controllers against a fabricated control handle, and
   the CCP algorithms against a fabricated agent handle. *)

open Ccp_util
open Ccp_datapath
open Ccp_algorithms

(* --- Cubic_math --- *)

let test_int_cbrt_known_values () =
  List.iter
    (fun (x, expected) -> Alcotest.(check int) (Printf.sprintf "cbrt %d" x) expected
        (Cubic_math.int_cbrt x))
    [ (0, 0); (1, 1); (8, 2); (27, 3); (64, 4); (1000, 10); (1_000_000, 100) ]

let test_int_cbrt_accuracy () =
  (* The kernel's approximation stays within ~2% of the exact root. *)
  let err = Cubic_math.max_error_vs_float ~upto:100_000_000 ~samples:5_000 in
  Alcotest.(check bool) (Printf.sprintf "max rel err %.4f" err) true (err < 0.02)

let test_int_cbrt_rejects_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Cubic_math.int_cbrt: negative")
    (fun () -> ignore (Cubic_math.int_cbrt (-1)))

let test_float_cbrt () =
  Alcotest.(check (float 1e-9)) "cbrt 8" 2.0 (Cubic_math.float_cbrt 8.0);
  Alcotest.(check (float 1e-9)) "clamped" 0.0 (Cubic_math.float_cbrt (-5.0))

(* --- Primitives_table --- *)

(* poor man's substring check, to avoid a dependency *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_table1_contents () =
  Alcotest.(check int) "eleven protocols" 11 (List.length Primitives_table.rows);
  let rendered = Primitives_table.render () in
  List.iter
    (fun (row : Primitives_table.row) ->
      Alcotest.(check bool) (row.protocol ^ " present") true (contains rendered row.protocol))
    Primitives_table.rows;
  Alcotest.(check int) "seven implemented" 7 (Primitives_table.implemented_count ())

(* --- native controllers against a fabricated ctl --- *)

let fake_ctl ?(mss = 1448) ?(cwnd = 14_480) () =
  let cwnd = ref cwnd and rate = ref 0.0 and now = ref Time_ns.zero in
  let ctl : Congestion_iface.ctl =
    {
      flow = 1;
      mss;
      now = (fun () -> !now);
      get_cwnd = (fun () -> !cwnd);
      set_cwnd = (fun b -> cwnd := max mss b);
      get_rate = (fun () -> !rate);
      set_rate = (fun r -> rate := r);
      srtt = (fun () -> Some (Time_ns.ms 10));
      latest_rtt = (fun () -> Some (Time_ns.ms 11));
      min_rtt = (fun () -> Some (Time_ns.ms 10));
      inflight = (fun () -> !cwnd);
      send_rate_ewma = (fun () -> None);
      delivery_rate_ewma = (fun () -> None);
    }
  in
  (ctl, cwnd, rate, now)

let ack ?(bytes = 1448) ?(ecn = false) ~now () : Congestion_iface.ack_event =
  {
    now;
    bytes_acked = bytes;
    rtt_sample = Some (Time_ns.ms 11);
    ecn_echo = ecn;
    send_rate = None;
    delivery_rate = None;
    inflight_after = 0;
  }

let test_native_reno_slow_start_and_loss () =
  let ctl, cwnd, _, now = fake_ctl () in
  let cc = Native_reno.create () in
  cc.Congestion_iface.on_init ctl;
  let before = !cwnd in
  cc.Congestion_iface.on_ack ctl (ack ~now:!now ());
  Alcotest.(check int) "slow start grows by acked" (before + 1448) !cwnd;
  (* Congestion event halves. *)
  let pre_loss = !cwnd in
  cc.Congestion_iface.on_loss ctl
    { kind = Congestion_iface.Dup_acks; at = !now; bytes_lost_estimate = 1448 };
  Alcotest.(check int) "halved" (pre_loss / 2) !cwnd;
  (* No growth during recovery. *)
  cc.Congestion_iface.on_ack ctl (ack ~now:!now ());
  Alcotest.(check int) "frozen in recovery" (pre_loss / 2) !cwnd;
  cc.Congestion_iface.on_exit_recovery ctl;
  (* RTO collapses to one mss. *)
  cc.Congestion_iface.on_loss ctl
    { kind = Congestion_iface.Rto; at = !now; bytes_lost_estimate = 1448 };
  Alcotest.(check int) "rto collapse" 1448 !cwnd

let test_native_reno_congestion_avoidance () =
  let ctl, cwnd, _, now = fake_ctl ~cwnd:100_000 () in
  let cc = Native_reno.create_with ~ssthresh_init:50_000 () in
  cc.Congestion_iface.on_init ctl;
  (* Above ssthresh: one mss per window's worth of acked bytes. *)
  let before = !cwnd in
  let acks_per_window = (before + 1447) / 1448 in
  for _ = 1 to acks_per_window do
    cc.Congestion_iface.on_ack ctl (ack ~now:!now ())
  done;
  Alcotest.(check int) "one mss per rtt" (before + 1448) !cwnd

let test_native_reno_ecn_reaction () =
  let ctl, cwnd, _, now = fake_ctl ~cwnd:100_000 () in
  let cc = Native_reno.create () in
  cc.Congestion_iface.on_init ctl;
  now := Time_ns.ms 100;
  cc.Congestion_iface.on_ack ctl (ack ~ecn:true ~now:!now ());
  Alcotest.(check int) "ecn halves" 50_000 !cwnd;
  (* Second echo within the same RTT is ignored. *)
  cc.Congestion_iface.on_ack ctl (ack ~ecn:true ~now:!now ());
  Alcotest.(check bool) "once per rtt" true (!cwnd >= 50_000)

let test_native_cubic_grows_toward_wmax () =
  let ctl, cwnd, _, now = fake_ctl ~cwnd:50_000 () in
  let cc = Native_cubic.create () in
  cc.Congestion_iface.on_init ctl;
  (* Force a loss to establish w_last_max, then grow. *)
  now := Time_ns.ms 10;
  cc.Congestion_iface.on_loss ctl
    { kind = Congestion_iface.Dup_acks; at = !now; bytes_lost_estimate = 1448 };
  let after_cut = !cwnd in
  Alcotest.(check bool) "beta cut" true (after_cut < 50_000 && after_cut >= 30_000);
  cc.Congestion_iface.on_exit_recovery ctl;
  (* Ack a few windows over simulated seconds: cubic climbs back. *)
  for i = 1 to 400 do
    now := Time_ns.add !now (Time_ns.ms 5);
    ignore i;
    cc.Congestion_iface.on_ack ctl (ack ~now:!now ())
  done;
  Alcotest.(check bool)
    (Printf.sprintf "recovered toward wmax (%d)" !cwnd)
    true (!cwnd > after_cut)

let test_native_vegas_steady () =
  let ctl, cwnd, _, now = fake_ctl ~cwnd:50_000 () in
  let cc = Native_vegas.create () in
  cc.Congestion_iface.on_init ctl;
  (* With rtt == base rtt (no queueing) vegas should grow. *)
  let before = !cwnd in
  for i = 1 to 50 do
    now := Time_ns.add !now (Time_ns.ms 1);
    ignore i;
    cc.Congestion_iface.on_ack ctl (ack ~now:!now ())
  done;
  Alcotest.(check bool) "grows when queue empty" true (!cwnd > before)

let test_native_htcp_alpha_grows_with_time () =
  let ctl, cwnd, _, now = fake_ctl ~cwnd:100_000 () in
  let cc = Native_htcp.create () in
  cc.Congestion_iface.on_init ctl;
  (* A loss starts the elapsed-time clock and sets ssthresh below cwnd. *)
  now := Time_ns.sec 1;
  cc.Congestion_iface.on_loss ctl
    { kind = Congestion_iface.Dup_acks; at = !now; bytes_lost_estimate = 1448 };
  cc.Congestion_iface.on_exit_recovery ctl;
  let grow ~seconds =
    let before = !cwnd in
    now := Time_ns.add !now (Time_ns.sec seconds);
    (* one window's worth of ACKs = one additive-increase step *)
    let acks = (before + 1447) / 1448 in
    for _ = 1 to acks do
      cc.Congestion_iface.on_ack ctl (ack ~now:!now ())
    done;
    !cwnd - before
  in
  let early = grow ~seconds:0 in
  let late = grow ~seconds:10 in
  Alcotest.(check bool)
    (Printf.sprintf "increase accelerates (%d then %d)" early late)
    true (late > early && early >= 1448)

let test_native_htcp_adaptive_backoff () =
  let ctl, cwnd, _, now = fake_ctl ~cwnd:100_000 () in
  let cc = Native_htcp.create () in
  cc.Congestion_iface.on_init ctl;
  (* min RTT 10ms (from the fake ctl); report a max RTT of 12.5ms ->
     beta = 0.8 (the clamp ceiling). *)
  cc.Congestion_iface.on_ack ctl
    { (ack ~now:!now ()) with Congestion_iface.rtt_sample = Some (Time_ns.of_float_sec 0.0125) };
  cc.Congestion_iface.on_loss ctl
    { kind = Congestion_iface.Dup_acks; at = !now; bytes_lost_estimate = 1448 };
  (* The ACK above grew the window by one MSS (slow start) first:
     0.8 * (100000 + 1448) = 81158. *)
  Alcotest.(check int) "gentle cut when RTTs are flat" 81_158 !cwnd

let test_native_illinois_delay_scales_increase () =
  let ctl, cwnd, _, now = fake_ctl ~cwnd:100_000 () in
  let cc = Native_illinois.create_with ~alpha_max:10.0 ~alpha_min:0.3 () in
  cc.Congestion_iface.on_init ctl;
  (* Force congestion-avoidance mode. *)
  cc.Congestion_iface.on_loss ctl
    { kind = Congestion_iface.Dup_acks; at = !now; bytes_lost_estimate = 1448 };
  cc.Congestion_iface.on_exit_recovery ctl;
  let window_of_acks ~rtt =
    let before = !cwnd in
    let acks = (before + 1447) / 1448 in
    for _ = 1 to acks do
      now := Time_ns.add !now (Time_ns.us 100);
      cc.Congestion_iface.on_ack ctl
        { (ack ~now:!now ()) with Congestion_iface.rtt_sample = Some rtt }
    done;
    !cwnd - before
  in
  (* Near-base RTT: aggressive increase (alpha_max segments/RTT). *)
  let fast = window_of_acks ~rtt:(Time_ns.ms 10) in
  (* Heavily queued RTT (3x base): increase collapses toward alpha_min. *)
  let slow = window_of_acks ~rtt:(Time_ns.ms 30) in
  Alcotest.(check bool)
    (Printf.sprintf "delay slows increase (%d vs %d)" fast slow)
    true
    (fast >= 8 * 1448 && slow <= 2 * 1448)

let test_native_illinois_delay_scales_backoff () =
  let ctl, cwnd, _, now = fake_ctl ~cwnd:100_000 () in
  let cc = Native_illinois.create () in
  cc.Congestion_iface.on_init ctl;
  (* Low delay at loss time: beta stays at beta_min = 1/8. *)
  for _ = 1 to 10 do
    cc.Congestion_iface.on_ack ctl
      { (ack ~now:!now ()) with Congestion_iface.rtt_sample = Some (Time_ns.ms 10) }
  done;
  cc.Congestion_iface.on_loss ctl
    { kind = Congestion_iface.Dup_acks; at = !now; bytes_lost_estimate = 1448 };
  Alcotest.(check bool)
    (Printf.sprintf "gentle cut at low delay (%d)" !cwnd)
    true
    (!cwnd >= 85_000)

let test_native_dctcp_proportional_cut () =
  let ctl, cwnd, _, now = fake_ctl ~cwnd:100_000 () in
  let cc = Native_dctcp.create_with ~g:0.5 ~initial_alpha:1.0 () in
  cc.Congestion_iface.on_init ctl;
  (* One fully-marked window: alpha stays high, cut ~alpha/2. *)
  for i = 1 to 20 do
    now := Time_ns.add !now (Time_ns.ms 1);
    ignore i;
    cc.Congestion_iface.on_ack ctl (ack ~ecn:true ~now:!now ())
  done;
  Alcotest.(check bool)
    (Printf.sprintf "cut proportionally (%d)" !cwnd)
    true
    (!cwnd < 100_000 && !cwnd > 40_000)

(* --- CCP algorithms against a fabricated handle --- *)

let fake_handle ?(mss = 1448) ?(init_cwnd = 14_480) () =
  let installs = ref [] in
  let cwnds = ref [] and rates = ref [] in
  let now = ref 0.0 in
  let handle : Ccp_agent.Algorithm.handle =
    {
      info = { Ccp_agent.Algorithm.flow = 1; mss; init_cwnd };
      install = (fun p -> installs := p :: !installs);
      install_text = (fun s -> installs := Ccp_lang.Parser.parse_program s :: !installs);
      set_cwnd = (fun b -> cwnds := b :: !cwnds);
      set_rate = (fun r -> rates := r :: !rates);
      now_us = (fun () -> !now);
    }
  in
  (handle, installs, now)

let report fields : Ccp_ipc.Message.report = { flow = 1; fields = Array.of_list fields }

let std_report ?(acked = 14_480.0) ?(marked = 0.0) ?(srtt = 10_000.0) () =
  report
    [
      ("acked", acked); ("marked", marked); ("pkts", acked /. 1448.0);
      ("maxrate", 1e6); ("minrtt", 10_000.0); ("lastrtt", srtt); ("sumrtt", srtt *. 10.0);
      ("_cwnd", 14_480.0); ("_rate", 0.0); ("_mss", 1448.0); ("_srtt_us", srtt);
      ("_rtt_us", srtt); ("_minrtt_us", 10_000.0); ("_inflight_bytes", 14_480.0);
      ("_send_rate", 1e6); ("_recv_rate", 9e5); ("_now_us", 10_000.0); ("_packets", 10.0);
    ]

let program_cwnd (p : Ccp_lang.Ast.program) =
  List.find_map
    (function Ccp_lang.Ast.Cwnd (Ccp_lang.Ast.Const f) -> Some (int_of_float f) | _ -> None)
    p.Ccp_lang.Ast.prims

let test_ccp_reno_report_growth () =
  let handle, installs, _ = fake_handle () in
  let algo = Ccp_reno.create () in
  let handlers = algo.Ccp_agent.Algorithm.make handle in
  handlers.Ccp_agent.Algorithm.on_ready ();
  Alcotest.(check int) "installed on ready" 1 (List.length !installs);
  Alcotest.(check (option int)) "initial cwnd" (Some 14_480) (program_cwnd (List.hd !installs));
  (* Slow start: the window doubles per report. *)
  handlers.Ccp_agent.Algorithm.on_report (std_report ());
  Alcotest.(check (option int)) "doubled" (Some 28_960) (program_cwnd (List.hd !installs))

let test_ccp_reno_urgent_halves () =
  let handle, installs, _ = fake_handle ~init_cwnd:100_000 () in
  let handlers = (Ccp_reno.create ()).Ccp_agent.Algorithm.make handle in
  handlers.Ccp_agent.Algorithm.on_ready ();
  handlers.Ccp_agent.Algorithm.on_urgent
    { flow = 1; kind = Ccp_ipc.Message.Dup_ack_loss; cwnd_at_event = 100_000; inflight_at_event = 0 };
  Alcotest.(check (option int)) "halved" (Some 50_000) (program_cwnd (List.hd !installs));
  handlers.Ccp_agent.Algorithm.on_urgent
    { flow = 1; kind = Ccp_ipc.Message.Timeout; cwnd_at_event = 50_000; inflight_at_event = 0 };
  Alcotest.(check (option int)) "timeout -> 1 mss" (Some 1448) (program_cwnd (List.hd !installs))

let test_ccp_cubic_uses_float_math () =
  let handle, installs, now = fake_handle ~init_cwnd:100_000 () in
  let handlers = (Ccp_cubic.create ()).Ccp_agent.Algorithm.make handle in
  handlers.Ccp_agent.Algorithm.on_ready ();
  (* Loss establishes WlastMax = ~69 segments. *)
  handlers.Ccp_agent.Algorithm.on_urgent
    { flow = 1; kind = Ccp_ipc.Message.Dup_ack_loss; cwnd_at_event = 100_000; inflight_at_event = 0 };
  let after_cut = Option.get (program_cwnd (List.hd !installs)) in
  Alcotest.(check int) "beta=0.7 cut" 70_000 after_cut;
  (* Reports over time climb the cubic curve but never jump past Wmax fast. *)
  let last = ref after_cut in
  for i = 1 to 30 do
    now := float_of_int i *. 10_000.0;
    handlers.Ccp_agent.Algorithm.on_report (std_report ~acked:(float_of_int !last) ());
    let c = Option.get (program_cwnd (List.hd !installs)) in
    Alcotest.(check bool) "monotone before Wmax" true (c >= !last);
    last := c
  done;
  Alcotest.(check bool)
    (Printf.sprintf "grew (final %d)" !last)
    true (!last > after_cut)

let test_ccp_vegas_fold_program_shape () =
  let handle, installs, _ = fake_handle () in
  let handlers = (Ccp_vegas.create `Fold).Ccp_agent.Algorithm.make handle in
  handlers.Ccp_agent.Algorithm.on_ready ();
  match (List.hd !installs).Ccp_lang.Ast.prims with
  | Ccp_lang.Ast.Measure (Ccp_lang.Ast.Fold def) :: _ ->
    Alcotest.(check bool) "has basertt" true (List.mem_assoc "basertt" def.Ccp_lang.Ast.init);
    Alcotest.(check bool) "has delta" true (List.mem_assoc "delta" def.Ccp_lang.Ast.init);
    (* The program must typecheck. *)
    (match Ccp_lang.Typecheck.check (List.hd !installs) with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "vegas fold program invalid")
  | _ -> Alcotest.fail "expected fold measure"

let test_ccp_vegas_vector_program_shape () =
  let handle, installs, _ = fake_handle () in
  let handlers = (Ccp_vegas.create `Vector).Ccp_agent.Algorithm.make handle in
  handlers.Ccp_agent.Algorithm.on_ready ();
  match (List.hd !installs).Ccp_lang.Ast.prims with
  | Ccp_lang.Ast.Measure (Ccp_lang.Ast.Vector fields) :: _ ->
    Alcotest.(check (list string)) "vector fields" [ "rtt_us"; "bytes_acked" ] fields
  | _ -> Alcotest.fail "expected vector measure"

let test_ccp_bbr_probe_cycle () =
  let handle, installs, _ = fake_handle () in
  let handlers = (Ccp_bbr.create ()).Ccp_agent.Algorithm.make handle in
  handlers.Ccp_agent.Algorithm.on_ready ();
  (* Startup: growing delivery rates keep doubling. *)
  let bw i = report [ ("maxrate", float_of_int i *. 1e6); ("minrtt", 10_000.0) ] in
  handlers.Ccp_agent.Algorithm.on_report (bw 2);
  handlers.Ccp_agent.Algorithm.on_report (bw 4);
  (* Stall the delivery rate: three flat reports end startup. *)
  handlers.Ccp_agent.Algorithm.on_report (bw 4);
  handlers.Ccp_agent.Algorithm.on_report (bw 4);
  handlers.Ccp_agent.Algorithm.on_report (bw 4);
  (* The installed program must now carry the paper's pulse pattern:
     three Rate prims with gains 1.25/0.75/1.0 and waits 1/1/6. *)
  let program = List.hd !installs in
  let rates =
    List.filter_map
      (function Ccp_lang.Ast.Rate (Ccp_lang.Ast.Const f) -> Some f | _ -> None)
      program.Ccp_lang.Ast.prims
  in
  (match rates with
  | [ up; down; cruise ] ->
    Alcotest.(check (float 1.0)) "pulse up" (1.25 *. cruise) up;
    Alcotest.(check (float 1.0)) "drain" (0.75 *. cruise) down
  | _ -> Alcotest.fail "expected three Rate prims");
  let waits =
    List.filter_map
      (function Ccp_lang.Ast.Wait_rtts (Ccp_lang.Ast.Const f) -> Some f | _ -> None)
      program.Ccp_lang.Ast.prims
  in
  Alcotest.(check (list (float 1e-9))) "waits 1/1/6" [ 1.0; 1.0; 6.0 ] waits

let test_ccp_dctcp_alpha () =
  let handle, installs, _ = fake_handle ~init_cwnd:100_000 () in
  let handlers = (Ccp_dctcp.create_with ~g:1.0 ~initial_alpha:0.0 ()).Ccp_agent.Algorithm.make handle in
  handlers.Ccp_agent.Algorithm.on_ready ();
  (* Fully marked window with g=1: alpha jumps to 1, cut by half. *)
  handlers.Ccp_agent.Algorithm.on_report (std_report ~acked:100_000.0 ~marked:100_000.0 ());
  Alcotest.(check (option int)) "alpha=1 cut" (Some 50_000) (program_cwnd (List.hd !installs));
  (* Unmarked window afterwards: growth resumes (slow start doubles). *)
  handlers.Ccp_agent.Algorithm.on_report (std_report ~acked:50_000.0 ());
  Alcotest.(check bool) "grows again" true
    (Option.get (program_cwnd (List.hd !installs)) > 50_000)

let test_ccp_timely_gradient () =
  let handle, installs, _ = fake_handle () in
  ignore installs;
  let handlers = (Ccp_timely.create ()).Ccp_agent.Algorithm.make handle in
  handlers.Ccp_agent.Algorithm.on_ready ();
  let rate_of_program () =
    List.find_map
      (function Ccp_lang.Ast.Rate (Ccp_lang.Ast.Const f) -> Some f | _ -> None)
      (List.hd !installs).Ccp_lang.Ast.prims
  in
  let tr ~rtt = report [ ("pkts", 10.0); ("sumrtt", rtt *. 10.0); ("minrtt", 10_000.0) ] in
  (* Two low-RTT reports: additive increase. *)
  handlers.Ccp_agent.Algorithm.on_report (tr ~rtt:10_100.0);
  let r1 = Option.get (rate_of_program ()) in
  handlers.Ccp_agent.Algorithm.on_report (tr ~rtt:10_100.0);
  let r2 = Option.get (rate_of_program ()) in
  Alcotest.(check bool) "additive increase below t_low" true (r2 > r1);
  (* A big RTT spike (above t_high) forces a multiplicative decrease. *)
  handlers.Ccp_agent.Algorithm.on_report (tr ~rtt:40_000.0);
  let r3 = Option.get (rate_of_program ()) in
  Alcotest.(check bool) "decrease above t_high" true (r3 < r2)

(* Measurement-noise hardening: perturbed RTT samples clamp at 1 ns, so
   reports can carry near-zero rtt aggregates. Timely must ignore them
   outright — feeding them into the gradient divides by ~0. *)
let test_ccp_timely_ignores_near_zero_rtt () =
  let handle, installs, _ = fake_handle () in
  let handlers = (Ccp_timely.create ()).Ccp_agent.Algorithm.make handle in
  handlers.Ccp_agent.Algorithm.on_ready ();
  let rate_of_program () =
    Option.get
      (List.find_map
         (function Ccp_lang.Ast.Rate (Ccp_lang.Ast.Const f) -> Some f | _ -> None)
         (List.hd !installs).Ccp_lang.Ast.prims)
  in
  let tr ~rtt ~minrtt = report [ ("pkts", 10.0); ("sumrtt", rtt *. 10.0); ("minrtt", minrtt) ] in
  handlers.Ccp_agent.Algorithm.on_report (tr ~rtt:10_100.0 ~minrtt:10_000.0);
  handlers.Ccp_agent.Algorithm.on_report (tr ~rtt:10_100.0 ~minrtt:10_000.0);
  let before = rate_of_program () in
  (* A 1 ns-floor report (0.001 us per packet): must not move the rate,
     poison min_rtt, or leave a bogus prev_rtt behind. *)
  handlers.Ccp_agent.Algorithm.on_report (tr ~rtt:0.001 ~minrtt:0.001);
  Alcotest.(check (float 1e-9)) "near-zero report is a no-op" before (rate_of_program ());
  handlers.Ccp_agent.Algorithm.on_report (tr ~rtt:40_000.0 ~minrtt:10_000.0);
  let after_spike = rate_of_program () in
  Alcotest.(check bool) "spike still decreases sanely" true
    (Float.is_finite after_spike && after_spike > 0.0 && after_spike < before)

(* PCC's monitor-interval length comes from the perturbable srtt; the
   100 us floor must make all sub-floor values indistinguishable, or a
   1 ns srtt inflates measured throughput (and utility) a million-fold. *)
let test_ccp_pcc_floors_tiny_interval () =
  let handle, installs, _ = fake_handle () in
  let handlers = (Ccp_pcc.create ()).Ccp_agent.Algorithm.make handle in
  handlers.Ccp_agent.Algorithm.on_ready ();
  let pcc_report ~acked ~srtt_us ~now_us =
    report [ ("acked", acked); ("_now_us", now_us); ("_srtt_us", srtt_us) ]
  in
  let count_reports () =
    List.length
      (List.filter
         (function Ccp_lang.Ast.Report -> true | _ -> false)
         (List.hd !installs).Ccp_lang.Ast.prims)
  in
  (* Two startup cycles whose srtt values both sit under the floor: with
     the clamp the second (more acked bytes per interval) shows higher
     utility, so startup keeps doubling. Without it the first interval
     is 1 ns, its utility dwarfs the second, and PCC wrongly bails into
     probing (a two-report program at a backed-off rate). *)
  handlers.Ccp_agent.Algorithm.on_report (pcc_report ~acked:14_480.0 ~srtt_us:0.001 ~now_us:10_000.0);
  handlers.Ccp_agent.Algorithm.on_report (pcc_report ~acked:28_960.0 ~srtt_us:50.0 ~now_us:20_000.0);
  Alcotest.(check int) "still in startup (one-report program)" 1 (count_reports ());
  let rate =
    Option.get
      (List.find_map
         (function Ccp_lang.Ast.Rate (Ccp_lang.Ast.Const f) -> Some f | _ -> None)
         (List.hd !installs).Ccp_lang.Ast.prims)
  in
  Alcotest.(check (float 1.0)) "doubled twice" (4.0 *. (14_480.0 /. 0.010)) rate

let test_ccp_aimd_tiny () =
  let handle, installs, _ = fake_handle () in
  let handlers = (Ccp_aimd.create ()).Ccp_agent.Algorithm.make handle in
  handlers.Ccp_agent.Algorithm.on_ready ();
  handlers.Ccp_agent.Algorithm.on_report (std_report ());
  Alcotest.(check (option int)) "+1 mss" (Some (14_480 + 1448)) (program_cwnd (List.hd !installs));
  handlers.Ccp_agent.Algorithm.on_urgent
    { flow = 1; kind = Ccp_ipc.Message.Dup_ack_loss; cwnd_at_event = 0; inflight_at_event = 0 };
  Alcotest.(check (option int)) "halved" (Some ((14_480 + 1448) / 2))
    (program_cwnd (List.hd !installs))

let test_all_ccp_programs_typecheck () =
  (* Whatever any bundled algorithm installs must be statically valid. *)
  let algorithms =
    [
      Ccp_reno.create (); Ccp_cubic.create (); Ccp_vegas.create `Fold; Ccp_vegas.create `Vector;
      Ccp_bbr.create (); Ccp_dctcp.create (); Ccp_timely.create (); Ccp_pcc.create ();
      Ccp_aimd.create ();
    ]
  in
  List.iter
    (fun (algo : Ccp_agent.Algorithm.t) ->
      let handle, installs, _ = fake_handle () in
      let handle =
        {
          handle with
          Ccp_agent.Algorithm.install =
            (fun p ->
              (match Ccp_lang.Typecheck.check p with
              | Ok _ -> ()
              | Error (e :: _) ->
                Alcotest.failf "%s installs invalid program: %a" algo.Ccp_agent.Algorithm.name
                  Ccp_lang.Typecheck.pp_error e
              | Error [] -> assert false);
              installs := p :: !installs);
        }
      in
      let handlers = algo.Ccp_agent.Algorithm.make handle in
      handlers.Ccp_agent.Algorithm.on_ready ();
      Alcotest.(check bool)
        (algo.Ccp_agent.Algorithm.name ^ " installs on ready")
        true (!installs <> []))
    algorithms

let suite =
  [
    ( "algorithms.cubic_math",
      [
        Alcotest.test_case "known cubes" `Quick test_int_cbrt_known_values;
        Alcotest.test_case "accuracy vs float" `Quick test_int_cbrt_accuracy;
        Alcotest.test_case "negative rejected" `Quick test_int_cbrt_rejects_negative;
        Alcotest.test_case "float cbrt" `Quick test_float_cbrt;
      ] );
    ( "algorithms.table1", [ Alcotest.test_case "contents" `Quick test_table1_contents ] );
    ( "algorithms.native",
      [
        Alcotest.test_case "reno slow start + loss" `Quick test_native_reno_slow_start_and_loss;
        Alcotest.test_case "reno congestion avoidance" `Quick
          test_native_reno_congestion_avoidance;
        Alcotest.test_case "reno ecn" `Quick test_native_reno_ecn_reaction;
        Alcotest.test_case "cubic epoch" `Quick test_native_cubic_grows_toward_wmax;
        Alcotest.test_case "vegas growth" `Quick test_native_vegas_steady;
        Alcotest.test_case "htcp alpha over time" `Quick test_native_htcp_alpha_grows_with_time;
        Alcotest.test_case "htcp adaptive backoff" `Quick test_native_htcp_adaptive_backoff;
        Alcotest.test_case "illinois delay-scaled increase" `Quick
          test_native_illinois_delay_scales_increase;
        Alcotest.test_case "illinois delay-scaled backoff" `Quick
          test_native_illinois_delay_scales_backoff;
        Alcotest.test_case "dctcp proportional cut" `Quick test_native_dctcp_proportional_cut;
      ] );
    ( "algorithms.ccp",
      [
        Alcotest.test_case "reno growth per report" `Quick test_ccp_reno_report_growth;
        Alcotest.test_case "reno urgent" `Quick test_ccp_reno_urgent_halves;
        Alcotest.test_case "cubic float math" `Quick test_ccp_cubic_uses_float_math;
        Alcotest.test_case "vegas fold program" `Quick test_ccp_vegas_fold_program_shape;
        Alcotest.test_case "vegas vector program" `Quick test_ccp_vegas_vector_program_shape;
        Alcotest.test_case "bbr probe cycle" `Quick test_ccp_bbr_probe_cycle;
        Alcotest.test_case "dctcp alpha" `Quick test_ccp_dctcp_alpha;
        Alcotest.test_case "timely gradient" `Quick test_ccp_timely_gradient;
        Alcotest.test_case "timely near-zero rtt" `Quick test_ccp_timely_ignores_near_zero_rtt;
        Alcotest.test_case "pcc tiny interval floor" `Quick test_ccp_pcc_floors_tiny_interval;
        Alcotest.test_case "aimd" `Quick test_ccp_aimd_tiny;
        Alcotest.test_case "all programs typecheck" `Quick test_all_ccp_programs_typecheck;
      ] );
  ]
