(* Tests for the CCP agent: dispatch, per-flow algorithm instances,
   policy enforcement (clamps and program rewriting), and handler-fault
   isolation. *)

open Ccp_util
open Ccp_eventsim
open Ccp_ipc
open Ccp_agent

(* Environment: a channel whose datapath end we script by hand. *)
let make_env ?policy ~algorithm () =
  let sim = Sim.create () in
  let channel = Channel.create ~sim ~latency:(Latency_model.Constant (Time_ns.us 20)) () in
  let to_datapath = ref [] in
  Channel.on_receive channel Channel.Datapath_end (fun msg -> to_datapath := msg :: !to_datapath);
  let agent = Agent.create ~sim ~channel ~choose:(fun _ -> algorithm) ?policy () in
  let from_datapath msg = Channel.send channel ~from:Channel.Datapath_end msg in
  (sim, agent, to_datapath, from_datapath)

let ready flow = Message.Ready { flow; mss = 1448; init_cwnd = 14_480 }

(* An algorithm that records what it sees and installs on ready. *)
let recording_algorithm events : Algorithm.t =
  let make (handle : Algorithm.handle) =
    let note tag = events := tag :: !events in
    {
      Algorithm.no_op_handlers with
      on_ready =
        (fun () ->
          note "ready";
          handle.Algorithm.install_text "Cwnd(20000).WaitRtts(1.0).Report()");
      on_report = (fun _ -> note "report");
      on_report_vector = (fun _ -> note "vector");
      on_urgent = (fun _ -> note "urgent");
    }
  in
  { Algorithm.name = "recorder"; make }

let test_agent_dispatch () =
  let events = ref [] in
  let sim, agent, to_datapath, from_datapath =
    make_env ~algorithm:(recording_algorithm events) ()
  in
  from_datapath (ready 1);
  Sim.run sim;
  Alcotest.(check (list string)) "ready handled" [ "ready" ] (List.rev !events);
  Alcotest.(check int) "flow registered" 1 (Agent.flow_count agent);
  Alcotest.(check (option string)) "algorithm name" (Some "recorder")
    (Agent.algorithm_name agent ~flow:1);
  (* The on_ready Install reached the datapath end. *)
  (match !to_datapath with
  | [ Message.Install { flow = 1; _ } ] -> ()
  | _ -> Alcotest.fail "expected Install");
  from_datapath (Message.Report { flow = 1; fields = [||] });
  from_datapath
    (Message.Urgent
       { flow = 1; kind = Message.Dup_ack_loss; cwnd_at_event = 1; inflight_at_event = 1 });
  from_datapath (Message.Report_vector { flow = 1; columns = [||]; rows = [||] });
  Sim.run sim;
  Alcotest.(check (list string)) "all events" [ "ready"; "report"; "urgent"; "vector" ]
    (List.rev !events);
  Alcotest.(check int) "reports counted" 2 (Agent.reports_received agent);
  Alcotest.(check int) "urgents counted" 1 (Agent.urgents_received agent)

let test_agent_per_flow_instances () =
  (* Each flow gets its own closure state. *)
  let instances = ref 0 in
  let algorithm =
    {
      Algorithm.name = "counter";
      make =
        (fun _ ->
          incr instances;
          Algorithm.no_op_handlers);
    }
  in
  let sim, _, _, from_datapath = make_env ~algorithm () in
  from_datapath (ready 1);
  from_datapath (ready 2);
  from_datapath (ready 3);
  Sim.run sim;
  Alcotest.(check int) "three instances" 3 !instances

let test_agent_closed_removes_flow () =
  let events = ref [] in
  let sim, agent, _, from_datapath = make_env ~algorithm:(recording_algorithm events) () in
  from_datapath (ready 1);
  Sim.run sim;
  from_datapath (Message.Closed { flow = 1 });
  Sim.run sim;
  Alcotest.(check int) "flow removed" 0 (Agent.flow_count agent);
  (* Reports for a dead flow are dropped, not crashed on. *)
  from_datapath (Message.Report { flow = 1; fields = [||] });
  Sim.run sim;
  Alcotest.(check bool) "no report event" true (not (List.mem "report" !events))

let test_agent_handler_errors_isolated () =
  let algorithm =
    {
      Algorithm.name = "buggy";
      make =
        (fun _ ->
          { Algorithm.no_op_handlers with on_report = (fun _ -> failwith "algorithm bug") });
    }
  in
  let sim, agent, _, from_datapath = make_env ~algorithm () in
  from_datapath (ready 1);
  from_datapath (Message.Report { flow = 1; fields = [||] });
  from_datapath (Message.Report { flow = 1; fields = [||] });
  Sim.run sim;
  Alcotest.(check int) "errors counted, agent alive" 2 (Agent.handler_errors agent);
  Alcotest.(check int) "flow still registered" 1 (Agent.flow_count agent)

let test_agent_rejects_invalid_install () =
  let algorithm =
    {
      Algorithm.name = "invalid-installer";
      make =
        (fun handle ->
          {
            Algorithm.no_op_handlers with
            on_ready = (fun () -> handle.Algorithm.install_text "Cwnd(unknown_variable).WaitRtts(1.0).Report()");
          });
    }
  in
  let sim, agent, to_datapath, from_datapath = make_env ~algorithm () in
  from_datapath (ready 1);
  Sim.run sim;
  (* install raised inside on_ready -> counted as handler error, nothing sent. *)
  Alcotest.(check int) "handler error" 1 (Agent.handler_errors agent);
  Alcotest.(check (list Alcotest.reject)) "nothing installed" [] !to_datapath

(* --- Policy --- *)

let test_policy_clamps () =
  let p = { Policy.max_rate_bps = Some 1e6; max_cwnd_bytes = Some 50_000; min_cwnd_bytes = Some 3000 } in
  Alcotest.(check (float 1e-9)) "rate clamped" 1e6 (Policy.clamp_rate p 5e6);
  Alcotest.(check (float 1e-9)) "rate below cap" 5e5 (Policy.clamp_rate p 5e5);
  Alcotest.(check int) "cwnd clamped" 50_000 (Policy.clamp_cwnd p 100_000);
  Alcotest.(check int) "cwnd floored" 3000 (Policy.clamp_cwnd p 10);
  Alcotest.(check int) "unrestricted" 100_000 (Policy.clamp_cwnd Policy.unrestricted 100_000)

let test_policy_rewrites_programs () =
  let p = Policy.with_max_rate 2e6 in
  let program = Ccp_lang.Parser.parse_program "Rate(1e9).WaitRtts(1.0).Report()" in
  let rewritten = Policy.apply_program p program in
  (* The rewritten Rate expression must evaluate to the cap. *)
  (match rewritten.Ccp_lang.Ast.prims with
  | Ccp_lang.Ast.Rate e :: _ ->
    let v =
      Ccp_lang.Eval.eval
        { Ccp_lang.Eval.lookup_var = (fun _ -> None); lookup_pkt = (fun _ -> None) }
        e
    in
    Alcotest.(check (float 1e-9)) "capped" 2e6 v
  | _ -> Alcotest.fail "expected Rate");
  (* Identity for unrestricted policies. *)
  Alcotest.(check bool) "unrestricted identity" true
    (Ccp_lang.Ast.equal_program program (Policy.apply_program Policy.unrestricted program))

let test_policy_applied_by_agent () =
  let algorithm =
    {
      Algorithm.name = "greedy";
      make =
        (fun handle ->
          {
            Algorithm.no_op_handlers with
            on_ready =
              (fun () ->
                handle.Algorithm.install_text "Rate(1e9).Cwnd(1e9).WaitRtts(1.0).Report()";
                handle.Algorithm.set_cwnd 1_000_000;
                handle.Algorithm.set_rate 1e9);
          });
    }
  in
  let policy _ = { Policy.max_rate_bps = Some 125_000.0; max_cwnd_bytes = Some 20_000; min_cwnd_bytes = None } in
  let sim, _, to_datapath, from_datapath = make_env ~algorithm ~policy () in
  from_datapath (ready 1);
  Sim.run sim;
  let eval e =
    Ccp_lang.Eval.eval
      { Ccp_lang.Eval.lookup_var = (fun _ -> None); lookup_pkt = (fun _ -> None) }
      e
  in
  List.iter
    (function
      | Message.Install { program; _ } ->
        List.iter
          (function
            | Ccp_lang.Ast.Rate e ->
              Alcotest.(check (float 1e-9)) "program rate capped" 125_000.0 (eval e)
            | Ccp_lang.Ast.Cwnd e ->
              Alcotest.(check (float 1e-9)) "program cwnd capped" 20_000.0 (eval e)
            | _ -> ())
          program.Ccp_lang.Ast.prims
      | Message.Set_cwnd { bytes; _ } -> Alcotest.(check int) "direct cwnd capped" 20_000 bytes
      | Message.Set_rate { bytes_per_sec; _ } ->
        Alcotest.(check (float 1e-9)) "direct rate capped" 125_000.0 bytes_per_sec
      | _ -> ())
    !to_datapath;
  Alcotest.(check int) "three messages" 3 (List.length !to_datapath)

(* --- Algorithm helpers --- *)

let test_field_helpers () =
  let report = { Message.flow = 1; fields = [| ("a", 1.0); ("b", 2.0) |] } in
  Alcotest.(check (option (float 1e-9))) "field" (Some 2.0) (Algorithm.field report "b");
  Alcotest.(check (option (float 1e-9))) "missing" None (Algorithm.field report "c");
  Alcotest.(check (float 1e-9)) "field_exn" 1.0 (Algorithm.field_exn report "a");
  (match Algorithm.field_exn report "zzz" with
  | _ -> Alcotest.fail "expected Missing_field"
  | exception Algorithm.Missing_field "zzz" -> ());
  let vector = { Message.flow = 1; columns = [| "x"; "y" |]; rows = [||] } in
  Alcotest.(check (option int)) "column" (Some 1) (Algorithm.column vector "y");
  Alcotest.(check (option int)) "missing column" None (Algorithm.column vector "z")

let suite =
  [
    ( "agent",
      [
        Alcotest.test_case "dispatch" `Quick test_agent_dispatch;
        Alcotest.test_case "per-flow instances" `Quick test_agent_per_flow_instances;
        Alcotest.test_case "closed removes flow" `Quick test_agent_closed_removes_flow;
        Alcotest.test_case "handler errors isolated" `Quick test_agent_handler_errors_isolated;
        Alcotest.test_case "invalid install rejected" `Quick test_agent_rejects_invalid_install;
      ] );
    ( "agent.policy",
      [
        Alcotest.test_case "clamps" `Quick test_policy_clamps;
        Alcotest.test_case "program rewriting" `Quick test_policy_rewrites_programs;
        Alcotest.test_case "applied by agent" `Quick test_policy_applied_by_agent;
      ] );
    ( "agent.helpers", [ Alcotest.test_case "report fields" `Quick test_field_helpers ] );
  ]
