(* Agent-side resilience tests: overload control (bounded queues,
   watermark shedding, budgeted round-robin dispatch), per-flow
   degradation with backed-off re-admission, checkpoint/warm-restore,
   and the composed Scenarios.Chaos regression (IPC faults x measurement
   noise x ~4x agent overload x crash/restart).

   The chaos scorecard here uses the scenario's defaults — 96 Mbit/s,
   12 s, seed 42, two cells (cold + warm restart) — which runs in about
   a second; bin/ci.sh drives the same composition through the CLI. *)

open Ccp_util
open Ccp_eventsim
open Ccp_ipc
open Ccp_agent
module Chaos = Ccp_core.Scenarios.Chaos

(* --- agent-level harness: a channel whose datapath end we script ------- *)

let make_env ?policy ?overload ?degrade ~algorithm () =
  let sim = Sim.create () in
  let channel = Channel.create ~sim ~latency:(Latency_model.Constant (Time_ns.us 20)) () in
  let to_datapath = ref [] in
  Channel.on_receive channel Channel.Datapath_end (fun msg -> to_datapath := msg :: !to_datapath);
  let agent =
    Agent.create ~sim ~channel ~choose:(fun _ -> algorithm) ?policy ?overload ?degrade ()
  in
  let from_datapath msg = Channel.send channel ~from:Channel.Datapath_end msg in
  (sim, agent, to_datapath, from_datapath)

let ready flow = Message.Ready { flow; mss = 1448; init_cwnd = 14_480 }
let report flow = Message.Report { flow; fields = [||] }

(* An algorithm that logs which flow's handler ran, in order. *)
let flow_logger log : Algorithm.t =
  let make (handle : Algorithm.handle) =
    let flow = handle.Algorithm.info.Algorithm.flow in
    {
      Algorithm.no_op_handlers with
      on_report = (fun _ -> log := flow :: !log);
    }
  in
  { Algorithm.name = "flow-logger"; make }

(* --- overload: watermark shedding ------------------------------------- *)

let overload_tight =
  {
    Agent.queue_capacity = 4;
    high_watermark = 2;
    dispatch_budget = 1;
    dispatch_interval = Time_ns.ms 1;
  }

let test_overload_sheds_deepest_never_starves () =
  let log = ref [] in
  let sim, agent, _, from_datapath =
    make_env ~overload:overload_tight ~algorithm:(flow_logger log) ()
  in
  from_datapath (ready 1);
  from_datapath (ready 2);
  Sim.run sim;
  (* Flow 1 floods three reports; flow 2 sends its single update. The
     watermark (2) forces two sheds, both taken from flow 1 — the
     deepest backlog — and never flow 2's only queued report. *)
  from_datapath (report 1);
  from_datapath (report 1);
  from_datapath (report 1);
  from_datapath (report 2);
  Sim.run sim;
  Alcotest.(check int) "two reports shed" 2 (Agent.reports_shed agent);
  Alcotest.(check int) "queues drained" 0 (Agent.reports_queued agent);
  (* Both surviving reports dispatched: one of flow 1's, flow 2's only. *)
  Alcotest.(check (list int)) "flow 2's lone report survived" [ 1; 2 ]
    (List.sort compare !log);
  Alcotest.(check bool) "queue wait measured" true
    (Time_ns.compare (Agent.max_queue_wait agent) Time_ns.zero > 0)

let test_overload_round_robin_budget () =
  let log = ref [] in
  let roomy = { overload_tight with Agent.queue_capacity = 16; high_watermark = 16 } in
  let sim, agent, _, from_datapath = make_env ~overload:roomy ~algorithm:(flow_logger log) () in
  from_datapath (ready 1);
  from_datapath (ready 2);
  Sim.run sim;
  (* Two reports per flow, budget 1 per round: service must alternate
     1,2,1,2 over four rounds — no flow waits for the other's whole
     backlog. *)
  from_datapath (report 1);
  from_datapath (report 1);
  from_datapath (report 2);
  from_datapath (report 2);
  Sim.run sim;
  Alcotest.(check (list int)) "round-robin order" [ 1; 2; 1; 2 ] (List.rev !log);
  Alcotest.(check int) "one dispatch per round" 4 (Agent.dispatch_rounds agent);
  Alcotest.(check int) "nothing shed below watermark" 0 (Agent.reports_shed agent)

let test_overload_validates () =
  let sim = Sim.create () in
  let channel = Channel.create ~sim ~latency:(Latency_model.Constant (Time_ns.us 20)) () in
  let bad ov =
    match
      Agent.create ~sim ~channel ~choose:(fun _ -> flow_logger (ref [])) ~overload:ov ()
    with
    | _ -> Alcotest.fail "nonsensical overload accepted"
    | exception Invalid_argument _ -> ()
  in
  bad { overload_tight with Agent.queue_capacity = 0 };
  bad { overload_tight with Agent.high_watermark = 5 };
  bad { overload_tight with Agent.dispatch_budget = 0 };
  bad { overload_tight with Agent.dispatch_interval = Time_ns.zero }

(* --- degradation: trip, drop, back off, re-admit ----------------------- *)

let degrade_quick =
  {
    Agent.error_threshold = 2;
    backoff_initial = Time_ns.ms 10;
    backoff_max = Time_ns.ms 40;
  }

(* An algorithm whose on_report raises while [failing] is set; counts
   instance builds so re-admission's fresh-instance rule is visible. *)
let fragile_algorithm ~failing ~instances : Algorithm.t =
  let make (_ : Algorithm.handle) =
    incr instances;
    {
      Algorithm.no_op_handlers with
      on_report = (fun _ -> if !failing then failwith "handler bug");
    }
  in
  { Algorithm.name = "fragile"; make }

let test_degrade_trips_and_readmits () =
  let failing = ref true and instances = ref 0 in
  let sim, agent, _, from_datapath =
    make_env ~degrade:degrade_quick ~algorithm:(fragile_algorithm ~failing ~instances) ()
  in
  from_datapath (ready 1);
  Sim.run sim;
  (* Two consecutive failures trip the quarantine... *)
  from_datapath (report 1);
  from_datapath (report 1);
  Sim.run ~until:(Time_ns.ms 5) sim;
  Alcotest.(check bool) "flow degraded" true (Agent.flow_degraded agent ~flow:1);
  Alcotest.(check int) "one degradation" 1 (Agent.degradations agent);
  (* ...messages for the quarantined flow are dropped, not handled... *)
  from_datapath (report 1);
  Sim.run ~until:(Time_ns.ms 8) sim;
  Alcotest.(check bool) "degraded drops counted" true (Agent.degraded_drops agent >= 1);
  Alcotest.(check int) "handler untouched while degraded" 2 (Agent.handler_errors agent);
  (* ...and after backoff_initial the agent rebuilds a fresh instance. *)
  Sim.run ~until:(Time_ns.ms 15) sim;
  Alcotest.(check bool) "re-admitted" false (Agent.flow_degraded agent ~flow:1);
  Alcotest.(check int) "fresh instance built" 2 !instances;
  (* Still failing: the re-trip doubles the backoff (10 -> 20 ms), so the
     flow is back no earlier than t = 35 ms. *)
  from_datapath (report 1);
  from_datapath (report 1);
  Sim.run ~until:(Time_ns.ms 20) sim;
  Alcotest.(check bool) "re-tripped" true (Agent.flow_degraded agent ~flow:1);
  Sim.run ~until:(Time_ns.ms 30) sim;
  Alcotest.(check bool) "doubled backoff still pending" true
    (Agent.flow_degraded agent ~flow:1);
  failing := false;
  Sim.run ~until:(Time_ns.ms 40) sim;
  Alcotest.(check bool) "second re-admission" false (Agent.flow_degraded agent ~flow:1);
  from_datapath (report 1);
  Sim.run ~until:(Time_ns.ms 45) sim;
  (* A healthy handler run resets the consecutive-failure count. *)
  Alcotest.(check int) "healthy again" 4 (Agent.handler_errors agent);
  Alcotest.(check int) "two degradations total" 2 (Agent.degradations agent)

(* --- checkpoint codec and warm restore --------------------------------- *)

let sample_ckpt =
  {
    Checkpoint.taken_at = Time_ns.ms 1234;
    flows =
      [
        {
          Checkpoint.flow = 1;
          algorithm = "ccp-reno";
          cwnd = 57_920;
          rate = 0.0;
          registers = [| ("cwnd", 57_920.0); ("ssthresh", 120_000.0) |];
        };
        { Checkpoint.flow = 7; algorithm = "ccp-vegas"; cwnd = 0; rate = 3.5e6; registers = [||] };
      ];
  }

let test_checkpoint_round_trip () =
  let blob = Checkpoint.encode sample_ckpt in
  (match Checkpoint.decode blob with
  | Ok got -> Alcotest.(check bool) "round-trips" true (got = sample_ckpt)
  | Error e -> Alcotest.failf "decode failed: %s" e);
  Alcotest.(check string) "encoding deterministic" blob (Checkpoint.encode sample_ckpt)

let test_checkpoint_rejects_corruption () =
  let blob = Checkpoint.encode sample_ckpt in
  let expect_error what s =
    match Checkpoint.decode s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" what
  in
  expect_error "empty blob" "";
  expect_error "bad magic" ("\x00" ^ String.sub blob 1 (String.length blob - 1));
  expect_error "truncated" (String.sub blob 0 (String.length blob - 3));
  expect_error "trailing garbage" (blob ^ "x");
  (* A future-versioned blob must be refused, not misread. *)
  let bumped = Bytes.of_string blob in
  Bytes.set bumped 1 (Char.chr (Checkpoint.version + 1));
  expect_error "version mismatch" (Bytes.to_string bumped)

(* An algorithm with real registers: on_checkpoint dumps them, on_restore
   replays them, and what it saw is observable through [seen]. *)
let register_algorithm ~seen : Algorithm.t =
  let make (_ : Algorithm.handle) =
    let x = ref 1.5 in
    {
      Algorithm.no_op_handlers with
      on_checkpoint = (fun () -> [| ("x", !x) |]);
      on_restore =
        (fun regs ->
          Array.iter (fun (k, v) -> if k = "x" then x := v) regs;
          seen := Some !x);
    }
  in
  { Algorithm.name = "register-algo"; make }

let test_warm_restore_replays_registers () =
  let seen = ref None in
  let sim, agent, _, from_datapath = make_env ~algorithm:(register_algorithm ~seen) () in
  from_datapath (ready 1);
  Sim.run sim;
  let ckpt = Agent.checkpoint agent in
  (match ckpt.Checkpoint.flows with
  | [ { Checkpoint.flow = 1; algorithm = "register-algo"; registers = [| ("x", 1.5) |]; _ } ] -> ()
  | _ -> Alcotest.fail "checkpoint did not capture the register dump");
  (* Crash, restart warm, re-register: the fresh instance gets the
     registers back before serving traffic. *)
  Agent.reset agent;
  Alcotest.(check int) "flows gone after reset" 0 (Agent.flow_count agent);
  Agent.restore agent ckpt;
  from_datapath (ready 1);
  Sim.run sim;
  Alcotest.(check int) "one warm restore" 1 (Agent.warm_restores agent);
  Alcotest.(check (option (float 1e-9))) "registers replayed" (Some 1.5) !seen;
  (* The staged entry is consumed: a second Ready restarts cold. *)
  Agent.reset agent;
  from_datapath (ready 1);
  Sim.run sim;
  Alcotest.(check int) "snapshot consumed" 1 (Agent.warm_restores agent)

let test_warm_restore_nudges_registerless () =
  (* A register-less algorithm gets the last commanded cwnd/rate pushed
     back instead of a register replay. *)
  let algorithm =
    {
      Algorithm.name = "plain";
      make =
        (fun handle ->
          {
            Algorithm.no_op_handlers with
            on_ready = (fun () -> handle.Algorithm.set_cwnd 50_000);
          });
    }
  in
  let sim, agent, to_datapath, from_datapath = make_env ~algorithm () in
  from_datapath (ready 1);
  Sim.run sim;
  let ckpt = Agent.checkpoint agent in
  Agent.reset agent;
  Agent.restore agent ckpt;
  to_datapath := [];
  from_datapath (ready 1);
  Sim.run sim;
  let cwnds =
    List.filter_map
      (function Message.Set_cwnd { bytes; _ } -> Some bytes | _ -> None)
      !to_datapath
  in
  (* on_ready's own 50_000 plus the warm nudge to the same value. *)
  Alcotest.(check (list int)) "nudged to last commanded cwnd" [ 50_000; 50_000 ] cwnds;
  Alcotest.(check int) "counted as warm" 1 (Agent.warm_restores agent)

let test_restore_mismatched_algorithm_discarded () =
  let seen = ref None in
  let sim, agent, _, from_datapath = make_env ~algorithm:(register_algorithm ~seen) () in
  let stale =
    {
      Checkpoint.taken_at = Time_ns.zero;
      flows =
        [ { Checkpoint.flow = 1; algorithm = "someone-else"; cwnd = 99; rate = 0.0; registers = [| ("x", 9.0) |] } ];
    }
  in
  Agent.restore agent stale;
  from_datapath (ready 1);
  Sim.run sim;
  Alcotest.(check int) "stale snapshot not applied" 0 (Agent.warm_restores agent);
  Alcotest.(check (option (float 1e-9))) "no register replay" None !seen

let test_reset_sheds_queued_spans () =
  let log = ref [] in
  let roomy = { overload_tight with Agent.queue_capacity = 16; high_watermark = 16 } in
  let sim, agent, _, from_datapath = make_env ~overload:roomy ~algorithm:(flow_logger log) () in
  from_datapath (ready 1);
  Sim.run sim;
  from_datapath (report 1);
  from_datapath (report 1);
  (* Let the reports arrive (20 us IPC) but crash before the first 1 ms
     dispatch round fires. *)
  Sim.run ~until:(Time_ns.us 100) sim;
  Alcotest.(check int) "two queued" 2 (Agent.reports_queued agent);
  Agent.reset agent;
  Alcotest.(check int) "queue loss counted as shed" 2 (Agent.reports_shed agent);
  Alcotest.(check int) "queue empty" 0 (Agent.reports_queued agent);
  Sim.run sim;
  Alcotest.(check (list int)) "nothing dispatched after crash" [] !log

(* --- the composed chaos scenario --------------------------------------- *)

(* Forced once, inspected by every scenario-level test below: seed-42
   defaults, one cold and one warm cell (~a second of wall clock). *)
let chaos_scorecard = lazy (Chaos.run ())

let scorecard_line sc = Ccp_obs.Json.to_string (Chaos.to_json sc)

let golden_path () =
  if Sys.file_exists "golden_chaos.expected" then "golden_chaos.expected"
  else "test/golden_chaos.expected"

let test_golden_chaos () =
  let sc = Lazy.force chaos_scorecard in
  Alcotest.(check int) "cold + warm" 2 (List.length sc.Chaos.cells);
  let actual = scorecard_line sc in
  (* Regenerate with CCP_REGEN_CHAOS=path/to/golden_chaos.expected after
     an intentional schema or dynamics change. *)
  match Sys.getenv_opt "CCP_REGEN_CHAOS" with
  | Some path ->
    let oc = open_out path in
    output_string oc (actual ^ "\n");
    close_out oc;
    Printf.printf "regenerated %s\n" path
  | None ->
    let ic = open_in (golden_path ()) in
    let expected = input_line ic in
    close_in ic;
    if not (String.equal expected actual) then begin
      let n = min (String.length expected) (String.length actual) in
      let rec first_diff i =
        if i >= n then n else if expected.[i] <> actual.[i] then i else first_diff (i + 1)
      in
      let i = first_diff 0 in
      let ctx s = String.sub s (max 0 (i - 40)) (min 80 (String.length s - max 0 (i - 40))) in
      Alcotest.failf "golden chaos scorecard diverges at byte %d:\n  expected ...%s...\n  actual   ...%s..."
        i (ctx expected) (ctx actual)
    end

let test_chaos_schema () =
  let sc = Lazy.force chaos_scorecard in
  match Chaos.validate_scorecard (Chaos.to_json sc) with
  | Ok n -> Alcotest.(check int) "both cells validate" 2 n
  | Error e -> Alcotest.failf "chaos scorecard fails its own schema: %s" e

let cells_by_mode mode =
  let sc = Lazy.force chaos_scorecard in
  List.filter (fun (c : Chaos.cell) -> c.mode = mode) sc.Chaos.cells

(* The tentpole's recovery envelope: warm restart brings every flow back
   within 20 % of its pre-crash cwnd in at most 5 RTTs, and is never
   slower than the cold restart measured in the same run. *)
let test_warm_recovery_envelope () =
  let warm = cells_by_mode "warm" and cold = cells_by_mode "cold" in
  Alcotest.(check bool) "have warm cells" true (warm <> []);
  List.iter
    (fun (c : Chaos.cell) ->
      List.iter
        (fun (r : Chaos.recovery) ->
          match r.recovery_rtts with
          | Some rtts when rtts <= 5.0 -> ()
          | Some rtts ->
            Alcotest.failf "warm seed %d flow %d recovered in %.1f RTTs (> 5)" c.seed
              r.flow_id rtts
          | None ->
            Alcotest.failf "warm seed %d flow %d never recovered" c.seed r.flow_id)
        c.recoveries;
      match c.mean_recovery_rtts with
      | Some m ->
        (* Cold recovery in the same run must be no faster. A cold flow
           that never recovers only strengthens the comparison. *)
        List.iter
          (fun (k : Chaos.cell) ->
            if k.seed = c.seed then
              match k.mean_recovery_rtts with
              | Some cold_m when cold_m +. 1e-9 < m ->
                Alcotest.failf "seed %d: warm mean %.1f RTTs slower than cold %.1f" c.seed
                  m cold_m
              | Some _ | None -> ())
          cold
      | None -> Alcotest.failf "warm seed %d has no recovery mean" c.seed)
    warm

(* The overload envelope: the 4x report overload is real (sheds happen)
   yet no flow's service gap exceeds 2 RTTs — the budgeted round-robin
   plus never-shed-the-last-report rule at work. *)
let test_no_starvation_under_overload () =
  let sc = Lazy.force chaos_scorecard in
  List.iter
    (fun (c : Chaos.cell) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s seed %d: overload engaged" c.mode c.seed)
        true (c.reports_shed > 0);
      if c.max_queue_wait_rtts > 2.0 then
        Alcotest.failf "%s seed %d: a report waited %.2f RTTs (> 2)" c.mode c.seed
          c.max_queue_wait_rtts)
    sc.Chaos.cells

(* Utilization floor: resilience features keep the link busy through
   faults, noise, overload, and a 10-RTT agent outage. *)
let test_chaos_utilization_floor () =
  let sc = Lazy.force chaos_scorecard in
  List.iter
    (fun (c : Chaos.cell) ->
      if c.utilization < 0.8 then
        Alcotest.failf "%s seed %d: utilization %.3f below 0.8 floor" c.mode c.seed
          c.utilization)
    sc.Chaos.cells;
  List.iter
    (fun (w : Chaos.cell) ->
      List.iter
        (fun (k : Chaos.cell) ->
          if k.seed = w.seed && w.utilization +. 0.02 < k.utilization then
            Alcotest.failf "seed %d: warm utilization %.3f well below cold %.3f" w.seed
              w.utilization k.utilization)
        (cells_by_mode "cold"))
    (cells_by_mode "warm")

(* Mode bookkeeping: cold cells must not silently checkpoint, and warm
   cells must actually restore every flow after the crash. *)
let test_chaos_mode_bookkeeping () =
  List.iter
    (fun (c : Chaos.cell) ->
      Alcotest.(check int)
        (Printf.sprintf "cold seed %d: no checkpoints" c.seed)
        0 c.checkpoints_taken;
      Alcotest.(check int)
        (Printf.sprintf "cold seed %d: no warm restores" c.seed)
        0 c.warm_restores)
    (cells_by_mode "cold");
  List.iter
    (fun (c : Chaos.cell) ->
      Alcotest.(check bool)
        (Printf.sprintf "warm seed %d: checkpoints taken" c.seed)
        true (c.checkpoints_taken > 0);
      Alcotest.(check int)
        (Printf.sprintf "warm seed %d: every flow restored warm" c.seed)
        Chaos.flow_count c.warm_restores)
    (cells_by_mode "warm")

let suite =
  [
    ( "chaos.agent",
      [
        Alcotest.test_case "shed deepest, never starve" `Quick
          test_overload_sheds_deepest_never_starves;
        Alcotest.test_case "round-robin budgeted dispatch" `Quick
          test_overload_round_robin_budget;
        Alcotest.test_case "overload config validated" `Quick test_overload_validates;
        Alcotest.test_case "degrade trips and re-admits" `Quick test_degrade_trips_and_readmits;
        Alcotest.test_case "reset sheds queued spans" `Quick test_reset_sheds_queued_spans;
      ] );
    ( "chaos.checkpoint",
      [
        Alcotest.test_case "codec round-trip" `Quick test_checkpoint_round_trip;
        Alcotest.test_case "corruption rejected" `Quick test_checkpoint_rejects_corruption;
        Alcotest.test_case "warm restore replays registers" `Quick
          test_warm_restore_replays_registers;
        Alcotest.test_case "register-less warm nudge" `Quick
          test_warm_restore_nudges_registerless;
        Alcotest.test_case "mismatched algorithm discarded" `Quick
          test_restore_mismatched_algorithm_discarded;
      ] );
    ( "chaos.scenario",
      [
        Alcotest.test_case "golden scorecard" `Quick test_golden_chaos;
        Alcotest.test_case "scorecard schema" `Quick test_chaos_schema;
        Alcotest.test_case "warm recovery envelope" `Quick test_warm_recovery_envelope;
        Alcotest.test_case "no starvation under overload" `Quick
          test_no_starvation_under_overload;
        Alcotest.test_case "utilization floor" `Quick test_chaos_utilization_floor;
        Alcotest.test_case "mode bookkeeping" `Quick test_chaos_mode_bookkeeping;
      ] );
  ]
